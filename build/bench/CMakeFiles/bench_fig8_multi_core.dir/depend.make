# Empty dependencies file for bench_fig8_multi_core.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_fig6_multi_thread.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_interfaces.dir/bench_table1_interfaces.cpp.o"
  "CMakeFiles/bench_table1_interfaces.dir/bench_table1_interfaces.cpp.o.d"
  "bench_table1_interfaces"
  "bench_table1_interfaces.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_interfaces.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

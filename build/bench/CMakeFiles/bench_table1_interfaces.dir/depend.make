# Empty dependencies file for bench_table1_interfaces.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_hashtables.dir/bench_ablation_hashtables.cpp.o"
  "CMakeFiles/bench_ablation_hashtables.dir/bench_ablation_hashtables.cpp.o.d"
  "bench_ablation_hashtables"
  "bench_ablation_hashtables.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_hashtables.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_ablation_hashtables.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_detection_rates.dir/bench_detection_rates.cpp.o"
  "CMakeFiles/bench_detection_rates.dir/bench_detection_rates.cpp.o.d"
  "bench_detection_rates"
  "bench_detection_rates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_detection_rates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

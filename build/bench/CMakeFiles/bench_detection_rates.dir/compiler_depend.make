# Empty compiler generated dependencies file for bench_detection_rates.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_detection_rates.cpp" "bench/CMakeFiles/bench_detection_rates.dir/bench_detection_rates.cpp.o" "gcc" "bench/CMakeFiles/bench_detection_rates.dir/bench_detection_rates.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/bench/CMakeFiles/m4j_bench_harness.dir/DependInfo.cmake"
  "/root/repo/build/src/api/CMakeFiles/m4j_api.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/m4j_core.dir/DependInfo.cmake"
  "/root/repo/build/src/guarded/CMakeFiles/m4j_guarded.dir/DependInfo.cmake"
  "/root/repo/build/src/jni/CMakeFiles/m4j_jni.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/m4j_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/mte/CMakeFiles/m4j_mte.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/m4j_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

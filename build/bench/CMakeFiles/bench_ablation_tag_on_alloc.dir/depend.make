# Empty dependencies file for bench_ablation_tag_on_alloc.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_micro_tagops.
# This may be replaced when dependencies are built.

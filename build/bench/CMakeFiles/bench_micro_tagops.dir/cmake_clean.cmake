file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_tagops.dir/bench_micro_tagops.cpp.o"
  "CMakeFiles/bench_micro_tagops.dir/bench_micro_tagops.cpp.o.d"
  "bench_micro_tagops"
  "bench_micro_tagops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_tagops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for m4j_bench_harness.
# This may be replaced when dependencies are built.

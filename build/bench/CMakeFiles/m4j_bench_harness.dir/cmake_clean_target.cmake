file(REMOVE_RECURSE
  "../lib/libm4j_bench_harness.a"
)

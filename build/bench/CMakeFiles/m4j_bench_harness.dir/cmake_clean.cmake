file(REMOVE_RECURSE
  "../lib/libm4j_bench_harness.a"
  "../lib/libm4j_bench_harness.pdb"
  "CMakeFiles/m4j_bench_harness.dir/Harness.cpp.o"
  "CMakeFiles/m4j_bench_harness.dir/Harness.cpp.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m4j_bench_harness.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

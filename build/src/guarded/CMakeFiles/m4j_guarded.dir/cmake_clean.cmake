file(REMOVE_RECURSE
  "CMakeFiles/m4j_guarded.dir/GuardedCopy.cpp.o"
  "CMakeFiles/m4j_guarded.dir/GuardedCopy.cpp.o.d"
  "libm4j_guarded.a"
  "libm4j_guarded.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m4j_guarded.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for m4j_guarded.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libm4j_guarded.a"
)

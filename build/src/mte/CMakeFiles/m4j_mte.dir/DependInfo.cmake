
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mte/Access.cpp" "src/mte/CMakeFiles/m4j_mte.dir/Access.cpp.o" "gcc" "src/mte/CMakeFiles/m4j_mte.dir/Access.cpp.o.d"
  "/root/repo/src/mte/Fault.cpp" "src/mte/CMakeFiles/m4j_mte.dir/Fault.cpp.o" "gcc" "src/mte/CMakeFiles/m4j_mte.dir/Fault.cpp.o.d"
  "/root/repo/src/mte/Instructions.cpp" "src/mte/CMakeFiles/m4j_mte.dir/Instructions.cpp.o" "gcc" "src/mte/CMakeFiles/m4j_mte.dir/Instructions.cpp.o.d"
  "/root/repo/src/mte/MteSystem.cpp" "src/mte/CMakeFiles/m4j_mte.dir/MteSystem.cpp.o" "gcc" "src/mte/CMakeFiles/m4j_mte.dir/MteSystem.cpp.o.d"
  "/root/repo/src/mte/Tag.cpp" "src/mte/CMakeFiles/m4j_mte.dir/Tag.cpp.o" "gcc" "src/mte/CMakeFiles/m4j_mte.dir/Tag.cpp.o.d"
  "/root/repo/src/mte/TagStorage.cpp" "src/mte/CMakeFiles/m4j_mte.dir/TagStorage.cpp.o" "gcc" "src/mte/CMakeFiles/m4j_mte.dir/TagStorage.cpp.o.d"
  "/root/repo/src/mte/TaggedArena.cpp" "src/mte/CMakeFiles/m4j_mte.dir/TaggedArena.cpp.o" "gcc" "src/mte/CMakeFiles/m4j_mte.dir/TaggedArena.cpp.o.d"
  "/root/repo/src/mte/ThreadState.cpp" "src/mte/CMakeFiles/m4j_mte.dir/ThreadState.cpp.o" "gcc" "src/mte/CMakeFiles/m4j_mte.dir/ThreadState.cpp.o.d"
  "/root/repo/src/mte/Tombstone.cpp" "src/mte/CMakeFiles/m4j_mte.dir/Tombstone.cpp.o" "gcc" "src/mte/CMakeFiles/m4j_mte.dir/Tombstone.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/m4j_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

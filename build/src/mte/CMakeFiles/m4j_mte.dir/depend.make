# Empty dependencies file for m4j_mte.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libm4j_mte.a"
)

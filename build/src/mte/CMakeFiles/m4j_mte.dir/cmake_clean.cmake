file(REMOVE_RECURSE
  "CMakeFiles/m4j_mte.dir/Access.cpp.o"
  "CMakeFiles/m4j_mte.dir/Access.cpp.o.d"
  "CMakeFiles/m4j_mte.dir/Fault.cpp.o"
  "CMakeFiles/m4j_mte.dir/Fault.cpp.o.d"
  "CMakeFiles/m4j_mte.dir/Instructions.cpp.o"
  "CMakeFiles/m4j_mte.dir/Instructions.cpp.o.d"
  "CMakeFiles/m4j_mte.dir/MteSystem.cpp.o"
  "CMakeFiles/m4j_mte.dir/MteSystem.cpp.o.d"
  "CMakeFiles/m4j_mte.dir/Tag.cpp.o"
  "CMakeFiles/m4j_mte.dir/Tag.cpp.o.d"
  "CMakeFiles/m4j_mte.dir/TagStorage.cpp.o"
  "CMakeFiles/m4j_mte.dir/TagStorage.cpp.o.d"
  "CMakeFiles/m4j_mte.dir/TaggedArena.cpp.o"
  "CMakeFiles/m4j_mte.dir/TaggedArena.cpp.o.d"
  "CMakeFiles/m4j_mte.dir/ThreadState.cpp.o"
  "CMakeFiles/m4j_mte.dir/ThreadState.cpp.o.d"
  "CMakeFiles/m4j_mte.dir/Tombstone.cpp.o"
  "CMakeFiles/m4j_mte.dir/Tombstone.cpp.o.d"
  "libm4j_mte.a"
  "libm4j_mte.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m4j_mte.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/m4j_workloads.dir/ClangSim.cpp.o"
  "CMakeFiles/m4j_workloads.dir/ClangSim.cpp.o.d"
  "CMakeFiles/m4j_workloads.dir/Compression.cpp.o"
  "CMakeFiles/m4j_workloads.dir/Compression.cpp.o.d"
  "CMakeFiles/m4j_workloads.dir/Html5.cpp.o"
  "CMakeFiles/m4j_workloads.dir/Html5.cpp.o.d"
  "CMakeFiles/m4j_workloads.dir/Image.cpp.o"
  "CMakeFiles/m4j_workloads.dir/Image.cpp.o.d"
  "CMakeFiles/m4j_workloads.dir/Navigation.cpp.o"
  "CMakeFiles/m4j_workloads.dir/Navigation.cpp.o.d"
  "CMakeFiles/m4j_workloads.dir/PdfRenderer.cpp.o"
  "CMakeFiles/m4j_workloads.dir/PdfRenderer.cpp.o.d"
  "CMakeFiles/m4j_workloads.dir/RayTracer.cpp.o"
  "CMakeFiles/m4j_workloads.dir/RayTracer.cpp.o.d"
  "CMakeFiles/m4j_workloads.dir/Registry.cpp.o"
  "CMakeFiles/m4j_workloads.dir/Registry.cpp.o.d"
  "CMakeFiles/m4j_workloads.dir/TextProcessing.cpp.o"
  "CMakeFiles/m4j_workloads.dir/TextProcessing.cpp.o.d"
  "CMakeFiles/m4j_workloads.dir/Vision.cpp.o"
  "CMakeFiles/m4j_workloads.dir/Vision.cpp.o.d"
  "libm4j_workloads.a"
  "libm4j_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m4j_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

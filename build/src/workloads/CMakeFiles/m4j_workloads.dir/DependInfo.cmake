
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/ClangSim.cpp" "src/workloads/CMakeFiles/m4j_workloads.dir/ClangSim.cpp.o" "gcc" "src/workloads/CMakeFiles/m4j_workloads.dir/ClangSim.cpp.o.d"
  "/root/repo/src/workloads/Compression.cpp" "src/workloads/CMakeFiles/m4j_workloads.dir/Compression.cpp.o" "gcc" "src/workloads/CMakeFiles/m4j_workloads.dir/Compression.cpp.o.d"
  "/root/repo/src/workloads/Html5.cpp" "src/workloads/CMakeFiles/m4j_workloads.dir/Html5.cpp.o" "gcc" "src/workloads/CMakeFiles/m4j_workloads.dir/Html5.cpp.o.d"
  "/root/repo/src/workloads/Image.cpp" "src/workloads/CMakeFiles/m4j_workloads.dir/Image.cpp.o" "gcc" "src/workloads/CMakeFiles/m4j_workloads.dir/Image.cpp.o.d"
  "/root/repo/src/workloads/Navigation.cpp" "src/workloads/CMakeFiles/m4j_workloads.dir/Navigation.cpp.o" "gcc" "src/workloads/CMakeFiles/m4j_workloads.dir/Navigation.cpp.o.d"
  "/root/repo/src/workloads/PdfRenderer.cpp" "src/workloads/CMakeFiles/m4j_workloads.dir/PdfRenderer.cpp.o" "gcc" "src/workloads/CMakeFiles/m4j_workloads.dir/PdfRenderer.cpp.o.d"
  "/root/repo/src/workloads/RayTracer.cpp" "src/workloads/CMakeFiles/m4j_workloads.dir/RayTracer.cpp.o" "gcc" "src/workloads/CMakeFiles/m4j_workloads.dir/RayTracer.cpp.o.d"
  "/root/repo/src/workloads/Registry.cpp" "src/workloads/CMakeFiles/m4j_workloads.dir/Registry.cpp.o" "gcc" "src/workloads/CMakeFiles/m4j_workloads.dir/Registry.cpp.o.d"
  "/root/repo/src/workloads/TextProcessing.cpp" "src/workloads/CMakeFiles/m4j_workloads.dir/TextProcessing.cpp.o" "gcc" "src/workloads/CMakeFiles/m4j_workloads.dir/TextProcessing.cpp.o.d"
  "/root/repo/src/workloads/Vision.cpp" "src/workloads/CMakeFiles/m4j_workloads.dir/Vision.cpp.o" "gcc" "src/workloads/CMakeFiles/m4j_workloads.dir/Vision.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/api/CMakeFiles/m4j_api.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/m4j_core.dir/DependInfo.cmake"
  "/root/repo/build/src/guarded/CMakeFiles/m4j_guarded.dir/DependInfo.cmake"
  "/root/repo/build/src/jni/CMakeFiles/m4j_jni.dir/DependInfo.cmake"
  "/root/repo/build/src/rt/CMakeFiles/m4j_rt.dir/DependInfo.cmake"
  "/root/repo/build/src/mte/CMakeFiles/m4j_mte.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/m4j_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

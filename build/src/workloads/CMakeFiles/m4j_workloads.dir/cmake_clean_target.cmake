file(REMOVE_RECURSE
  "libm4j_workloads.a"
)

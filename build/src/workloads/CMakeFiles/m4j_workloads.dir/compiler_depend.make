# Empty compiler generated dependencies file for m4j_workloads.
# This may be replaced when dependencies are built.

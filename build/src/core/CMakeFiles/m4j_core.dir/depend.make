# Empty dependencies file for m4j_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libm4j_core.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/m4j_core.dir/AllocTagPolicy.cpp.o"
  "CMakeFiles/m4j_core.dir/AllocTagPolicy.cpp.o.d"
  "CMakeFiles/m4j_core.dir/Mte4JniPolicy.cpp.o"
  "CMakeFiles/m4j_core.dir/Mte4JniPolicy.cpp.o.d"
  "CMakeFiles/m4j_core.dir/TagAllocator.cpp.o"
  "CMakeFiles/m4j_core.dir/TagAllocator.cpp.o.d"
  "CMakeFiles/m4j_core.dir/TagTable.cpp.o"
  "CMakeFiles/m4j_core.dir/TagTable.cpp.o.d"
  "libm4j_core.a"
  "libm4j_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m4j_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libm4j_api.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/m4j_api.dir/Session.cpp.o"
  "CMakeFiles/m4j_api.dir/Session.cpp.o.d"
  "libm4j_api.a"
  "libm4j_api.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m4j_api.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

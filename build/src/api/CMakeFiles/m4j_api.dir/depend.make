# Empty dependencies file for m4j_api.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/m4j_support.dir/Backtrace.cpp.o"
  "CMakeFiles/m4j_support.dir/Backtrace.cpp.o.d"
  "CMakeFiles/m4j_support.dir/Compiler.cpp.o"
  "CMakeFiles/m4j_support.dir/Compiler.cpp.o.d"
  "CMakeFiles/m4j_support.dir/Logging.cpp.o"
  "CMakeFiles/m4j_support.dir/Logging.cpp.o.d"
  "CMakeFiles/m4j_support.dir/Statistics.cpp.o"
  "CMakeFiles/m4j_support.dir/Statistics.cpp.o.d"
  "CMakeFiles/m4j_support.dir/StringUtils.cpp.o"
  "CMakeFiles/m4j_support.dir/StringUtils.cpp.o.d"
  "CMakeFiles/m4j_support.dir/Syscall.cpp.o"
  "CMakeFiles/m4j_support.dir/Syscall.cpp.o.d"
  "CMakeFiles/m4j_support.dir/ThreadPool.cpp.o"
  "CMakeFiles/m4j_support.dir/ThreadPool.cpp.o.d"
  "CMakeFiles/m4j_support.dir/TraceEvents.cpp.o"
  "CMakeFiles/m4j_support.dir/TraceEvents.cpp.o.d"
  "libm4j_support.a"
  "libm4j_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m4j_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libm4j_support.a"
)

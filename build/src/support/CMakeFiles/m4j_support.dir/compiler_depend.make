# Empty compiler generated dependencies file for m4j_support.
# This may be replaced when dependencies are built.

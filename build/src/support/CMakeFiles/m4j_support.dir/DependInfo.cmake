
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/Backtrace.cpp" "src/support/CMakeFiles/m4j_support.dir/Backtrace.cpp.o" "gcc" "src/support/CMakeFiles/m4j_support.dir/Backtrace.cpp.o.d"
  "/root/repo/src/support/Compiler.cpp" "src/support/CMakeFiles/m4j_support.dir/Compiler.cpp.o" "gcc" "src/support/CMakeFiles/m4j_support.dir/Compiler.cpp.o.d"
  "/root/repo/src/support/Logging.cpp" "src/support/CMakeFiles/m4j_support.dir/Logging.cpp.o" "gcc" "src/support/CMakeFiles/m4j_support.dir/Logging.cpp.o.d"
  "/root/repo/src/support/Statistics.cpp" "src/support/CMakeFiles/m4j_support.dir/Statistics.cpp.o" "gcc" "src/support/CMakeFiles/m4j_support.dir/Statistics.cpp.o.d"
  "/root/repo/src/support/StringUtils.cpp" "src/support/CMakeFiles/m4j_support.dir/StringUtils.cpp.o" "gcc" "src/support/CMakeFiles/m4j_support.dir/StringUtils.cpp.o.d"
  "/root/repo/src/support/Syscall.cpp" "src/support/CMakeFiles/m4j_support.dir/Syscall.cpp.o" "gcc" "src/support/CMakeFiles/m4j_support.dir/Syscall.cpp.o.d"
  "/root/repo/src/support/ThreadPool.cpp" "src/support/CMakeFiles/m4j_support.dir/ThreadPool.cpp.o" "gcc" "src/support/CMakeFiles/m4j_support.dir/ThreadPool.cpp.o.d"
  "/root/repo/src/support/TraceEvents.cpp" "src/support/CMakeFiles/m4j_support.dir/TraceEvents.cpp.o" "gcc" "src/support/CMakeFiles/m4j_support.dir/TraceEvents.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

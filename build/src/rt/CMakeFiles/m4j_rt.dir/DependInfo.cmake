
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rt/Gc.cpp" "src/rt/CMakeFiles/m4j_rt.dir/Gc.cpp.o" "gcc" "src/rt/CMakeFiles/m4j_rt.dir/Gc.cpp.o.d"
  "/root/repo/src/rt/Handle.cpp" "src/rt/CMakeFiles/m4j_rt.dir/Handle.cpp.o" "gcc" "src/rt/CMakeFiles/m4j_rt.dir/Handle.cpp.o.d"
  "/root/repo/src/rt/Heap.cpp" "src/rt/CMakeFiles/m4j_rt.dir/Heap.cpp.o" "gcc" "src/rt/CMakeFiles/m4j_rt.dir/Heap.cpp.o.d"
  "/root/repo/src/rt/JavaString.cpp" "src/rt/CMakeFiles/m4j_rt.dir/JavaString.cpp.o" "gcc" "src/rt/CMakeFiles/m4j_rt.dir/JavaString.cpp.o.d"
  "/root/repo/src/rt/JavaThread.cpp" "src/rt/CMakeFiles/m4j_rt.dir/JavaThread.cpp.o" "gcc" "src/rt/CMakeFiles/m4j_rt.dir/JavaThread.cpp.o.d"
  "/root/repo/src/rt/Object.cpp" "src/rt/CMakeFiles/m4j_rt.dir/Object.cpp.o" "gcc" "src/rt/CMakeFiles/m4j_rt.dir/Object.cpp.o.d"
  "/root/repo/src/rt/Runtime.cpp" "src/rt/CMakeFiles/m4j_rt.dir/Runtime.cpp.o" "gcc" "src/rt/CMakeFiles/m4j_rt.dir/Runtime.cpp.o.d"
  "/root/repo/src/rt/Trampoline.cpp" "src/rt/CMakeFiles/m4j_rt.dir/Trampoline.cpp.o" "gcc" "src/rt/CMakeFiles/m4j_rt.dir/Trampoline.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mte/CMakeFiles/m4j_mte.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/m4j_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "CMakeFiles/m4j_rt.dir/Gc.cpp.o"
  "CMakeFiles/m4j_rt.dir/Gc.cpp.o.d"
  "CMakeFiles/m4j_rt.dir/Handle.cpp.o"
  "CMakeFiles/m4j_rt.dir/Handle.cpp.o.d"
  "CMakeFiles/m4j_rt.dir/Heap.cpp.o"
  "CMakeFiles/m4j_rt.dir/Heap.cpp.o.d"
  "CMakeFiles/m4j_rt.dir/JavaString.cpp.o"
  "CMakeFiles/m4j_rt.dir/JavaString.cpp.o.d"
  "CMakeFiles/m4j_rt.dir/JavaThread.cpp.o"
  "CMakeFiles/m4j_rt.dir/JavaThread.cpp.o.d"
  "CMakeFiles/m4j_rt.dir/Object.cpp.o"
  "CMakeFiles/m4j_rt.dir/Object.cpp.o.d"
  "CMakeFiles/m4j_rt.dir/Runtime.cpp.o"
  "CMakeFiles/m4j_rt.dir/Runtime.cpp.o.d"
  "CMakeFiles/m4j_rt.dir/Trampoline.cpp.o"
  "CMakeFiles/m4j_rt.dir/Trampoline.cpp.o.d"
  "libm4j_rt.a"
  "libm4j_rt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m4j_rt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libm4j_rt.a"
)

# Empty compiler generated dependencies file for m4j_rt.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/m4j_jni.dir/JniEnv.cpp.o"
  "CMakeFiles/m4j_jni.dir/JniEnv.cpp.o.d"
  "CMakeFiles/m4j_jni.dir/PolicyNone.cpp.o"
  "CMakeFiles/m4j_jni.dir/PolicyNone.cpp.o.d"
  "libm4j_jni.a"
  "libm4j_jni.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/m4j_jni.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

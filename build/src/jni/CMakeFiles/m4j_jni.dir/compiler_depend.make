# Empty compiler generated dependencies file for m4j_jni.
# This may be replaced when dependencies are built.

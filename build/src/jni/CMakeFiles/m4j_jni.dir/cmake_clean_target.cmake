file(REMOVE_RECURSE
  "libm4j_jni.a"
)

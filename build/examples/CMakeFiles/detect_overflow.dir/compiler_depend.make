# Empty compiler generated dependencies file for detect_overflow.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/detect_overflow.dir/detect_overflow.cpp.o"
  "CMakeFiles/detect_overflow.dir/detect_overflow.cpp.o.d"
  "detect_overflow"
  "detect_overflow.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/detect_overflow.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

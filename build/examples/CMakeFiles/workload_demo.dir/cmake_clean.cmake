file(REMOVE_RECURSE
  "CMakeFiles/workload_demo.dir/workload_demo.cpp.o"
  "CMakeFiles/workload_demo.dir/workload_demo.cpp.o.d"
  "workload_demo"
  "workload_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/workload_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for workload_demo.
# This may be replaced when dependencies are built.

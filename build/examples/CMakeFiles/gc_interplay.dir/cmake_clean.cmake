file(REMOVE_RECURSE
  "CMakeFiles/gc_interplay.dir/gc_interplay.cpp.o"
  "CMakeFiles/gc_interplay.dir/gc_interplay.cpp.o.d"
  "gc_interplay"
  "gc_interplay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gc_interplay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for gc_interplay.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for strings_tour.
# This may be replaced when dependencies are built.

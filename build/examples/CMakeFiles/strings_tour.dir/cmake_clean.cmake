file(REMOVE_RECURSE
  "CMakeFiles/strings_tour.dir/strings_tour.cpp.o"
  "CMakeFiles/strings_tour.dir/strings_tour.cpp.o.d"
  "strings_tour"
  "strings_tour.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/strings_tour.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rt_string_test.dir/rt_string_test.cpp.o"
  "CMakeFiles/rt_string_test.dir/rt_string_test.cpp.o.d"
  "rt_string_test"
  "rt_string_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_string_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rt_string_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mte_tag_test.dir/mte_tag_test.cpp.o"
  "CMakeFiles/mte_tag_test.dir/mte_tag_test.cpp.o.d"
  "mte_tag_test"
  "mte_tag_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mte_tag_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

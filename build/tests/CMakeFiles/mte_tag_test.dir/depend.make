# Empty dependencies file for mte_tag_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/guarded_copy_test.dir/guarded_copy_test.cpp.o"
  "CMakeFiles/guarded_copy_test.dir/guarded_copy_test.cpp.o.d"
  "guarded_copy_test"
  "guarded_copy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/guarded_copy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

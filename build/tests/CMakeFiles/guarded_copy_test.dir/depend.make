# Empty dependencies file for guarded_copy_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/integration_schemes_test.dir/integration_schemes_test.cpp.o"
  "CMakeFiles/integration_schemes_test.dir/integration_schemes_test.cpp.o.d"
  "integration_schemes_test"
  "integration_schemes_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_schemes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

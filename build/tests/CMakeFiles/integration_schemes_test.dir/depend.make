# Empty dependencies file for integration_schemes_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/support_infra_test.dir/support_infra_test.cpp.o"
  "CMakeFiles/support_infra_test.dir/support_infra_test.cpp.o.d"
  "support_infra_test"
  "support_infra_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_infra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

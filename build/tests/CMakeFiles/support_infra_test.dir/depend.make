# Empty dependencies file for support_infra_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for tombstone_test.
# This may be replaced when dependencies are built.

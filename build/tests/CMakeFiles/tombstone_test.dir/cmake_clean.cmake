file(REMOVE_RECURSE
  "CMakeFiles/tombstone_test.dir/tombstone_test.cpp.o"
  "CMakeFiles/tombstone_test.dir/tombstone_test.cpp.o.d"
  "tombstone_test"
  "tombstone_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tombstone_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

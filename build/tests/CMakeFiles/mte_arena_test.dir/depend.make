# Empty dependencies file for mte_arena_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mte_arena_test.dir/mte_arena_test.cpp.o"
  "CMakeFiles/mte_arena_test.dir/mte_arena_test.cpp.o.d"
  "mte_arena_test"
  "mte_arena_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mte_arena_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rt_compaction_test.dir/rt_compaction_test.cpp.o"
  "CMakeFiles/rt_compaction_test.dir/rt_compaction_test.cpp.o.d"
  "rt_compaction_test"
  "rt_compaction_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_compaction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rt_compaction_test.
# This may be replaced when dependencies are built.

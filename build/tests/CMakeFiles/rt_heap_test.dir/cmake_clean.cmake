file(REMOVE_RECURSE
  "CMakeFiles/rt_heap_test.dir/rt_heap_test.cpp.o"
  "CMakeFiles/rt_heap_test.dir/rt_heap_test.cpp.o.d"
  "rt_heap_test"
  "rt_heap_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_heap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

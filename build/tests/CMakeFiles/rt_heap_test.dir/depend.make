# Empty dependencies file for rt_heap_test.
# This may be replaced when dependencies are built.

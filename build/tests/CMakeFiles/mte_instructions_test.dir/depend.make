# Empty dependencies file for mte_instructions_test.
# This may be replaced when dependencies are built.

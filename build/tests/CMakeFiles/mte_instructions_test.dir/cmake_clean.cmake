file(REMOVE_RECURSE
  "CMakeFiles/mte_instructions_test.dir/mte_instructions_test.cpp.o"
  "CMakeFiles/mte_instructions_test.dir/mte_instructions_test.cpp.o.d"
  "mte_instructions_test"
  "mte_instructions_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mte_instructions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for alloc_tag_policy_test.
# This may be replaced when dependencies are built.

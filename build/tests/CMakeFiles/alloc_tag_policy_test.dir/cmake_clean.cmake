file(REMOVE_RECURSE
  "CMakeFiles/alloc_tag_policy_test.dir/alloc_tag_policy_test.cpp.o"
  "CMakeFiles/alloc_tag_policy_test.dir/alloc_tag_policy_test.cpp.o.d"
  "alloc_tag_policy_test"
  "alloc_tag_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/alloc_tag_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

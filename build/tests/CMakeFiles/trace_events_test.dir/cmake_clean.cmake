file(REMOVE_RECURSE
  "CMakeFiles/trace_events_test.dir/trace_events_test.cpp.o"
  "CMakeFiles/trace_events_test.dir/trace_events_test.cpp.o.d"
  "trace_events_test"
  "trace_events_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_events_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/jni_env_test.dir/jni_env_test.cpp.o"
  "CMakeFiles/jni_env_test.dir/jni_env_test.cpp.o.d"
  "jni_env_test"
  "jni_env_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jni_env_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for jni_env_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/integration_gc_test.dir/integration_gc_test.cpp.o"
  "CMakeFiles/integration_gc_test.dir/integration_gc_test.cpp.o.d"
  "integration_gc_test"
  "integration_gc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

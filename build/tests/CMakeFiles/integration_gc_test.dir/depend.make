# Empty dependencies file for integration_gc_test.
# This may be replaced when dependencies are built.

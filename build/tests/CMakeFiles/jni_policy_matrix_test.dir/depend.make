# Empty dependencies file for jni_policy_matrix_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/jni_policy_matrix_test.dir/jni_policy_matrix_test.cpp.o"
  "CMakeFiles/jni_policy_matrix_test.dir/jni_policy_matrix_test.cpp.o.d"
  "jni_policy_matrix_test"
  "jni_policy_matrix_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/jni_policy_matrix_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

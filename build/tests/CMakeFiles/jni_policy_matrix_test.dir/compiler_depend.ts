# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for jni_policy_matrix_test.

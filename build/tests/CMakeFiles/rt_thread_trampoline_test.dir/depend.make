# Empty dependencies file for rt_thread_trampoline_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rt_thread_trampoline_test.dir/rt_thread_trampoline_test.cpp.o"
  "CMakeFiles/rt_thread_trampoline_test.dir/rt_thread_trampoline_test.cpp.o.d"
  "rt_thread_trampoline_test"
  "rt_thread_trampoline_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_thread_trampoline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rt_gc_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/rt_gc_test.dir/rt_gc_test.cpp.o"
  "CMakeFiles/rt_gc_test.dir/rt_gc_test.cpp.o.d"
  "rt_gc_test"
  "rt_gc_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_gc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/rt_refarray_test.dir/rt_refarray_test.cpp.o"
  "CMakeFiles/rt_refarray_test.dir/rt_refarray_test.cpp.o.d"
  "rt_refarray_test"
  "rt_refarray_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rt_refarray_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

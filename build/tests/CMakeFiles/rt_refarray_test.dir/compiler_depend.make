# Empty compiler generated dependencies file for rt_refarray_test.
# This may be replaced when dependencies are built.

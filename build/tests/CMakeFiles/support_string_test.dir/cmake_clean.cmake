file(REMOVE_RECURSE
  "CMakeFiles/support_string_test.dir/support_string_test.cpp.o"
  "CMakeFiles/support_string_test.dir/support_string_test.cpp.o.d"
  "support_string_test"
  "support_string_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/support_string_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

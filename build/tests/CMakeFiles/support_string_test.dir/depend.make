# Empty dependencies file for support_string_test.
# This may be replaced when dependencies are built.

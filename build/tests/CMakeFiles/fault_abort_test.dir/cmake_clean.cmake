file(REMOVE_RECURSE
  "CMakeFiles/fault_abort_test.dir/fault_abort_test.cpp.o"
  "CMakeFiles/fault_abort_test.dir/fault_abort_test.cpp.o.d"
  "fault_abort_test"
  "fault_abort_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fault_abort_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/integration_multithread_test.dir/integration_multithread_test.cpp.o"
  "CMakeFiles/integration_multithread_test.dir/integration_multithread_test.cpp.o.d"
  "integration_multithread_test"
  "integration_multithread_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/integration_multithread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for integration_multithread_test.
# This may be replaced when dependencies are built.

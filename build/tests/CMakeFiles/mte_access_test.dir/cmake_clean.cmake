file(REMOVE_RECURSE
  "CMakeFiles/mte_access_test.dir/mte_access_test.cpp.o"
  "CMakeFiles/mte_access_test.dir/mte_access_test.cpp.o.d"
  "mte_access_test"
  "mte_access_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mte_access_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

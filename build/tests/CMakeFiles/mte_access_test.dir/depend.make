# Empty dependencies file for mte_access_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for mte_storage_test.
# This may be replaced when dependencies are built.

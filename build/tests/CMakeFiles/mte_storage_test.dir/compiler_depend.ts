# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for mte_storage_test.

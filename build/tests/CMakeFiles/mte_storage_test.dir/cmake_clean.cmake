file(REMOVE_RECURSE
  "CMakeFiles/mte_storage_test.dir/mte_storage_test.cpp.o"
  "CMakeFiles/mte_storage_test.dir/mte_storage_test.cpp.o.d"
  "mte_storage_test"
  "mte_storage_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mte_storage_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

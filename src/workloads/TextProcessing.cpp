//===- TextProcessing.cpp - "Text Processing" workload ------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Models Geekbench's Text Processing sub-item: tokenise a document, build a
// word-frequency table and a bigram model. The document is a Java byte
// array scanned byte-by-byte through the JNI pointer — the second of the
// §5.4 JNI-intensive workloads.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

#include "mte4jni/rt/Trampoline.h"

#include <array>
#include <string>

namespace mte4jni::workloads {
namespace {

class TextProcessingWorkload final : public Workload {
public:
  const char *name() const override { return "Text Processing"; }
  bool isJniIntensive() const override { return true; }

  void prepare(WorkloadContext &Ctx) override {
    static const char *Words[] = {
        "the",    "quick", "brown",   "fox",    "jumps",  "over",
        "lazy",   "dog",   "android", "memory", "tag",    "java",
        "native", "heap",  "pointer", "check",  "extension"};
    support::Xoshiro256 Rng(Ctx.Seed ^ 0x7EE7);
    std::string Doc;
    Doc.reserve(kDocBytes);
    while (Doc.size() < kDocBytes - 16) {
      Doc += Words[Rng.nextBelow(std::size(Words))];
      Doc += Rng.nextBool(0.1) ? '\n' : ' ';
    }

    Document = Ctx.Env.NewByteArray(Ctx.Scope,
                                    static_cast<jni::jsize>(Doc.size()));
    auto *Data = rt::arrayData<jni::jbyte>(Document);
    for (size_t I = 0; I < Doc.size(); ++I)
      Data[I] = static_cast<jni::jbyte>(Doc[I]);
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "text_process", [&] {
          jni::jboolean IsCopy;
          auto Text = Ctx.Env.GetByteArrayElements(Document, &IsCopy);
          const uint64_t Len = Document->Length;

          // Word-frequency via open-addressed hash counts; bigram counts
          // over a coarse 64-bucket word hash.
          std::array<uint32_t, 1024> Freq{};
          std::array<uint32_t, 64 * 64> Bigram{};
          uint32_t PrevBucket = 0;
          uint32_t Hash = 2166136261u;
          bool InWord = false;
          uint64_t WordCount = 0;

          for (uint64_t I = 0; I < Len; ++I) {
            char C = static_cast<char>(mte::load<jni::jbyte>(
                Text + static_cast<ptrdiff_t>(I)));
            bool IsAlpha = (C >= 'a' && C <= 'z') || (C >= 'A' && C <= 'Z');
            if (IsAlpha) {
              Hash = (Hash ^ static_cast<uint8_t>(C)) * 16777619u;
              InWord = true;
              continue;
            }
            if (InWord) {
              ++WordCount;
              ++Freq[Hash & 1023];
              uint32_t Bucket = (Hash >> 10) & 63;
              ++Bigram[PrevBucket * 64 + Bucket];
              PrevBucket = Bucket;
              Hash = 2166136261u;
              InWord = false;
            }
          }

          uint64_t Sum = WordCount;
          for (uint32_t F : Freq)
            Sum = mixChecksum(Sum, F);
          for (uint32_t B : Bigram)
            Sum = mixChecksum(Sum, B);

          Ctx.Env.ReleaseByteArrayElements(Document, Text, jni::JNI_ABORT);
          return Sum;
        });
  }

private:
  static constexpr size_t kDocBytes = 64 << 10;
  jni::jarray Document = nullptr;
};

} // namespace

std::unique_ptr<Workload> makeTextProcessing() {
  return std::make_unique<TextProcessingWorkload>();
}

} // namespace mte4jni::workloads

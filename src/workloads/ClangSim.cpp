//===- ClangSim.cpp - "Clang" workload: a tiny C-subset front end -------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Models Geekbench's Clang sub-item: lexing, parsing and constant-folding a
// generated C-like source file. The app keeps the source in a Java byte
// array; the native "compiler" scans it *character by character through the
// JNI pointer* — the memory-intensive access pattern that makes this one of
// the §5.4 workloads where MTE+Sync pays per-access overhead while guarded
// copy pays a single bulk copy.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

#include "mte4jni/rt/Trampoline.h"
#include "mte4jni/support/StringUtils.h"

#include <cctype>
#include <string>

namespace mte4jni::workloads {
namespace {

/// Token kinds of the C subset.
enum class Tok : uint8_t {
  End,
  Ident,
  Number,
  Plus,
  Minus,
  Star,
  Slash,
  LParen,
  RParen,
  Semi,
  Equal,
  KwInt,
  KwReturn,
};

/// Lexer over a tagged JNI pointer: every byte read is a checked access.
class JniLexer {
public:
  JniLexer(mte::TaggedPtr<jni::jbyte> Src, uint64_t Len)
      : Src(Src), Len(Len) {}

  Tok next(int64_t &NumberOut, uint32_t &IdentHashOut) {
    skipSpace();
    if (Pos >= Len)
      return Tok::End;
    char C = peek();
    if (std::isdigit(static_cast<unsigned char>(C))) {
      int64_t V = 0;
      while (Pos < Len && std::isdigit(static_cast<unsigned char>(peek()))) {
        V = V * 10 + (peek() - '0');
        ++Pos;
      }
      NumberOut = V;
      return Tok::Number;
    }
    if (std::isalpha(static_cast<unsigned char>(C)) || C == '_') {
      uint32_t H = 2166136261u;
      uint64_t Start = Pos;
      while (Pos < Len && (std::isalnum(static_cast<unsigned char>(peek())) ||
                           peek() == '_')) {
        H = (H ^ static_cast<uint8_t>(peek())) * 16777619u;
        ++Pos;
      }
      IdentHashOut = H;
      uint64_t Width = Pos - Start;
      if (Width == 3 && H == hashOf("int"))
        return Tok::KwInt;
      if (Width == 6 && H == hashOf("return"))
        return Tok::KwReturn;
      return Tok::Ident;
    }
    ++Pos;
    switch (C) {
    case '+':
      return Tok::Plus;
    case '-':
      return Tok::Minus;
    case '*':
      return Tok::Star;
    case '/':
      return Tok::Slash;
    case '(':
      return Tok::LParen;
    case ')':
      return Tok::RParen;
    case ';':
      return Tok::Semi;
    case '=':
      return Tok::Equal;
    default:
      return next(NumberOut, IdentHashOut); // skip unknown
    }
  }

private:
  static uint32_t hashOf(const char *S) {
    uint32_t H = 2166136261u;
    for (; *S; ++S)
      H = (H ^ static_cast<uint8_t>(*S)) * 16777619u;
    return H;
  }

  char peek() {
    return static_cast<char>(mte::load<jni::jbyte>(
        Src + static_cast<ptrdiff_t>(Pos)));
  }
  void skipSpace() {
    while (Pos < Len) {
      char C = peek();
      if (C != ' ' && C != '\n' && C != '\t')
        return;
      ++Pos;
    }
  }

  mte::TaggedPtr<jni::jbyte> Src;
  uint64_t Len;
  uint64_t Pos = 0;
};

/// Recursive-descent constant folder: expr := term (('+'|'-') term)*,
/// term := factor (('*'|'/') factor)*, factor := Number | Ident | '(' e ')'.
class Parser {
public:
  explicit Parser(JniLexer &Lex) : Lex(Lex) { advance(); }

  /// Parses a sequence of `int x = expr;` / `return expr;` statements,
  /// folding each expression; returns a checksum of folded values.
  uint64_t parseProgram() {
    uint64_t Sum = 0;
    unsigned Stmts = 0;
    while (Cur != Tok::End) {
      if (Cur == Tok::KwInt) {
        advance(); // int
        advance(); // ident
        expect(Tok::Equal);
        Sum = mixChecksum(Sum, static_cast<uint64_t>(parseExpr()));
        expect(Tok::Semi);
        ++Stmts;
      } else if (Cur == Tok::KwReturn) {
        advance();
        Sum = mixChecksum(Sum, static_cast<uint64_t>(parseExpr()));
        expect(Tok::Semi);
        ++Stmts;
      } else {
        advance(); // resynchronise
      }
    }
    return mixChecksum(Sum, Stmts);
  }

private:
  void advance() { Cur = Lex.next(Number, IdentHash); }
  void expect(Tok T) {
    if (Cur == T)
      advance();
  }

  int64_t parseFactor() {
    if (Cur == Tok::Number) {
      int64_t V = Number;
      advance();
      return V;
    }
    if (Cur == Tok::Ident) {
      int64_t V = static_cast<int64_t>(IdentHash & 0xFF);
      advance();
      return V;
    }
    if (Cur == Tok::LParen) {
      advance();
      int64_t V = parseExpr();
      expect(Tok::RParen);
      return V;
    }
    advance();
    return 0;
  }

  int64_t parseTerm() {
    int64_t V = parseFactor();
    while (Cur == Tok::Star || Cur == Tok::Slash) {
      bool Mul = Cur == Tok::Star;
      advance();
      int64_t R = parseFactor();
      V = Mul ? V * R : (R != 0 ? V / R : V);
    }
    return V;
  }

  int64_t parseExpr() {
    int64_t V = parseTerm();
    while (Cur == Tok::Plus || Cur == Tok::Minus) {
      bool Add = Cur == Tok::Plus;
      advance();
      int64_t R = parseTerm();
      V = Add ? V + R : V - R;
    }
    return V;
  }

  JniLexer &Lex;
  Tok Cur = Tok::End;
  int64_t Number = 0;
  uint32_t IdentHash = 0;
};

class ClangWorkload final : public Workload {
public:
  const char *name() const override { return "Clang"; }
  bool isJniIntensive() const override { return true; }

  void prepare(WorkloadContext &Ctx) override {
    // Generate a deterministic source file of ~48 KiB.
    support::Xoshiro256 Rng(Ctx.Seed ^ 0xC1A46);
    std::string Src;
    Src.reserve(kSourceBytes);
    unsigned Var = 0;
    while (Src.size() < kSourceBytes - 64) {
      Src += support::format("int v%u = (%u + %u * %u) / %u - v%u;\n", Var,
                             unsigned(Rng.nextBelow(1000)),
                             unsigned(Rng.nextBelow(100)),
                             unsigned(Rng.nextBelow(100)),
                             unsigned(Rng.nextBelow(9) + 1),
                             unsigned(Rng.nextBelow(Var + 1)));
      ++Var;
    }
    Src += "return v0 + v1;\n";

    Source = Ctx.Env.NewByteArray(Ctx.Scope,
                                  static_cast<jni::jsize>(Src.size()));
    auto *Data = rt::arrayData<jni::jbyte>(Source);
    for (size_t I = 0; I < Src.size(); ++I)
      Data[I] = static_cast<jni::jbyte>(Src[I]);
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "clang_compile", [&] {
          jni::jboolean IsCopy;
          auto Src = Ctx.Env.GetByteArrayElements(Source, &IsCopy);
          JniLexer Lex(Src, Source->Length);
          Parser P(Lex);
          uint64_t Sum = P.parseProgram();
          Ctx.Env.ReleaseByteArrayElements(Source, Src, jni::JNI_ABORT);
          return Sum;
        });
  }

private:
  static constexpr size_t kSourceBytes = 48 << 10;
  jni::jarray Source = nullptr;
};

} // namespace

std::unique_ptr<Workload> makeClang() {
  return std::make_unique<ClangWorkload>();
}

} // namespace mte4jni::workloads

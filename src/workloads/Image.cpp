//===- Image.cpp - Image-family workloads --------------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The image-processing sub-items of the suite: Background Blur, Photo
// Filter, HDR, Object Remover, Photo Library and Horizon Detection. These
// model typical Android camera-app pipelines: bitmaps live in Java int
// arrays; native code pulls them across the JNI boundary in bulk, computes
// on native scratch, and pushes results back — the boundary-traffic access
// class (contrast with the JNI-intensive Clang/Text/PDF workloads).
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

#include "mte4jni/rt/Trampoline.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace mte4jni::workloads {
namespace {

// ---- shared pixel helpers ---------------------------------------------------

constexpr uint32_t kW = 256;
constexpr uint32_t kH = 192;

uint32_t packRgb(uint32_t R, uint32_t G, uint32_t B) {
  return 0xFF000000u | (R << 16) | (G << 8) | B;
}
uint32_t redOf(uint32_t P) { return (P >> 16) & 0xFF; }
uint32_t greenOf(uint32_t P) { return (P >> 8) & 0xFF; }
uint32_t blueOf(uint32_t P) { return P & 0xFF; }

/// Fills a Java int array with a deterministic synthetic photo: gradient
/// sky, textured ground, a few "objects".
void fillSyntheticPhoto(jni::jarray Image, uint64_t Seed) {
  support::Xoshiro256 Rng(Seed);
  auto *Px = rt::arrayData<jni::jint>(Image);
  for (uint32_t Y = 0; Y < kH; ++Y) {
    for (uint32_t X = 0; X < kW; ++X) {
      uint32_t P;
      if (Y < kH / 2) {
        P = packRgb(90 + Y / 2, 130 + Y / 3, 200); // sky gradient
      } else {
        uint32_t N = static_cast<uint32_t>(Rng.nextBelow(32));
        P = packRgb(60 + N, 90 + N, 40 + N / 2); // ground texture
      }
      Px[Y * kW + X] = static_cast<jni::jint>(P);
    }
  }
  // Horizon-adjacent "objects".
  for (int Obj = 0; Obj < 6; ++Obj) {
    uint32_t Cx = static_cast<uint32_t>(Rng.nextBelow(kW - 24));
    uint32_t Cy = kH / 2 - 12 + static_cast<uint32_t>(Rng.nextBelow(8));
    for (uint32_t Y = Cy; Y < Cy + 16; ++Y)
      for (uint32_t X = Cx; X < Cx + 16; ++X)
        Px[Y * kW + X] = static_cast<jni::jint>(packRgb(200, 40, 40));
  }
}

uint64_t checksumPixels(const std::vector<jni::jint> &Px) {
  uint64_t Sum = 0;
  for (size_t I = 0; I < Px.size(); I += 31)
    Sum = mixChecksum(Sum, static_cast<uint32_t>(Px[I]));
  return Sum;
}

/// Common base: one Java image prepared from the seed.
class ImageWorkloadBase : public Workload {
public:
  void prepare(WorkloadContext &Ctx) override {
    Image = Ctx.Env.NewIntArray(Ctx.Scope, kW * kH);
    fillSyntheticPhoto(Image, Ctx.Seed ^ seedSalt());
  }

protected:
  virtual uint64_t seedSalt() const = 0;
  jni::jarray Image = nullptr;
};

// ---- Background Blur --------------------------------------------------------

class BackgroundBlurWorkload final : public ImageWorkloadBase {
public:
  const char *name() const override { return "Background Blur"; }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "background_blur", [&] {
          std::vector<jni::jint> In =
              readArrayToNative<jni::jint>(Ctx.Env, Image);
          std::vector<jni::jint> Out(In.size());

          // Separable 5-tap box blur on the lower half ("background"),
          // identity on the upper half ("subject").
          std::vector<jni::jint> Tmp = In;
          for (uint32_t Y = kH / 2; Y < kH; ++Y) {
            for (uint32_t X = 2; X < kW - 2; ++X) {
              uint32_t R = 0, G = 0, B = 0;
              for (int D = -2; D <= 2; ++D) {
                uint32_t P = static_cast<uint32_t>(
                    In[Y * kW + X + static_cast<uint32_t>(D)]);
                R += redOf(P);
                G += greenOf(P);
                B += blueOf(P);
              }
              Tmp[Y * kW + X] =
                  static_cast<jni::jint>(packRgb(R / 5, G / 5, B / 5));
            }
          }
          for (uint32_t Y = 0; Y < kH; ++Y) {
            for (uint32_t X = 0; X < kW; ++X) {
              if (Y < kH / 2 + 2 || Y >= kH - 2) {
                Out[Y * kW + X] = Tmp[Y * kW + X];
                continue;
              }
              uint32_t R = 0, G = 0, B = 0;
              for (int D = -2; D <= 2; ++D) {
                uint32_t P = static_cast<uint32_t>(
                    Tmp[(Y + static_cast<uint32_t>(D)) * kW + X]);
                R += redOf(P);
                G += greenOf(P);
                B += blueOf(P);
              }
              Out[Y * kW + X] =
                  static_cast<jni::jint>(packRgb(R / 5, G / 5, B / 5));
            }
          }

          writeArrayFromNative<jni::jint>(Ctx.Env, Image, Out);
          return checksumPixels(Out);
        });
  }

protected:
  uint64_t seedSalt() const override { return 0xB1u; }
};

// ---- Photo Filter -----------------------------------------------------------

class PhotoFilterWorkload final : public ImageWorkloadBase {
public:
  const char *name() const override { return "Photo Filter"; }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "photo_filter", [&] {
          std::vector<jni::jint> Px =
              readArrayToNative<jni::jint>(Ctx.Env, Image);

          // Build a contrast+warmth LUT then grade every pixel.
          std::array<uint8_t, 256> LutR, LutG, LutB;
          for (int I = 0; I < 256; ++I) {
            double V = I / 255.0;
            double Contrast = 0.5 + (V - 0.5) * 1.25;
            Contrast = std::clamp(Contrast, 0.0, 1.0);
            LutR[static_cast<size_t>(I)] = static_cast<uint8_t>(
                std::min(255.0, Contrast * 255.0 * 1.08));
            LutG[static_cast<size_t>(I)] =
                static_cast<uint8_t>(Contrast * 255.0);
            LutB[static_cast<size_t>(I)] = static_cast<uint8_t>(
                std::max(0.0, Contrast * 255.0 * 0.92));
          }
          for (jni::jint &P : Px) {
            uint32_t U = static_cast<uint32_t>(P);
            P = static_cast<jni::jint>(packRgb(
                LutR[redOf(U)], LutG[greenOf(U)], LutB[blueOf(U)]));
          }

          writeArrayFromNative<jni::jint>(Ctx.Env, Image, Px);
          return checksumPixels(Px);
        });
  }

protected:
  uint64_t seedSalt() const override { return 0xF117u; }
};

// ---- HDR ---------------------------------------------------------------------

class HdrWorkload final : public Workload {
public:
  const char *name() const override { return "HDR"; }

  void prepare(WorkloadContext &Ctx) override {
    // Three synthetic exposures of the same scene.
    for (int E = 0; E < 3; ++E) {
      Exposures[E] = Ctx.Env.NewIntArray(Ctx.Scope, kW * kH);
      fillSyntheticPhoto(Exposures[E], Ctx.Seed ^ 0x4D8);
      auto *Px = rt::arrayData<jni::jint>(Exposures[E]);
      double Gain = E == 0 ? 0.5 : (E == 1 ? 1.0 : 1.8);
      for (uint32_t I = 0; I < kW * kH; ++I) {
        uint32_t P = static_cast<uint32_t>(Px[I]);
        auto Scale = [Gain](uint32_t C) {
          return static_cast<uint32_t>(
              std::min(255.0, std::floor(C * Gain)));
        };
        Px[I] = static_cast<jni::jint>(
            packRgb(Scale(redOf(P)), Scale(greenOf(P)), Scale(blueOf(P))));
      }
    }
    Output = Ctx.Env.NewIntArray(Ctx.Scope, kW * kH);
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "hdr_merge", [&] {
          std::vector<jni::jint> E0 =
              readArrayToNative<jni::jint>(Ctx.Env, Exposures[0]);
          std::vector<jni::jint> E1 =
              readArrayToNative<jni::jint>(Ctx.Env, Exposures[1]);
          std::vector<jni::jint> E2 =
              readArrayToNative<jni::jint>(Ctx.Env, Exposures[2]);
          std::vector<jni::jint> Out(E0.size());

          // Exposure-fusion weights favouring mid-tones, then Reinhard
          // tone mapping.
          for (size_t I = 0; I < Out.size(); ++I) {
            double R = 0, G = 0, B = 0, WSum = 0;
            for (const auto *E : {&E0, &E1, &E2}) {
              uint32_t P = static_cast<uint32_t>((*E)[I]);
              double Lum =
                  (0.299 * redOf(P) + 0.587 * greenOf(P) + 0.114 * blueOf(P)) /
                  255.0;
              double W = std::exp(-12.0 * (Lum - 0.5) * (Lum - 0.5)) + 1e-3;
              R += W * redOf(P);
              G += W * greenOf(P);
              B += W * blueOf(P);
              WSum += W;
            }
            R /= WSum;
            G /= WSum;
            B /= WSum;
            auto Tone = [](double C) {
              double L = C / 255.0;
              return static_cast<uint32_t>(255.0 * L / (1.0 + L) * 1.9);
            };
            Out[I] = static_cast<jni::jint>(packRgb(
                std::min(255u, Tone(R)), std::min(255u, Tone(G)),
                std::min(255u, Tone(B))));
          }

          writeArrayFromNative<jni::jint>(Ctx.Env, Output, Out);
          return checksumPixels(Out);
        });
  }

private:
  jni::jarray Exposures[3] = {nullptr, nullptr, nullptr};
  jni::jarray Output = nullptr;
};

// ---- Object Remover -----------------------------------------------------------

class ObjectRemoverWorkload final : public ImageWorkloadBase {
public:
  const char *name() const override { return "Object Remover"; }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "object_remover", [&] {
          std::vector<jni::jint> Px =
              readArrayToNative<jni::jint>(Ctx.Env, Image);

          // "Remove" a rectangle by diffusion inpainting from its border.
          constexpr uint32_t X0 = kW / 3, X1 = kW / 3 + 40;
          constexpr uint32_t Y0 = kH / 3, Y1 = kH / 3 + 30;
          for (int Iter = 0; Iter < 24; ++Iter) {
            for (uint32_t Y = Y0; Y < Y1; ++Y) {
              for (uint32_t X = X0; X < X1; ++X) {
                uint32_t N = static_cast<uint32_t>(Px[(Y - 1) * kW + X]);
                uint32_t S = static_cast<uint32_t>(Px[(Y + 1) * kW + X]);
                uint32_t W = static_cast<uint32_t>(Px[Y * kW + X - 1]);
                uint32_t E = static_cast<uint32_t>(Px[Y * kW + X + 1]);
                Px[Y * kW + X] = static_cast<jni::jint>(packRgb(
                    (redOf(N) + redOf(S) + redOf(W) + redOf(E)) / 4,
                    (greenOf(N) + greenOf(S) + greenOf(W) + greenOf(E)) / 4,
                    (blueOf(N) + blueOf(S) + blueOf(W) + blueOf(E)) / 4));
              }
            }
          }

          writeArrayFromNative<jni::jint>(Ctx.Env, Image, Px);
          return checksumPixels(Px);
        });
  }

protected:
  uint64_t seedSalt() const override { return 0x0B7Eu; }
};

// ---- Photo Library -------------------------------------------------------------

class PhotoLibraryWorkload final : public Workload {
public:
  const char *name() const override { return "Photo Library"; }

  void prepare(WorkloadContext &Ctx) override {
    for (int P = 0; P < kPhotos; ++P) {
      Photos[P] = Ctx.Env.NewIntArray(Ctx.Scope, kW * kH);
      fillSyntheticPhoto(Photos[P], Ctx.Seed ^ (0x11bul * (P + 1)));
    }
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "photo_library_index", [&] {
          uint64_t Sum = 0;
          for (int P = 0; P < kPhotos; ++P) {
            std::vector<jni::jint> Px =
                readArrayToNative<jni::jint>(Ctx.Env, Photos[P]);

            // Thumbnail (4x decimation) + 64-bin luminance histogram:
            // the classifier features of a gallery indexer.
            std::array<uint32_t, 64> Hist{};
            uint64_t ThumbSum = 0;
            for (uint32_t Y = 0; Y < kH; Y += 4) {
              for (uint32_t X = 0; X < kW; X += 4) {
                uint32_t Pix = static_cast<uint32_t>(Px[Y * kW + X]);
                uint32_t Lum =
                    (299 * redOf(Pix) + 587 * greenOf(Pix) +
                     114 * blueOf(Pix)) /
                    1000;
                ++Hist[Lum >> 2];
                ThumbSum += Pix & 0xFFFFFF;
              }
            }
            Sum = mixChecksum(Sum, ThumbSum);
            for (uint32_t H : Hist)
              Sum = mixChecksum(Sum, H);
          }
          return Sum;
        });
  }

private:
  static constexpr int kPhotos = 4;
  jni::jarray Photos[kPhotos] = {};
};

// ---- Horizon Detection -----------------------------------------------------------

class HorizonDetectionWorkload final : public ImageWorkloadBase {
public:
  const char *name() const override { return "Horizon Detection"; }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "horizon_detect", [&] {
          std::vector<jni::jint> Px =
              readArrayToNative<jni::jint>(Ctx.Env, Image);

          // Vertical gradient magnitude, then vote for the row with the
          // strongest cumulative horizontal edge (the horizon).
          std::vector<uint32_t> RowVotes(kH, 0);
          for (uint32_t Y = 1; Y < kH - 1; ++Y) {
            for (uint32_t X = 0; X < kW; ++X) {
              uint32_t A = static_cast<uint32_t>(Px[(Y - 1) * kW + X]);
              uint32_t B = static_cast<uint32_t>(Px[(Y + 1) * kW + X]);
              int LumA = static_cast<int>(
                  (redOf(A) + greenOf(A) + blueOf(A)) / 3);
              int LumB = static_cast<int>(
                  (redOf(B) + greenOf(B) + blueOf(B)) / 3);
              RowVotes[Y] += static_cast<uint32_t>(std::abs(LumA - LumB));
            }
          }
          uint32_t BestRow = 0;
          for (uint32_t Y = 1; Y < kH; ++Y)
            if (RowVotes[Y] > RowVotes[BestRow])
              BestRow = Y;

          uint64_t Sum = BestRow;
          for (uint32_t V : RowVotes)
            Sum = mixChecksum(Sum, V);
          return Sum;
        });
  }

protected:
  uint64_t seedSalt() const override { return 0x40u; }
};

} // namespace

std::unique_ptr<Workload> makeBackgroundBlur() {
  return std::make_unique<BackgroundBlurWorkload>();
}
std::unique_ptr<Workload> makePhotoFilter() {
  return std::make_unique<PhotoFilterWorkload>();
}
std::unique_ptr<Workload> makeHdr() { return std::make_unique<HdrWorkload>(); }
std::unique_ptr<Workload> makeObjectRemover() {
  return std::make_unique<ObjectRemoverWorkload>();
}
std::unique_ptr<Workload> makePhotoLibrary() {
  return std::make_unique<PhotoLibraryWorkload>();
}
std::unique_ptr<Workload> makeHorizonDetection() {
  return std::make_unique<HorizonDetectionWorkload>();
}

} // namespace mte4jni::workloads

//===- Html5.cpp - "HTML5 Browser" workload -------------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Models Geekbench's HTML5 Browser sub-item: tokenise an HTML document,
// build a DOM-ish tree, then compute a layout pass (box widths) over it.
// The document crosses the JNI boundary in bulk; the parse runs on native
// scratch (boundary-traffic class).
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

#include "mte4jni/rt/Trampoline.h"

#include <string>
#include <vector>

namespace mte4jni::workloads {
namespace {

struct DomNode {
  uint32_t TagHash = 0;
  int32_t Parent = -1;
  uint32_t TextBytes = 0;
  uint32_t Width = 0;
};

/// Deterministic pseudo-HTML document of roughly \p TargetBytes, balanced
/// tags with class attributes and word runs. Shared by the byte-array
/// profile (bulk boundary traffic) and the jstring profile (per-char
/// string-critical traffic) so both parse identical markup per seed.
std::string buildHtmlDocument(uint64_t Seed, size_t TargetBytes) {
  support::Xoshiro256 Rng(Seed ^ 0x4735);
  static const char *Tags[] = {"div", "span", "p", "a", "li", "ul",
                               "h1",  "td",   "tr"};
  std::string Doc = "<html><body>";
  unsigned Depth = 2;
  std::vector<const char *> Stack = {"html", "body"};
  while (Doc.size() < TargetBytes - 64) {
    if (Depth < 12 && Rng.nextBool(0.55)) {
      const char *T = Tags[Rng.nextBelow(std::size(Tags))];
      Doc += "<";
      Doc += T;
      if (Rng.nextBool(0.3))
        Doc += " class=\"c" + std::to_string(Rng.nextBelow(30)) + "\"";
      Doc += ">";
      Stack.push_back(T);
      ++Depth;
    } else if (Depth > 2 && Rng.nextBool(0.5)) {
      Doc += "</";
      Doc += Stack.back();
      Doc += ">";
      Stack.pop_back();
      --Depth;
    } else {
      for (unsigned I = 0, N = unsigned(4 + Rng.nextBelow(40)); I < N; ++I)
        Doc += static_cast<char>('a' + Rng.nextBelow(26));
      Doc += ' ';
    }
  }
  while (!Stack.empty()) {
    Doc += "</";
    Doc += Stack.back();
    Doc += ">";
    Stack.pop_back();
  }
  return Doc;
}

class Html5Workload final : public Workload {
public:
  const char *name() const override { return "HTML5 Browser"; }

  void prepare(WorkloadContext &Ctx) override {
    std::string Doc = buildHtmlDocument(Ctx.Seed, kDocBytes);

    Document = Ctx.Env.NewByteArray(Ctx.Scope,
                                    static_cast<jni::jsize>(Doc.size()));
    auto *Data = rt::arrayData<jni::jbyte>(Document);
    for (size_t I = 0; I < Doc.size(); ++I)
      Data[I] = static_cast<jni::jbyte>(Doc[I]);
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "html5_parse_layout", [&] {
          std::vector<jni::jbyte> Doc =
              readArrayToNative<jni::jbyte>(Ctx.Env, Document);

          // Tokenise + build the tree.
          std::vector<DomNode> Nodes;
          Nodes.push_back({}); // document node
          int32_t Cur = 0;
          size_t I = 0;
          auto HashRange = [&](size_t From, size_t To) {
            uint32_t H = 2166136261u;
            for (size_t K = From; K < To; ++K)
              H = (H ^ static_cast<uint8_t>(Doc[K])) * 16777619u;
            return H;
          };
          while (I < Doc.size()) {
            if (Doc[I] != '<') {
              ++Nodes[static_cast<size_t>(Cur)].TextBytes;
              ++I;
              continue;
            }
            bool Close = I + 1 < Doc.size() && Doc[I + 1] == '/';
            size_t NameStart = I + (Close ? 2 : 1);
            size_t J = NameStart;
            while (J < Doc.size() && Doc[J] != '>' && Doc[J] != ' ')
              ++J;
            size_t End = J;
            while (End < Doc.size() && Doc[End] != '>')
              ++End;
            if (Close) {
              if (Nodes[static_cast<size_t>(Cur)].Parent >= 0)
                Cur = Nodes[static_cast<size_t>(Cur)].Parent;
            } else {
              DomNode N;
              N.TagHash = HashRange(NameStart, J);
              N.Parent = Cur;
              Nodes.push_back(N);
              Cur = static_cast<int32_t>(Nodes.size() - 1);
            }
            I = End + 1;
          }

          // "Layout": width = own text * 7px + children widths, computed
          // bottom-up (children appear after parents in Nodes).
          for (size_t K = Nodes.size(); K-- > 0;) {
            Nodes[K].Width += Nodes[K].TextBytes * 7;
            if (Nodes[K].Parent >= 0)
              Nodes[static_cast<size_t>(Nodes[K].Parent)].Width +=
                  Nodes[K].Width / 2;
          }

          uint64_t Sum = Nodes.size();
          for (const DomNode &N : Nodes)
            Sum = mixChecksum(Sum, (uint64_t(N.TagHash) << 16) ^ N.Width);
          return Sum;
        });
  }

private:
  static constexpr size_t kDocBytes = 48 << 10;
  jni::jarray Document = nullptr;
};

/// The server harness's string tenant: the same markup kept as a Java
/// *string*, parsed through GetStringCritical one jchar at a time. Unlike
/// Html5Workload (one bulk transfer, native-scratch parse), every character
/// read here goes through the tagged JNI pointer — the per-access checked
/// style the paper calls JNI-intensive — so string-critical acquire/release
/// plus per-char checking dominate. Not part of the 16-item Geekbench
/// suite; reachable via makeWorkload("HTML5 DOM Strings") and the workload
/// registry's server request mix.
class Html5StringsWorkload final : public Workload {
public:
  const char *name() const override { return "HTML5 DOM Strings"; }
  bool isJniIntensive() const override { return true; }

  void prepare(WorkloadContext &Ctx) override {
    std::string Doc = buildHtmlDocument(Ctx.Seed, kDocBytes);
    Document = Ctx.Env.NewStringUTF(Ctx.Scope, Doc.c_str());
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "html5_dom_strings", [&] {
          jni::jboolean IsCopy;
          jni::jsize Len = Ctx.Env.GetStringLength(Document);
          auto Chars = Ctx.Env.GetStringCritical(Document, &IsCopy);

          auto At = [&](jni::jsize I) {
            return static_cast<char>(
                mte::load<const jni::jchar>(Chars + I));
          };
          // Tokenise + tree + layout as in Html5Workload, but every read
          // crosses the checked pointer.
          std::vector<DomNode> Nodes;
          Nodes.push_back({});
          int32_t Cur = 0;
          jni::jsize I = 0;
          uint32_t Tokens = 0;
          while (I < Len) {
            // This scan holds a string critical for the whole document:
            // checkpoint periodically so a requested GC pause is not
            // stalled for the full parse (the string stays pinned).
            if ((Tokens++ & 255) == 0)
              Ctx.Thread.runtime().safepointPoll();
            if (At(I) != '<') {
              ++Nodes[static_cast<size_t>(Cur)].TextBytes;
              ++I;
              continue;
            }
            bool Close = I + 1 < Len && At(I + 1) == '/';
            jni::jsize NameStart = I + (Close ? 2 : 1);
            jni::jsize J = NameStart;
            uint32_t H = 2166136261u;
            while (J < Len) {
              char C = At(J);
              if (C == '>' || C == ' ')
                break;
              H = (H ^ static_cast<uint8_t>(C)) * 16777619u;
              ++J;
            }
            jni::jsize End = J;
            while (End < Len && At(End) != '>')
              ++End;
            if (Close) {
              if (Nodes[static_cast<size_t>(Cur)].Parent >= 0)
                Cur = Nodes[static_cast<size_t>(Cur)].Parent;
            } else {
              DomNode N;
              N.TagHash = H;
              N.Parent = Cur;
              Nodes.push_back(N);
              Cur = static_cast<int32_t>(Nodes.size() - 1);
            }
            I = End + 1;
          }
          Ctx.Env.ReleaseStringCritical(Document, Chars);

          for (size_t K = Nodes.size(); K-- > 0;) {
            Nodes[K].Width += Nodes[K].TextBytes * 7;
            if (Nodes[K].Parent >= 0)
              Nodes[static_cast<size_t>(Nodes[K].Parent)].Width +=
                  Nodes[K].Width / 2;
          }
          uint64_t Sum = Nodes.size();
          for (const DomNode &N : Nodes)
            Sum = mixChecksum(Sum, (uint64_t(N.TagHash) << 16) ^ N.Width);
          return Sum;
        });
  }

private:
  /// Smaller than the byte-array profile: one request should cost tens of
  /// microseconds, not a full page render, so a paced server can push
  /// thousands per second per worker.
  static constexpr size_t kDocBytes = 16 << 10;
  jni::jstring Document = nullptr;
};

} // namespace

std::unique_ptr<Workload> makeHtml5Browser() {
  return std::make_unique<Html5Workload>();
}

std::unique_ptr<Workload> makeHtml5DomStrings() {
  return std::make_unique<Html5StringsWorkload>();
}

} // namespace mte4jni::workloads

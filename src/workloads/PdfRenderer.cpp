//===- PdfRenderer.cpp - "PDF Renderer" workload -------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Models Geekbench's PDF Renderer sub-item: rasterise a page description
// (filled rectangles, glyph boxes, horizontal rules) into an RGBA
// framebuffer. The framebuffer is a Java int array written *pixel by pixel
// through the JNI pointer* — the third §5.4 JNI-intensive workload.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

#include "mte4jni/rt/Trampoline.h"

#include <algorithm>

namespace mte4jni::workloads {
namespace {

struct DrawOp {
  uint16_t X, Y, W, H;
  uint32_t Color;
};

class PdfRendererWorkload final : public Workload {
public:
  const char *name() const override { return "PDF Renderer"; }
  bool isJniIntensive() const override { return true; }

  void prepare(WorkloadContext &Ctx) override {
    Framebuffer = Ctx.Env.NewIntArray(Ctx.Scope, kWidth * kHeight);

    // A deterministic "page": text lines (small glyph boxes), a figure
    // (large rect) and rules.
    support::Xoshiro256 Rng(Ctx.Seed ^ 0x9DF);
    Ops.clear();
    // Figure block.
    Ops.push_back({40, 40, 240, 160, 0xFF8899AA});
    // Horizontal rules.
    for (uint16_t Y = 220; Y < kHeight - 20; Y += 60)
      Ops.push_back({20, Y, kWidth - 40, 2, 0xFF000000});
    // Glyph boxes: ~12 lines of ~40 glyphs.
    for (uint16_t Line = 0; Line < 12; ++Line) {
      uint16_t Y = static_cast<uint16_t>(240 + Line * 20);
      uint16_t X = 24;
      while (X < kWidth - 32) {
        uint16_t W = static_cast<uint16_t>(4 + Rng.nextBelow(8));
        Ops.push_back({X, Y, W, 12,
                       0xFF000000u | unsigned(Rng.nextBelow(0x40))});
        X = static_cast<uint16_t>(X + W + 2 + Rng.nextBelow(4));
      }
    }
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "pdf_render", [&] {
          jni::jboolean IsCopy;
          auto Fb = Ctx.Env.GetIntArrayElements(Framebuffer, &IsCopy);

          // Clear to paper white, then rasterise each op with alpha-less
          // src-over writes; every pixel goes through the JNI pointer.
          const jni::jint White = static_cast<jni::jint>(0xFFFFFFFF);
          for (uint32_t I = 0; I < kWidth * kHeight; ++I)
            mte::store<jni::jint>(Fb + I, White);

          for (const DrawOp &Op : Ops) {
            uint32_t X1 = std::min<uint32_t>(Op.X + Op.W, kWidth);
            uint32_t Y1 = std::min<uint32_t>(Op.Y + Op.H, kHeight);
            for (uint32_t Y = Op.Y; Y < Y1; ++Y)
              for (uint32_t X = Op.X; X < X1; ++X)
                mte::store<jni::jint>(Fb + (Y * kWidth + X),
                                      static_cast<jni::jint>(Op.Color));
          }

          // Checksum a sparse sample of the page.
          uint64_t Sum = 0;
          for (uint32_t I = 0; I < kWidth * kHeight; I += 97)
            Sum = mixChecksum(
                Sum, static_cast<uint32_t>(mte::load<jni::jint>(Fb + I)));

          Ctx.Env.ReleaseIntArrayElements(Framebuffer, Fb, 0);
          return Sum;
        });
  }

private:
  static constexpr uint32_t kWidth = 320;
  static constexpr uint32_t kHeight = 440;
  jni::jarray Framebuffer = nullptr;
  std::vector<DrawOp> Ops;
};

} // namespace

std::unique_ptr<Workload> makePdfRenderer() {
  return std::make_unique<PdfRendererWorkload>();
}

} // namespace mte4jni::workloads

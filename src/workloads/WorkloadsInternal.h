//===- WorkloadsInternal.h - Per-workload factory declarations --------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_WORKLOADS_WORKLOADSINTERNAL_H
#define MTE4JNI_WORKLOADS_WORKLOADSINTERNAL_H

#include "mte4jni/workloads/Workload.h"

namespace mte4jni::workloads {

std::unique_ptr<Workload> makeFileCompression();
std::unique_ptr<Workload> makeNavigation();
std::unique_ptr<Workload> makeHtml5Browser();
std::unique_ptr<Workload> makeHtml5DomStrings();
std::unique_ptr<Workload> makePdfRenderer();
std::unique_ptr<Workload> makePhotoLibrary();
std::unique_ptr<Workload> makeClang();
std::unique_ptr<Workload> makeTextProcessing();
std::unique_ptr<Workload> makeAssetCompression();
std::unique_ptr<Workload> makeObjectDetection();
std::unique_ptr<Workload> makeBackgroundBlur();
std::unique_ptr<Workload> makeHorizonDetection();
std::unique_ptr<Workload> makeObjectRemover();
std::unique_ptr<Workload> makeHdr();
std::unique_ptr<Workload> makePhotoFilter();
std::unique_ptr<Workload> makeRayTracer();
std::unique_ptr<Workload> makeStructureFromMotion();

} // namespace mte4jni::workloads

#endif // MTE4JNI_WORKLOADS_WORKLOADSINTERNAL_H

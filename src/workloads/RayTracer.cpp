//===- RayTracer.cpp - "Ray Tracer" workload -------------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Models Geekbench's Ray Tracer sub-item: a small sphere scene with
// Lambertian shading, hard shadows and one reflection bounce. Scene
// parameters live in a Java float array; the rendered tile is written back
// into a Java int array in bulk.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

#include "mte4jni/rt/Trampoline.h"

#include <cmath>

namespace mte4jni::workloads {
namespace {

struct Vec3 {
  double X = 0, Y = 0, Z = 0;
  Vec3 operator+(const Vec3 &O) const { return {X + O.X, Y + O.Y, Z + O.Z}; }
  Vec3 operator-(const Vec3 &O) const { return {X - O.X, Y - O.Y, Z - O.Z}; }
  Vec3 operator*(double S) const { return {X * S, Y * S, Z * S}; }
  double dot(const Vec3 &O) const { return X * O.X + Y * O.Y + Z * O.Z; }
  Vec3 normalized() const {
    double L = std::sqrt(dot(*this));
    return L > 0 ? *this * (1.0 / L) : *this;
  }
};

struct Sphere {
  Vec3 Center;
  double Radius = 1;
  Vec3 Color;
  double Reflect = 0;
};

class RayTracerWorkload final : public Workload {
public:
  const char *name() const override { return "Ray Tracer"; }

  void prepare(WorkloadContext &Ctx) override {
    // Scene: 7 floats per sphere (center, radius, rgb... pack reflect into
    // color w), stored in a Java float array like a game would marshal it.
    support::Xoshiro256 Rng(Ctx.Seed ^ 0x7A3);
    SceneData = Ctx.Env.NewFloatArray(Ctx.Scope, kSpheres * 8);
    auto *F = rt::arrayData<jni::jfloat>(SceneData);
    for (uint32_t S = 0; S < kSpheres; ++S) {
      F[S * 8 + 0] = static_cast<jni::jfloat>(Rng.nextDouble() * 8 - 4);
      F[S * 8 + 1] = static_cast<jni::jfloat>(Rng.nextDouble() * 2 - 0.5);
      F[S * 8 + 2] = static_cast<jni::jfloat>(6 + Rng.nextDouble() * 6);
      F[S * 8 + 3] = static_cast<jni::jfloat>(0.4 + Rng.nextDouble());
      F[S * 8 + 4] = static_cast<jni::jfloat>(Rng.nextDouble());
      F[S * 8 + 5] = static_cast<jni::jfloat>(Rng.nextDouble());
      F[S * 8 + 6] = static_cast<jni::jfloat>(Rng.nextDouble());
      F[S * 8 + 7] = static_cast<jni::jfloat>(Rng.nextBool(0.4) ? 0.5 : 0.0);
    }
    Tile = Ctx.Env.NewIntArray(Ctx.Scope, kW * kH);
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "ray_trace", [&] {
          std::vector<jni::jfloat> F =
              readArrayToNative<jni::jfloat>(Ctx.Env, SceneData);
          std::vector<Sphere> Scene(kSpheres);
          for (uint32_t S = 0; S < kSpheres; ++S) {
            Scene[S].Center = {F[S * 8], F[S * 8 + 1], F[S * 8 + 2]};
            Scene[S].Radius = F[S * 8 + 3];
            Scene[S].Color = {F[S * 8 + 4], F[S * 8 + 5], F[S * 8 + 6]};
            Scene[S].Reflect = F[S * 8 + 7];
          }

          std::vector<jni::jint> Out(kW * kH);
          const Vec3 Light = Vec3{-5, 8, -2}.normalized();
          for (uint32_t Y = 0; Y < kH; ++Y) {
            for (uint32_t X = 0; X < kW; ++X) {
              Vec3 Dir = Vec3{(double(X) / kW - 0.5) * 1.6,
                              (0.5 - double(Y) / kH) * 1.2, 1.0}
                             .normalized();
              Vec3 C = trace(Scene, {0, 1, 0}, Dir, Light, 2);
              auto Q = [](double V) {
                return static_cast<uint32_t>(
                    std::min(255.0, std::max(0.0, V * 255.0)));
              };
              Out[Y * kW + X] = static_cast<jni::jint>(
                  0xFF000000u | (Q(C.X) << 16) | (Q(C.Y) << 8) | Q(C.Z));
            }
          }

          writeArrayFromNative<jni::jint>(Ctx.Env, Tile, Out);
          uint64_t Sum = 0;
          for (size_t I = 0; I < Out.size(); I += 53)
            Sum = mixChecksum(Sum, static_cast<uint32_t>(Out[I]));
          return Sum;
        });
  }

private:
  static constexpr uint32_t kW = 96;
  static constexpr uint32_t kH = 72;
  static constexpr uint32_t kSpheres = 8;

  static bool intersect(const Sphere &S, const Vec3 &O, const Vec3 &D,
                        double &T) {
    Vec3 OC = O - S.Center;
    double B = OC.dot(D);
    double C = OC.dot(OC) - S.Radius * S.Radius;
    double Disc = B * B - C;
    if (Disc < 0)
      return false;
    double Root = std::sqrt(Disc);
    double T0 = -B - Root;
    if (T0 > 1e-4) {
      T = T0;
      return true;
    }
    double T1 = -B + Root;
    if (T1 > 1e-4) {
      T = T1;
      return true;
    }
    return false;
  }

  static Vec3 trace(const std::vector<Sphere> &Scene, const Vec3 &O,
                    const Vec3 &D, const Vec3 &Light, int Depth) {
    double BestT = 1e30;
    const Sphere *Hit = nullptr;
    for (const Sphere &S : Scene) {
      double T;
      if (intersect(S, O, D, T) && T < BestT) {
        BestT = T;
        Hit = &S;
      }
    }
    if (!Hit) {
      double Sky = 0.5 + 0.5 * D.Y;
      return {0.4 * Sky, 0.6 * Sky, 0.9 * Sky};
    }
    Vec3 P = O + D * BestT;
    Vec3 N = (P - Hit->Center).normalized();
    double Diffuse = std::max(0.0, N.dot(Light));

    // Hard shadow.
    for (const Sphere &S : Scene) {
      double T;
      if (&S != Hit && intersect(S, P + N * 1e-3, Light, T)) {
        Diffuse *= 0.2;
        break;
      }
    }

    Vec3 Color = Hit->Color * (0.15 + 0.85 * Diffuse);
    if (Depth > 0 && Hit->Reflect > 0) {
      Vec3 R = D - N * (2.0 * D.dot(N));
      Vec3 Refl = trace(Scene, P + N * 1e-3, R.normalized(), Light,
                        Depth - 1);
      Color = Color * (1.0 - Hit->Reflect) + Refl * Hit->Reflect;
    }
    return Color;
  }

  jni::jarray SceneData = nullptr;
  jni::jarray Tile = nullptr;
};

} // namespace

std::unique_ptr<Workload> makeRayTracer() {
  return std::make_unique<RayTracerWorkload>();
}

} // namespace mte4jni::workloads

//===- Registry.cpp - Workload suite registry --------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

#include <cstring>

namespace mte4jni::workloads {

Workload::~Workload() = default;

std::vector<std::unique_ptr<Workload>> makeAllWorkloads() {
  std::vector<std::unique_ptr<Workload>> All;
  All.push_back(makeFileCompression());
  All.push_back(makeNavigation());
  All.push_back(makeHtml5Browser());
  All.push_back(makePdfRenderer());
  All.push_back(makePhotoLibrary());
  All.push_back(makeClang());
  All.push_back(makeTextProcessing());
  All.push_back(makeAssetCompression());
  All.push_back(makeObjectDetection());
  All.push_back(makeBackgroundBlur());
  All.push_back(makeHorizonDetection());
  All.push_back(makeObjectRemover());
  All.push_back(makeHdr());
  All.push_back(makePhotoFilter());
  All.push_back(makeRayTracer());
  All.push_back(makeStructureFromMotion());
  return All;
}

std::vector<std::unique_ptr<Workload>> makeServerProfileWorkloads() {
  // Request-mix profiles for the tenant server harness. These live outside
  // the 16-item Geekbench suite (Figure 7/8 stay byte-for-byte comparable)
  // but are first-class registry citizens: makeWorkload() finds them.
  std::vector<std::unique_ptr<Workload>> Extra;
  Extra.push_back(makeHtml5DomStrings());
  return Extra;
}

std::unique_ptr<Workload> makeWorkload(const char *Name) {
  for (auto &W : makeAllWorkloads())
    if (std::strcmp(W->name(), Name) == 0)
      return std::move(W);
  for (auto &W : makeServerProfileWorkloads())
    if (std::strcmp(W->name(), Name) == 0)
      return std::move(W);
  return nullptr;
}

} // namespace mte4jni::workloads

//===- Navigation.cpp - "Navigation" workload -----------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Models Geekbench's Navigation sub-item: shortest-path queries on a road
// network. The edge-weight grid lives in a Java int array; native code
// pulls it across the JNI boundary and runs Dijkstra with a binary heap
// for several origin/destination pairs.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

#include "mte4jni/rt/Trampoline.h"

#include <queue>

namespace mte4jni::workloads {
namespace {

class NavigationWorkload final : public Workload {
public:
  const char *name() const override { return "Navigation"; }

  void prepare(WorkloadContext &Ctx) override {
    support::Xoshiro256 Rng(Ctx.Seed ^ 0x9A7);
    Costs = Ctx.Env.NewIntArray(Ctx.Scope, kN * kN);
    auto *C = rt::arrayData<jni::jint>(Costs);
    for (uint32_t I = 0; I < kN * kN; ++I)
      C[I] = static_cast<jni::jint>(1 + Rng.nextBelow(9));
    // Cheap "motorways": two low-cost corridors.
    for (uint32_t I = 0; I < kN; ++I) {
      C[(kN / 3) * kN + I] = 1;
      C[I * kN + (2 * kN / 3)] = 1;
    }
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "navigation_route", [&] {
          std::vector<jni::jint> C =
              readArrayToNative<jni::jint>(Ctx.Env, Costs);

          uint64_t Sum = 0;
          const std::pair<uint32_t, uint32_t> Queries[] = {
              {0, kN * kN - 1},
              {kN - 1, kN * (kN - 1)},
              {kN / 2, kN * kN - kN / 2},
          };
          for (auto [Src, Dst] : Queries)
            Sum = mixChecksum(Sum, dijkstra(C, Src, Dst));
          return Sum;
        });
  }

private:
  static constexpr uint32_t kN = 96; // 96x96 grid

  static uint64_t dijkstra(const std::vector<jni::jint> &C, uint32_t Src,
                           uint32_t Dst) {
    constexpr uint32_t Inf = UINT32_MAX;
    std::vector<uint32_t> Dist(kN * kN, Inf);
    using Item = std::pair<uint32_t, uint32_t>; // (dist, node)
    std::priority_queue<Item, std::vector<Item>, std::greater<>> Heap;
    Dist[Src] = 0;
    Heap.push({0, Src});
    while (!Heap.empty()) {
      auto [D, U] = Heap.top();
      Heap.pop();
      if (D > Dist[U])
        continue;
      if (U == Dst)
        break;
      uint32_t X = U % kN, Y = U / kN;
      const int32_t DX[] = {1, -1, 0, 0};
      const int32_t DY[] = {0, 0, 1, -1};
      for (int Dir = 0; Dir < 4; ++Dir) {
        int32_t NX = static_cast<int32_t>(X) + DX[Dir];
        int32_t NY = static_cast<int32_t>(Y) + DY[Dir];
        if (NX < 0 || NY < 0 || NX >= int32_t(kN) || NY >= int32_t(kN))
          continue;
        uint32_t V = static_cast<uint32_t>(NY) * kN +
                     static_cast<uint32_t>(NX);
        uint32_t ND = D + static_cast<uint32_t>(C[V]);
        if (ND < Dist[V]) {
          Dist[V] = ND;
          Heap.push({ND, V});
        }
      }
    }
    return Dist[Dst];
  }

  jni::jarray Costs = nullptr;
};

} // namespace

std::unique_ptr<Workload> makeNavigation() {
  return std::make_unique<NavigationWorkload>();
}

} // namespace mte4jni::workloads

//===- Compression.cpp - Compression-family workloads --------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// File Compression: an LZ77-style matcher plus order-0 entropy estimate
// over a document held in a Java byte array.
// Asset Compression: BC1-style 4x4 texture block compression of a Java
// int-array image.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

#include "mte4jni/rt/Trampoline.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace mte4jni::workloads {
namespace {

// ---- File Compression --------------------------------------------------------

class FileCompressionWorkload final : public Workload {
public:
  const char *name() const override { return "File Compression"; }

  void prepare(WorkloadContext &Ctx) override {
    // Compressible input: random words with heavy repetition.
    support::Xoshiro256 Rng(Ctx.Seed ^ 0xF11E);
    static const char *Chunks[] = {"abcdefgh", "the file", "compress",
                                   "12345678", "aaaaaaaa", "datadata"};
    Input = Ctx.Env.NewByteArray(Ctx.Scope, kInputBytes);
    auto *Data = rt::arrayData<jni::jbyte>(Input);
    uint32_t Pos = 0;
    while (Pos + 8 <= kInputBytes) {
      const char *C = Chunks[Rng.nextBelow(std::size(Chunks))];
      for (int I = 0; I < 8; ++I)
        Data[Pos++] = static_cast<jni::jbyte>(C[I]);
    }
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "file_compress", [&] {
          std::vector<jni::jbyte> In =
              readArrayToNative<jni::jbyte>(Ctx.Env, Input);

          // LZ77 with a 4 KiB window and 3-byte hash chains.
          std::array<int32_t, 1 << 12> Head;
          Head.fill(-1);
          std::vector<int32_t> Prev(In.size(), -1);
          auto HashAt = [&](size_t I) {
            uint32_t H = static_cast<uint8_t>(In[I]);
            H = H * 33 + static_cast<uint8_t>(In[I + 1]);
            H = H * 33 + static_cast<uint8_t>(In[I + 2]);
            return H & 0xFFF;
          };

          uint64_t Matched = 0, Literals = 0, TokenSum = 0;
          size_t I = 0;
          while (I + 3 < In.size()) {
            uint32_t H = HashAt(I);
            int32_t Cand = Head[H];
            size_t BestLen = 0;
            size_t BestDist = 0;
            int Chain = 0;
            while (Cand >= 0 && I - static_cast<size_t>(Cand) <= 4096 &&
                   Chain++ < 16) {
              size_t Len = 0;
              size_t Max = std::min<size_t>(In.size() - I, 255);
              while (Len < Max &&
                     In[static_cast<size_t>(Cand) + Len] == In[I + Len])
                ++Len;
              if (Len > BestLen) {
                BestLen = Len;
                BestDist = I - static_cast<size_t>(Cand);
              }
              Cand = Prev[static_cast<size_t>(Cand)];
            }
            Prev[I] = Head[H];
            Head[H] = static_cast<int32_t>(I);
            if (BestLen >= 4) {
              TokenSum = mixChecksum(TokenSum, (BestDist << 8) | BestLen);
              Matched += BestLen;
              I += BestLen;
            } else {
              ++Literals;
              ++I;
            }
          }

          // Order-0 entropy estimate of the literal stream (the "Huffman"
          // stage).
          std::array<uint32_t, 256> Freq{};
          for (jni::jbyte B : In)
            ++Freq[static_cast<uint8_t>(B)];
          double Entropy = 0;
          for (uint32_t F : Freq) {
            if (!F)
              continue;
            double P = double(F) / double(In.size());
            Entropy -= P * std::log2(P);
          }

          uint64_t Sum = mixChecksum(TokenSum, Matched);
          Sum = mixChecksum(Sum, Literals);
          Sum = mixChecksum(Sum, static_cast<uint64_t>(Entropy * 1000));
          return Sum;
        });
  }

private:
  static constexpr jni::jsize kInputBytes = 96 << 10;
  jni::jarray Input = nullptr;
};

// ---- Asset Compression ---------------------------------------------------------

class AssetCompressionWorkload final : public Workload {
public:
  const char *name() const override { return "Asset Compression"; }

  void prepare(WorkloadContext &Ctx) override {
    support::Xoshiro256 Rng(Ctx.Seed ^ 0xA55E7);
    Texture = Ctx.Env.NewIntArray(Ctx.Scope, kW * kH);
    auto *Px = rt::arrayData<jni::jint>(Texture);
    for (uint32_t I = 0; I < kW * kH; ++I) {
      uint32_t V = static_cast<uint32_t>(Rng.nextBelow(64));
      uint32_t X = I % kW, Y = I / kW;
      Px[I] = static_cast<jni::jint>(0xFF000000u | ((V + X / 2) << 16) |
                                     ((V + Y / 2) << 8) | V);
    }
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "asset_compress", [&] {
          std::vector<jni::jint> Px =
              readArrayToNative<jni::jint>(Ctx.Env, Texture);

          // BC1-style: per 4x4 block, pick min/max colour endpoints and
          // quantise each texel to 2 bits along the endpoint axis.
          uint64_t Sum = 0;
          for (uint32_t By = 0; By < kH; By += 4) {
            for (uint32_t Bx = 0; Bx < kW; Bx += 4) {
              uint32_t MinL = 255 * 3, MaxL = 0;
              uint32_t MinPix = 0, MaxPix = 0;
              for (uint32_t Y = 0; Y < 4; ++Y) {
                for (uint32_t X = 0; X < 4; ++X) {
                  uint32_t P = static_cast<uint32_t>(
                      Px[(By + Y) * kW + Bx + X]);
                  uint32_t L = ((P >> 16) & 0xFF) + ((P >> 8) & 0xFF) +
                               (P & 0xFF);
                  if (L < MinL) {
                    MinL = L;
                    MinPix = P;
                  }
                  if (L > MaxL) {
                    MaxL = L;
                    MaxPix = P;
                  }
                }
              }
              uint32_t IndexBits = 0;
              uint32_t Range = std::max(1u, MaxL - MinL);
              for (uint32_t Y = 0; Y < 4; ++Y) {
                for (uint32_t X = 0; X < 4; ++X) {
                  uint32_t P = static_cast<uint32_t>(
                      Px[(By + Y) * kW + Bx + X]);
                  uint32_t L = ((P >> 16) & 0xFF) + ((P >> 8) & 0xFF) +
                               (P & 0xFF);
                  uint32_t Q = ((L - MinL) * 3) / Range;
                  IndexBits = (IndexBits << 2) | Q;
                }
              }
              Sum = mixChecksum(Sum, (uint64_t(MinPix & 0xFFFFFF) << 32) ^
                                         (MaxPix & 0xFFFFFF) ^ IndexBits);
            }
          }
          return Sum;
        });
  }

private:
  static constexpr uint32_t kW = 256;
  static constexpr uint32_t kH = 256;
  jni::jarray Texture = nullptr;
};

} // namespace

std::unique_ptr<Workload> makeFileCompression() {
  return std::make_unique<FileCompressionWorkload>();
}
std::unique_ptr<Workload> makeAssetCompression() {
  return std::make_unique<AssetCompressionWorkload>();
}

} // namespace mte4jni::workloads

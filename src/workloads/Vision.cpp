//===- Vision.cpp - ML/vision workloads ------------------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Object Detection: a small convolutional scorer slid over an image
// (Geekbench's on-device inference class).
// Structure from Motion: feature extraction + two-view matching +
// least-squares triangulation-ish solves.
//
//===----------------------------------------------------------------------===//

#include "WorkloadsInternal.h"

#include "mte4jni/rt/Trampoline.h"

#include <algorithm>
#include <array>
#include <cmath>

namespace mte4jni::workloads {
namespace {

constexpr uint32_t kW = 160;
constexpr uint32_t kH = 120;

void fillScene(jni::jarray Image, uint64_t Seed, double ShiftX) {
  support::Xoshiro256 Rng(Seed);
  auto *Px = rt::arrayData<jni::jfloat>(Image);
  for (uint32_t Y = 0; Y < kH; ++Y) {
    for (uint32_t X = 0; X < kW; ++X) {
      double FX = X - ShiftX;
      double V = 0.4 + 0.3 * std::sin(FX * 0.11) * std::cos(Y * 0.17) +
                 0.05 * Rng.nextDouble();
      Px[Y * kW + X] = static_cast<jni::jfloat>(V);
    }
  }
  // Bright blobs ("objects"/"features").
  support::Xoshiro256 BlobRng(Seed ^ 0xB10B);
  for (int B = 0; B < 10; ++B) {
    int Cx = static_cast<int>(12 + BlobRng.nextBelow(kW - 24) - ShiftX);
    uint32_t Cy = static_cast<uint32_t>(8 + BlobRng.nextBelow(kH - 16));
    for (int DY = -3; DY <= 3; ++DY) {
      for (int DX = -3; DX <= 3; ++DX) {
        int X = Cx + DX;
        int Y = static_cast<int>(Cy) + DY;
        if (X < 0 || Y < 0 || X >= int(kW) || Y >= int(kH))
          continue;
        double R2 = DX * DX + DY * DY;
        Px[static_cast<uint32_t>(Y) * kW + static_cast<uint32_t>(X)] +=
            static_cast<jni::jfloat>(0.8 * std::exp(-R2 / 4.0));
      }
    }
  }
}

// ---- Object Detection ---------------------------------------------------------

class ObjectDetectionWorkload final : public Workload {
public:
  const char *name() const override { return "Object Detection"; }

  void prepare(WorkloadContext &Ctx) override {
    Image = Ctx.Env.NewFloatArray(Ctx.Scope, kW * kH);
    fillScene(Image, Ctx.Seed ^ 0x0BDE, 0.0);

    // A fixed 8-filter 5x5 conv bank.
    support::Xoshiro256 Rng(Ctx.Seed ^ 0xF117E2);
    Weights = Ctx.Env.NewFloatArray(Ctx.Scope, kFilters * 25);
    auto *W = rt::arrayData<jni::jfloat>(Weights);
    for (uint32_t I = 0; I < kFilters * 25; ++I)
      W[I] = static_cast<jni::jfloat>(Rng.nextDouble() - 0.5);
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "object_detect", [&] {
          std::vector<jni::jfloat> Img =
              readArrayToNative<jni::jfloat>(Ctx.Env, Image);
          std::vector<jni::jfloat> W =
              readArrayToNative<jni::jfloat>(Ctx.Env, Weights);

          // Stride-2 conv + ReLU + global max per filter, then an argmax
          // "detection".
          uint64_t Sum = 0;
          for (uint32_t F = 0; F < kFilters; ++F) {
            float Best = -1e9f;
            uint32_t BestPos = 0;
            for (uint32_t Y = 2; Y < kH - 2; Y += 2) {
              for (uint32_t X = 2; X < kW - 2; X += 2) {
                float Acc = 0;
                for (int KY = -2; KY <= 2; ++KY)
                  for (int KX = -2; KX <= 2; ++KX)
                    Acc += Img[(Y + static_cast<uint32_t>(KY)) * kW + X +
                               static_cast<uint32_t>(KX)] *
                           W[F * 25 + static_cast<uint32_t>((KY + 2) * 5 +
                                                            KX + 2)];
                if (Acc > Best) {
                  Best = Acc;
                  BestPos = Y * kW + X;
                }
              }
            }
            Sum = mixChecksum(
                Sum, (uint64_t(BestPos) << 16) ^
                         static_cast<uint16_t>(Best * 100));
          }
          return Sum;
        });
  }

private:
  static constexpr uint32_t kFilters = 8;
  jni::jarray Image = nullptr;
  jni::jarray Weights = nullptr;
};

// ---- Structure from Motion ------------------------------------------------------

class SfmWorkload final : public Workload {
public:
  const char *name() const override { return "Structure from Motion"; }

  void prepare(WorkloadContext &Ctx) override {
    ViewA = Ctx.Env.NewFloatArray(Ctx.Scope, kW * kH);
    ViewB = Ctx.Env.NewFloatArray(Ctx.Scope, kW * kH);
    fillScene(ViewA, Ctx.Seed ^ 0x5F4D, 0.0);
    fillScene(ViewB, Ctx.Seed ^ 0x5F4D, 3.5); // same scene, shifted camera
  }

  uint64_t run(WorkloadContext &Ctx) override {
    return rt::callNative(
        Ctx.Thread, rt::NativeKind::Regular, "sfm_reconstruct", [&] {
          std::vector<jni::jfloat> A =
              readArrayToNative<jni::jfloat>(Ctx.Env, ViewA);
          std::vector<jni::jfloat> B =
              readArrayToNative<jni::jfloat>(Ctx.Env, ViewB);

          // Harris-ish corner response on each view; keep the strongest
          // 64 features per view.
          auto Features = [&](const std::vector<jni::jfloat> &V) {
            std::vector<std::pair<float, uint32_t>> Corners;
            for (uint32_t Y = 1; Y < kH - 1; ++Y) {
              for (uint32_t X = 1; X < kW - 1; ++X) {
                float DX = V[Y * kW + X + 1] - V[Y * kW + X - 1];
                float DY = V[(Y + 1) * kW + X] - V[(Y - 1) * kW + X];
                float R = DX * DX * DY * DY -
                          0.04f * (DX * DX + DY * DY) * (DX * DX + DY * DY);
                if (R > 1e-4f)
                  Corners.push_back({R, Y * kW + X});
              }
            }
            std::partial_sort(
                Corners.begin(),
                Corners.begin() +
                    std::min<size_t>(Corners.size(), kFeatures),
                Corners.end(), std::greater<>());
            Corners.resize(std::min<size_t>(Corners.size(), kFeatures));
            return Corners;
          };
          auto FA = Features(A);
          auto FB = Features(B);

          // Match by 7x7 patch SSD; accumulate disparities.
          uint64_t Sum = 0;
          double DispSum = 0;
          unsigned Matches = 0;
          for (const auto &[RA, PosA] : FA) {
            uint32_t XA = PosA % kW, YA = PosA / kW;
            if (XA < 4 || XA >= kW - 4 || YA < 4 || YA >= kH - 4)
              continue;
            float BestSsd = 1e9f;
            uint32_t BestX = XA;
            for (const auto &[RB, PosB] : FB) {
              uint32_t XB = PosB % kW, YB = PosB / kW;
              if (XB < 4 || XB >= kW - 4 || YB < 4 || YB >= kH - 4)
                continue;
              if (std::abs(int(YB) - int(YA)) > 2)
                continue; // epipolar band
              float Ssd = 0;
              for (int DY = -3; DY <= 3; ++DY)
                for (int DX = -3; DX <= 3; ++DX) {
                  float D = A[(YA + static_cast<uint32_t>(DY)) * kW + XA +
                              static_cast<uint32_t>(DX)] -
                            B[(YB + static_cast<uint32_t>(DY)) * kW + XB +
                              static_cast<uint32_t>(DX)];
                  Ssd += D * D;
                }
              if (Ssd < BestSsd) {
                BestSsd = Ssd;
                BestX = XB;
              }
            }
            if (BestSsd < 0.5f) {
              double Disp = double(XA) - double(BestX);
              DispSum += Disp;
              ++Matches;
              // "Triangulate": depth ~ baseline / disparity.
              double Depth = Disp != 0 ? 100.0 / Disp : 0.0;
              Sum = mixChecksum(Sum,
                                static_cast<uint64_t>(Depth * 16) ^ PosA);
            }
          }
          Sum = mixChecksum(Sum, Matches);
          Sum = mixChecksum(Sum, static_cast<uint64_t>(DispSum * 4));
          return Sum;
        });
  }

private:
  static constexpr size_t kFeatures = 64;
  jni::jarray ViewA = nullptr;
  jni::jarray ViewB = nullptr;
};

} // namespace

std::unique_ptr<Workload> makeObjectDetection() {
  return std::make_unique<ObjectDetectionWorkload>();
}
std::unique_ptr<Workload> makeStructureFromMotion() {
  return std::make_unique<SfmWorkload>();
}

} // namespace mte4jni::workloads

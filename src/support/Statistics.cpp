//===- Statistics.cpp - Running statistics and percentiles ------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/Statistics.h"

#include "mte4jni/support/Compiler.h"

#include <algorithm>
#include <cmath>

namespace mte4jni::support {

void RunningStat::add(double X) {
  if (N == 0) {
    Min = Max = X;
  } else {
    Min = std::min(Min, X);
    Max = std::max(Max, X);
  }
  ++N;
  double Delta = X - Mean;
  Mean += Delta / static_cast<double>(N);
  M2 += Delta * (X - Mean);
}

double RunningStat::variance() const {
  if (N < 2)
    return 0.0;
  return M2 / static_cast<double>(N - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

double SampleSet::mean() const {
  if (Samples.empty())
    return 0.0;
  double Sum = 0.0;
  for (double S : Samples)
    Sum += S;
  return Sum / static_cast<double>(Samples.size());
}

double SampleSet::percentile(double P) const {
  if (Samples.empty())
    return 0.0;
  M4J_ASSERT(P >= 0.0 && P <= 100.0, "percentile out of range");
  std::vector<double> Sorted = Samples;
  std::sort(Sorted.begin(), Sorted.end());
  if (Sorted.size() == 1)
    return Sorted.front();
  double Rank = P / 100.0 * static_cast<double>(Sorted.size() - 1);
  size_t Lo = static_cast<size_t>(Rank);
  size_t Hi = std::min(Lo + 1, Sorted.size() - 1);
  double Frac = Rank - static_cast<double>(Lo);
  return Sorted[Lo] + (Sorted[Hi] - Sorted[Lo]) * Frac;
}

double SampleSet::min() const {
  if (Samples.empty())
    return 0.0;
  return *std::min_element(Samples.begin(), Samples.end());
}

double SampleSet::max() const {
  if (Samples.empty())
    return 0.0;
  return *std::max_element(Samples.begin(), Samples.end());
}

double geometricMean(const std::vector<double> &Values) {
  if (Values.empty())
    return 0.0;
  double LogSum = 0.0;
  for (double V : Values) {
    M4J_ASSERT(V > 0.0, "geometricMean requires positive values");
    LogSum += std::log(V);
  }
  return std::exp(LogSum / static_cast<double>(Values.size()));
}

} // namespace mte4jni::support

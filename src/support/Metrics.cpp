//===- Metrics.cpp - Process-wide metrics registry -----------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/Metrics.h"

#include "mte4jni/support/StringUtils.h"

#include <algorithm>
#include <cctype>
#include <map>
#include <memory>
#include <mutex>

namespace mte4jni::support {

namespace detail {

thread_local constinit unsigned MetricShardCache = 0;

namespace {

/// Bit i set <=> shard i is owned by a live thread. acq_rel RMWs order a
/// releasing thread's final plain-store against the next claimant's
/// first add on the recycled cell.
std::atomic<uint32_t> UsedShardMask{0};

unsigned claimShard() {
  uint32_t Mask = UsedShardMask.load(std::memory_order_relaxed);
  for (;;) {
    uint32_t Free = ~Mask & ((1u << kMetricShards) - 1);
    if (Free == 0)
      return kMetricOverflowShard;
    unsigned Bit = static_cast<unsigned>(std::countr_zero(Free));
    if (UsedShardMask.compare_exchange_weak(Mask, Mask | (1u << Bit),
                                            std::memory_order_acq_rel,
                                            std::memory_order_relaxed))
      return Bit;
  }
}

/// Returns the thread's shard at exit so it can be recycled. Afterwards
/// the cache points at the overflow shard: a metric touched from a later
/// thread_local destructor still counts, atomically, instead of writing
/// to a cell a new thread may now own.
struct ShardClaim {
  ~ShardClaim() {
    unsigned Cached = MetricShardCache;
    MetricShardCache = kMetricOverflowShard + 1;
    if (Cached != 0 && Cached - 1 < kMetricShards)
      UsedShardMask.fetch_and(~(1u << (Cached - 1)),
                              std::memory_order_acq_rel);
  }
};

} // namespace

unsigned assignMetricShardSlow() {
  unsigned Shard = claimShard();
  MetricShardCache = Shard + 1;
  if (Shard != kMetricOverflowShard) {
    // Touch the releaser so its destructor registers for thread exit.
    thread_local ShardClaim Claim;
    (void)Claim;
  }
  return Shard;
}

} // namespace detail

// ==== Counter / Histogram aggregation =====================================

uint64_t Counter::value() const {
  uint64_t Sum = 0;
  for (const Cell &C : Cells)
    Sum += C.V.load(std::memory_order_relaxed);
  return Sum;
}

void Counter::reset() {
  for (Cell &C : Cells)
    C.V.store(0, std::memory_order_relaxed);
}

uint64_t Histogram::count() const {
  uint64_t Sum = 0;
  for (const Shard &S : Shards)
    Sum += S.Count.load(std::memory_order_relaxed);
  return Sum;
}

uint64_t Histogram::sum() const {
  uint64_t Sum = 0;
  for (const Shard &S : Shards)
    Sum += S.Sum.load(std::memory_order_relaxed);
  return Sum;
}

uint64_t Histogram::minValue() const {
  uint64_t Min = UINT64_MAX;
  for (const Shard &S : Shards) {
    uint64_t V = S.Min.load(std::memory_order_relaxed);
    if (V < Min)
      Min = V;
  }
  return Min == UINT64_MAX ? 0 : Min; // empty histogram reads as 0
}

uint64_t Histogram::maxValue() const {
  uint64_t Max = 0;
  for (const Shard &S : Shards) {
    uint64_t V = S.Max.load(std::memory_order_relaxed);
    if (V > Max)
      Max = V;
  }
  return Max;
}

std::array<uint64_t, Histogram::kBuckets> Histogram::bucketCounts() const {
  std::array<uint64_t, kBuckets> Out = {};
  for (const Shard &S : Shards)
    for (unsigned B = 0; B < kBuckets; ++B)
      Out[B] += S.Buckets[B].load(std::memory_order_relaxed);
  return Out;
}

void Histogram::reset() {
  for (Shard &S : Shards) {
    for (unsigned B = 0; B < kBuckets; ++B)
      S.Buckets[B].store(0, std::memory_order_relaxed);
    S.Count.store(0, std::memory_order_relaxed);
    S.Sum.store(0, std::memory_order_relaxed);
    S.Min.store(UINT64_MAX, std::memory_order_relaxed);
    S.Max.store(0, std::memory_order_relaxed);
  }
}

uint64_t HistogramSample::percentileUpperBound(double P) const {
  if (Count == 0)
    return 0;
  double Rank = (std::min(std::max(P, 0.0), 100.0) / 100.0) *
                static_cast<double>(Count);
  uint64_t Seen = 0;
  for (unsigned B = 0; B < Histogram::kBuckets; ++B) {
    Seen += Buckets[B];
    if (static_cast<double>(Seen) >= Rank && Seen > 0)
      return Histogram::bucketUpperBound(B);
  }
  return Histogram::bucketUpperBound(Histogram::kBuckets - 1);
}

// ==== fault ring ==========================================================

void FaultRing::record(FaultEvent Event) {
  std::lock_guard<SpinLock> Guard(Lock);
  Event.Sequence = Next;
  if (Event.TimestampNanos == 0)
    Event.TimestampNanos = monotonicNanos();
  Ring[Next % kCapacity] = std::move(Event);
  ++Next;
}

std::vector<FaultEvent> FaultRing::snapshot() const {
  std::lock_guard<SpinLock> Guard(Lock);
  std::vector<FaultEvent> Out;
  uint64_t N = std::min<uint64_t>(Next, kCapacity);
  Out.reserve(N);
  for (uint64_t I = Next - N; I < Next; ++I)
    Out.push_back(Ring[I % kCapacity]);
  return Out;
}

uint64_t FaultRing::totalRecorded() const {
  std::lock_guard<SpinLock> Guard(Lock);
  return Next;
}

void FaultRing::clear() {
  std::lock_guard<SpinLock> Guard(Lock);
  for (FaultEvent &E : Ring)
    E = FaultEvent{};
  Next = 0;
}

// ==== registry ============================================================

namespace {

enum class MetricType : uint8_t { Counter, Gauge, Histogram };

struct Registry {
  std::mutex Lock;
  // std::map keeps names sorted, so snapshots are deterministic for free.
  std::map<std::string, std::pair<MetricType, std::unique_ptr<Counter>>>
      Counters;
  std::map<std::string, std::unique_ptr<Gauge>> Gauges;
  std::map<std::string, std::unique_ptr<Histogram>> Histograms;
  std::map<std::string, DerivedCounterFn> Derived;
  FaultRing Ring;
};

/// Leaked on purpose: instrumented call sites hold references from
/// function-local statics and may fire during static destruction.
Registry &registry() {
  static Registry *R = new Registry;
  return *R;
}

} // namespace

Counter &Metrics::counter(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Guard(R.Lock);
  auto &Slot = R.Counters[Name];
  if (!Slot.second) {
    Slot.first = MetricType::Counter;
    Slot.second = std::make_unique<Counter>();
  }
  return *Slot.second;
}

Gauge &Metrics::gauge(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Guard(R.Lock);
  auto &Slot = R.Gauges[Name];
  if (!Slot)
    Slot = std::make_unique<Gauge>();
  return *Slot;
}

Histogram &Metrics::histogram(const char *Name) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Guard(R.Lock);
  auto &Slot = R.Histograms[Name];
  if (!Slot)
    Slot = std::make_unique<Histogram>();
  return *Slot;
}

void Metrics::registerDerived(const char *Name, DerivedCounterFn Fn) {
  Registry &R = registry();
  std::lock_guard<std::mutex> Guard(R.Lock);
  R.Derived[Name] = Fn;
}

FaultRing &Metrics::faultRing() { return registry().Ring; }

MetricsSnapshot Metrics::snapshot() {
  Registry &R = registry();
  MetricsSnapshot Out;
  // Derived callbacks may themselves call Metrics::counter(); copy them
  // under the lock and evaluate after releasing it.
  std::vector<std::pair<std::string, DerivedCounterFn>> Derived;
  {
    std::lock_guard<std::mutex> Guard(R.Lock);
    Out.Counters.reserve(R.Counters.size() + R.Derived.size());
    for (const auto &[Name, Metric] : R.Counters)
      Out.Counters.push_back({Name, Metric.second->value()});
    Derived.assign(R.Derived.begin(), R.Derived.end());
    Out.Gauges.reserve(R.Gauges.size());
    for (const auto &[Name, G] : R.Gauges)
      Out.Gauges.push_back({Name, G->value()});
    Out.Histograms.reserve(R.Histograms.size());
    for (const auto &[Name, H] : R.Histograms) {
      HistogramSample S;
      S.Name = Name;
      S.Buckets = H->bucketCounts();
      // Derive count/sum from the same shard reads' era; relaxed reads
      // make this approximate under concurrent writers, exact when
      // quiescent (which is when snapshots are taken in practice).
      S.Count = H->count();
      S.Sum = H->sum();
      S.Min = H->minValue();
      S.Max = H->maxValue();
      Out.Histograms.push_back(std::move(S));
    }
  }
  if (!Derived.empty()) {
    size_t DirectEnd = Out.Counters.size();
    for (auto &[Name, Fn] : Derived)
      Out.Counters.push_back({std::move(Name), Fn()});
    // Both runs come from sorted maps; restore global name order.
    std::inplace_merge(
        Out.Counters.begin(), Out.Counters.begin() + DirectEnd,
        Out.Counters.end(),
        [](const CounterSample &A, const CounterSample &B) {
          return A.Name < B.Name;
        });
  }
  Out.Faults = R.Ring.snapshot();
  Out.FaultsTotal = R.Ring.totalRecorded();
  return Out;
}

void Metrics::resetAll() {
  Registry &R = registry();
  {
    std::lock_guard<std::mutex> Guard(R.Lock);
    for (auto &[Name, Metric] : R.Counters)
      Metric.second->reset();
    for (auto &[Name, G] : R.Gauges)
      G->reset();
    for (auto &[Name, H] : R.Histograms)
      H->reset();
  }
  R.Ring.clear();
}

// ==== snapshot lookups ====================================================

uint64_t MetricsSnapshot::counterValue(std::string_view Name,
                                       uint64_t Default) const {
  for (const CounterSample &C : Counters)
    if (C.Name == Name)
      return C.Value;
  return Default;
}

int64_t MetricsSnapshot::gaugeValue(std::string_view Name,
                                    int64_t Default) const {
  for (const GaugeSample &G : Gauges)
    if (G.Name == Name)
      return G.Value;
  return Default;
}

const HistogramSample *
MetricsSnapshot::histogram(std::string_view Name) const {
  for (const HistogramSample &H : Histograms)
    if (H.Name == Name)
      return &H;
  return nullptr;
}

// ==== exporters ===========================================================

std::string jsonEscape(std::string_view Text) {
  std::string Out;
  Out.reserve(Text.size());
  for (char C : Text) {
    switch (C) {
    case '"':
      Out += "\\\"";
      break;
    case '\\':
      Out += "\\\\";
      break;
    case '\n':
      Out += "\\n";
      break;
    case '\r':
      Out += "\\r";
      break;
    case '\t':
      Out += "\\t";
      break;
    default:
      if (static_cast<unsigned char>(C) < 0x20)
        Out += format("\\u%04x", C);
      else
        Out += C;
    }
  }
  return Out;
}

std::string MetricsSnapshot::toJson() const {
  std::string Out = "{\n  \"counters\": {";
  bool First = true;
  for (const CounterSample &C : Counters) {
    Out += format("%s\n    \"%s\": %llu", First ? "" : ",",
                  jsonEscape(C.Name).c_str(),
                  static_cast<unsigned long long>(C.Value));
    First = false;
  }
  Out += "\n  },\n  \"gauges\": {";
  First = true;
  for (const GaugeSample &G : Gauges) {
    Out += format("%s\n    \"%s\": %lld", First ? "" : ",",
                  jsonEscape(G.Name).c_str(),
                  static_cast<long long>(G.Value));
    First = false;
  }
  Out += "\n  },\n  \"histograms\": {";
  First = true;
  for (const HistogramSample &H : Histograms) {
    Out += format(
        "%s\n    \"%s\": {\"count\": %llu, \"sum\": %llu, \"mean\": %.3f, "
        "\"min\": %llu, \"max\": %llu, "
        "\"p50_le\": %llu, \"p99_le\": %llu, \"p999_le\": %llu, "
        "\"buckets\": [",
        First ? "" : ",", jsonEscape(H.Name).c_str(),
        static_cast<unsigned long long>(H.Count),
        static_cast<unsigned long long>(H.Sum), H.mean(),
        static_cast<unsigned long long>(H.Min),
        static_cast<unsigned long long>(H.Max),
        static_cast<unsigned long long>(H.percentileUpperBound(50)),
        static_cast<unsigned long long>(H.percentileUpperBound(99)),
        static_cast<unsigned long long>(H.percentileUpperBound(99.9)));
    bool FirstBucket = true;
    for (unsigned B = 0; B < Histogram::kBuckets; ++B) {
      if (H.Buckets[B] == 0)
        continue;
      Out += format("%s[%llu, %llu]", FirstBucket ? "" : ", ",
                    static_cast<unsigned long long>(
                        Histogram::bucketUpperBound(B)),
                    static_cast<unsigned long long>(H.Buckets[B]));
      FirstBucket = false;
    }
    Out += "]}";
    First = false;
  }
  Out += format("\n  },\n  \"faults\": {\n    \"total\": %llu,\n"
                "    \"ring\": [",
                static_cast<unsigned long long>(FaultsTotal));
  First = true;
  for (const FaultEvent &E : Faults) {
    Out += format(
        "%s\n      {\"seq\": %llu, \"timestamp_ns\": %llu, \"kind\": "
        "\"%s\", \"address\": %s, \"pointer_tag\": %u, \"memory_tag\": %u, "
        "\"is_write\": %s, \"access_size\": %u, \"thread\": %llu, "
        "\"backtrace\": \"%s\"}",
        First ? "" : ",", static_cast<unsigned long long>(E.Sequence),
        static_cast<unsigned long long>(E.TimestampNanos),
        jsonEscape(E.Kind).c_str(),
        E.HasAddress
            ? format("%llu", static_cast<unsigned long long>(E.Address))
                  .c_str()
            : "null",
        unsigned(E.PointerTag), unsigned(E.MemoryTag),
        E.IsWrite ? "true" : "false", E.AccessSize,
        static_cast<unsigned long long>(E.ThreadId),
        jsonEscape(E.Backtrace).c_str());
    First = false;
  }
  Out += "\n    ]\n  }\n}\n";
  return Out;
}

std::string MetricsSnapshot::toJsonLine() const {
  std::string Pretty = toJson();
  std::string Out;
  Out.reserve(Pretty.size());
  for (char C : Pretty)
    if (C != '\n')
      Out += C;
  return Out;
}

namespace {

/// Prometheus metric names allow [a-zA-Z0-9_:]; ours use '/' paths.
std::string promName(std::string_view Name) {
  std::string Out = "m4j_";
  for (char C : Name)
    Out += (std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
            C == ':')
               ? C
               : '_';
  return Out;
}

} // namespace

std::string MetricsSnapshot::toPrometheusText() const {
  std::string Out;
  for (const CounterSample &C : Counters) {
    std::string N = promName(C.Name);
    Out += format("# TYPE %s counter\n%s %llu\n", N.c_str(), N.c_str(),
                  static_cast<unsigned long long>(C.Value));
  }
  for (const GaugeSample &G : Gauges) {
    std::string N = promName(G.Name);
    Out += format("# TYPE %s gauge\n%s %lld\n", N.c_str(), N.c_str(),
                  static_cast<long long>(G.Value));
  }
  for (const HistogramSample &H : Histograms) {
    std::string N = promName(H.Name);
    Out += format("# TYPE %s histogram\n", N.c_str());
    uint64_t Cumulative = 0;
    for (unsigned B = 0; B < Histogram::kBuckets; ++B) {
      if (H.Buckets[B] == 0)
        continue;
      Cumulative += H.Buckets[B];
      Out += format("%s_bucket{le=\"%llu\"} %llu\n", N.c_str(),
                    static_cast<unsigned long long>(
                        Histogram::bucketUpperBound(B)),
                    static_cast<unsigned long long>(Cumulative));
    }
    Out += format("%s_bucket{le=\"+Inf\"} %llu\n", N.c_str(),
                  static_cast<unsigned long long>(H.Count));
    Out += format("%s_sum %llu\n%s_count %llu\n", N.c_str(),
                  static_cast<unsigned long long>(H.Sum), N.c_str(),
                  static_cast<unsigned long long>(H.Count));
  }
  std::string FN = promName("mte/faults/ring_total");
  Out += format("# TYPE %s counter\n%s %llu\n", FN.c_str(), FN.c_str(),
                static_cast<unsigned long long>(FaultsTotal));
  return Out;
}

} // namespace mte4jni::support

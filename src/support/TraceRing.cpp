//===- TraceRing.cpp - Per-thread flight recorder -------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/TraceRing.h"

#include <array>
#include <cinttypes>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <mutex>
#include <vector>

namespace mte4jni::support {

namespace obs {

std::atomic<uint8_t> LevelFlag{1};
thread_local uint32_t SampleLcg = 0;

void setLevel(unsigned Level) {
  if (Level > 2)
    Level = 2;
  if (Level > M4J_OBS_LEVEL)
    Level = M4J_OBS_LEVEL;
  LevelFlag.store(static_cast<uint8_t>(Level), std::memory_order_relaxed);
}

unsigned level() { return LevelFlag.load(std::memory_order_relaxed); }

void setMode(FlightMode Mode) {
  switch (Mode) {
  case FlightMode::Off:
    setLevel(0);
    break;
  case FlightMode::Sampled:
    setLevel(1);
    break;
  case FlightMode::Full:
    setLevel(2);
    break;
  }
}

} // namespace obs

const char *tagSlowReasonName(TagSlowReason Reason) {
  switch (Reason) {
  case TagSlowReason::SlotCold:
    return "slot_cold";
  case TagSlowReason::FirstHolder:
    return "first_holder";
  case TagSlowReason::LastHolder:
    return "last_holder";
  case TagSlowReason::SlotRecycled:
    return "slot_recycled";
  case TagSlowReason::ShardLockWait:
    return "shard_lock_wait";
  case TagSlowReason::OverflowSpill:
    return "overflow_spill";
  case TagSlowReason::PinCacheMiss:
    return "pin_cache_miss";
  case TagSlowReason::Orphan:
    return "orphan";
  case TagSlowReason::DeferredReclaim:
    return "deferred_reclaim";
  case TagSlowReason::kNumReasons:
    break;
  }
  return "unknown";
}

namespace {

/// One ring entry: three independently-atomic words so writer and exporter
/// never race in the data-race sense. A slot being rewritten while read
/// decodes to a bogus combination at worst; the exporter drops those.
struct Slot {
  std::atomic<uint64_t> Start{0};   ///< monotonic nanoseconds; 0 = empty
  std::atomic<uint64_t> DurArg2{0}; ///< [dur_ns:32 | arg2:32]
  std::atomic<uint64_t> Meta{0};    ///< [.. | kind:8 | arg:8]
};

struct ThreadRing {
  std::array<Slot, FlightRecorder::kRingEvents> Slots;
  /// Next write position; Slots[(Head - k) % N] is the k-th newest event.
  std::atomic<uint64_t> Head{0};
  /// Set at owner-thread exit; a later thread may recycle the ring (which
  /// resets Head, discarding the dead owner's events).
  std::atomic<bool> Retired{false};
  uint32_t Tid = 0;     ///< stable small lane id (registration order)
  std::string Label;    ///< guarded by Registry::Lock
};

struct Registry {
  std::mutex Lock;
  std::vector<std::unique_ptr<ThreadRing>> Rings;
  uint32_t NextTid = 1;
};

/// Leaked singleton: rings must outlive thread_local destructors.
Registry &registry() {
  static Registry *R = new Registry;
  return *R;
}

thread_local ThreadRing *CurrentRing = nullptr;

/// Marks the thread's ring recyclable at thread exit. The events stay
/// readable (and exportable) until another thread actually claims the ring.
struct RingReleaser {
  ~RingReleaser() {
    if (CurrentRing != nullptr)
      CurrentRing->Retired.store(true, std::memory_order_release);
    CurrentRing = nullptr;
  }
};
thread_local RingReleaser Releaser;

ThreadRing *claimRingSlow() {
  (void)Releaser; // force instantiation of the thread-exit hook
  Registry &R = registry();
  std::lock_guard<std::mutex> Guard(R.Lock);
  ThreadRing *Ring = nullptr;
  for (std::unique_ptr<ThreadRing> &Candidate : R.Rings) {
    if (Candidate->Retired.load(std::memory_order_acquire)) {
      Ring = Candidate.get();
      break;
    }
  }
  if (Ring == nullptr) {
    R.Rings.push_back(std::make_unique<ThreadRing>());
    Ring = R.Rings.back().get();
    Ring->Tid = R.NextTid++;
  } else {
    // Recycled: the previous owner's events are dropped with its label.
    Ring->Head.store(0, std::memory_order_relaxed);
    Ring->Label.clear();
  }
  Ring->Retired.store(false, std::memory_order_relaxed);
  CurrentRing = Ring;
  return Ring;
}

M4J_ALWAYS_INLINE ThreadRing *claimRing() {
  ThreadRing *Ring = CurrentRing;
  if (M4J_LIKELY(Ring != nullptr))
    return Ring;
  return claimRingSlow();
}

const char *flightCategory(FlightKind Kind) {
  switch (Kind) {
  case FlightKind::JniCrossing:
  case FlightKind::JniAcquire:
  case FlightKind::JniRelease:
    return "jni";
  case FlightKind::TagAcquire:
  case FlightKind::TagRelease:
    return "core/tagtable";
  case FlightKind::CheckScan:
    return "mte";
  case FlightKind::GcPhase:
    return "rt/gc";
  case FlightKind::TlabRefill:
    return "rt/heap";
  case FlightKind::Fault:
    return "mte/fault";
  case FlightKind::None:
  case FlightKind::kNumKinds:
    break;
  }
  return "?";
}

/// Display name for (kind, arg). All literals: export allocates nothing
/// per event beyond the output string.
const char *flightEventName(FlightKind Kind, uint8_t Arg) {
  switch (Kind) {
  case FlightKind::JniCrossing:
    switch (Arg) {
    case 0:
      return "JNI.call";
    case 1:
      return "JNI.call.fast";
    case 2:
      return "JNI.call.critical";
    default:
      return "JNI.call.?";
    }
  case FlightKind::JniAcquire:
    return "JNI.acquire";
  case FlightKind::JniRelease:
    return "JNI.release";
  case FlightKind::TagAcquire:
  case FlightKind::TagRelease: {
    const bool Acq = Kind == FlightKind::TagAcquire;
    if (Arg == 0)
      return Acq ? "TagTable.acquire.fast" : "TagTable.release.fast";
    switch (static_cast<TagSlowReason>(Arg - 1)) {
    case TagSlowReason::SlotCold:
      return Acq ? "TagTable.acquire.slow:slot_cold"
                 : "TagTable.release.slow:slot_cold";
    case TagSlowReason::FirstHolder:
      return "TagTable.acquire.slow:first_holder";
    case TagSlowReason::LastHolder:
      return "TagTable.release.slow:last_holder";
    case TagSlowReason::SlotRecycled:
      return Acq ? "TagTable.acquire.slow:slot_recycled"
                 : "TagTable.release.slow:slot_recycled";
    case TagSlowReason::ShardLockWait:
      return Acq ? "TagTable.acquire.slow:shard_lock_wait"
                 : "TagTable.release.slow:shard_lock_wait";
    case TagSlowReason::OverflowSpill:
      return Acq ? "TagTable.acquire.slow:overflow_spill"
                 : "TagTable.release.slow:overflow_spill";
    case TagSlowReason::PinCacheMiss:
      return "TagTable.release.slow:pin_cache_miss";
    case TagSlowReason::Orphan:
      return "TagTable.release.slow:orphan";
    case TagSlowReason::DeferredReclaim:
      return "TagTable.release.slow:deferred_reclaim";
    case TagSlowReason::kNumReasons:
      break;
    }
    return Acq ? "TagTable.acquire.slow" : "TagTable.release.slow";
  }
  case FlightKind::CheckScan:
    switch (Arg) {
    case 0:
      return "Access.checkRange:scalar";
    case 1:
      return "Access.checkRange:swar";
    case 2:
      return "Access.checkRange:sse2";
    case 3:
      return "Access.checkRange:avx2";
    default:
      return "Access.checkRange:?";
    }
  case FlightKind::GcPhase:
    switch (static_cast<GcFlightPhase>(Arg)) {
    case GcFlightPhase::Collect:
      return "GC.collect";
    case GcFlightPhase::Mark:
      return "GC.mark";
    case GcFlightPhase::Sweep:
      return "GC.sweep";
    case GcFlightPhase::Compact:
      return "GC.compact";
    case GcFlightPhase::Verify:
      return "GC.verify";
    case GcFlightPhase::Pause:
      return "GC.pause";
    case GcFlightPhase::Ttsp:
      return "GC.ttsp";
    case GcFlightPhase::kNumPhases:
      break;
    }
    return "GC.?";
  case FlightKind::TlabRefill:
    return "Heap.tlabRefill";
  case FlightKind::Fault:
    return Arg == 0 ? "MTE.fault.sync" : "MTE.fault.async";
  case FlightKind::None:
  case FlightKind::kNumKinds:
    break;
  }
  return "?";
}

void appendFormat(std::string &Out, const char *Fmt, ...)
    __attribute__((format(printf, 2, 3)));

void appendFormat(std::string &Out, const char *Fmt, ...) {
  char Buf[256];
  va_list Args;
  va_start(Args, Fmt);
  int N = vsnprintf(Buf, sizeof(Buf), Fmt, Args);
  va_end(Args);
  if (N > 0)
    Out.append(Buf, static_cast<size_t>(N) < sizeof(Buf)
                        ? static_cast<size_t>(N)
                        : sizeof(Buf) - 1);
}

} // namespace

void FlightRecorder::record(FlightKind Kind, uint8_t Arg, uint32_t Arg2,
                            uint64_t StartNanos, uint64_t DurNanos) {
#if M4J_OBS_LEVEL == 0
  (void)Kind;
  (void)Arg;
  (void)Arg2;
  (void)StartNanos;
  (void)DurNanos;
#else
  ThreadRing *Ring = claimRing();
  uint64_t Head = Ring->Head.load(std::memory_order_relaxed);
  Slot &S = Ring->Slots[Head % kRingEvents];
  uint64_t Dur = DurNanos > UINT32_MAX ? UINT32_MAX : DurNanos;
  S.Start.store(StartNanos, std::memory_order_relaxed);
  S.DurArg2.store(Dur << 32 | Arg2, std::memory_order_relaxed);
  S.Meta.store(uint64_t(static_cast<uint8_t>(Kind)) << 8 | Arg,
               std::memory_order_relaxed);
  // Publish after the payload so the exporter never reads past-the-head
  // garbage in a slot that was never written.
  Ring->Head.store(Head + 1, std::memory_order_release);
#endif
}

void FlightRecorder::setThreadLabel(std::string_view Label) {
#if M4J_OBS_LEVEL == 0
  (void)Label;
#else
  ThreadRing *Ring = claimRing();
  std::lock_guard<std::mutex> Guard(registry().Lock);
  Ring->Label.assign(Label);
#endif
}

std::string FlightRecorder::exportChromeJson() {
  struct RingRef {
    ThreadRing *Ring;
    uint32_t Tid;
    std::string Label;
  };
  std::vector<RingRef> Refs;
  {
    Registry &R = registry();
    std::lock_guard<std::mutex> Guard(R.Lock);
    Refs.reserve(R.Rings.size());
    for (std::unique_ptr<ThreadRing> &Ring : R.Rings)
      Refs.push_back({Ring.get(), Ring->Tid, Ring->Label});
  }

  std::string Out;
  Out.reserve(4096);
  Out += "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[";
  Out += "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,\"tid\":0,"
         "\"args\":{\"name\":\"mte4jni\"}}";

  uint64_t Dropped = 0;
  for (const RingRef &Ref : Refs) {
    std::string Label = Ref.Label.empty()
                            ? "thread-" + std::to_string(Ref.Tid)
                            : Ref.Label;
    appendFormat(Out,
                 ",\n{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,"
                 "\"tid\":%u,\"args\":{\"name\":\"%s\"}}",
                 Ref.Tid, jsonEscape(Label).c_str());

    uint64_t Head = Ref.Ring->Head.load(std::memory_order_acquire);
    uint64_t Retained = Head < kRingEvents ? Head : kRingEvents;
    if (Head > kRingEvents)
      Dropped += Head - kRingEvents;
    for (uint64_t I = Head - Retained; I < Head; ++I) {
      const Slot &S = Ref.Ring->Slots[I % kRingEvents];
      uint64_t Start = S.Start.load(std::memory_order_relaxed);
      uint64_t DurArg2 = S.DurArg2.load(std::memory_order_relaxed);
      uint64_t Meta = S.Meta.load(std::memory_order_relaxed);
      auto Kind = static_cast<FlightKind>((Meta >> 8) & 0xFF);
      auto Arg = static_cast<uint8_t>(Meta & 0xFF);
      if (Start == 0 || Kind == FlightKind::None ||
          Kind >= FlightKind::kNumKinds)
        continue; // empty or torn slot
      double TsMicros = double(Start) / 1000.0;
      double DurMicros = double(DurArg2 >> 32) / 1000.0;
      uint32_t Arg2 = static_cast<uint32_t>(DurArg2);
      appendFormat(Out,
                   ",\n{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                   "\"pid\":1,\"tid\":%u,\"ts\":%.3f,\"dur\":%.3f",
                   flightEventName(Kind, Arg), flightCategory(Kind), Ref.Tid,
                   TsMicros, DurMicros);
      if (Arg2 != 0)
        appendFormat(Out, ",\"args\":{\"arg2\":%" PRIu32 "}", Arg2);
      Out += "}";
    }
  }
  appendFormat(Out, "],\"droppedEvents\":%" PRIu64 "}", Dropped);
  return Out;
}

uint64_t FlightRecorder::eventCount() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Guard(R.Lock);
  uint64_t Total = 0;
  for (std::unique_ptr<ThreadRing> &Ring : R.Rings) {
    uint64_t Head = Ring->Head.load(std::memory_order_acquire);
    Total += Head < kRingEvents ? Head : kRingEvents;
  }
  return Total;
}

uint64_t FlightRecorder::totalRecorded() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Guard(R.Lock);
  uint64_t Total = 0;
  for (std::unique_ptr<ThreadRing> &Ring : R.Rings)
    Total += Ring->Head.load(std::memory_order_acquire);
  return Total;
}

void FlightRecorder::clear() {
  Registry &R = registry();
  std::lock_guard<std::mutex> Guard(R.Lock);
  for (std::unique_ptr<ThreadRing> &Ring : R.Rings)
    Ring->Head.store(0, std::memory_order_relaxed);
}

} // namespace mte4jni::support

//===- Backtrace.cpp - Simulated per-thread call frame stacks ---------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/Backtrace.h"

#include "mte4jni/support/StringUtils.h"

namespace mte4jni::support {

std::string FrameInfo::str() const {
  return format("%s (%s)", Function, Module);
}

FrameStack &FrameStack::current() {
  thread_local FrameStack Stack;
  return Stack;
}

std::vector<FrameInfo> FrameStack::capture() const {
  // Innermost-first, like a crash dump.
  return std::vector<FrameInfo>(Frames.rbegin(), Frames.rend());
}

std::string renderBacktrace(const std::vector<FrameInfo> &Frames) {
  std::string Out = "backtrace:\n";
  unsigned Index = 0;
  for (const FrameInfo &Frame : Frames) {
    Out += format("  #%02u pc %016x  %s (%s)\n", Index,
                  0x1000u * (Index + 1), Frame.Module, Frame.Function);
    ++Index;
  }
  return Out;
}

} // namespace mte4jni::support

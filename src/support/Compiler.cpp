//===- Compiler.cpp - Assertion failure reporting -----------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/Compiler.h"

namespace mte4jni::support {

void assertFail(const char *Cond, const char *Msg, const char *File,
                int Line) {
  std::fprintf(stderr, "mte4jni: assertion `%s` failed at %s:%d: %s\n", Cond,
               File, Line, Msg);
  std::fflush(stderr);
  std::abort();
}

void unreachableHit(const char *Msg, const char *File, int Line) {
  std::fprintf(stderr, "mte4jni: unreachable reached at %s:%d: %s\n", File,
               Line, Msg);
  std::fflush(stderr);
  std::abort();
}

} // namespace mte4jni::support

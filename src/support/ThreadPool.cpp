//===- ThreadPool.cpp - Minimal fixed-size thread pool ------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/ThreadPool.h"

#include "mte4jni/support/Compiler.h"
#include "mte4jni/support/TraceRing.h"

#include <atomic>
#include <condition_variable>
#include <string>

namespace mte4jni::support {

namespace {
/// The pool whose workerLoop is running on this thread, if any; used to
/// reject worker-reentrant parallelFor, which would block a worker on a
/// batch that needs that same worker to drain.
thread_local const ThreadPool *CurrentWorkerPool = nullptr;
} // namespace

size_t hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(size_t NumThreads, const char *LabelPrefix) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (size_t I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this, I, LabelPrefix] { workerLoop(I, LabelPrefix); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    M4J_ASSERT(!ShuttingDown, "submit after shutdown");
    Queue.push(std::move(Task));
    ++InFlight;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> Guard(Lock);
  AllDone.wait(Guard, [this] { return InFlight == 0; });
}

void ThreadPool::parallelFor(size_t Count,
                             const std::function<void(size_t)> &Body) {
  if (Count == 0)
    return;
  M4J_ASSERT(CurrentWorkerPool != this,
             "parallelFor re-entered from a worker of the same pool; the "
             "caller would block a worker slot its own batch needs");
  // Completion is tracked per batch, NOT via waitIdle(): waiting for the
  // pool to go globally idle blocks this call on unrelated tasks other
  // threads submit concurrently (and deadlocks outright if one of those
  // never finishes). The batch state lives on this frame; the final shard
  // signals Done before the frame is allowed to unwind.
  struct Batch {
    std::mutex Lock;
    std::condition_variable Done;
    size_t Pending;
    std::atomic<size_t> Next{0};
  } B;
  size_t Shards = std::min(Count, Workers.size());
  B.Pending = Shards;
  for (size_t S = 0; S < Shards; ++S) {
    submit([&B, Count, &Body] {
      for (;;) {
        size_t I = B.Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= Count)
          break;
        Body(I);
      }
      std::lock_guard<std::mutex> Guard(B.Lock);
      if (--B.Pending == 0)
        B.Done.notify_one();
    });
  }
  std::unique_lock<std::mutex> Guard(B.Lock);
  B.Done.wait(Guard, [&B] { return B.Pending == 0; });
}

void ThreadPool::workerLoop(size_t Index, const char *LabelPrefix) {
  CurrentWorkerPool = this;
  // LabelPrefix must have static storage duration (callers pass literals):
  // the worker reads it after the ctor has returned.
  if (LabelPrefix != nullptr)
    FlightRecorder::setThreadLabel(std::string(LabelPrefix) + "-" +
                                   std::to_string(Index));
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Guard(Lock);
      WorkAvailable.wait(Guard,
                         [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty()) {
        // Only possible when shutting down.
        return;
      }
      Task = std::move(Queue.front());
      Queue.pop();
    }
    Task();
    {
      std::lock_guard<std::mutex> Guard(Lock);
      --InFlight;
      if (InFlight == 0)
        AllDone.notify_all();
    }
  }
}

} // namespace mte4jni::support

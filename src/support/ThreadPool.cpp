//===- ThreadPool.cpp - Minimal fixed-size thread pool ------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/ThreadPool.h"

#include "mte4jni/support/Compiler.h"

#include <atomic>

namespace mte4jni::support {

size_t hardwareThreads() {
  unsigned N = std::thread::hardware_concurrency();
  return N == 0 ? 1 : N;
}

ThreadPool::ThreadPool(size_t NumThreads) {
  if (NumThreads == 0)
    NumThreads = 1;
  Workers.reserve(NumThreads);
  for (size_t I = 0; I < NumThreads; ++I)
    Workers.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    ShuttingDown = true;
  }
  WorkAvailable.notify_all();
  for (std::thread &Worker : Workers)
    Worker.join();
}

void ThreadPool::submit(std::function<void()> Task) {
  {
    std::lock_guard<std::mutex> Guard(Lock);
    M4J_ASSERT(!ShuttingDown, "submit after shutdown");
    Queue.push(std::move(Task));
    ++InFlight;
  }
  WorkAvailable.notify_one();
}

void ThreadPool::waitIdle() {
  std::unique_lock<std::mutex> Guard(Lock);
  AllDone.wait(Guard, [this] { return InFlight == 0; });
}

void ThreadPool::parallelFor(size_t Count,
                             const std::function<void(size_t)> &Body) {
  if (Count == 0)
    return;
  std::atomic<size_t> Next{0};
  size_t Shards = std::min(Count, Workers.size());
  for (size_t S = 0; S < Shards; ++S) {
    submit([&Next, Count, &Body] {
      for (;;) {
        size_t I = Next.fetch_add(1, std::memory_order_relaxed);
        if (I >= Count)
          return;
        Body(I);
      }
    });
  }
  waitIdle();
}

void ThreadPool::workerLoop() {
  for (;;) {
    std::function<void()> Task;
    {
      std::unique_lock<std::mutex> Guard(Lock);
      WorkAvailable.wait(Guard,
                         [this] { return ShuttingDown || !Queue.empty(); });
      if (Queue.empty()) {
        // Only possible when shutting down.
        return;
      }
      Task = std::move(Queue.front());
      Queue.pop();
    }
    Task();
    {
      std::lock_guard<std::mutex> Guard(Lock);
      --InFlight;
      if (InFlight == 0)
        AllDone.notify_all();
    }
  }
}

} // namespace mte4jni::support

//===- Syscall.cpp - Simulated system-call boundary --------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/Syscall.h"

#include "mte4jni/support/Backtrace.h"
#include "mte4jni/support/Compiler.h"
#include "mte4jni/support/SpinLock.h"

#include <array>
#include <atomic>
#include <mutex>

namespace mte4jni::support {
namespace {

constexpr int kMaxObservers = 8;

struct ObserverSlot {
  std::atomic<SyscallObserver> Fn{nullptr};
  std::atomic<void *> Context{nullptr};
};

std::array<ObserverSlot, kMaxObservers> Observers;
SpinLock RegistrationLock;
std::atomic<uint64_t> BarrierCount{0};

} // namespace

int addSyscallObserver(SyscallObserver Fn, void *Context) {
  std::lock_guard<SpinLock> Guard(RegistrationLock);
  for (int I = 0; I < kMaxObservers; ++I) {
    if (Observers[I].Fn.load(std::memory_order_relaxed) == nullptr) {
      Observers[I].Context.store(Context, std::memory_order_relaxed);
      Observers[I].Fn.store(Fn, std::memory_order_release);
      return I;
    }
  }
  M4J_UNREACHABLE("too many syscall observers");
}

void removeSyscallObserver(int Token) {
  std::lock_guard<SpinLock> Guard(RegistrationLock);
  M4J_ASSERT(Token >= 0 && Token < kMaxObservers, "bad observer token");
  Observers[static_cast<size_t>(Token)].Fn.store(nullptr,
                                                 std::memory_order_release);
  Observers[static_cast<size_t>(Token)].Context.store(
      nullptr, std::memory_order_relaxed);
}

void syscallBarrier(const char *Name) {
  BarrierCount.fetch_add(1, std::memory_order_relaxed);
  // The kernel entry is a frame of its own: async MTE faults delivered
  // here show the syscall at the top of the trace (paper Figure 4c shows
  // getuid()).
  ScopedFrame KernelEntry(Name, "libc.so");
  for (ObserverSlot &Slot : Observers) {
    SyscallObserver Fn = Slot.Fn.load(std::memory_order_acquire);
    if (Fn)
      Fn(Slot.Context.load(std::memory_order_relaxed), Name);
  }
}

uint64_t syscallBarrierCount() {
  return BarrierCount.load(std::memory_order_relaxed);
}

} // namespace mte4jni::support

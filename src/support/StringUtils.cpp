//===- StringUtils.cpp - snprintf-style formatting helpers ------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/StringUtils.h"

#include "mte4jni/support/Compiler.h"

#include <cctype>
#include <cstdio>

namespace mte4jni::support {

std::string formatV(const char *Fmt, va_list Args) {
  va_list Copy;
  va_copy(Copy, Args);
  int Needed = std::vsnprintf(nullptr, 0, Fmt, Copy);
  va_end(Copy);
  if (Needed <= 0)
    return std::string();
  std::string Out(static_cast<size_t>(Needed), '\0');
  std::vsnprintf(Out.data(), Out.size() + 1, Fmt, Args);
  return Out;
}

std::string format(const char *Fmt, ...) {
  va_list Args;
  va_start(Args, Fmt);
  std::string Out = formatV(Fmt, Args);
  va_end(Args);
  return Out;
}

std::vector<std::string_view> split(std::string_view Text, char Sep) {
  std::vector<std::string_view> Parts;
  size_t Start = 0;
  for (size_t I = 0; I <= Text.size(); ++I) {
    if (I == Text.size() || Text[I] == Sep) {
      Parts.push_back(Text.substr(Start, I - Start));
      Start = I + 1;
    }
  }
  return Parts;
}

bool startsWith(std::string_view Text, std::string_view Prefix) {
  return Text.size() >= Prefix.size() &&
         Text.compare(0, Prefix.size(), Prefix) == 0;
}

bool parseUnsigned(std::string_view Text, uint64_t &Out) {
  if (Text.empty())
    return false;
  uint64_t Value = 0;
  for (char C : Text) {
    if (!std::isdigit(static_cast<unsigned char>(C)))
      return false;
    uint64_t Digit = static_cast<uint64_t>(C - '0');
    if (Value > (UINT64_MAX - Digit) / 10)
      return false; // overflow
    Value = Value * 10 + Digit;
  }
  Out = Value;
  return true;
}

std::string humanBytes(uint64_t Bytes) {
  static const char *Units[] = {"B", "KiB", "MiB", "GiB", "TiB"};
  double Value = static_cast<double>(Bytes);
  unsigned Unit = 0;
  while (Value >= 1024.0 && Unit < 4) {
    Value /= 1024.0;
    ++Unit;
  }
  if (Unit == 0)
    return format("%llu B", static_cast<unsigned long long>(Bytes));
  return format("%.1f %s", Value, Units[Unit]);
}

std::string humanNanos(double Nanos) {
  if (Nanos < 1e3)
    return format("%.0f ns", Nanos);
  if (Nanos < 1e6)
    return format("%.2f us", Nanos * 1e-3);
  if (Nanos < 1e9)
    return format("%.2f ms", Nanos * 1e-6);
  return format("%.3f s", Nanos * 1e-9);
}

} // namespace mte4jni::support

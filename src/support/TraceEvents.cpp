//===- TraceEvents.cpp - systrace-style event recording -----------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/TraceEvents.h"

#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/SpinLock.h"
#include "mte4jni/support/StringUtils.h"
#include "mte4jni/support/Timer.h"

#include <mutex>
#include <thread>

namespace mte4jni::support {

std::atomic<bool> TraceRecorder::EnabledFlag{false};

namespace {

constexpr size_t kMaxEvents = 1 << 16;

struct TraceState {
  SpinLock Lock;
  std::vector<TraceEvent> Events;
  uint64_t Dropped = 0;
};

TraceState &state() {
  static TraceState S;
  return S;
}

uint64_t currentTid() {
  return std::hash<std::thread::id>()(std::this_thread::get_id()) & 0xFFFF;
}

void append(TraceEvent Event) {
  TraceState &S = state();
  std::lock_guard<SpinLock> Guard(S.Lock);
  if (S.Events.size() >= kMaxEvents) {
    ++S.Dropped;
    static Counter &DroppedMetric =
        Metrics::counter("support/trace/dropped_events");
    DroppedMetric.add();
    return;
  }
  S.Events.push_back(Event);
}

} // namespace

uint64_t ScopedTrace::nowMicros() { return monotonicNanos() / 1000; }

void TraceRecorder::setEnabled(bool Enabled) {
  EnabledFlag.store(Enabled, std::memory_order_relaxed);
}

void TraceRecorder::clear() {
  TraceState &S = state();
  std::lock_guard<SpinLock> Guard(S.Lock);
  S.Events.clear();
  S.Dropped = 0;
}

std::vector<TraceEvent> TraceRecorder::snapshot() {
  TraceState &S = state();
  std::lock_guard<SpinLock> Guard(S.Lock);
  return S.Events;
}

size_t TraceRecorder::size() {
  TraceState &S = state();
  std::lock_guard<SpinLock> Guard(S.Lock);
  return S.Events.size();
}

uint64_t TraceRecorder::dropped() {
  TraceState &S = state();
  std::lock_guard<SpinLock> Guard(S.Lock);
  return S.Dropped;
}

void TraceRecorder::recordSlice(const char *Name, const char *Category,
                                uint64_t StartMicros,
                                uint64_t DurationMicros) {
  TraceEvent Event;
  Event.EventKind = TraceEvent::Kind::Slice;
  Event.Name = Name;
  Event.Category = Category;
  Event.ThreadId = currentTid();
  Event.StartMicros = StartMicros;
  Event.DurationMicros = DurationMicros;
  append(Event);
}

void TraceRecorder::recordCounter(const char *Name, int64_t Value) {
  if (!enabled())
    return;
  TraceEvent Event;
  Event.EventKind = TraceEvent::Kind::Counter;
  Event.Name = Name;
  Event.Category = "counter";
  Event.ThreadId = currentTid();
  Event.StartMicros = ScopedTrace::nowMicros();
  Event.Value = Value;
  append(Event);
}

std::string TraceRecorder::exportChromeJson() {
  std::vector<TraceEvent> Events = snapshot();
  uint64_t DroppedEvents = dropped();
  std::string Out = "{\"traceEvents\":[";
  bool First = true;
  for (const TraceEvent &E : Events) {
    if (!First)
      Out += ',';
    First = false;
    if (E.EventKind == TraceEvent::Kind::Slice) {
      // "X" = complete event: ts + dur, microseconds.
      Out += format("{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\","
                    "\"ts\":%llu,\"dur\":%llu,\"pid\":1,\"tid\":%llu}",
                    E.Name, E.Category,
                    static_cast<unsigned long long>(E.StartMicros),
                    static_cast<unsigned long long>(E.DurationMicros),
                    static_cast<unsigned long long>(E.ThreadId));
    } else {
      Out += format("{\"name\":\"%s\",\"ph\":\"C\",\"ts\":%llu,"
                    "\"pid\":1,\"tid\":%llu,\"args\":{\"value\":%lld}}",
                    E.Name,
                    static_cast<unsigned long long>(E.StartMicros),
                    static_cast<unsigned long long>(E.ThreadId),
                    static_cast<long long>(E.Value));
    }
  }
  // Chrome's trace format tolerates extra top-level keys; Perfetto shows
  // "metadata" in the info dialog, so truncation is visible to the viewer.
  Out += format("],\"metadata\":{\"droppedEvents\":%llu}}",
                static_cast<unsigned long long>(DroppedEvents));
  return Out;
}

} // namespace mte4jni::support

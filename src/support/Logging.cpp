//===- Logging.cpp - logcat-style in-process logger --------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/Logging.h"

#include "mte4jni/support/StringUtils.h"
#include "mte4jni/support/Syscall.h"

#include <atomic>
#include <cstdarg>
#include <cstdio>
#include <deque>
#include <mutex>
#include <thread>

namespace mte4jni::support {
namespace {

constexpr size_t kCapacity = 4096;

struct LogState {
  std::mutex Lock;
  std::deque<LogRecord> Records;
  std::atomic<bool> Echo{false};
};

LogState &state() {
  static LogState S;
  return S;
}

uint64_t currentThreadId() {
  return std::hash<std::thread::id>()(std::this_thread::get_id());
}

void writeImpl(LogSeverity Severity, const char *Tag, const char *Fmt,
               va_list Args) {
  LogBuffer::write(Severity, Tag, formatV(Fmt, Args));
}

} // namespace

const char *severityName(LogSeverity Severity) {
  switch (Severity) {
  case LogSeverity::Debug:
    return "D";
  case LogSeverity::Info:
    return "I";
  case LogSeverity::Warn:
    return "W";
  case LogSeverity::Error:
    return "E";
  case LogSeverity::Fatal:
    return "F";
  }
  return "?";
}

void LogBuffer::write(LogSeverity Severity, const char *Tag,
                      std::string Message) {
  LogState &S = state();
  if (S.Echo.load(std::memory_order_relaxed))
    std::fprintf(stderr, "%s %s: %s\n", severityName(Severity), Tag,
                 Message.c_str());
  {
    std::lock_guard<std::mutex> Guard(S.Lock);
    if (S.Records.size() >= kCapacity)
      S.Records.pop_front();
    S.Records.push_back(
        LogRecord{Severity, Tag, std::move(Message), currentThreadId()});
  }
  // liblog ends up in writev(): a real syscall, and therefore an async MTE
  // fault delivery point.
  syscallBarrier("write");
}

std::vector<LogRecord> LogBuffer::snapshot() {
  LogState &S = state();
  std::lock_guard<std::mutex> Guard(S.Lock);
  return std::vector<LogRecord>(S.Records.begin(), S.Records.end());
}

void LogBuffer::clear() {
  LogState &S = state();
  std::lock_guard<std::mutex> Guard(S.Lock);
  S.Records.clear();
}

void LogBuffer::setEchoToStderr(bool Echo) {
  state().Echo.store(Echo, std::memory_order_relaxed);
}

size_t LogBuffer::size() {
  LogState &S = state();
  std::lock_guard<std::mutex> Guard(S.Lock);
  return S.Records.size();
}

#define M4J_DEFINE_LOG_FN(Name, Severity)                                     \
  void Name(const char *Tag, const char *Fmt, ...) {                          \
    va_list Args;                                                              \
    va_start(Args, Fmt);                                                       \
    writeImpl(Severity, Tag, Fmt, Args);                                       \
    va_end(Args);                                                              \
  }

M4J_DEFINE_LOG_FN(logDebug, LogSeverity::Debug)
M4J_DEFINE_LOG_FN(logInfo, LogSeverity::Info)
M4J_DEFINE_LOG_FN(logWarn, LogSeverity::Warn)
M4J_DEFINE_LOG_FN(logError, LogSeverity::Error)

#undef M4J_DEFINE_LOG_FN

} // namespace mte4jni::support

//===- Tag.cpp - MTE tag and granule constants ---------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/Tag.h"

namespace mte4jni::mte {

const char *checkModeName(CheckMode Mode) {
  switch (Mode) {
  case CheckMode::None:
    return "none";
  case CheckMode::Sync:
    return "sync";
  case CheckMode::Async:
    return "async";
  }
  return "?";
}

} // namespace mte4jni::mte

//===- TaggedArena.cpp - PROT_MTE native scratch allocator ----------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/TaggedArena.h"

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/support/MathExtras.h"

#include <cstring>
#include <mutex>

namespace mte4jni::mte {

unsigned TaggedArena::sizeClassOf(uint64_t Bytes) {
  uint64_t Rounded = support::nextPowerOf2(std::max<uint64_t>(Bytes, 16));
  unsigned Class = support::log2Of(Rounded) - kGranuleShift;
  M4J_ASSERT(Class < kNumSizeClasses, "allocation too large for arena");
  return Class;
}

uint64_t TaggedArena::sizeOfClass(unsigned Class) {
  return 1ull << (Class + kGranuleShift);
}

TaggedArena::TaggedArena(uint64_t Bytes) {
  Capacity = support::alignTo(std::max<uint64_t>(Bytes, kGranuleSize),
                              kGranuleSize);
  Storage.reset(new uint8_t[Capacity + kGranuleSize]);
  uint64_t Raw = reinterpret_cast<uint64_t>(Storage.get());
  BasePtr = reinterpret_cast<uint8_t *>(support::alignTo(Raw, kGranuleSize));
  BlockClass.assign(Capacity >> kGranuleShift, 0xFF);
  MteSystem::instance().registerRegion(BasePtr, Capacity);
}

TaggedArena::~TaggedArena() {
  MteSystem::instance().unregisterRegion(BasePtr);
}

void *TaggedArena::allocate(uint64_t Bytes) {
  unsigned Class = sizeClassOf(Bytes);
  uint64_t BlockSize = sizeOfClass(Class);
  std::lock_guard<support::SpinLock> Guard(Lock);
  void *Block = nullptr;
  if (!FreeLists[Class].empty()) {
    Block = FreeLists[Class].back();
    FreeLists[Class].pop_back();
  } else {
    if (BumpOffset + BlockSize > Capacity)
      return nullptr;
    Block = BasePtr + BumpOffset;
    BumpOffset += BlockSize;
  }
  uint64_t GranuleIdx =
      (reinterpret_cast<uint64_t>(Block) - begin()) >> kGranuleShift;
  BlockClass[GranuleIdx] = static_cast<uint8_t>(Class);
  InUse += BlockSize;
  return Block;
}

void TaggedArena::deallocate(void *Ptr) {
  if (!Ptr)
    return;
  M4J_ASSERT(contains(Ptr), "deallocate of foreign pointer");
  std::lock_guard<support::SpinLock> Guard(Lock);
  uint64_t GranuleIdx =
      (reinterpret_cast<uint64_t>(Ptr) - begin()) >> kGranuleShift;
  uint8_t Class = BlockClass[GranuleIdx];
  M4J_ASSERT(Class != 0xFF, "double free or bad pointer");
  BlockClass[GranuleIdx] = 0xFF;
  InUse -= sizeOfClass(Class);
  FreeLists[Class].push_back(Ptr);
}

uint64_t TaggedArena::bytesInUse() const {
  std::lock_guard<support::SpinLock> Guard(Lock);
  return InUse;
}

} // namespace mte4jni::mte

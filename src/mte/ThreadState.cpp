//===- ThreadState.cpp - Per-thread MTE control state ---------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/ThreadState.h"

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/support/Backtrace.h"
#include "mte4jni/support/Metrics.h"

#include <atomic>

namespace mte4jni::mte {
namespace {
std::atomic<uint64_t> NextThreadId{1};
} // namespace

ThreadState::ThreadState()
    : IrgRng(MteSystem::instance().nextThreadSeed()),
      Id(NextThreadId.fetch_add(1, std::memory_order_relaxed)) {
  // New threads inherit the process-default TCF mode, like a freshly
  // cloned Linux task inherits PR_MTE_TCF_*.
  Mode = MteSystem::instance().processCheckMode();
  refreshChecksOn();
  MteSystem::instance().registerThread(this);
}

ThreadState::~ThreadState() {
  MteSystem::instance().unregisterThread(this);
}

ThreadState &ThreadState::current() {
  thread_local ThreadState State;
  return State;
}

void ThreadState::latchAsyncFault(uint64_t DebugAddress, TagValue PointerTag,
                                  TagValue MemoryTag, bool IsWrite,
                                  uint32_t Size) {
  noteMismatch();
  MteSystem::instance().stats().AsyncFaultsLatched.fetch_add(
      1, std::memory_order_relaxed);
  if (AsyncPending)
    return; // TFSR is a single sticky bit; only the first fault is kept.
  AsyncPending = true;
  PendingDebugAddress = DebugAddress;
  PendingPointerTag = PointerTag;
  PendingMemoryTag = MemoryTag;
  PendingIsWrite = IsWrite;
  PendingSize = Size;
}

void ThreadState::drainAsync(const char *SyscallName) {
  if (!AsyncPending)
    return;
  AsyncPending = false;

  FaultRecord Record;
  Record.Kind = FaultKind::TagMismatchAsync;
  // Matching SEGV_MTEAERR: no faulting address in the report. The debug
  // address is simulator ground truth for tests only.
  Record.HasAddress = false;
  Record.Address = 0;
  Record.DebugAddress = PendingDebugAddress;
  Record.PointerTag = PendingPointerTag;
  Record.MemoryTag = PendingMemoryTag;
  Record.IsWrite = PendingIsWrite;
  Record.AccessSize = PendingSize;
  Record.ThreadId = Id;
  Record.DeliveredAtSyscall = SyscallName;
  // The backtrace is taken *now*, at the syscall — this is why Figure 4c's
  // trace points at getuid() instead of the faulting native method.
  Record.Backtrace = support::FrameStack::current().capture();

  MteSystem::instance().stats().AsyncFaultsDelivered.fetch_add(
      1, std::memory_order_relaxed);
  static support::Counter &Delivered =
      support::Metrics::counter("mte/fault/async_delivered");
  Delivered.add();
  MteSystem::instance().deliverFault(std::move(Record));
}

void ThreadState::cacheRegion(std::shared_ptr<const TaggedRegion> Region,
                              uint64_t Epoch) {
  CachedRegionRef = std::move(Region);
  CachedRegion = CachedRegionRef.get();
  CachedRegionEpoch = CachedRegion ? Epoch : 0;
}

void ThreadState::syncModeFromProcess() {
  Mode = MteSystem::instance().processCheckMode();
  refreshChecksOn();
}

} // namespace mte4jni::mte

//===- Access.cpp - Tag-checked memory access -----------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/Access.h"

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/Syscall.h"

#include <algorithm>
#include <cstring>

namespace mte4jni::mte {
namespace detail {

namespace {

/// Per-path metrics behind the paper's Figure 5/8 breakdowns: how many
/// accesses actually reached the tag check, how many granules those
/// checks covered, and how mismatches split across TCF modes.
struct AccessMetrics {
  support::Counter &CheckedLoads =
      support::Metrics::counter("mte/access/checked_loads");
  support::Counter &CheckedStores =
      support::Metrics::counter("mte/access/checked_stores");
  support::Counter &CheckedGranules =
      support::Metrics::counter("mte/access/checked_granules");
  support::Counter &MismatchSync =
      support::Metrics::counter("mte/access/mismatch_sync");
  support::Counter &MismatchAsync =
      support::Metrics::counter("mte/access/mismatch_async");
};

AccessMetrics &accessMetrics() {
  static AccessMetrics M;
  return M;
}

/// Builds and routes a mismatch according to the thread's TCF mode.
M4J_NOINLINE void reportMismatch(ThreadState &TS, uint64_t Address,
                                 TagValue PointerTag, TagValue MemoryTag,
                                 uint32_t Size, bool IsWrite) {
  MteSystem &System = MteSystem::instance();
  if (TS.checkMode() == CheckMode::Async) {
    accessMetrics().MismatchAsync.add();
    TS.latchAsyncFault(Address, PointerTag, MemoryTag, IsWrite, Size);
    return;
  }
  accessMetrics().MismatchSync.add();
  TS.noteMismatch();
  System.stats().SyncFaults.fetch_add(1, std::memory_order_relaxed);
  FaultRecord Record;
  Record.Kind = FaultKind::TagMismatchSync;
  Record.HasAddress = true;
  Record.Address = Address;
  Record.DebugAddress = Address;
  Record.PointerTag = PointerTag;
  Record.MemoryTag = MemoryTag;
  Record.IsWrite = IsWrite;
  Record.AccessSize = Size;
  Record.ThreadId = TS.threadId();
  // Sync faults capture the frame stack at the faulting access itself:
  // this is Figure 4b's precise trace.
  Record.Backtrace = support::FrameStack::current().capture();
  System.deliverFault(std::move(Record));
}

} // namespace

void checkAccessSlow(ThreadState &TS, uint64_t Bits, uint32_t Size,
                     bool IsWrite) {
  MteSystem &System = MteSystem::instance();
  uint64_t Address = addressOf(Bits);
  const TaggedRegion *Region = System.regions()->find(Address);
  if (M4J_LIKELY(Region == nullptr))
    return; // not PROT_MTE memory: unchecked, like hardware

  TagValue PointerTag = pointerTagOf(Bits);
  // An access can straddle a granule boundary; hardware checks each
  // granule it touches.
  uint64_t First = support::alignDown(Address, kGranuleSize);
  uint64_t Last = support::alignDown(Address + Size - 1, kGranuleSize);
  uint64_t Granules = ((Last - First) >> kGranuleShift) + 1;
  TS.noteChecks(Granules);
  AccessMetrics &AM = accessMetrics();
  (IsWrite ? AM.CheckedStores : AM.CheckedLoads).add();
  AM.CheckedGranules.add(Granules);
  for (uint64_t Granule = First; Granule <= Last; Granule += kGranuleSize) {
    TagValue MemoryTag = Region->contains(Granule)
                             ? Region->tagAt(Granule)
                             : System.memoryTagAt(Granule);
    if (M4J_UNLIKELY(MemoryTag != PointerTag)) {
      reportMismatch(TS, Address, PointerTag, MemoryTag, Size, IsWrite);
      return;
    }
  }
}

} // namespace detail

namespace {

/// Granule-stride check over [Bits, Bits+Bytes) used by the bulk helpers.
/// One region lookup, then a vectorisable scan of the shadow bytes — the
/// hardware analog is that a memcpy's tag checks ride along with its loads
/// and stores at no visible extra cost.
M4J_ALWAYS_INLINE void checkRange(uint64_t Bits, uint64_t Bytes,
                                  bool IsWrite) {
  if (Bytes == 0)
    return;
  ThreadState &TS = ThreadState::current();
  if (M4J_LIKELY(!TS.checksOn()))
    return;

  MteSystem &System = MteSystem::instance();
  uint64_t Address = addressOf(Bits);
  const TaggedRegion *Region = System.regions()->find(Address);
  if (M4J_LIKELY(Region == nullptr))
    return; // not PROT_MTE memory

  TagValue PointerTag = pointerTagOf(Bits);
  uint64_t First = granuleIndex(support::alignDown(Address, kGranuleSize),
                                Region->begin());
  uint64_t LastAddr = std::min(Address + Bytes - 1, Region->end() - 1);
  uint64_t Last = granuleIndex(support::alignDown(LastAddr, kGranuleSize),
                               Region->begin());
  TS.noteChecks(Last - First + 1);
  detail::AccessMetrics &AM = detail::accessMetrics();
  (IsWrite ? AM.CheckedStores : AM.CheckedLoads).add();
  AM.CheckedGranules.add(Last - First + 1);
  uint64_t Bad = Region->findMismatch(First, Last, PointerTag);
  if (M4J_LIKELY(Bad == UINT64_MAX)) {
    // Bytes past the region's end (if any) are unchecked, like non-MTE
    // memory on hardware.
    return;
  }
  uint64_t BadAddr = Region->begin() + (Bad << kGranuleShift);
  uint64_t FaultAddr = std::max(Address, BadAddr);
  detail::checkAccessSlow(TS, withPointerTag(FaultAddr, PointerTag),
                          static_cast<uint32_t>(std::min<uint64_t>(
                              Bytes, kGranuleSize)),
                          IsWrite);
}

} // namespace

void checkReadRange(TaggedPtr<const void> Ptr, uint64_t Bytes) {
  checkRange(Ptr.bits(), Bytes, /*IsWrite=*/false);
}

void checkWriteRange(TaggedPtr<void> Ptr, uint64_t Bytes) {
  checkRange(Ptr.bits(), Bytes, /*IsWrite=*/true);
}

void copyBytes(TaggedPtr<void> Dst, TaggedPtr<const void> Src,
               uint64_t Bytes) {
  checkRange(Src.bits(), Bytes, /*IsWrite=*/false);
  checkRange(Dst.bits(), Bytes, /*IsWrite=*/true);
  std::memmove(Dst.raw(), Src.raw(), Bytes);
}

void fillBytes(TaggedPtr<void> Dst, uint8_t Value, uint64_t Bytes) {
  checkRange(Dst.bits(), Bytes, /*IsWrite=*/true);
  std::memset(Dst.raw(), Value, Bytes);
}

void readBytes(void *HostDst, TaggedPtr<const void> Src, uint64_t Bytes) {
  checkRange(Src.bits(), Bytes, /*IsWrite=*/false);
  std::memcpy(HostDst, Src.raw(), Bytes);
}

void writeBytes(TaggedPtr<void> Dst, const void *HostSrc, uint64_t Bytes) {
  checkRange(Dst.bits(), Bytes, /*IsWrite=*/true);
  std::memcpy(Dst.raw(), HostSrc, Bytes);
}

void simulatedSyscall(const char *Name) { support::syscallBarrier(Name); }

} // namespace mte4jni::mte

//===- Access.cpp - Tag-checked memory access -----------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/Access.h"

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/Syscall.h"
#include "mte4jni/support/TraceRing.h"

#include <algorithm>
#include <cstring>

namespace mte4jni::mte {
namespace detail {

namespace {

/// Per-path metrics behind the paper's Figure 5/8 breakdowns: how many
/// accesses actually reached the tag check, how many granules those
/// checks covered, how mismatches split across TCF modes, and how the
/// per-thread region cache performed (hits are counted in the inlined
/// fast path, Access.h).
struct AccessMetrics {
  support::Counter &CheckedLoads =
      support::Metrics::counter("mte/access/checked_loads");
  support::Counter &CheckedStores =
      support::Metrics::counter("mte/access/checked_stores");
  support::Counter &CheckedGranules =
      support::Metrics::counter("mte/access/checked_granules");
  support::Counter &MismatchSync =
      support::Metrics::counter("mte/access/mismatch_sync");
  support::Counter &MismatchAsync =
      support::Metrics::counter("mte/access/mismatch_async");
  support::Counter &RegionCacheMiss =
      support::Metrics::counter("mte/access/region_cache_miss");
  /// Why the per-thread region cache missed (fast-path attribution):
  /// cold = nothing cached yet; epoch_stale = a region was published or
  /// retired since the cache fill; out_of_range = the access left the
  /// cached region. Their sum can undercount region_cache_miss by the
  /// mismatch fall-throughs, which are not misses.
  support::Counter &MissCold =
      support::Metrics::counter("mte/access/cache_miss_reason/cold");
  support::Counter &MissEpochStale =
      support::Metrics::counter("mte/access/cache_miss_reason/epoch_stale");
  support::Counter &MissOutOfRange =
      support::Metrics::counter("mte/access/cache_miss_reason/out_of_range");
};

AccessMetrics &accessMetrics() {
  static AccessMetrics M;
  return M;
}

/// Classifies a slow-path entry against the thread's region cache. Called
/// only on cold paths; when every fast-path precondition held, the entry
/// was a mismatch fall-through, not a cache miss, and nothing is counted.
void countRegionCacheMissReason(ThreadState &TS, uint64_t Address,
                                uint64_t Bytes) {
  AccessMetrics &AM = accessMetrics();
  const TaggedRegion *Cached = TS.cachedRegion();
  if (Cached == nullptr) {
    AM.MissCold.add();
    return;
  }
  if (TS.cachedRegionEpoch() !=
      RegionPublishEpoch.load(std::memory_order_acquire)) {
    AM.MissEpochStale.add();
    return;
  }
  if (!(Cached->contains(Address) && Bytes <= Cached->end() - Address))
    AM.MissOutOfRange.add();
}

/// Builds and routes a mismatch according to the thread's TCF mode.
M4J_NOINLINE void reportMismatch(ThreadState &TS, uint64_t Address,
                                 TagValue PointerTag, TagValue MemoryTag,
                                 uint32_t Size, bool IsWrite) {
  MteSystem &System = MteSystem::instance();
  if (TS.checkMode() == CheckMode::Async) {
    accessMetrics().MismatchAsync.add();
    TS.latchAsyncFault(Address, PointerTag, MemoryTag, IsWrite, Size);
    return;
  }
  accessMetrics().MismatchSync.add();
  TS.noteMismatch();
  System.stats().SyncFaults.fetch_add(1, std::memory_order_relaxed);
  FaultRecord Record;
  Record.Kind = FaultKind::TagMismatchSync;
  Record.HasAddress = true;
  Record.Address = Address;
  Record.DebugAddress = Address;
  Record.PointerTag = PointerTag;
  Record.MemoryTag = MemoryTag;
  Record.IsWrite = IsWrite;
  Record.AccessSize = Size;
  Record.ThreadId = TS.threadId();
  // Sync faults capture the frame stack at the faulting access itself:
  // this is Figure 4b's precise trace.
  Record.Backtrace = support::FrameStack::current().capture();
  System.deliverFault(std::move(Record));
}

} // namespace

void checkAccessSlow(ThreadState &TS, uint64_t Bits, uint32_t Size,
                     bool IsWrite) {
  MteSystem &System = MteSystem::instance();
  uint64_t Address = addressOf(Bits);
  uint64_t LastByte = Address + Size - 1;
  uint64_t First = support::alignDown(Address, kGranuleSize);
  uint64_t Last = support::alignDown(LastByte, kGranuleSize);
  TagValue PointerTag = pointerTagOf(Bits);

  RegionPin Pin(System);
  accessMetrics().RegionCacheMiss.add();
  countRegionCacheMissReason(TS, Address, Size);

  // Hardware checks every granule the access touches against the page it
  // lives in: an access can begin below a PROT_MTE region and extend into
  // it (the old single find(Address) lookup missed exactly that case), or
  // span two adjacent regions. Granules outside every region are
  // unchecked, like non-PROT_MTE memory.
  uint64_t Checked = 0;
  const TaggedRegion *Hit = nullptr;
  for (uint64_t Granule = First;; Granule += kGranuleSize) {
    const TaggedRegion *Region =
        (Hit && Hit->contains(Granule)) ? Hit : Pin->find(Granule);
    if (Region != nullptr) {
      Hit = Region;
      ++Checked;
      if (M4J_UNLIKELY(Region->tagAt(Granule) != PointerTag)) {
        TS.noteChecks(Checked);
        AccessMetrics &AM = accessMetrics();
        (IsWrite ? AM.CheckedStores : AM.CheckedLoads).add();
        AM.CheckedGranules.add(Checked);
        reportMismatch(TS, Address, PointerTag, Region->tagAt(Granule), Size,
                       IsWrite);
        return;
      }
    }
    if (Granule >= Last)
      break;
  }
  if (Checked == 0)
    return; // not PROT_MTE memory: unchecked, like hardware

  TS.noteChecks(Checked);
  AccessMetrics &AM = accessMetrics();
  (IsWrite ? AM.CheckedStores : AM.CheckedLoads).add();
  AM.CheckedGranules.add(Checked);

  // Refill the last-hit cache when the whole access sits in one region —
  // the overwhelmingly common case the inlined fast path serves next time.
  if (Hit->contains(Address) && Hit->contains(LastByte))
    TS.cacheRegion(Pin->findShared(Address), Pin.epoch());
}

} // namespace detail

namespace {

/// Granule-stride check over [Bits, Bits+Bytes) used by the bulk helpers.
/// One SWAR/SIMD scan of the shadow bytes per overlapped region — the
/// hardware analog is that a memcpy's tag checks ride along with its loads
/// and stores at no visible extra cost. Ranges may straddle region
/// boundaries in either direction; every granule inside a region is
/// checked, granules outside every region are not.
M4J_NOINLINE void checkRangeSlow(ThreadState &TS, uint64_t Bits,
                                 uint64_t Bytes, bool IsWrite,
                                 support::SampledLatency &Lat) {
  MteSystem &System = MteSystem::instance();
  uint64_t Address = addressOf(Bits);
  uint64_t End = Address + Bytes;
  TagValue PointerTag = pointerTagOf(Bits);

  RegionPin Pin(System);
  detail::AccessMetrics &AM = detail::accessMetrics();
  AM.RegionCacheMiss.add();
  detail::countRegionCacheMissReason(TS, Address, Bytes);

  uint64_t Granules = 0;
  const TaggedRegion *Container = nullptr;
  for (const auto &RegionPtr : Pin->regions()) {
    const TaggedRegion &Region = *RegionPtr;
    uint64_t From = std::max(Address, Region.begin());
    uint64_t To = std::min(End, Region.end());
    if (From >= To)
      continue;
    uint64_t FirstIdx =
        granuleIndex(support::alignDown(From, kGranuleSize), Region.begin());
    uint64_t LastIdx =
        granuleIndex(support::alignDown(To - 1, kGranuleSize), Region.begin());
    Granules += LastIdx - FirstIdx + 1;
    uint64_t Bad = Region.findMismatch(FirstIdx, LastIdx, PointerTag);
    if (M4J_UNLIKELY(Bad != UINT64_MAX)) {
      TS.noteChecks(Granules);
      (IsWrite ? AM.CheckedStores : AM.CheckedLoads).add();
      AM.CheckedGranules.add(Granules);
      uint64_t BadAddr = Region.begin() + (Bad << kGranuleShift);
      uint64_t FaultAddr = std::max(Address, BadAddr);
      detail::reportMismatch(
          TS, FaultAddr, PointerTag, Region.tagAt(BadAddr),
          static_cast<uint32_t>(std::min<uint64_t>(Bytes, kGranuleSize)),
          IsWrite);
      return;
    }
    if (Address >= Region.begin() && End <= Region.end())
      Container = &Region;
  }
  if (Granules == 0)
    return; // not PROT_MTE memory

  TS.noteChecks(Granules);
  (IsWrite ? AM.CheckedStores : AM.CheckedLoads).add();
  AM.CheckedGranules.add(Granules);
  if (Lat.armed()) {
    Lat.setArg(static_cast<uint8_t>(detail::checkKernelFor(Granules)));
    Lat.setArg2(static_cast<uint32_t>(
        Granules > UINT32_MAX ? UINT32_MAX : Granules));
  }
  if (Container != nullptr)
    TS.cacheRegion(Pin->findShared(Address), Pin.epoch());
}

M4J_ALWAYS_INLINE void checkRange(uint64_t Bits, uint64_t Bytes,
                                  bool IsWrite) {
  if (Bytes == 0)
    return;
  ThreadState &TS = ThreadState::current();
  if (M4J_LIKELY(!TS.checksOn()))
    return;

  // ~1/64 of checks record a latency sample and a CheckScan flight slice
  // (kernel choice + granule count filled in below, once known).
  static support::Histogram &CheckNanos =
      support::Metrics::histogram("mte/access/check_range_nanos");
  support::SampledLatency Lat(CheckNanos, support::FlightKind::CheckScan);

  // Fast path: whole range inside the thread's cached region under the
  // current publish epoch — one SWAR/SIMD scan, no list walk.
  uint64_t Address = addressOf(Bits);
  const TaggedRegion *Cached = TS.cachedRegion();
  if (M4J_LIKELY(
          Cached != nullptr &&
          TS.cachedRegionEpoch() ==
              detail::RegionPublishEpoch.load(std::memory_order_acquire) &&
          Cached->contains(Address) && Bytes <= Cached->end() - Address)) {
    TagValue PointerTag = pointerTagOf(Bits);
    uint64_t FirstIdx = granuleIndex(
        support::alignDown(Address, kGranuleSize), Cached->begin());
    uint64_t LastIdx =
        granuleIndex(support::alignDown(Address + Bytes - 1, kGranuleSize),
                     Cached->begin());
    uint64_t Granules = LastIdx - FirstIdx + 1;
    if (M4J_UNLIKELY(Lat.armed())) {
      Lat.setArg(static_cast<uint8_t>(detail::checkKernelFor(Granules)));
      Lat.setArg2(static_cast<uint32_t>(
          Granules > UINT32_MAX ? UINT32_MAX : Granules));
    }
    uint64_t Bad = Cached->findMismatch(FirstIdx, LastIdx, PointerTag);
    if (M4J_LIKELY(Bad == UINT64_MAX)) {
      TS.noteChecks(Granules);
      detail::AccessMetrics &AM = detail::accessMetrics();
      static support::Counter &CacheHits =
          support::Metrics::counter("mte/access/region_cache_hit");
      CacheHits.add();
      (IsWrite ? AM.CheckedStores : AM.CheckedLoads).add();
      AM.CheckedGranules.add(Granules);
      return;
    }
    // Mismatch: fall through for uniform counting and reporting.
  }
  checkRangeSlow(TS, Bits, Bytes, IsWrite, Lat);
}

} // namespace

void checkReadRange(TaggedPtr<const void> Ptr, uint64_t Bytes) {
  checkRange(Ptr.bits(), Bytes, /*IsWrite=*/false);
}

void checkWriteRange(TaggedPtr<void> Ptr, uint64_t Bytes) {
  checkRange(Ptr.bits(), Bytes, /*IsWrite=*/true);
}

void copyBytes(TaggedPtr<void> Dst, TaggedPtr<const void> Src,
               uint64_t Bytes) {
  checkRange(Src.bits(), Bytes, /*IsWrite=*/false);
  checkRange(Dst.bits(), Bytes, /*IsWrite=*/true);
  std::memmove(Dst.raw(), Src.raw(), Bytes);
}

void fillBytes(TaggedPtr<void> Dst, uint8_t Value, uint64_t Bytes) {
  checkRange(Dst.bits(), Bytes, /*IsWrite=*/true);
  std::memset(Dst.raw(), Value, Bytes);
}

void readBytes(void *HostDst, TaggedPtr<const void> Src, uint64_t Bytes) {
  checkRange(Src.bits(), Bytes, /*IsWrite=*/false);
  std::memcpy(HostDst, Src.raw(), Bytes);
}

void writeBytes(TaggedPtr<void> Dst, const void *HostSrc, uint64_t Bytes) {
  checkRange(Dst.bits(), Bytes, /*IsWrite=*/true);
  std::memcpy(Dst.raw(), HostSrc, Bytes);
}

void simulatedSyscall(const char *Name) { support::syscallBarrier(Name); }

} // namespace mte4jni::mte

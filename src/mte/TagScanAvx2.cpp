//===- TagScanAvx2.cpp - AVX2 shadow-tag scan kernel ----------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Compiled with -mavx2 when the toolchain supports it (CMake feature
// check); kept in its own translation unit so the rest of the library
// stays at the baseline ISA. detail::scanMismatch only calls in here after
// __builtin_cpu_supports("avx2") confirms the host can execute it.
//
// With the two-level store this one byte kernel serves BOTH levels: a
// summary sweep compares one byte per 64-granule line (so each 32-byte
// vector covers 2048 granules), and the packed-nibble kernels run it over
// the 2-tags-per-byte shadow with the pattern (tag<<4)|tag — 64 granules
// per vector. No nibble-specific AVX2 code is needed: every expected-tag
// pattern is byte-replicable in both encodings.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/TagStorage.h"

#include <bit>
#include <immintrin.h>

namespace mte4jni::mte::detail {

uint64_t scanMismatchAvx2(const uint8_t *Tags, uint64_t Count,
                          TagValue Expected) {
  const __m256i Pattern = _mm256_set1_epi8(static_cast<char>(Expected));
  uint64_t I = 0;
  for (; I + 32 <= Count; I += 32) {
    __m256i V =
        _mm256_loadu_si256(reinterpret_cast<const __m256i *>(Tags + I));
    unsigned Eq = static_cast<unsigned>(
        _mm256_movemask_epi8(_mm256_cmpeq_epi8(V, Pattern)));
    if (M4J_UNLIKELY(Eq != 0xFFFFFFFFu))
      return I + static_cast<uint64_t>(std::countr_zero(~Eq));
  }
  if (I < Count) {
    uint64_t Tail = scanMismatchSwar(Tags + I, Count - I, Expected);
    if (Tail != UINT64_MAX)
      return I + Tail;
  }
  return UINT64_MAX;
}

} // namespace mte4jni::mte::detail

//===- Tombstone.cpp - Android-style crash report rendering -----------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/Tombstone.h"

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/StringUtils.h"

namespace mte4jni::mte {
namespace {

const char *signalCodeOf(const FaultRecord &Record) {
  switch (Record.Kind) {
  case FaultKind::TagMismatchSync:
    return "SEGV_MTESERR";
  case FaultKind::TagMismatchAsync:
    return "SEGV_MTEAERR";
  case FaultKind::GuardedCopyCorruption:
    return "CHECK_JNI_ABORT";
  case FaultKind::JniCheckError:
    return "CHECK_JNI";
  }
  return "?";
}

/// The MTE tag dump: one line per granule around the fault, with the
/// allocation tag and a marker on the faulting granule.
void appendTagDump(std::string &Out, const FaultRecord &Record,
                   const TombstoneOptions &Options) {
  Out += "memory tags near fault address:\n";
  if (!Record.HasAddress) {
    Out += "    (not available: asynchronous MTE reports carry no fault "
           "address)\n";
    return;
  }
  MteSystem &System = MteSystem::instance();
  uint64_t Base = support::alignDown(Record.Address, kGranuleSize);
  for (int D = -int(Options.TagDumpRadius);
       D <= int(Options.TagDumpRadius); ++D) {
    uint64_t Addr =
        Base + static_cast<uint64_t>(D) * kGranuleSize;
    if (Addr > Base && D < 0)
      continue; // underflowed below zero
    bool Mapped = System.isTaggedAddress(Addr);
    if (Mapped) {
      TagValue Tag = System.memoryTagAt(Addr);
      Out += support::format("    %016llx: tag %2u %s%s\n",
                             static_cast<unsigned long long>(Addr),
                             unsigned(Tag),
                             Tag == Record.PointerTag ? "(matches ptr)"
                                                      : "             ",
                             D == 0 ? "  <-- fault here, ptr tag " : "");
    } else {
      Out += support::format("    %016llx: <not PROT_MTE>%s\n",
                             static_cast<unsigned long long>(Addr),
                             D == 0 ? "  <-- fault here" : "");
    }
    if (D == 0 && Mapped)
      Out += support::format("                      (pointer tag %u, "
                             "memory tag %u)\n",
                             unsigned(Record.PointerTag),
                             unsigned(Record.MemoryTag));
  }
}

} // namespace

std::string renderTombstone(const FaultRecord &Record,
                            const TombstoneOptions &Options) {
  std::string Out;
  Out += "*** *** *** *** *** *** *** *** *** *** *** *** *** *** *** "
         "***\n";
  Out += "Build fingerprint: "
         "'mte4jni/simulator/x86_64:14/SIM.240101.001/1:userdebug'\n";
  Out += support::format("pid: %d, tid: %llu, name: %s\n", Options.Pid,
                         static_cast<unsigned long long>(Record.ThreadId),
                         Options.ProcessName.c_str());
  if (Record.HasAddress)
    Out += support::format(
        "signal 11 (SIGSEGV), code 9 (%s), fault addr 0x%016llx\n",
        signalCodeOf(Record), static_cast<unsigned long long>(Record.Address));
  else
    Out += support::format(
        "signal 11 (SIGSEGV), code 8 (%s), fault addr --------\n",
        signalCodeOf(Record));
  if (!Record.DeliveredAtSyscall.empty())
    Out += support::format("note: delivered at syscall %s (asynchronous "
                           "MTE mode)\n",
                           Record.DeliveredAtSyscall.c_str());
  if (!Record.Description.empty())
    Out += "Abort message: '" + Record.Description + "'\n";

  Out += support::renderBacktrace(Record.Backtrace);
  appendTagDump(Out, Record, Options);

  // Recent-fault telemetry: debuggerd prints only the crashing fault, but
  // the ring often shows the run-up (e.g. async mismatches latched before
  // the sync fault that finally aborted).
  std::vector<support::FaultEvent> Recent =
      support::Metrics::faultRing().snapshot();
  if (Recent.size() > 1) {
    Out += support::format(
        "recent MTE faults (%llu total, last %zu shown):\n",
        static_cast<unsigned long long>(
            support::Metrics::faultRing().totalRecorded()),
        Recent.size());
    for (const support::FaultEvent &E : Recent) {
      if (E.HasAddress)
        Out += support::format(
            "    #%llu %s addr 0x%016llx ptr tag %u mem tag %u (%s, %u "
            "bytes) tid %llu\n",
            static_cast<unsigned long long>(E.Sequence), E.Kind.c_str(),
            static_cast<unsigned long long>(E.Address),
            unsigned(E.PointerTag), unsigned(E.MemoryTag),
            E.IsWrite ? "write" : "read", E.AccessSize,
            static_cast<unsigned long long>(E.ThreadId));
      else
        Out += support::format(
            "    #%llu %s addr -------- tid %llu\n",
            static_cast<unsigned long long>(E.Sequence), E.Kind.c_str(),
            static_cast<unsigned long long>(E.ThreadId));
    }
  }
  // Bounded metrics excerpt: the tag-table slow-path attribution and the
  // fault-ring depth. This is the part of the registry a crash triager
  // actually wants in-band — whether the process was grinding through the
  // shard-locked slow path when it died, and how many earlier faults the
  // ring retained vs. saw in total.
  support::MetricsSnapshot Snapshot = support::Metrics::snapshot();
  constexpr std::string_view kSlowPrefix = "core/tagtable/slow_reason/";
  std::string SlowLines;
  for (const support::CounterSample &C : Snapshot.Counters) {
    if (C.Value == 0 || C.Name.compare(0, kSlowPrefix.size(), kSlowPrefix) != 0)
      continue;
    SlowLines += support::format(
        "    %s: %llu\n", C.Name.c_str() + kSlowPrefix.size(),
        static_cast<unsigned long long>(C.Value));
  }
  Out += "metrics excerpt:\n";
  Out += SlowLines.empty() ? "    tagtable slow path: never taken\n"
                           : "    tagtable slow-path reasons:\n" + SlowLines;
  Out += support::format(
      "    fault ring: %zu retained of %llu total\n", Recent.size(),
      static_cast<unsigned long long>(Snapshot.FaultsTotal));

  Out += "*** *** *** *** *** *** *** *** *** *** *** *** *** *** *** "
         "***\n";
  return Out;
}

bool renderLatestTombstone(std::string &Out,
                           const TombstoneOptions &Options) {
  auto Records = MteSystem::instance().faultLog().snapshot();
  if (Records.empty())
    return false;
  Out = renderTombstone(Records.back(), Options);
  return true;
}

} // namespace mte4jni::mte

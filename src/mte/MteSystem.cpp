//===- MteSystem.cpp - Process-level MTE simulator state ------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/MteSystem.h"

#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/support/Logging.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/Syscall.h"

#include <algorithm>
#include <cstdio>
#include <mutex>

namespace mte4jni::mte {
namespace {

/// Syscall observer: drains the calling thread's pending async fault.
void drainAsyncAtSyscall(void *Context, const char *SyscallName) {
  (void)Context;
  ThreadState &TS = ThreadState::current();
  if (M4J_UNLIKELY(TS.asyncPending()))
    TS.drainAsync(SyscallName);
}

} // namespace

MteSystem &MteSystem::instance() {
  static MteSystem System;
  return System;
}

MteSystem::MteSystem() {
  publishRegions({});
  support::addSyscallObserver(drainAsyncAtSyscall, this);
}

RegionPin::RegionPin(const MteSystem &System) {
  ThreadState &TS = ThreadState::current();
  Slot = &TS.regionEpochSlot();
  Saved = Slot->load(std::memory_order_relaxed);
  // seq_cst on the epoch read, slot publish and snapshot load pairs with
  // the writer's exchange -> epoch bump -> fence -> slot scan sequence: if
  // our snapshot load observed a list that was later retired at epoch R,
  // the epoch we published here is <= R and the reclaimer's scan is
  // guaranteed to see it (classic store-load ordering, needs seq_cst).
  Epoch = detail::RegionPublishEpoch.load(std::memory_order_seq_cst);
  // Nested pins keep the OLDER epoch pinned: it protects a superset of the
  // snapshots the inner walk can touch.
  uint64_t Pinned = Saved != 0 ? std::min(Saved, Epoch) : Epoch;
  Slot->store(Pinned, std::memory_order_seq_cst);
  std::atomic_thread_fence(std::memory_order_seq_cst);
  List = System.RegionsSnapshot.load(std::memory_order_seq_cst);
}

RegionPin::~RegionPin() { Slot->store(Saved, std::memory_order_release); }

void MteSystem::publishRegions(
    std::vector<std::shared_ptr<TaggedRegion>> NewRegions) {
  auto *NewList = new RegionList(std::move(NewRegions));
  // Shadow-footprint gauges track the CURRENT region set (set, not add, so
  // unregister and reset are reflected). shadow_bytes is the packed level
  // only — regionSize/32 — which is what the CI RSS assertion checks;
  // summary_bytes is the level-1 overhead on top.
  {
    static support::Gauge &ShadowBytes =
        support::Metrics::gauge("mte/tagstore/shadow_bytes");
    static support::Gauge &SummaryBytes =
        support::Metrics::gauge("mte/tagstore/summary_bytes");
    static support::Gauge &RegionBytes =
        support::Metrics::gauge("mte/tagstore/region_bytes");
    uint64_t Shadow = 0, Summaries = 0, Covered = 0;
    for (const auto &Region : NewList->regions()) {
      Shadow += Region->shadowBytes();
      Summaries += Region->summaryBytes();
      Covered += Region->size();
    }
    ShadowBytes.set(Shadow);
    SummaryBytes.set(Summaries);
    RegionBytes.set(Covered);
  }
  const RegionList *Old =
      RegionsSnapshot.exchange(NewList, std::memory_order_seq_cst);
  // Bump AFTER the swap: a reader that still observed the pre-bump epoch
  // may hold Old, so Old is retired under that epoch. The bump also
  // invalidates every thread's cached last-hit region.
  uint64_t RetireEpoch =
      detail::RegionPublishEpoch.fetch_add(1, std::memory_order_seq_cst);
  if (Old)
    RetiredSnapshots.push_back(
        {RetireEpoch, std::unique_ptr<const RegionList>(Old)});
  reclaimRetiredLocked();
}

void MteSystem::reclaimRetiredLocked() {
  if (RetiredSnapshots.empty())
    return;
  std::atomic_thread_fence(std::memory_order_seq_cst);
  // A snapshot retired at epoch R may still be held by a reader whose slot
  // shows an epoch A <= R (the reader entered before the swap). Readers
  // with A > R provably loaded a newer list. Quiescent threads (slot 0)
  // hold nothing.
  uint64_t MinActive = UINT64_MAX;
  {
    std::lock_guard<support::SpinLock> Guard(ThreadLock);
    for (ThreadState *TS : Threads) {
      uint64_t A = TS->regionEpochSlot().load(std::memory_order_seq_cst);
      if (A != 0)
        MinActive = std::min(MinActive, A);
    }
  }
  std::erase_if(RetiredSnapshots, [MinActive](const RetiredSnapshot &R) {
    return R.Epoch < MinActive;
  });
}

size_t MteSystem::retiredSnapshotCount() const {
  std::lock_guard<support::SpinLock> Guard(RegionLock);
  return RetiredSnapshots.size();
}

void MteSystem::reset() {
  {
    std::lock_guard<support::SpinLock> Guard(RegionLock);
    LiveRegions.clear();
    publishRegions({});
    // Whatever reclaimRetiredLocked could not prove quiescent stays parked
    // until the next publish re-runs the scan.
  }
  ProcessMode.store(CheckMode::None, std::memory_order_relaxed);
  IrgExclude.store(0x0001, std::memory_order_relaxed);
  Handler.store(nullptr, std::memory_order_relaxed);
  HandlerContext.store(nullptr, std::memory_order_relaxed);
  Log.clear();
  Stats.reset();
  ThreadSeedCounter.store(0, std::memory_order_relaxed);
  {
    std::lock_guard<support::SpinLock> Guard(ThreadLock);
    for (ThreadState *TS : Threads) {
      TS->Tco = false;
      TS->Mode = CheckMode::None;
      TS->refreshChecksOn();
    }
  }
}

void MteSystem::setProcessCheckMode(CheckMode Mode) {
  ProcessMode.store(Mode, std::memory_order_relaxed);
  std::lock_guard<support::SpinLock> Guard(ThreadLock);
  for (ThreadState *TS : Threads) {
    TS->Mode = Mode;
    TS->refreshChecksOn();
  }
}

void MteSystem::setIrgExcludeMask(uint16_t Mask) {
  IrgExclude.store(Mask, std::memory_order_relaxed);
}

void MteSystem::registerRegion(void *Begin, uint64_t Size) {
  std::lock_guard<support::SpinLock> Guard(RegionLock);
  uint64_t BeginAddr = reinterpret_cast<uint64_t>(Begin);
  for (const auto &Region : LiveRegions)
    M4J_ASSERT(BeginAddr >= Region->end() || BeginAddr + Size <= Region->begin(),
               "overlapping PROT_MTE regions");
  LiveRegions.push_back(std::make_shared<TaggedRegion>(BeginAddr, Size));
  publishRegions(LiveRegions);
}

void MteSystem::unregisterRegion(void *Begin) {
  std::lock_guard<support::SpinLock> Guard(RegionLock);
  uint64_t BeginAddr = reinterpret_cast<uint64_t>(Begin);
  auto It = std::find_if(
      LiveRegions.begin(), LiveRegions.end(),
      [BeginAddr](const auto &Region) { return Region->begin() == BeginAddr; });
  M4J_ASSERT(It != LiveRegions.end(), "unregistering unknown region");
  LiveRegions.erase(It);
  publishRegions(LiveRegions);
}

bool MteSystem::isTaggedAddress(uint64_t Addr) const {
  RegionPin Pin(*this);
  return Pin->find(Addr) != nullptr;
}

TagValue MteSystem::memoryTagAt(uint64_t Addr) const {
  RegionPin Pin(*this);
  const TaggedRegion *Region = Pin->find(Addr);
  return Region ? Region->tagAt(Addr) : TagValue(0);
}

void MteSystem::setFaultHandler(FaultHandler NewHandler, void *Context) {
  HandlerContext.store(Context, std::memory_order_relaxed);
  Handler.store(NewHandler, std::memory_order_release);
}

void MteSystem::deliverFault(FaultRecord Record) {
  FaultHandler H = Handler.load(std::memory_order_acquire);
  void *Context = HandlerContext.load(std::memory_order_relaxed);
  // Keep a copy in the log before consulting the handler so an aborting
  // handler still leaves a trace.
  FaultRecord Copy = Record;
  Log.append(std::move(Record));
  FaultAction Action = FaultAction::Continue;
  if (H)
    Action = H(Context, Copy);
  if (Action == FaultAction::Abort) {
    std::fputs(Copy.str().c_str(), stderr);
    std::fputs("mte4jni: emulating device behaviour: abort()\n", stderr);
    std::fflush(stderr);
    std::abort();
  }
}

void MteSystem::registerThread(ThreadState *State) {
  std::lock_guard<support::SpinLock> Guard(ThreadLock);
  Threads.push_back(State);
}

void MteSystem::unregisterThread(ThreadState *State) {
  std::lock_guard<support::SpinLock> Guard(ThreadLock);
  auto It = std::find(Threads.begin(), Threads.end(), State);
  if (It != Threads.end())
    Threads.erase(It);
}

uint64_t MteSystem::nextThreadSeed() {
  uint64_t Counter = ThreadSeedCounter.fetch_add(1, std::memory_order_relaxed);
  return RngSeed.load(std::memory_order_relaxed) * 0x9e3779b97f4a7c15ULL +
         Counter;
}

} // namespace mte4jni::mte

//===- Instructions.cpp - Simulated MTE instruction set --------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/Instructions.h"

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/support/Metrics.h"

#include <bit>

namespace mte4jni::mte {

namespace {

/// Simulated-instruction retire counts — the raw tag-op volume behind the
/// paper's tag-maintenance overhead numbers. IRG/LDG/STG-granule volume is
/// already counted by the (pre-existing) MteStats atomics on these paths,
/// so those registry entries are derived counters mirroring MteStats at
/// snapshot time — zero added cost per retired instruction. Only the
/// discrete stg/st2g entry points (cold; bulk tagging uses setTagRange)
/// carry direct counters.
struct InstrMetrics {
  support::Counter &Stg = support::Metrics::counter("mte/instr/stg");
  support::Counter &St2g = support::Metrics::counter("mte/instr/st2g");

  InstrMetrics() {
    support::Metrics::registerDerived("mte/instr/irg", +[] {
      return MteSystem::instance().stats().IrgCount.load(
          std::memory_order_relaxed);
    });
    support::Metrics::registerDerived("mte/instr/ldg", +[] {
      return MteSystem::instance().stats().LdgCount.load(
          std::memory_order_relaxed);
    });
    support::Metrics::registerDerived("mte/instr/stg_granules", +[] {
      return MteSystem::instance().stats().StgGranules.load(
          std::memory_order_relaxed);
    });
  }
};

InstrMetrics &instrMetrics() {
  static InstrMetrics M;
  return M;
}

/// Registered at load time so snapshots taken before any stg/st2g call
/// still include the derived instruction counters.
const bool InstrMetricsRegistered = (instrMetrics(), true);

} // namespace

TagValue irgTag(uint16_t ExtraExclude) {
  MteSystem &System = MteSystem::instance();
  uint16_t Exclude =
      static_cast<uint16_t>(System.irgExcludeMask() | ExtraExclude);
  System.stats().IrgCount.fetch_add(1, std::memory_order_relaxed);

  uint16_t Allowed = static_cast<uint16_t>(~Exclude);
  if (Allowed == 0)
    return 0; // hardware: all-excluded IRG yields tag 0

  unsigned NumAllowed = static_cast<unsigned>(std::popcount(Allowed));
  unsigned Pick = static_cast<unsigned>(
      ThreadState::current().irgRng().nextBelow(NumAllowed));
  // Select the Pick-th set bit of Allowed.
  for (unsigned Tag = 0; Tag < kNumTags; ++Tag) {
    if (Allowed & (1u << Tag)) {
      if (Pick == 0)
        return static_cast<TagValue>(Tag);
      --Pick;
    }
  }
  M4J_UNREACHABLE("popcount/selection mismatch");
}

TaggedPtr<void> irg(TaggedPtr<void> Ptr, uint16_t ExtraExclude) {
  return Ptr.withTag(irgTag(ExtraExclude));
}

TagValue ldgTag(uint64_t Addr) {
  MteSystem &System = MteSystem::instance();
  System.stats().LdgCount.fetch_add(1, std::memory_order_relaxed);
  return System.memoryTagAt(addressOf(Addr));
}

TaggedPtr<void> ldg(TaggedPtr<void> Ptr) {
  return Ptr.withTag(ldgTag(Ptr.address()));
}

namespace {

/// Shared implementation for STG/ST2G/bulk stores. Summary maintenance is
/// free here: setTagRange publishes Uniform(tag) line summaries for any
/// wholly-covered 64-granule line and demotes partial edge lines, so a
/// single stg fragments (demotes) its line while TLAB scrubs and
/// deferred-clear reclaims publish uniform lines the two-level check
/// walk then skips in one byte compare (DESIGN.md §13).
void storeTags(uint64_t Addr, uint64_t Granules, TagValue Tag) {
  MteSystem &System = MteSystem::instance();
  RegionPin Pin(System);
  TaggedRegion *Region = Pin->findMutable(Addr);
  M4J_ASSERT(Region != nullptr,
             "tag store to memory not mapped with PROT_MTE");
  uint64_t From = support::alignDown(Addr, kGranuleSize);
  uint64_t Written =
      Region->setTagRange(From, From + Granules * kGranuleSize, Tag);
  System.stats().StgGranules.fetch_add(Written, std::memory_order_relaxed);
}

} // namespace

void stg(TaggedPtr<void> Ptr) {
  instrMetrics().Stg.add();
  storeTags(Ptr.address(), 1, Ptr.tag());
}

void st2g(TaggedPtr<void> Ptr) {
  instrMetrics().St2g.add();
  storeTags(Ptr.address(), 2, Ptr.tag());
}

void setTagRange(TaggedPtr<void> Ptr, uint64_t Bytes) {
  if (Bytes == 0)
    return;
  uint64_t Begin = support::alignDown(Ptr.address(), kGranuleSize);
  uint64_t End = support::alignTo(Ptr.address() + Bytes, kGranuleSize);
  // Algorithm 1 applies tags "using st2g and stg instructions"; a loop of
  // those retires at store throughput on hardware, so the simulator uses
  // one bulk shadow fill to stay cost-faithful (one lookup, one memset).
  storeTags(Begin, (End - Begin) >> kGranuleShift, Ptr.tag());
}

void clearTagRange(uint64_t Addr, uint64_t Bytes) {
  if (Bytes == 0)
    return;
  uint64_t Begin = support::alignDown(addressOf(Addr), kGranuleSize);
  uint64_t End = support::alignTo(addressOf(Addr) + Bytes, kGranuleSize);
  storeTags(Begin, (End - Begin) >> kGranuleShift, 0);
}

uint64_t taggedGranulesIn(uint64_t Addr, uint64_t Bytes) {
  if (Bytes == 0)
    return 0;
  MteSystem &System = MteSystem::instance();
  RegionPin Pin(System);
  const TaggedRegion *Region = Pin->find(addressOf(Addr));
  if (Region == nullptr)
    return 0;
  return Region->countTagged(addressOf(Addr), addressOf(Addr) + Bytes);
}

} // namespace mte4jni::mte

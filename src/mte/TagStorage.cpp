//===- TagStorage.cpp - Shadow storage for granule tags ------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/TagStorage.h"

#include <algorithm>
#include <bit>
#include <cstring>

#if defined(__SSE2__) && !defined(M4J_DISABLE_SIMD_SCAN)
#include <emmintrin.h>
#endif

namespace mte4jni::mte {
namespace detail {

std::atomic<uint64_t> RegionPublishEpoch{1};

uint64_t scanMismatchScalar(const uint8_t *Tags, uint64_t Count,
                            TagValue Expected) {
  for (uint64_t I = 0; I < Count; ++I)
    if (M4J_UNLIKELY(Tags[I] != Expected))
      return I;
  return UINT64_MAX;
}

namespace {

/// Locates the first byte of an 8-byte window known to contain a mismatch.
/// \p Diff is Word XOR replicated-expected, nonzero.
M4J_ALWAYS_INLINE uint64_t firstDiffByte(uint64_t Diff, const uint8_t *Window,
                                         TagValue Expected) {
  if constexpr (std::endian::native == std::endian::little)
    return static_cast<uint64_t>(std::countr_zero(Diff)) >> 3;
  for (uint64_t B = 0; B < 8; ++B)
    if (Window[B] != Expected)
      return B;
  return 0; // unreachable: Diff != 0
}

} // namespace

uint64_t scanMismatchSwar(const uint8_t *Tags, uint64_t Count,
                          TagValue Expected) {
  const uint64_t Pattern = 0x0101010101010101ULL * Expected;
  uint64_t I = 0;
  // Unaligned 8-byte loads are fine on every target we build for; memcpy
  // keeps it strict-aliasing clean and compiles to a single mov.
  for (; I + 8 <= Count; I += 8) {
    uint64_t Word;
    std::memcpy(&Word, Tags + I, 8);
    uint64_t Diff = Word ^ Pattern;
    if (M4J_UNLIKELY(Diff != 0))
      return I + firstDiffByte(Diff, Tags + I, Expected);
  }
  for (; I < Count; ++I)
    if (M4J_UNLIKELY(Tags[I] != Expected))
      return I;
  return UINT64_MAX;
}

#if defined(__SSE2__) && !defined(M4J_DISABLE_SIMD_SCAN)
namespace {

uint64_t scanMismatchSse2(const uint8_t *Tags, uint64_t Count,
                          TagValue Expected) {
  const __m128i Pattern = _mm_set1_epi8(static_cast<char>(Expected));
  uint64_t I = 0;
  for (; I + 16 <= Count; I += 16) {
    __m128i V =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Tags + I));
    unsigned Eq = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(V, Pattern)));
    if (M4J_UNLIKELY(Eq != 0xFFFFu))
      return I + static_cast<uint64_t>(std::countr_zero(~Eq & 0xFFFFu));
  }
  if (I < Count) {
    uint64_t Tail = scanMismatchSwar(Tags + I, Count - I, Expected);
    if (Tail != UINT64_MAX)
      return I + Tail;
  }
  return UINT64_MAX;
}

} // namespace
#endif // __SSE2__

#if M4J_HAVE_AVX2
// Defined in TagScanAvx2.cpp, compiled with -mavx2; only called after a
// runtime CPU check.
uint64_t scanMismatchAvx2(const uint8_t *Tags, uint64_t Count,
                          TagValue Expected);
#endif

uint64_t scanMismatch(const uint8_t *Tags, uint64_t Count, TagValue Expected) {
#if M4J_HAVE_AVX2
  static const bool HasAvx2 = __builtin_cpu_supports("avx2");
  if (HasAvx2 && Count >= 32)
    return scanMismatchAvx2(Tags, Count, Expected);
#endif
#if defined(__SSE2__) && !defined(M4J_DISABLE_SIMD_SCAN)
  if (Count >= 16)
    return scanMismatchSse2(Tags, Count, Expected);
#endif
  return scanMismatchSwar(Tags, Count, Expected);
}

unsigned scanKernelFor(uint64_t Count) {
  // Mirrors scanMismatch's dispatch exactly.
#if M4J_HAVE_AVX2
  static const bool HasAvx2 = __builtin_cpu_supports("avx2");
  if (HasAvx2 && Count >= 32)
    return 3;
#endif
#if defined(__SSE2__) && !defined(M4J_DISABLE_SIMD_SCAN)
  if (Count >= 16)
    return 2;
#endif
  (void)Count;
  return 1;
}

} // namespace detail

TaggedRegion::TaggedRegion(uint64_t Begin, uint64_t Size)
    : Begin(Begin), End(Begin + Size),
      NumGranules(Size >> kGranuleShift),
      Tags(new uint8_t[Size >> kGranuleShift]) {
  M4J_ASSERT(support::isAligned(Begin, kGranuleSize),
             "region base must be granule-aligned");
  M4J_ASSERT(support::isAligned(Size, kGranuleSize) && Size > 0,
             "region size must be a positive granule multiple");
  std::memset(Tags.get(), 0, NumGranules);
}

uint64_t TaggedRegion::setTagRange(uint64_t From, uint64_t To, TagValue Tag) {
  From = std::max(From, Begin);
  To = std::min(To, End);
  if (From >= To)
    return 0;
  uint64_t First = granuleIndex(support::alignDown(From, kGranuleSize), Begin);
  uint64_t Last = granuleIndex(support::alignTo(To, kGranuleSize), Begin);
  std::memset(Tags.get() + First, Tag & 0xF, Last - First);
  return Last - First;
}

uint64_t TaggedRegion::findMismatch(uint64_t FirstIdx, uint64_t LastIdx,
                                    TagValue Expected) const {
  M4J_ASSERT(LastIdx < NumGranules, "granule index out of range");
  uint64_t Off = detail::scanMismatch(Tags.get() + FirstIdx,
                                      LastIdx - FirstIdx + 1, Expected);
  return Off == UINT64_MAX ? UINT64_MAX : FirstIdx + Off;
}

uint64_t TaggedRegion::countTagged(uint64_t From, uint64_t To) const {
  From = std::max(From, Begin);
  To = std::min(To, End);
  if (From >= To)
    return 0;
  uint64_t First = granuleIndex(support::alignDown(From, kGranuleSize), Begin);
  uint64_t Last = granuleIndex(support::alignTo(To, kGranuleSize), Begin);
  // Diagnostic-only: a scalar pass is fine here; the hot scans above stay
  // vectorised.
  uint64_t Count = 0;
  for (uint64_t I = First; I < Last; ++I)
    Count += Tags[I] != 0;
  return Count;
}

} // namespace mte4jni::mte

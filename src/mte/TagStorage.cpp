//===- TagStorage.cpp - Shadow storage for granule tags ------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/TagStorage.h"

#include <algorithm>
#include <cstring>

namespace mte4jni::mte {

TaggedRegion::TaggedRegion(uint64_t Begin, uint64_t Size)
    : Begin(Begin), End(Begin + Size),
      NumGranules(Size >> kGranuleShift),
      Tags(new uint8_t[Size >> kGranuleShift]) {
  M4J_ASSERT(support::isAligned(Begin, kGranuleSize),
             "region base must be granule-aligned");
  M4J_ASSERT(support::isAligned(Size, kGranuleSize) && Size > 0,
             "region size must be a positive granule multiple");
  std::memset(Tags.get(), 0, NumGranules);
}

uint64_t TaggedRegion::setTagRange(uint64_t From, uint64_t To, TagValue Tag) {
  From = std::max(From, Begin);
  To = std::min(To, End);
  if (From >= To)
    return 0;
  uint64_t First = granuleIndex(support::alignDown(From, kGranuleSize), Begin);
  uint64_t Last = granuleIndex(support::alignTo(To, kGranuleSize), Begin);
  std::memset(Tags.get() + First, Tag & 0xF, Last - First);
  return Last - First;
}

uint64_t TaggedRegion::findMismatch(uint64_t FirstIdx, uint64_t LastIdx,
                                    TagValue Expected) const {
  M4J_ASSERT(LastIdx < NumGranules, "granule index out of range");
  const uint8_t *T = Tags.get();
  for (uint64_t I = FirstIdx; I <= LastIdx; ++I)
    if (M4J_UNLIKELY(T[I] != Expected))
      return I;
  return UINT64_MAX;
}

} // namespace mte4jni::mte

//===- TagStorage.cpp - Two-level shadow storage for granule tags --------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/TagStorage.h"

#include "mte4jni/support/Metrics.h"

#include <algorithm>
#include <bit>
#include <cstring>

#if defined(__SSE2__) && !defined(M4J_DISABLE_SIMD_SCAN)
#include <emmintrin.h>
#endif

namespace mte4jni::mte {
namespace detail {

std::atomic<uint64_t> RegionPublishEpoch{1};

uint64_t scanMismatchScalar(const uint8_t *Tags, uint64_t Count,
                            TagValue Expected) {
  for (uint64_t I = 0; I < Count; ++I)
    if (M4J_UNLIKELY(Tags[I] != Expected))
      return I;
  return UINT64_MAX;
}

namespace {

/// Locates the first byte of an 8-byte window known to contain a mismatch.
/// \p Diff is Word XOR replicated-expected, nonzero.
M4J_ALWAYS_INLINE uint64_t firstDiffByte(uint64_t Diff, const uint8_t *Window,
                                         TagValue Expected) {
  if constexpr (std::endian::native == std::endian::little)
    return static_cast<uint64_t>(std::countr_zero(Diff)) >> 3;
  for (uint64_t B = 0; B < 8; ++B)
    if (Window[B] != Expected)
      return B;
  return 0; // unreachable: Diff != 0
}

} // namespace

uint64_t scanMismatchSwar(const uint8_t *Tags, uint64_t Count,
                          TagValue Expected) {
  const uint64_t Pattern = 0x0101010101010101ULL * Expected;
  uint64_t I = 0;
  // Unaligned 8-byte loads are fine on every target we build for; memcpy
  // keeps it strict-aliasing clean and compiles to a single mov.
  for (; I + 8 <= Count; I += 8) {
    uint64_t Word;
    std::memcpy(&Word, Tags + I, 8);
    uint64_t Diff = Word ^ Pattern;
    if (M4J_UNLIKELY(Diff != 0))
      return I + firstDiffByte(Diff, Tags + I, Expected);
  }
  for (; I < Count; ++I)
    if (M4J_UNLIKELY(Tags[I] != Expected))
      return I;
  return UINT64_MAX;
}

#if defined(__SSE2__) && !defined(M4J_DISABLE_SIMD_SCAN)
namespace {

uint64_t scanMismatchSse2(const uint8_t *Tags, uint64_t Count,
                          TagValue Expected) {
  const __m128i Pattern = _mm_set1_epi8(static_cast<char>(Expected));
  uint64_t I = 0;
  for (; I + 16 <= Count; I += 16) {
    __m128i V =
        _mm_loadu_si128(reinterpret_cast<const __m128i *>(Tags + I));
    unsigned Eq = static_cast<unsigned>(
        _mm_movemask_epi8(_mm_cmpeq_epi8(V, Pattern)));
    if (M4J_UNLIKELY(Eq != 0xFFFFu))
      return I + static_cast<uint64_t>(std::countr_zero(~Eq & 0xFFFFu));
  }
  if (I < Count) {
    uint64_t Tail = scanMismatchSwar(Tags + I, Count - I, Expected);
    if (Tail != UINT64_MAX)
      return I + Tail;
  }
  return UINT64_MAX;
}

} // namespace
#endif // __SSE2__

#if M4J_HAVE_AVX2
// Defined in TagScanAvx2.cpp, compiled with -mavx2; only called after a
// runtime CPU check.
uint64_t scanMismatchAvx2(const uint8_t *Tags, uint64_t Count,
                          TagValue Expected);
#endif

uint64_t scanMismatch(const uint8_t *Tags, uint64_t Count, TagValue Expected) {
#if M4J_HAVE_AVX2
  static const bool HasAvx2 = __builtin_cpu_supports("avx2");
  if (HasAvx2 && Count >= 32)
    return scanMismatchAvx2(Tags, Count, Expected);
#endif
#if defined(__SSE2__) && !defined(M4J_DISABLE_SIMD_SCAN)
  if (Count >= 16)
    return scanMismatchSse2(Tags, Count, Expected);
#endif
  return scanMismatchSwar(Tags, Count, Expected);
}

unsigned scanKernelFor(uint64_t Count) {
  // Mirrors scanMismatch's dispatch exactly.
#if M4J_HAVE_AVX2
  static const bool HasAvx2 = __builtin_cpu_supports("avx2");
  if (HasAvx2 && Count >= 32)
    return 3;
#endif
#if defined(__SSE2__) && !defined(M4J_DISABLE_SIMD_SCAN)
  if (Count >= 16)
    return 2;
#endif
  (void)Count;
  return 1;
}

unsigned checkKernelFor(uint64_t Granules) {
  if (Granules >= kLineGranules)
    return 4; // summary-assisted two-level walk
  return scanKernelFor((Granules + 1) / 2);
}

namespace {

/// Relaxed atomic byte load: edge nibbles of a scanned range live in
/// packed bytes shared with adjacent objects, whose owners may CAS their
/// sibling nibble concurrently — the load must be atomic to stay clean
/// under TSan (a plain load on x86/aarch64 either way).
M4J_ALWAYS_INLINE uint8_t loadPackedByte(const uint8_t *Packed, uint64_t G) {
  return std::atomic_ref<const uint8_t>(Packed[G >> 1])
      .load(std::memory_order_relaxed);
}

/// Shared packed-scan shape: peel the odd leading/trailing nibbles (atomic
/// loads — shared bytes), run \p ByteScan over the byte-aligned body with
/// both nibbles replicated (plain loads — every body byte is wholly inside
/// the scanned range, and a checked range never overlaps a concurrently
/// retagged granule by construction; see the exclusion argument in
/// DESIGN.md §13), and resolve which nibble of the offending byte
/// mismatched (the low nibble is the even — earlier — granule).
template <uint64_t (*ByteScan)(const uint8_t *, uint64_t, TagValue)>
M4J_ALWAYS_INLINE uint64_t scanPackedWith(const uint8_t *Packed,
                                          uint64_t FirstGranule,
                                          uint64_t Count, TagValue Expected) {
  if (Count == 0)
    return UINT64_MAX;
  uint64_t G = FirstGranule;
  const uint64_t EndG = FirstGranule + Count;
  if (G & 1) {
    if (M4J_UNLIKELY((loadPackedByte(Packed, G) >> 4) != Expected))
      return 0;
    if (++G == EndG)
      return UINT64_MAX;
  }
  const TagValue Pattern =
      static_cast<TagValue>((Expected << 4) | (Expected & 0xF));
  uint64_t Bytes = (EndG - G) >> 1;
  if (Bytes != 0) {
    uint64_t Bad = ByteScan(Packed + (G >> 1), Bytes, Pattern);
    if (M4J_UNLIKELY(Bad != UINT64_MAX)) {
      uint64_t BadG = G + 2 * Bad;
      uint8_t Byte = Packed[(G >> 1) + Bad];
      if ((Byte & 0xF) != (Expected & 0xF))
        return BadG - FirstGranule;
      return BadG + 1 - FirstGranule;
    }
    G += 2 * Bytes;
  }
  if (G < EndG &&
      M4J_UNLIKELY((loadPackedByte(Packed, G) & 0xF) != (Expected & 0xF)))
    return G - FirstGranule;
  return UINT64_MAX;
}

} // namespace

uint64_t scanMismatchPackedScalar(const uint8_t *Packed, uint64_t FirstGranule,
                                  uint64_t Count, TagValue Expected) {
  for (uint64_t I = 0; I < Count; ++I) {
    uint64_t G = FirstGranule + I;
    uint8_t Byte = std::atomic_ref<const uint8_t>(Packed[G >> 1])
                       .load(std::memory_order_relaxed);
    TagValue Tag = (G & 1) ? static_cast<TagValue>(Byte >> 4)
                           : static_cast<TagValue>(Byte & 0xF);
    if (M4J_UNLIKELY(Tag != Expected))
      return I;
  }
  return UINT64_MAX;
}

uint64_t scanMismatchPackedSwar(const uint8_t *Packed, uint64_t FirstGranule,
                                uint64_t Count, TagValue Expected) {
  return scanPackedWith<scanMismatchSwar>(Packed, FirstGranule, Count,
                                          Expected);
}

uint64_t scanMismatchPacked(const uint8_t *Packed, uint64_t FirstGranule,
                            uint64_t Count, TagValue Expected) {
  return scanPackedWith<scanMismatch>(Packed, FirstGranule, Count, Expected);
}

namespace {

/// Two-level walk instrumentation; all cheap sharded adds (the per-line
/// bookkeeping is batched per findMismatch call, not per line).
struct TagStoreMetrics {
  support::Counter &UniformHit =
      support::Metrics::counter("mte/tagstore/uniform_hit");
  support::Counter &MixedFallback =
      support::Metrics::counter("mte/tagstore/mixed_fallback");
  support::Counter &LineDemote =
      support::Metrics::counter("mte/tagstore/line_demote");
  support::Counter &LinePromote =
      support::Metrics::counter("mte/tagstore/line_promote");
};

TagStoreMetrics &tagStoreMetrics() {
  static TagStoreMetrics M;
  return M;
}

} // namespace
} // namespace detail

TaggedRegion::TaggedRegion(uint64_t Begin, uint64_t Size)
    : Begin(Begin), End(Begin + Size),
      NumGranules(Size >> kGranuleShift),
      NumLines(((Size >> kGranuleShift) + kLineGranules - 1) >> kLineShift),
      PackedBytes(((Size >> kGranuleShift) + 1) / 2),
      Packed(new uint8_t[((Size >> kGranuleShift) + 1) / 2]),
      Summary(new uint8_t[(((Size >> kGranuleShift) + kLineGranules - 1) >>
                           kLineShift)]) {
  M4J_ASSERT(support::isAligned(Begin, kGranuleSize),
             "region base must be granule-aligned");
  M4J_ASSERT(support::isAligned(Size, kGranuleSize) && Size > 0,
             "region size must be a positive granule multiple");
  std::memset(Packed.get(), 0, PackedBytes);
  std::memset(Summary.get(), 0, NumLines); // every line starts Uniform(0)
}

void TaggedRegion::storeNibble(uint64_t G, TagValue Tag) {
  std::atomic_ref<uint8_t> Byte(Packed[G >> 1]);
  uint8_t Cur = Byte.load(std::memory_order_relaxed);
  const uint8_t Mask = (G & 1) ? uint8_t(0x0F) : uint8_t(0xF0);
  const uint8_t Nibble =
      (G & 1) ? static_cast<uint8_t>((Tag & 0xF) << 4)
              : static_cast<uint8_t>(Tag & 0xF);
  // CAS loop: the sibling granule's nibble may be written concurrently by
  // another thread (adjacent objects share a packed byte); a plain RMW
  // store would lose one of the two tags.
  while (!Byte.compare_exchange_weak(
      Cur, static_cast<uint8_t>((Cur & Mask) | Nibble),
      std::memory_order_relaxed, std::memory_order_relaxed))
    ;
}

void TaggedRegion::setTagAt(uint64_t Addr, TagValue Tag) {
  uint64_t G = granuleIndex(Addr, Begin);
  storeNibble(G, Tag);
  // Demote AFTER the nibble write, as an acq_rel RMW: a later promotion
  // CAS that reads this (or any subsequent RMW in the summary byte's
  // modification order) synchronizes with it and therefore observes the
  // nibble just written when it re-validates — no stale promotion can
  // stick. (Skipping the demote when the summary already equals Tag is
  // NOT safe: a racing whole-line fill with another tag could publish
  // Uniform over this granule's different nibble.)
  std::atomic_ref<uint8_t>(Summary[G >> kLineShift])
      .exchange(kSummaryMixed, std::memory_order_acq_rel);
  detail::tagStoreMetrics().LineDemote.add();
}

uint64_t TaggedRegion::setTagRange(uint64_t From, uint64_t To, TagValue Tag) {
  From = std::max(From, Begin);
  To = std::min(To, End);
  if (From >= To)
    return 0;
  uint64_t First = granuleIndex(support::alignDown(From, kGranuleSize), Begin);
  uint64_t Last = granuleIndex(support::alignTo(To, kGranuleSize), Begin);
  const uint64_t Written = Last - First;

  // Level 0 — packed nibbles. Boundary bytes whose sibling nibble lies
  // outside the range belong half to someone else (adjacent objects), so
  // they go through the CAS path; interior bytes are wholly ours and take
  // the bulk memset.
  uint64_t G = First;
  if (G & 1) {
    storeNibble(G, Tag);
    ++G;
  }
  uint64_t BodyEnd = Last;
  if (BodyEnd & 1)
    --BodyEnd; // trailing even granule shares its byte's high nibble
  if (G < BodyEnd) {
    const uint8_t Pattern =
        static_cast<uint8_t>(((Tag & 0xF) << 4) | (Tag & 0xF));
    std::memset(Packed.get() + (G >> 1), Pattern, (BodyEnd - G) >> 1);
  }
  if (BodyEnd < Last && BodyEnd >= First)
    storeNibble(BodyEnd, Tag);

  // Level 1 — summaries. Wholly-covered lines publish Uniform(Tag) with a
  // release store (ordered after the nibble fill above); partially-covered
  // edge lines demote to Mixed via an acq_rel RMW so later promotions
  // re-validate against our nibbles (see setTagAt). A full line inside the
  // range is wholly owned by the caller's buffer, which is what makes the
  // plain-store publish race-free under the granule-ownership model
  // (DESIGN.md §13).
  uint64_t FirstLine = First >> kLineShift;
  uint64_t LastLine = (Last - 1) >> kLineShift;
  uint64_t Demoted = 0;
  for (uint64_t Line = FirstLine; Line <= LastLine; ++Line) {
    uint64_t LineFirst = Line << kLineShift;
    bool Full = First <= LineFirst && Last >= LineFirst + lineGranules(Line);
    if (Full) {
      std::atomic_ref<uint8_t>(Summary[Line])
          .store(Tag & 0xF, std::memory_order_release);
    } else {
      std::atomic_ref<uint8_t>(Summary[Line])
          .exchange(kSummaryMixed, std::memory_order_acq_rel);
      ++Demoted;
    }
  }
  if (Demoted != 0)
    detail::tagStoreMetrics().LineDemote.add(Demoted);
  return Written;
}

void TaggedRegion::promoteLineIfUniform(uint64_t Line, TagValue Tag) const {
  // Summaries are a cache over the authoritative packed level; promotion
  // from a (logically const) scan is the "lazy re-promote" half of the
  // demote-on-write protocol.
  auto &Cell = const_cast<uint8_t &>(Summary[Line]);
  uint8_t Cur = kSummaryMixed;
  if (!std::atomic_ref<uint8_t>(Cell).compare_exchange_strong(
          Cur, Tag & 0xF, std::memory_order_acq_rel,
          std::memory_order_relaxed))
    return; // no longer Mixed: someone else promoted or published
  // Validate under the acquire above: every demote is an RMW, so this CAS
  // synchronizes with the whole RMW suffix of the summary byte's history
  // back to the last full-line publish — any nibble written before a
  // demote we might be racing is visible to this re-scan. A writer whose
  // demote lands after our CAS wins the summary byte and leaves it Mixed.
  uint64_t Bad = detail::scanMismatchPacked(Packed.get(), Line << kLineShift,
                                            lineGranules(Line), Tag);
  if (M4J_UNLIKELY(Bad != UINT64_MAX)) {
    std::atomic_ref<uint8_t>(Cell).exchange(kSummaryMixed,
                                            std::memory_order_acq_rel);
    return;
  }
  detail::tagStoreMetrics().LinePromote.add();
}

uint64_t TaggedRegion::findMismatch(uint64_t FirstIdx, uint64_t LastIdx,
                                    TagValue Expected) const {
  M4J_ASSERT(LastIdx < NumGranules, "granule index out of range");
  detail::TagStoreMetrics &TM = detail::tagStoreMetrics();
  uint64_t UniformHits = 0;
  uint64_t MixedScans = 0;
  uint64_t Result = UINT64_MAX;

  uint64_t G = FirstIdx;
  while (G <= LastIdx) {
    uint64_t Line = G >> kLineShift;
    uint64_t LineFirst = Line << kLineShift;
    // Contiguous run of lines wholly inside [FirstIdx, LastIdx]: sweep
    // their summary bytes with the byte kernels — one compare per 64
    // granules, 2048 granules per AVX2 iteration.
    if (G == LineFirst && LastIdx >= LineFirst + lineGranules(Line) - 1) {
      // A short tail line (region size not a line multiple) has FullLines
      // land at 0 here; the per-line path below covers it.
      uint64_t FullLines = ((LastIdx + 1) >> kLineShift) - Line;
      if (FullLines > 0) {
        uint64_t BadLine =
            detail::scanMismatch(Summary.get() + Line, FullLines, Expected);
        if (BadLine == UINT64_MAX) {
          UniformHits += FullLines;
          G = (Line + FullLines) << kLineShift;
          continue; // tail partial line (if any) handled per-line below
        }
        UniformHits += BadLine;
        Line += BadLine;
        G = Line << kLineShift;
        // Fall through into the per-line path for the offending line.
      }
    }
    // The summary sweep above may have advanced Line past the line G
    // started in; recompute LineFirst from the (possibly advanced) Line
    // BEFORE deriving LineLast, or a Mixed line reached by fall-through
    // gets a LineLast below G and the packed-scan count underflows.
    LineFirst = Line << kLineShift;
    uint64_t LineLast = std::min(LastIdx, LineFirst + lineGranules(Line) - 1);
    uint8_t S = std::atomic_ref<const uint8_t>(Summary[Line])
                    .load(std::memory_order_relaxed);
    if (S == Expected) {
      ++UniformHits;
      G = LineLast + 1;
      continue;
    }
    if (S != kSummaryMixed) {
      // Uniform under a different tag: the first granule of the scanned
      // portion mismatches.
      Result = G;
      break;
    }
    ++MixedScans;
    uint64_t Off =
        detail::scanMismatchPacked(Packed.get(), G, LineLast - G + 1, Expected);
    if (Off != UINT64_MAX) {
      Result = G + Off;
      break;
    }
    if (G == LineFirst && LineLast == LineFirst + lineGranules(Line) - 1)
      promoteLineIfUniform(Line, Expected);
    G = LineLast + 1;
  }

  if (UniformHits != 0)
    TM.UniformHit.add(UniformHits);
  if (MixedScans != 0)
    TM.MixedFallback.add(MixedScans);
  return Result;
}

uint64_t TaggedRegion::countTagged(uint64_t From, uint64_t To) const {
  From = std::max(From, Begin);
  To = std::min(To, End);
  if (From >= To)
    return 0;
  uint64_t First = granuleIndex(support::alignDown(From, kGranuleSize), Begin);
  uint64_t Last = granuleIndex(support::alignTo(To, kGranuleSize), Begin);
  // Diagnostic-only: per-line summary shortcuts (a uniform line is 0 or
  // all-counted), scalar nibble walk for mixed lines.
  uint64_t Count = 0;
  uint64_t G = First;
  while (G < Last) {
    uint64_t Line = G >> kLineShift;
    uint64_t LineEnd = std::min(Last, (Line << kLineShift) + lineGranules(Line));
    uint8_t S = std::atomic_ref<const uint8_t>(Summary[Line])
                    .load(std::memory_order_relaxed);
    if (S < kNumTags) {
      if (S != 0)
        Count += LineEnd - G;
      G = LineEnd;
      continue;
    }
    for (; G < LineEnd; ++G) {
      uint8_t Byte = std::atomic_ref<const uint8_t>(Packed[G >> 1])
                         .load(std::memory_order_relaxed);
      TagValue Tag = (G & 1) ? static_cast<TagValue>(Byte >> 4)
                             : static_cast<TagValue>(Byte & 0xF);
      Count += Tag != 0;
    }
  }
  return Count;
}

} // namespace mte4jni::mte

//===- Fault.cpp - Tag-check fault records and the fault log --------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/Fault.h"

#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/StringUtils.h"
#include "mte4jni/support/TraceRing.h"

#include <mutex>

namespace mte4jni::mte {

namespace {

/// Flattens a FaultRecord into the telemetry ring's layering-neutral shape.
support::FaultEvent toFaultEvent(const FaultRecord &Record) {
  support::FaultEvent Event;
  Event.Kind = faultKindName(Record.Kind);
  Event.HasAddress = Record.HasAddress;
  Event.Address = Record.Address;
  Event.PointerTag = Record.PointerTag;
  Event.MemoryTag = Record.MemoryTag;
  Event.IsWrite = Record.IsWrite;
  Event.AccessSize = Record.AccessSize;
  Event.ThreadId = Record.ThreadId;
  std::string Trace;
  for (const support::FrameInfo &Frame : Record.Backtrace) {
    if (!Trace.empty())
      Trace += " <- ";
    Trace += Frame.Function;
  }
  Event.Backtrace = std::move(Trace);
  return Event;
}

} // namespace

const char *faultKindName(FaultKind Kind) {
  switch (Kind) {
  case FaultKind::TagMismatchSync:
    return "SEGV_MTESERR (sync tag-check fault)";
  case FaultKind::TagMismatchAsync:
    return "SEGV_MTEAERR (async tag-check fault)";
  case FaultKind::GuardedCopyCorruption:
    return "guarded-copy red-zone corruption";
  case FaultKind::JniCheckError:
    return "JNI check error";
  }
  return "?";
}

std::string FaultRecord::str() const {
  std::string Out;
  Out += support::format("signal: %s\n", faultKindName(Kind));
  if (HasAddress)
    Out += support::format("fault addr: 0x%016llx (ptr tag %u, mem tag %u, "
                           "%s of %u bytes)\n",
                           static_cast<unsigned long long>(Address),
                           unsigned(PointerTag), unsigned(MemoryTag),
                           IsWrite ? "write" : "read", AccessSize);
  else
    Out += "fault addr: --------  (not available for async reports)\n";
  if (!DeliveredAtSyscall.empty())
    Out += support::format("delivered at syscall: %s\n",
                           DeliveredAtSyscall.c_str());
  if (!Description.empty())
    Out += Description + "\n";
  Out += support::format("%zu total frames\n", Backtrace.size());
  Out += support::renderBacktrace(Backtrace);
  return Out;
}

void FaultLog::append(FaultRecord Record) {
  // Every detected violation — sync, async-delivered, guarded-copy, JNI
  // check — flows through here, so this is where the process-wide fault
  // telemetry ring is fed.
  support::Metrics::faultRing().record(toFaultEvent(Record));
  // Faults are rare: stamp them into the faulting thread's flight ring as
  // instant events so a trace export shows each fault in-lane next to the
  // JNI/tag-table activity that led up to it.
  if (support::obs::coldArmed()) {
    uint64_t Now = support::monotonicNanos();
    support::FlightRecorder::record(
        support::FlightKind::Fault,
        Record.Kind == FaultKind::TagMismatchAsync ? 1 : 0,
        Record.HasAddress ? static_cast<uint32_t>(Record.Address) : 0, Now, 0);
  }
  std::lock_guard<support::SpinLock> Guard(Lock);
  ++Total;
  ++Counts[static_cast<size_t>(Record.Kind)];
  if (Records.size() < kMaxStored)
    Records.push_back(std::move(Record));
}

std::vector<FaultRecord> FaultLog::snapshot() const {
  std::lock_guard<support::SpinLock> Guard(Lock);
  return Records;
}

void FaultLog::clear() {
  std::lock_guard<support::SpinLock> Guard(Lock);
  Records.clear();
  Total = 0;
  for (uint64_t &Count : Counts)
    Count = 0;
}

uint64_t FaultLog::totalCount() const {
  std::lock_guard<support::SpinLock> Guard(Lock);
  return Total;
}

uint64_t FaultLog::countOf(FaultKind Kind) const {
  std::lock_guard<support::SpinLock> Guard(Lock);
  return Counts[static_cast<size_t>(Kind)];
}

} // namespace mte4jni::mte

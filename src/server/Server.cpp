//===- Server.cpp - Tenant-scale JNI request server harness -------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/server/Server.h"

#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/rt/Trampoline.h"
#include "mte4jni/support/MathExtras.h"
#include "mte4jni/support/Rng.h"
#include "mte4jni/support/StringUtils.h"
#include "mte4jni/support/Timer.h"
#include "mte4jni/workloads/Workload.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

namespace mte4jni::server {

namespace {

/// Global (cross-tenant) server metrics. Tenant namespaces mirror the
/// first three; `late` and `jni_crossings` only aggregate globally.
struct ServerMetrics {
  support::Counter &Requests = support::Metrics::counter("server/requests");
  support::Counter &Faults = support::Metrics::counter("server/faults");
  support::Counter &Late = support::Metrics::counter("server/late");
  support::Counter &JniCrossings =
      support::Metrics::counter("server/jni_crossings");
  support::Histogram &RequestNanos =
      support::Metrics::histogram("server/request_nanos");
};

ServerMetrics &serverMetrics() {
  static ServerMetrics M;
  return M;
}

/// Faults delivered on this thread during the current run. The run-scoped
/// fault hook bumps it; each worker drains its own count into its tenant's
/// namespace. Faults are reported on the faulting thread (sync at the
/// access, async at the next simulated syscall), and a worker serves
/// exactly one tenant, so the attribution is exact.
thread_local uint64_t TlFaultsDelivered = 0;

mte::FaultAction countingFaultHook(void *, const mte::FaultRecord &) {
  ++TlFaultsDelivered;
  return mte::FaultAction::Continue;
}

/// Weighted request-kind picker (thresholds over one uniform draw).
struct MixPicker {
  explicit MixPicker(const RequestMix &Mix) : Total(Mix.total()) {
    Upper[0] = Mix.ArrayPin;
    Upper[1] = Upper[0] + Mix.StringCritical;
    Upper[2] = Upper[1] + Mix.RegionCopy;
    Upper[3] = Upper[2] + Mix.HtmlParse;
    Upper[4] = Upper[3] + Mix.Rogue;
  }

  RequestKind pick(support::Xoshiro256 &Rng) const {
    uint64_t Draw = Rng.nextBelow(Total);
    for (unsigned I = 0; I < 5; ++I)
      if (Draw < Upper[I])
        return static_cast<RequestKind>(I);
    return RequestKind::ArrayPin;
  }

  uint64_t Total;
  uint64_t Upper[5] = {};
};

/// Everything a worker thread owns for its tenant: fixtures are
/// per-worker (no cross-thread payload races) but live in the tenant's
/// metric namespace.
struct Worker {
  unsigned Index = 0;
  unsigned Tenant = 0;
  uint64_t Seed = 1;
  /// Open-loop interarrival mean in nanoseconds; 0 = closed loop.
  double MeanInterarrivalNanos = 0;
};

/// Sleeps until \p DueNanos (relative to \p Epoch). Coarse sleeps for the
/// bulk of the wait; short remainders are burned with yields, which on an
/// oversubscribed host donates the slice to another worker instead of
/// spinning hot.
void waitUntil(uint64_t Epoch, uint64_t DueNanos) {
  for (;;) {
    uint64_t Now = support::monotonicNanos() - Epoch;
    if (Now >= DueNanos)
      return;
    uint64_t Remaining = DueNanos - Now;
    if (Remaining > 1'000'000)
      std::this_thread::sleep_for(
          std::chrono::nanoseconds(Remaining - 500'000));
    else
      std::this_thread::yield();
  }
}

class WorkerLoop {
public:
  WorkerLoop(api::Session &S, const ServerConfig &Config,
             const Worker &Plan, std::atomic<bool> &Go,
             std::atomic<bool> &Quit)
      : S(S), Config(Config), Plan(Plan), Go(Go), Quit(Quit) {}

  void run() {
    api::ScopedAttach Me(
        S, support::format("tenant%u-w%u", Plan.Tenant, Plan.Index));
    rt::HandleScope Scope(S.runtime());
    support::Xoshiro256 Rng(Plan.Seed);

    // ---- fixtures (allocation is not what the stream measures) ----------
    TenantMetrics TM = TenantMetrics::of(Plan.Tenant);
    ServerMetrics &GM = serverMetrics();
    MixPicker Picker(Config.Mix);

    jni::jarray IntArray =
        Me.env().NewIntArray(Scope, static_cast<jni::jsize>(Config.ArrayInts));
    // The rogue probe sits between two pad arrays so a bounded OOB read
    // stays inside mapped heap under every scheme.
    (void)Me.env().NewIntArray(Scope, 256);
    jni::jarray Probe = Me.env().NewIntArray(Scope, 18);
    (void)Me.env().NewIntArray(Scope, 256);
    const int64_t ProbeExtent = static_cast<int64_t>(
        support::alignTo(Probe->dataBytes(), mte::kGranuleSize));
    jni::jstring Str = Me.env().NewStringUTF(
        Scope, "tenant request string payload: forty-four ch");

    std::unique_ptr<workloads::Workload> Html =
        workloads::makeWorkload("HTML5 DOM Strings");
    workloads::WorkloadContext Ctx{S, Me.env(), Me.thread(), Scope,
                                   Plan.Seed};
    Html->prepare(Ctx);

    uint64_t FaultsDrained = TlFaultsDelivered;
    // Publishes TlFaultsDelivered growth into the tenant + global
    // counters. Called at the syscall cadence (not per request) so live
    // stream snapshots see faults while the run is still going.
    auto DrainFaults = [&] {
      uint64_t Now = TlFaultsDelivered;
      if (Now != FaultsDrained) {
        TM.Faults->add(Now - FaultsDrained);
        GM.Faults.add(Now - FaultsDrained);
        FaultsDrained = Now;
      }
    };

    // ---- start barrier --------------------------------------------------
    while (!Go.load(std::memory_order_acquire))
      std::this_thread::yield();
    const uint64_t Epoch = support::monotonicNanos();

    // ---- request loop ---------------------------------------------------
    uint64_t Served = 0;
    uint64_t NextDueNanos = 0; // scheduled arrival, ns since Epoch
    uint64_t Sink = 0;
    while (!Quit.load(std::memory_order_acquire)) {
      uint64_t ScheduledNanos;
      if (Plan.MeanInterarrivalNanos > 0) {
        // Open loop: Poisson arrivals at the worker's share of the target
        // rate. Latency is charged from the SCHEDULED arrival, so queueing
        // behind a GC pause (or behind this worker's own slow request)
        // inflates the recorded tail instead of being silently omitted.
        ScheduledNanos = NextDueNanos;
        double U = Rng.nextDouble();
        if (U < 1e-12)
          U = 1e-12;
        NextDueNanos += static_cast<uint64_t>(
            -Plan.MeanInterarrivalNanos * std::log(U));
        uint64_t Now = support::monotonicNanos() - Epoch;
        if (Now < ScheduledNanos)
          waitUntil(Epoch, ScheduledNanos);
        else if (Now > ScheduledNanos +
                           static_cast<uint64_t>(Plan.MeanInterarrivalNanos))
          GM.Late.add();
      } else {
        // Closed loop: back-to-back; latency == service time.
        ScheduledNanos = support::monotonicNanos() - Epoch;
      }

      RequestKind Kind = Picker.pick(Rng);
      Sink += serveOne(Kind, Me, IntArray, Probe, ProbeExtent, Str, *Html,
                       Ctx, Rng);

      uint64_t EndNanos = support::monotonicNanos() - Epoch;
      uint64_t Latency = EndNanos - ScheduledNanos;
      TM.RequestNanos->record(Latency);
      GM.RequestNanos.record(Latency);
      TM.Requests->add();
      GM.Requests.add();
      GM.JniCrossings.add();

      if (++Served % Config.SyscallEveryNRequests == 0) {
        mte::simulatedSyscall("epoll_wait"); // surfaces latched async faults
        DrainFaults();
      }
    }
    // Final syscall barrier so async faults latched by the tail of the
    // stream are delivered (and counted) before the worker reports.
    mte::simulatedSyscall("epoll_wait");
    DrainFaults();
    asm volatile("" : : "r"(Sink));
  }

private:
  uint64_t serveOne(RequestKind Kind, api::ScopedAttach &Me,
                    jni::jarray IntArray, jni::jarray Probe,
                    int64_t ProbeExtent, jni::jstring Str,
                    workloads::Workload &Html,
                    workloads::WorkloadContext &Ctx,
                    support::Xoshiro256 &Rng) {
    switch (Kind) {
    case RequestKind::ArrayPin:
      return rt::callNative(
          Me.thread(), rt::NativeKind::Regular, "srv_array_pin", [&] {
            jni::jboolean IsCopy;
            auto P = Me.env().GetIntArrayElements(IntArray, &IsCopy);
            uint64_t Acc = 0;
            // Bulk checked read of the whole array (boundary-traffic
            // style: one granule check per 16 bytes).
            Scratch.resize(IntArray->Length);
            mte::readBytes(Scratch.data(), P.cast<const void>(),
                           uint64_t(IntArray->Length) * sizeof(jni::jint));
            Acc += static_cast<uint32_t>(Scratch[0]) +
                   static_cast<uint32_t>(Scratch[Scratch.size() - 1]);
            Me.env().ReleaseIntArrayElements(IntArray, P, jni::JNI_ABORT);
            return Acc;
          });
    case RequestKind::StringCritical:
      return rt::callNative(
          Me.thread(), rt::NativeKind::CriticalNative, "srv_string_crit",
          [&] {
            jni::jboolean IsCopy;
            jni::jsize Len = Me.env().GetStringLength(Str);
            auto P = Me.env().GetStringCritical(Str, &IsCopy);
            uint64_t Acc = 0;
            // Per-char checked scan (JNI-intensive style). The strided
            // checkpoint lets a requested GC pause run mid-scan instead
            // of waiting out the whole critical section: the string stays
            // pinned, so P is stable across the poll.
            for (jni::jsize I = 0; I < Len; ++I) {
              if ((I & 63) == 0)
                S.runtime().safepointPoll();
              Acc += mte::load<const jni::jchar>(P + I);
            }
            Me.env().ReleaseStringCritical(Str, P);
            return Acc;
          });
    case RequestKind::RegionCopy:
      return rt::callNative(
          Me.thread(), rt::NativeKind::Regular, "srv_region_copy", [&] {
            jni::jint Buf[256];
            jni::jsize Window = std::min<jni::jsize>(256, IntArray->Length);
            jni::jsize Start = static_cast<jni::jsize>(
                Rng.nextBelow(uint64_t(IntArray->Length - Window) + 1));
            Me.env().GetIntArrayRegion(IntArray, Start, Window, Buf);
            Me.env().SetIntArrayRegion(IntArray, Start, Window, Buf);
            // Per-request temporary objects: local-frame garbage keeps the
            // GC honest under load, so pauses show up in the tails like a
            // real allocating server.
            Me.env().PushLocalFrame(4);
            (void)Me.env().NewIntArrayLocal(128);
            Me.env().PopLocalFrame(nullptr);
            return static_cast<uint64_t>(static_cast<uint32_t>(Buf[0]));
          });
    case RequestKind::HtmlParse:
      return Html.run(Ctx);
    case RequestKind::Rogue:
      return rt::callNative(
          Me.thread(), rt::NativeKind::Regular, "srv_rogue_read", [&] {
            // A buggy native library: read past the probe array's granule
            // extent. Reads are what guarded copy structurally cannot
            // catch (§2.3) and MTE catches outright; under NoProtection
            // the read lands in the (mapped) pad allocation.
            jni::jboolean IsCopy;
            auto P = Me.env()
                         .GetPrimitiveArrayCritical(Probe, &IsCopy)
                         .cast<const jni::jbyte>();
            int64_t Offset =
                ProbeExtent +
                static_cast<int64_t>(Rng.nextBelow(
                    std::max<uint64_t>(1, Config.RogueMaxOffsetBytes)));
            volatile jni::jbyte V =
                mte::load<const jni::jbyte>(P + Offset);
            (void)V;
            Me.env().ReleasePrimitiveArrayCritical(
                Probe, P.cast<void>(), jni::JNI_ABORT);
            return uint64_t(1);
          });
    case RequestKind::kNumKinds:
      break;
    }
    return 0;
  }

  api::Session &S;
  const ServerConfig &Config;
  Worker Plan;
  std::atomic<bool> &Go;
  std::atomic<bool> &Quit;
  std::vector<jni::jint> Scratch;
};

TenantSummary summariseTenant(const support::MetricsSnapshot &Snap,
                              unsigned Tenant) {
  TenantSummary Out;
  Out.Tenant = Tenant;
  std::string Base = support::format("server/tenant%u/", Tenant);
  Out.Requests = Snap.counterValue(Base + "requests");
  Out.Faults = Snap.counterValue(Base + "faults");
  if (const support::HistogramSample *H =
          Snap.histogram(Base + "request_nanos")) {
    Out.MeanNanos = H->mean();
    Out.P50Nanos = H->percentileUpperBound(50);
    Out.P99Nanos = H->percentileUpperBound(99);
    Out.P999Nanos = H->percentileUpperBound(99.9);
  }
  return Out;
}

} // namespace

const char *requestKindName(RequestKind Kind) {
  switch (Kind) {
  case RequestKind::ArrayPin:
    return "array_pin";
  case RequestKind::StringCritical:
    return "string_critical";
  case RequestKind::RegionCopy:
    return "region_copy";
  case RequestKind::HtmlParse:
    return "html_parse";
  case RequestKind::Rogue:
    return "rogue";
  case RequestKind::kNumKinds:
    break;
  }
  return "?";
}

TenantMetrics TenantMetrics::of(unsigned Tenant) {
  TenantMetrics Out;
  std::string Base = support::format("server/tenant%u/", Tenant);
  Out.Requests = &support::Metrics::counter((Base + "requests").c_str());
  Out.Faults = &support::Metrics::counter((Base + "faults").c_str());
  Out.RequestNanos =
      &support::Metrics::histogram((Base + "request_nanos").c_str());
  return Out;
}

ServerResult runServer(api::Session &S, const ServerConfig &Config) {
  ServerResult Result;
  if (Config.NumTenants == 0 || Config.NumWorkers == 0 ||
      Config.Mix.total() == 0)
    return Result;

  ServerMetrics &GM = serverMetrics();
  uint64_t RequestsBefore = GM.Requests.value();
  uint64_t FaultsBefore = GM.Faults.value();
  uint64_t CrossingsBefore = GM.JniCrossings.value();
  uint64_t LateBefore = GM.Late.value();

  // Run-scoped fault attribution hook (restored on return; nothing else
  // in the tree installs a handler).
  mte::MteSystem::instance().setFaultHandler(countingFaultHook, nullptr);

  std::unique_ptr<SnapshotStreamer> Streamer;
  if (!Config.StreamPath.empty())
    Streamer = std::make_unique<SnapshotStreamer>(SnapshotStreamer::Config{
        Config.StreamPath, Config.StreamIntervalMillis, Config.StreamLabel,
        Config.StreamAppend});

  std::atomic<bool> Go{false}, Quit{false};
  std::vector<std::thread> Threads;
  Threads.reserve(Config.NumWorkers);
  for (unsigned W = 0; W < Config.NumWorkers; ++W) {
    Worker Plan;
    Plan.Index = W;
    Plan.Tenant = W % Config.NumTenants;
    Plan.Seed = Config.Seed * 0x9e3779b97f4a7c15ULL + W + 1;
    if (Config.TargetRatePerSec > 0)
      Plan.MeanInterarrivalNanos =
          1e9 / (Config.TargetRatePerSec / Config.NumWorkers);
    Threads.emplace_back([&S, &Config, Plan, &Go, &Quit] {
      WorkerLoop Loop(S, Config, Plan, Go, Quit);
      Loop.run();
    });
  }

  support::Stopwatch Timer;
  Go.store(true, std::memory_order_release);
  std::this_thread::sleep_for(
      std::chrono::milliseconds(Config.DurationMillis));
  Quit.store(true, std::memory_order_release);
  for (std::thread &T : Threads)
    T.join();
  double Seconds = Timer.elapsedSeconds();

  if (Streamer) {
    Streamer->stop();
    Result.StreamedSnapshots = Streamer->linesWritten();
  }
  mte::MteSystem::instance().setFaultHandler(nullptr, nullptr);

  // Workers are quiescent: the snapshot is exact.
  support::MetricsSnapshot Snap = support::Metrics::snapshot();
  Result.DurationSeconds = Seconds;
  Result.Requests = GM.Requests.value() - RequestsBefore;
  Result.Faults = GM.Faults.value() - FaultsBefore;
  Result.JniCrossings = GM.JniCrossings.value() - CrossingsBefore;
  Result.LateArrivals = GM.Late.value() - LateBefore;
  Result.RequestsPerSec = Seconds > 0 ? Result.Requests / Seconds : 0;
  Result.CrossingsPerSec = Seconds > 0 ? Result.JniCrossings / Seconds : 0;
  Result.FaultsPerSec = Seconds > 0 ? Result.Faults / Seconds : 0;
  if (const support::HistogramSample *H =
          Snap.histogram("server/request_nanos")) {
    Result.MeanNanos = H->mean();
    Result.P50Nanos = H->percentileUpperBound(50);
    Result.P99Nanos = H->percentileUpperBound(99);
    Result.P999Nanos = H->percentileUpperBound(99.9);
  }
  Result.Tenants.reserve(Config.NumTenants);
  for (unsigned T = 0; T < Config.NumTenants; ++T)
    Result.Tenants.push_back(summariseTenant(Snap, T));
  return Result;
}

} // namespace mte4jni::server

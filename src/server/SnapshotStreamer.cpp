//===- SnapshotStreamer.cpp - Periodic JSONL metrics streaming ----------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/server/SnapshotStreamer.h"

#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/StringUtils.h"
#include "mte4jni/support/Timer.h"

#include <chrono>

namespace mte4jni::server {

SnapshotStreamer::SnapshotStreamer(Config Cfg) : C(std::move(Cfg)) {
  if (C.Path.empty())
    return;
  File = std::fopen(C.Path.c_str(), C.Append ? "a" : "w");
  if (File == nullptr)
    return;
  StartNanos = support::monotonicNanos();
  Worker = std::thread([this] { loop(); });
}

SnapshotStreamer::~SnapshotStreamer() { stop(); }

void SnapshotStreamer::stop() {
  if (File == nullptr || Stopped)
    return;
  Stopped = true;
  {
    std::lock_guard<std::mutex> Guard(WakeLock);
    StopRequested.store(true);
  }
  WakeCv.notify_all();
  if (Worker.joinable())
    Worker.join();
  // Final partial-interval record: the end-of-run state always lands in
  // the stream even when the run is shorter than one interval.
  writeRecord();
  std::fclose(File);
  File = nullptr;
}

void SnapshotStreamer::loop() {
  for (;;) {
    std::unique_lock<std::mutex> Guard(WakeLock);
    WakeCv.wait_for(Guard, std::chrono::milliseconds(C.IntervalMillis),
                    [this] { return StopRequested.load(); });
    if (StopRequested.load())
      return; // stop() writes the closing record
    Guard.unlock();
    writeRecord();
  }
}

void SnapshotStreamer::writeRecord() {
  uint64_t Seq = Lines.load(std::memory_order_relaxed);
  uint64_t ElapsedMs =
      (support::monotonicNanos() - StartNanos) / 1'000'000;
  std::string Line = support::format(
      "{\"seq\": %llu, \"elapsed_ms\": %llu, \"label\": \"%s\", "
      "\"metrics\": ",
      static_cast<unsigned long long>(Seq),
      static_cast<unsigned long long>(ElapsedMs),
      support::jsonEscape(C.Label).c_str());
  Line += support::Metrics::snapshot().toJsonLine();
  Line += "}\n";
  // One fwrite per record + flush: a concurrent tailer never sees a torn
  // line (stdio buffers the whole record before the flush writes it out).
  std::fwrite(Line.data(), 1, Line.size(), File);
  std::fflush(File);
  Lines.fetch_add(1, std::memory_order_relaxed);
}

} // namespace mte4jni::server

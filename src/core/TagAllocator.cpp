//===- TagAllocator.cpp - Algorithms 1 and 2 of the paper --------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/core/TagAllocator.h"

#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/support/MathExtras.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/TraceEvents.h"
#include "mte4jni/support/TraceRing.h"

#include <array>

namespace mte4jni::core {

namespace {

/// Where Algorithm 1/2 operations actually land, per scheme: the lock-free
/// CAS fast path vs the shard-mutex slow path vs the overflow (spill-map)
/// fallback.
///
/// Cost discipline: the lock-free fast paths pay exactly ONE sharded
/// relaxed add each (via the Counter references TagAllocator caches at
/// construction); everything here is touched only from paths that already
/// take a mutex or CAS-retry. The aggregate metrics the exporters show
/// ("core/tagallocator/acquires", "releases", "tags_shared") are derived
/// counters: computed at snapshot time from the per-path counters, so the
/// hot paths never bump them.
struct AllocMetrics {
  support::Counter &TagsGenerated =
      support::Metrics::counter("core/tagallocator/tags_generated");
  /// Slow-path shares only (lock-free raced-CAS resurrect + two-tier
  /// refcount > 1). Fast-path shares == acquire_fast by construction, so
  /// total tags_shared is derived as acquire_fast + tags_shared_slow.
  support::Counter &TagsSharedSlow =
      support::Metrics::counter("core/tagallocator/tags_shared_slow");
  support::Counter &TagsCleared =
      support::Metrics::counter("core/tagallocator/tags_cleared");
  support::Counter &OrphanReleases =
      support::Metrics::counter("core/tagallocator/orphan_releases");

  support::Counter &LfAcquireSlow =
      support::Metrics::counter("core/tagtable/lockfree/acquire_slow");
  support::Counter &LfReleaseSlow =
      support::Metrics::counter("core/tagtable/lockfree/release_slow");
  support::Counter &LfOverflowSpills =
      support::Metrics::counter("core/tagtable/lockfree/overflow_spills");
  /// Deferred tag-clear attribution. acquire_warm and release_deferred are
  /// *subsets* of acquire_fast / release_fast (a warm acquire still counts
  /// as fast — it is one): they attribute how many fast-path hits the
  /// lingering state manufactured out of what used to be first_holder /
  /// last_holder mutex trips.
  support::Counter &LfAcquireWarm =
      support::Metrics::counter("core/tagtable/lockfree/acquire_warm");
  support::Counter &LfReleaseDeferred =
      support::Metrics::counter("core/tagtable/lockfree/release_deferred");

  support::Counter &TwoTierAcquires =
      support::Metrics::counter("core/tagtable/twotier/acquires");
  support::Counter &TwoTierReleases =
      support::Metrics::counter("core/tagtable/twotier/releases");
  support::Counter &GlobalAcquires =
      support::Metrics::counter("core/tagtable/globallock/acquires");
  support::Counter &GlobalReleases =
      support::Metrics::counter("core/tagtable/globallock/releases");

  AllocMetrics() {
    using support::Metrics;
    Metrics::registerDerived("core/tagallocator/acquires", +[] {
      return Metrics::counter("core/tagtable/lockfree/acquire_fast")
                 .value() +
             Metrics::counter("core/tagtable/lockfree/acquire_slow")
                 .value() +
             Metrics::counter("core/tagtable/twotier/acquires").value() +
             Metrics::counter("core/tagtable/globallock/acquires").value();
    });
    Metrics::registerDerived("core/tagallocator/releases", +[] {
      return Metrics::counter("core/tagtable/lockfree/release_fast")
                 .value() +
             Metrics::counter("core/tagtable/lockfree/release_slow")
                 .value() +
             Metrics::counter("core/tagtable/twotier/releases").value() +
             Metrics::counter("core/tagtable/globallock/releases").value();
    });
    Metrics::registerDerived("core/tagallocator/tags_shared", +[] {
      return Metrics::counter("core/tagtable/lockfree/acquire_fast")
                 .value() +
             Metrics::counter("core/tagallocator/tags_shared_slow").value();
    });
  }
};

AllocMetrics &allocMetrics() {
  static AllocMetrics M;
  return M;
}

/// One counter per TagSlowReason, "core/tagtable/slow_reason/<name>".
/// These attribute every lock-free slow-path entry to a cause — the
/// instrument behind the ROADMAP's acquire_fast = 0 question: a
/// single-holder Get/Release round trip is a 0->1 acquire and a 1->0
/// release, and both transitions must serialise on the shard mutex by
/// design, so first_holder + last_holder dominate whenever objects are
/// pinned by one thread at a time.
struct SlowReasonMetrics {
  std::array<support::Counter *,
             size_t(support::TagSlowReason::kNumReasons)>
      Reasons;
  SlowReasonMetrics() {
    for (size_t I = 0; I < Reasons.size(); ++I) {
      std::string Name = std::string("core/tagtable/slow_reason/") +
                         support::tagSlowReasonName(
                             static_cast<support::TagSlowReason>(I));
      Reasons[I] = &support::Metrics::counter(Name.c_str());
    }
  }
};

SlowReasonMetrics &slowReasonMetrics() {
  static SlowReasonMetrics M;
  return M;
}

/// Counts \p Reason and stamps it into the flight slice's outcome byte
/// (offset by 1; 0 means fast). Secondary signals (shard_contended,
/// pin_cache_miss) are counted without touching the slice so the exported
/// outcome stays the primary entry reason.
void countSlowReason(support::TagSlowReason Reason,
                     support::FlightScope *Flight = nullptr) {
  slowReasonMetrics().Reasons[size_t(Reason)]->add();
  if (Flight != nullptr)
    Flight->setArg(static_cast<uint8_t>(Reason) + 1);
}

/// Why did the acquire fast path fail? Re-probes without locks; the
/// observation is racy but statistically faithful — attribution counters
/// are about distributions, not per-op exactness.
support::TagSlowReason classifyAcquireSlow(core::TagTable &Table,
                                           uint64_t Begin) {
  core::TagTable::Slot *S = Table.probeSlot(Begin);
  if (S == nullptr)
    return support::TagSlowReason::SlotCold;
  if (S->Key.load(std::memory_order_relaxed) != Begin)
    return support::TagSlowReason::SlotRecycled;
  // Matching key: the fast path saw refcount 0. A count resurrected by a
  // racing acquirer between then and this re-probe still entered the slow
  // path as a first holder.
  return support::TagSlowReason::FirstHolder;
}

/// Why did the release fast path fail? \p S is the slot the fast path
/// looked at (hint or probe), null when neither found one.
support::TagSlowReason classifyReleaseSlow(core::TagTable::Slot *S,
                                           uint64_t Begin) {
  if (S == nullptr)
    return support::TagSlowReason::SlotCold;
  if (S->Key.load(std::memory_order_relaxed) != Begin)
    return support::TagSlowReason::SlotRecycled;
  uint64_t St = S->State.load(std::memory_order_relaxed);
  uint32_t Count = core::TagTable::refCountOf(St);
  if (Count == 0)
    return support::TagSlowReason::Orphan;
  return support::TagSlowReason::LastHolder;
}

/// Effective lingering budget: the knob is one bool + one byte count, and
/// "off" is exactly "budget 0" (TagTable then never defers a release).
uint64_t residentBudgetOf(const TagAllocatorOptions &Options) {
  return Options.DeferredTagClear ? Options.MaxResidentBytes : 0;
}

/// Never-reused allocator identities for the per-thread slot memo (0 is
/// the empty-entry sentinel).
std::atomic<uint64_t> NextMemoOwnerId{1};

} // namespace

TagAllocator::TagAllocator(TagTableKind Kind, unsigned NumTables,
                           bool EraseDeadEntries)
    : TagAllocator([&] {
        TagAllocatorOptions Options;
        Options.Locks = Kind;
        Options.NumTables = NumTables;
        Options.EraseDeadEntries = EraseDeadEntries;
        return Options;
      }()) {}

TagAllocator::TagAllocator(const TagAllocatorOptions &Options)
    : Kind(Options.Locks), EraseDeadEntries(Options.EraseDeadEntries),
      ExcludeAdjacentTags(Options.ExcludeAdjacentTags),
      DeferredTagClear(Options.Locks == TagTableKind::LockFree &&
                       residentBudgetOf(Options) > 0),
      Table(Options.NumTables, Options.Locks, Options.SlotsPerShard,
            residentBudgetOf(Options)),
      MemoOwnerId(NextMemoOwnerId.fetch_add(1, std::memory_order_relaxed)),
      FastAcquireMetric(
          support::Metrics::counter("core/tagtable/lockfree/acquire_fast")),
      FastReleaseMetric(
          support::Metrics::counter("core/tagtable/lockfree/release_fast")) {
  (void)allocMetrics(); // register the derived aggregates
}

TagAllocator::~TagAllocator() {
  // Deferred-clear residue must not outlive the table that tracks it: the
  // shadow tag store is process-wide, and a later allocation at the same
  // address would inherit a valid-looking tag.
  if (DeferredTagClear)
    reclaimAll();
}

mte::TagValue TagAllocator::generateAndApplyTag(uint64_t Begin,
                                                uint64_t End) {
  // First holder: generate a random tag (IRG) and apply it to every
  // granule of [begin, end) (ST2G/STG). With the adjacent-exclusion
  // hardening, the IRG draw additionally excludes the tags currently on
  // the neighbouring granules, so a linear overflow into an adjacent
  // tagged object can never alias.
  uint16_t ExtraExclude = 0;
  if (ExcludeAdjacentTags) {
    // Two granules on each side: object payloads are separated by a
    // one-granule header, so the nearest *neighbouring payload* granule
    // is up to two granules away.
    uint64_t EndAligned = support::alignTo(End, mte::kGranuleSize);
    ExtraExclude = static_cast<uint16_t>(
        (1u << mte::ldgTag(Begin - mte::kGranuleSize)) |
        (1u << mte::ldgTag(Begin - 2 * mte::kGranuleSize)) |
        (1u << mte::ldgTag(EndAligned)) |
        (1u << mte::ldgTag(EndAligned + mte::kGranuleSize)));
  }
  mte::TagValue Tag = mte::irgTag(ExtraExclude);
  mte::setTagRange(
      mte::TaggedPtr<void>::fromRaw(reinterpret_cast<void *>(Begin), Tag),
      End - Begin);
  Stats.TagsGenerated.add();
  allocMetrics().TagsGenerated.add();
  return Tag;
}

uint64_t TagAllocator::acquire(uint64_t Begin, uint64_t End,
                               TagTable::Slot **CacheOut) {
  Begin = mte::addressOf(Begin);
  End = mte::addressOf(End);
  M4J_ASSERT(Begin <= End, "inverted range");
  support::ScopedTrace Trace("TagAllocator.acquire", "mte4jni");
  Stats.Acquires.add();
  if (CacheOut)
    *CacheOut = nullptr;

  switch (Kind) {
  case TagTableKind::LockFree: {
    // One sampling decision covers the whole operation: outcome byte 0
    // (fast) unless the slow path stamps a reason below.
    support::FlightScope Flight(support::FlightKind::TagAcquire);
    // Fast path (Algorithm 1 steps 2-4 when the entry exists and the
    // object's tags are valid — a concurrent holder, or a lingering
    // deferred release being re-acquired warm): at best one memo hit, one
    // CAS, one LDG; else one lock-free probe first. The per-thread memo
    // is only ever a hint — acquireFast revalidates key and state.
    mte::ThreadState &TS = mte::ThreadState::current();
    bool Warm = false;
    TagTable::Slot *S = static_cast<TagTable::Slot *>(
        TS.tagSlotMemoLookup(MemoOwnerId, Begin));
    if (S == nullptr || !Table.acquireFast(*S, Begin, Warm)) {
      S = Table.probeSlot(Begin);
      if (S == nullptr || !Table.acquireFast(*S, Begin, Warm)) {
        allocMetrics().LfAcquireSlow.add();
        countSlowReason(classifyAcquireSlow(Table, Begin), &Flight);
        return acquireLockFreeSlow(Begin, End, CacheOut, Flight);
      }
      TS.tagSlotMemoStore(MemoOwnerId, Begin, S);
    }
    if (CacheOut)
      *CacheOut = S;
    Stats.TagsShared.add();
    FastAcquireMetric.add();
    if (Warm)
      allocMetrics().LfAcquireWarm.add();
    // The slot-cached tag spares the fast path an LDG: the acquire CAS
    // synchronised with the first holder's publish, and tags cannot
    // change while the state word holds our reference.
    return mte::withPointerTag(Begin,
                               S->Tag.load(std::memory_order_relaxed));
  }
  case TagTableKind::GlobalLock: {
    // The naive §3.1 strawman: every JNI thread serialises here.
    allocMetrics().GlobalAcquires.add();
    std::lock_guard<std::mutex> Guard(GlobalMutex);
    return acquireTwoTier(Begin, End);
  }
  case TagTableKind::TwoTierMutex:
    break;
  }
  allocMetrics().TwoTierAcquires.add();
  return acquireTwoTier(Begin, End);
}

uint64_t TagAllocator::acquireLockFreeSlow(uint64_t Begin, uint64_t End,
                                           TagTable::Slot **CacheOut,
                                           support::FlightScope &Flight) {
  {
    bool Contended = false;
    auto Lock = Table.lockShard(Begin, &Contended);
    if (Contended)
      countSlowReason(support::TagSlowReason::ShardLockWait);
    if (TagTable::Slot *S = Table.slotLocked(Begin, /*Create=*/true, Lock)) {
      uint64_t St = S->State.load(std::memory_order_acquire);
      for (;;) {
        if (TagTable::refCountOf(St) > 0 || TagTable::residentOf(St)) {
          // Raced with another holder (or a lingering deferred release)
          // that tagged the object between our fast-path attempt and
          // taking the mutex: share its tag.
          bool Warm = false;
          if (Table.acquireFast(*S, Begin, Warm)) {
            if (CacheOut)
              *CacheOut = S;
            mte::ThreadState::current().tagSlotMemoStore(MemoOwnerId, Begin,
                                                         S);
            Stats.TagsShared.add();
            allocMetrics().TagsSharedSlow.add();
            if (Warm)
              allocMetrics().LfAcquireWarm.add();
            return mte::withPointerTag(Begin, mte::ldgTag(Begin));
          }
          St = S->State.load(std::memory_order_acquire);
          continue;
        }
        // Cold first holder. Only shard-mutex holders move a slot out of
        // {refcount=0, resident=0}, so the tag write below cannot race;
        // the release store publishes the tags (and the range length the
        // lazy reclaimer needs) before any fast path can see the resident
        // bit or count 1. The epoch bump pairs with the one in reclaim:
        // together they fence every tags-(re)writing cycle of the slot.
        mte::TagValue Tag = generateAndApplyTag(Begin, End);
        S->Bytes.store(End - Begin, std::memory_order_relaxed);
        S->Tag.store(Tag, std::memory_order_relaxed);
        // Charge the resident budget here, once, while we already hold
        // the shard mutex: the charge covers the tags' whole residency
        // (held and lingering) and is refunded only when they are
        // actually cleared, which keeps the warm fast paths free of
        // budget RMWs.
        Table.chargeResident(Begin, End - Begin);
        S->State.store(
            TagTable::packState(TagTable::epochOf(St) + 1, 1,
                                /*Resident=*/true),
            std::memory_order_release);
        if (CacheOut)
          *CacheOut = S;
        mte::ThreadState::current().tagSlotMemoStore(MemoOwnerId, Begin, S);
        return mte::withPointerTag(Begin, Tag);
      }
    }
  }
  // Probe window exhausted: this entry lives in the shard's locked
  // overflow map and uses the two-tier path.
  allocMetrics().LfOverflowSpills.add();
  countSlowReason(support::TagSlowReason::OverflowSpill, &Flight);
  return acquireTwoTier(Begin, End);
}

uint64_t TagAllocator::acquireTwoTier(uint64_t Begin, uint64_t End) {
  // Steps 1-2: shard by (begin/16) mod k; retrieve or create the
  // {referenceNum, mutexAddr} tuple under the table lock. Retry when the
  // entry died between the map lookup and taking its lock (a concurrent
  // eraseIfDead): resurrecting an erased entry would strand the refcount
  // where no release can ever find it.
  mte::TagValue Tag;
  for (;;) {
    TagTable::EntryRef Entry = Table.lookupOrCreate(Begin);

    // Step 3: under the object lock, bump the count and pick the tag.
    std::lock_guard<std::mutex> ObjGuard(Entry->Mutex);
    if (Entry->Dead)
      continue;
    ++Entry->RefCount;
    if (Entry->RefCount > 1) {
      // Another native thread already tagged this object: share its tag
      // by loading it back with LDG.
      Tag = mte::ldgTag(Begin);
      Stats.TagsShared.add();
      allocMetrics().TagsSharedSlow.add();
    } else {
      Tag = generateAndApplyTag(Begin, End);
    }
    break;
  }

  // Step 4: the tagged pointer.
  return mte::withPointerTag(Begin, Tag);
}

void TagAllocator::release(uint64_t Begin, uint64_t End,
                           TagTable::Slot *Hint) {
  Begin = mte::addressOf(Begin);
  End = mte::addressOf(End);
  support::ScopedTrace Trace("TagAllocator.release", "mte4jni");
  Stats.Releases.add();

  switch (Kind) {
  case TagTableKind::LockFree: {
    support::FlightScope Flight(support::FlightKind::TagRelease);
    // Fast path: not the last holder (plain decrement), or a single
    // holder whose tags may linger (deferred 1->0, resident bit stays) —
    // either way one CAS, no lock, no tag writes. The hint (from
    // acquire(), via the JNI pin record) skips even the probe, and the
    // per-thread memo covers un-nested re-pins that outlive their pin
    // record; both are revalidated against Begin inside releaseFast.
    TagTable::Slot *S = Hint;
    if (S == nullptr)
      S = static_cast<TagTable::Slot *>(
          mte::ThreadState::current().tagSlotMemoLookup(MemoOwnerId, Begin));
    if (S == nullptr)
      S = Table.probeSlot(Begin);
    bool Deferred = false;
    bool OverBudget = false;
    if (S && Table.releaseFast(*S, Begin, Deferred, &OverBudget)) {
      FastReleaseMetric.add();
      if (Deferred)
        allocMetrics().LfReleaseDeferred.add();
      return;
    }
    allocMetrics().LfReleaseSlow.add();
    if (Hint == nullptr)
      countSlowReason(support::TagSlowReason::PinCacheMiss);
    if (OverBudget)
      countSlowReason(support::TagSlowReason::DeferredReclaim, &Flight);
    else
      countSlowReason(classifyReleaseSlow(S, Begin), &Flight);
    releaseLockFreeSlow(Begin, End, Flight);
    return;
  }
  case TagTableKind::GlobalLock: {
    allocMetrics().GlobalReleases.add();
    std::lock_guard<std::mutex> Guard(GlobalMutex);
    releaseTwoTier(Begin, End);
    return;
  }
  case TagTableKind::TwoTierMutex:
    break;
  }
  allocMetrics().TwoTierReleases.add();
  releaseTwoTier(Begin, End);
}

void TagAllocator::releaseLockFreeSlow(uint64_t Begin, uint64_t End,
                                       support::FlightScope &Flight) {
  {
    bool Contended = false;
    auto Lock = Table.lockShard(Begin, &Contended);
    if (Contended)
      countSlowReason(support::TagSlowReason::ShardLockWait);
    if (TagTable::Slot *S =
            Table.slotLocked(Begin, /*Create=*/false, Lock)) {
      uint64_t St = S->State.load(std::memory_order_acquire);
      for (;;) {
        uint32_t Count = TagTable::refCountOf(St);
        if (Count == 0) {
          // Already released (double release); tolerated like the paper's
          // "nothing needs to be done" path.
          Stats.OrphanReleases.add();
          allocMetrics().OrphanReleases.add();
          return;
        }
        if (Count > 1) {
          // An acquirer resurrected the count between our fast-path
          // attempt and taking the mutex: plain decrement after all.
          if (S->State.compare_exchange_weak(St, St - 1,
                                             std::memory_order_acq_rel,
                                             std::memory_order_acquire))
            return;
          continue;
        }
        // Exact last holder (deferral off, over budget, or a two-tier
        // kind): move to {0, resident=0} first — a racing fast-path
        // increment makes this CAS fail — then clear the granule tags so
        // the tag becomes available again and dangling tagged pointers
        // fault immediately, the paper's Algorithm 2 step 3. The clear
        // also restores Uniform(0) summaries for wholly-covered lines in
        // the two-level store, un-fragmenting whatever the object's
        // lifetime demoted (DESIGN.md §13).
        if (S->State.compare_exchange_weak(
                St, TagTable::packState(TagTable::epochOf(St), 0),
                std::memory_order_acq_rel, std::memory_order_acquire)) {
          mte::clearTagRange(Begin, End - Begin);
          // Refund the publish-time budget charge: the tags left.
          Table.unchargeResident(Begin, End - Begin);
          Stats.TagsCleared.add();
          allocMetrics().TagsCleared.add();
          if (EraseDeadEntries)
            Table.tombstoneLocked(*S, Lock);
          return;
        }
      }
    }
  }
  // Not in the slot array: overflow entry or orphan release.
  allocMetrics().LfOverflowSpills.add();
  countSlowReason(support::TagSlowReason::OverflowSpill, &Flight);
  releaseTwoTier(Begin, End);
}

void TagAllocator::releaseTwoTier(uint64_t Begin, uint64_t End) {
  // Steps 1-2: find the entry; nothing to do when absent (release of an
  // object no Get interface tagged).
  TagTable::EntryRef Entry = Table.lookup(Begin);
  if (!Entry) {
    Stats.OrphanReleases.add();
    allocMetrics().OrphanReleases.add();
    return;
  }

  // Step 3: drop the count; the last holder clears the memory tags so the
  // tag becomes available again and dangling tagged pointers fault.
  bool ClearedToZero = false;
  {
    std::lock_guard<std::mutex> ObjGuard(Entry->Mutex);
    if (Entry->RefCount == 0) {
      // Already released (double release); tolerated like the paper's
      // "nothing needs to be done" path.
      Stats.OrphanReleases.add();
      allocMetrics().OrphanReleases.add();
      return;
    }
    --Entry->RefCount;
    if (Entry->RefCount == 0) {
      mte::clearTagRange(Begin, End - Begin);
      Stats.TagsCleared.add();
      allocMetrics().TagsCleared.add();
      ClearedToZero = true;
    }
  }
  if (ClearedToZero && EraseDeadEntries)
    Table.eraseIfDead(Begin);
}

bool TagAllocator::reclaimRange(uint64_t Begin, uint64_t End) {
  (void)End; // the slot remembers its own length
  Begin = mte::addressOf(Begin);
  TagTable::ReclaimResult R = Table.reclaimKey(Begin);
  if (R.Slots == 0)
    return false;
  // A reclaim completes what a deferred release postponed, so it is where
  // tags_cleared catches up: after a full drain TagsGenerated ==
  // TagsCleared again, exactly as under the paper's eager Algorithm 2.
  Stats.TagsCleared.add(R.Slots);
  allocMetrics().TagsCleared.add(R.Slots);
  return true;
}

uint64_t TagAllocator::reclaimAll() {
  TagTable::ReclaimResult R = Table.reclaimAllResident();
  if (R.Slots > 0) {
    Stats.TagsCleared.add(R.Slots);
    allocMetrics().TagsCleared.add(R.Slots);
  }
  return R.Slots;
}

} // namespace mte4jni::core

//===- TagAllocator.cpp - Algorithms 1 and 2 of the paper --------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/core/TagAllocator.h"

#include "mte4jni/mte/Instructions.h"
#include "mte4jni/support/MathExtras.h"
#include "mte4jni/support/TraceEvents.h"

namespace mte4jni::core {

const char *lockSchemeName(LockScheme Scheme) {
  switch (Scheme) {
  case LockScheme::TwoTier:
    return "two-tier";
  case LockScheme::GlobalLock:
    return "global-lock";
  }
  return "?";
}

TagAllocator::TagAllocator(LockScheme Scheme, unsigned NumTables,
                           bool EraseDeadEntries)
    : Scheme(Scheme), EraseDeadEntries(EraseDeadEntries),
      Table(NumTables) {}

TagAllocator::TagAllocator(const TagAllocatorOptions &Options)
    : Scheme(Options.Locks), EraseDeadEntries(Options.EraseDeadEntries),
      ExcludeAdjacentTags(Options.ExcludeAdjacentTags),
      Table(Options.NumTables) {}

uint64_t TagAllocator::acquire(uint64_t Begin, uint64_t End) {
  Begin = mte::addressOf(Begin);
  End = mte::addressOf(End);
  M4J_ASSERT(Begin <= End, "inverted range");
  if (Scheme == LockScheme::GlobalLock) {
    // The naive §3.1 strawman: every JNI thread serialises here.
    std::lock_guard<std::mutex> Guard(GlobalLock);
    return acquireLocked(Begin, End);
  }
  return acquireLocked(Begin, End);
}

uint64_t TagAllocator::acquireLocked(uint64_t Begin, uint64_t End) {
  support::ScopedTrace Trace("TagAllocator.acquire", "mte4jni");
  Stats.Acquires.fetch_add(1, std::memory_order_relaxed);

  // Steps 1-2: shard by (begin/16) mod k; retrieve or create the
  // {referenceNum, mutexAddr} tuple under the table lock.
  TagTable::EntryRef Entry = Table.lookupOrCreate(Begin);

  // Step 3: under the object lock, bump the count and pick the tag.
  mte::TagValue Tag;
  {
    std::lock_guard<std::mutex> ObjGuard(Entry->Mutex);
    ++Entry->RefCount;
    if (Entry->RefCount > 1) {
      // Another native thread already tagged this object: share its tag
      // by loading it back with LDG.
      Tag = mte::ldgTag(Begin);
      Stats.TagsShared.fetch_add(1, std::memory_order_relaxed);
    } else {
      // First holder: generate a random tag (IRG) and apply it to every
      // granule of [begin, end) (ST2G/STG). With the adjacent-exclusion
      // hardening, the IRG draw additionally excludes the tags currently
      // on the neighbouring granules, so a linear overflow into an
      // adjacent tagged object can never alias.
      uint16_t ExtraExclude = 0;
      if (ExcludeAdjacentTags) {
        // Two granules on each side: object payloads are separated by a
        // one-granule header, so the nearest *neighbouring payload*
        // granule is up to two granules away.
        uint64_t EndAligned = support::alignTo(End, mte::kGranuleSize);
        ExtraExclude = static_cast<uint16_t>(
            (1u << mte::ldgTag(Begin - mte::kGranuleSize)) |
            (1u << mte::ldgTag(Begin - 2 * mte::kGranuleSize)) |
            (1u << mte::ldgTag(EndAligned)) |
            (1u << mte::ldgTag(EndAligned + mte::kGranuleSize)));
      }
      Tag = mte::irgTag(ExtraExclude);
      mte::setTagRange(mte::TaggedPtr<void>::fromRaw(
                           reinterpret_cast<void *>(Begin), Tag),
                       End - Begin);
      Stats.TagsGenerated.fetch_add(1, std::memory_order_relaxed);
    }
  }

  // Step 4: the tagged pointer.
  return mte::withPointerTag(Begin, Tag);
}

void TagAllocator::release(uint64_t Begin, uint64_t End) {
  Begin = mte::addressOf(Begin);
  End = mte::addressOf(End);
  if (Scheme == LockScheme::GlobalLock) {
    std::lock_guard<std::mutex> Guard(GlobalLock);
    releaseLocked(Begin, End);
    return;
  }
  releaseLocked(Begin, End);
}

void TagAllocator::releaseLocked(uint64_t Begin, uint64_t End) {
  support::ScopedTrace Trace("TagAllocator.release", "mte4jni");
  Stats.Releases.fetch_add(1, std::memory_order_relaxed);

  // Steps 1-2: find the entry; nothing to do when absent (release of an
  // object no Get interface tagged).
  TagTable::EntryRef Entry = Table.lookup(Begin);
  if (!Entry) {
    Stats.OrphanReleases.fetch_add(1, std::memory_order_relaxed);
    return;
  }

  // Step 3: drop the count; the last holder clears the memory tags so the
  // tag becomes available again and dangling tagged pointers fault.
  bool ClearedToZero = false;
  {
    std::lock_guard<std::mutex> ObjGuard(Entry->Mutex);
    if (Entry->RefCount == 0) {
      // Already released (double release); tolerated like the paper's
      // "nothing needs to be done" path.
      Stats.OrphanReleases.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    --Entry->RefCount;
    if (Entry->RefCount == 0) {
      mte::clearTagRange(Begin, End - Begin);
      Stats.TagsCleared.fetch_add(1, std::memory_order_relaxed);
      ClearedToZero = true;
    }
  }
  if (ClearedToZero && EraseDeadEntries)
    Table.eraseIfDead(Begin);
}

} // namespace mte4jni::core

//===- AllocTagPolicy.cpp - Tag-on-allocation design ablation ---------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/core/AllocTagPolicy.h"

#include "mte4jni/mte/Instructions.h"

namespace mte4jni::core {

AllocTagPolicy::AllocTagPolicy(uint64_t ScratchArenaBytes)
    : Scratch(ScratchArenaBytes) {}

uint64_t AllocTagPolicy::acquire(const jni::JniBufferInfo &Info,
                                 bool &IsCopy) {
  IsCopy = false;
  // One LDG; no table, no lock, no refcount.
  return mte::withPointerTag(Info.DataBegin,
                             mte::ldgTag(Info.DataBegin));
}

void AllocTagPolicy::release(const jni::JniBufferInfo &Info,
                             uint64_t NativeBits, jni::jint Mode) {
  // The tag is the object's, for the object's whole lifetime: releasing a
  // JNI buffer changes nothing (and use-after-release goes undetected —
  // the trade-off this ablation exists to expose).
  (void)Info;
  (void)NativeBits;
  (void)Mode;
}

uint64_t AllocTagPolicy::acquireScratch(uint64_t Bytes,
                                        const char *Interface) {
  (void)Interface;
  void *Buf = Scratch.allocate(Bytes);
  if (!Buf)
    return 0;
  auto Tagged = mte::irg(mte::TaggedPtr<void>::fromRaw(Buf, 0));
  mte::setTagRange(Tagged, Bytes);
  return Tagged.bits();
}

void AllocTagPolicy::releaseScratch(uint64_t NativeBits, uint64_t Bytes,
                                    const char *Interface) {
  (void)Interface;
  uint64_t Begin = mte::addressOf(NativeBits);
  mte::clearTagRange(Begin, Bytes);
  Scratch.deallocate(reinterpret_cast<void *>(Begin));
}

} // namespace mte4jni::core

//===- Mte4JniPolicy.cpp - The MTE4JNI check policy --------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/core/Mte4JniPolicy.h"

namespace mte4jni::core {

namespace {
TagAllocatorOptions allocatorOptions(const Mte4JniOptions &Options) {
  TagAllocatorOptions AO;
  AO.Locks = Options.Locks;
  AO.NumTables = Options.NumHashTables;
  AO.ExcludeAdjacentTags = Options.ExcludeAdjacentTags;
  AO.DeferredTagClear = Options.DeferredTagClear;
  AO.MaxResidentBytes = Options.MaxResidentTagBytes;
  return AO;
}
} // namespace

Mte4JniPolicy::Mte4JniPolicy(const Mte4JniOptions &Options)
    : Options(Options), Allocator(allocatorOptions(Options)),
      Scratch(Options.ScratchArenaBytes) {}

uint64_t Mte4JniPolicy::acquire(const jni::JniBufferInfo &Info,
                                bool &IsCopy) {
  // Direct pointer, tagged: the core §2.4 idea — no copy, the hardware
  // (here: the simulator's checked-access path) does the checking.
  IsCopy = false;
  return Allocator.acquire(Info.DataBegin, Info.DataBegin + Info.Bytes);
}

void Mte4JniPolicy::release(const jni::JniBufferInfo &Info,
                            uint64_t NativeBits, jni::jint Mode) {
  releasePinned(Info, NativeBits, Mode, nullptr);
}

uint64_t Mte4JniPolicy::acquirePinned(const jni::JniBufferInfo &Info,
                                      bool &IsCopy, void *&PinCookie) {
  IsCopy = false;
  TagTable::Slot *Slot = nullptr;
  uint64_t Bits =
      Allocator.acquire(Info.DataBegin, Info.DataBegin + Info.Bytes, &Slot);
  PinCookie = Slot;
  return Bits;
}

void Mte4JniPolicy::releasePinned(const jni::JniBufferInfo &Info,
                                  uint64_t NativeBits, jni::jint Mode,
                                  void *PinCookie) {
  // JNI_COMMIT means the caller keeps using the buffer: the tag must stay.
  if (Mode == jni::JNI_COMMIT)
    return;
  (void)NativeBits; // Algorithm 2 keys on the object's payload address
  Allocator.release(Info.DataBegin, Info.DataBegin + Info.Bytes,
                    static_cast<TagTable::Slot *>(PinCookie));
}

uint64_t Mte4JniPolicy::acquireScratch(uint64_t Bytes,
                                       const char *Interface) {
  (void)Interface;
  void *Buf = Scratch.allocate(Bytes);
  if (!Buf)
    return 0;
  uint64_t Begin = reinterpret_cast<uint64_t>(Buf);
  return Allocator.acquire(Begin, Begin + Bytes);
}

void Mte4JniPolicy::releaseScratch(uint64_t NativeBits, uint64_t Bytes,
                                   const char *Interface) {
  (void)Interface;
  uint64_t Begin = mte::addressOf(NativeBits);
  Allocator.release(Begin, Begin + Bytes);
  // Eager reclaim before the arena reuses the address: scratch buffers
  // recycle immediately, and the next tenant of these bytes must not
  // inherit a lingering tag (nor keep this one valid for a dangling
  // pointer into freed scratch).
  Allocator.reclaimRange(Begin, Begin + Bytes);
  Scratch.deallocate(reinterpret_cast<void *>(Begin));
}

} // namespace mte4jni::core

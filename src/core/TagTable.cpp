//===- TagTable.cpp - Reference-count tables for Algorithm 1/2 ---------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/core/TagTable.h"

#include "mte4jni/mte/Instructions.h"
#include "mte4jni/support/MathExtras.h"
#include "mte4jni/support/Metrics.h"

#include <algorithm>

namespace mte4jni::core {

const char *tagTableKindName(TagTableKind Kind) {
  switch (Kind) {
  case TagTableKind::LockFree:
    return "lock-free";
  case TagTableKind::TwoTierMutex:
    return "two-tier";
  case TagTableKind::GlobalLock:
    return "global-lock";
  }
  return "?";
}

TagTable::TagTable(unsigned NumTables, TagTableKind Kind,
                   unsigned SlotsPerShard, uint64_t ResidentBudgetBytes)
    : Kind(Kind), NumTables(NumTables) {
  M4J_ASSERT(NumTables > 0, "need at least one hash table");
  if (Kind == TagTableKind::LockFree) {
    // Power-of-two array, and never smaller than the probe window (so a
    // window scan visits each slot at most once).
    size_t N = support::nextPowerOf2(
        std::max<unsigned>(SlotsPerShard, kProbeWindow));
    SlotMask = N - 1;
    // Ceil division: a non-zero budget must let every shard defer at
    // least something, or small budgets would silently disable deferral
    // on most shards.
    ShardResidentBudget =
        ResidentBudgetBytes ? (ResidentBudgetBytes + NumTables - 1) / NumTables
                            : 0;
  }
  Shards.reserve(NumTables);
  for (unsigned I = 0; I < NumTables; ++I) {
    auto S = std::make_unique<Shard>();
    if (Kind == TagTableKind::LockFree)
      S->Slots = std::make_unique<Slot[]>(SlotMask + 1);
    Shards.push_back(std::move(S));
  }
}

TagTable::EntryRef TagTable::lookupOrCreate(uint64_t Begin) {
  Shard &S = *Shards[shardIndexOf(Begin)];
  std::lock_guard<std::mutex> TableGuard(S.TableLock);
  ++S.Stats.Lookups;
  auto It = S.Map.find(Begin);
  if (It != S.Map.end())
    return It->second;
  ++S.Stats.Creates;
  auto E = std::make_shared<Entry>();
  S.Map.emplace(Begin, E);
  return E;
}

TagTable::EntryRef TagTable::lookup(uint64_t Begin) {
  Shard &S = *Shards[shardIndexOf(Begin)];
  std::lock_guard<std::mutex> TableGuard(S.TableLock);
  ++S.Stats.Lookups;
  auto It = S.Map.find(Begin);
  return It != S.Map.end() ? It->second : nullptr;
}

void TagTable::eraseIfDead(uint64_t Begin) {
  Shard &S = *Shards[shardIndexOf(Begin)];
  std::lock_guard<std::mutex> TableGuard(S.TableLock);
  // Accounting rule (see TagTableStats): every keyed slow-path operation
  // counts one Lookup, whichever representation the key lives in.
  ++S.Stats.Lookups;
  if (S.Slots && Begin != kEmptyKey && Begin != kTombstoneKey) {
    size_t Home = slotHomeOf(Begin);
    for (unsigned I = 0; I < kProbeWindow; ++I) {
      Slot &Candidate = S.Slots[(Home + I) & SlotMask];
      uint64_t Key = Candidate.Key.load(std::memory_order_relaxed);
      if (Key == kEmptyKey)
        break;
      if (Key != Begin)
        continue;
      // A lingering slot must give its tags back before the key dies —
      // the reclaim CAS also bumps the epoch so stalled warm acquires
      // for this key can never land.
      reclaimSlotLocked(S, Candidate);
      if (refCountOf(Candidate.State.load(std::memory_order_acquire)) == 0) {
        ++S.Stats.Erases;
        Candidate.Key.store(kTombstoneKey, std::memory_order_release);
      }
      return;
    }
  }
  auto It = S.Map.find(Begin);
  if (It == S.Map.end())
    return;
  // Entry lock ordering: table lock is held; a concurrent acquirer that
  // already fetched this entry holds (or will take) the object lock, so we
  // must check the count under it. Keep a local reference across the
  // erase — dropping the map's shared_ptr may destroy the Entry, and its
  // mutex must stay alive until the guard unlocks it.
  EntryRef Keep = It->second;
  std::lock_guard<std::mutex> ObjGuard(Keep->Mutex);
  if (Keep->RefCount == 0) {
    // Mark dead under the object lock so an acquirer that fetched this
    // entry before the erase (and will lock it after) retries instead of
    // resurrecting an entry the map no longer reaches.
    Keep->Dead = true;
    ++S.Stats.Erases;
    S.Map.erase(It);
  }
}

TagTable::Slot *TagTable::probeSlot(uint64_t Begin) {
  if (!SlotMask || Begin == kEmptyKey || Begin == kTombstoneKey)
    return nullptr;
  Shard &S = *Shards[shardIndexOf(Begin)];
  size_t Home = slotHomeOf(Begin);
  for (unsigned I = 0; I < kProbeWindow; ++I) {
    Slot &Candidate = S.Slots[(Home + I) & SlotMask];
    uint64_t Key = Candidate.Key.load(std::memory_order_acquire);
    if (Key == Begin)
      return &Candidate;
    // Inserts claim the first reusable slot of the window and tombstones
    // never revert to empty, so a key is always located before the first
    // empty slot of its window.
    if (Key == kEmptyKey)
      return nullptr;
  }
  return nullptr;
}

std::unique_lock<std::mutex> TagTable::lockShard(uint64_t Begin,
                                                 bool *Contended) {
  std::mutex &M = Shards[shardIndexOf(Begin)]->TableLock;
  std::unique_lock<std::mutex> Lock(M, std::try_to_lock);
  if (!Lock.owns_lock()) {
    // First probe failed — the mutex was held at probe time. That alone
    // is not "had to wait": critical sections here are tens of
    // nanoseconds, so the holder is often gone immediately. Probe once
    // more and attribute shard_lock_wait only when we actually fall
    // through to a blocking lock().
    if (!Lock.try_lock()) {
      if (Contended != nullptr)
        *Contended = true;
      Lock.lock();
    }
  }
  return Lock;
}

TagTable::Slot *TagTable::slotLocked(uint64_t Begin, bool Create,
                                     const std::unique_lock<std::mutex> &Lock) {
  M4J_ASSERT(Lock.owns_lock(), "shard mutex not held");
  if (!SlotMask || Begin == kEmptyKey || Begin == kTombstoneKey)
    return nullptr;
  Shard &S = *Shards[shardIndexOf(Begin)];
  ++S.Stats.Lookups;
  size_t Home = slotHomeOf(Begin);
  Slot *Reusable = nullptr;
  for (unsigned I = 0; I < kProbeWindow; ++I) {
    Slot &Candidate = S.Slots[(Home + I) & SlotMask];
    uint64_t Key = Candidate.Key.load(std::memory_order_relaxed);
    if (Key == Begin)
      return &Candidate;
    if (!Reusable && (Key == kEmptyKey || Key == kTombstoneKey))
      Reusable = &Candidate;
    if (Key == kEmptyKey)
      break; // keys never live past the first empty slot
  }
  if (!Create)
    return nullptr;
  // If the key already spilled to the overflow map, keep using that entry:
  // claiming a slot now would give the same object two reference counts
  // (and the new holder a fresh tag while map holders still use the old).
  if (!Reusable || S.Map.find(Begin) != S.Map.end())
    return nullptr;
  ++S.Stats.Creates;
  // State (and its epoch) survives from the slot's previous tenant, which
  // is exactly what the ABA guard needs; the key is published with release
  // so lock-free probes see a fully claimed slot.
  Reusable->Key.store(Begin, std::memory_order_release);
  return Reusable;
}

void TagTable::tombstoneLocked(Slot &S,
                               const std::unique_lock<std::mutex> &Lock) {
  M4J_ASSERT(Lock.owns_lock(), "shard mutex not held");
  Shard &Owner = *Shards[shardIndexOf(S.Key.load(std::memory_order_relaxed))];
  // Reclaim before the key changes: the next tenant must never inherit
  // resident tags, and the epoch bump kills stalled warm CASes for the
  // old key.
  reclaimSlotLocked(Owner, S);
  M4J_ASSERT(refCountOf(S.State.load(std::memory_order_relaxed)) == 0,
             "tombstoning a live slot");
  ++Owner.Stats.Erases;
  S.Key.store(kTombstoneKey, std::memory_order_release);
}

uint64_t TagTable::reclaimSlotLocked(Shard &Sh, Slot &S) {
  uint64_t St = S.State.load(std::memory_order_acquire);
  for (;;) {
    // Only the lingering state {refcount=0, resident=1} reclaims. A held
    // slot keeps its tags; a non-resident slot has nothing to clear.
    if (refCountOf(St) != 0 || !residentOf(St))
      return 0;
    // Epoch bump first, tag clear second: once the CAS lands no warm
    // acquire can succeed (resident bit gone, epoch moved), so nobody can
    // be handed the tags we are about to erase.
    if (S.State.compare_exchange_weak(
            St, packState(epochOf(St) + 1, 0),
            std::memory_order_acq_rel, std::memory_order_acquire)) {
      uint64_t Key = S.Key.load(std::memory_order_relaxed);
      uint64_t Bytes = S.Bytes.load(std::memory_order_relaxed);
      if (Bytes > 0)
        mte::clearTagRange(Key, Bytes);
      Sh.ResidentBytes.fetch_sub(Bytes, std::memory_order_relaxed);
      support::Metrics::counter("core/tagtable/lockfree/deferred_reclaims")
          .add();
      return Bytes;
    }
  }
}

TagTable::ReclaimResult TagTable::reclaimKey(uint64_t Begin) {
  ReclaimResult R;
  if (!SlotMask || Begin == kEmptyKey || Begin == kTombstoneKey)
    return R;
  // Cheap lock-free pre-check: most freed objects were never pinned (no
  // slot) or were released exactly (not resident). Only a genuine
  // lingering hit pays the shard mutex.
  Slot *Probe = probeSlot(Begin);
  if (Probe == nullptr)
    return R;
  uint64_t St = Probe->State.load(std::memory_order_acquire);
  if (refCountOf(St) != 0 || !residentOf(St))
    return R;
  auto Lock = lockShard(Begin);
  if (Slot *S = slotLocked(Begin, /*Create=*/false, Lock)) {
    uint64_t Bytes = reclaimSlotLocked(*Shards[shardIndexOf(Begin)], *S);
    if (Bytes > 0) {
      R.Slots = 1;
      R.Bytes = Bytes;
    }
  }
  return R;
}

TagTable::ReclaimResult TagTable::reclaimAllResident() {
  ReclaimResult R;
  for (const auto &Sh : Shards) {
    if (!Sh->Slots)
      continue;
    std::lock_guard<std::mutex> Guard(Sh->TableLock);
    for (size_t I = 0; I <= SlotMask; ++I) {
      uint64_t Key = Sh->Slots[I].Key.load(std::memory_order_relaxed);
      if (Key == kEmptyKey || Key == kTombstoneKey)
        continue;
      uint64_t Bytes = reclaimSlotLocked(*Sh, Sh->Slots[I]);
      if (Bytes > 0) {
        ++R.Slots;
        R.Bytes += Bytes;
      }
    }
  }
  return R;
}

uint64_t TagTable::residentBytes() const {
  uint64_t Total = 0;
  for (const auto &Sh : Shards)
    Total += Sh->ResidentBytes.load(std::memory_order_relaxed);
  return Total;
}

size_t TagTable::liveEntries() const {
  size_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->TableLock);
    for (const auto &[Key, Entry] : S->Map)
      if (Entry->RefCount.load(std::memory_order_relaxed) > 0)
        ++Total;
    if (S->Slots)
      for (size_t I = 0; I <= SlotMask; ++I) {
        uint64_t Key = S->Slots[I].Key.load(std::memory_order_relaxed);
        if (Key == kEmptyKey || Key == kTombstoneKey)
          continue;
        uint64_t St = S->Slots[I].State.load(std::memory_order_relaxed);
        // refcount > 0: held. refcount 0 + resident: lingering (tags
        // still in place). Claimed slots at {0, resident=0} — released
        // exactly, or mid-insert before the first-holder store — are
        // occupancy, not liveness; counting them made LockFree disagree
        // with TwoTierMutex for identical workloads.
        if (refCountOf(St) > 0 || residentOf(St))
          ++Total;
      }
  }
  return Total;
}

size_t TagTable::occupiedEntries() const {
  size_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->TableLock);
    Total += S->Map.size();
    if (S->Slots)
      for (size_t I = 0; I <= SlotMask; ++I) {
        uint64_t Key = S->Slots[I].Key.load(std::memory_order_relaxed);
        if (Key != kEmptyKey && Key != kTombstoneKey)
          ++Total;
      }
  }
  return Total;
}

TagTableStats TagTable::stats() const {
  TagTableStats Total;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->TableLock);
    Total.Lookups += S->Stats.Lookups;
    Total.Creates += S->Stats.Creates;
    Total.Erases += S->Stats.Erases;
  }
  return Total;
}

} // namespace mte4jni::core

//===- TagTable.cpp - Reference-count tables for Algorithm 1/2 ---------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/core/TagTable.h"

#include "mte4jni/support/MathExtras.h"

#include <algorithm>

namespace mte4jni::core {

const char *tagTableKindName(TagTableKind Kind) {
  switch (Kind) {
  case TagTableKind::LockFree:
    return "lock-free";
  case TagTableKind::TwoTierMutex:
    return "two-tier";
  case TagTableKind::GlobalLock:
    return "global-lock";
  }
  return "?";
}

TagTable::TagTable(unsigned NumTables, TagTableKind Kind,
                   unsigned SlotsPerShard)
    : Kind(Kind), NumTables(NumTables) {
  M4J_ASSERT(NumTables > 0, "need at least one hash table");
  if (Kind == TagTableKind::LockFree) {
    // Power-of-two array, and never smaller than the probe window (so a
    // window scan visits each slot at most once).
    size_t N = support::nextPowerOf2(
        std::max<unsigned>(SlotsPerShard, kProbeWindow));
    SlotMask = N - 1;
  }
  Shards.reserve(NumTables);
  for (unsigned I = 0; I < NumTables; ++I) {
    auto S = std::make_unique<Shard>();
    if (Kind == TagTableKind::LockFree)
      S->Slots = std::make_unique<Slot[]>(SlotMask + 1);
    Shards.push_back(std::move(S));
  }
}

TagTable::EntryRef TagTable::lookupOrCreate(uint64_t Begin) {
  Shard &S = *Shards[shardIndexOf(Begin)];
  std::lock_guard<std::mutex> TableGuard(S.TableLock);
  ++S.Stats.Lookups;
  auto It = S.Map.find(Begin);
  if (It != S.Map.end())
    return It->second;
  ++S.Stats.Creates;
  auto E = std::make_shared<Entry>();
  S.Map.emplace(Begin, E);
  return E;
}

TagTable::EntryRef TagTable::lookup(uint64_t Begin) {
  Shard &S = *Shards[shardIndexOf(Begin)];
  std::lock_guard<std::mutex> TableGuard(S.TableLock);
  ++S.Stats.Lookups;
  auto It = S.Map.find(Begin);
  return It != S.Map.end() ? It->second : nullptr;
}

void TagTable::eraseIfDead(uint64_t Begin) {
  Shard &S = *Shards[shardIndexOf(Begin)];
  std::lock_guard<std::mutex> TableGuard(S.TableLock);
  if (S.Slots && Begin != kEmptyKey && Begin != kTombstoneKey) {
    size_t Home = slotHomeOf(Begin);
    for (unsigned I = 0; I < kProbeWindow; ++I) {
      Slot &Candidate = S.Slots[(Home + I) & SlotMask];
      uint64_t Key = Candidate.Key.load(std::memory_order_relaxed);
      if (Key == kEmptyKey)
        break;
      if (Key != Begin)
        continue;
      if (refCountOf(Candidate.State.load(std::memory_order_acquire)) == 0) {
        ++S.Stats.Erases;
        Candidate.Key.store(kTombstoneKey, std::memory_order_release);
      }
      return;
    }
  }
  auto It = S.Map.find(Begin);
  if (It == S.Map.end())
    return;
  // Entry lock ordering: table lock is held; a concurrent acquirer that
  // already fetched this entry holds (or will take) the object lock, so we
  // must check the count under it.
  std::lock_guard<std::mutex> ObjGuard(It->second->Mutex);
  if (It->second->RefCount == 0) {
    ++S.Stats.Erases;
    S.Map.erase(It);
  }
}

TagTable::Slot *TagTable::probeSlot(uint64_t Begin) {
  if (!SlotMask || Begin == kEmptyKey || Begin == kTombstoneKey)
    return nullptr;
  Shard &S = *Shards[shardIndexOf(Begin)];
  size_t Home = slotHomeOf(Begin);
  for (unsigned I = 0; I < kProbeWindow; ++I) {
    Slot &Candidate = S.Slots[(Home + I) & SlotMask];
    uint64_t Key = Candidate.Key.load(std::memory_order_acquire);
    if (Key == Begin)
      return &Candidate;
    // Inserts claim the first reusable slot of the window and tombstones
    // never revert to empty, so a key is always located before the first
    // empty slot of its window.
    if (Key == kEmptyKey)
      return nullptr;
  }
  return nullptr;
}

std::unique_lock<std::mutex> TagTable::lockShard(uint64_t Begin,
                                                 bool *Contended) {
  std::mutex &M = Shards[shardIndexOf(Begin)]->TableLock;
  std::unique_lock<std::mutex> Lock(M, std::try_to_lock);
  if (!Lock.owns_lock()) {
    if (Contended != nullptr)
      *Contended = true;
    Lock.lock();
  }
  return Lock;
}

TagTable::Slot *TagTable::slotLocked(uint64_t Begin, bool Create,
                                     const std::unique_lock<std::mutex> &Lock) {
  M4J_ASSERT(Lock.owns_lock(), "shard mutex not held");
  if (!SlotMask || Begin == kEmptyKey || Begin == kTombstoneKey)
    return nullptr;
  Shard &S = *Shards[shardIndexOf(Begin)];
  ++S.Stats.Lookups;
  size_t Home = slotHomeOf(Begin);
  Slot *Reusable = nullptr;
  for (unsigned I = 0; I < kProbeWindow; ++I) {
    Slot &Candidate = S.Slots[(Home + I) & SlotMask];
    uint64_t Key = Candidate.Key.load(std::memory_order_relaxed);
    if (Key == Begin)
      return &Candidate;
    if (!Reusable && (Key == kEmptyKey || Key == kTombstoneKey))
      Reusable = &Candidate;
    if (Key == kEmptyKey)
      break; // keys never live past the first empty slot
  }
  if (!Create)
    return nullptr;
  // If the key already spilled to the overflow map, keep using that entry:
  // claiming a slot now would give the same object two reference counts
  // (and the new holder a fresh tag while map holders still use the old).
  if (!Reusable || S.Map.find(Begin) != S.Map.end())
    return nullptr;
  ++S.Stats.Creates;
  // State (and its epoch) survives from the slot's previous tenant, which
  // is exactly what the ABA guard needs; the key is published with release
  // so lock-free probes see a fully claimed slot.
  Reusable->Key.store(Begin, std::memory_order_release);
  return Reusable;
}

void TagTable::tombstoneLocked(Slot &S,
                               const std::unique_lock<std::mutex> &Lock) {
  M4J_ASSERT(Lock.owns_lock(), "shard mutex not held");
  M4J_ASSERT(refCountOf(S.State.load(std::memory_order_relaxed)) == 0,
             "tombstoning a live slot");
  Shard &Owner = *Shards[shardIndexOf(S.Key.load(std::memory_order_relaxed))];
  ++Owner.Stats.Erases;
  S.Key.store(kTombstoneKey, std::memory_order_release);
}

size_t TagTable::liveEntries() const {
  size_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->TableLock);
    Total += S->Map.size();
    if (S->Slots)
      for (size_t I = 0; I <= SlotMask; ++I) {
        uint64_t Key = S->Slots[I].Key.load(std::memory_order_relaxed);
        if (Key != kEmptyKey && Key != kTombstoneKey)
          ++Total;
      }
  }
  return Total;
}

TagTableStats TagTable::stats() const {
  TagTableStats Total;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->TableLock);
    Total.Lookups += S->Stats.Lookups;
    Total.Creates += S->Stats.Creates;
    Total.Erases += S->Stats.Erases;
  }
  return Total;
}

} // namespace mte4jni::core

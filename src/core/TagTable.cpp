//===- TagTable.cpp - Two-tier locked reference-count tables ---------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/core/TagTable.h"

namespace mte4jni::core {

TagTable::TagTable(unsigned NumTables) : NumTables(NumTables) {
  M4J_ASSERT(NumTables > 0, "need at least one hash table");
  Shards.reserve(NumTables);
  for (unsigned I = 0; I < NumTables; ++I)
    Shards.push_back(std::make_unique<Shard>());
}

TagTable::EntryRef TagTable::lookupOrCreate(uint64_t Begin) {
  Shard &S = *Shards[shardIndexOf(Begin)];
  std::lock_guard<std::mutex> TableGuard(S.TableLock);
  ++S.Stats.Lookups;
  auto It = S.Map.find(Begin);
  if (It != S.Map.end())
    return It->second;
  ++S.Stats.Creates;
  auto E = std::make_shared<Entry>();
  S.Map.emplace(Begin, E);
  return E;
}

TagTable::EntryRef TagTable::lookup(uint64_t Begin) {
  Shard &S = *Shards[shardIndexOf(Begin)];
  std::lock_guard<std::mutex> TableGuard(S.TableLock);
  ++S.Stats.Lookups;
  auto It = S.Map.find(Begin);
  return It != S.Map.end() ? It->second : nullptr;
}

void TagTable::eraseIfDead(uint64_t Begin) {
  Shard &S = *Shards[shardIndexOf(Begin)];
  std::lock_guard<std::mutex> TableGuard(S.TableLock);
  auto It = S.Map.find(Begin);
  if (It == S.Map.end())
    return;
  // Entry lock ordering: table lock is held; a concurrent acquirer that
  // already fetched this entry holds (or will take) the object lock, so we
  // must check the count under it.
  std::lock_guard<std::mutex> ObjGuard(It->second->Mutex);
  if (It->second->RefCount == 0) {
    ++S.Stats.Erases;
    S.Map.erase(It);
  }
}

size_t TagTable::liveEntries() const {
  size_t Total = 0;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->TableLock);
    Total += S->Map.size();
  }
  return Total;
}

TagTableStats TagTable::stats() const {
  TagTableStats Total;
  for (const auto &S : Shards) {
    std::lock_guard<std::mutex> Guard(S->TableLock);
    Total.Lookups += S->Stats.Lookups;
    Total.Creates += S->Stats.Creates;
    Total.Erases += S->Stats.Erases;
  }
  return Total;
}

} // namespace mte4jni::core

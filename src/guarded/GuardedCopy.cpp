//===- GuardedCopy.cpp - ART's guarded-copy JNI checking ---------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/guarded/GuardedCopy.h"

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/support/Backtrace.h"
#include "mte4jni/support/Logging.h"
#include "mte4jni/support/StringUtils.h"

#include <algorithm>
#include <cstdlib>
#include <cstring>

namespace mte4jni::guarded {

namespace {
// The recognisable ASCII canary, in the spirit of CheckJNI's
// "JNI BUFFER RED ZONE" pattern.
constexpr char kCanary[] = "JNI BUFFER RED ZONE ";
constexpr uint64_t kCanaryLen = sizeof(kCanary) - 1;

/// A pre-built block of repeated canary patterns so red zones can be
/// filled/verified with chunked memcpy/memcmp (as ART does) instead of a
/// byte-at-a-time loop.
constexpr uint64_t kPatternBlock = kCanaryLen * 50; // 1000 bytes
const uint8_t *patternBlock() {
  static uint8_t Block[kPatternBlock];
  static bool Ready = [] {
    for (uint64_t I = 0; I < kPatternBlock; ++I)
      Block[I] = static_cast<uint8_t>(kCanary[I % kCanaryLen]);
    return true;
  }();
  (void)Ready;
  return Block;
}

void fillCanary(uint8_t *Dst, uint64_t Bytes) {
  const uint8_t *Pattern = patternBlock();
  uint64_t Offset = 0;
  while (Offset < Bytes) {
    uint64_t Chunk = std::min(Bytes - Offset, kPatternBlock);
    std::memcpy(Dst + Offset, Pattern, Chunk);
    Offset += Chunk;
  }
}

/// Returns the offset of the first corrupted byte, or -1 when intact.
int64_t scanCanary(const uint8_t *Zone, uint64_t Bytes) {
  const uint8_t *Pattern = patternBlock();
  uint64_t Offset = 0;
  while (Offset < Bytes) {
    uint64_t Chunk = std::min(Bytes - Offset, kPatternBlock);
    if (M4J_UNLIKELY(std::memcmp(Zone + Offset, Pattern, Chunk) != 0)) {
      for (uint64_t I = 0; I < Chunk; ++I)
        if (Zone[Offset + I] != Pattern[I])
          return static_cast<int64_t>(Offset + I);
    }
    Offset += Chunk;
  }
  return -1;
}
} // namespace

/// Adler-32 as ART's GuardedCopy uses (zlib definition).
uint32_t adler32(const uint8_t *Data, uint64_t Bytes) {
  constexpr uint32_t kMod = 65521;
  uint32_t A = 1, B = 0;
  while (Bytes > 0) {
    // 5552 is the largest run that cannot overflow 32-bit accumulators.
    uint64_t Run = std::min<uint64_t>(Bytes, 5552);
    for (uint64_t I = 0; I < Run; ++I) {
      A += Data[I];
      B += A;
    }
    A %= kMod;
    B %= kMod;
    Data += Run;
    Bytes -= Run;
  }
  return (B << 16) | A;
}

const char *GuardedCopyPolicy::canaryPattern() { return kCanary; }

GuardedCopyPolicy::GuardedCopyPolicy(const GuardedCopyOptions &Options)
    : Options(Options) {}

GuardedCopyPolicy::~GuardedCopyPolicy() {
  // Free anything native code leaked.
  for (auto &[Bits, B] : Live)
    std::free(B.Allocation);
}

uint64_t GuardedCopyPolicy::makeBlock(uint64_t PayloadBytes,
                                      const void *InitFrom) {
  uint64_t RZ = Options.RedZoneBytes;
  auto *Alloc = static_cast<uint8_t *>(std::malloc(RZ + PayloadBytes + RZ));
  M4J_ASSERT(Alloc != nullptr, "guarded copy allocation failed");
  fillCanary(Alloc, RZ);
  if (InitFrom)
    std::memcpy(Alloc + RZ, InitFrom, PayloadBytes);
  else
    std::memset(Alloc + RZ, 0, PayloadBytes);
  fillCanary(Alloc + RZ + PayloadBytes, RZ);
  return reinterpret_cast<uint64_t>(Alloc + RZ);
}

uint64_t GuardedCopyPolicy::acquire(const jni::JniBufferInfo &Info,
                                    bool &IsCopy) {
  IsCopy = true;
  uint64_t Bits =
      makeBlock(Info.Bytes, reinterpret_cast<const void *>(Info.DataBegin));
  Block B;
  B.Allocation = reinterpret_cast<uint8_t *>(Bits) - Options.RedZoneBytes;
  B.PayloadBytes = Info.Bytes;
  B.OriginalData = Info.DataBegin;
  if (Options.ChecksumPayload)
    B.Adler32 = adler32(reinterpret_cast<const uint8_t *>(Bits),
                        Info.Bytes);
  {
    std::lock_guard<support::SpinLock> Guard(Lock);
    Live.emplace(Bits, B);
    ++Stats.Acquires;
    Stats.BytesCopied += Info.Bytes;
  }
  return Bits;
}

bool GuardedCopyPolicy::verifyRedZones(const Block &B,
                                       int64_t &OffsetOut) const {
  const uint8_t *Front = B.Allocation;
  const uint8_t *Back =
      B.Allocation + Options.RedZoneBytes + B.PayloadBytes;
  int64_t FrontHit = scanCanary(Front, Options.RedZoneBytes);
  if (FrontHit >= 0) {
    // Offset relative to payload start: negative (underflow).
    OffsetOut = FrontHit - static_cast<int64_t>(Options.RedZoneBytes);
    return false;
  }
  int64_t BackHit = scanCanary(Back, Options.RedZoneBytes);
  if (BackHit >= 0) {
    OffsetOut = static_cast<int64_t>(B.PayloadBytes) + BackHit;
    return false;
  }
  OffsetOut = 0;
  return true;
}

void GuardedCopyPolicy::reportCorruption(const jni::JniBufferInfo &Info,
                                         const Block &B, int64_t Offset,
                                         const char *Interface) {
  {
    std::lock_guard<support::SpinLock> Guard(Lock);
    ++Stats.CorruptionsDetected;
  }
  // CheckJNI aborts the runtime at the release call; the backtrace
  // therefore shows the abort machinery, not the faulting native write
  // (Figure 4a).
  support::ScopedFrame CheckFrame("art::GuardedCopy::Check", "libart.so");
  support::ScopedFrame AbortFrame("art::Runtime::Abort", "libart.so");

  mte::FaultRecord Record;
  Record.Kind = mte::FaultKind::GuardedCopyCorruption;
  Record.HasAddress = true;
  Record.Address = mte::addressOf(
      reinterpret_cast<uint64_t>(B.Allocation) + Options.RedZoneBytes +
      static_cast<uint64_t>(Offset));
  Record.DebugAddress = Record.Address;
  Record.IsWrite = true;
  Record.ThreadId = mte::ThreadState::current().threadId();
  Record.Description = support::format(
      "JNI: unexpected modification of red zone: %s of buffer for %s; "
      "corrupted byte at payload offset %lld (payload is %llu bytes)",
      Offset < 0 ? "underflow" : "overflow", Interface,
      static_cast<long long>(Offset),
      static_cast<unsigned long long>(B.PayloadBytes));
  Record.Backtrace = support::FrameStack::current().capture();
  mte::MteSystem::instance().deliverFault(std::move(Record));
}

void GuardedCopyPolicy::destroyBlock(const jni::JniBufferInfo &Info,
                                     uint64_t Bits, jni::jint Mode,
                                     const char *Interface, bool CopyBack) {
  Block B;
  {
    std::lock_guard<support::SpinLock> Guard(Lock);
    auto It = Live.find(Bits);
    if (It == Live.end()) {
      // Native code released a pointer we never handed out.
      mte::FaultRecord Record;
      Record.Kind = mte::FaultKind::JniCheckError;
      Record.Description = support::format(
          "%s: pointer %p was not issued by a guarded-copy Get interface",
          Interface, reinterpret_cast<void *>(Bits));
      Record.ThreadId = mte::ThreadState::current().threadId();
      Record.Backtrace = support::FrameStack::current().capture();
      mte::MteSystem::instance().deliverFault(std::move(Record));
      return;
    }
    B = It->second;
    Live.erase(It);
    ++Stats.Releases;
  }

  int64_t Offset = 0;
  if (!verifyRedZones(B, Offset))
    reportCorruption(Info, B, Offset, Interface);

  // ART recomputes the payload checksum at release; with JNI_ABORT a
  // modified buffer earns a CheckJNI warning (the caller asked for the
  // changes to be thrown away).
  if (Options.ChecksumPayload) {
    uint32_t Now = adler32(B.Allocation + Options.RedZoneBytes,
                           B.PayloadBytes);
    if (Mode == jni::JNI_ABORT && Now != B.Adler32)
      support::logWarn("CheckJNI",
                       "buffer for %s was modified but released with "
                       "JNI_ABORT (changes discarded)",
                       Interface);
  }

  if (CopyBack && Options.CopyBackOnRelease && Mode != jni::JNI_ABORT &&
      B.OriginalData != 0) {
    std::memcpy(reinterpret_cast<void *>(B.OriginalData),
                B.Allocation + Options.RedZoneBytes, B.PayloadBytes);
    std::lock_guard<support::SpinLock> Guard(Lock);
    Stats.BytesCopied += B.PayloadBytes;
  }

  if (Mode != jni::JNI_COMMIT) {
    std::free(B.Allocation);
  } else {
    // JNI_COMMIT: copy back but keep the buffer live for further use.
    std::lock_guard<support::SpinLock> Guard(Lock);
    Live.emplace(Bits, B);
    --Stats.Releases;
  }
}

void GuardedCopyPolicy::release(const jni::JniBufferInfo &Info,
                                uint64_t NativeBits, jni::jint Mode) {
  destroyBlock(Info, NativeBits, Mode, Info.Interface, /*CopyBack=*/true);
}

uint64_t GuardedCopyPolicy::acquireScratch(uint64_t Bytes,
                                           const char *Interface) {
  (void)Interface;
  uint64_t Bits = makeBlock(Bytes, nullptr);
  Block B;
  B.Allocation = reinterpret_cast<uint8_t *>(Bits) - Options.RedZoneBytes;
  B.PayloadBytes = Bytes;
  B.OriginalData = 0;
  std::lock_guard<support::SpinLock> Guard(Lock);
  Live.emplace(Bits, B);
  ++Stats.Acquires;
  return Bits;
}

void GuardedCopyPolicy::releaseScratch(uint64_t NativeBits, uint64_t Bytes,
                                       const char *Interface) {
  (void)Bytes;
  jni::JniBufferInfo Info;
  Info.Interface = Interface;
  destroyBlock(Info, NativeBits, /*Mode=*/0, Interface, /*CopyBack=*/false);
}

GuardedCopyStats GuardedCopyPolicy::stats() const {
  std::lock_guard<support::SpinLock> Guard(Lock);
  return Stats;
}

} // namespace mte4jni::guarded

//===- PolicyNone.cpp - The "no protection" baseline -------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/jni/PolicyNone.h"

#include <cstdlib>

namespace mte4jni::jni {

CheckPolicy::~CheckPolicy() = default;

uint64_t NoProtectionPolicy::acquireScratch(uint64_t Bytes,
                                            const char *Interface) {
  (void)Interface;
  return reinterpret_cast<uint64_t>(std::malloc(Bytes));
}

void NoProtectionPolicy::releaseScratch(uint64_t NativeBits, uint64_t Bytes,
                                        const char *Interface) {
  (void)Bytes;
  (void)Interface;
  std::free(reinterpret_cast<void *>(NativeBits));
}

} // namespace mte4jni::jni

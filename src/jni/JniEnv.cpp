//===- JniEnv.cpp - The simulated JNI environment -----------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/jni/JniEnv.h"

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/support/Logging.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/StringUtils.h"
#include "mte4jni/support/TraceEvents.h"
#include "mte4jni/support/TraceRing.h"

#include <cstring>

namespace mte4jni::jni {

namespace {

/// The per-interface traffic Table 1 of the paper prices out: how many
/// Get/Release pairs and critical sections ran, how badly this env's pin
/// table ever stacked up, and how many CheckJNI errors were raised.
struct JniMetrics {
  support::Counter &GetCalls = support::Metrics::counter("jni/get_calls");
  support::Counter &ReleaseCalls =
      support::Metrics::counter("jni/release_calls");
  support::Counter &CriticalEnters =
      support::Metrics::counter("jni/critical_enters");
  support::Counter &CheckErrors =
      support::Metrics::counter("jni/check_errors");
  support::Gauge &PinDepthHwm =
      support::Metrics::gauge("jni/pin_depth_hwm");
};

JniMetrics &jniMetrics() {
  static JniMetrics M;
  return M;
}

} // namespace

JniEnv::~JniEnv() {
  // CheckJNI-style leak detection: native code that never released its
  // GetStringUTFChars buffers.
  if (!UtfBuffers.empty())
    support::logWarn("CheckJNI",
                     "JNIEnv destroyed with %zu unreleased "
                     "GetStringUTFChars buffer(s) (native leak)",
                     UtfBuffers.size());
  if (!LocalFrames.empty())
    support::logWarn("CheckJNI",
                     "JNIEnv destroyed with %zu unpopped local frame(s)",
                     LocalFrames.size());
}

bool JniEnv::checkArray(jarray Array, rt::PrimType Expected,
                        const char *Interface) {
  if (!Array) {
    raiseError(Interface, "NullPointerException: null array");
    return false;
  }
  if (Array->kind() != rt::ObjectKind::PrimArray ||
      Array->elemType() != Expected) {
    raiseError(Interface,
               support::format("expected %s[] but got object kind %u/%s",
                               rt::primTypeName(Expected),
                               unsigned(Array->kind()),
                               rt::primTypeName(Array->elemType())));
    return false;
  }
  return true;
}

bool JniEnv::checkString(jstring Str, const char *Interface) {
  if (!Str) {
    raiseError(Interface, "NullPointerException: null string");
    return false;
  }
  if (Str->kind() != rt::ObjectKind::String) {
    raiseError(Interface, "expected a java.lang.String");
    return false;
  }
  return true;
}

void JniEnv::raiseError(const char *Interface, std::string Message) {
  PendingError = true;
  ErrorMessage = support::format("%s: %s", Interface, Message.c_str());

  jniMetrics().CheckErrors.add();
  mte::FaultRecord Record;
  Record.Kind = mte::FaultKind::JniCheckError;
  Record.Description = ErrorMessage;
  Record.ThreadId = mte::ThreadState::current().threadId();
  Record.Backtrace = support::FrameStack::current().capture();
  mte::MteSystem::instance().faultLog().append(std::move(Record));
}

uint64_t JniEnv::acquireObject(rt::ObjectHeader *Obj, const char *Interface,
                               jboolean *IsCopy) {
  support::ScopedTrace Trace("JNI.Get", "jni");
  static support::Histogram &AcquireNanos =
      support::Metrics::histogram("jni/acquire_nanos");
  support::SampledLatency Lat(AcquireNanos, support::FlightKind::JniAcquire);
  // Pin + tag/copy work must not interleave with a GC pause (the verify
  // pass reads payloads; compaction moves unpinned objects). Nested inside
  // callNative's bracket this is thread-local; standalone it claims one.
  rt::ScopedCritical Bracket(RT);
  // JNI Get* interfaces pin the object: the GC must not reclaim or move
  // memory native code holds a raw pointer into.
  Obj->pin();
  JniBufferInfo Info;
  Info.Obj = Obj;
  Info.DataBegin = Obj->dataAddress();
  Info.Bytes = Obj->dataBytes();
  Info.Interface = Interface;
  bool Copy = false;
  void *Cookie = nullptr;
  uint64_t Bits = Policy.acquirePinned(Info, Copy, Cookie);
  PinRecord &Pin = Pins[Bits];
  Pin.Cookie = Cookie;
  ++Pin.Count;
  JniMetrics &JM = jniMetrics();
  JM.GetCalls.add();
  JM.PinDepthHwm.updateMax(static_cast<int64_t>(Pins.size()));
  if (IsCopy)
    *IsCopy = Copy ? JNI_TRUE : JNI_FALSE;
  return Bits;
}

void JniEnv::releaseObject(rt::ObjectHeader *Obj, const char *Interface,
                           uint64_t Bits, jint Mode) {
  support::ScopedTrace Trace("JNI.Release", "jni");
  static support::Histogram &ReleaseNanos =
      support::Metrics::histogram("jni/release_nanos");
  support::SampledLatency Lat(ReleaseNanos, support::FlightKind::JniRelease);
  // Copy-back (guarded copy) and unpin must be atomic w.r.t. the pause for
  // the same reason acquire is.
  rt::ScopedCritical Bracket(RT);
  jniMetrics().ReleaseCalls.add();
  JniBufferInfo Info;
  Info.Obj = Obj;
  Info.DataBegin = Obj->dataAddress();
  Info.Bytes = Obj->dataBytes();
  Info.Interface = Interface;
  // Hand the acquire-time cookie back to the policy. A release through a
  // different env (or of never-acquired bits) finds no record and passes
  // null — the policy falls back to its own table lookup: first the
  // per-thread slot memo (which remembers recently pinned ranges across
  // un-nested Get/Release pairs, where this per-env map has already
  // forgotten them), then a fresh probe.
  void *Cookie = nullptr;
  auto Pin = Pins.find(Bits);
  if (Pin != Pins.end()) {
    Cookie = Pin->second.Cookie;
    // JNI_COMMIT keeps the buffer pinned: the caller will release again.
    if (Mode != JNI_COMMIT && --Pin->second.Count == 0)
      Pins.erase(Pin);
  }
  Policy.releasePinned(Info, Bits, Mode, Cookie);
  if (Mode != JNI_COMMIT)
    Obj->unpin();
}

// ==== critical interfaces ================================================

mte::TaggedPtr<void> JniEnv::GetPrimitiveArrayCritical(jarray Array,
                                                       jboolean *IsCopy) {
  support::ScopedFrame Frame("GetPrimitiveArrayCritical", "libart.so");
  if (!Array) {
    raiseError("GetPrimitiveArrayCritical", "NullPointerException");
    return mte::TaggedPtr<void>();
  }
  if (Array->kind() != rt::ObjectKind::PrimArray) {
    raiseError("GetPrimitiveArrayCritical", "not a primitive array");
    return mte::TaggedPtr<void>();
  }
  RT.enterCritical();
  jniMetrics().CriticalEnters.add();
  return mte::TaggedPtr<void>::fromBits(
      acquireObject(Array, "GetPrimitiveArrayCritical", IsCopy));
}

void JniEnv::ReleasePrimitiveArrayCritical(jarray Array,
                                           mte::TaggedPtr<void> Carray,
                                           jint Mode) {
  support::ScopedFrame Frame("ReleasePrimitiveArrayCritical", "libart.so");
  if (!Array || Array->kind() != rt::ObjectKind::PrimArray) {
    raiseError("ReleasePrimitiveArrayCritical", "bad array argument");
    return;
  }
  // CheckJNI: releasing a critical you never entered is a native bug that
  // would corrupt the runtime's critical accounting.
  if (RT.criticalDepth() == 0) {
    raiseError("ReleasePrimitiveArrayCritical",
               "no JNI critical section is active on this runtime");
    return;
  }
  releaseObject(Array, "ReleasePrimitiveArrayCritical", Carray.bits(), Mode);
  RT.exitCritical();
}

mte::TaggedPtr<const jchar> JniEnv::GetStringCritical(jstring Str,
                                                      jboolean *IsCopy) {
  support::ScopedFrame Frame("GetStringCritical", "libart.so");
  if (!checkString(Str, "GetStringCritical"))
    return mte::TaggedPtr<const jchar>();
  RT.enterCritical();
  jniMetrics().CriticalEnters.add();
  return mte::TaggedPtr<const jchar>::fromBits(
      acquireObject(Str, "GetStringCritical", IsCopy));
}

void JniEnv::ReleaseStringCritical(jstring Str,
                                   mte::TaggedPtr<const jchar> Chars) {
  support::ScopedFrame Frame("ReleaseStringCritical", "libart.so");
  if (!checkString(Str, "ReleaseStringCritical"))
    return;
  releaseObject(Str, "ReleaseStringCritical", Chars.bits(), 0);
  RT.exitCritical();
}

// ==== string interfaces ==================================================

mte::TaggedPtr<const jchar> JniEnv::GetStringChars(jstring Str,
                                                   jboolean *IsCopy) {
  support::ScopedFrame Frame("GetStringChars", "libart.so");
  if (!checkString(Str, "GetStringChars"))
    return mte::TaggedPtr<const jchar>();
  return mte::TaggedPtr<const jchar>::fromBits(
      acquireObject(Str, "GetStringChars", IsCopy));
}

void JniEnv::ReleaseStringChars(jstring Str,
                                mte::TaggedPtr<const jchar> Chars) {
  support::ScopedFrame Frame("ReleaseStringChars", "libart.so");
  if (!checkString(Str, "ReleaseStringChars"))
    return;
  releaseObject(Str, "ReleaseStringChars", Chars.bits(), 0);
}

mte::TaggedPtr<const char> JniEnv::GetStringUTFChars(jstring Str,
                                                     jboolean *IsCopy) {
  support::ScopedFrame Frame("GetStringUTFChars", "libart.so");
  if (!checkString(Str, "GetStringUTFChars"))
    return mte::TaggedPtr<const char>();

  // The UTF-8 conversion reads the string payload: bracket it against the
  // GC pause like every other payload access.
  rt::ScopedCritical Bracket(RT);
  // GetStringUTFChars always converts into a fresh native buffer.
  std::u16string_view Units(
      reinterpret_cast<const char16_t *>(rt::stringChars(Str)), Str->Length);
  std::string Utf8 = rt::utf16ToUtf8(Units);
  uint64_t Bytes = Utf8.size() + 1; // NUL-terminated per JNI spec

  uint64_t Bits = Policy.acquireScratch(Bytes, "GetStringUTFChars");
  char *Host = reinterpret_cast<char *>(mte::addressOf(Bits));
  if (!Host) {
    raiseError("GetStringUTFChars", "OutOfMemoryError");
    return mte::TaggedPtr<const char>();
  }
  std::memcpy(Host, Utf8.data(), Utf8.size());
  Host[Utf8.size()] = '\0';

  UtfBuffers[Bits] = Bytes;
  if (IsCopy)
    *IsCopy = JNI_TRUE;
  return mte::TaggedPtr<const char>::fromBits(Bits);
}

void JniEnv::ReleaseStringUTFChars(jstring Str,
                                   mte::TaggedPtr<const char> Utf) {
  support::ScopedFrame Frame("ReleaseStringUTFChars", "libart.so");
  (void)Str; // real JNI ignores the string argument for the copy's release
  auto It = UtfBuffers.find(Utf.bits());
  if (It == UtfBuffers.end()) {
    raiseError("ReleaseStringUTFChars",
               "pointer was not returned by GetStringUTFChars");
    return;
  }
  uint64_t Bytes = It->second;
  UtfBuffers.erase(It);
  Policy.releaseScratch(Utf.bits(), Bytes, "ReleaseStringUTFChars");
}

// ==== Object[] ============================================================

jarray JniEnv::NewObjectArray(rt::HandleScope &Scope, jsize Length) {
  support::ScopedFrame Frame("NewObjectArray", "libart.so");
  if (Length < 0) {
    raiseError("NewObjectArray", "NegativeArraySizeException");
    return nullptr;
  }
  jarray Array = RT.newRefArray(Scope, static_cast<uint32_t>(Length));
  if (!Array)
    raiseError("NewObjectArray", "OutOfMemoryError");
  return Array;
}

jobject JniEnv::GetObjectArrayElement(jarray Array, jsize Index) {
  support::ScopedFrame Frame("GetObjectArrayElement", "libart.so");
  if (!Array || Array->kind() != rt::ObjectKind::RefArray) {
    raiseError("GetObjectArrayElement", "not an object array");
    return nullptr;
  }
  if (Index < 0 || static_cast<uint32_t>(Index) >= Array->Length) {
    raiseError("GetObjectArrayElement", "ArrayIndexOutOfBoundsException");
    return nullptr;
  }
  // Ref-array slots are payload the mark phase traces and compaction
  // rewrites: slot access must not interleave with a pause.
  rt::ScopedCritical Bracket(RT);
  return rt::refArraySlots(Array)[Index];
}

void JniEnv::SetObjectArrayElement(jarray Array, jsize Index,
                                   jobject Value) {
  support::ScopedFrame Frame("SetObjectArrayElement", "libart.so");
  if (!Array || Array->kind() != rt::ObjectKind::RefArray) {
    raiseError("SetObjectArrayElement", "not an object array");
    return;
  }
  if (Index < 0 || static_cast<uint32_t>(Index) >= Array->Length) {
    raiseError("SetObjectArrayElement", "ArrayIndexOutOfBoundsException");
    return;
  }
  rt::ScopedCritical Bracket(RT);
  rt::refArraySlots(Array)[Index] = Value;
}

// ==== local reference frames ==============================================

jint JniEnv::PushLocalFrame(jint Capacity) {
  support::ScopedFrame Frame("PushLocalFrame", "libart.so");
  if (Capacity < 0) {
    raiseError("PushLocalFrame", "negative capacity");
    return -1;
  }
  LocalFrames.push_back(std::make_unique<rt::HandleScope>(RT));
  return 0;
}

jobject JniEnv::PopLocalFrame(jobject Result) {
  support::ScopedFrame Frame("PopLocalFrame", "libart.so");
  if (LocalFrames.empty()) {
    raiseError("PopLocalFrame", "no local frame to pop");
    return Result;
  }
  // Real JNI promotes Result into the outer frame; this runtime's
  // references are direct pointers, so survival requires the caller to
  // root Result elsewhere — emulate the promotion when possible.
  LocalFrames.pop_back();
  if (Result && !LocalFrames.empty())
    LocalFrames.back()->root(Result);
  return Result;
}

jarray JniEnv::NewIntArrayLocal(jsize Length) {
  if (LocalFrames.empty()) {
    raiseError("NewIntArray", "no local frame open");
    return nullptr;
  }
  return newArray<jint>(*LocalFrames.back(), Length, "NewIntArray");
}

jstring JniEnv::NewStringUTFLocal(const char *Utf8) {
  if (LocalFrames.empty()) {
    raiseError("NewStringUTF", "no local frame open");
    return nullptr;
  }
  return NewStringUTF(*LocalFrames.back(), Utf8);
}

// ==== queries and creation ===============================================

jsize JniEnv::GetArrayLength(jarray Array) {
  if (!Array || Array->kind() != rt::ObjectKind::PrimArray) {
    raiseError("GetArrayLength", "bad array argument");
    return -1;
  }
  return static_cast<jsize>(Array->Length);
}

jsize JniEnv::GetStringLength(jstring Str) {
  if (!checkString(Str, "GetStringLength"))
    return -1;
  return static_cast<jsize>(Str->Length);
}

jsize JniEnv::GetStringUTFLength(jstring Str) {
  if (!checkString(Str, "GetStringUTFLength"))
    return -1;
  return static_cast<jsize>(rt::utf8Length(Str));
}

jstring JniEnv::NewString(rt::HandleScope &Scope, const jchar *Units,
                          jsize Len) {
  if (Len < 0) {
    raiseError("NewString", "negative length");
    return nullptr;
  }
  jstring Str = RT.newString(
      Scope, std::u16string_view(reinterpret_cast<const char16_t *>(Units),
                                 static_cast<size_t>(Len)));
  if (!Str)
    raiseError("NewString", "OutOfMemoryError");
  return Str;
}

jstring JniEnv::NewStringUTF(rt::HandleScope &Scope, const char *Utf8) {
  if (!Utf8) {
    raiseError("NewStringUTF", "NullPointerException");
    return nullptr;
  }
  jstring Str = RT.newStringUtf8(Scope, Utf8);
  if (!Str)
    raiseError("NewStringUTF", "OutOfMemoryError");
  return Str;
}

} // namespace mte4jni::jni

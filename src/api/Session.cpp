//===- Session.cpp - One-stop façade over the protection schemes --------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"

#include "mte4jni/core/AllocTagPolicy.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/support/StringUtils.h"

#include <cstdio>

namespace mte4jni::api {

const char *schemeName(Scheme S) {
  switch (S) {
  case Scheme::NoProtection:
    return "no-protection";
  case Scheme::GuardedCopy:
    return "guarded-copy";
  case Scheme::Mte4JniSync:
    return "mte4jni+sync";
  case Scheme::Mte4JniAsync:
    return "mte4jni+async";
  case Scheme::TagOnAllocSync:
    return "tag-on-alloc+sync";
  }
  return "?";
}

Session::Session(const SessionConfig &Config) : Config(Config) {
  // Process-wide like the metrics registry: the last-constructed session's
  // mode wins, which is what the single-session tools and benches expect.
  support::obs::setMode(Config.TraceMode);

  const bool IsMte = Config.Protection == Scheme::Mte4JniSync ||
                     Config.Protection == Scheme::Mte4JniAsync ||
                     Config.Protection == Scheme::TagOnAllocSync;

  rt::RuntimeConfig RC;
  RC.Heap.CapacityBytes = Config.HeapBytes;
  // §4.1: MTE4JNI raises the allocator alignment to the granule size and
  // maps the heap with PROT_MTE.
  RC.Heap.Alignment =
      Config.HeapAlignment ? Config.HeapAlignment : (IsMte ? 16u : 8u);
  RC.Heap.ProtMte = IsMte;
  RC.CheckMode = Config.Protection == Scheme::Mte4JniSync ||
                         Config.Protection == Scheme::TagOnAllocSync
                     ? mte::CheckMode::Sync
                     : (Config.Protection == Scheme::Mte4JniAsync
                            ? mte::CheckMode::Async
                            : mte::CheckMode::None);
  RC.Heap.TagOnAlloc = Config.Protection == Scheme::TagOnAllocSync;
  RC.Heap.TlabBytes = Config.HeapTlabBytes;
  RC.TagChecksInNative = IsMte;
  RC.Gc.BackgroundThread = Config.BackgroundGc;
  RC.Gc.IntervalMillis = Config.GcIntervalMillis;
  RC.Gc.VerifyObjectBodies = Config.GcVerifiesBodies;
  RC.Gc.SuppressTagChecks = Config.GcSuppressTagChecks;
  RC.Gc.Parallelism = Config.GcParallelism;
  RC.Seed = Config.Seed;

  Runtime = std::make_unique<rt::Runtime>(RC);

  switch (Config.Protection) {
  case Scheme::NoProtection:
    Policy = std::make_unique<jni::NoProtectionPolicy>();
    break;
  case Scheme::GuardedCopy: {
    guarded::GuardedCopyOptions GO;
    GO.RedZoneBytes = Config.GuardedRedZoneBytes;
    auto P = std::make_unique<guarded::GuardedCopyPolicy>(GO);
    GuardedPolicy = P.get();
    Policy = std::move(P);
    break;
  }
  case Scheme::TagOnAllocSync:
    Policy = std::make_unique<core::AllocTagPolicy>();
    break;
  case Scheme::Mte4JniSync:
  case Scheme::Mte4JniAsync: {
    core::Mte4JniOptions MO;
    MO.Locks = Config.Locks;
    MO.NumHashTables = Config.NumHashTables;
    MO.ExcludeAdjacentTags = Config.ExcludeAdjacentTags;
    MO.DeferredTagClear = Config.DeferredTagClear;
    MO.MaxResidentTagBytes = Config.MaxResidentTagBytes;
    auto P = std::make_unique<core::Mte4JniPolicy>(MO);
    MtePolicy = P.get();
    Policy = std::move(P);
    break;
  }
  }

  // Deferred tag-clear is only sound if a freed object cannot keep its
  // granule tags: hook the heap's free/sweep/compact notifications so the
  // allocator reclaims any lingering (released-but-still-tagged) range the
  // moment its object dies. Without this, a dangling native pointer into a
  // swept object would still carry a matching tag.
  if (MtePolicy && MtePolicy->allocator().deferredTagClear())
    Runtime->heap().setFreedRangeHook(
        [](void *Ctx, uint64_t PayloadBegin, uint64_t PayloadBytes) {
          static_cast<core::TagAllocator *>(Ctx)->reclaimRange(
              PayloadBegin, PayloadBegin + PayloadBytes);
        },
        &MtePolicy->allocator());
}

Session::~Session() {
  // Stop the background GC and unhook the freed-range callback before the
  // policy (and with it the tag allocator the hook points at) dies; a
  // sweep racing the policy teardown would otherwise call into a freed
  // allocator.
  Runtime->gc().stop();
  Runtime->heap().setFreedRangeHook(nullptr, nullptr);
  // Policy next (its scratch arena unregisters its MTE region), then the
  // runtime (unregisters the heap region, resets the check mode).
  Policy.reset();
  Runtime.reset();
}

mte::FaultLog &Session::faults() {
  return mte::MteSystem::instance().faultLog();
}

std::string Session::statsReport() const {
  std::string Out;
  Out += support::format("=== session stats (%s) ===\n",
                         schemeName(Config.Protection));

  rt::HeapStats HS = Runtime->heap().stats();
  Out += support::format(
      "heap: %llu objects live (%s), %llu allocated, %llu freed, "
      "%llu free-list hits\n",
      static_cast<unsigned long long>(HS.ObjectsLive),
      support::humanBytes(HS.BytesLive).c_str(),
      static_cast<unsigned long long>(HS.ObjectsAllocated),
      static_cast<unsigned long long>(HS.ObjectsFreed),
      static_cast<unsigned long long>(HS.FreeListHits));
  Out += support::format(
      "gc: %llu cycles completed\n",
      static_cast<unsigned long long>(Runtime->gc().completedCycles()));

  const mte::MteStats &MS = mte::MteSystem::instance().stats();
  Out += support::format(
      "mte: %llu irg, %llu granules tagged, %llu ldg, %llu sync faults, "
      "%llu/%llu async latched/delivered\n",
      static_cast<unsigned long long>(MS.IrgCount.load()),
      static_cast<unsigned long long>(MS.StgGranules.load()),
      static_cast<unsigned long long>(MS.LdgCount.load()),
      static_cast<unsigned long long>(MS.SyncFaults.load()),
      static_cast<unsigned long long>(MS.AsyncFaultsLatched.load()),
      static_cast<unsigned long long>(MS.AsyncFaultsDelivered.load()));

  if (MtePolicy) {
    const core::TagAllocatorStats &TS = MtePolicy->allocator().stats();
    Out += support::format(
        "mte4jni: %llu acquires (%llu generated / %llu shared), "
        "%llu releases, %llu tags cleared, lock scheme %s, k=%u\n",
        static_cast<unsigned long long>(TS.Acquires.value()),
        static_cast<unsigned long long>(TS.TagsGenerated.value()),
        static_cast<unsigned long long>(TS.TagsShared.value()),
        static_cast<unsigned long long>(TS.Releases.value()),
        static_cast<unsigned long long>(TS.TagsCleared.value()),
        core::lockSchemeName(MtePolicy->allocator().lockScheme()),
        MtePolicy->allocator().table().numTables());
  }
  if (GuardedPolicy) {
    guarded::GuardedCopyStats GS = GuardedPolicy->stats();
    Out += support::format(
        "guarded-copy: %llu acquires, %llu releases, %s copied, "
        "%llu corruptions detected\n",
        static_cast<unsigned long long>(GS.Acquires),
        static_cast<unsigned long long>(GS.Releases),
        support::humanBytes(GS.BytesCopied).c_str(),
        static_cast<unsigned long long>(GS.CorruptionsDetected));
  }
  Out += support::format(
      "faults recorded: %llu\n",
      static_cast<unsigned long long>(
          mte::MteSystem::instance().faultLog().totalCount()));
  return Out;
}

support::MetricsSnapshot Session::metricsSnapshot() const {
  // The registry itself keeps the GC heap-occupancy gauge fresh only at
  // cycle boundaries; refresh it here so a snapshot taken between cycles
  // (or with the background GC off) still reflects the current heap.
  support::Metrics::gauge("rt/heap/bytes_live")
      .set(static_cast<int64_t>(Runtime->heap().stats().BytesLive));
  return support::Metrics::snapshot();
}

bool Session::writeMetricsJson(const std::string &Path) const {
  std::string Json = metricsSnapshot().toJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = std::fclose(F) == 0 && Written == Json.size();
  return Ok;
}

bool Session::writeTraceJson(const std::string &Path) const {
  std::string Json = support::FlightRecorder::exportChromeJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  bool Ok = std::fclose(F) == 0 && Written == Json.size();
  return Ok;
}

} // namespace mte4jni::api

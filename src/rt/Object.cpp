//===- Object.cpp - Mini-ART object model ----------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/Object.h"

namespace mte4jni::rt {

const char *primTypeName(PrimType Type) {
  switch (Type) {
  case PrimType::Boolean:
    return "boolean";
  case PrimType::Byte:
    return "byte";
  case PrimType::Char:
    return "char";
  case PrimType::Short:
    return "short";
  case PrimType::Int:
    return "int";
  case PrimType::Long:
    return "long";
  case PrimType::Float:
    return "float";
  case PrimType::Double:
    return "double";
  }
  return "?";
}

} // namespace mte4jni::rt

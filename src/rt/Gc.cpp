//===- Gc.cpp - Stop-the-world mark-sweep collector --------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/Gc.h"

#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/rt/Runtime.h"
#include "mte4jni/support/Backtrace.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/Syscall.h"
#include "mte4jni/support/TraceEvents.h"

#include <chrono>
#include <unordered_map>
#include <vector>

namespace mte4jni::rt {

namespace {

/// Pause-time composition: where the stop-the-world window actually goes
/// (mark vs sweep vs compact vs the §3.3 verify pass), plus reclaim volume
/// and a live-bytes gauge sampled at the end of each cycle.
struct GcMetrics {
  support::Counter &Cycles = support::Metrics::counter("rt/gc/cycles");
  support::Counter &BytesFreed =
      support::Metrics::counter("rt/gc/bytes_freed");
  support::Counter &ObjectsFreed =
      support::Metrics::counter("rt/gc/objects_freed");
  support::Histogram &CollectNanos =
      support::Metrics::histogram("rt/gc/collect_nanos");
  support::Histogram &MarkNanos =
      support::Metrics::histogram("rt/gc/mark_nanos");
  support::Histogram &SweepNanos =
      support::Metrics::histogram("rt/gc/sweep_nanos");
  support::Histogram &CompactNanos =
      support::Metrics::histogram("rt/gc/compact_nanos");
  support::Histogram &VerifyNanos =
      support::Metrics::histogram("rt/gc/verify_nanos");
  support::Gauge &HeapBytesLive =
      support::Metrics::gauge("rt/heap/bytes_live");
};

GcMetrics &gcMetrics() {
  static GcMetrics M;
  return M;
}

} // namespace

GcController::GcController(Runtime &RT, const GcConfig &Config)
    : RT(RT), Config(Config) {}

GcController::~GcController() { stop(); }

void GcController::start() {
  if (Running.exchange(true))
    return;
  StopRequested.store(false);
  Worker = std::thread([this] { backgroundLoop(); });
}

void GcController::stop() {
  if (!Running.exchange(false))
    return;
  {
    std::lock_guard<std::mutex> Guard(WakeLock);
    StopRequested.store(true);
  }
  WakeCv.notify_all();
  if (Worker.joinable())
    Worker.join();
}

void GcController::backgroundLoop() {
  // The GC is a runtime support thread: its heap pointers are untagged and
  // never pass through JNI. With correct §3.3 TCO handling its checks stay
  // suppressed; the SuppressTagChecks=false configuration reproduces the
  // crash the paper warns about.
  mte::ThreadState::current().setTco(Config.SuppressTagChecks);
  support::ScopedFrame GcFrame("art::gc::ConcurrentGCTask", "libart.so");

  while (!StopRequested.load(std::memory_order_acquire)) {
    collect();
    // Sleeping is a syscall (nanosleep): async faults latched during the
    // verify pass surface here.
    support::syscallBarrier("nanosleep");
    std::unique_lock<std::mutex> Guard(WakeLock);
    WakeCv.wait_for(Guard, std::chrono::milliseconds(Config.IntervalMillis),
                    [this] { return StopRequested.load(); });
  }
}

GcResult GcController::collect() {
  GcResult Result;
  // The collector is runtime-internal code: whatever thread drives it, its
  // heap walks use untagged pointers and must run with the configured TCO
  // (suppressed under correct §3.3 handling; the broken-configuration demo
  // sets SuppressTagChecks=false to reproduce the spurious faults).
  mte::ScopedTco TcoForGc(Config.SuppressTagChecks);
  support::ScopedTrace Trace("GC.collect", "gc");
  GcMetrics &GM = gcMetrics();
  support::ScopedLatency CollectLatency(GM.CollectNanos);
  RT.beginPause();

  // Mark phase: everything TRANSITIVELY reachable from handle-scope
  // roots; reference arrays are traced through their slots.
  uint64_t MarkStart = support::monotonicNanos();
  std::vector<ObjectHeader *> Roots = RT.snapshotRoots();
  RT.heap().forEachObject([&](ObjectHeader *Obj) {
    Obj->setMarked(false);
    ++Result.ObjectsScanned;
  });
  std::vector<ObjectHeader *> Worklist(Roots.begin(), Roots.end());
  while (!Worklist.empty()) {
    ObjectHeader *Obj = Worklist.back();
    Worklist.pop_back();
    if (Obj->isMarked())
      continue;
    Obj->setMarked(true);
    if (Obj->kind() == ObjectKind::RefArray) {
      ObjectHeader **Slots = refArraySlots(Obj);
      for (uint32_t I = 0; I < Obj->Length; ++I)
        if (Slots[I] && !Slots[I]->isMarked())
          Worklist.push_back(Slots[I]);
    }
  }

  GM.MarkNanos.record(support::monotonicNanos() - MarkStart);

  // Sweep phase: free unmarked, unpinned objects.
  uint64_t SweepStart = support::monotonicNanos();
  std::vector<ObjectHeader *> Dead;
  RT.heap().forEachObject([&](ObjectHeader *Obj) {
    if (!Obj->isMarked() && Obj->pinCount() == 0)
      Dead.push_back(Obj);
  });
  for (ObjectHeader *Obj : Dead) {
    Result.BytesFreed += Obj->SizeBytes;
    RT.heap().free(Obj);
    ++Result.ObjectsFreed;
  }
  GM.SweepNanos.record(support::monotonicNanos() - SweepStart);

  // Compaction phase (mark-compact mode): slide survivors toward the
  // heap base; JNI-pinned objects stay in place. Roots are rewritten.
  if (Config.Mode == GcMode::Compacting) {
    support::ScopedLatency CompactLatency(GM.CompactNanos);
    auto Moved = RT.heap().compact();
    Result.ObjectsMoved = Moved.size();
    RT.updateRootsAfterMove(Moved);
    // Reference-array slots hold object pointers too: rewrite them.
    if (!Moved.empty()) {
      std::unordered_map<ObjectHeader *, ObjectHeader *> Map(Moved.begin(),
                                                             Moved.end());
      RT.heap().forEachObject([&](ObjectHeader *Obj) {
        if (Obj->kind() != ObjectKind::RefArray)
          return;
        ObjectHeader **Slots = refArraySlots(Obj);
        for (uint32_t I = 0; I < Obj->Length; ++I) {
          auto It = Map.find(Slots[I]);
          if (It != Map.end())
            Slots[I] = It->second;
        }
      });
    }
    uint64_t Pinned = 0;
    RT.heap().forEachObject([&](ObjectHeader *Obj) {
      if (Obj->pinCount() > 0)
        ++Pinned;
    });
    Result.ObjectsPinnedInPlace = Pinned;
  }

  // Optional verification pass (reads payloads with untagged pointers).
  if (Config.VerifyObjectBodies) {
    support::ScopedLatency VerifyLatency(GM.VerifyNanos);
    Result.ObjectsVerified = 0;
    Result.PayloadBytesVerified = 0;
    verifyPass(Result);
  }

  RT.endPause();
  Cycles.fetch_add(1, std::memory_order_relaxed);
  GM.Cycles.add();
  GM.BytesFreed.add(Result.BytesFreed);
  GM.ObjectsFreed.add(Result.ObjectsFreed);
  GM.HeapBytesLive.set(static_cast<int64_t>(RT.heap().stats().BytesLive));
  return Result;
}

void GcController::verifyPass(GcResult &Result) {
  support::ScopedFrame Frame("art::gc::VerifyHeapReferences", "libart.so");
  support::ScopedTrace Trace("GC.verify", "gc");
  uint8_t Sink = 0;
  RT.heap().forEachObject([&](ObjectHeader *Obj) {
    // Header read (its granule is never tagged: headers are metadata).
    Sink ^= static_cast<uint8_t>(Obj->Length);
    // Payload read through an *untagged* pointer — exactly the access the
    // paper's §3.3 says would fault if this thread's checks were enabled
    // while a native thread holds the object tagged.
    const uint64_t Bytes = Obj->dataBytes();
    auto Ptr = mte::TaggedPtr<const uint8_t>::fromRaw(
        static_cast<const uint8_t *>(Obj->data()), 0);
    uint64_t Step = mte::kGranuleSize;
    for (uint64_t Offset = 0; Offset < Bytes; Offset += Step)
      Sink ^= mte::load<const uint8_t>(Ptr + static_cast<ptrdiff_t>(Offset));
    ++Result.ObjectsVerified;
    Result.PayloadBytesVerified += Bytes;
  });
  VerifySink = Sink;
}

uint64_t GcController::verifyHeap() {
  GcResult Result;
  verifyPass(Result);
  return Result.ObjectsVerified;
}

} // namespace mte4jni::rt

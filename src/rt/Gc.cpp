//===- Gc.cpp - Stop-the-world mark-sweep collector --------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/Gc.h"

#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/rt/Runtime.h"
#include "mte4jni/support/Backtrace.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/SpinLock.h"
#include "mte4jni/support/Syscall.h"
#include "mte4jni/support/ThreadPool.h"
#include "mte4jni/support/TraceEvents.h"
#include "mte4jni/support/TraceRing.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>
#include <vector>

namespace mte4jni::rt {

namespace {

/// Pause-time composition: where the stop-the-world window actually goes
/// (mark vs sweep vs compact vs the §3.3 verify pass), plus reclaim volume
/// and a live-bytes gauge sampled at the end of each cycle.
struct GcMetrics {
  support::Counter &Cycles = support::Metrics::counter("rt/gc/cycles");
  support::Counter &BytesFreed =
      support::Metrics::counter("rt/gc/bytes_freed");
  support::Counter &ObjectsFreed =
      support::Metrics::counter("rt/gc/objects_freed");
  support::Histogram &CollectNanos =
      support::Metrics::histogram("rt/gc/collect_nanos");
  support::Histogram &PauseNanos =
      support::Metrics::histogram("rt/gc/pause_nanos");
  support::Histogram &MarkNanos =
      support::Metrics::histogram("rt/gc/mark_nanos");
  support::Histogram &SweepNanos =
      support::Metrics::histogram("rt/gc/sweep_nanos");
  support::Histogram &CompactNanos =
      support::Metrics::histogram("rt/gc/compact_nanos");
  support::Histogram &VerifyNanos =
      support::Metrics::histogram("rt/gc/verify_nanos");
  support::Gauge &HeapBytesLive =
      support::Metrics::gauge("rt/heap/bytes_live");
  support::Gauge &ParallelWorkers =
      support::Metrics::gauge("rt/gc/parallel_workers");
};

GcMetrics &gcMetrics() {
  static GcMetrics M;
  return M;
}

/// Work-stealing mark tuning: how much of the shared frontier a worker
/// claims per grab, and the local-stack depth past which it spills half
/// back to the shared overflow for other workers to steal.
constexpr size_t kMarkGrabBatch = 32;
constexpr size_t kMarkSpillThreshold = 1024;

/// GC phases are cold (a handful per cycle), so their flight slices are
/// recorded at every observability level except Off — a trace of a bench
/// run always shows the pause composition even under default sampling.
void recordGcPhaseFlight(support::GcFlightPhase Phase, uint64_t StartNanos,
                         uint64_t EndNanos) {
  if (support::obs::coldArmed())
    support::FlightRecorder::record(support::FlightKind::GcPhase,
                                    static_cast<uint8_t>(Phase), 0, StartNanos,
                                    EndNanos - StartNanos);
}

} // namespace

GcController::GcController(Runtime &RT, const GcConfig &Config)
    : RT(RT), Config(Config) {
  Workers = Config.Parallelism != 0
                ? Config.Parallelism
                : static_cast<unsigned>(
                      std::min<size_t>(support::hardwareThreads(), 8));
}

GcController::~GcController() {
  stop();
  Pool.reset();
}

void GcController::start() {
  if (Running.exchange(true))
    return;
  StopRequested.store(false);
  Worker = std::thread([this] { backgroundLoop(); });
}

void GcController::stop() {
  if (!Running.exchange(false))
    return;
  {
    std::lock_guard<std::mutex> Guard(WakeLock);
    StopRequested.store(true);
  }
  WakeCv.notify_all();
  if (Worker.joinable())
    Worker.join();
}

void GcController::backgroundLoop() {
  // The GC is a runtime support thread: its heap pointers are untagged and
  // never pass through JNI. With correct §3.3 TCO handling its checks stay
  // suppressed; the SuppressTagChecks=false configuration reproduces the
  // crash the paper warns about.
  mte::ThreadState::current().setTco(Config.SuppressTagChecks);
  support::ScopedFrame GcFrame("art::gc::ConcurrentGCTask", "libart.so");
  support::FlightRecorder::setThreadLabel("gc-background");

  while (!StopRequested.load(std::memory_order_acquire)) {
    collect();
    // Sleeping is a syscall (nanosleep): async faults latched during the
    // verify pass surface here.
    support::syscallBarrier("nanosleep");
    std::unique_lock<std::mutex> Guard(WakeLock);
    WakeCv.wait_for(Guard, std::chrono::milliseconds(Config.IntervalMillis),
                    [this] { return StopRequested.load(); });
  }
}

void GcController::runStriped(unsigned NumStripes,
                              const std::function<void(size_t)> &Body) {
  if (Workers <= 1 || NumStripes <= 1) {
    for (unsigned I = 0; I < NumStripes; ++I)
      Body(I);
    return;
  }
  // Lazily created: a Parallelism>1 controller that never collects (or a
  // heap too small to matter) pays no worker threads. collect() bodies are
  // serialised by the world pause, so creation is race-free.
  if (!Pool)
    Pool = std::make_unique<support::ThreadPool>(Workers, "gc-worker");
  Pool->parallelFor(NumStripes, Body);
}

uint64_t GcController::clearMarks() {
  // Bitmap-segment striping: each stripe owns a disjoint word range, so
  // workers never touch the same object.
  unsigned Stripes = Workers <= 1 ? 1 : Workers * 4;
  std::atomic<uint64_t> Total{0};
  runStriped(Stripes, [&](size_t Stripe) {
    uint64_t Local = 0;
    RT.heap().forEachObjectShard(
        static_cast<unsigned>(Stripe), Stripes, [&](ObjectHeader *Obj) {
          Obj->setMarked(false);
          ++Local;
        });
    Total.fetch_add(Local, std::memory_order_relaxed);
  });
  return Total.load(std::memory_order_relaxed);
}

void GcController::markFromRoots(std::vector<ObjectHeader *> Roots) {
  if (Workers <= 1 || Roots.size() < 2) {
    // Single-threaded ablation path (and the trivial-root fast case).
    std::vector<ObjectHeader *> Worklist(std::move(Roots));
    while (!Worklist.empty()) {
      ObjectHeader *Obj = Worklist.back();
      Worklist.pop_back();
      if (!Obj || !Obj->tryMark())
        continue;
      if (Obj->kind() == ObjectKind::RefArray) {
        ObjectHeader **Slots = refArraySlots(Obj);
        for (uint32_t I = 0; I < Obj->Length; ++I)
          if (Slots[I] && !Slots[I]->isMarked())
            Worklist.push_back(Slots[I]);
      }
    }
    return;
  }

  // Parallel tracing in rounds: workers grab batches of the shared
  // frontier (root partitioning via an atomic cursor), trace into a local
  // stack, and spill half of an overgrown stack to a shared overflow that
  // seeds the next round — work stealing through the spill. tryMark is the
  // claim: exactly one worker traces each object's children, and marks
  // only ever go 0->1 during this phase, so the rounds terminate.
  std::vector<ObjectHeader *> Frontier(std::move(Roots));
  std::vector<ObjectHeader *> Overflow;
  support::SpinLock OverflowLock;
  while (!Frontier.empty()) {
    std::atomic<size_t> Cursor{0};
    runStriped(Workers, [&](size_t) {
      std::vector<ObjectHeader *> Local;
      for (;;) {
        if (Local.empty()) {
          size_t Begin =
              Cursor.fetch_add(kMarkGrabBatch, std::memory_order_relaxed);
          if (Begin >= Frontier.size())
            break;
          size_t End = std::min(Begin + kMarkGrabBatch, Frontier.size());
          Local.insert(Local.end(), Frontier.begin() + Begin,
                       Frontier.begin() + End);
        }
        while (!Local.empty()) {
          ObjectHeader *Obj = Local.back();
          Local.pop_back();
          if (!Obj || !Obj->tryMark())
            continue;
          if (Obj->kind() == ObjectKind::RefArray) {
            ObjectHeader **Slots = refArraySlots(Obj);
            for (uint32_t I = 0; I < Obj->Length; ++I)
              if (Slots[I] && !Slots[I]->isMarked())
                Local.push_back(Slots[I]);
          }
          if (Local.size() > kMarkSpillThreshold) {
            std::lock_guard<support::SpinLock> Guard(OverflowLock);
            Overflow.insert(Overflow.end(),
                            Local.begin() + Local.size() / 2, Local.end());
            Local.resize(Local.size() / 2);
          }
        }
      }
    });
    Frontier.clear();
    Frontier.swap(Overflow);
  }
}

void GcController::sweep(GcResult &Result) {
  // Striped over disjoint bitmap segments; JavaHeap::free is thread-safe
  // and each worker pushes reclaimed blocks onto its own free-list shard.
  unsigned Stripes = Workers <= 1 ? 1 : Workers * 4;
  std::atomic<uint64_t> FreedObjects{0}, FreedBytes{0};
  runStriped(Stripes, [&](size_t Stripe) {
    uint64_t Objects = 0, Bytes = 0;
    RT.heap().forEachObjectShard(
        static_cast<unsigned>(Stripe), Stripes, [&](ObjectHeader *Obj) {
          if (Obj->isMarked() || Obj->pinCount() > 0)
            return;
          Bytes += Obj->SizeBytes;
          ++Objects;
          // free() fires the heap's freed-range hook, which reclaims any
          // lingering (deferred tag-clear) tags on the payload — a swept
          // object must never keep a valid granule tag, or a dangling
          // native pointer into it would still pass the check.
          RT.heap().free(Obj);
        });
    FreedObjects.fetch_add(Objects, std::memory_order_relaxed);
    FreedBytes.fetch_add(Bytes, std::memory_order_relaxed);
  });
  Result.ObjectsFreed += FreedObjects.load(std::memory_order_relaxed);
  Result.BytesFreed += FreedBytes.load(std::memory_order_relaxed);
}

GcResult GcController::collect() {
  GcResult Result;
  // The collector is runtime-internal code: whatever thread drives it, its
  // heap walks use untagged pointers and must run with the configured TCO
  // (suppressed under correct §3.3 handling; the broken-configuration demo
  // sets SuppressTagChecks=false to reproduce the spurious faults).
  // Parallel phase workers read only headers (mark/sweep never touch
  // payloads), so they need no TCO setup of their own.
  mte::ScopedTco TcoForGc(Config.SuppressTagChecks);
  support::ScopedTrace Trace("GC.collect", "gc");
  GcMetrics &GM = gcMetrics();
  uint64_t CollectStart = support::monotonicNanos();
  // The stop-the-world window: from the pause *request* (mutators may be
  // blocked from here on) until endPause releases them. This is the number
  // a tenant's tail latency actually pays, so it is exported both as the
  // rt/gc/pause_nanos histogram and as a GC.pause flight slice on this
  // thread's lane (gc-background for the background collector).
  uint64_t PauseStart = CollectStart;
  RT.beginPause();
  GM.ParallelWorkers.set(Workers);

  // Mark phase: everything TRANSITIVELY reachable from handle-scope
  // roots; reference arrays are traced through their slots.
  uint64_t MarkStart = support::monotonicNanos();
  std::vector<ObjectHeader *> Roots = RT.snapshotRoots();
  Result.ObjectsScanned = clearMarks();
  markFromRoots(std::move(Roots));
  uint64_t MarkEnd = support::monotonicNanos();
  GM.MarkNanos.record(MarkEnd - MarkStart);
  recordGcPhaseFlight(support::GcFlightPhase::Mark, MarkStart, MarkEnd);

  // Sweep phase: free unmarked, unpinned objects.
  uint64_t SweepStart = support::monotonicNanos();
  sweep(Result);
  uint64_t SweepEnd = support::monotonicNanos();
  GM.SweepNanos.record(SweepEnd - SweepStart);
  recordGcPhaseFlight(support::GcFlightPhase::Sweep, SweepStart, SweepEnd);

  // Compaction phase (mark-compact mode): slide survivors toward the
  // heap base; JNI-pinned objects stay in place. Roots are rewritten.
  if (Config.Mode == GcMode::Compacting) {
    uint64_t CompactStart = support::monotonicNanos();
    auto Moved = RT.heap().compact();
    Result.ObjectsMoved = Moved.size();
    RT.updateRootsAfterMove(Moved);
    // Reference-array slots hold object pointers too: rewrite them. Each
    // stripe owns disjoint objects, so the rewrites never race.
    unsigned Stripes = Workers <= 1 ? 1 : Workers * 4;
    std::atomic<uint64_t> Pinned{0};
    std::unordered_map<ObjectHeader *, ObjectHeader *> Map(Moved.begin(),
                                                           Moved.end());
    runStriped(Stripes, [&](size_t Stripe) {
      uint64_t LocalPinned = 0;
      RT.heap().forEachObjectShard(
          static_cast<unsigned>(Stripe), Stripes, [&](ObjectHeader *Obj) {
            if (Obj->pinCount() > 0)
              ++LocalPinned;
            if (Map.empty() || Obj->kind() != ObjectKind::RefArray)
              return;
            ObjectHeader **Slots = refArraySlots(Obj);
            for (uint32_t I = 0; I < Obj->Length; ++I) {
              auto It = Map.find(Slots[I]);
              if (It != Map.end())
                Slots[I] = It->second;
            }
          });
      Pinned.fetch_add(LocalPinned, std::memory_order_relaxed);
    });
    Result.ObjectsPinnedInPlace = Pinned.load(std::memory_order_relaxed);
    uint64_t CompactEnd = support::monotonicNanos();
    GM.CompactNanos.record(CompactEnd - CompactStart);
    recordGcPhaseFlight(support::GcFlightPhase::Compact, CompactStart,
                        CompactEnd);
  }

  // Optional verification pass (reads payloads with untagged pointers).
  if (Config.VerifyObjectBodies) {
    uint64_t VerifyStart = support::monotonicNanos();
    Result.ObjectsVerified = 0;
    Result.PayloadBytesVerified = 0;
    verifyPass(Result);
    uint64_t VerifyEnd = support::monotonicNanos();
    GM.VerifyNanos.record(VerifyEnd - VerifyStart);
    recordGcPhaseFlight(support::GcFlightPhase::Verify, VerifyStart,
                        VerifyEnd);
  }

  RT.endPause();
  uint64_t PauseEnd = support::monotonicNanos();
  GM.PauseNanos.record(PauseEnd - PauseStart);
  recordGcPhaseFlight(support::GcFlightPhase::Pause, PauseStart, PauseEnd);
  Cycles.fetch_add(1, std::memory_order_relaxed);
  GM.Cycles.add();
  GM.BytesFreed.add(Result.BytesFreed);
  GM.ObjectsFreed.add(Result.ObjectsFreed);
  GM.HeapBytesLive.set(static_cast<int64_t>(RT.heap().stats().BytesLive));
  uint64_t CollectEnd = support::monotonicNanos();
  GM.CollectNanos.record(CollectEnd - CollectStart);
  recordGcPhaseFlight(support::GcFlightPhase::Collect, CollectStart,
                      CollectEnd);
  return Result;
}

void GcController::verifyPass(GcResult &Result) {
  support::ScopedFrame Frame("art::gc::VerifyHeapReferences", "libart.so");
  support::ScopedTrace Trace("GC.verify", "gc");
  uint8_t Sink = 0;
  RT.heap().forEachObject([&](ObjectHeader *Obj) {
    // Header read (its granule is never tagged: headers are metadata).
    Sink ^= static_cast<uint8_t>(Obj->Length);
    // Payload read through an *untagged* pointer — exactly the access the
    // paper's §3.3 says would fault if this thread's checks were enabled
    // while a native thread holds the object tagged.
    const uint64_t Bytes = Obj->dataBytes();
    auto Ptr = mte::TaggedPtr<const uint8_t>::fromRaw(
        static_cast<const uint8_t *>(Obj->data()), 0);
    uint64_t Step = mte::kGranuleSize;
    for (uint64_t Offset = 0; Offset < Bytes; Offset += Step)
      Sink ^= mte::load<const uint8_t>(Ptr + static_cast<ptrdiff_t>(Offset));
    ++Result.ObjectsVerified;
    Result.PayloadBytesVerified += Bytes;
  });
  VerifySink = Sink;
}

uint64_t GcController::verifyHeap() {
  GcResult Result;
  verifyPass(Result);
  return Result.ObjectsVerified;
}

} // namespace mte4jni::rt

//===- JavaThread.cpp - Mini-ART thread states ------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/JavaThread.h"

#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/rt/Runtime.h"

namespace mte4jni::rt {
namespace {
thread_local JavaThread *CurrentThread = nullptr;
} // namespace

JavaThread *JavaThread::currentOrNull() { return CurrentThread; }

JavaThread &JavaThread::current() {
  M4J_ASSERT(CurrentThread != nullptr, "thread not attached to the runtime");
  return *CurrentThread;
}

JavaThread::JavaThread(Runtime &RT, std::string Name, ThreadKind Kind)
    : RT(RT), Name(std::move(Name)), Kind(Kind) {
  CurrentThread = this;
  if (RT.config().TagChecksInNative) {
    // Under the MTE4JNI schemes every attached thread starts with TCO set:
    // managed code and support threads must not be tag-checked. Only the
    // native-method trampolines clear it (§3.3).
    mte::ThreadState::current().setTco(true);
  }
}

JavaThread::~JavaThread() {
  // Clear the TLS slot when the thread detaches itself; when the runtime
  // tears down leftover threads from another thread, leave that thread's
  // slot alone.
  if (CurrentThread == this)
    CurrentThread = nullptr;
}

void JavaThread::transitionToNative() {
  M4J_ASSERT(State == JavaThreadState::Runnable,
             "nested native transition");
  State = JavaThreadState::InNative;
  // §4.3: for regular native methods the TCO toggle is inserted inside the
  // thread state transition function.
  if (RT.config().TagChecksInNative)
    mte::ThreadState::current().setTco(false); // enable tag checks
}

void JavaThread::transitionToRunnable() {
  M4J_ASSERT(State == JavaThreadState::InNative,
             "transitionToRunnable outside native");
  if (RT.config().TagChecksInNative)
    mte::ThreadState::current().setTco(true); // suppress tag checks again
  State = JavaThreadState::Runnable;
}

} // namespace mte4jni::rt

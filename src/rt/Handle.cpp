//===- Handle.cpp - GC root scopes --------------------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/Handle.h"

#include "mte4jni/rt/Runtime.h"

#include <algorithm>

namespace mte4jni::rt {

HandleScope::HandleScope(Runtime &RT) : RT(RT) { RT.registerScope(this); }

HandleScope::~HandleScope() { RT.unregisterScope(this); }

void HandleScope::unroot(ObjectHeader *Obj) {
  auto It = std::find(Roots.begin(), Roots.end(), Obj);
  if (It != Roots.end())
    Roots.erase(It);
}

} // namespace mte4jni::rt

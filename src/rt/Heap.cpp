//===- Heap.cpp - Mini-ART Java heap allocator -----------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/Heap.h"

#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/Tag.h"

#include <algorithm>
#include <cstring>
#include <vector>

namespace mte4jni::rt {

JavaHeap::JavaHeap(const HeapConfig &Config) : Config(Config) {
  M4J_ASSERT(Config.Alignment == 8 || Config.Alignment == 16,
             "heap alignment must be 8 (stock ART) or 16 (MTE4JNI)");
  M4J_ASSERT(!Config.TagOnAlloc ||
                 (Config.ProtMte && Config.Alignment == 16),
             "TagOnAlloc requires a PROT_MTE heap with 16-byte alignment");
  this->Config.CapacityBytes =
      support::alignTo(Config.CapacityBytes, mte::kGranuleSize);
  Storage.reset(new uint8_t[this->Config.CapacityBytes + mte::kGranuleSize]);
  Base = support::alignTo(reinterpret_cast<uint64_t>(Storage.get()),
                          mte::kGranuleSize);
  if (Config.ProtMte)
    mte::MteSystem::instance().registerRegion(
        reinterpret_cast<void *>(Base), this->Config.CapacityBytes);
}

JavaHeap::~JavaHeap() {
  if (Config.ProtMte)
    mte::MteSystem::instance().unregisterRegion(
        reinterpret_cast<void *>(Base));
}

ObjectHeader *JavaHeap::allocObject(uint32_t ClassWord, uint32_t Length,
                                    uint64_t PayloadBytes) {
  uint64_t Size = support::alignTo(sizeof(ObjectHeader) + PayloadBytes,
                                   Config.Alignment);
  if (Size > UINT32_MAX)
    return nullptr;

  std::lock_guard<std::mutex> Guard(Lock);
  uint64_t Addr = 0;
  auto It = FreeLists.find(Size);
  if (It != FreeLists.end() && !It->second.empty()) {
    Addr = It->second.back();
    It->second.pop_back();
    ++Stats.FreeListHits;
  } else {
    uint64_t Aligned = support::alignTo(Base + BumpOffset, Config.Alignment);
    if (Aligned + Size > Base + Config.CapacityBytes)
      return nullptr; // OutOfMemoryError territory
    Addr = Aligned;
    BumpOffset = (Aligned + Size) - Base;
  }

  auto *Obj = reinterpret_cast<ObjectHeader *>(Addr);
  Obj->ClassWord = ClassWord;
  Obj->Length = Length;
  Obj->SizeBytes = static_cast<uint32_t>(Size);
  Obj->Flags = 0;
  std::memset(Obj->data(), 0, Size - sizeof(ObjectHeader));

  // Tag-on-allocation ablation: colour the payload now, once, for the
  // object's whole lifetime.
  if (Config.TagOnAlloc && Size > sizeof(ObjectHeader)) {
    auto Tagged = mte::irg(mte::TaggedPtr<void>::fromRaw(Obj->data(), 0));
    mte::setTagRange(Tagged, Size - sizeof(ObjectHeader));
  }

  LiveObjects.insert(Obj);
  Stats.BytesAllocated += Size;
  Stats.BytesLive += Size;
  ++Stats.ObjectsAllocated;
  ++Stats.ObjectsLive;
  return Obj;
}

ObjectHeader *JavaHeap::allocPrimArray(PrimType Elem, uint32_t Length) {
  return allocObject(makeClassWord(ObjectKind::PrimArray, Elem), Length,
                     static_cast<uint64_t>(Length) * primSize(Elem));
}

ObjectHeader *JavaHeap::allocString(uint32_t Length) {
  return allocObject(makeClassWord(ObjectKind::String, PrimType::Char),
                     Length, static_cast<uint64_t>(Length) * 2);
}

ObjectHeader *JavaHeap::allocRefArray(uint32_t Length) {
  return allocObject(makeClassWord(ObjectKind::RefArray, PrimType::Long),
                     Length,
                     static_cast<uint64_t>(Length) * sizeof(ObjectHeader *));
}

void JavaHeap::free(ObjectHeader *Obj) {
  std::lock_guard<std::mutex> Guard(Lock);
  auto It = LiveObjects.find(Obj);
  M4J_ASSERT(It != LiveObjects.end(), "freeing unknown object");
  LiveObjects.erase(It);
  uint64_t Size = Obj->SizeBytes;
  Stats.BytesLive -= Size;
  --Stats.ObjectsLive;
  ++Stats.ObjectsFreed;
  if (Config.TagOnAlloc && Size > sizeof(ObjectHeader))
    mte::clearTagRange(Obj->dataAddress(), Size - sizeof(ObjectHeader));
  // Poison the header so stale references are recognisable in tests.
  Obj->ClassWord = 0xDEADDEAD;
  FreeLists[Size].push_back(reinterpret_cast<uint64_t>(Obj));
}

std::vector<std::pair<ObjectHeader *, ObjectHeader *>> JavaHeap::compact() {
  std::lock_guard<std::mutex> Guard(Lock);

  // Live objects in address order.
  std::vector<ObjectHeader *> Sorted(LiveObjects.begin(), LiveObjects.end());
  std::sort(Sorted.begin(), Sorted.end());

  std::vector<std::pair<ObjectHeader *, ObjectHeader *>> Moved;
  uint64_t Cursor = Base;
  for (ObjectHeader *Obj : Sorted) {
    uint64_t Size = Obj->SizeBytes;
    if (Obj->pinCount() > 0) {
      // Pinned by JNI: native code holds a raw pointer; must not move.
      // The compaction cursor jumps over it.
      Cursor = std::max(Cursor,
                        reinterpret_cast<uint64_t>(Obj) + Size);
      continue;
    }
    uint64_t Target = support::alignTo(Cursor, Config.Alignment);
    if (Target >= reinterpret_cast<uint64_t>(Obj)) {
      // Already packed (or a pinned object blocks any gain).
      Cursor = reinterpret_cast<uint64_t>(Obj) + Size;
      continue;
    }
    std::memmove(reinterpret_cast<void *>(Target), Obj, Size);
    auto *NewObj = reinterpret_cast<ObjectHeader *>(Target);
    Moved.emplace_back(Obj, NewObj);
    Cursor = Target + Size;
  }

  // Rebuild the liveness index and reset the allocation frontier: all
  // fragmentation is gone, so the free lists die too.
  for (auto &[Old, New] : Moved) {
    LiveObjects.erase(Old);
    LiveObjects.insert(New);
  }
  // The frontier is one past the highest live byte.
  uint64_t Frontier = Base;
  for (ObjectHeader *Obj : LiveObjects)
    Frontier = std::max(Frontier,
                        reinterpret_cast<uint64_t>(Obj) + Obj->SizeBytes);
  BumpOffset = Frontier - Base;
  FreeLists.clear();
  return Moved;
}

void JavaHeap::forEachObject(
    const std::function<void(ObjectHeader *)> &Fn) {
  std::lock_guard<std::mutex> Guard(Lock);
  for (ObjectHeader *Obj : LiveObjects)
    Fn(Obj);
}

bool JavaHeap::isLiveObject(ObjectHeader *Ptr) const {
  std::lock_guard<std::mutex> Guard(Lock);
  return LiveObjects.count(Ptr) != 0;
}

HeapStats JavaHeap::stats() const {
  std::lock_guard<std::mutex> Guard(Lock);
  return Stats;
}

} // namespace mte4jni::rt

//===- Heap.cpp - Mini-ART Java heap allocator -----------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/Heap.h"

#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/Tag.h"
#include "mte4jni/support/TraceRing.h"

#include <algorithm>
#include <bit>
#include <cstring>
#include <vector>

namespace mte4jni::rt {

namespace {

/// Allocation-pipeline composition: how often the TLAB bump wins, how often
/// it refills, and how often an allocation bypasses it entirely (big
/// objects, overflow-shard threads, TlabBytes=0). Free-list reuse is
/// tracked in HeapStats (per heap); these are process-wide rates.
struct HeapMetrics {
  support::Counter &TlabHit = support::Metrics::counter("rt/heap/tlab_hit");
  support::Counter &TlabRefill =
      support::Metrics::counter("rt/heap/tlab_refill");
  support::Counter &TlabFallback =
      support::Metrics::counter("rt/heap/tlab_fallback");
  support::Counter &FreeListSteal =
      support::Metrics::counter("rt/heap/freelist_steal");
  support::Gauge &BitmapBytes =
      support::Metrics::gauge("rt/heap/bitmap_bytes");
  /// Why an allocation left the TLAB bump path (fast-path attribution):
  /// refill = normal TLAB exhaustion; big_object = Size * 4 > TlabBytes;
  /// tlab_off = TlabBytes 0 or non-TLAB pipeline; overflow_shard = more
  /// live threads than shards; frontier_exhausted = the bump frontier ran
  /// out and the free lists were scavenged.
  support::Counter &SlowRefill =
      support::Metrics::counter("rt/heap/tlab_slow_reason/refill");
  support::Counter &SlowBigObject =
      support::Metrics::counter("rt/heap/tlab_slow_reason/big_object");
  support::Counter &SlowTlabOff =
      support::Metrics::counter("rt/heap/tlab_slow_reason/tlab_off");
  support::Counter &SlowOverflowShard =
      support::Metrics::counter("rt/heap/tlab_slow_reason/overflow_shard");
  support::Counter &SlowFrontierExhausted = support::Metrics::counter(
      "rt/heap/tlab_slow_reason/frontier_exhausted");
};

HeapMetrics &heapMetrics() {
  static HeapMetrics M;
  return M;
}

} // namespace

JavaHeap::JavaHeap(const HeapConfig &Config) : Config(Config) {
  M4J_ASSERT(Config.Alignment == 8 || Config.Alignment == 16,
             "heap alignment must be 8 (stock ART) or 16 (MTE4JNI)");
  M4J_ASSERT(!Config.TagOnAlloc ||
                 (Config.ProtMte && Config.Alignment == 16),
             "TagOnAlloc requires a PROT_MTE heap with 16-byte alignment");
  this->Config.CapacityBytes =
      support::alignTo(Config.CapacityBytes, mte::kGranuleSize);
  Storage.reset(new uint8_t[this->Config.CapacityBytes + mte::kGranuleSize]);
  Base = support::alignTo(reinterpret_cast<uint64_t>(Storage.get()),
                          mte::kGranuleSize);
  AlignShift = Config.Alignment == 16 ? 4 : 3;

  // One bit per alignment granule: 1/64th (align 8) or 1/128th (align 16)
  // of the arena. Value-initialised to all-dead.
  NumBitWords = ((this->Config.CapacityBytes >> AlignShift) + 63) / 64;
  LiveBits.reset(new std::atomic<uint64_t>[NumBitWords]());
  heapMetrics().BitmapBytes.set(static_cast<int64_t>(NumBitWords * 8));

  Tlabs.reset(new Tlab[kNumShards]);
  FreeShards.reset(new FreeShard[kNumShards]);
  StatShards.reset(new StatShard[kNumShards]);

  // Clamp the TLAB so tiny test heaps (4 KiB OOM fixtures) are not eaten
  // by the first refill.
  if (Config.Pipeline == AllocPipeline::Tlab && Config.TlabBytes != 0)
    EffTlabBytes = support::alignTo(
        std::min<uint64_t>(Config.TlabBytes,
                           std::max<uint64_t>(this->Config.CapacityBytes / 16,
                                              mte::kGranuleSize)),
        Config.Alignment);

  if (Config.ProtMte)
    mte::MteSystem::instance().registerRegion(
        reinterpret_cast<void *>(Base), this->Config.CapacityBytes);
}

JavaHeap::~JavaHeap() {
  if (Config.ProtMte)
    mte::MteSystem::instance().unregisterRegion(
        reinterpret_cast<void *>(Base));
}

void JavaHeap::setLiveBit(uint64_t Addr, std::memory_order Order) {
  uint64_t Idx = bitIndexOf(Addr);
  LiveBits[Idx >> 6].fetch_or(uint64_t(1) << (Idx & 63), Order);
}

void JavaHeap::clearLiveBit(uint64_t Addr) {
  uint64_t Idx = bitIndexOf(Addr);
  uint64_t Bit = uint64_t(1) << (Idx & 63);
  uint64_t Prev = LiveBits[Idx >> 6].fetch_and(~Bit,
                                               std::memory_order_acq_rel);
  M4J_ASSERT(Prev & Bit, "freeing unknown object");
  (void)Prev;
}

uint64_t JavaHeap::carveLocked(uint64_t Bytes) {
  uint64_t Aligned = support::alignTo(
      Base + BumpOffset.load(std::memory_order_relaxed), Config.Alignment);
  if (Aligned + Bytes > Base + Config.CapacityBytes)
    return 0;
  BumpOffset.store((Aligned + Bytes) - Base, std::memory_order_release);
  return Aligned;
}

uint64_t JavaHeap::takeFromShard(FreeShard &FS, uint64_t Size) {
  std::lock_guard<support::SpinLock> Guard(FS.Lock);
  if (FS.Count.load(std::memory_order_relaxed) == 0)
    return 0;
  std::vector<uint64_t> *List = nullptr;
  uint64_t Class = Size >> AlignShift;
  if (Class < kNumSmallClasses) {
    if (!FS.Small[Class].empty())
      List = &FS.Small[Class];
  } else {
    auto It = FS.Large.find(Size);
    if (It != FS.Large.end() && !It->second.empty())
      List = &It->second;
  }
  if (!List)
    return 0;
  uint64_t Addr = List->back();
  List->pop_back();
  FS.Count.fetch_sub(1, std::memory_order_relaxed);
  return Addr;
}

void JavaHeap::pushToShard(FreeShard &FS, uint64_t Size, uint64_t Addr) {
  std::lock_guard<support::SpinLock> Guard(FS.Lock);
  uint64_t Class = Size >> AlignShift;
  if (Class < kNumSmallClasses)
    FS.Small[Class].push_back(Addr);
  else
    FS.Large[Size].push_back(Addr);
  FS.Count.fetch_add(1, std::memory_order_relaxed);
}

uint64_t JavaHeap::allocSlow(uint64_t Size, unsigned Shard,
                             bool &FreeListHit) {
  // TLAB-worthy sizes refill the shard's buffer; big objects, TlabBytes=0
  // and overflow-shard threads carve exactly what they need.
  bool Refill = Shard != kOverflowShard && EffTlabBytes != 0 &&
                Size * 4 <= EffTlabBytes;
  HeapMetrics &HM = heapMetrics();
  if (Shard == kOverflowShard)
    HM.SlowOverflowShard.add();
  else if (EffTlabBytes == 0)
    HM.SlowTlabOff.add();
  else if (Size * 4 > EffTlabBytes)
    HM.SlowBigObject.add();
  else
    HM.SlowRefill.add();
  if (Refill) {
    uint64_t TlabStart = 0, TlabEnd = 0;
    {
      std::lock_guard<std::mutex> Guard(RefillLock);
      uint64_t Aligned = support::alignTo(
          Base + BumpOffset.load(std::memory_order_relaxed),
          Config.Alignment);
      uint64_t Limit = Base + Config.CapacityBytes;
      uint64_t Avail = Aligned < Limit ? Limit - Aligned : 0;
      uint64_t Take = std::min<uint64_t>(EffTlabBytes, Avail);
      if (Take >= Size) {
        BumpOffset.store((Aligned + Take) - Base, std::memory_order_release);
        TlabStart = Aligned;
        TlabEnd = Aligned + Take;
      }
    }
    if (TlabStart) {
      heapMetrics().TlabRefill.add();
      // TLAB refills are cold: always in the flight ring unless Off.
      if (support::obs::coldArmed())
        support::FlightRecorder::record(
            support::FlightKind::TlabRefill, 0,
            static_cast<uint32_t>(TlabEnd - TlabStart),
            support::monotonicNanos(), 0);
      // Bulk-scrub the whole buffer's colours in ONE st2g-style range
      // write, so per-object tagging from this TLAB never pays a
      // stale-tag cleanup (allocation-time tag cost amortises over the
      // refill, cf. the batching result in PAPERS.md). With the
      // two-level store this also publishes Uniform(0) summaries for
      // every line the TLAB covers in O(lines), which is what keeps
      // later bulk checks over fresh buffers on the summary fast path.
      if (Config.TagOnAlloc)
        mte::clearTagRange(TlabStart, TlabEnd - TlabStart);
      Tlab &T = Tlabs[Shard];
      T.Cur.store(TlabStart + Size, std::memory_order_relaxed);
      T.End.store(TlabEnd, std::memory_order_relaxed);
      return TlabStart;
    }
  } else {
    uint64_t Addr;
    {
      std::lock_guard<std::mutex> Guard(RefillLock);
      Addr = carveLocked(Size);
    }
    if (Addr) {
      heapMetrics().TlabFallback.add();
      return Addr;
    }
  }

  // Frontier exhausted: scavenge an exact-size block from ANY shard's free
  // list before conceding OutOfMemoryError.
  HM.SlowFrontierExhausted.add();
  for (unsigned I = 0; I < kNumShards; ++I) {
    unsigned Victim = (Shard + I) % kNumShards;
    if (FreeShards[Victim].Count.load(std::memory_order_relaxed) == 0)
      continue;
    if (uint64_t Addr = takeFromShard(FreeShards[Victim], Size)) {
      FreeListHit = true;
      if (Victim != Shard)
        heapMetrics().FreeListSteal.add();
      return Addr;
    }
  }
  return 0;
}

ObjectHeader *JavaHeap::finishAlloc(uint64_t Addr, uint32_t ClassWord,
                                    uint32_t Length, uint64_t Size,
                                    unsigned Shard, bool FreeListHit) {
  auto *Obj = reinterpret_cast<ObjectHeader *>(Addr);
  Obj->ClassWord = ClassWord;
  Obj->Length = Length;
  Obj->SizeBytes = static_cast<uint32_t>(Size);
  Obj->Flags = 0;
  std::memset(Obj->data(), 0, Size - sizeof(ObjectHeader));

  // Tag-on-allocation ablation: colour the payload now, once, for the
  // object's whole lifetime. Lock-free under the Tlab pipeline: the block
  // is thread-exclusive until the liveness bit below publishes it.
  if (Config.TagOnAlloc && Size > sizeof(ObjectHeader)) {
    auto Tagged = mte::irg(mte::TaggedPtr<void>::fromRaw(Obj->data(), 0));
    mte::setTagRange(Tagged, Size - sizeof(ObjectHeader));
  }

  // Publish: release so a lock-free isLiveObject/forEachObject that sees
  // the bit also sees the initialised header.
  setLiveBit(Addr, std::memory_order_release);

  StatShard &St = StatShards[Shard];
  statAdd(St.BytesAllocated, static_cast<int64_t>(Size), Shard);
  statAdd(St.BytesLive, static_cast<int64_t>(Size), Shard);
  statAdd(St.ObjectsAllocated, 1, Shard);
  statAdd(St.ObjectsLive, 1, Shard);
  if (FreeListHit)
    statAdd(St.FreeListHits, 1, Shard);
  return Obj;
}

ObjectHeader *JavaHeap::allocObject(uint32_t ClassWord, uint32_t Length,
                                    uint64_t PayloadBytes) {
  uint64_t Size = support::alignTo(sizeof(ObjectHeader) + PayloadBytes,
                                   Config.Alignment);
  if (Size > UINT32_MAX)
    return nullptr;

  static support::Histogram &AllocNanos =
      support::Metrics::histogram("rt/heap/alloc_nanos");
  support::SampledLatency Lat(AllocNanos);

  unsigned Shard = support::detail::metricShard();

  if (M4J_UNLIKELY(Config.Pipeline == AllocPipeline::GlobalLock)) {
    // Ablation baseline: the seed allocator's serialisation, data
    // structures AND critical-section extent — one mutex held across the
    // ordered free-list lookup, the std::set liveness insert, header
    // init, the payload memset and the TagOnAlloc colouring.
    std::lock_guard<std::mutex> Guard(RefillLock);
    uint64_t Addr = 0;
    bool FreeListHit = false;
    auto It = SeedFree.find(Size);
    if (It != SeedFree.end() && !It->second.empty()) {
      Addr = It->second.back();
      It->second.pop_back();
      FreeListHit = true;
    } else {
      Addr = carveLocked(Size);
    }
    if (!Addr)
      return nullptr; // OutOfMemoryError territory
    SeedLive.insert(Addr);
    return finishAlloc(Addr, ClassWord, Length, Size, Shard, FreeListHit);
  }

  // Fast path: same-size reuse from the home shard (kept ahead of the
  // TLAB so a free-then-realloc round trip returns the same address,
  // like the seed allocator), then the TLAB bump. The reuse check is
  // one relaxed load when the shard is empty.
  uint64_t Addr = 0;
  bool FreeListHit = false;
  FreeShard &FS = FreeShards[Shard];
  if (M4J_UNLIKELY(FS.Count.load(std::memory_order_relaxed) != 0)) {
    Addr = takeFromShard(FS, Size);
    FreeListHit = Addr != 0;
  }
  if (!Addr) {
    if (M4J_LIKELY(Shard != kOverflowShard)) {
      Tlab &T = Tlabs[Shard];
      uint64_t Cur = T.Cur.load(std::memory_order_relaxed);
      uint64_t End = T.End.load(std::memory_order_relaxed);
      if (M4J_LIKELY(Cur != 0 && Size <= End - Cur)) {
        T.Cur.store(Cur + Size, std::memory_order_relaxed);
        Addr = Cur;
        heapMetrics().TlabHit.add();
      }
    }
    if (!Addr)
      Addr = allocSlow(Size, Shard, FreeListHit);
  }
  if (!Addr)
    return nullptr; // OutOfMemoryError territory
  return finishAlloc(Addr, ClassWord, Length, Size, Shard, FreeListHit);
}

ObjectHeader *JavaHeap::allocPrimArray(PrimType Elem, uint32_t Length) {
  return allocObject(makeClassWord(ObjectKind::PrimArray, Elem), Length,
                     static_cast<uint64_t>(Length) * primSize(Elem));
}

ObjectHeader *JavaHeap::allocString(uint32_t Length) {
  return allocObject(makeClassWord(ObjectKind::String, PrimType::Char),
                     Length, static_cast<uint64_t>(Length) * 2);
}

ObjectHeader *JavaHeap::allocRefArray(uint32_t Length) {
  return allocObject(makeClassWord(ObjectKind::RefArray, PrimType::Long),
                     Length,
                     static_cast<uint64_t>(Length) * sizeof(ObjectHeader *));
}

void JavaHeap::free(ObjectHeader *Obj) {
  uint64_t Addr = reinterpret_cast<uint64_t>(Obj);
  M4J_ASSERT(contains(Obj) && (Addr & (Config.Alignment - 1)) == 0,
             "freeing unknown object");
  unsigned Shard = support::detail::metricShard();

  if (M4J_UNLIKELY(Config.Pipeline == AllocPipeline::GlobalLock)) {
    // Seed fidelity: one mutex across the liveness-set find/erase, stats,
    // tag clear, poison and the free-list map push.
    std::lock_guard<std::mutex> Guard(RefillLock);
    auto It = SeedLive.find(Addr);
    M4J_ASSERT(It != SeedLive.end(), "freeing unknown object");
    SeedLive.erase(It);
    clearLiveBit(Addr);
    uint64_t Size = Obj->SizeBytes;
    StatShard &St = StatShards[Shard];
    statAdd(St.BytesLive, -static_cast<int64_t>(Size), Shard);
    statAdd(St.ObjectsLive, -1, Shard);
    statAdd(St.ObjectsFreed, 1, Shard);
    if (Config.TagOnAlloc && Size > sizeof(ObjectHeader))
      mte::clearTagRange(Obj->dataAddress(), Size - sizeof(ObjectHeader));
    notifyFreedRange(Obj, Size);
    Obj->ClassWord = 0xDEADDEAD;
    SeedFree[Size].push_back(Addr);
    return;
  }

  // Unpublish first: a lock-free isLiveObject never observes a poisoned
  // live object. Also asserts the bit was set (double-free detector).
  clearLiveBit(Addr);

  uint64_t Size = Obj->SizeBytes;
  StatShard &St = StatShards[Shard];
  statAdd(St.BytesLive, -static_cast<int64_t>(Size), Shard);
  statAdd(St.ObjectsLive, -1, Shard);
  statAdd(St.ObjectsFreed, 1, Shard);

  if (Config.TagOnAlloc && Size > sizeof(ObjectHeader))
    mte::clearTagRange(Obj->dataAddress(), Size - sizeof(ObjectHeader));
  // A dead object must not keep valid granule tags: give the tag
  // allocator its chance to reclaim a deferred (lingering) tag-clear.
  notifyFreedRange(Obj, Size);
  // Poison the header so stale references are recognisable in tests.
  Obj->ClassWord = 0xDEADDEAD;

  // The freeing thread's shard: GC sweep workers spread reclaimed blocks
  // across their own shards, mutators keep same-thread reuse local.
  pushToShard(FreeShards[Shard], Size, Addr);
}

std::vector<std::pair<ObjectHeader *, ObjectHeader *>> JavaHeap::compact() {
  // The world is paused (no mutator bumps its TLAB, no concurrent free);
  // the refill lock still serialises against stray direct allocations.
  std::lock_guard<std::mutex> Guard(RefillLock);

  uint64_t OldFrontier = BumpOffset.load(std::memory_order_relaxed);
  uint64_t WordEnd =
      std::min<uint64_t>(NumBitWords, ((OldFrontier >> AlignShift) + 63) / 64);

  // Live objects in address order — the bitmap walk is naturally sorted.
  std::vector<ObjectHeader *> Sorted;
  for (uint64_t W = 0; W < WordEnd; ++W) {
    uint64_t Bits = LiveBits[W].load(std::memory_order_relaxed);
    while (Bits) {
      unsigned B = static_cast<unsigned>(std::countr_zero(Bits));
      Bits &= Bits - 1;
      Sorted.push_back(reinterpret_cast<ObjectHeader *>(
          Base + (((W << 6) + B) << AlignShift)));
    }
  }

  std::vector<std::pair<ObjectHeader *, ObjectHeader *>> Moved;
  std::vector<ObjectHeader *> Final;
  Final.reserve(Sorted.size());
  uint64_t Cursor = Base;
  for (ObjectHeader *Obj : Sorted) {
    uint64_t Size = Obj->SizeBytes;
    if (Obj->pinCount() > 0) {
      // Pinned by JNI: native code holds a raw pointer; must not move.
      // The compaction cursor jumps over it.
      Cursor = std::max(Cursor,
                        reinterpret_cast<uint64_t>(Obj) + Size);
      Final.push_back(Obj);
      continue;
    }
    uint64_t Target = support::alignTo(Cursor, Config.Alignment);
    if (Target >= reinterpret_cast<uint64_t>(Obj)) {
      // Already packed (or a pinned object blocks any gain).
      Cursor = reinterpret_cast<uint64_t>(Obj) + Size;
      Final.push_back(Obj);
      continue;
    }
    // Under TagOnAlloc the allocation colour must travel with the payload:
    // read it before the slide, erase the old granules, repaint the new
    // payload (the header granule stays tag 0). Slide targets never
    // overlap a later source, so the erase cannot hit the new location of
    // a previously moved object.
    mte::TagValue Tag = 0;
    bool HasPayload = Size > sizeof(ObjectHeader);
    if (Config.TagOnAlloc && HasPayload)
      Tag = mte::ldgTag(Obj->dataAddress());
    // The object leaves this address: reclaim any lingering JNI tag on
    // the old payload before fresh allocations land here, or they would
    // start life with a valid-looking foreign tag. (Pinned objects never
    // reach this branch, so a moved object can have no live holder.)
    notifyFreedRange(Obj, Size);
    std::memmove(reinterpret_cast<void *>(Target), Obj, Size);
    auto *NewObj = reinterpret_cast<ObjectHeader *>(Target);
    if (Config.TagOnAlloc && HasPayload) {
      mte::clearTagRange(reinterpret_cast<uint64_t>(Obj), Size);
      mte::setTagRange(
          mte::TaggedPtr<void>::fromRaw(NewObj->data(), Tag),
          Size - sizeof(ObjectHeader));
    }
    Moved.emplace_back(Obj, NewObj);
    Final.push_back(NewObj);
    Cursor = Target + Size;
  }

  // Rebuild the liveness bitmap and reset the allocation frontier: all
  // fragmentation is gone, so the free lists and outstanding TLABs die
  // too (the carved-but-unbumped tail of a TLAB would otherwise alias
  // memory handed out again below the new frontier).
  for (uint64_t W = 0; W < WordEnd; ++W)
    LiveBits[W].store(0, std::memory_order_relaxed);
  uint64_t Frontier = Base;
  for (ObjectHeader *Obj : Final) {
    setLiveBit(reinterpret_cast<uint64_t>(Obj), std::memory_order_relaxed);
    Frontier = std::max(Frontier,
                        reinterpret_cast<uint64_t>(Obj) + Obj->SizeBytes);
  }
  BumpOffset.store(Frontier - Base, std::memory_order_release);
  for (unsigned I = 0; I < kNumShards; ++I) {
    FreeShard &FS = FreeShards[I];
    std::lock_guard<support::SpinLock> FsGuard(FS.Lock);
    for (auto &List : FS.Small)
      List.clear();
    FS.Large.clear();
    FS.Count.store(0, std::memory_order_relaxed);
    Tlabs[I].Cur.store(0, std::memory_order_relaxed);
    Tlabs[I].End.store(0, std::memory_order_relaxed);
  }
  if (Config.Pipeline == AllocPipeline::GlobalLock) {
    SeedFree.clear();
    SeedLive.clear();
    for (ObjectHeader *Obj : Final)
      SeedLive.insert(reinterpret_cast<uint64_t>(Obj));
  }
  return Moved;
}

void JavaHeap::forEachObjectShard(
    unsigned Stripe, unsigned NumStripes,
    const std::function<void(ObjectHeader *)> &Fn) {
  // Lock-free: bound the walk by the frontier, snapshot one word at a
  // time. The callback runs with no heap lock held, so it may allocate
  // and free (including the object it was handed).
  uint64_t Frontier = BumpOffset.load(std::memory_order_acquire);
  uint64_t WordEnd =
      std::min<uint64_t>(NumBitWords, ((Frontier >> AlignShift) + 63) / 64);
  uint64_t PerStripe = (WordEnd + NumStripes - 1) / NumStripes;
  uint64_t Lo = std::min<uint64_t>(WordEnd, uint64_t(Stripe) * PerStripe);
  uint64_t Hi = std::min<uint64_t>(WordEnd, Lo + PerStripe);
  for (uint64_t W = Lo; W < Hi; ++W) {
    uint64_t Bits = LiveBits[W].load(std::memory_order_acquire);
    while (Bits) {
      unsigned B = static_cast<unsigned>(std::countr_zero(Bits));
      Bits &= Bits - 1;
      Fn(reinterpret_cast<ObjectHeader *>(Base +
                                          (((W << 6) + B) << AlignShift)));
    }
  }
}

void JavaHeap::forEachObject(
    const std::function<void(ObjectHeader *)> &Fn) {
  forEachObjectShard(0, 1, Fn);
}

bool JavaHeap::isLiveObject(ObjectHeader *Ptr) const {
  uint64_t Addr = reinterpret_cast<uint64_t>(Ptr);
  if (Addr < Base || Addr >= Base + Config.CapacityBytes ||
      (Addr & (Config.Alignment - 1)) != 0)
    return false;
  uint64_t Idx = bitIndexOf(Addr);
  return (LiveBits[Idx >> 6].load(std::memory_order_acquire) >>
          (Idx & 63)) &
         1;
}

HeapStats JavaHeap::stats() const {
  // Sum the shards: exact once writers are quiescent (same contract as the
  // metrics registry).
  int64_t BytesAllocated = 0, BytesLive = 0, ObjectsAllocated = 0,
          ObjectsLive = 0, ObjectsFreed = 0, FreeListHits = 0;
  for (unsigned I = 0; I < kNumShards; ++I) {
    const StatShard &St = StatShards[I];
    BytesAllocated += St.BytesAllocated.load(std::memory_order_relaxed);
    BytesLive += St.BytesLive.load(std::memory_order_relaxed);
    ObjectsAllocated += St.ObjectsAllocated.load(std::memory_order_relaxed);
    ObjectsLive += St.ObjectsLive.load(std::memory_order_relaxed);
    ObjectsFreed += St.ObjectsFreed.load(std::memory_order_relaxed);
    FreeListHits += St.FreeListHits.load(std::memory_order_relaxed);
  }
  HeapStats S;
  S.BytesAllocated = static_cast<uint64_t>(BytesAllocated);
  S.BytesLive = static_cast<uint64_t>(BytesLive);
  S.ObjectsAllocated = static_cast<uint64_t>(ObjectsAllocated);
  S.ObjectsLive = static_cast<uint64_t>(ObjectsLive);
  S.ObjectsFreed = static_cast<uint64_t>(ObjectsFreed);
  S.FreeListHits = static_cast<uint64_t>(FreeListHits);
  return S;
}

} // namespace mte4jni::rt

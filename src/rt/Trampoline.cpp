//===- Trampoline.cpp - Native method call bridges ----------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/Trampoline.h"

namespace mte4jni::rt {

const char *nativeKindName(NativeKind Kind) {
  switch (Kind) {
  case NativeKind::Regular:
    return "regular";
  case NativeKind::FastNative:
    return "@FastNative";
  case NativeKind::CriticalNative:
    return "@CriticalNative";
  }
  return "?";
}

} // namespace mte4jni::rt

//===- Runtime.cpp - Mini-ART runtime ---------------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/Runtime.h"

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/rt/JavaString.h"
#include "mte4jni/support/Syscall.h"
#include "mte4jni/support/TraceRing.h"

#include <algorithm>
#include <chrono>
#include <unordered_map>

namespace mte4jni::rt {
namespace {
Runtime *LiveRuntime = nullptr;
thread_local std::unique_ptr<JavaThread> AttachedThread;
} // namespace

Runtime *Runtime::currentOrNull() { return LiveRuntime; }

Runtime::Runtime(const RuntimeConfig &Config) : Config(Config) {
  M4J_ASSERT(LiveRuntime == nullptr,
             "only one Runtime may be live at a time");

  // Configure the process-wide MTE simulator for this scheme, like an app
  // process would at startup: reset, seed, prctl(TCF mode).
  mte::MteSystem &System = mte::MteSystem::instance();
  System.reset();
  System.setRngSeed(Config.Seed);
  System.setProcessCheckMode(Config.CheckMode);

  Heap = std::make_unique<JavaHeap>(Config.Heap);
  Gc = std::make_unique<GcController>(*this, Config.Gc);

  LiveRuntime = this;
  if (Config.Gc.BackgroundThread)
    Gc->start();
}

Runtime::~Runtime() {
  Gc->stop();
  Gc.reset();
  Heap.reset();
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::None);
  LiveRuntime = nullptr;
}

JavaThread &Runtime::attachCurrentThread(std::string Name, ThreadKind Kind) {
  M4J_ASSERT(JavaThread::currentOrNull() == nullptr,
             "thread already attached");
  support::FlightRecorder::setThreadLabel(Name);
  AttachedThread.reset(new JavaThread(*this, std::move(Name), Kind));
  // Thread attach enters the kernel (clone/futex): a syscall boundary.
  support::syscallBarrier("clone");
  return *AttachedThread;
}

void Runtime::detachCurrentThread() {
  M4J_ASSERT(AttachedThread != nullptr, "thread not attached");
  // Thread teardown is a syscall boundary: pending async MTE faults for
  // this thread surface no later than here.
  support::syscallBarrier("exit");
  if (Config.TagChecksInNative)
    mte::ThreadState::current().setTco(false); // restore hardware default
  AttachedThread.reset();
}

namespace {
/// Allocation and rooting must be one atomic step with respect to the
/// collector: a freshly allocated object is unmarked, unpinned and not yet
/// reachable from any handle scope, so a GC cycle landing between
/// JavaHeap::alloc* and HandleScope::root() sweeps it and hands the caller
/// a pointer into poisoned memory. Holding a runtime critical section
/// (mutually exclusive with Runtime::beginPause) closes the window; it
/// also serialises the root-vector push against snapshotRoots(), which
/// only runs inside a pause.
struct ScopedAllocCritical {
  explicit ScopedAllocCritical(Runtime &RT) : RT(RT) { RT.enterCritical(); }
  ~ScopedAllocCritical() { RT.exitCritical(); }
  Runtime &RT;
};
} // namespace

ObjectHeader *Runtime::newPrimArray(HandleScope &Scope, PrimType Elem,
                                    uint32_t Length) {
  {
    ScopedAllocCritical Guard(*this);
    if (ObjectHeader *Obj = Heap->allocPrimArray(Elem, Length))
      return Scope.root(Obj);
  }
  // Like ART: collect and retry once before surfacing OutOfMemoryError.
  // The critical section must be dropped first — beginPause waits for it.
  Gc->collect();
  ScopedAllocCritical Guard(*this);
  return Scope.root(Heap->allocPrimArray(Elem, Length));
}

ObjectHeader *Runtime::newRefArray(HandleScope &Scope, uint32_t Length) {
  {
    ScopedAllocCritical Guard(*this);
    if (ObjectHeader *Obj = Heap->allocRefArray(Length))
      return Scope.root(Obj);
  }
  Gc->collect();
  ScopedAllocCritical Guard(*this);
  return Scope.root(Heap->allocRefArray(Length));
}

ObjectHeader *Runtime::newString(HandleScope &Scope,
                                 std::u16string_view Units) {
  ScopedAllocCritical Guard(*this);
  return Scope.root(rt::newString(*Heap, Units));
}

ObjectHeader *Runtime::newStringUtf8(HandleScope &Scope,
                                     std::string_view Utf8) {
  ScopedAllocCritical Guard(*this);
  return Scope.root(rt::newStringUtf8(*Heap, Utf8));
}

void Runtime::registerScope(HandleScope *Scope) {
  std::lock_guard<std::mutex> Guard(ScopeLock);
  Scopes.push_back(Scope);
}

void Runtime::unregisterScope(HandleScope *Scope) {
  std::lock_guard<std::mutex> Guard(ScopeLock);
  auto It = std::find(Scopes.begin(), Scopes.end(), Scope);
  M4J_ASSERT(It != Scopes.end(), "unregistering unknown scope");
  Scopes.erase(It);
}

std::vector<ObjectHeader *> Runtime::snapshotRoots() const {
  std::lock_guard<std::mutex> Guard(ScopeLock);
  std::vector<ObjectHeader *> Roots;
  for (const HandleScope *Scope : Scopes)
    Roots.insert(Roots.end(), Scope->roots().begin(), Scope->roots().end());
  return Roots;
}

void Runtime::updateRootsAfterMove(
    const std::vector<std::pair<ObjectHeader *, ObjectHeader *>> &Moved) {
  if (Moved.empty())
    return;
  std::unordered_map<ObjectHeader *, ObjectHeader *> Map;
  Map.reserve(Moved.size());
  for (auto &[Old, New] : Moved)
    Map.emplace(Old, New);
  std::lock_guard<std::mutex> Guard(ScopeLock);
  for (HandleScope *Scope : Scopes)
    for (ObjectHeader *&Slot : Scope->mutableRoots()) {
      auto It = Map.find(Slot);
      if (It != Map.end())
        Slot = It->second;
    }
}

void Runtime::enterCritical() {
  JavaThread *Thread = JavaThread::currentOrNull();
  // Re-entrant enter while this thread already holds a critical section
  // must not block (the GC cannot have started in between).
  if (Thread && Thread->CriticalDepth > 0) {
    ++Thread->CriticalDepth;
    CriticalCount.fetch_add(1, std::memory_order_acq_rel);
    return;
  }
  for (;;) {
    // Fast path: no pause pending — one RMW, no mutex.
    if (M4J_LIKELY(!PauseActive.load(std::memory_order_acquire))) {
      CriticalCount.fetch_add(1, std::memory_order_acq_rel);
      // Re-check: a pause may have begun between the load and the
      // increment; back out so the collector is not stalled forever.
      if (M4J_LIKELY(!PauseActive.load(std::memory_order_acquire)))
        break;
      uint32_t Prev = CriticalCount.fetch_sub(1, std::memory_order_acq_rel);
      if (Prev == 1) {
        std::lock_guard<std::mutex> Guard(PauseLock);
        PauseCv.notify_all();
      }
    }
    // Slow path: wait for the pause to finish.
    std::unique_lock<std::mutex> Guard(PauseLock);
    PauseCv.wait(Guard, [this] {
      return !PauseActive.load(std::memory_order_acquire);
    });
  }
  if (Thread)
    ++Thread->CriticalDepth;
}

void Runtime::exitCritical() {
  JavaThread *Thread = JavaThread::currentOrNull();
  if (Thread) {
    M4J_ASSERT(Thread->CriticalDepth > 0, "exitCritical underflow");
    --Thread->CriticalDepth;
  }
  uint32_t Prev = CriticalCount.fetch_sub(1, std::memory_order_acq_rel);
  M4J_ASSERT(Prev > 0, "critical count underflow");
  if (M4J_UNLIKELY(Prev == 1 &&
                   PauseActive.load(std::memory_order_acquire))) {
    std::lock_guard<std::mutex> Guard(PauseLock);
    PauseCv.notify_all();
  }
}

void Runtime::beginPause() {
  std::unique_lock<std::mutex> Guard(PauseLock);
  PauseCv.wait(Guard, [this] {
    return !PauseActive.load(std::memory_order_acquire);
  });
  PauseActive.store(true, std::memory_order_release);
  // Wait for outstanding critical sections to drain. Re-signalled by
  // exitCritical; poll with a timeout to cover the unlocked-decrement race.
  PauseCv.wait_for(Guard, std::chrono::milliseconds(1), [this] {
    return CriticalCount.load(std::memory_order_acquire) == 0;
  });
  while (CriticalCount.load(std::memory_order_acquire) != 0)
    PauseCv.wait_for(Guard, std::chrono::milliseconds(1), [this] {
      return CriticalCount.load(std::memory_order_acquire) == 0;
    });
}

void Runtime::endPause() {
  std::lock_guard<std::mutex> Guard(PauseLock);
  PauseActive.store(false, std::memory_order_release);
  PauseCv.notify_all();
}

} // namespace mte4jni::rt

//===- Runtime.cpp - Mini-ART runtime ---------------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/Runtime.h"

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/rt/JavaString.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/Syscall.h"
#include "mte4jni/support/Timer.h"
#include "mte4jni/support/TraceRing.h"

#include <algorithm>
#include <unordered_map>

namespace mte4jni::rt {
namespace {
Runtime *LiveRuntime = nullptr;
thread_local std::unique_ptr<JavaThread> AttachedThread;
} // namespace

Runtime *Runtime::currentOrNull() { return LiveRuntime; }

Runtime::Runtime(const RuntimeConfig &Config) : Config(Config) {
  M4J_ASSERT(LiveRuntime == nullptr,
             "only one Runtime may be live at a time");

  // Configure the process-wide MTE simulator for this scheme, like an app
  // process would at startup: reset, seed, prctl(TCF mode).
  mte::MteSystem &System = mte::MteSystem::instance();
  System.reset();
  System.setRngSeed(Config.Seed);
  System.setProcessCheckMode(Config.CheckMode);

  Heap = std::make_unique<JavaHeap>(Config.Heap);
  Gc = std::make_unique<GcController>(*this, Config.Gc);

  LiveRuntime = this;
  if (Config.Gc.BackgroundThread)
    Gc->start();
}

Runtime::~Runtime() {
  Gc->stop();
  Gc.reset();
  Heap.reset();
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::None);
  LiveRuntime = nullptr;
}

JavaThread &Runtime::attachCurrentThread(std::string Name, ThreadKind Kind) {
  M4J_ASSERT(JavaThread::currentOrNull() == nullptr,
             "thread already attached");
  support::FlightRecorder::setThreadLabel(Name);
  AttachedThread.reset(new JavaThread(*this, std::move(Name), Kind));
  // Thread attach enters the kernel (clone/futex): a syscall boundary.
  support::syscallBarrier("clone");
  return *AttachedThread;
}

void Runtime::detachCurrentThread() {
  M4J_ASSERT(AttachedThread != nullptr, "thread not attached");
  // Thread teardown is a syscall boundary: pending async MTE faults for
  // this thread surface no later than here.
  support::syscallBarrier("exit");
  if (Config.TagChecksInNative)
    mte::ThreadState::current().setTco(false); // restore hardware default
  AttachedThread.reset();
}

namespace {
/// Allocation and rooting must be one atomic step with respect to the
/// collector: a freshly allocated object is unmarked, unpinned and not yet
/// reachable from any handle scope, so a GC cycle landing between
/// JavaHeap::alloc* and HandleScope::root() sweeps it and hands the caller
/// a pointer into poisoned memory. Holding a runtime critical section
/// (mutually exclusive with Runtime::beginPause) closes the window; it
/// also serialises the root-vector push against snapshotRoots(), which
/// only runs inside a pause.
struct ScopedAllocCritical {
  explicit ScopedAllocCritical(Runtime &RT) : RT(RT) { RT.enterCritical(); }
  ~ScopedAllocCritical() { RT.exitCritical(); }
  Runtime &RT;
};
} // namespace

ObjectHeader *Runtime::newPrimArray(HandleScope &Scope, PrimType Elem,
                                    uint32_t Length) {
  {
    ScopedAllocCritical Guard(*this);
    if (ObjectHeader *Obj = Heap->allocPrimArray(Elem, Length))
      return Scope.root(Obj);
  }
  // Like ART: collect and retry once before surfacing OutOfMemoryError.
  // beginPause parks any critical section the caller already holds (the
  // callNative bracket), so collecting from here cannot self-deadlock.
  Gc->collect();
  ScopedAllocCritical Guard(*this);
  ObjectHeader *Obj = Heap->allocPrimArray(Elem, Length);
  if (!Obj)
    return nullptr; // OutOfMemoryError: never root a null allocation
  return Scope.root(Obj);
}

ObjectHeader *Runtime::newRefArray(HandleScope &Scope, uint32_t Length) {
  {
    ScopedAllocCritical Guard(*this);
    if (ObjectHeader *Obj = Heap->allocRefArray(Length))
      return Scope.root(Obj);
  }
  Gc->collect();
  ScopedAllocCritical Guard(*this);
  ObjectHeader *Obj = Heap->allocRefArray(Length);
  if (!Obj)
    return nullptr; // OutOfMemoryError: never root a null allocation
  return Scope.root(Obj);
}

ObjectHeader *Runtime::newString(HandleScope &Scope,
                                 std::u16string_view Units) {
  ScopedAllocCritical Guard(*this);
  return Scope.root(rt::newString(*Heap, Units));
}

ObjectHeader *Runtime::newStringUtf8(HandleScope &Scope,
                                     std::string_view Utf8) {
  ScopedAllocCritical Guard(*this);
  return Scope.root(rt::newStringUtf8(*Heap, Utf8));
}

void Runtime::registerScope(HandleScope *Scope) {
  std::lock_guard<std::mutex> Guard(ScopeLock);
  Scopes.push_back(Scope);
}

void Runtime::unregisterScope(HandleScope *Scope) {
  std::lock_guard<std::mutex> Guard(ScopeLock);
  auto It = std::find(Scopes.begin(), Scopes.end(), Scope);
  M4J_ASSERT(It != Scopes.end(), "unregistering unknown scope");
  Scopes.erase(It);
}

std::vector<ObjectHeader *> Runtime::snapshotRoots() const {
  std::lock_guard<std::mutex> Guard(ScopeLock);
  std::vector<ObjectHeader *> Roots;
  for (const HandleScope *Scope : Scopes)
    Roots.insert(Roots.end(), Scope->roots().begin(), Scope->roots().end());
  return Roots;
}

void Runtime::updateRootsAfterMove(
    const std::vector<std::pair<ObjectHeader *, ObjectHeader *>> &Moved) {
  if (Moved.empty())
    return;
  std::unordered_map<ObjectHeader *, ObjectHeader *> Map;
  Map.reserve(Moved.size());
  for (auto &[Old, New] : Moved)
    Map.emplace(Old, New);
  std::lock_guard<std::mutex> Guard(ScopeLock);
  for (HandleScope *Scope : Scopes)
    for (ObjectHeader *&Slot : Scope->mutableRoots()) {
      auto It = Map.find(Slot);
      if (It != Map.end())
        Slot = It->second;
    }
}

uint32_t Runtime::criticalDepth() const {
  // Attached threads report their own nesting depth (what the JNI
  // CheckJNI-style assertions care about); unattached callers see the
  // number of threads currently inside a critical section.
  if (const JavaThread *Thread = JavaThread::currentOrNull())
    return Thread->CriticalDepth;
  return CriticalCount.load(std::memory_order_seq_cst);
}

void Runtime::enterCritical() {
  JavaThread *Thread = JavaThread::currentOrNull();
  // Nested enter: this thread already holds its world-visible claim and a
  // pause cannot begin while it does, so the bookkeeping is thread-local.
  if (Thread && Thread->CriticalDepth > 0) {
    ++Thread->CriticalDepth;
    return;
  }
  for (;;) {
    // Fast path: no pause pending — one RMW, no mutex. seq_cst pairs with
    // beginPause's PauseActive store + CriticalCount load: in the seq_cst
    // total order either our increment precedes the collector's drain
    // check (it waits for us) or the collector's store precedes our
    // re-check (we back out) — both sides missing is impossible.
    if (M4J_LIKELY(!PauseActive.load(std::memory_order_seq_cst))) {
      CriticalCount.fetch_add(1, std::memory_order_seq_cst);
      if (M4J_LIKELY(!PauseActive.load(std::memory_order_seq_cst)))
        break;
      // A pause began between the load and the increment: back out, and
      // wake the collector unconditionally — it may be waiting on exactly
      // this decrement. The notify runs under PauseLock, so a collector
      // that saw a non-zero count under the same lock cannot miss it.
      CriticalCount.fetch_sub(1, std::memory_order_seq_cst);
      {
        std::lock_guard<std::mutex> Wake(PauseLock);
        DrainCv.notify_one();
      }
    }
    // Slow path: wait for the pause to finish.
    std::unique_lock<std::mutex> Guard(PauseLock);
    ResumeCv.wait(Guard, [this] {
      return !PauseActive.load(std::memory_order_seq_cst);
    });
  }
  if (Thread)
    Thread->CriticalDepth = 1;
}

void Runtime::exitCritical() {
  JavaThread *Thread = JavaThread::currentOrNull();
  if (Thread) {
    M4J_ASSERT(Thread->CriticalDepth > 0, "exitCritical underflow");
    if (--Thread->CriticalDepth > 0)
      return; // still nested: the world-visible claim stays
  }
  uint32_t Prev = CriticalCount.fetch_sub(1, std::memory_order_seq_cst);
  M4J_ASSERT(Prev > 0, "critical count underflow");
  (void)Prev;
  // Publish-then-wake: the decrement is already visible (seq_cst) and the
  // notify happens under PauseLock, so the collector either sees count==0
  // at its locked predicate check or receives this notify — the rendezvous
  // cannot lose the wakeup (this replaced beginPause's wait_for polling).
  // DrainCv's only possible waiter is the pause owner: notify_one, and no
  // blocked mutator is disturbed by a mid-drain exit.
  if (M4J_UNLIKELY(PauseActive.load(std::memory_order_seq_cst))) {
    std::lock_guard<std::mutex> Wake(PauseLock);
    DrainCv.notify_one();
  }
}

void Runtime::safepointPoll() {
  // Fast path: no pause requested — one seq_cst load, no shared writes.
  if (M4J_LIKELY(!PauseActive.load(std::memory_order_seq_cst)))
    return;
  JavaThread *Thread = JavaThread::currentOrNull();
  const bool ParkClaim = Thread && Thread->CriticalDepth > 0;
  if (ParkClaim)
    CriticalCount.fetch_sub(1, std::memory_order_seq_cst);
  static support::Counter &Blocks =
      support::Metrics::counter("rt/gc/safepoint_blocks");
  Blocks.add();
  std::unique_lock<std::mutex> Guard(PauseLock);
  // The collector may be waiting on exactly the decrement above.
  DrainCv.notify_one();
  ResumeCv.wait(Guard, [this] {
    return !PauseActive.load(std::memory_order_seq_cst);
  });
  // Re-claim under PauseLock: no new pause can begin before we do (the
  // pinned buffers this thread holds stayed valid throughout — pins block
  // sweep and compaction; only payload access had to stop).
  if (ParkClaim)
    CriticalCount.fetch_add(1, std::memory_order_seq_cst);
}

void Runtime::beginPause() {
  // A collector that is itself inside a critical section (a mutator whose
  // allocation failed under callNative's bracket and now collects) parks
  // its own claim for the duration of the pause: it sits at a safepoint
  // by definition. endPause restores the claim. Without this, the thread
  // would deadlock waiting for its own critical section to drain.
  JavaThread *Self = JavaThread::currentOrNull();
  const bool ParkedOwnClaim = Self && Self->CriticalDepth > 0;
  if (ParkedOwnClaim) {
    CriticalCount.fetch_sub(1, std::memory_order_seq_cst);
    // Another collector may already be draining: hand it the decrement.
    if (PauseActive.load(std::memory_order_seq_cst)) {
      std::lock_guard<std::mutex> Wake(PauseLock);
      DrainCv.notify_one();
    }
  }

  std::unique_lock<std::mutex> Guard(PauseLock);
  // Serialise collectors: one pause at a time (queued collectors wait with
  // the blocked mutators and are released by the owner's endPause).
  ResumeCv.wait(Guard, [this] {
    return !PauseActive.load(std::memory_order_seq_cst);
  });
  const uint64_t RequestNanos = support::monotonicNanos();
  PauseActive.store(true, std::memory_order_seq_cst);
  // The rendezvous: wait for every thread inside a critical section to
  // reach its safepoint (exitCritical, safepointPoll or the enterCritical
  // backout — all publish their decrement with seq_cst and notify DrainCv
  // under PauseLock). This thread is DrainCv's only possible waiter: it
  // owns PauseActive. A plain condition wait suffices; no timeout crutch.
  DrainCv.wait(Guard, [this] {
    return CriticalCount.load(std::memory_order_seq_cst) == 0;
  });
  const uint64_t ReachedNanos = support::monotonicNanos();

  // Time-to-safepoint: how long the world took to actually stop after the
  // pause was requested. The pause_nanos histogram (recorded around the
  // whole collect window) is a superset of this.
  static support::Histogram &TtspNanos =
      support::Metrics::histogram("rt/gc/ttsp_nanos");
  TtspNanos.record(ReachedNanos - RequestNanos);
  if (support::obs::coldArmed())
    support::FlightRecorder::record(
        support::FlightKind::GcPhase,
        static_cast<uint8_t>(support::GcFlightPhase::Ttsp), 0, RequestNanos,
        ReachedNanos - RequestNanos);
}

void Runtime::endPause() {
  JavaThread *Self = JavaThread::currentOrNull();
  std::lock_guard<std::mutex> Guard(PauseLock);
  // Restore the claim beginPause parked, before any mutator can resume —
  // no new pause can slip in between (PauseLock is held, and a beginPause
  // already past its own-claim check waits for !PauseActive under it).
  if (Self && Self->CriticalDepth > 0)
    CriticalCount.fetch_add(1, std::memory_order_seq_cst);
  PauseActive.store(false, std::memory_order_seq_cst);
  // The one broadcast per pause: release every blocked mutator (and any
  // queued collector) together.
  ResumeCv.notify_all();
}

} // namespace mte4jni::rt

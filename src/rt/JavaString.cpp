//===- JavaString.cpp - UTF-16 string objects and UTF-8 conversion ---------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/rt/JavaString.h"

#include "mte4jni/rt/Heap.h"

#include <cstring>

namespace mte4jni::rt {
namespace {

constexpr uint32_t kReplacementChar = 0xFFFD;

/// Appends one Unicode scalar as UTF-8.
void appendUtf8(std::string &Out, uint32_t Scalar) {
  if (Scalar < 0x80) {
    Out.push_back(static_cast<char>(Scalar));
  } else if (Scalar < 0x800) {
    Out.push_back(static_cast<char>(0xC0 | (Scalar >> 6)));
    Out.push_back(static_cast<char>(0x80 | (Scalar & 0x3F)));
  } else if (Scalar < 0x10000) {
    Out.push_back(static_cast<char>(0xE0 | (Scalar >> 12)));
    Out.push_back(static_cast<char>(0x80 | ((Scalar >> 6) & 0x3F)));
    Out.push_back(static_cast<char>(0x80 | (Scalar & 0x3F)));
  } else {
    Out.push_back(static_cast<char>(0xF0 | (Scalar >> 18)));
    Out.push_back(static_cast<char>(0x80 | ((Scalar >> 12) & 0x3F)));
    Out.push_back(static_cast<char>(0x80 | ((Scalar >> 6) & 0x3F)));
    Out.push_back(static_cast<char>(0x80 | (Scalar & 0x3F)));
  }
}

/// Number of UTF-8 bytes for one scalar.
size_t utf8BytesFor(uint32_t Scalar) {
  if (Scalar < 0x80)
    return 1;
  if (Scalar < 0x800)
    return 2;
  if (Scalar < 0x10000)
    return 3;
  return 4;
}

/// Decodes the next scalar out of a UTF-16 unit sequence; advances I.
uint32_t nextScalarUtf16(std::u16string_view Units, size_t &I) {
  uint16_t Unit = Units[I++];
  if (Unit >= 0xD800 && Unit <= 0xDBFF) {
    // High surrogate: needs a following low surrogate.
    if (I < Units.size() && Units[I] >= 0xDC00 && Units[I] <= 0xDFFF) {
      uint16_t Low = Units[I++];
      return 0x10000 + ((uint32_t(Unit) - 0xD800) << 10) +
             (uint32_t(Low) - 0xDC00);
    }
    return kReplacementChar; // unpaired high surrogate
  }
  if (Unit >= 0xDC00 && Unit <= 0xDFFF)
    return kReplacementChar; // unpaired low surrogate
  return Unit;
}

} // namespace

ObjectHeader *newString(JavaHeap &Heap, std::u16string_view Units) {
  ObjectHeader *Str =
      Heap.allocString(static_cast<uint32_t>(Units.size()));
  if (!Str)
    return nullptr;
  std::memcpy(Str->data(), Units.data(), Units.size() * 2);
  return Str;
}

ObjectHeader *newStringUtf8(JavaHeap &Heap, std::string_view Utf8) {
  std::u16string Units = utf8ToUtf16(Utf8);
  return newString(Heap, Units);
}

size_t utf8Length(const ObjectHeader *Str) {
  std::u16string_view Units(
      reinterpret_cast<const char16_t *>(stringChars(Str)), Str->Length);
  size_t Bytes = 0;
  size_t I = 0;
  while (I < Units.size())
    Bytes += utf8BytesFor(nextScalarUtf16(Units, I));
  return Bytes;
}

void toUtf8(const ObjectHeader *Str, std::string &Out) {
  Out.clear();
  std::u16string_view Units(
      reinterpret_cast<const char16_t *>(stringChars(Str)), Str->Length);
  Out = utf16ToUtf8(Units);
}

std::u16string utf8ToUtf16(std::string_view Utf8) {
  std::u16string Out;
  Out.reserve(Utf8.size());
  size_t I = 0;
  auto Cont = [&](size_t Offset) -> int {
    if (I + Offset >= Utf8.size())
      return -1;
    uint8_t B = static_cast<uint8_t>(Utf8[I + Offset]);
    return (B & 0xC0) == 0x80 ? (B & 0x3F) : -1;
  };
  while (I < Utf8.size()) {
    uint8_t B0 = static_cast<uint8_t>(Utf8[I]);
    uint32_t Scalar = kReplacementChar;
    size_t Consumed = 1;
    if (B0 < 0x80) {
      Scalar = B0;
    } else if ((B0 & 0xE0) == 0xC0) {
      int C1 = Cont(1);
      if (C1 >= 0) {
        Scalar = (uint32_t(B0 & 0x1F) << 6) | uint32_t(C1);
        Consumed = 2;
        if (Scalar < 0x80)
          Scalar = kReplacementChar; // overlong
      }
    } else if ((B0 & 0xF0) == 0xE0) {
      int C1 = Cont(1), C2 = Cont(2);
      if (C1 >= 0 && C2 >= 0) {
        Scalar = (uint32_t(B0 & 0x0F) << 12) | (uint32_t(C1) << 6) |
                 uint32_t(C2);
        Consumed = 3;
        if (Scalar < 0x800 || (Scalar >= 0xD800 && Scalar <= 0xDFFF))
          Scalar = kReplacementChar; // overlong or surrogate
      }
    } else if ((B0 & 0xF8) == 0xF0) {
      int C1 = Cont(1), C2 = Cont(2), C3 = Cont(3);
      if (C1 >= 0 && C2 >= 0 && C3 >= 0) {
        Scalar = (uint32_t(B0 & 0x07) << 18) | (uint32_t(C1) << 12) |
                 (uint32_t(C2) << 6) | uint32_t(C3);
        Consumed = 4;
        if (Scalar < 0x10000 || Scalar > 0x10FFFF)
          Scalar = kReplacementChar; // overlong or out of range
      }
    }
    I += Consumed;
    if (Scalar >= 0x10000) {
      uint32_t V = Scalar - 0x10000;
      Out.push_back(static_cast<char16_t>(0xD800 + (V >> 10)));
      Out.push_back(static_cast<char16_t>(0xDC00 + (V & 0x3FF)));
    } else {
      Out.push_back(static_cast<char16_t>(Scalar));
    }
  }
  return Out;
}

std::string utf16ToUtf8(std::u16string_view Units) {
  std::string Out;
  Out.reserve(Units.size());
  size_t I = 0;
  while (I < Units.size())
    appendUtf8(Out, nextScalarUtf16(Units, I));
  return Out;
}

} // namespace mte4jni::rt

//===- Mte4JniPolicy.h - The MTE4JNI check policy --------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's contribution as a JNI check policy (§3, §4.2):
///
///   * Get interfaces run Algorithm 1 on the object's payload range and
///     hand native code the *direct* pointer with the allocation tag in
///     bits 56..59 — no copying.
///   * Release interfaces run Algorithm 2; the last releasing thread
///     clears the granule tags.
///   * GetStringUTFChars buffers (which are genuine native copies) come
///     from a PROT_MTE scratch arena and are tagged the same way.
///
/// Whether checking is synchronous or asynchronous is a property of the
/// runtime's TCF mode, not of this policy; the Session façade combines
/// them into the four schemes of §5.1.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_CORE_MTE4JNIPOLICY_H
#define MTE4JNI_CORE_MTE4JNIPOLICY_H

#include "mte4jni/core/TagAllocator.h"
#include "mte4jni/jni/CheckPolicy.h"
#include "mte4jni/mte/TaggedArena.h"

#include <memory>

namespace mte4jni::core {

struct Mte4JniOptions {
  /// Tag-table implementation (lock-free fast path by default; the
  /// paper's two-tier locking and the global-lock strawman are the
  /// Figure 6 ablations).
  TagTableKind Locks = TagTableKind::LockFree;
  /// k, the number of hash tables (the paper evaluates k = 16).
  unsigned NumHashTables = 16;
  /// Capacity of the PROT_MTE scratch arena for UTF-8 copies.
  uint64_t ScratchArenaBytes = 8ull << 20;
  /// Optional hardening: never give an object a tag equal to a
  /// neighbouring granule's tag (see TagAllocatorOptions).
  bool ExcludeAdjacentTags = false;
  /// Deferred tag-clear: single-holder release/re-acquire become pure
  /// CASes, tags are reclaimed lazily (free/sweep hooks, tombstones,
  /// budget overflow). Off = the paper's exact Algorithm 2 semantics.
  /// See TagAllocatorOptions::DeferredTagClear.
  bool DeferredTagClear = true;
  /// Ceiling on lingering payload bytes when deferral is on.
  uint64_t MaxResidentTagBytes = 8ull << 20;
};

class Mte4JniPolicy final : public jni::CheckPolicy {
public:
  explicit Mte4JniPolicy(const Mte4JniOptions &Options = {});

  const char *name() const override { return "mte4jni"; }

  uint64_t acquire(const jni::JniBufferInfo &Info, bool &IsCopy) override;
  void release(const jni::JniBufferInfo &Info, uint64_t NativeBits,
               jni::jint Mode) override;

  /// Pin-aware variants: the cookie carries the resolved TagTable::Slot so
  /// the matching release skips the table probe entirely.
  uint64_t acquirePinned(const jni::JniBufferInfo &Info, bool &IsCopy,
                         void *&PinCookie) override;
  void releasePinned(const jni::JniBufferInfo &Info, uint64_t NativeBits,
                     jni::jint Mode, void *PinCookie) override;

  uint64_t acquireScratch(uint64_t Bytes, const char *Interface) override;
  void releaseScratch(uint64_t NativeBits, uint64_t Bytes,
                      const char *Interface) override;

  bool exposesDirectPointers() const override { return true; }

  TagAllocator &allocator() { return Allocator; }
  const Mte4JniOptions &options() const { return Options; }

private:
  Mte4JniOptions Options;
  TagAllocator Allocator;
  mte::TaggedArena Scratch;
};

} // namespace mte4jni::core

#endif // MTE4JNI_CORE_MTE4JNIPOLICY_H

//===- TagAllocator.h - Algorithms 1 and 2 of the paper --------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory tag allocation (Algorithm 1) and release (Algorithm 2)
/// algorithms:
///
///   acquire(begin, end):
///     1. hash table index <- (begin / 16) mod k
///     2. under the table lock: retrieve or create {referenceNum, mutex}
///     3. under the object lock: increment referenceNum;
///        if referenceNum > 1: load the existing tag with LDG
///        else: generate a tag with IRG and apply it with ST2G/STG
///     4. return begin with the tag in bits 56..59
///
///   release(begin, end):
///     1-2. as above but without creating
///     3. under the object lock: decrement referenceNum; when it reaches
///        zero, clear the memory tags of [begin, end)
///
/// Both a two-tier-locking implementation and the naive global-lock
/// variant (the §3.1 strawman, measured in Figure 6) are provided.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_CORE_TAGALLOCATOR_H
#define MTE4JNI_CORE_TAGALLOCATOR_H

#include "mte4jni/core/TagTable.h"
#include "mte4jni/mte/TaggedPtr.h"

#include <atomic>
#include <mutex>

namespace mte4jni::core {

enum class LockScheme : uint8_t {
  /// Paper's design: per-table locks + per-object locks.
  TwoTier,
  /// Naive strawman: one global lock around the whole operation.
  GlobalLock,
};

const char *lockSchemeName(LockScheme Scheme);

/// Optional hardenings beyond the paper's Algorithm 1.
struct TagAllocatorOptions {
  LockScheme Locks = LockScheme::TwoTier;
  unsigned NumTables = 16;
  /// Remove dead table entries (see TagAllocator constructor notes).
  bool EraseDeadEntries = false;
  /// When generating a tag, exclude the current tags of the granules in
  /// a two-granule window around [begin, end) (two, because a one-granule
  /// object header separates payloads). The paper's IRG draw gives a 1/15
  /// chance that a neighbouring object shares the tag (making a linear
  /// overflow into it invisible); excluding neighbour tags makes
  /// adjacent-object overflow detection deterministic, the same trick
  /// HWASan and MTE-aware allocators use. Off by default to match the
  /// paper.
  bool ExcludeAdjacentTags = false;
};

struct TagAllocatorStats {
  std::atomic<uint64_t> Acquires{0};
  std::atomic<uint64_t> TagsGenerated{0}; ///< IRG path (first holder)
  std::atomic<uint64_t> TagsShared{0};    ///< LDG path (concurrent holder)
  std::atomic<uint64_t> Releases{0};
  std::atomic<uint64_t> TagsCleared{0};   ///< refcount hit zero
  std::atomic<uint64_t> OrphanReleases{0}; ///< release with no entry
};

class TagAllocator {
public:
  /// \p EraseDeadEntries: remove a table entry once its reference count
  /// returns to zero. Algorithm 2 as published only clears the tags and
  /// leaves the {referenceNum, mutexAddr} tuple in place for reuse, which
  /// is also faster (no allocator churn per Get/Release pair); erasure is
  /// available for callers that want the table trimmed.
  explicit TagAllocator(LockScheme Scheme = LockScheme::TwoTier,
                        unsigned NumTables = 16,
                        bool EraseDeadEntries = false);

  explicit TagAllocator(const TagAllocatorOptions &Options);

  LockScheme lockScheme() const { return Scheme; }

  /// Algorithm 1. Returns the tagged pointer bits for [Begin, End).
  uint64_t acquire(uint64_t Begin, uint64_t End);

  /// Algorithm 2.
  void release(uint64_t Begin, uint64_t End);

  const TagAllocatorStats &stats() const { return Stats; }
  TagTable &table() { return Table; }

private:
  uint64_t acquireLocked(uint64_t Begin, uint64_t End);
  void releaseLocked(uint64_t Begin, uint64_t End);

  LockScheme Scheme;
  bool EraseDeadEntries;
  bool ExcludeAdjacentTags = false;
  TagTable Table;
  std::mutex GlobalLock; ///< used only by LockScheme::GlobalLock
  TagAllocatorStats Stats;
};

} // namespace mte4jni::core

#endif // MTE4JNI_CORE_TAGALLOCATOR_H

//===- TagAllocator.h - Algorithms 1 and 2 of the paper --------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The memory tag allocation (Algorithm 1) and release (Algorithm 2)
/// algorithms:
///
///   acquire(begin, end):
///     1. hash table index <- (begin / 16) mod k
///     2. under the table lock: retrieve or create {referenceNum, mutex}
///     3. under the object lock: increment referenceNum;
///        if referenceNum > 1: load the existing tag with LDG
///        else: generate a tag with IRG and apply it with ST2G/STG
///     4. return begin with the tag in bits 56..59
///
///   release(begin, end):
///     1-2. as above but without creating
///     3. under the object lock: decrement referenceNum; when it reaches
///        zero, clear the memory tags of [begin, end)
///
/// Three table implementations are selectable via TagTableKind: the
/// lock-free fast path (production default — steps 2-4 of a repeated
/// acquire are one CAS plus one LDG, no lock and no allocation), the
/// paper's two-tier locking, and the naive global-lock strawman measured
/// in Figure 6.
///
/// acquire() can additionally hand back the table slot it resolved, which
/// release() accepts as a hint — a Get/Release pair through the JNI pin
/// record then probes the table once, not twice.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_CORE_TAGALLOCATOR_H
#define MTE4JNI_CORE_TAGALLOCATOR_H

#include "mte4jni/core/TagTable.h"
#include "mte4jni/mte/TaggedPtr.h"
#include "mte4jni/support/TraceRing.h"

#include <atomic>
#include <mutex>

namespace mte4jni::support {
class Counter;
} // namespace mte4jni::support

namespace mte4jni::core {

/// Legacy name for the table-implementation knob (the seed predates the
/// lock-free build and called this the lock scheme).
using LockScheme = TagTableKind;

inline const char *lockSchemeName(TagTableKind Kind) {
  return tagTableKindName(Kind);
}

/// Optional hardenings beyond the paper's Algorithm 1.
struct TagAllocatorOptions {
  TagTableKind Locks = TagTableKind::LockFree;
  unsigned NumTables = 16;
  /// Slot-array capacity per shard for TagTableKind::LockFree (rounded up
  /// to a power of two); entries beyond a full probe window spill into the
  /// shard's locked overflow map.
  unsigned SlotsPerShard = 2048;
  /// Remove dead table entries (see TagAllocator constructor notes).
  bool EraseDeadEntries = false;
  /// When generating a tag, exclude the current tags of the granules in
  /// a two-granule window around [begin, end) (two, because a one-granule
  /// object header separates payloads). The paper's IRG draw gives a 1/15
  /// chance that a neighbouring object shares the tag (making a linear
  /// overflow into it invisible); excluding neighbour tags makes
  /// adjacent-object overflow detection deterministic, the same trick
  /// HWASan and MTE-aware allocators use. Off by default to match the
  /// paper.
  bool ExcludeAdjacentTags = false;
  /// Deferred tag-clear (LockFree only): a single-holder release leaves
  /// the granule tags resident and flips the slot to the lingering state
  /// with one CAS — no shard mutex, no STG loop — and a re-acquire of the
  /// same range is a pure CAS too. Tags are reclaimed lazily: when the
  /// object is freed or swept, when the slot is tombstoned/recycled, and
  /// when the lingering budget overflows. Off = the paper's exact
  /// Algorithm 2 (clear on last release), which also maximises
  /// use-after-release detection — a lingering tag widens that window.
  bool DeferredTagClear = true;
  /// Ceiling on resident tagged payload bytes — held pins plus lingering
  /// releases — split across shards. Charged once when the first holder
  /// publishes the tags and refunded when they are cleared, so the warm
  /// fast paths never touch the accounting; a release that would linger
  /// while the shard is over budget clears exactly instead. Only
  /// meaningful with DeferredTagClear.
  uint64_t MaxResidentBytes = 8ull << 20;
};

/// Per-instance counters. Sharded (support::Counter) rather than plain
/// atomics: Acquires/TagsShared/Releases sit on the lock-free fast path,
/// where a locked RMW costs as much as the acquire CAS itself on the
/// virtualised hosts we bench on. Sharded adds are exact — read with
/// value(), which sums once writers are quiescent.
struct TagAllocatorStats {
  support::Counter Acquires;
  support::Counter TagsGenerated;  ///< IRG path (first holder)
  support::Counter TagsShared;     ///< LDG path (concurrent holder)
  support::Counter Releases;
  support::Counter TagsCleared;    ///< refcount hit zero
  support::Counter OrphanReleases; ///< release with no entry
};

class TagAllocator {
public:
  /// \p EraseDeadEntries: remove a table entry once its reference count
  /// returns to zero. Algorithm 2 as published only clears the tags and
  /// leaves the {referenceNum, mutexAddr} tuple in place for reuse, which
  /// is also faster (no allocator churn per Get/Release pair); erasure is
  /// available for callers that want the table trimmed.
  explicit TagAllocator(TagTableKind Kind = TagTableKind::LockFree,
                        unsigned NumTables = 16,
                        bool EraseDeadEntries = false);

  explicit TagAllocator(const TagAllocatorOptions &Options);

  /// Reclaims every lingering tag: the shadow tag store outlives the
  /// allocator, so deferred-clear residue must not.
  ~TagAllocator();

  TagTableKind lockScheme() const { return Kind; }
  TagTableKind tableKind() const { return Kind; }

  /// Algorithm 1. Returns the tagged pointer bits for [Begin, End).
  /// When \p CacheOut is non-null and the lock-free table resolved a slot,
  /// stores it there (else null); pass it back to release() to skip the
  /// second table probe.
  uint64_t acquire(uint64_t Begin, uint64_t End,
                   TagTable::Slot **CacheOut = nullptr);

  /// Algorithm 2. \p Hint is an optional slot from acquire(); it is
  /// revalidated against \p Begin, so a stale hint degrades to a probe.
  void release(uint64_t Begin, uint64_t End, TagTable::Slot *Hint = nullptr);

  /// Reclaims the lingering (deferred) tags of [Begin, End) if the range
  /// was released but its tags left resident. The security-critical hook:
  /// the heap calls this when an object is freed or swept (and for the
  /// old location of a compacted object), so a dead object never keeps a
  /// valid tag. Returns true when tags were cleared.
  bool reclaimRange(uint64_t Begin, uint64_t End);

  /// Drains every lingering slot (tests, shutdown, exact-semantics
  /// checkpoints). Returns the number of slots reclaimed.
  uint64_t reclaimAll();

  bool deferredTagClear() const { return DeferredTagClear; }

  const TagAllocatorStats &stats() const { return Stats; }
  TagTable &table() { return Table; }

private:
  uint64_t acquireTwoTier(uint64_t Begin, uint64_t End);
  void releaseTwoTier(uint64_t Begin, uint64_t End);
  uint64_t acquireLockFreeSlow(uint64_t Begin, uint64_t End,
                               TagTable::Slot **CacheOut,
                               support::FlightScope &Flight);
  void releaseLockFreeSlow(uint64_t Begin, uint64_t End,
                           support::FlightScope &Flight);

  /// The first-holder tag work: IRG (with the optional adjacent-granule
  /// exclusion) + ST2G/STG over [Begin, End).
  mte::TagValue generateAndApplyTag(uint64_t Begin, uint64_t End);

  TagTableKind Kind;
  bool EraseDeadEntries;
  bool ExcludeAdjacentTags = false;
  bool DeferredTagClear = false;
  TagTable Table;
  std::mutex GlobalMutex; ///< used only by TagTableKind::GlobalLock
  TagAllocatorStats Stats;
  /// Identity of this allocator in the per-ThreadState slot memo. Drawn
  /// from a process-wide monotonic counter and never reused, so a memo
  /// entry left behind by a destroyed allocator can never validate
  /// against a new allocator at the same address.
  const uint64_t MemoOwnerId;

  /// Registry counters for the lock-free fast paths, resolved once at
  /// construction so the hot path pays exactly one sharded relaxed add —
  /// no name lookup, no function-local-static guard. Aggregate metrics
  /// ("core/tagallocator/acquires" etc.) are derived from the per-path
  /// counters at snapshot time and cost nothing here.
  support::Counter &FastAcquireMetric;
  support::Counter &FastReleaseMetric;
};

} // namespace mte4jni::core

#endif // MTE4JNI_CORE_TAGALLOCATOR_H

//===- TagTable.h - Two-tier locked reference-count tables -----------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §3.1.2 data structure: k hash tables, each mapping an
/// object's payload start address to a (reference count, dedicated object
/// lock) tuple. Each table is guarded by its own *table lock*, held only
/// long enough to fetch or create the entry; the per-object *object lock*
/// then guards the reference count and the tag work. Distributing objects
/// across tables by the low bits of their address (begin/16 mod k) is what
/// keeps unrelated objects from contending (§5.3.2's second test).
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_CORE_TAGTABLE_H
#define MTE4JNI_CORE_TAGTABLE_H

#include "mte4jni/mte/Tag.h"
#include "mte4jni/support/Compiler.h"

#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace mte4jni::core {

/// Aggregate counters for contention analysis (ablation benches).
struct TagTableStats {
  uint64_t Lookups = 0;
  uint64_t Creates = 0;
  uint64_t Erases = 0;
};

class TagTable {
public:
  /// One (referenceNum, mutexAddr) tuple from Algorithm 1.
  struct Entry {
    /// Guarded by Mutex (the "object lock").
    uint64_t RefCount = 0;
    std::mutex Mutex;
  };

  using EntryRef = std::shared_ptr<Entry>;

  explicit TagTable(unsigned NumTables = 16);

  unsigned numTables() const { return NumTables; }

  /// Algorithm 1 step 2: lock the shard's table lock, retrieve or create
  /// the entry for \p Begin, unlock. The returned shared_ptr keeps the
  /// entry alive even if another thread erases it concurrently.
  EntryRef lookupOrCreate(uint64_t Begin);

  /// Algorithm 2 step 2: retrieve without creating; null when absent.
  EntryRef lookup(uint64_t Begin);

  /// Erases the entry for \p Begin when its reference count is zero
  /// (called after a release dropped the count to zero). Safe against a
  /// concurrent acquire that resurrected the entry.
  void eraseIfDead(uint64_t Begin);

  /// Shard an address belongs to: (Begin / 16) mod k, per Algorithm 1.
  unsigned shardIndexOf(uint64_t Begin) const {
    return static_cast<unsigned>((Begin >> mte::kGranuleShift) % NumTables);
  }

  size_t liveEntries() const;
  TagTableStats stats() const;

private:
  struct Shard {
    mutable std::mutex TableLock;
    std::unordered_map<uint64_t, EntryRef> Map;
    TagTableStats Stats;
  };

  unsigned NumTables;
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace mte4jni::core

#endif // MTE4JNI_CORE_TAGTABLE_H

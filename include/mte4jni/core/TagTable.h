//===- TagTable.h - Reference-count tables for Algorithm 1/2 --------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §3.1.2 data structure — k hash tables mapping an object's
/// payload start address to a reference count — in three builds:
///
///   * TagTableKind::LockFree (default): an open-addressing array of
///     cache-line-aligned slots per shard. Each slot packs (epoch,
///     resident, refcount) into one atomic state word, so the
///     repeated-acquire path (Algorithm 1 steps 2-4 when the entry already
///     exists) is a CAS loop with no table lock and no heap allocation.
///     With the deferred tag-clear enabled (a lingering budget > 0), a
///     single-holder 1->0 release and the matching 0->1 re-acquire are
///     pure CASes too: the release leaves the granule tags resident and
///     reclamation happens lazily. Only the transitions that write tag
///     memory — the cold first holder, the exact last holder, reclaims —
///     and inserts/erases take the shard mutex. Entries that overflow a
///     probe window spill into the shard's locked map, so capacity is
///     still unbounded.
///   * TagTableKind::TwoTierMutex: the paper's published design. Each
///     shard's *table lock* is held only long enough to fetch or create
///     the entry; the per-object *object lock* then guards the reference
///     count and the tag work.
///   * TagTableKind::GlobalLock: the §3.1 strawman (selected one level up,
///     in TagAllocator, which wraps the two-tier table in one mutex).
///
/// Distributing objects across shards by (begin/16) mod k is what keeps
/// unrelated objects from contending (§5.3.2's second test); the lock-free
/// build additionally keeps *related* acquires of an already-tagged object
/// from contending on anything but the object's own cache line.
///
/// Lock-free invariants (the reasoning behind the memory orders):
///
///   * Slot keys only change under the shard mutex (insert claims an empty
///     or tombstoned slot; erase tombstones). Fast paths only read keys.
///   * The cold refcount 0->1 transition happens under the shard mutex and
///     only *after* the granule tags are written, published by a release
///     store of the new state word (which also sets the resident bit). A
///     fast-path acquirer that observes refcount >= 1 — or refcount 0 with
///     the resident bit set — with an acquire load therefore always reads
///     valid tags with LDG.
///   * An *exact* refcount 1->0 release happens under the shard mutex via
///     CAS, so a racing fast-path increment either lands before the CAS
///     (the CAS fails and the release turns into a plain decrement) or
///     after the slot reads {0, resident=0} (the acquirer falls into the
///     slow path and serialises on the mutex). Tags are cleared only after
///     the CAS to zero succeeds, which also clears the resident bit.
///   * A *deferred* 1->0 release (the lingering state) is a single CAS to
///     {refcount=0, resident=1} with no mutex and no tag writes: the
///     granule tags stay in place, so a later 0->1 re-acquire of the same
///     key is likewise a single CAS ("warm" acquire). Reclamation — CAS to
///     {0, resident=0} with an epoch bump, then clear the tags — happens
///     under the shard mutex (tombstone/recycle, freed-object hooks,
///     budget overflow, reclaimAllResident).
///   * The epoch field increments on every transition that (re)writes tag
///     memory: the cold 0->1 first-holder store and the reclaim CAS. A
///     stalled compare-exchange therefore never succeeds across a
///     tags-changing cycle of the slot — the classic ABA guard. The warm
///     0<->1 cycle deliberately does NOT bump the epoch: while the
///     resident bit stays set the key and the granule tags are provably
///     unchanged (the key can only change after a reclaim, which bumps the
///     epoch first), so a stalled warm CAS that succeeds is
///     indistinguishable from a fresh warm acquire.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_CORE_TAGTABLE_H
#define MTE4JNI_CORE_TAGTABLE_H

#include "mte4jni/mte/Tag.h"
#include "mte4jni/support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace mte4jni::core {

/// Which reference-count table implementation an allocator uses. The
/// Figure 6 / A1 ablations compare all three.
enum class TagTableKind : uint8_t {
  /// Production default: lock-free fast path, mutex slow path.
  LockFree = 0,
  /// The paper's published two-tier locking.
  TwoTierMutex = 1,
  /// The §3.1 strawman: one global mutex around the whole operation.
  GlobalLock = 2,
  /// Legacy spelling of TwoTierMutex (the seed called the paper's design
  /// LockScheme::TwoTier).
  TwoTier = TwoTierMutex,
};

const char *tagTableKindName(TagTableKind Kind);

/// Aggregate counters for contention analysis (ablation benches).
///
/// Accounting rules — identical for every TagTableKind so m4jstat diffs
/// are comparable across ablations:
///
///   * Lookups: every keyed operation that consults a shard under its
///     table lock — lookupOrCreate, lookup, slotLocked and eraseIfDead
///     each count exactly one. The lock-free CAS fast paths (and
///     probeSlot) deliberately count nothing: they write nothing shared
///     beyond the slot they touch.
///   * Creates: one per new entry — a map emplace or a slot claim.
///   * Erases: one per removed entry — a map erase or a slot tombstone.
struct TagTableStats {
  uint64_t Lookups = 0;
  uint64_t Creates = 0;
  uint64_t Erases = 0;
};

class TagTable {
public:
  // ==== locked representation (TwoTierMutex / GlobalLock / overflow) ====

  /// One (referenceNum, mutexAddr) tuple from Algorithm 1.
  struct Entry {
    /// Written only under Mutex (the "object lock"); atomic so liveEntries
    /// can read it without taking every object lock.
    std::atomic<uint64_t> RefCount{0};
    std::mutex Mutex;
    /// Set (under Mutex) by eraseIfDead when the entry leaves the map. An
    /// acquirer that fetched the entry from the map before the erase but
    /// locked it after must not resurrect it — the map no longer points
    /// here, so a later release would see an orphan and leak the tags.
    /// Such an acquirer retries lookupOrCreate instead.
    bool Dead = false;
  };

  using EntryRef = std::shared_ptr<Entry>;

  // ==== lock-free representation =======================================

  /// State word layout: [ epoch : 31 | resident : 1 | refcount : 32 ].
  /// The resident bit records that the slot's granule tags are written and
  /// still in place; at refcount 0 it marks the "lingering" state of a
  /// deferred tag-clear (tags valid, nobody holding).
  static constexpr uint32_t refCountOf(uint64_t State) {
    return static_cast<uint32_t>(State);
  }
  static constexpr bool residentOf(uint64_t State) {
    return (State >> 32) & 1;
  }
  static constexpr uint32_t epochOf(uint64_t State) {
    return static_cast<uint32_t>(State >> 33);
  }
  static constexpr uint64_t packState(uint32_t Epoch, uint32_t Count,
                                      bool Resident = false) {
    return (static_cast<uint64_t>(Epoch & 0x7FFFFFFFu) << 33) |
           (static_cast<uint64_t>(Resident) << 32) | Count;
  }

  /// Sentinel keys. Payload begin addresses are real granule-aligned heap
  /// pointers, so neither value can collide with a live key; addresses
  /// that *would* collide are routed to the overflow map.
  static constexpr uint64_t kEmptyKey = 0;
  static constexpr uint64_t kTombstoneKey = ~0ull;

  /// One open-addressing slot, alone on its cache line so two hot objects
  /// never false-share.
  struct alignas(64) Slot {
    std::atomic<uint64_t> Key{kEmptyKey};
    std::atomic<uint64_t> State{0};
    /// Range length of the current tenant, written by the first holder
    /// under the shard mutex before the state word publishes the count.
    /// Reclamation needs it to know how many granules to untag.
    std::atomic<uint64_t> Bytes{0};
    /// The tenant's granule tag, cached by the first holder alongside
    /// Bytes. A successful acquire CAS synchronises with the state
    /// publish, so the fast path can return this instead of paying an LDG
    /// (region lookup + stats) per acquire. Invariant: equals
    /// ldgTag(Key) whenever the state word shows holders or residency.
    std::atomic<uint8_t> Tag{0};
  };

  /// Linear-probe window. A key lives within this many slots of its home
  /// position or in the overflow map.
  static constexpr unsigned kProbeWindow = 16;

  /// \p ResidentBudgetBytes bounds the total bytes whose tags may linger
  /// after a deferred release (split evenly across shards). 0 disables
  /// deferral entirely: every last-holder release clears tags exactly —
  /// the paper's Algorithm 2 semantics.
  explicit TagTable(unsigned NumTables = 16,
                    TagTableKind Kind = TagTableKind::TwoTierMutex,
                    unsigned SlotsPerShard = 2048,
                    uint64_t ResidentBudgetBytes = 0);

  TagTableKind kind() const { return Kind; }
  unsigned numTables() const { return NumTables; }
  unsigned slotsPerShard() const { return SlotMask ? SlotMask + 1 : 0; }

  // ==== locked API (all kinds; for LockFree this is the overflow map) ====

  /// Algorithm 1 step 2: lock the shard's table lock, retrieve or create
  /// the entry for \p Begin, unlock. The returned shared_ptr keeps the
  /// entry alive even if another thread erases it concurrently.
  EntryRef lookupOrCreate(uint64_t Begin);

  /// Algorithm 2 step 2: retrieve without creating; null when absent.
  EntryRef lookup(uint64_t Begin);

  /// Erases the entry for \p Begin when its reference count is zero
  /// (called after a release dropped the count to zero). Safe against a
  /// concurrent acquire that resurrected the entry. Under LockFree this
  /// tombstones the slot (or erases the overflow entry).
  void eraseIfDead(uint64_t Begin);

  // ==== lock-free fast path ==============================================

  /// Probes the shard's slot array for \p Begin without taking any lock.
  /// Null when the key is absent from the array (it may still live in the
  /// overflow map — the slow path checks under the shard mutex).
  Slot *probeSlot(uint64_t Begin);

  /// The acquire fast path: increments the refcount iff the slot's tags
  /// are valid — refcount >= 1 (a concurrent holder) or refcount 0 with
  /// the resident bit set (a lingering deferred release; the "warm"
  /// re-acquire) — and the slot still belongs to \p Begin. Returns false
  /// when the caller must take the slow path (cold first holder, slot
  /// recycled, or key mismatch).
  static bool tryAcquireShared(Slot &S, uint64_t Begin) {
    uint64_t St = S.State.load(std::memory_order_acquire);
    for (;;) {
      if (refCountOf(St) == 0 && !residentOf(St))
        return false;
      if (S.Key.load(std::memory_order_relaxed) != Begin)
        return false;
      // The CAS compares the full (epoch, resident, count) word: any
      // concurrent exact release-to-zero, reclaim or slot reuse changes
      // it, so success proves the tags stayed valid for this key the
      // whole time.
      if (S.State.compare_exchange_weak(St, St + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire))
        return true;
    }
  }

  /// tryAcquireShared with warm-flavour reporting: \p WasWarm is set iff
  /// this was a 0->1 re-acquire of a lingering slot. No budget traffic —
  /// resident bytes are charged once at first-holder publish and refunded
  /// when the tags are actually cleared (exact release, reclaim, or slot
  /// recycle), so the warm cycle is a single CAS.
  bool acquireFast(Slot &S, uint64_t Begin, bool &WasWarm) {
    uint64_t St = S.State.load(std::memory_order_acquire);
    for (;;) {
      uint32_t Count = refCountOf(St);
      if (Count == 0 && !residentOf(St))
        return false;
      if (S.Key.load(std::memory_order_relaxed) != Begin)
        return false;
      if (S.State.compare_exchange_weak(St, St + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        WasWarm = Count == 0;
        return true;
      }
    }
  }

  /// The shared-release fast path: decrements the refcount iff it is
  /// >= 2 — dropping to zero clears tag memory (or defers, see
  /// releaseFast) and must not race other last-holder handling. Returns
  /// false when the caller must take the slow path.
  static bool tryReleaseShared(Slot &S, uint64_t Begin) {
    uint64_t St = S.State.load(std::memory_order_acquire);
    for (;;) {
      if (refCountOf(St) < 2)
        return false;
      if (S.Key.load(std::memory_order_relaxed) != Begin)
        return false;
      if (S.State.compare_exchange_weak(St, St - 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire))
        return true;
    }
  }

  /// The full release fast path: a plain decrement at refcount >= 2, and —
  /// when the slot is resident and the shard's lingering budget allows —
  /// a *deferred* 1->0 release that leaves the granule tags in place
  /// ({refcount=1, resident=1} -> {refcount=0, resident=1}, one CAS, no
  /// mutex, no tag writes). \p WasDeferred reports the deferred flavour;
  /// \p OverBudget is set when only the budget stopped a deferral (the
  /// slow path then counts slow_reason/deferred_reclaim). Returns false
  /// when the caller must take the slow path (exact last holder, orphan,
  /// or key mismatch).
  bool releaseFast(Slot &S, uint64_t Begin, bool &WasDeferred,
                   bool *OverBudget = nullptr) {
    uint64_t St = S.State.load(std::memory_order_acquire);
    for (;;) {
      uint32_t Count = refCountOf(St);
      if (Count == 0)
        return false;
      if (S.Key.load(std::memory_order_relaxed) != Begin)
        return false;
      if (Count == 1) {
        if (!residentOf(St) || ShardResidentBudget == 0)
          return false;
        // The slot's bytes were charged at publish, so the budget check
        // is a plain load: defer only while the shard's total resident
        // bytes (held + lingering) are within budget. No RMW on success —
        // the charge simply stays in place across the lingering window.
        if (residentBytesOf(Begin).load(std::memory_order_relaxed) >
            ShardResidentBudget) {
          if (OverBudget != nullptr)
            *OverBudget = true;
          return false;
        }
      }
      if (S.State.compare_exchange_weak(St, St - 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire)) {
        WasDeferred = Count == 1;
        return true;
      }
    }
  }

  // ==== lock-free slow path (caller holds the shard mutex) ===============

  /// Locks the shard \p Begin hashes to. When \p Contended is non-null it
  /// is set to true iff the lock had to *wait*: two try-lock probes failed
  /// before falling back to a blocking lock() — the slow-reason
  /// attribution's shard_lock_wait signal. (A single failed probe would
  /// report "was held at probe time", which overcounts: the holder often
  /// leaves before we would have blocked.)
  std::unique_lock<std::mutex> lockShard(uint64_t Begin,
                                         bool *Contended = nullptr);

  /// Finds (and with \p Create, claims) the slot for \p Begin. Requires
  /// \p Lock to hold the shard mutex. Null when the key lives in — or,
  /// with \p Create, must spill to — the overflow map.
  Slot *slotLocked(uint64_t Begin, bool Create,
                   const std::unique_lock<std::mutex> &Lock);

  /// Tombstones \p S so the slot can be reused for another key. Requires
  /// the shard mutex; only valid at refcount zero. A lingering slot is
  /// reclaimed first (tags cleared, epoch bumped) so the next tenant of
  /// the slot can never expose the old tenant's tags.
  void tombstoneLocked(Slot &S, const std::unique_lock<std::mutex> &Lock);

  // ==== deferred tag-clear reclamation ===================================

  struct ReclaimResult {
    uint64_t Slots = 0; ///< lingering slots whose tags were cleared
    uint64_t Bytes = 0; ///< payload bytes untagged
  };

  /// Reclaims the lingering tags of \p Begin's slot, if any: under the
  /// shard mutex, CAS {refcount=0, resident=1} -> {0, resident=0} with an
  /// epoch bump (so stalled warm CASes and stale memo entries die), then
  /// clear the granule tags. A slot that is held (refcount > 0) or not
  /// resident is left alone. This is the freed-object / swept-object hook:
  /// a dead object must never keep a valid tag.
  ReclaimResult reclaimKey(uint64_t Begin);

  /// Reclaims every lingering slot of every shard (drain: tests, shutdown,
  /// exact-semantics checkpoints).
  ReclaimResult reclaimAllResident();

  /// Total bytes whose granule tags are resident — held slots plus
  /// lingering ones. Charged at first-holder publish, refunded when the
  /// tags are cleared (exact release, reclaim, slot recycle); the warm
  /// acquire/release cycle never touches it.
  uint64_t residentBytes() const;
  uint64_t residentBudgetBytes() const {
    return ShardResidentBudget ? ShardResidentBudget * NumTables : 0;
  }

  /// Budget bookkeeping for the slot slow paths (no-ops when deferral is
  /// off): the first holder charges its bytes when it publishes the tags;
  /// the exact-clear release refunds them. Reclaim and tombstone refund
  /// internally.
  void chargeResident(uint64_t Begin, uint64_t Bytes) {
    if (ShardResidentBudget != 0)
      residentBytesOf(Begin).fetch_add(Bytes, std::memory_order_relaxed);
  }
  void unchargeResident(uint64_t Begin, uint64_t Bytes) {
    if (ShardResidentBudget != 0)
      residentBytesOf(Begin).fetch_sub(Bytes, std::memory_order_relaxed);
  }

  /// Shard an address belongs to: (Begin / 16) mod k, per Algorithm 1.
  unsigned shardIndexOf(uint64_t Begin) const {
    return static_cast<unsigned>((Begin >> mte::kGranuleShift) % NumTables);
  }

  /// Entries that hold at least one reference or resident tags: map
  /// entries at RefCount > 0 plus (under LockFree) slots at refcount > 0
  /// or lingering. This is the count that agrees across TagTableKinds for
  /// the same workload — a released-but-not-erased tuple is occupancy, not
  /// liveness.
  size_t liveEntries() const;

  /// Structural occupancy: every map entry plus every claimed slot,
  /// including released-but-kept tuples (Algorithm 2 as published leaves
  /// them in place for reuse).
  size_t occupiedEntries() const;

  TagTableStats stats() const;

private:
  struct Shard {
    mutable std::mutex TableLock;
    /// TwoTierMutex/GlobalLock: every entry. LockFree: overflow only.
    std::unordered_map<uint64_t, EntryRef> Map;
    TagTableStats Stats;
    /// LockFree only; null otherwise.
    std::unique_ptr<Slot[]> Slots;
    /// Bytes with resident tags in this shard, held or lingering: charged
    /// by the first holder's publish (slow path), refunded when the tags
    /// are cleared (exact release, reclaim, tombstone) — so the fast
    /// paths only ever *read* it. Per-shard so the deferred release fast
    /// path never contends on a global counter; the budget check is
    /// therefore per-shard too (total budget / NumTables each).
    std::atomic<uint64_t> ResidentBytes{0};
  };

  std::atomic<uint64_t> &residentBytesOf(uint64_t Begin) {
    return Shards[shardIndexOf(Begin)]->ResidentBytes;
  }

  /// Clears the lingering tags of \p S if it is in the {refcount=0,
  /// resident=1} state; returns the bytes untagged (0 when the slot was
  /// held, resurrected mid-CAS, or not resident). Requires the shard
  /// mutex (keys only change under it, so the Key read is stable).
  uint64_t reclaimSlotLocked(Shard &Sh, Slot &S);

  /// Home position of \p Begin inside its shard's slot array.
  size_t slotHomeOf(uint64_t Begin) const {
    // Fibonacci hash of the granule index; the shard already consumed the
    // low bits via mod k, so mix the rest.
    uint64_t G = Begin >> mte::kGranuleShift;
    return static_cast<size_t>((G * 0x9E3779B97F4A7C15ull) >> 17) & SlotMask;
  }

  TagTableKind Kind;
  unsigned NumTables;
  size_t SlotMask = 0; ///< SlotsPerShard - 1 (power of two), 0 when locked
  /// Per-shard lingering-bytes ceiling (total budget / NumTables, rounded
  /// up). 0 = deferral disabled (exact Algorithm 2 semantics).
  uint64_t ShardResidentBudget = 0;
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace mte4jni::core

#endif // MTE4JNI_CORE_TAGTABLE_H

//===- TagTable.h - Reference-count tables for Algorithm 1/2 --------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §3.1.2 data structure — k hash tables mapping an object's
/// payload start address to a reference count — in three builds:
///
///   * TagTableKind::LockFree (default): an open-addressing array of
///     cache-line-aligned slots per shard. Each slot packs (epoch,
///     refcount) into one atomic state word, so the repeated-acquire path
///     (Algorithm 1 steps 2-4 when the entry already exists) is a CAS loop
///     with no table lock and no heap allocation. Only the 0<->1
///     transitions — where tag memory is written — and inserts/erases take
///     the shard mutex. Entries that overflow a probe window spill into
///     the shard's locked map, so capacity is still unbounded.
///   * TagTableKind::TwoTierMutex: the paper's published design. Each
///     shard's *table lock* is held only long enough to fetch or create
///     the entry; the per-object *object lock* then guards the reference
///     count and the tag work.
///   * TagTableKind::GlobalLock: the §3.1 strawman (selected one level up,
///     in TagAllocator, which wraps the two-tier table in one mutex).
///
/// Distributing objects across shards by (begin/16) mod k is what keeps
/// unrelated objects from contending (§5.3.2's second test); the lock-free
/// build additionally keeps *related* acquires of an already-tagged object
/// from contending on anything but the object's own cache line.
///
/// Lock-free invariants (the reasoning behind the memory orders):
///
///   * Slot keys only change under the shard mutex (insert claims an empty
///     or tombstoned slot; erase tombstones). Fast paths only read keys.
///   * refcount 0->1 happens under the shard mutex and only *after* the
///     granule tags are written, published by a release store of the new
///     state word. A fast-path acquirer that observes refcount >= 1 with
///     an acquire load therefore always reads valid tags with LDG.
///   * refcount 1->0 happens under the shard mutex via CAS, so a racing
///     fast-path increment (which requires refcount >= 1) either lands
///     before the CAS (the CAS fails and the release turns into a plain
///     decrement) or after the slot reads 0 (the acquirer falls into the
///     slow path and serialises on the mutex). Tags are cleared only after
///     the CAS to zero succeeds.
///   * The epoch half of the state word increments on every 0->1
///     transition, so a stalled compare-exchange can never succeed across
///     a release/re-acquire (or tombstone/reuse) of the slot — the classic
///     ABA guard.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_CORE_TAGTABLE_H
#define MTE4JNI_CORE_TAGTABLE_H

#include "mte4jni/mte/Tag.h"
#include "mte4jni/support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

namespace mte4jni::core {

/// Which reference-count table implementation an allocator uses. The
/// Figure 6 / A1 ablations compare all three.
enum class TagTableKind : uint8_t {
  /// Production default: lock-free fast path, mutex slow path.
  LockFree = 0,
  /// The paper's published two-tier locking.
  TwoTierMutex = 1,
  /// The §3.1 strawman: one global mutex around the whole operation.
  GlobalLock = 2,
  /// Legacy spelling of TwoTierMutex (the seed called the paper's design
  /// LockScheme::TwoTier).
  TwoTier = TwoTierMutex,
};

const char *tagTableKindName(TagTableKind Kind);

/// Aggregate counters for contention analysis (ablation benches). Under
/// TagTableKind::LockFree only the slow paths count Lookups — the fast
/// path deliberately writes nothing shared beyond the slot it touches.
struct TagTableStats {
  uint64_t Lookups = 0;
  uint64_t Creates = 0;
  uint64_t Erases = 0;
};

class TagTable {
public:
  // ==== locked representation (TwoTierMutex / GlobalLock / overflow) ====

  /// One (referenceNum, mutexAddr) tuple from Algorithm 1.
  struct Entry {
    /// Guarded by Mutex (the "object lock").
    uint64_t RefCount = 0;
    std::mutex Mutex;
  };

  using EntryRef = std::shared_ptr<Entry>;

  // ==== lock-free representation =======================================

  /// State word layout: [ epoch : 32 | refcount : 32 ].
  static constexpr uint32_t refCountOf(uint64_t State) {
    return static_cast<uint32_t>(State);
  }
  static constexpr uint32_t epochOf(uint64_t State) {
    return static_cast<uint32_t>(State >> 32);
  }
  static constexpr uint64_t packState(uint32_t Epoch, uint32_t Count) {
    return (static_cast<uint64_t>(Epoch) << 32) | Count;
  }

  /// Sentinel keys. Payload begin addresses are real granule-aligned heap
  /// pointers, so neither value can collide with a live key; addresses
  /// that *would* collide are routed to the overflow map.
  static constexpr uint64_t kEmptyKey = 0;
  static constexpr uint64_t kTombstoneKey = ~0ull;

  /// One open-addressing slot, alone on its cache line so two hot objects
  /// never false-share.
  struct alignas(64) Slot {
    std::atomic<uint64_t> Key{kEmptyKey};
    std::atomic<uint64_t> State{0};
  };

  /// Linear-probe window. A key lives within this many slots of its home
  /// position or in the overflow map.
  static constexpr unsigned kProbeWindow = 16;

  explicit TagTable(unsigned NumTables = 16,
                    TagTableKind Kind = TagTableKind::TwoTierMutex,
                    unsigned SlotsPerShard = 2048);

  TagTableKind kind() const { return Kind; }
  unsigned numTables() const { return NumTables; }
  unsigned slotsPerShard() const { return SlotMask ? SlotMask + 1 : 0; }

  // ==== locked API (all kinds; for LockFree this is the overflow map) ====

  /// Algorithm 1 step 2: lock the shard's table lock, retrieve or create
  /// the entry for \p Begin, unlock. The returned shared_ptr keeps the
  /// entry alive even if another thread erases it concurrently.
  EntryRef lookupOrCreate(uint64_t Begin);

  /// Algorithm 2 step 2: retrieve without creating; null when absent.
  EntryRef lookup(uint64_t Begin);

  /// Erases the entry for \p Begin when its reference count is zero
  /// (called after a release dropped the count to zero). Safe against a
  /// concurrent acquire that resurrected the entry. Under LockFree this
  /// tombstones the slot (or erases the overflow entry).
  void eraseIfDead(uint64_t Begin);

  // ==== lock-free fast path ==============================================

  /// Probes the shard's slot array for \p Begin without taking any lock.
  /// Null when the key is absent from the array (it may still live in the
  /// overflow map — the slow path checks under the shard mutex).
  Slot *probeSlot(uint64_t Begin);

  /// The repeated-acquire fast path: increments the refcount iff it is
  /// already >= 1 (i.e. the object is tagged) and the slot still belongs
  /// to \p Begin. Returns false when the caller must take the slow path
  /// (first holder, slot recycled, or key mismatch).
  static bool tryAcquireShared(Slot &S, uint64_t Begin) {
    uint64_t St = S.State.load(std::memory_order_acquire);
    for (;;) {
      if (refCountOf(St) == 0)
        return false;
      if (S.Key.load(std::memory_order_relaxed) != Begin)
        return false;
      // The CAS compares the full (epoch, count) word: any concurrent
      // release-to-zero or slot reuse changes it, so success proves the
      // count stayed >= 1 for this key the whole time.
      if (S.State.compare_exchange_weak(St, St + 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire))
        return true;
    }
  }

  /// The repeated-release fast path: decrements the refcount iff it is
  /// >= 2 — dropping to zero clears tag memory and must serialise on the
  /// shard mutex. Returns false when the caller must take the slow path.
  static bool tryReleaseShared(Slot &S, uint64_t Begin) {
    uint64_t St = S.State.load(std::memory_order_acquire);
    for (;;) {
      if (refCountOf(St) < 2)
        return false;
      if (S.Key.load(std::memory_order_relaxed) != Begin)
        return false;
      if (S.State.compare_exchange_weak(St, St - 1,
                                        std::memory_order_acq_rel,
                                        std::memory_order_acquire))
        return true;
    }
  }

  // ==== lock-free slow path (caller holds the shard mutex) ===============

  /// Locks the shard \p Begin hashes to. When \p Contended is non-null it
  /// is set to true iff the mutex was already held and the lock had to
  /// block — the slow-reason attribution's shard_contended signal.
  std::unique_lock<std::mutex> lockShard(uint64_t Begin,
                                         bool *Contended = nullptr);

  /// Finds (and with \p Create, claims) the slot for \p Begin. Requires
  /// \p Lock to hold the shard mutex. Null when the key lives in — or,
  /// with \p Create, must spill to — the overflow map.
  Slot *slotLocked(uint64_t Begin, bool Create,
                   const std::unique_lock<std::mutex> &Lock);

  /// Tombstones \p S so the slot can be reused for another key. Requires
  /// the shard mutex; only valid at refcount zero.
  void tombstoneLocked(Slot &S, const std::unique_lock<std::mutex> &Lock);

  /// Shard an address belongs to: (Begin / 16) mod k, per Algorithm 1.
  unsigned shardIndexOf(uint64_t Begin) const {
    return static_cast<unsigned>((Begin >> mte::kGranuleShift) % NumTables);
  }

  /// Live entries: map entries plus (under LockFree) occupied slots.
  size_t liveEntries() const;
  TagTableStats stats() const;

private:
  struct Shard {
    mutable std::mutex TableLock;
    /// TwoTierMutex/GlobalLock: every entry. LockFree: overflow only.
    std::unordered_map<uint64_t, EntryRef> Map;
    TagTableStats Stats;
    /// LockFree only; null otherwise.
    std::unique_ptr<Slot[]> Slots;
  };

  /// Home position of \p Begin inside its shard's slot array.
  size_t slotHomeOf(uint64_t Begin) const {
    // Fibonacci hash of the granule index; the shard already consumed the
    // low bits via mod k, so mix the rest.
    uint64_t G = Begin >> mte::kGranuleShift;
    return static_cast<size_t>((G * 0x9E3779B97F4A7C15ull) >> 17) & SlotMask;
  }

  TagTableKind Kind;
  unsigned NumTables;
  size_t SlotMask = 0; ///< SlotsPerShard - 1 (power of two), 0 when locked
  std::vector<std::unique_ptr<Shard>> Shards;
};

} // namespace mte4jni::core

#endif // MTE4JNI_CORE_TAGTABLE_H

//===- AllocTagPolicy.h - Tag-on-allocation design ablation -----------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A design-space ablation the paper implicitly rejects: instead of
/// tagging objects when a JNI interface exposes them (Algorithm 1) and
/// untagging on release (Algorithm 2), tag every object ONCE at heap
/// allocation (HWASan-style) and keep the tag for the object's lifetime.
///
///   + Get/Release become a single LDG / a no-op: no reference counting,
///     no hash tables, no locks — the Figure 6 contention problem
///     disappears by construction.
///   - Use-after-release detection is lost (the tag never changes while
///     the object lives), and every allocation pays tagging whether or
///     not native code ever sees the object — expensive for
///     allocation-heavy workloads whose objects never cross JNI.
///   - Support threads (GC) must run checks-suppressed for their whole
///     life, since the heap is permanently multicoloured.
///
/// The ablation bench (bench_ablation_tag_on_alloc) quantifies the
/// trade-off; the policy itself lives here so tests can pin its exact
/// detection envelope against MTE4JNI's.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_CORE_ALLOCTAGPOLICY_H
#define MTE4JNI_CORE_ALLOCTAGPOLICY_H

#include "mte4jni/jni/CheckPolicy.h"
#include "mte4jni/mte/TaggedArena.h"

namespace mte4jni::core {

class AllocTagPolicy final : public jni::CheckPolicy {
public:
  explicit AllocTagPolicy(uint64_t ScratchArenaBytes = 8ull << 20);

  const char *name() const override { return "tag-on-alloc"; }

  /// The object was tagged at allocation: just read the tag back (LDG)
  /// and hand out the retagged pointer.
  uint64_t acquire(const jni::JniBufferInfo &Info, bool &IsCopy) override;

  /// Nothing to do — the tag lives as long as the object.
  void release(const jni::JniBufferInfo &Info, uint64_t NativeBits,
               jni::jint Mode) override;

  uint64_t acquireScratch(uint64_t Bytes, const char *Interface) override;
  void releaseScratch(uint64_t NativeBits, uint64_t Bytes,
                      const char *Interface) override;

  bool exposesDirectPointers() const override { return true; }

private:
  mte::TaggedArena Scratch;
};

} // namespace mte4jni::core

#endif // MTE4JNI_CORE_ALLOCTAGPOLICY_H

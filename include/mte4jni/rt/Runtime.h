//===- Runtime.h - Mini-ART runtime ----------------------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime object that ties the substrate together: heap, GC, thread
/// registry, root scopes and JNI critical-section accounting. It also owns
/// the process-level MTE configuration (check mode, heap PROT_MTE
/// registration) for the active protection scheme.
///
/// Only one Runtime may be live at a time (it configures the process-wide
/// MTE simulator), mirroring one ART per app process.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_RT_RUNTIME_H
#define MTE4JNI_RT_RUNTIME_H

#include "mte4jni/mte/Tag.h"
#include "mte4jni/rt/Gc.h"
#include "mte4jni/rt/Handle.h"
#include "mte4jni/rt/Heap.h"
#include "mte4jni/rt/JavaThread.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mte4jni::rt {

struct RuntimeConfig {
  HeapConfig Heap;
  GcConfig Gc;

  /// Process-wide TCF mode installed via the simulated prctl.
  mte::CheckMode CheckMode = mte::CheckMode::None;

  /// §3.3/§4.3: toggle TCO at native-code boundaries. True for the
  /// MTE4JNI schemes; mutator threads then run with checks suppressed
  /// except while inside native methods.
  bool TagChecksInNative = false;

  /// Seed for the MTE simulator's per-thread IRG RNGs.
  uint64_t Seed = 1;
};

class Runtime {
public:
  explicit Runtime(const RuntimeConfig &Config);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  const RuntimeConfig &config() const { return Config; }
  JavaHeap &heap() { return *Heap; }
  GcController &gc() { return *Gc; }

  // -- threads -----------------------------------------------------------
  /// Attaches the calling thread; sets up its MTE thread state per the
  /// active scheme (TCO suppressed outside native code).
  JavaThread &attachCurrentThread(std::string Name,
                                  ThreadKind Kind = ThreadKind::Mutator);

  /// Detaches the calling thread (a simulated syscall boundary: thread
  /// teardown enters the kernel).
  void detachCurrentThread();

  // -- object factory -------------------------------------------------------
  /// Allocates and roots a primitive array (zero-initialised).
  ObjectHeader *newPrimArray(HandleScope &Scope, PrimType Elem,
                             uint32_t Length);

  /// Allocates and roots an Object[] of null slots.
  ObjectHeader *newRefArray(HandleScope &Scope, uint32_t Length);

  /// Allocates and roots a string.
  ObjectHeader *newString(HandleScope &Scope, std::u16string_view Units);
  ObjectHeader *newStringUtf8(HandleScope &Scope, std::string_view Utf8);

  // -- GC root scopes ------------------------------------------------------
  void registerScope(HandleScope *Scope);
  void unregisterScope(HandleScope *Scope);
  std::vector<ObjectHeader *> snapshotRoots() const;

  /// Rewrites every root slot per \p Moved (old -> new); used by the
  /// compacting collector after sliding objects.
  void updateRootsAfterMove(
      const std::vector<std::pair<ObjectHeader *, ObjectHeader *>> &Moved);

  // -- JNI critical sections ----------------------------------------------
  /// Enters a JNI critical section (GetPrimitiveArrayCritical /
  /// GetStringCritical). Blocks while a GC pause is active, unless the
  /// calling thread is already inside a critical section.
  void enterCritical();
  void exitCritical();
  uint32_t criticalDepth() const {
    return CriticalCount.load(std::memory_order_acquire);
  }

  // -- world pause (GC) ------------------------------------------------------
  /// Acquires the world pause: blocks new critical sections, waits for
  /// outstanding ones to drain. Paired with endPause().
  void beginPause();
  void endPause();

  /// The currently live runtime, or nullptr.
  static Runtime *currentOrNull();

private:
  RuntimeConfig Config;
  std::unique_ptr<JavaHeap> Heap;
  std::unique_ptr<GcController> Gc;

  mutable std::mutex ScopeLock;
  std::vector<HandleScope *> Scopes;

  // Critical-section / pause coordination. The critical fast path (no GC
  // pause pending) is lock-free: benchmark comparisons of the policies'
  // own locking (Figure 6) must not be drowned by a shared runtime mutex.
  std::mutex PauseLock;
  std::condition_variable PauseCv;
  std::atomic<bool> PauseActive{false};
  std::atomic<uint32_t> CriticalCount{0};
};

} // namespace mte4jni::rt

#endif // MTE4JNI_RT_RUNTIME_H

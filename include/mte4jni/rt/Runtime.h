//===- Runtime.h - Mini-ART runtime ----------------------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime object that ties the substrate together: heap, GC, thread
/// registry, root scopes and JNI critical-section accounting. It also owns
/// the process-level MTE configuration (check mode, heap PROT_MTE
/// registration) for the active protection scheme.
///
/// Only one Runtime may be live at a time (it configures the process-wide
/// MTE simulator), mirroring one ART per app process.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_RT_RUNTIME_H
#define MTE4JNI_RT_RUNTIME_H

#include "mte4jni/mte/Tag.h"
#include "mte4jni/rt/Gc.h"
#include "mte4jni/rt/Handle.h"
#include "mte4jni/rt/Heap.h"
#include "mte4jni/rt/JavaThread.h"

#include <condition_variable>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <string_view>
#include <vector>

namespace mte4jni::rt {

struct RuntimeConfig {
  HeapConfig Heap;
  GcConfig Gc;

  /// Process-wide TCF mode installed via the simulated prctl.
  mte::CheckMode CheckMode = mte::CheckMode::None;

  /// §3.3/§4.3: toggle TCO at native-code boundaries. True for the
  /// MTE4JNI schemes; mutator threads then run with checks suppressed
  /// except while inside native methods.
  bool TagChecksInNative = false;

  /// Seed for the MTE simulator's per-thread IRG RNGs.
  uint64_t Seed = 1;
};

class Runtime {
public:
  explicit Runtime(const RuntimeConfig &Config);
  ~Runtime();

  Runtime(const Runtime &) = delete;
  Runtime &operator=(const Runtime &) = delete;

  const RuntimeConfig &config() const { return Config; }
  JavaHeap &heap() { return *Heap; }
  GcController &gc() { return *Gc; }

  // -- threads -----------------------------------------------------------
  /// Attaches the calling thread; sets up its MTE thread state per the
  /// active scheme (TCO suppressed outside native code).
  JavaThread &attachCurrentThread(std::string Name,
                                  ThreadKind Kind = ThreadKind::Mutator);

  /// Detaches the calling thread (a simulated syscall boundary: thread
  /// teardown enters the kernel).
  void detachCurrentThread();

  // -- object factory -------------------------------------------------------
  /// Allocates and roots a primitive array (zero-initialised).
  ObjectHeader *newPrimArray(HandleScope &Scope, PrimType Elem,
                             uint32_t Length);

  /// Allocates and roots an Object[] of null slots.
  ObjectHeader *newRefArray(HandleScope &Scope, uint32_t Length);

  /// Allocates and roots a string.
  ObjectHeader *newString(HandleScope &Scope, std::u16string_view Units);
  ObjectHeader *newStringUtf8(HandleScope &Scope, std::string_view Utf8);

  // -- GC root scopes ------------------------------------------------------
  void registerScope(HandleScope *Scope);
  void unregisterScope(HandleScope *Scope);
  std::vector<ObjectHeader *> snapshotRoots() const;

  /// Rewrites every root slot per \p Moved (old -> new); used by the
  /// compacting collector after sliding objects.
  void updateRootsAfterMove(
      const std::vector<std::pair<ObjectHeader *, ObjectHeader *>> &Moved);

  // -- runtime critical sections (safepoint exclusion) ---------------------
  /// Enters a runtime critical section. Critical sections are the mutator
  /// side of the safepoint handshake: while a thread holds one, a GC
  /// stop-the-world pause cannot begin, and entering one blocks while a
  /// pause is active. Used by the JNI critical interfaces
  /// (GetPrimitiveArrayCritical / GetStringCritical), by every JNI
  /// operation that touches an object payload (pin/unpin, region copies),
  /// and by rt::callNative, which brackets the whole native method body —
  /// making native-call entry the natural safepoint. Nested enters from an
  /// attached thread are pure thread-local bookkeeping (no atomics).
  void enterCritical();
  void exitCritical();

  /// The calling thread's critical nesting depth when it is attached;
  /// otherwise the number of threads currently inside a critical section.
  uint32_t criticalDepth() const;

  /// Safepoint checkpoint for long-running native sections (per-char
  /// string-critical scans and similar). One seq_cst load when no pause is
  /// pending; when one is, the calling thread parks its critical claim
  /// (its pinned buffers stay valid: pins block sweep and compaction),
  /// lets the pause run, and re-claims before returning. Callers must not
  /// be mid-write to an object payload across a poll.
  void safepointPoll();

  // -- world pause (GC) ------------------------------------------------------
  /// Acquires the world pause: blocks new critical sections and waits for
  /// outstanding ones to drain (rendezvous, no polling). If the calling
  /// thread itself holds a critical section (a mutator collecting after a
  /// failed allocation), its claim is parked for the duration of the pause
  /// — it is at a safepoint — and restored by endPause(). Records the
  /// rt/gc/ttsp_nanos (time-to-safepoint) histogram and a GC.ttsp flight
  /// slice for the request->drained window. Paired with endPause().
  void beginPause();
  void endPause();

  /// The currently live runtime, or nullptr.
  static Runtime *currentOrNull();

private:
  RuntimeConfig Config;
  std::unique_ptr<JavaHeap> Heap;
  std::unique_ptr<GcController> Gc;

  mutable std::mutex ScopeLock;
  std::vector<HandleScope *> Scopes;

  // Critical-section / pause coordination. The critical fast path (no GC
  // pause pending) is lock-free: benchmark comparisons of the policies'
  // own locking (Figure 6) must not be drowned by a shared runtime mutex.
  //
  // Protocol invariants (see DESIGN.md §11 for the state diagram):
  //   * CriticalCount counts THREADS currently inside >= 1 critical
  //     section (per-thread nesting lives in JavaThread::CriticalDepth),
  //     so nested enter/exit never touches the shared cache line.
  //   * All CriticalCount RMWs and PauseActive loads/stores on the
  //     handshake paths are seq_cst: either the entering mutator observes
  //     PauseActive or the collector observes the incremented count — the
  //     store-buffering outcome where both miss is excluded.
  //   * Every decrement that can unblock a waiting collector notifies
  //     DrainCv while holding PauseLock, so the collector (whose predicate
  //     check runs under the same lock) cannot lose the wakeup. DrainCv
  //     has at most ONE waiter (the pause owner) and is notify_one;
  //     mutators blocked on the pause wait on ResumeCv and are woken once
  //     per pause by endPause — keeping the two populations on one cv made
  //     every mid-drain exitCritical spuriously wake every blocked mutator
  //     (an O(threads^2) scheduler storm per pause on small machines).
  std::mutex PauseLock;
  std::condition_variable DrainCv;  ///< pause owner waits for count==0
  std::condition_variable ResumeCv; ///< mutators/queued collectors wait !PauseActive
  std::atomic<bool> PauseActive{false};
  std::atomic<uint32_t> CriticalCount{0};
};

/// RAII runtime critical section: the bracket JNI payload operations and
/// rt::callNative place around payload-touching work so it is mutually
/// exclusive with the GC stop-the-world window.
class ScopedCritical {
public:
  explicit ScopedCritical(Runtime &RT) : RT(RT) { RT.enterCritical(); }
  ~ScopedCritical() { RT.exitCritical(); }

  ScopedCritical(const ScopedCritical &) = delete;
  ScopedCritical &operator=(const ScopedCritical &) = delete;

private:
  Runtime &RT;
};

} // namespace mte4jni::rt

#endif // MTE4JNI_RT_RUNTIME_H

//===- Object.h - Mini-ART object model ----------------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Java object model this runtime supports: primitive arrays and
/// strings — exactly the object kinds the paper's Table 1 interfaces hand
/// raw pointers out for. Every heap object starts with a 16-byte header
/// (one MTE granule) so the payload of a granule-aligned allocation starts
/// on its own granule.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_RT_OBJECT_H
#define MTE4JNI_RT_OBJECT_H

#include "mte4jni/support/Compiler.h"

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace mte4jni::rt {

/// Java primitive element types.
enum class PrimType : uint8_t {
  Boolean,
  Byte,
  Char,
  Short,
  Int,
  Long,
  Float,
  Double,
};

inline constexpr unsigned kNumPrimTypes = 8;

/// Element size in bytes.
constexpr size_t primSize(PrimType Type) {
  switch (Type) {
  case PrimType::Boolean:
  case PrimType::Byte:
    return 1;
  case PrimType::Char:
  case PrimType::Short:
    return 2;
  case PrimType::Int:
  case PrimType::Float:
    return 4;
  case PrimType::Long:
  case PrimType::Double:
    return 8;
  }
  return 0;
}

const char *primTypeName(PrimType Type);

/// Maps C++ element types onto PrimType.
template <typename T> struct PrimTypeOf;
template <> struct PrimTypeOf<uint8_t> {
  static constexpr PrimType value = PrimType::Boolean;
};
template <> struct PrimTypeOf<int8_t> {
  static constexpr PrimType value = PrimType::Byte;
};
template <> struct PrimTypeOf<uint16_t> {
  static constexpr PrimType value = PrimType::Char;
};
template <> struct PrimTypeOf<int16_t> {
  static constexpr PrimType value = PrimType::Short;
};
template <> struct PrimTypeOf<int32_t> {
  static constexpr PrimType value = PrimType::Int;
};
template <> struct PrimTypeOf<int64_t> {
  static constexpr PrimType value = PrimType::Long;
};
template <> struct PrimTypeOf<float> {
  static constexpr PrimType value = PrimType::Float;
};
template <> struct PrimTypeOf<double> {
  static constexpr PrimType value = PrimType::Double;
};

/// What kind of heap object a header describes.
enum class ObjectKind : uint8_t {
  /// A primitive array (element type in the header).
  PrimArray,
  /// A java.lang.String: payload is UTF-16 code units.
  String,
  /// An Object[]: payload is ObjectHeader* slots. The GC traces through
  /// these (transitive marking) and rewrites them after compaction. JNI
  /// never hands out raw pointers into reference arrays (they are not in
  /// the paper's Table 1); access goes through the bounds-checked
  /// Get/SetObjectArrayElement interfaces.
  RefArray,
};

/// Header flags.
enum : uint32_t {
  kFlagMarked = 1u << 0, ///< GC mark bit.
  // Bits 16..31: pin count (JNI Get* interfaces pin objects so the sweep
  // phase never frees memory native code still references).
  kPinShift = 16,
  kPinIncrement = 1u << kPinShift,
};

/// 16-byte object header — exactly one MTE granule, so a granule-aligned
/// object's payload begins on a fresh granule and the MTE4JNI policy can
/// tag payload granules without touching the header granule the GC reads.
struct ObjectHeader {
  uint32_t ClassWord;  ///< ObjectKind | (PrimType << 8)
  uint32_t Length;     ///< element count (array) / UTF-16 units (string)
  uint32_t SizeBytes;  ///< full allocation size including this header
  uint32_t Flags;      ///< mark bit + pin count

  ObjectKind kind() const {
    return static_cast<ObjectKind>(ClassWord & 0xFF);
  }
  PrimType elemType() const {
    return static_cast<PrimType>((ClassWord >> 8) & 0xFF);
  }

  /// Start of the payload.
  void *data() { return this + 1; }
  const void *data() const { return this + 1; }
  uint64_t dataAddress() const {
    return reinterpret_cast<uint64_t>(this + 1);
  }

  /// Payload size in bytes (may be smaller than the allocation slack).
  uint64_t dataBytes() const {
    return static_cast<uint64_t>(Length) * primSize(elemType());
  }

  /// One-past-the-end of the payload.
  uint64_t dataEnd() const { return dataAddress() + dataBytes(); }

  // Flag mutations use atomic RMW: native threads pin/unpin concurrently
  // with the GC toggling mark bits.

  // -- mark bit ---------------------------------------------------------
  bool isMarked() const {
    return std::atomic_ref<uint32_t>(
               const_cast<uint32_t &>(Flags)).load(std::memory_order_relaxed) &
           kFlagMarked;
  }
  void setMarked(bool Marked) {
    std::atomic_ref<uint32_t> Ref(Flags);
    if (Marked)
      Ref.fetch_or(kFlagMarked, std::memory_order_relaxed);
    else
      Ref.fetch_and(~kFlagMarked, std::memory_order_relaxed);
  }
  /// Sets the mark bit and reports whether THIS call claimed it — the
  /// parallel mark phase's claim operation (exactly one worker traces each
  /// object's children).
  bool tryMark() {
    return !(std::atomic_ref<uint32_t>(Flags).fetch_or(
                 kFlagMarked, std::memory_order_relaxed) &
             kFlagMarked);
  }

  // -- pin count ---------------------------------------------------------
  uint32_t pinCount() const {
    return std::atomic_ref<uint32_t>(const_cast<uint32_t &>(Flags))
               .load(std::memory_order_relaxed) >>
           kPinShift;
  }
  void pin() {
    M4J_ASSERT(pinCount() < 0xFFFF, "pin count overflow");
    std::atomic_ref<uint32_t>(Flags).fetch_add(kPinIncrement,
                                               std::memory_order_acq_rel);
  }
  void unpin() {
    M4J_ASSERT(pinCount() > 0, "unpin of unpinned object");
    std::atomic_ref<uint32_t>(Flags).fetch_sub(kPinIncrement,
                                               std::memory_order_acq_rel);
  }
};

static_assert(sizeof(ObjectHeader) == 16,
              "header must occupy exactly one MTE granule");

/// Builds the ClassWord for an object.
constexpr uint32_t makeClassWord(ObjectKind Kind, PrimType Elem) {
  return static_cast<uint32_t>(Kind) | (static_cast<uint32_t>(Elem) << 8);
}

/// Reference-array slot accessor.
inline ObjectHeader **refArraySlots(ObjectHeader *Obj) {
  M4J_ASSERT(Obj->kind() == ObjectKind::RefArray, "not a reference array");
  return static_cast<ObjectHeader **>(Obj->data());
}

/// Typed payload accessor (Java-side view; unchecked host pointer).
template <typename T> T *arrayData(ObjectHeader *Obj) {
  M4J_ASSERT(Obj->elemType() == PrimTypeOf<T>::value ||
                 Obj->kind() == ObjectKind::String,
             "array element type mismatch");
  return static_cast<T *>(Obj->data());
}

} // namespace mte4jni::rt

#endif // MTE4JNI_RT_OBJECT_H

//===- Gc.h - Stop-the-world mark-sweep collector --------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A mark-sweep collector with an optional background thread. Two details
/// matter for the paper's reproduction:
///
///   * The GC accesses the heap with *untagged* pointers ("the pointer in
///     the GC thread never walks through the JNI interface to be tagged",
///     §3.3). The optional verification pass reads object payloads, so if
///     the GC thread's tag checks were enabled it would fault on every
///     array currently tagged by MTE4JNI. GcConfig::SuppressTagChecks
///     models the correct TCO handling; setting it to false reproduces the
///     failure the paper warns about.
///   * Objects pinned by JNI Get* interfaces are never swept, and the
///     collector waits for JNI critical sections to drain before running.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_RT_GC_H
#define MTE4JNI_RT_GC_H

#include "mte4jni/rt/Object.h"

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace mte4jni::support {
class ThreadPool;
} // namespace mte4jni::support

namespace mte4jni::rt {

class Runtime;

enum class GcMode : uint8_t {
  /// Mark-sweep in place; objects never move.
  MarkSweep,
  /// Mark-compact: live objects slide toward the heap base, handle-scope
  /// roots are updated — EXCEPT objects pinned by JNI Get* interfaces,
  /// which stay put (ART's rule: native code holds raw pointers into
  /// them). This mode makes the pin semantics observable.
  Compacting,
};

struct GcConfig {
  GcMode Mode = GcMode::MarkSweep;
  /// Run a background thread that collects every IntervalMillis.
  bool BackgroundThread = false;
  uint32_t IntervalMillis = 5;
  /// Heap verification: read every live object's payload (through the
  /// checked-access API with untagged pointers) — the access pattern that
  /// makes thread-level MTE control necessary.
  bool VerifyObjectBodies = true;
  /// Keep TCO set on the GC thread (correct §3.3 behaviour). Setting this
  /// to false demonstrates the crash mode the paper describes.
  bool SuppressTagChecks = true;
  /// Worker threads for the mark-clear, mark, sweep and slot-rewrite
  /// phases. 1 = single-threaded (the ablation baseline); 0 = auto
  /// (min(hardware threads, 8)). The verify pass is always
  /// single-threaded.
  unsigned Parallelism = 0;
};

struct GcResult {
  uint64_t ObjectsScanned = 0;
  uint64_t ObjectsFreed = 0;
  uint64_t BytesFreed = 0;
  uint64_t ObjectsVerified = 0;
  uint64_t PayloadBytesVerified = 0;
  uint64_t ObjectsMoved = 0;   ///< compacting mode only
  uint64_t ObjectsPinnedInPlace = 0;
};

class GcController {
public:
  GcController(Runtime &RT, const GcConfig &Config);
  ~GcController();

  GcController(const GcController &) = delete;
  GcController &operator=(const GcController &) = delete;

  /// Starts the background thread when configured; idempotent.
  void start();

  /// Stops the background thread; idempotent.
  void stop();

  /// Runs one stop-the-world collection on the calling thread.
  GcResult collect();

  /// Runs only the verification pass (reads every payload).
  uint64_t verifyHeap();

  uint64_t completedCycles() const {
    return Cycles.load(std::memory_order_relaxed);
  }

  const GcConfig &config() const { return Config; }

  /// Resolved worker count (after the Parallelism=0 auto rule).
  unsigned workers() const { return Workers; }

private:
  void backgroundLoop();
  void verifyPass(GcResult &Result);

  /// Runs Body(Stripe) for every stripe: inline when Workers == 1, on the
  /// lazily created pool otherwise.
  void runStriped(unsigned NumStripes,
                  const std::function<void(size_t)> &Body);
  /// Clears every live object's mark bit; returns the object count.
  uint64_t clearMarks();
  /// Marks everything transitively reachable from \p Roots.
  void markFromRoots(std::vector<ObjectHeader *> Roots);
  /// Frees unmarked, unpinned objects; accumulates into \p Result.
  void sweep(GcResult &Result);

  Runtime &RT;
  GcConfig Config;
  unsigned Workers = 1;
  std::unique_ptr<support::ThreadPool> Pool;

  std::thread Worker;
  std::atomic<bool> Running{false};
  std::atomic<bool> StopRequested{false};
  std::mutex WakeLock;
  std::condition_variable WakeCv;

  std::atomic<uint64_t> Cycles{0};
  /// Keeps the verify pass's reads observable to the optimiser.
  volatile uint8_t VerifySink = 0;
};

} // namespace mte4jni::rt

#endif // MTE4JNI_RT_GC_H

//===- JavaThread.h - Mini-ART thread states ------------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The runtime's view of a thread. Mutator threads move between Runnable
/// (executing "Java" code) and InNative (inside a native method); support
/// threads (GC) stay Runnable. The state-transition functions are the
/// paper's §4.3 insertion point: when the runtime is configured for
/// MTE4JNI, entering native clears TCO (enabling tag checks for exactly
/// the code that holds raw Java-heap pointers) and leaving native sets it
/// again.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_RT_JAVATHREAD_H
#define MTE4JNI_RT_JAVATHREAD_H

#include "mte4jni/support/Compiler.h"

#include <cstdint>
#include <string>

namespace mte4jni::rt {

class Runtime;

enum class ThreadKind : uint8_t {
  /// An application thread that runs Java code and calls native methods.
  Mutator,
  /// A runtime support thread (GC); accesses the heap with untagged
  /// pointers and never goes through JNI trampolines.
  GcSupport,
};

enum class JavaThreadState : uint8_t {
  Runnable, ///< executing managed code
  InNative, ///< inside a native method
};

class JavaThread {
public:
  /// The calling thread's JavaThread, or nullptr when not attached.
  static JavaThread *currentOrNull();

  /// The calling thread's JavaThread; asserts when not attached.
  static JavaThread &current();

  Runtime &runtime() const { return RT; }
  const std::string &name() const { return Name; }
  ThreadKind kind() const { return Kind; }
  JavaThreadState state() const { return State; }

  /// §4.3: the Java->native thread state transition. For regular native
  /// methods the trampoline calls this, and this is where the TCO toggle
  /// lives.
  void transitionToNative();

  /// The native->Java transition; restores TCO.
  void transitionToRunnable();

  /// Per-thread JNI critical-section nesting depth.
  uint32_t criticalDepth() const { return CriticalDepth; }

  ~JavaThread();

private:
  friend class Runtime;
  JavaThread(Runtime &RT, std::string Name, ThreadKind Kind);

  Runtime &RT;
  std::string Name;
  ThreadKind Kind;
  JavaThreadState State = JavaThreadState::Runnable;
  uint32_t CriticalDepth = 0;
};

} // namespace mte4jni::rt

#endif // MTE4JNI_RT_JAVATHREAD_H

//===- JavaString.h - UTF-16 string objects and UTF-8 conversion ----*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Helpers for the String object kind: construction from UTF-8/UTF-16 and
/// the (modified-)UTF-8 conversion GetStringUTFChars performs. Surrogate
/// pairs are handled; invalid sequences are replaced with U+FFFD, matching
/// lenient runtime behaviour.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_RT_JAVASTRING_H
#define MTE4JNI_RT_JAVASTRING_H

#include "mte4jni/rt/Object.h"

#include <string>
#include <string_view>

namespace mte4jni::rt {

class JavaHeap;

/// UTF-16 payload view of a String object.
inline const uint16_t *stringChars(const ObjectHeader *Str) {
  M4J_ASSERT(Str->kind() == ObjectKind::String, "not a string");
  return static_cast<const uint16_t *>(Str->data());
}
inline uint16_t *stringChars(ObjectHeader *Str) {
  M4J_ASSERT(Str->kind() == ObjectKind::String, "not a string");
  return static_cast<uint16_t *>(Str->data());
}

/// Allocates a String from UTF-16 units.
ObjectHeader *newString(JavaHeap &Heap, std::u16string_view Units);

/// Allocates a String from UTF-8 bytes (invalid sequences -> U+FFFD).
ObjectHeader *newStringUtf8(JavaHeap &Heap, std::string_view Utf8);

/// Number of UTF-8 bytes the string converts to (excluding terminator).
size_t utf8Length(const ObjectHeader *Str);

/// Converts the string payload to UTF-8 into \p Out (resized to fit),
/// without a trailing NUL.
void toUtf8(const ObjectHeader *Str, std::string &Out);

/// Decodes UTF-8 into UTF-16 units.
std::u16string utf8ToUtf16(std::string_view Utf8);

/// Encodes UTF-16 units into UTF-8.
std::string utf16ToUtf8(std::u16string_view Units);

} // namespace mte4jni::rt

#endif // MTE4JNI_RT_JAVASTRING_H

//===- Trampoline.h - Native method call bridges ---------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated equivalents of ART's native-method trampolines, including
/// the §4.3 TCO placement rules:
///
///   * Regular natives: the trampoline performs the thread state
///     transition, and the transition function flips TCO.
///   * @FastNative: no state transition — the trampoline itself flips TCO.
///   * @CriticalNative: may not touch the Java heap; TCO is left alone.
///
/// Each trampoline pushes simulated stack frames so fault backtraces look
/// like the paper's Figure 4 logcat output.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_RT_TRAMPOLINE_H
#define MTE4JNI_RT_TRAMPOLINE_H

#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/rt/JavaThread.h"
#include "mte4jni/rt/Runtime.h"
#include "mte4jni/support/Backtrace.h"
#include "mte4jni/support/TraceRing.h"

#include <type_traits>
#include <utility>

namespace mte4jni::rt {

/// Native method annotation kinds (§4.3).
enum class NativeKind : uint8_t {
  Regular,
  FastNative,
  CriticalNative,
};

const char *nativeKindName(NativeKind Kind);

namespace detail {

/// RAII for the regular-native thread state round trip.
class ScopedNativeTransition {
public:
  explicit ScopedNativeTransition(JavaThread &Thread) : Thread(Thread) {
    Thread.transitionToNative();
  }
  ~ScopedNativeTransition() { Thread.transitionToRunnable(); }

private:
  JavaThread &Thread;
};

/// RAII TCO toggle used by the @FastNative trampoline.
class ScopedFastNativeTco {
public:
  explicit ScopedFastNativeTco(bool Enable) : Enabled(Enable) {
    if (Enabled) {
      Saved = mte::ThreadState::current().tco();
      mte::ThreadState::current().setTco(false); // enable checks
    }
  }
  ~ScopedFastNativeTco() {
    if (Enabled)
      mte::ThreadState::current().setTco(Saved);
  }

private:
  bool Enabled;
  bool Saved = false;
};

} // namespace detail

/// Invokes \p Body as the native method \p MethodName on \p Thread with
/// the trampoline behaviour for \p Kind. Returns Body's result.
template <typename Fn>
auto callNative(JavaThread &Thread, NativeKind Kind, const char *MethodName,
                Fn &&Body) -> decltype(Body()) {
  const bool WantTagChecks = Thread.runtime().config().TagChecksInNative;
  support::FlightScope Crossing(support::FlightKind::JniCrossing,
                                static_cast<uint8_t>(Kind));
  // Native-call entry is the runtime's safepoint: the body runs inside a
  // runtime critical section, so a GC stop-the-world pause either ends
  // before the native method starts touching payloads or waits until the
  // call returns (or reaches a Runtime::safepointPoll checkpoint). JNI
  // criticals/pins taken inside the body nest for free (thread-local).
  ScopedCritical Safepoint(Thread.runtime());
  switch (Kind) {
  case NativeKind::Regular: {
    support::ScopedFrame Tramp("art_quick_generic_jni_trampoline",
                               "libart.so");
    detail::ScopedNativeTransition Transition(Thread);
    support::ScopedFrame Method(MethodName, "libapp.so");
    return Body();
  }
  case NativeKind::FastNative: {
    support::ScopedFrame Tramp("art_jni_fast_trampoline", "libart.so");
    detail::ScopedFastNativeTco Tco(WantTagChecks);
    support::ScopedFrame Method(MethodName, "libapp.so");
    return Body();
  }
  case NativeKind::CriticalNative: {
    // @CriticalNative code may not access the Java heap; no transition,
    // no TCO change.
    support::ScopedFrame Tramp("art_jni_critical_trampoline", "libart.so");
    support::ScopedFrame Method(MethodName, "libapp.so");
    return Body();
  }
  }
  M4J_UNREACHABLE("bad NativeKind");
}

} // namespace mte4jni::rt

#endif // MTE4JNI_RT_TRAMPOLINE_H

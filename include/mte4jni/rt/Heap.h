//===- Heap.h - Mini-ART Java heap allocator ------------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Java heap: a contiguous arena with bump allocation plus segregated
/// free lists refilled by the GC sweep. Two knobs reproduce the paper's
/// §4.1 modifications:
///
///   * Alignment — ART's default is 8 bytes; MTE4JNI raises it to 16 so no
///     two objects ever share a tag granule.
///   * ProtMte — when set, the arena is registered with the MTE simulator
///     (the analog of mapping the heap with PROT_MTE).
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_RT_HEAP_H
#define MTE4JNI_RT_HEAP_H

#include "mte4jni/rt/Object.h"
#include "mte4jni/support/MathExtras.h"

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace mte4jni::rt {

struct HeapConfig {
  uint64_t CapacityBytes = 64ull << 20;
  /// Object alignment: 8 (stock ART) or 16 (MTE4JNI, §4.1).
  unsigned Alignment = 8;
  /// Register the arena as a PROT_MTE region with the MTE simulator.
  bool ProtMte = false;
  /// Design ablation (see core/AllocTagPolicy.h): give every object a
  /// random tag at allocation time and clear it when the object is
  /// freed, instead of tagging at the JNI boundary. Requires ProtMte and
  /// 16-byte alignment; incompatible with the compacting GC (tags do not
  /// move with objects).
  bool TagOnAlloc = false;
};

struct HeapStats {
  uint64_t BytesAllocated = 0; ///< cumulative
  uint64_t BytesLive = 0;
  uint64_t ObjectsAllocated = 0; ///< cumulative
  uint64_t ObjectsLive = 0;
  uint64_t ObjectsFreed = 0;
  uint64_t FreeListHits = 0;
};

class JavaHeap {
public:
  explicit JavaHeap(const HeapConfig &Config);
  ~JavaHeap();

  JavaHeap(const JavaHeap &) = delete;
  JavaHeap &operator=(const JavaHeap &) = delete;

  /// Allocates a primitive array object; returns nullptr when the heap is
  /// exhausted (callers surface OutOfMemoryError).
  ObjectHeader *allocPrimArray(PrimType Elem, uint32_t Length);

  /// Allocates a string object backed by \p Length UTF-16 units.
  ObjectHeader *allocString(uint32_t Length);

  /// Allocates an Object[] of \p Length null slots.
  ObjectHeader *allocRefArray(uint32_t Length);

  /// Frees an object (GC sweep only).
  void free(ObjectHeader *Obj);

  /// Calls \p Fn for every live object. The heap lock is held: \p Fn must
  /// not allocate or free.
  void forEachObject(const std::function<void(ObjectHeader *)> &Fn);

  /// Mark-compact support: slides live objects toward the heap base in
  /// address order, skipping pinned objects (which stay exactly where
  /// native code's raw pointers expect them). Returns the mapping of
  /// moved objects (old header -> new header); the caller (the GC) must
  /// update every root. The world must be paused.
  std::vector<std::pair<ObjectHeader *, ObjectHeader *>> compact();

  bool contains(const void *Ptr) const {
    uint64_t Addr = reinterpret_cast<uint64_t>(Ptr);
    return Addr >= Base && Addr < Base + Config.CapacityBytes;
  }

  /// True if \p Ptr points at the header of a live object.
  bool isLiveObject(ObjectHeader *Ptr) const;

  const HeapConfig &config() const { return Config; }
  HeapStats stats() const;

  uint64_t base() const { return Base; }
  uint64_t capacity() const { return Config.CapacityBytes; }

private:
  ObjectHeader *allocObject(uint32_t ClassWord, uint32_t Length,
                            uint64_t PayloadBytes);

  HeapConfig Config;
  std::unique_ptr<uint8_t[]> Storage;
  uint64_t Base = 0;
  uint64_t BumpOffset = 0;

  // Free lists keyed by exact (aligned) block size.
  std::unordered_map<uint64_t, std::vector<uint64_t>> FreeLists;
  std::unordered_set<ObjectHeader *> LiveObjects;
  HeapStats Stats;

  mutable std::mutex Lock;
};

} // namespace mte4jni::rt

#endif // MTE4JNI_RT_HEAP_H

//===- Heap.h - Mini-ART Java heap allocator ------------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The Java heap: a contiguous arena with thread-local allocation buffers
/// (TLABs) bumping off a shared frontier, sharded segregated free lists
/// refilled by the GC sweep, and an object-start liveness bitmap. Two knobs
/// reproduce the paper's §4.1 modifications:
///
///   * Alignment — ART's default is 8 bytes; MTE4JNI raises it to 16 so no
///     two objects ever share a tag granule.
///   * ProtMte — when set, the arena is registered with the MTE simulator
///     (the analog of mapping the heap with PROT_MTE).
///
/// Allocation pipeline (AllocPipeline::Tlab, the default):
///
///   * The common alloc is a bump-pointer increment in the calling
///     thread's TLAB — no lock, no shared cache line. TLABs are carved
///     from the arena under a short-held refill mutex and, under
///     TagOnAlloc, bulk-cleaned with ONE st2g-style tag-range write per
///     refill so per-object colouring never pays a stale-tag scrub.
///   * Free lists are sharded by the thread's exclusive metrics shard and
///     indexed by size class (direct array up to 256 classes, map beyond),
///     so reuse after a same-thread free or GC sweep stays O(1) under an
///     uncontended spinlock. When the bump frontier is exhausted the slow
///     path steals exact-size blocks from every shard before reporting
///     OutOfMemoryError.
///   * Liveness is an atomic side bitmap over alignment granules:
///     isLiveObject is a lock-free O(1) bit test, and forEachObject walks
///     the bitmap linearly WITHOUT holding any heap lock — callbacks may
///     allocate and free.
///
/// AllocPipeline::GlobalLock preserves the seed allocator's behaviour —
/// every alloc/free serialises on one mutex — as the ablation baseline
/// for bench_alloc_throughput.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_RT_HEAP_H
#define MTE4JNI_RT_HEAP_H

#include "mte4jni/rt/Object.h"
#include "mte4jni/support/MathExtras.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/SpinLock.h"

#include <atomic>
#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <unordered_map>
#include <vector>

namespace mte4jni::rt {

/// Allocation pipeline ablation (see bench_alloc_throughput).
enum class AllocPipeline : uint8_t {
  /// Per-thread TLABs + sharded free lists; the scalable default.
  Tlab,
  /// Every alloc/free serialises on one mutex around a std::set liveness
  /// index and an ordered free-list map — the seed allocator's behaviour
  /// and cost model, kept as the contended-allocation baseline.
  GlobalLock,
};

struct HeapConfig {
  uint64_t CapacityBytes = 64ull << 20;
  /// Object alignment: 8 (stock ART) or 16 (MTE4JNI, §4.1).
  unsigned Alignment = 8;
  /// Register the arena as a PROT_MTE region with the MTE simulator.
  bool ProtMte = false;
  /// Design ablation (see core/AllocTagPolicy.h): give every object a
  /// random tag at allocation time and clear it when the object is
  /// freed, instead of tagging at the JNI boundary. Requires ProtMte and
  /// 16-byte alignment. Compatible with the compacting GC: compact()
  /// migrates allocation colours with moved objects.
  bool TagOnAlloc = false;
  /// TLAB size carved per refill (clamped to CapacityBytes/16). 0 keeps
  /// the sharded free lists but sends every bump through the refill lock.
  uint64_t TlabBytes = 64 << 10;
  /// Tlab (default) or GlobalLock (the serialised ablation baseline).
  AllocPipeline Pipeline = AllocPipeline::Tlab;
};

struct HeapStats {
  uint64_t BytesAllocated = 0; ///< cumulative
  uint64_t BytesLive = 0;
  uint64_t ObjectsAllocated = 0; ///< cumulative
  uint64_t ObjectsLive = 0;
  uint64_t ObjectsFreed = 0;
  uint64_t FreeListHits = 0;
};

class JavaHeap {
public:
  explicit JavaHeap(const HeapConfig &Config);
  ~JavaHeap();

  JavaHeap(const JavaHeap &) = delete;
  JavaHeap &operator=(const JavaHeap &) = delete;

  /// Allocates a primitive array object; returns nullptr when the heap is
  /// exhausted (callers surface OutOfMemoryError).
  ObjectHeader *allocPrimArray(PrimType Elem, uint32_t Length);

  /// Allocates a string object backed by \p Length UTF-16 units.
  ObjectHeader *allocString(uint32_t Length);

  /// Allocates an Object[] of \p Length null slots.
  ObjectHeader *allocRefArray(uint32_t Length);

  /// Frees an object (GC sweep only). Thread-safe.
  void free(ObjectHeader *Obj);

  /// Hook invoked with an object's payload range whenever that memory
  /// stops belonging to the object: on free()/GC sweep, and for the OLD
  /// location of every object compact() moves. The MTE4JNI session wires
  /// this to TagAllocator::reclaimRange so a deferred tag-clear can never
  /// leave a dead (or moved-away-from) object with valid granule tags —
  /// the security-critical reclaim path. A raw function pointer plus
  /// context (not std::function) so an uninstalled hook costs one
  /// predicted branch per free. Install before mutator traffic starts and
  /// clear only after the GC is stopped: free() reads the pair unlocked.
  using FreedRangeHook = void (*)(void *Ctx, uint64_t PayloadBegin,
                                  uint64_t PayloadBytes);
  void setFreedRangeHook(FreedRangeHook Hook, void *Ctx) {
    FreedHookCtx = Ctx;
    FreedHook = Hook;
  }

  /// Calls \p Fn for every live object, walking the liveness bitmap in
  /// address order WITHOUT holding any heap lock: \p Fn may allocate and
  /// free (including the visited object itself). Objects allocated after
  /// the walk passes their bitmap word may be missed; the caller must
  /// prevent concurrent frees of objects it did not free itself (the GC
  /// runs this inside a world pause).
  void forEachObject(const std::function<void(ObjectHeader *)> &Fn);

  /// forEachObject restricted to stripe \p Stripe of \p NumStripes equal
  /// bitmap segments — the parallel-sweep partitioning. Every live object
  /// is visited by exactly one stripe.
  void forEachObjectShard(unsigned Stripe, unsigned NumStripes,
                          const std::function<void(ObjectHeader *)> &Fn);

  /// Mark-compact support: slides live objects toward the heap base in
  /// address order, skipping pinned objects (which stay exactly where
  /// native code's raw pointers expect them). Under TagOnAlloc the
  /// allocation colours migrate with the payload (old granules cleared,
  /// new granules retagged). Returns the mapping of moved objects (old
  /// header -> new header); the caller (the GC) must update every root.
  /// The world must be paused.
  std::vector<std::pair<ObjectHeader *, ObjectHeader *>> compact();

  bool contains(const void *Ptr) const {
    uint64_t Addr = reinterpret_cast<uint64_t>(Ptr);
    return Addr >= Base && Addr < Base + Config.CapacityBytes;
  }

  /// True if \p Ptr points at the header of a live object. Lock-free O(1)
  /// bitmap test.
  bool isLiveObject(ObjectHeader *Ptr) const;

  const HeapConfig &config() const { return Config; }
  HeapStats stats() const;

  uint64_t base() const { return Base; }
  uint64_t capacity() const { return Config.CapacityBytes; }
  /// Side-bitmap memory overhead (one bit per alignment granule).
  uint64_t liveBitmapBytes() const { return NumBitWords * 8; }

private:
  /// See setFreedRangeHook. Written before traffic / after GC stop only.
  FreedRangeHook FreedHook = nullptr;
  void *FreedHookCtx = nullptr;

  M4J_ALWAYS_INLINE void notifyFreedRange(ObjectHeader *Obj, uint64_t Size) {
    if (M4J_UNLIKELY(FreedHook != nullptr) && Size > sizeof(ObjectHeader))
      FreedHook(FreedHookCtx, Obj->dataAddress(),
                Size - sizeof(ObjectHeader));
  }

  // Shard index space: reuse the metrics registry's exclusive per-thread
  // shard assignment (support::detail::metricShard). A shard is owned by
  // at most one live thread, so its TLAB and stat cells are single-writer;
  // threads past kMetricShards share the overflow shard, which never
  // bump-allocates and uses atomic RMW for stats.
  static constexpr unsigned kNumShards = support::kMetricCells;
  static constexpr unsigned kOverflowShard = support::kMetricOverflowShard;
  /// Free-list size classes directly indexed by (Size >> AlignShift);
  /// larger blocks fall into a per-shard map.
  static constexpr unsigned kNumSmallClasses = 256;

  struct alignas(64) Tlab {
    /// Next free byte / one-past-the-end of this shard's buffer. Relaxed
    /// atomics: single-writer (the owning thread) except compact(), which
    /// runs with the world paused.
    std::atomic<uint64_t> Cur{0};
    std::atomic<uint64_t> End{0};
  };

  struct alignas(64) FreeShard {
    support::SpinLock Lock;
    /// Blocks across all lists of this shard; a relaxed hint that lets
    /// the alloc fast path skip the lock when the shard is empty.
    std::atomic<uint64_t> Count{0};
    std::vector<uint64_t> Small[kNumSmallClasses];
    std::unordered_map<uint64_t, std::vector<uint64_t>> Large;
  };

  struct alignas(64) StatShard {
    std::atomic<int64_t> BytesAllocated{0};
    std::atomic<int64_t> BytesLive{0};
    std::atomic<int64_t> ObjectsAllocated{0};
    std::atomic<int64_t> ObjectsLive{0};
    std::atomic<int64_t> ObjectsFreed{0};
    std::atomic<int64_t> FreeListHits{0};
  };

  /// Owned-shard cells take a plain load+store (no RMW); the shared
  /// overflow shard needs fetch_add to stay exact.
  M4J_ALWAYS_INLINE static void statAdd(std::atomic<int64_t> &Cell,
                                        int64_t N, unsigned Shard) {
    if (M4J_LIKELY(Shard != kOverflowShard))
      Cell.store(Cell.load(std::memory_order_relaxed) + N,
                 std::memory_order_relaxed);
    else
      Cell.fetch_add(N, std::memory_order_relaxed);
  }

  ObjectHeader *allocObject(uint32_t ClassWord, uint32_t Length,
                            uint64_t PayloadBytes);

  /// Common allocation tail: header init, payload zeroing, TagOnAlloc
  /// colouring, liveness-bit publish, sharded stats. The Tlab pipeline
  /// runs it outside any lock; the GlobalLock ablation runs it inside the
  /// mutex, exactly as the seed did.
  ObjectHeader *finishAlloc(uint64_t Addr, uint32_t ClassWord,
                            uint32_t Length, uint64_t Size, unsigned Shard,
                            bool FreeListHit);

  /// Refill-lock slow path: TLAB refill (bulk tag scrub under TagOnAlloc),
  /// direct carve for big objects and overflow-shard threads, then
  /// cross-shard free-list stealing. Sets \p FreeListHit when the block
  /// came from a (stolen) free list.
  uint64_t allocSlow(uint64_t Size, unsigned Shard, bool &FreeListHit);

  /// Pops an exact-size block from \p FS; 0 when none. Takes FS.Lock.
  uint64_t takeFromShard(FreeShard &FS, uint64_t Size);
  /// Pushes a block; takes FS.Lock.
  void pushToShard(FreeShard &FS, uint64_t Size, uint64_t Addr);

  /// Carves [result, result+Bytes) from the bump frontier; 0 when the
  /// arena is exhausted. RefillLock must be held.
  uint64_t carveLocked(uint64_t Bytes);

  // -- liveness bitmap ----------------------------------------------------
  uint64_t bitIndexOf(uint64_t Addr) const {
    return (Addr - Base) >> AlignShift;
  }
  void setLiveBit(uint64_t Addr, std::memory_order Order);
  /// Clears the bit; asserts it was set ("freeing unknown object").
  void clearLiveBit(uint64_t Addr);

  HeapConfig Config;
  std::unique_ptr<uint8_t[]> Storage;
  uint64_t Base = 0;
  unsigned AlignShift = 3;
  uint64_t EffTlabBytes = 0;

  /// Allocation frontier, guarded by RefillLock for writes; readable
  /// lock-free (forEachObject bounds its walk with it).
  std::atomic<uint64_t> BumpOffset{0};
  mutable std::mutex RefillLock;

  /// One bit per alignment granule, set at the granule holding a live
  /// object's header.
  std::unique_ptr<std::atomic<uint64_t>[]> LiveBits;
  uint64_t NumBitWords = 0;

  std::unique_ptr<Tlab[]> Tlabs;
  std::unique_ptr<FreeShard[]> FreeShards;
  std::unique_ptr<StatShard[]> StatShards;

  /// Seed-fidelity state for the GlobalLock ablation, guarded by
  /// RefillLock: the seed kept a std::set liveness index and an ordered
  /// free-list map behind one mutex, so the ablation keeps paying those
  /// per-op costs (tree lookups, node churn) — the baseline
  /// bench_alloc_throughput compares against is the seed allocator, not a
  /// hybrid borrowing the new data structures.
  std::set<uint64_t> SeedLive;
  std::map<uint64_t, std::vector<uint64_t>> SeedFree;
};

} // namespace mte4jni::rt

#endif // MTE4JNI_RT_HEAP_H

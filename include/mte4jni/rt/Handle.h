//===- Handle.h - GC root scopes ------------------------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Handle scopes are the GC root set of the mini runtime: objects rooted in
/// a live scope survive collection. The heap never moves objects, so a
/// Handle is simply a rooted ObjectHeader pointer.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_RT_HANDLE_H
#define MTE4JNI_RT_HANDLE_H

#include "mte4jni/rt/Object.h"

#include <vector>

namespace mte4jni::rt {

class Runtime;

/// A stack-discipline scope of GC roots. Registers with the Runtime on
/// construction, unregisters on destruction.
class HandleScope {
public:
  explicit HandleScope(Runtime &RT);
  ~HandleScope();

  HandleScope(const HandleScope &) = delete;
  HandleScope &operator=(const HandleScope &) = delete;

  /// Roots \p Obj for the lifetime of this scope and returns it unchanged.
  ObjectHeader *root(ObjectHeader *Obj) {
    if (Obj)
      Roots.push_back(Obj);
    return Obj;
  }

  /// Removes a previously added root (rarely needed; scopes usually just
  /// die).
  void unroot(ObjectHeader *Obj);

  const std::vector<ObjectHeader *> &roots() const { return Roots; }

  /// Mutable access for the compacting GC's root rewriting.
  std::vector<ObjectHeader *> &mutableRoots() { return Roots; }

private:
  Runtime &RT;
  std::vector<ObjectHeader *> Roots;
};

} // namespace mte4jni::rt

#endif // MTE4JNI_RT_HANDLE_H

//===- Workload.h - Geekbench-style workload framework ----------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's §5.4 evaluates the Geekbench 6.3.0 CPU suite. Geekbench is
/// closed source, so this library provides 16 synthetic sub-workloads with
/// the same names and workload classes. Each one models an Android app
/// component: its data lives in Java arrays, and native code obtains those
/// arrays through the Table-1 JNI interfaces before computing.
///
/// Two access styles reproduce the §5.4 crossover insight:
///
///   * boundary-traffic workloads copy the Java arrays in/out with bulk
///     (per-granule-checked) transfers and compute on native scratch;
///   * JNI-intensive workloads (Clang, Text Processing, PDF Renderer —
///     exactly the exceptions the paper names) run their inner loops
///     element-by-element through the tagged JNI pointer, so per-access
///     MTE checking dominates and guarded copy's single bulk copy wins.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_WORKLOADS_WORKLOAD_H
#define MTE4JNI_WORKLOADS_WORKLOAD_H

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/support/Rng.h"

#include <memory>
#include <vector>

namespace mte4jni::workloads {

/// Everything a workload needs to run on one thread.
struct WorkloadContext {
  api::Session &S;
  jni::JniEnv &Env;
  rt::JavaThread &Thread;
  rt::HandleScope &Scope;
  uint64_t Seed = 1;
};

class Workload {
public:
  virtual ~Workload();

  /// Geekbench sub-item name, e.g. "File Compression".
  virtual const char *name() const = 0;

  /// True for the memory-intensive class (§5.4: Clang, Text Processing,
  /// PDF Renderer) whose inner loops access large arrays through the JNI
  /// pointer.
  virtual bool isJniIntensive() const { return false; }

  /// Allocates this workload's Java objects (rooted in Ctx.Scope) and
  /// fills them deterministically from Ctx.Seed.
  virtual void prepare(WorkloadContext &Ctx) = 0;

  /// One scored iteration; returns a checksum. The checksum must be
  /// identical across protection schemes (they must not change results,
  /// only detect violations) — tests rely on this.
  virtual uint64_t run(WorkloadContext &Ctx) = 0;
};

/// Fresh instances of the full 16-workload suite, in Figure 7/8 order.
std::vector<std::unique_ptr<Workload>> makeAllWorkloads();

/// Request-mix profiles for the tenant server harness (currently the
/// string-critical "HTML5 DOM Strings" parse). Outside the Geekbench
/// suite so Figure 7/8 comparisons are unchanged.
std::vector<std::unique_ptr<Workload>> makeServerProfileWorkloads();

/// A single workload by name, searching the Geekbench suite and the
/// server profiles (nullptr when unknown).
std::unique_ptr<Workload> makeWorkload(const char *Name);

// ---- helpers shared by the workload implementations ------------------------

/// Reads a whole primitive array into native scratch through
/// Get<T>ArrayElements + bulk checked reads, releasing with JNI_ABORT
/// (read-only).
template <typename T>
std::vector<T> readArrayToNative(jni::JniEnv &Env, jni::jarray Array) {
  jni::jboolean IsCopy;
  auto Elems = Env.getArrayElements<T>(Array, &IsCopy, "GetArrayElements");
  uint64_t N = static_cast<uint64_t>(Array->Length);
  std::vector<T> Out(N);
  mte::readBytes(Out.data(), Elems.template cast<const void>(),
                 N * sizeof(T));
  Env.releaseArrayElements<T>(Array, Elems, jni::JNI_ABORT,
                              "ReleaseArrayElements");
  return Out;
}

/// Writes native scratch back into a primitive array through
/// Get<T>ArrayElements + bulk checked writes.
template <typename T>
void writeArrayFromNative(jni::JniEnv &Env, jni::jarray Array,
                          const std::vector<T> &Data) {
  jni::jboolean IsCopy;
  auto Elems = Env.getArrayElements<T>(Array, &IsCopy, "GetArrayElements");
  uint64_t N = std::min<uint64_t>(Array->Length, Data.size());
  mte::writeBytes(Elems.template cast<void>(), Data.data(), N * sizeof(T));
  Env.releaseArrayElements<T>(Array, Elems, 0, "ReleaseArrayElements");
}

/// Mixes a value into a running checksum (splitmix-style).
inline uint64_t mixChecksum(uint64_t Acc, uint64_t Value) {
  Acc ^= Value + 0x9e3779b97f4a7c15ULL + (Acc << 6) + (Acc >> 2);
  return Acc;
}

} // namespace mte4jni::workloads

#endif // MTE4JNI_WORKLOADS_WORKLOAD_H

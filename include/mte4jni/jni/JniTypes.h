//===- JniTypes.h - JNI primitive and reference types ----------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The JNI type vocabulary, matching the Java Native Interface
/// specification's primitive widths. Reference types are ObjectHeader
/// pointers in this runtime (it has no indirection table; objects never
/// move).
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_JNI_JNITYPES_H
#define MTE4JNI_JNI_JNITYPES_H

#include "mte4jni/rt/Object.h"

#include <cstdint>

namespace mte4jni::jni {

using jboolean = uint8_t;
using jbyte = int8_t;
using jchar = uint16_t;
using jshort = int16_t;
using jint = int32_t;
using jlong = int64_t;
using jfloat = float;
using jdouble = double;
using jsize = jint;

inline constexpr jboolean JNI_FALSE = 0;
inline constexpr jboolean JNI_TRUE = 1;

/// Release modes for Release<Type>ArrayElements.
inline constexpr jint JNI_COMMIT = 1;
inline constexpr jint JNI_ABORT = 2;

// Reference types. This runtime's references are direct object pointers.
using jobject = rt::ObjectHeader *;
using jarray = rt::ObjectHeader *;
using jstring = rt::ObjectHeader *;
using jbooleanArray = rt::ObjectHeader *;
using jbyteArray = rt::ObjectHeader *;
using jcharArray = rt::ObjectHeader *;
using jshortArray = rt::ObjectHeader *;
using jintArray = rt::ObjectHeader *;
using jlongArray = rt::ObjectHeader *;
using jfloatArray = rt::ObjectHeader *;
using jdoubleArray = rt::ObjectHeader *;

/// Maps a JNI element type to its PrimType.
template <typename T> constexpr rt::PrimType primTypeFor() {
  return rt::PrimTypeOf<T>::value;
}

} // namespace mte4jni::jni

#endif // MTE4JNI_JNI_JNITYPES_H

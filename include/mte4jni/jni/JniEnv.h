//===- JniEnv.h - The simulated JNI environment ----------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A JNIEnv-like façade exposing every interface from the paper's Table 1
/// (the ones that hand raw Java-heap pointers to native code) plus the
/// creation/query helpers needed to drive them:
///
///   GetStringCritical            / ReleaseStringCritical
///   GetPrimitiveArrayCritical    / ReleasePrimitiveArrayCritical
///   GetStringChars               / ReleaseStringChars
///   GetStringUTFChars            / ReleaseStringUTFChars
///   Get<Prim>ArrayElements       / Release<Prim>ArrayElements
///   Get<Prim>ArrayRegion         / Set<Prim>ArrayRegion
///
/// Pointer-returning interfaces funnel through the installed CheckPolicy —
/// the protection-scheme seam. Returned pointers are mte::TaggedPtr values:
/// under MTE4JNI their bits 56..59 carry the allocation tag (on hardware
/// this is invisible thanks to top-byte-ignore; on the host simulator the
/// tag must be stripped by the checked-access API, which is also where the
/// tag check happens).
///
/// Deviations from real JNI, for the simulator:
///   * creation methods take a HandleScope (this runtime's local-reference
///     table);
///   * one JniEnv should be used per thread, like a real JNIEnv.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_JNI_JNIENV_H
#define MTE4JNI_JNI_JNIENV_H

#include "mte4jni/jni/CheckPolicy.h"
#include "mte4jni/mte/TaggedPtr.h"
#include "mte4jni/rt/Handle.h"
#include "mte4jni/rt/JavaString.h"
#include "mte4jni/rt/Runtime.h"
#include "mte4jni/support/Backtrace.h"

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mte4jni::jni {

class JniEnv {
public:
  /// \p Policy must outlive the env.
  JniEnv(rt::Runtime &RT, CheckPolicy &Policy) : RT(RT), Policy(Policy) {}
  ~JniEnv();

  rt::Runtime &runtime() { return RT; }
  CheckPolicy &policy() { return Policy; }

  // ==== generic cores (typed wrappers below) =============================

  template <typename T>
  mte::TaggedPtr<T> getArrayElements(jarray Array, jboolean *IsCopy,
                                     const char *Interface);
  template <typename T>
  void releaseArrayElements(jarray Array, mte::TaggedPtr<T> Elems, jint Mode,
                            const char *Interface);
  template <typename T>
  void getArrayRegion(jarray Array, jsize Start, jsize Len, T *Buf,
                      const char *Interface);
  template <typename T>
  void setArrayRegion(jarray Array, jsize Start, jsize Len, const T *Buf,
                      const char *Interface);
  template <typename T>
  jarray newArray(rt::HandleScope &Scope, jsize Length,
                  const char *Interface);

  // ==== Table 1: critical interfaces ===================================

  /// Blocks GC until released; returns the (policy-mediated) payload.
  mte::TaggedPtr<void> GetPrimitiveArrayCritical(jarray Array,
                                                 jboolean *IsCopy);
  void ReleasePrimitiveArrayCritical(jarray Array,
                                     mte::TaggedPtr<void> Carray, jint Mode);

  mte::TaggedPtr<const jchar> GetStringCritical(jstring Str,
                                                jboolean *IsCopy);
  void ReleaseStringCritical(jstring Str, mte::TaggedPtr<const jchar> Chars);

  // ==== Table 1: string interfaces =====================================

  mte::TaggedPtr<const jchar> GetStringChars(jstring Str, jboolean *IsCopy);
  void ReleaseStringChars(jstring Str, mte::TaggedPtr<const jchar> Chars);

  /// Always copies (UTF-8 conversion); the buffer is NUL-terminated.
  mte::TaggedPtr<const char> GetStringUTFChars(jstring Str,
                                               jboolean *IsCopy);
  void ReleaseStringUTFChars(jstring Str, mte::TaggedPtr<const char> Utf);

  // ==== Table 1: typed elements/regions, one set per primitive type ======

#define M4J_JNI_TYPED_METHODS(Name, T)                                        \
  mte::TaggedPtr<T> Get##Name##ArrayElements(jarray Array,                    \
                                             jboolean *IsCopy) {              \
    return getArrayElements<T>(Array, IsCopy,                                 \
                               "Get" #Name "ArrayElements");                  \
  }                                                                            \
  void Release##Name##ArrayElements(jarray Array, mte::TaggedPtr<T> Elems,    \
                                    jint Mode) {                              \
    releaseArrayElements<T>(Array, Elems, Mode,                               \
                            "Release" #Name "ArrayElements");                 \
  }                                                                            \
  void Get##Name##ArrayRegion(jarray Array, jsize Start, jsize Len,           \
                              T *Buf) {                                       \
    getArrayRegion<T>(Array, Start, Len, Buf, "Get" #Name "ArrayRegion");     \
  }                                                                            \
  void Set##Name##ArrayRegion(jarray Array, jsize Start, jsize Len,           \
                              const T *Buf) {                                 \
    setArrayRegion<T>(Array, Start, Len, Buf, "Set" #Name "ArrayRegion");     \
  }                                                                            \
  jarray New##Name##Array(rt::HandleScope &Scope, jsize Length) {             \
    return newArray<T>(Scope, Length, "New" #Name "Array");                   \
  }

  M4J_JNI_TYPED_METHODS(Boolean, jboolean)
  M4J_JNI_TYPED_METHODS(Byte, jbyte)
  M4J_JNI_TYPED_METHODS(Char, jchar)
  M4J_JNI_TYPED_METHODS(Short, jshort)
  M4J_JNI_TYPED_METHODS(Int, jint)
  M4J_JNI_TYPED_METHODS(Long, jlong)
  M4J_JNI_TYPED_METHODS(Float, jfloat)
  M4J_JNI_TYPED_METHODS(Double, jdouble)

#undef M4J_JNI_TYPED_METHODS

  // ==== queries and creation ==============================================

  jsize GetArrayLength(jarray Array);
  jsize GetStringLength(jstring Str);
  jsize GetStringUTFLength(jstring Str);

  jstring NewString(rt::HandleScope &Scope, const jchar *Units, jsize Len);
  jstring NewStringUTF(rt::HandleScope &Scope, const char *Utf8);

  /// Object[] support. These interfaces are bounds-checked and never hand
  /// out raw pointers (which is why the paper's Table 1 does not list
  /// them): no policy involvement.
  jarray NewObjectArray(rt::HandleScope &Scope, jsize Length);
  jobject GetObjectArrayElement(jarray Array, jsize Index);
  void SetObjectArrayElement(jarray Array, jsize Index, jobject Value);

  // ==== local reference frames ============================================

  /// PushLocalFrame: opens a new local-reference scope; objects created
  /// through the frame-less creation overloads below are rooted in the
  /// innermost frame, exactly like JNI local references.
  jint PushLocalFrame(jint Capacity);

  /// PopLocalFrame: drops the innermost frame (its references die).
  /// Returns \p Result for call-through convenience, like real JNI.
  jobject PopLocalFrame(jobject Result);

  /// Depth of the local-frame stack.
  size_t localFrameDepth() const { return LocalFrames.size(); }

  /// Frame-less creation overloads: root in the innermost local frame
  /// (error if none is open).
  jarray NewIntArrayLocal(jsize Length);
  jstring NewStringUTFLocal(const char *Utf8);

  // ==== pending-exception emulation ========================================

  bool ExceptionCheck() const { return PendingError; }
  void ExceptionClear() {
    PendingError = false;
    ErrorMessage.clear();
  }
  const std::string &exceptionMessage() const { return ErrorMessage; }

private:
  /// Validates an array argument; raises a JNI check error when bad.
  bool checkArray(jarray Array, rt::PrimType Expected, const char *Interface);
  bool checkString(jstring Str, const char *Interface);

  /// Records a CheckJNI-style error: pending exception + fault-log entry.
  void raiseError(const char *Interface, std::string Message);

  uint64_t acquireObject(rt::ObjectHeader *Obj, const char *Interface,
                         jboolean *IsCopy);
  void releaseObject(rt::ObjectHeader *Obj, const char *Interface,
                     uint64_t Bits, jint Mode);

  rt::Runtime &RT;
  CheckPolicy &Policy;

  bool PendingError = false;
  std::string ErrorMessage;

  /// One outstanding Get* pin. The cookie is whatever the policy resolved
  /// at acquire (MTE4JNI: its tag-table slot) and is handed back at
  /// release so the Get/Release pair probes the policy's table once, not
  /// twice. Count handles nested pins of the same buffer, which return
  /// identical pointer bits (the tag is shared via LDG).
  struct PinRecord {
    void *Cookie = nullptr;
    uint32_t Count = 0;
  };

  /// Outstanding Get* pins of this env: pointer bits -> record. A JniEnv
  /// is single-threaded (one per attached thread, like real JNI), so no
  /// lock is needed.
  std::unordered_map<uint64_t, PinRecord> Pins;

  /// Outstanding GetStringUTFChars buffers: bits -> byte size.
  std::unordered_map<uint64_t, uint64_t> UtfBuffers;

  /// JNI local-reference frames (PushLocalFrame/PopLocalFrame).
  std::vector<std::unique_ptr<rt::HandleScope>> LocalFrames;
};

// ==== template implementations =============================================

template <typename T>
mte::TaggedPtr<T> JniEnv::getArrayElements(jarray Array, jboolean *IsCopy,
                                           const char *Interface) {
  support::ScopedFrame Frame(Interface, "libart.so");
  if (!checkArray(Array, primTypeFor<T>(), Interface))
    return mte::TaggedPtr<T>();
  return mte::TaggedPtr<T>::fromBits(
      acquireObject(Array, Interface, IsCopy));
}

template <typename T>
void JniEnv::releaseArrayElements(jarray Array, mte::TaggedPtr<T> Elems,
                                  jint Mode, const char *Interface) {
  support::ScopedFrame Frame(Interface, "libart.so");
  if (!checkArray(Array, primTypeFor<T>(), Interface))
    return;
  releaseObject(Array, Interface, Elems.bits(), Mode);
}

template <typename T>
void JniEnv::getArrayRegion(jarray Array, jsize Start, jsize Len, T *Buf,
                            const char *Interface) {
  support::ScopedFrame Frame(Interface, "libart.so");
  if (!checkArray(Array, primTypeFor<T>(), Interface))
    return;
  if (Start < 0 || Len < 0 ||
      static_cast<uint64_t>(Start) + static_cast<uint64_t>(Len) >
          Array->Length) {
    raiseError(Interface, "ArrayIndexOutOfBoundsException");
    return;
  }
  // Runtime-side copy: bounds already validated, performed with the
  // runtime's own (untagged, unchecked) view of the heap. The bracket
  // keeps the copy mutually exclusive with the GC pause (compaction may
  // move the array; the verify pass reads it).
  rt::ScopedCritical Bracket(RT);
  const T *Data = rt::arrayData<T>(Array);
  for (jsize I = 0; I < Len; ++I)
    Buf[I] = Data[Start + I];
}

template <typename T>
void JniEnv::setArrayRegion(jarray Array, jsize Start, jsize Len,
                            const T *Buf, const char *Interface) {
  support::ScopedFrame Frame(Interface, "libart.so");
  if (!checkArray(Array, primTypeFor<T>(), Interface))
    return;
  if (Start < 0 || Len < 0 ||
      static_cast<uint64_t>(Start) + static_cast<uint64_t>(Len) >
          Array->Length) {
    raiseError(Interface, "ArrayIndexOutOfBoundsException");
    return;
  }
  // Payload WRITES are exactly what the stop-the-world verify pass races
  // with when the world does not stop: bracket them.
  rt::ScopedCritical Bracket(RT);
  T *Data = rt::arrayData<T>(Array);
  for (jsize I = 0; I < Len; ++I)
    Data[Start + I] = Buf[I];
}

template <typename T>
jarray JniEnv::newArray(rt::HandleScope &Scope, jsize Length,
                        const char *Interface) {
  support::ScopedFrame Frame(Interface, "libart.so");
  if (Length < 0) {
    raiseError(Interface, "NegativeArraySizeException");
    return nullptr;
  }
  jarray Array = RT.newPrimArray(Scope, primTypeFor<T>(),
                                 static_cast<uint32_t>(Length));
  if (!Array)
    raiseError(Interface, "OutOfMemoryError");
  return Array;
}

} // namespace mte4jni::jni

#endif // MTE4JNI_JNI_JNIENV_H

//===- PolicyNone.h - The "no protection" baseline -------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper's baseline: JNI out-of-bounds checking disabled (the Android
/// production default). Get interfaces hand out the raw payload pointer;
/// Release does nothing beyond the runtime-side bookkeeping.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_JNI_POLICYNONE_H
#define MTE4JNI_JNI_POLICYNONE_H

#include "mte4jni/jni/CheckPolicy.h"

namespace mte4jni::jni {

class NoProtectionPolicy final : public CheckPolicy {
public:
  const char *name() const override { return "none"; }

  uint64_t acquire(const JniBufferInfo &Info, bool &IsCopy) override {
    IsCopy = false;
    return Info.DataBegin;
  }

  void release(const JniBufferInfo &Info, uint64_t NativeBits,
               jint Mode) override {
    // Direct pointer: nothing to copy back, nothing to verify.
    (void)Info;
    (void)NativeBits;
    (void)Mode;
  }

  uint64_t acquireScratch(uint64_t Bytes, const char *Interface) override;
  void releaseScratch(uint64_t NativeBits, uint64_t Bytes,
                      const char *Interface) override;

  bool exposesDirectPointers() const override { return true; }
};

} // namespace mte4jni::jni

#endif // MTE4JNI_JNI_POLICYNONE_H

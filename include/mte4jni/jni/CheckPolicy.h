//===- CheckPolicy.h - Pluggable JNI out-of-bounds checking ----------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The protection-scheme seam. Every Table-1 JNI interface funnels through
/// a CheckPolicy when it hands a raw buffer pointer to native code and when
/// native code releases it. The four schemes the paper evaluates are four
/// implementations:
///
///   * NoProtectionPolicy      — direct pointers, no checking (§5.1 baseline)
///   * GuardedCopyPolicy       — ART's CheckJNI "ForceCopy" red zones (§2.3)
///   * Mte4JniPolicy (sync)    — the paper's contribution, sync TCF
///   * Mte4JniPolicy (async)   — the paper's contribution, async TCF
///
/// The 64-bit value a policy returns is what native code receives: under
/// MTE4JNI its bits 56..59 carry the pointer tag.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_JNI_CHECKPOLICY_H
#define MTE4JNI_JNI_CHECKPOLICY_H

#include "mte4jni/jni/JniTypes.h"

#include <cstdint>

namespace mte4jni::jni {

/// Describes the buffer a JNI interface is about to expose / release.
struct JniBufferInfo {
  /// The heap object, or nullptr for runtime-allocated native buffers
  /// (GetStringUTFChars copies).
  rt::ObjectHeader *Obj = nullptr;
  /// Payload begin address (object data), or 0 for scratch buffers.
  uint64_t DataBegin = 0;
  /// Payload size in bytes.
  uint64_t Bytes = 0;
  /// The JNI interface name, for diagnostics ("GetIntArrayElements", ...).
  const char *Interface = "";
};

class CheckPolicy {
public:
  virtual ~CheckPolicy();

  virtual const char *name() const = 0;

  /// Called when a Get interface exposes an object payload. Returns the
  /// pointer bits native code receives; the address part is always a
  /// host-dereferenceable buffer (the original payload, or the policy's
  /// copy). Sets \p IsCopy per JNI semantics.
  virtual uint64_t acquire(const JniBufferInfo &Info, bool &IsCopy) = 0;

  /// Called by the matching Release interface. \p NativeBits is the value
  /// native code got from acquire(); \p Mode is 0 / JNI_COMMIT / JNI_ABORT.
  virtual void release(const JniBufferInfo &Info, uint64_t NativeBits,
                       jint Mode) = 0;

  /// Pin-aware variants. A policy that resolves some internal record while
  /// acquiring (MTE4JNI: the tag-table slot) can hand it back through
  /// \p PinCookie; the runtime stores it in the pin record and returns it
  /// at release so the Get/Release pair touches the policy's table once,
  /// not twice. The cookie is an optimisation hint only — policies must
  /// accept null (a release can arrive through a different JNIEnv than
  /// the acquire). Default implementations forward to the plain pair.
  virtual uint64_t acquirePinned(const JniBufferInfo &Info, bool &IsCopy,
                                 void *&PinCookie) {
    PinCookie = nullptr;
    return acquire(Info, IsCopy);
  }
  virtual void releasePinned(const JniBufferInfo &Info, uint64_t NativeBits,
                             jint Mode, void *PinCookie) {
    (void)PinCookie;
    release(Info, NativeBits, Mode);
  }

  /// Allocates a native scratch buffer of \p Bytes (used for the UTF-8
  /// conversion buffers of GetStringUTFChars). The runtime fills it via
  /// the address part of the returned bits before native code sees it.
  virtual uint64_t acquireScratch(uint64_t Bytes, const char *Interface) = 0;

  /// Releases a scratch buffer.
  virtual void releaseScratch(uint64_t NativeBits, uint64_t Bytes,
                              const char *Interface) = 0;

  /// True when this policy hands out direct (non-copy) object payloads.
  virtual bool exposesDirectPointers() const = 0;
};

} // namespace mte4jni::jni

#endif // MTE4JNI_JNI_CHECKPOLICY_H

//===- Server.h - Tenant-scale JNI request server harness ----------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A multi-tenant request-stream driver over one protection Session: N
/// logical tenants × M Java worker threads push a mixed Table-1 request
/// stream (array pins, string criticals, region copies, a string-critical
/// HTML parse, and optionally rogue out-of-bounds probes) at a
/// configurable target rate.
///
/// The paper measures batch Geekbench clones; this harness measures what a
/// production runtime actually serves — sustained concurrent traffic —
/// and makes the signals that matter at that scale first-class:
///
///   * Every request is timed into per-tenant metric namespaces
///     (`server/tenant<i>/request_nanos`, `.../requests`, `.../faults`)
///     plus global `server/...` aggregates, so tail percentiles are
///     attributable to the tenant that suffered them.
///   * Pacing is OPEN-LOOP: each worker schedules arrivals from a Poisson
///     process at its share of the target rate and charges a request from
///     its *scheduled* arrival, not its actual start — a GC pause that
///     delays ten queued requests shows up in ten latencies (no
///     coordinated omission). TargetRatePerSec == 0 degrades to a
///     closed-loop throughput probe.
///   * MTE faults raised while a worker serves a tenant are attributed to
///     that tenant via a per-thread fault hook.
///   * A SnapshotStreamer can append one metrics snapshot per interval to
///     a JSONL file while the server runs, so `m4jstat watch` can inspect
///     a long-running server live.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SERVER_SERVER_H
#define MTE4JNI_SERVER_SERVER_H

#include "mte4jni/api/Session.h"
#include "mte4jni/server/SnapshotStreamer.h"
#include "mte4jni/support/Metrics.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mte4jni::server {

/// One request category of the mixed stream. The first three are the
/// Table-1 interface classes, HtmlParse is the string-heavy parse profile,
/// Rogue is an intentionally out-of-bounds native read (a buggy library).
enum class RequestKind : uint8_t {
  ArrayPin = 0,   ///< Get/ReleaseIntArrayElements + bulk checked read
  StringCritical, ///< GetStringCritical + per-char scan + Release
  RegionCopy,     ///< Get/SetIntArrayRegion round trip + local-frame garbage
  HtmlParse,      ///< workloads "HTML5 DOM Strings" run (string criticals)
  Rogue,          ///< near-OOB read past a pinned array's granule extent
  kNumKinds
};

const char *requestKindName(RequestKind Kind);

/// Relative weights of the request mix (any non-negative integers; they
/// are normalised against their sum). Defaults model a mixed app-server
/// profile with a noticeable string tenant and no attackers.
struct RequestMix {
  unsigned ArrayPin = 40;
  unsigned StringCritical = 25;
  unsigned RegionCopy = 20;
  unsigned HtmlParse = 15;
  unsigned Rogue = 0;

  unsigned total() const {
    return ArrayPin + StringCritical + RegionCopy + HtmlParse + Rogue;
  }
};

struct ServerConfig {
  /// Logical tenants: each owns a metric namespace server/tenant<i>/.
  unsigned NumTenants = 4;
  /// Java worker threads, assigned to tenants round-robin. More workers
  /// than tenants means a tenant is served by several threads.
  unsigned NumWorkers = 8;
  uint64_t DurationMillis = 1000;
  /// Aggregate open-loop arrival rate across all workers (requests/sec).
  /// 0 = closed loop: every worker issues back-to-back requests.
  double TargetRatePerSec = 0;
  RequestMix Mix;
  uint64_t Seed = 1;

  /// Fixture sizes (per worker).
  unsigned ArrayInts = 1024;
  /// Rogue probes read up to this many bytes past the probe array's
  /// granule extent. Kept well inside the guarded-copy red zone and the
  /// padding allocations, so the access is always physically mapped.
  unsigned RogueMaxOffsetBytes = 64;

  /// Simulated syscall cadence (epoll_wait between request batches): the
  /// point where latched async MTE faults surface, as on real Linux.
  unsigned SyscallEveryNRequests = 64;

  /// When non-empty: stream one metrics snapshot per interval to this
  /// JSONL file while the server runs (see SnapshotStreamer).
  std::string StreamPath;
  uint32_t StreamIntervalMillis = 250;
  /// Appended to each stream record ("scheme": ...) so multi-phase runs
  /// into one file stay attributable.
  std::string StreamLabel;
  bool StreamAppend = false;
};

/// Per-tenant end-of-run rollup (values read back from the tenant's
/// metric namespace once workers are quiescent, so they are exact).
struct TenantSummary {
  unsigned Tenant = 0;
  uint64_t Requests = 0;
  uint64_t Faults = 0;
  double MeanNanos = 0;
  uint64_t P50Nanos = 0;  ///< bucket upper bounds (log2 histogram)
  uint64_t P99Nanos = 0;
  uint64_t P999Nanos = 0;
};

struct ServerResult {
  double DurationSeconds = 0;
  uint64_t Requests = 0;
  uint64_t Faults = 0;
  /// JNI boundary crossings (callNative entries) — one per request.
  uint64_t JniCrossings = 0;
  /// Open-loop only: arrivals that started more than one interarrival
  /// late (the worker fell behind its schedule).
  uint64_t LateArrivals = 0;
  uint64_t StreamedSnapshots = 0;

  double RequestsPerSec = 0;
  double CrossingsPerSec = 0;
  double FaultsPerSec = 0;

  double MeanNanos = 0;
  uint64_t P50Nanos = 0;
  uint64_t P99Nanos = 0;
  uint64_t P999Nanos = 0;

  std::vector<TenantSummary> Tenants;
};

/// Cached metric handles for one tenant namespace. Resolving goes through
/// the registry mutex, so workers resolve once at start-up, never per
/// request.
struct TenantMetrics {
  support::Counter *Requests = nullptr;
  support::Counter *Faults = nullptr;
  support::Histogram *RequestNanos = nullptr;

  /// Handles for `server/tenant<i>/...`. References live forever (the
  /// registry is leaked), so the pointers never dangle.
  static TenantMetrics of(unsigned Tenant);
};

/// Runs the configured request stream against \p S (which the caller
/// configured for one protection scheme, typically with BackgroundGc on)
/// and blocks until the duration elapses and all workers drained. Installs
/// a process-wide MTE fault hook for the run (restored on return) to
/// attribute faults to tenants.
ServerResult runServer(api::Session &S, const ServerConfig &Config);

} // namespace mte4jni::server

#endif // MTE4JNI_SERVER_SERVER_H

//===- SnapshotStreamer.h - Periodic JSONL metrics streaming -------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Appends one metrics snapshot per interval to a JSONL file from a
/// background thread, so a long-running server is inspectable WITHOUT
/// stopping it: `m4jstat watch stream.jsonl` tails the file and re-renders
/// deltas live, `m4jstat diff --last stream.jsonl` compares the two newest
/// records after the fact.
///
/// Each line is one self-contained JSON object:
///
///   {"seq": 3, "elapsed_ms": 750, "label": "mte4jni_sync",
///    "metrics": { ...MetricsSnapshot::toJsonLine()... }}
///
/// Lines are written with a single fwrite and fflushed, so a concurrent
/// tail sees only whole records (the final, partial-interval snapshot is
/// written at stop()).
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SERVER_SNAPSHOTSTREAMER_H
#define MTE4JNI_SERVER_SNAPSHOTSTREAMER_H

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <cstdio>
#include <mutex>
#include <string>
#include <thread>

namespace mte4jni::server {

class SnapshotStreamer {
public:
  struct Config {
    std::string Path;
    uint32_t IntervalMillis = 250;
    /// Free-form tag copied into every record (e.g. the scheme name).
    std::string Label;
    /// Append to an existing stream instead of truncating — multi-phase
    /// runs (one server phase per scheme) share one file.
    bool Append = false;
  };

  /// Opens the file and starts the streaming thread. ok() reports whether
  /// the open succeeded; a failed streamer is inert (start/stop no-ops).
  explicit SnapshotStreamer(Config C);
  ~SnapshotStreamer();

  SnapshotStreamer(const SnapshotStreamer &) = delete;
  SnapshotStreamer &operator=(const SnapshotStreamer &) = delete;

  bool ok() const { return File != nullptr; }

  /// Stops the thread, writes one final snapshot record, closes the file.
  /// Idempotent.
  void stop();

  uint64_t linesWritten() const {
    return Lines.load(std::memory_order_relaxed);
  }

private:
  void loop();
  void writeRecord();

  Config C;
  std::FILE *File = nullptr;
  uint64_t StartNanos = 0;
  std::atomic<uint64_t> Lines{0};
  std::atomic<bool> StopRequested{false};
  std::mutex WakeLock;
  std::condition_variable WakeCv;
  std::thread Worker;
  bool Stopped = false;
};

} // namespace mte4jni::server

#endif // MTE4JNI_SERVER_SNAPSHOTSTREAMER_H

//===- Session.h - One-stop façade over the protection schemes -------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A Session wires the whole stack — MTE simulator configuration, runtime
/// (heap alignment, PROT_MTE, trampoline TCO behaviour), and JNI check
/// policy — for one of the schemes the paper evaluates (§5.1):
///
///   Scheme::NoProtection — checking disabled (Android production default)
///   Scheme::GuardedCopy  — CheckJNI guarded copy
///   Scheme::Mte4JniSync  — MTE4JNI, synchronous TCF
///   Scheme::Mte4JniAsync — MTE4JNI, asynchronous TCF
///
/// Typical use:
///
/// \code
///   api::Session S({.Protection = api::Scheme::Mte4JniSync});
///   api::ScopedAttach Main(S, "main");
///   rt::HandleScope Scope(S.runtime());
///   jni::jintArray A = Main.env().NewIntArray(Scope, 18);
///   rt::callNative(Main.thread(), rt::NativeKind::Regular, "my_native",
///                  [&] { ... Main.env().GetPrimitiveArrayCritical(A, ...)
///                  ... });
/// \endcode
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_API_SESSION_H
#define MTE4JNI_API_SESSION_H

#include "mte4jni/core/Mte4JniPolicy.h"
#include "mte4jni/guarded/GuardedCopy.h"
#include "mte4jni/mte/Fault.h"
#include "mte4jni/jni/JniEnv.h"
#include "mte4jni/jni/PolicyNone.h"
#include "mte4jni/rt/Runtime.h"
#include "mte4jni/rt/Trampoline.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/TraceRing.h"

#include <memory>
#include <string>

namespace mte4jni::api {

enum class Scheme : uint8_t {
  NoProtection,
  GuardedCopy,
  Mte4JniSync,
  Mte4JniAsync,
  /// Design ablation (not in the paper): HWASan-style tag-on-allocation
  /// with synchronous checking — see core/AllocTagPolicy.h.
  TagOnAllocSync,
};

const char *schemeName(Scheme S);

struct SessionConfig {
  Scheme Protection = Scheme::NoProtection;

  /// Tag-table implementation for the MTE4JNI tag allocator (Figure 6's
  /// ablation): lock-free fast path by default; TwoTierMutex is the
  /// paper's published locking, GlobalLock the §3.1 strawman.
  core::TagTableKind Locks = core::TagTableKind::LockFree;
  /// k, the number of tag hash tables.
  unsigned NumHashTables = 16;
  /// Optional hardening: exclude neighbouring granules' tags in IRG so
  /// adjacent-object overflows are deterministically caught.
  bool ExcludeAdjacentTags = false;
  /// Deferred tag-clear for the lock-free tag table: a single-holder
  /// Release leaves the granule tags resident (one CAS, no mutex, no STG
  /// loop) and the next Get of the same range is a pure CAS too. Tags are
  /// reclaimed when the object is freed/swept (the session hooks
  /// rt::JavaHeap's freed-range callback), when its slot is recycled, and
  /// when MaxResidentTagBytes overflows. Off reproduces the paper's exact
  /// Algorithm 2 (clear on last release) for the fig6/fig8 ablations —
  /// note the tradeoff: deferral narrows use-after-release detection to
  /// the post-reclaim window.
  bool DeferredTagClear = true;
  /// Ceiling on lingering (released but still tagged) payload bytes.
  uint64_t MaxResidentTagBytes = 8ull << 20;

  uint64_t HeapBytes = 64ull << 20;
  /// 0 = pick automatically (16 under MTE4JNI per §4.1, else 8).
  unsigned HeapAlignment = 0;
  /// Per-thread allocation buffer carved per refill (see rt::HeapConfig).
  /// 0 routes every bump through the refill lock.
  uint64_t HeapTlabBytes = 64 << 10;

  /// Guarded-copy red-zone size per side.
  uint64_t GuardedRedZoneBytes = 2048;

  bool BackgroundGc = false;
  uint32_t GcIntervalMillis = 5;
  bool GcVerifiesBodies = true;
  /// Correct §3.3 behaviour (default). Set false to reproduce the
  /// spurious-fault failure mode of a GC whose checks are left enabled.
  bool GcSuppressTagChecks = true;
  /// GC worker threads: 0 = auto (min(hardware, 8)), 1 = single-threaded
  /// ablation baseline.
  unsigned GcParallelism = 0;

  /// Flight-recorder capture mode (process-wide; the constructor applies
  /// it via support::obs::setMode). Sampled keeps hot-path events at ~1/64
  /// with negligible overhead; Full records every event for trace exports;
  /// Off compiles down to one relaxed load per instrumented site.
  support::FlightMode TraceMode = support::FlightMode::Sampled;

  uint64_t Seed = 1;
};

/// Owns the runtime + policy for one protection scheme.
class Session {
public:
  explicit Session(const SessionConfig &Config);
  ~Session();

  Session(const Session &) = delete;
  Session &operator=(const Session &) = delete;

  const SessionConfig &config() const { return Config; }
  Scheme scheme() const { return Config.Protection; }

  rt::Runtime &runtime() { return *Runtime; }
  jni::CheckPolicy &policy() { return *Policy; }

  /// The MTE4JNI policy, or nullptr for non-MTE schemes.
  core::Mte4JniPolicy *mtePolicy() { return MtePolicy; }
  /// The guarded-copy policy, or nullptr otherwise.
  guarded::GuardedCopyPolicy *guardedPolicy() { return GuardedPolicy; }

  /// Creates a JNI environment (use one per thread, like real JNI).
  std::unique_ptr<jni::JniEnv> makeEnv() {
    return std::make_unique<jni::JniEnv>(*Runtime, *Policy);
  }

  /// Fault log of the underlying MTE system.
  mte::FaultLog &faults();

  /// Human-readable end-of-run summary: heap, GC, MTE-instruction and
  /// policy statistics. Handy at the end of examples and benchmarks.
  std::string statsReport() const;

  /// Point-in-time aggregation of the process-wide metrics registry
  /// (tag checks, table fast/slow paths, JNI pins, GC phases, fault ring).
  /// Process-wide, not per-session: concurrent sessions share the registry.
  support::MetricsSnapshot metricsSnapshot() const;

  /// Writes metricsSnapshot().toJson() to \p Path. Returns false (and
  /// leaves no partial file behind on open failure) when the file cannot
  /// be written.
  bool writeMetricsJson(const std::string &Path) const;

  /// Writes support::FlightRecorder::exportChromeJson() to \p Path — a
  /// Chrome trace-event / Perfetto-loadable timeline of every thread's
  /// flight ring. Same failure contract as writeMetricsJson.
  bool writeTraceJson(const std::string &Path) const;

private:
  SessionConfig Config;
  std::unique_ptr<rt::Runtime> Runtime;
  std::unique_ptr<jni::CheckPolicy> Policy;
  core::Mte4JniPolicy *MtePolicy = nullptr;
  guarded::GuardedCopyPolicy *GuardedPolicy = nullptr;
};

/// RAII: attach the current thread to a session's runtime and give it an
/// env; detaches on destruction.
class ScopedAttach {
public:
  ScopedAttach(Session &S, std::string Name,
               rt::ThreadKind Kind = rt::ThreadKind::Mutator)
      : S(S), Thread(S.runtime().attachCurrentThread(std::move(Name), Kind)),
        Env(S.makeEnv()) {}

  ~ScopedAttach() { S.runtime().detachCurrentThread(); }

  ScopedAttach(const ScopedAttach &) = delete;
  ScopedAttach &operator=(const ScopedAttach &) = delete;

  rt::JavaThread &thread() { return Thread; }
  jni::JniEnv &env() { return *Env; }
  Session &session() { return S; }

private:
  Session &S;
  rt::JavaThread &Thread;
  std::unique_ptr<jni::JniEnv> Env;
};

} // namespace mte4jni::api

#endif // MTE4JNI_API_SESSION_H

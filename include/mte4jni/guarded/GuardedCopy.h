//===- GuardedCopy.h - ART's guarded-copy JNI checking ---------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Reimplementation of the baseline the paper compares against (§2.3,
/// Figure 2): ART CheckJNI's guarded copy. When native code requests a
/// buffer, the object payload is copied into a fresh allocation flanked by
/// two red zones pre-filled with a repeating canary string. At release the
/// red zones are verified; a changed byte means native code wrote out of
/// bounds, and the error is reported *at the release interface* with the
/// offset of the corruption — far from the faulting access, as Figure 4a
/// shows.
///
/// Inherited limitations (all reproduced, §2.3): out-of-bounds *reads* are
/// invisible; writes that skip past the red zones are invisible; detection
/// is deferred to release.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_GUARDED_GUARDEDCOPY_H
#define MTE4JNI_GUARDED_GUARDEDCOPY_H

#include "mte4jni/jni/CheckPolicy.h"
#include "mte4jni/support/SpinLock.h"

#include <cstdint>
#include <mutex>
#include <unordered_map>

namespace mte4jni::guarded {

struct GuardedCopyOptions {
  /// Red-zone size on EACH side of the copy.
  uint64_t RedZoneBytes = 2048;
  /// Copy the buffer back into the heap object at release (unless
  /// JNI_ABORT); matches CheckJNI ForceCopy semantics.
  bool CopyBackOnRelease = true;
  /// Compute an Adler-32 over the payload at Get and verify/refresh it at
  /// Release, like ART's GuardedCopy (used there to flag callers that
  /// modified a buffer they released with JNI_ABORT). A large part of the
  /// scheme's O(n) cost.
  bool ChecksumPayload = true;
};

struct GuardedCopyStats {
  uint64_t Acquires = 0;
  uint64_t Releases = 0;
  uint64_t BytesCopied = 0;
  uint64_t CorruptionsDetected = 0;
};

class GuardedCopyPolicy final : public jni::CheckPolicy {
public:
  explicit GuardedCopyPolicy(const GuardedCopyOptions &Options = {});
  ~GuardedCopyPolicy() override;

  const char *name() const override { return "guarded-copy"; }

  uint64_t acquire(const jni::JniBufferInfo &Info, bool &IsCopy) override;
  void release(const jni::JniBufferInfo &Info, uint64_t NativeBits,
               jni::jint Mode) override;

  uint64_t acquireScratch(uint64_t Bytes, const char *Interface) override;
  void releaseScratch(uint64_t NativeBits, uint64_t Bytes,
                      const char *Interface) override;

  bool exposesDirectPointers() const override { return false; }

  GuardedCopyStats stats() const;

  /// The canary pattern the red zones are filled with (ART uses a
  /// recognisable ASCII string so hex dumps are self-describing).
  static const char *canaryPattern();

private:
  struct Block {
    uint8_t *Allocation;  ///< base of [red zone | payload | red zone]
    uint64_t PayloadBytes;
    uint64_t OriginalData; ///< heap payload address (0 for scratch)
    uint32_t Adler32 = 1; ///< checksum of the payload at Get time
  };

  uint64_t makeBlock(uint64_t PayloadBytes, const void *InitFrom);
  /// Verifies red zones; returns -1 when intact, else the byte offset of
  /// the first corruption relative to the payload start (may be negative
  /// for underflow, encoded via the OffsetOut parameter).
  bool verifyRedZones(const Block &B, int64_t &OffsetOut) const;
  void reportCorruption(const jni::JniBufferInfo &Info, const Block &B,
                        int64_t Offset, const char *Interface);
  void destroyBlock(const jni::JniBufferInfo &Info, uint64_t Bits,
                    jni::jint Mode, const char *Interface, bool CopyBack);

  GuardedCopyOptions Options;

  mutable support::SpinLock Lock;
  std::unordered_map<uint64_t, Block> Live; ///< returned bits -> block
  GuardedCopyStats Stats;
};

} // namespace mte4jni::guarded

#endif // MTE4JNI_GUARDED_GUARDEDCOPY_H

//===- Tag.h - MTE tag and granule constants -----------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Constants describing the ARMv8.5-A Memory Tagging Extension layout that
/// this simulator reproduces (paper §2.1, Figure 1):
///
///   * memory is tagged at a 16-byte granule granularity;
///   * tags are 4 bits wide (16 possible colours);
///   * the pointer ("logical") tag lives in bits 56..59 of the pointer.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_MTE_TAG_H
#define MTE4JNI_MTE_TAG_H

#include "mte4jni/support/MathExtras.h"

#include <cstdint>

namespace mte4jni::mte {

/// A 4-bit allocation tag (0..15).
using TagValue = uint8_t;

/// Tag granule: one tag covers 16 bytes of memory.
inline constexpr uint64_t kGranuleSize = 16;
inline constexpr unsigned kGranuleShift = 4;

/// Tag width.
inline constexpr unsigned kTagBits = 4;
inline constexpr unsigned kNumTags = 1u << kTagBits; // 16

/// Pointer-tag placement: bits 56..59 of the 64-bit pointer.
inline constexpr unsigned kPointerTagShift = 56;
inline constexpr uint64_t kPointerTagMask = 0xFull << kPointerTagShift;

/// Address bits actually used for addressing. With top-byte-ignore the
/// hardware strips bits 56..63 before translation.
inline constexpr uint64_t kAddressMask = (1ull << kPointerTagShift) - 1;

/// Extracts the logical tag from raw pointer bits.
constexpr TagValue pointerTagOf(uint64_t Bits) {
  return static_cast<TagValue>((Bits & kPointerTagMask) >> kPointerTagShift);
}

/// Replaces the logical tag in raw pointer bits.
constexpr uint64_t withPointerTag(uint64_t Bits, TagValue Tag) {
  return (Bits & ~kPointerTagMask) |
         (static_cast<uint64_t>(Tag & 0xF) << kPointerTagShift);
}

/// Strips tag (and the rest of the top byte) leaving the physical address.
constexpr uint64_t addressOf(uint64_t Bits) { return Bits & kAddressMask; }

/// Granule index of an address within a region starting at \p RegionBegin.
constexpr uint64_t granuleIndex(uint64_t Addr, uint64_t RegionBegin) {
  return (Addr - RegionBegin) >> kGranuleShift;
}

/// Number of granules needed to cover [Begin, End).
constexpr uint64_t granulesCovering(uint64_t Begin, uint64_t End) {
  uint64_t First = support::alignDown(Begin, kGranuleSize);
  uint64_t Last = support::alignTo(End, kGranuleSize);
  return (Last - First) >> kGranuleShift;
}

/// Tag-check behaviour, mirroring the Linux PR_MTE_TCF_* modes (§2.1).
enum class CheckMode : uint8_t {
  /// Tag checks disabled entirely (the "no protection" configuration).
  None,
  /// Synchronous: a mismatching access faults immediately with a precise
  /// address and backtrace.
  Sync,
  /// Asynchronous: mismatches are latched in the thread's TFSR and
  /// delivered at the next simulated syscall, without a faulting address.
  Async,
};

const char *checkModeName(CheckMode Mode);

} // namespace mte4jni::mte

#endif // MTE4JNI_MTE_TAG_H

//===- Fault.h - Tag-check fault records and the fault log ---------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// When a simulated tag check fails, the simulator produces a FaultRecord —
/// the analog of the SIGSEGV + logcat tombstone the paper shows in Figure 4.
/// Records land in the process-wide FaultLog and are offered to an optional
/// fault handler which decides whether execution continues (the default, so
/// tests can inspect the log) or the process aborts (what a real device
/// does).
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_MTE_FAULT_H
#define MTE4JNI_MTE_FAULT_H

#include "mte4jni/mte/Tag.h"
#include "mte4jni/support/Backtrace.h"
#include "mte4jni/support/SpinLock.h"

#include <cstdint>
#include <string>
#include <vector>

namespace mte4jni::mte {

enum class FaultKind : uint8_t {
  /// Synchronous tag-check fault (SEGV_MTESERR): precise address + frame.
  TagMismatchSync,
  /// Asynchronous tag-check fault (SEGV_MTEAERR): delivered at the next
  /// simulated syscall; carries no faulting address.
  TagMismatchAsync,
  /// Guarded-copy red-zone corruption detected at the JNI release call.
  GuardedCopyCorruption,
  /// A JNI-level error (bad bounds in Get/SetArrayRegion, bad release ptr).
  JniCheckError,
};

const char *faultKindName(FaultKind Kind);

/// One detected memory-safety violation.
struct FaultRecord {
  FaultKind Kind = FaultKind::TagMismatchSync;

  /// Faulting address. Valid only when HasAddress — asynchronous MTE
  /// reports (SEGV_MTEAERR) carry no address, matching Linux behaviour.
  uint64_t Address = 0;
  bool HasAddress = false;

  /// Simulator-only ground truth for tests; a real kernel never reports
  /// this for async faults. 0 when unknown.
  uint64_t DebugAddress = 0;

  TagValue PointerTag = 0;
  TagValue MemoryTag = 0;
  bool IsWrite = false;
  uint32_t AccessSize = 0;

  uint64_t ThreadId = 0;

  /// For async faults: the simulated syscall at which the latched fault was
  /// delivered (e.g. "getuid", "write").
  std::string DeliveredAtSyscall;

  /// Snapshot of the simulated frame stack at *report* time. For sync
  /// faults this is the faulting access; for async faults it is the
  /// syscall site; for guarded copy it is the release interface.
  std::vector<support::FrameInfo> Backtrace;

  /// Free-form detail (guarded copy reports the corrupted offset here).
  std::string Description;

  /// Renders the record in a logcat-tombstone-like format (Figure 4).
  std::string str() const;
};

/// Outcome of a fault handler.
enum class FaultAction : uint8_t {
  /// Record and keep running (simulator default; lets tests observe).
  Continue,
  /// Emulate the real device: print the tombstone and abort the process.
  Abort,
};

/// Handler invoked on the faulting thread for every record.
using FaultHandler = FaultAction (*)(void *Context, const FaultRecord &Record);

/// Process-wide, thread-safe fault log. Bounded: after kMaxStored records
/// only counters advance.
class FaultLog {
public:
  static constexpr size_t kMaxStored = 1024;

  void append(FaultRecord Record);

  std::vector<FaultRecord> snapshot() const;
  void clear();

  /// Total faults observed (including ones beyond the storage bound).
  uint64_t totalCount() const;
  uint64_t countOf(FaultKind Kind) const;
  bool empty() const { return totalCount() == 0; }

private:
  mutable support::SpinLock Lock;
  std::vector<FaultRecord> Records;
  uint64_t Total = 0;
  uint64_t Counts[4] = {0, 0, 0, 0};
};

} // namespace mte4jni::mte

#endif // MTE4JNI_MTE_FAULT_H

//===- Access.h - Tag-checked memory access ------------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The simulated data path. On hardware every load/store from a thread with
/// checks enabled compares the pointer's logical tag against the granule's
/// allocation tag. Simulated native code performs its Java-heap accesses
/// through mte::load / mte::store (or CheckedSpan), which reproduce that
/// check. The fast path — checks disabled — is a thread-local flag test, so
/// the "no protection" baseline measured by the benchmarks is honest.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_MTE_ACCESS_H
#define MTE4JNI_MTE_ACCESS_H

#include "mte4jni/mte/TagStorage.h"
#include "mte4jni/mte/TaggedPtr.h"
#include "mte4jni/mte/ThreadState.h"
#include "mte4jni/support/Metrics.h"

#include <cstring>
#include <type_traits>

namespace mte4jni::mte {

namespace detail {
/// Out-of-line tag check; called on region-cache miss or when the fast
/// path saw a mismatch. Resolves the region(s) granule-by-granule, refills
/// the thread's region cache, and performs fault delivery/latching.
void checkAccessSlow(ThreadState &TS, uint64_t Bits, uint32_t Size,
                     bool IsWrite);

/// Header-inlined hit path: the access lies entirely inside the thread's
/// cached last-hit region, the cache is from the current publish epoch,
/// and every touched granule's tag matches. Returns false (deferring to
/// checkAccessSlow) on cache miss, straddle out of the cached region, or
/// tag mismatch. The epoch load is the only shared-state read — no
/// MteSystem::instance() magic-static guard, no region-list walk.
M4J_ALWAYS_INLINE bool checkAccessFast(ThreadState &TS, uint64_t Bits,
                                       uint32_t Size, bool IsWrite) {
  const TaggedRegion *Region = TS.cachedRegion();
  if (Region == nullptr)
    return false;
  if (M4J_UNLIKELY(TS.cachedRegionEpoch() !=
                   RegionPublishEpoch.load(std::memory_order_acquire)))
    return false;
  uint64_t Address = addressOf(Bits);
  uint64_t LastByte = Address + Size - 1;
  if (M4J_UNLIKELY(!Region->contains(Address) ||
                   !Region->contains(LastByte)))
    return false;
  TagValue PointerTag = pointerTagOf(Bits);
  uint64_t First = support::alignDown(Address, kGranuleSize);
  uint64_t Last = support::alignDown(LastByte, kGranuleSize);
  for (uint64_t Granule = First;; Granule += kGranuleSize) {
    if (M4J_UNLIKELY(Region->tagAt(Granule) != PointerTag))
      return false; // slow path re-checks and reports
    if (Granule >= Last)
      break;
  }
  uint64_t Granules = ((Last - First) >> kGranuleShift) + 1;
  TS.noteChecks(Granules);
  static support::Counter &CacheHits =
      support::Metrics::counter("mte/access/region_cache_hit");
  static support::Counter &CheckedLoads =
      support::Metrics::counter("mte/access/checked_loads");
  static support::Counter &CheckedStores =
      support::Metrics::counter("mte/access/checked_stores");
  static support::Counter &CheckedGranules =
      support::Metrics::counter("mte/access/checked_granules");
  CacheHits.add();
  (IsWrite ? CheckedStores : CheckedLoads).add();
  CheckedGranules.add(Granules);
  return true;
}

M4J_ALWAYS_INLINE void maybeCheck(uint64_t Bits, uint32_t Size,
                                  bool IsWrite) {
  ThreadState &TS = ThreadState::current();
  if (M4J_LIKELY(!TS.checksOn()))
    return;
  if (M4J_LIKELY(checkAccessFast(TS, Bits, Size, IsWrite)))
    return;
  checkAccessSlow(TS, Bits, Size, IsWrite);
}
} // namespace detail

/// Tag-checked load of a T through a tagged pointer. (T may be
/// const-qualified; the value type returned is the unqualified T.)
template <typename T>
M4J_ALWAYS_INLINE std::remove_const_t<T> load(TaggedPtr<T> Ptr) {
  detail::maybeCheck(Ptr.bits(), sizeof(T), /*IsWrite=*/false);
  return *Ptr.raw();
}

/// Tag-checked store of a T through a tagged pointer.
template <typename T>
M4J_ALWAYS_INLINE void store(TaggedPtr<T> Ptr, T Value) {
  detail::maybeCheck(Ptr.bits(), sizeof(T), /*IsWrite=*/true);
  *Ptr.raw() = Value;
}

/// Tag-checked bulk copy. Checks once per touched granule (hardware checks
/// every access, but the per-granule tag can only change at granule
/// boundaries, so this is equivalent detection-wise).
void copyBytes(TaggedPtr<void> Dst, TaggedPtr<const void> Src,
               uint64_t Bytes);

/// Tag-checked bulk fill.
void fillBytes(TaggedPtr<void> Dst, uint8_t Value, uint64_t Bytes);

/// Performs the tag checks for a read (resp. write) of [Ptr, Ptr+Bytes)
/// without moving any data. Native loops that stream over a buffer can
/// check the whole range once and then access raw memory — the simulator's
/// cost-faithful stand-in for hardware MTE, whose per-access checks ride
/// along with the accesses at no visible marginal cost.
void checkReadRange(TaggedPtr<const void> Ptr, uint64_t Bytes);
void checkWriteRange(TaggedPtr<void> Ptr, uint64_t Bytes);

/// Tag-checked read into untagged host memory.
void readBytes(void *HostDst, TaggedPtr<const void> Src, uint64_t Bytes);

/// Tag-checked write from untagged host memory.
void writeBytes(TaggedPtr<void> Dst, const void *HostSrc, uint64_t Bytes);

/// A length-carrying view over tagged memory; the convenience wrapper
/// simulated native methods use. Deliberately performs NO bounds checking
/// of its own — out-of-bounds indices are exactly the illicit accesses the
/// paper is about, and whether they are caught depends on the active
/// protection scheme.
template <typename T> class CheckedSpan {
public:
  CheckedSpan() = default;
  CheckedSpan(TaggedPtr<T> Base, uint64_t Length)
      : Base(Base), Length(Length) {}

  uint64_t size() const { return Length; }
  TaggedPtr<T> data() const { return Base; }

  T get(uint64_t Index) const { return load<T>(Base + ptrdiff_t(Index)); }
  void set(uint64_t Index, T Value) {
    store<T>(Base + ptrdiff_t(Index), Value);
  }

private:
  TaggedPtr<T> Base;
  uint64_t Length = 0;
};

/// Announces a simulated syscall on this thread; async MTE faults latched
/// in the TFSR are delivered here (paper Figure 4c shows getuid()).
void simulatedSyscall(const char *Name);

} // namespace mte4jni::mte

#endif // MTE4JNI_MTE_ACCESS_H

//===- Tombstone.h - Android-style crash report rendering -----------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Renders a FaultRecord the way Android's debuggerd renders a crash —
/// the full-fat version of the logcat snippets in the paper's Figure 4:
/// header block, signal line with si_code, the backtrace, and (the part
/// only an MTE tombstone has) a memory-tag dump around the fault address
/// showing each granule's allocation tag so the mismatch is visible at a
/// glance.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_MTE_TOMBSTONE_H
#define MTE4JNI_MTE_TOMBSTONE_H

#include "mte4jni/mte/Fault.h"

#include <string>

namespace mte4jni::mte {

struct TombstoneOptions {
  /// Granules shown on each side of the fault address in the tag dump.
  unsigned TagDumpRadius = 4;
  /// Process/thread naming for the header.
  std::string ProcessName = "com.example.app";
  int Pid = 4242;
};

/// Renders \p Record as a debuggerd-style tombstone. For records without
/// a fault address (async reports) the tag dump section explains why it
/// is absent instead of printing one.
std::string renderTombstone(const FaultRecord &Record,
                            const TombstoneOptions &Options = {});

/// Writes the most recent fault in the log (if any) as a tombstone to
/// \p Out; returns false when the log is empty.
bool renderLatestTombstone(std::string &Out,
                           const TombstoneOptions &Options = {});

} // namespace mte4jni::mte

#endif // MTE4JNI_MTE_TOMBSTONE_H

//===- TagStorage.h - Two-level shadow storage for granule tags ----*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Real MTE keeps allocation tags in dedicated tag RAM for pages mapped
/// with PROT_MTE. The simulator keeps a TWO-LEVEL store per registered
/// region; memory outside any registered region is unchecked, exactly
/// like non-PROT_MTE pages on hardware.
///
///   * Level 0 — packed granule shadow: tags are 4 bits, so two granules
///     share one shadow byte (even granule = low nibble, odd = high).
///     This level is always authoritative and costs regionSize/32 bytes,
///     half of the seed's byte-per-granule array.
///   * Level 1 — per-line summaries: one byte per 64-granule (1 KiB)
///     line, holding either Uniform(tag) (the value 0..15 itself) or
///     kSummaryMixed. Real tag traffic is overwhelmingly uniform at line
///     granularity (allocators colour whole objects), so bulk checks
///     walk this level first: a uniformly-tagged buffer costs one byte
///     compare per 64 granules — SWAR/AVX2-swept for large ranges — and
///     only Mixed lines fall back to the packed nibble scan.
///
/// Maintenance invariants (see DESIGN.md §13 for the full race argument):
/// a write covering a whole line publishes Uniform(tag) after its nibble
/// fill; any narrower write demotes its line to Mixed (an atomic RMW,
/// AFTER the nibble write); scans lazily re-promote a Mixed line found
/// uniform via CAS + acquire + validating re-scan.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_MTE_TAGSTORAGE_H
#define MTE4JNI_MTE_TAGSTORAGE_H

#include "mte4jni/mte/Tag.h"
#include "mte4jni/support/Compiler.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace mte4jni::mte {

/// Summary-line geometry: one summary byte covers 64 granules (1 KiB).
inline constexpr uint64_t kLineGranules = 64;
inline constexpr unsigned kLineShift = 6;
inline constexpr uint64_t kLineBytes = kLineGranules * kGranuleSize;

/// Summary value meaning "consult the packed granule shadow". Tags are
/// 0..15, so any value >= kNumTags is unambiguous.
inline constexpr uint8_t kSummaryMixed = 0xFF;

namespace detail {

/// Monotonic epoch bumped by MteSystem::publishRegions. Per-thread region
/// caches stamp the epoch at fill time and treat themselves as invalid the
/// moment it moves; the deferred snapshot retire list uses the same counter
/// to decide when a superseded RegionList can be freed. A plain namespace
/// global (not a member) so the header-inlined access fast path can read it
/// without paying the MteSystem::instance() magic-static guard.
extern std::atomic<uint64_t> RegionPublishEpoch;

// -- byte-array kernels ---------------------------------------------------
// First index in [0, Count) whose byte differs from Expected, or
// UINT64_MAX. These scan one byte per element: the summary sweep uses
// them directly (one byte per 64-granule line), and the packed-nibble
// kernels below reuse them over packed bytes with a both-nibbles pattern.

/// Reference byte-at-a-time scan; equivalence-test baseline.
uint64_t scanMismatchScalar(const uint8_t *Tags, uint64_t Count,
                            TagValue Expected);

/// SWAR scan: 8 bytes per uint64_t (replicated expected byte, XOR,
/// first-nonzero-byte). Same contract as the scalar scan.
uint64_t scanMismatchSwar(const uint8_t *Tags, uint64_t Count,
                          TagValue Expected);

/// Dispatching byte scan: AVX2 (when the build enabled it and the CPU has
/// it) > SSE2 > SWAR.
uint64_t scanMismatch(const uint8_t *Tags, uint64_t Count, TagValue Expected);

// -- packed-nibble kernels ------------------------------------------------
// Scan Count granule tags starting at granule index FirstGranule of a
// 2-tags-per-byte packed shadow. Returns the offset (in granules, relative
// to FirstGranule) of the first tag != Expected, or UINT64_MAX. Odd edge
// nibbles are peeled; the byte-aligned body compares both nibbles at once
// via the byte kernels above with the pattern (Expected<<4)|Expected.

/// Reference nibble-at-a-time scan; equivalence-test baseline.
uint64_t scanMismatchPackedScalar(const uint8_t *Packed, uint64_t FirstGranule,
                                  uint64_t Count, TagValue Expected);

/// SWAR body (16 granules per uint64_t); kept addressable for benches and
/// kernel-equivalence tests.
uint64_t scanMismatchPackedSwar(const uint8_t *Packed, uint64_t FirstGranule,
                                uint64_t Count, TagValue Expected);

/// Dispatching packed scan (AVX2 = 64 granules/iteration > SSE2 > SWAR).
uint64_t scanMismatchPacked(const uint8_t *Packed, uint64_t FirstGranule,
                            uint64_t Count, TagValue Expected);

/// Which byte kernel scanMismatch dispatches to for \p Count bytes:
/// 0 = scalar, 1 = SWAR, 2 = SSE2, 3 = AVX2.
unsigned scanKernelFor(uint64_t Count);

/// Flight-recorder attribution for a range check over \p Granules
/// granules: 4 = summary-assisted two-level walk (ranges spanning at
/// least one full line), otherwise the packed-kernel id per
/// scanKernelFor of the packed byte count.
unsigned checkKernelFor(uint64_t Granules);

} // namespace detail

/// Two-level shadow tags for one contiguous registered (PROT_MTE) region.
class TaggedRegion {
public:
  TaggedRegion(uint64_t Begin, uint64_t Size);

  uint64_t begin() const { return Begin; }
  uint64_t end() const { return End; }
  uint64_t size() const { return End - Begin; }

  bool contains(uint64_t Addr) const { return Addr >= Begin && Addr < End; }

  /// Tag of the granule containing \p Addr: one packed-byte load plus a
  /// nibble select.
  M4J_ALWAYS_INLINE TagValue tagAt(uint64_t Addr) const {
    uint64_t G = granuleIndex(Addr, Begin);
    uint8_t Byte = std::atomic_ref<const uint8_t>(Packed[G >> 1])
                       .load(std::memory_order_relaxed);
    return (G & 1) ? static_cast<TagValue>(Byte >> 4)
                   : static_cast<TagValue>(Byte & 0xF);
  }

  /// Sets the tag of the granule containing \p Addr: a CAS loop on the
  /// shared packed byte (the sibling granule's nibble must survive
  /// concurrent writers), then a demote of the line summary to Mixed.
  void setTagAt(uint64_t Addr, TagValue Tag);

  /// Sets all granules overlapping [From, To) to \p Tag; returns the number
  /// of granules written. Clamps to the region. Bulk path: boundary nibbles
  /// CAS, interior packed bytes memset — on hardware STG retires at store
  /// speed, so the simulator must not pay more than a half-byte store per
  /// granule — then wholly-covered lines publish Uniform(tag) in O(lines)
  /// and partial edge lines demote to Mixed.
  uint64_t setTagRange(uint64_t From, uint64_t To, TagValue Tag);

  /// Scans granules [FirstIdx, LastIdx] for any tag != \p Expected;
  /// returns the index of the first mismatch, or UINT64_MAX when all
  /// match. Bulk analog of per-access checks for memcpy-style transfers.
  /// Walks line summaries first (one compare per uniform line, SWAR/SIMD
  /// over summary bytes for multi-line spans) and packed-scans only Mixed
  /// lines, lazily re-promoting any it proves uniform.
  uint64_t findMismatch(uint64_t FirstIdx, uint64_t LastIdx,
                        TagValue Expected) const;

  /// Number of granules overlapping [From, To) whose tag is nonzero,
  /// clamped to the region. Diagnostic for the deferred tag-clear path:
  /// with TagAllocator's lingering slots, shadow nibbles stay nonzero
  /// after release until a reclaim trigger fires, and tests use this to
  /// assert a whole payload (not just its first granule) was reclaimed.
  uint64_t countTagged(uint64_t From, uint64_t To) const;

  uint64_t granuleCount() const { return NumGranules; }
  uint64_t lineCount() const { return NumLines; }

  /// Level-0 footprint: packed granule shadow bytes (2 tags per byte).
  uint64_t shadowBytes() const { return PackedBytes; }
  /// Level-1 footprint: one summary byte per line.
  uint64_t summaryBytes() const { return NumLines; }

  /// Raw packed shadow (2 granule tags per byte); diagnostics/tests.
  const uint8_t *packedTags() const { return Packed.get(); }
  /// Raw line summaries (tag value 0..15 = Uniform, kSummaryMixed);
  /// diagnostics/tests.
  const uint8_t *lineSummaries() const { return Summary.get(); }

private:
  /// Granules actually present in line \p Line (the region's last line
  /// may be short).
  uint64_t lineGranules(uint64_t Line) const {
    uint64_t First = Line << kLineShift;
    return std::min(kLineGranules, NumGranules - First);
  }

  /// CAS + validating re-scan promotion of a Mixed line the caller just
  /// scanned as uniformly \p Tag. Logically const: summaries are a cache
  /// over the authoritative packed level.
  void promoteLineIfUniform(uint64_t Line, TagValue Tag) const;

  /// Writes the single granule \p G's nibble via CAS on its shared byte.
  void storeNibble(uint64_t G, TagValue Tag);

  uint64_t Begin;
  uint64_t End;
  uint64_t NumGranules;
  uint64_t NumLines;
  uint64_t PackedBytes;
  // Plain byte arrays: single-granule/summary accesses go through
  // std::atomic_ref (CAS/RMW where a byte is shared), bulk fill/scan
  // through vectorisable loops. Concurrent tag store vs. tag check is
  // racy on hardware too (either the old or new tag wins); DESIGN.md §13
  // gives the argument for why no *persistently* wrong summary survives.
  std::unique_ptr<uint8_t[]> Packed;
  std::unique_ptr<uint8_t[]> Summary;
};

/// An immutable snapshot of the registered regions. Lookups are a short
/// linear scan — a process has very few PROT_MTE regions (typically the
/// Java heap and one native scratch arena).
class RegionList {
public:
  explicit RegionList(std::vector<std::shared_ptr<TaggedRegion>> Regions)
      : Regions(std::move(Regions)) {}

  /// Region containing \p Addr, or nullptr.
  M4J_ALWAYS_INLINE const TaggedRegion *find(uint64_t Addr) const {
    for (const auto &Region : Regions)
      if (Region->contains(Addr))
        return Region.get();
    return nullptr;
  }

  /// Shared-ownership lookup: the per-thread region cache keeps the
  /// returned shared_ptr so a cached region outlives unregisterRegion.
  std::shared_ptr<const TaggedRegion> findShared(uint64_t Addr) const {
    for (const auto &Region : Regions)
      if (Region->contains(Addr))
        return Region;
    return nullptr;
  }

  TaggedRegion *findMutable(uint64_t Addr) const {
    for (const auto &Region : Regions)
      if (Region->contains(Addr))
        return Region.get();
    return nullptr;
  }

  size_t size() const { return Regions.size(); }
  const std::vector<std::shared_ptr<TaggedRegion>> &regions() const {
    return Regions;
  }

private:
  std::vector<std::shared_ptr<TaggedRegion>> Regions;
};

} // namespace mte4jni::mte

#endif // MTE4JNI_MTE_TAGSTORAGE_H

//===- TagStorage.h - Shadow storage for granule tags --------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Real MTE keeps allocation tags in dedicated tag RAM for pages mapped
/// with PROT_MTE. The simulator keeps one byte of shadow per 16-byte
/// granule for every *registered* region; memory outside any registered
/// region is unchecked, exactly like non-PROT_MTE pages on hardware.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_MTE_TAGSTORAGE_H
#define MTE4JNI_MTE_TAGSTORAGE_H

#include "mte4jni/mte/Tag.h"
#include "mte4jni/support/Compiler.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace mte4jni::mte {

namespace detail {

/// Monotonic epoch bumped by MteSystem::publishRegions. Per-thread region
/// caches stamp the epoch at fill time and treat themselves as invalid the
/// moment it moves; the deferred snapshot retire list uses the same counter
/// to decide when a superseded RegionList can be freed. A plain namespace
/// global (not a member) so the header-inlined access fast path can read it
/// without paying the MteSystem::instance() magic-static guard.
extern std::atomic<uint64_t> RegionPublishEpoch;

/// Reference byte-at-a-time shadow scan: first index in [0, Count) whose
/// tag differs from \p Expected, or UINT64_MAX. Kept for equivalence tests
/// and as the benchmark baseline for the vector scans below.
uint64_t scanMismatchScalar(const uint8_t *Tags, uint64_t Count,
                            TagValue Expected);

/// SWAR scan: compares 8 shadow granule-tags per uint64_t (replicated
/// expected byte, XOR, first-nonzero-byte). Same contract as the scalar
/// scan.
uint64_t scanMismatchSwar(const uint8_t *Tags, uint64_t Count,
                          TagValue Expected);

/// Dispatching scan used by TaggedRegion::findMismatch: AVX2 (when the
/// build enabled it and the CPU has it) > SSE2 > SWAR.
uint64_t scanMismatch(const uint8_t *Tags, uint64_t Count, TagValue Expected);

/// Which kernel scanMismatch dispatches to for \p Count granules:
/// 0 = scalar, 1 = SWAR, 2 = SSE2, 3 = AVX2. Flight-recorder attribution
/// records this next to each sampled range check.
unsigned scanKernelFor(uint64_t Count);

} // namespace detail

/// Shadow tags for one contiguous registered (PROT_MTE) region.
class TaggedRegion {
public:
  TaggedRegion(uint64_t Begin, uint64_t Size);

  uint64_t begin() const { return Begin; }
  uint64_t end() const { return End; }
  uint64_t size() const { return End - Begin; }

  bool contains(uint64_t Addr) const { return Addr >= Begin && Addr < End; }

  /// Tag of the granule containing \p Addr.
  M4J_ALWAYS_INLINE TagValue tagAt(uint64_t Addr) const {
    return std::atomic_ref<const uint8_t>(Tags[granuleIndex(Addr, Begin)])
        .load(std::memory_order_relaxed);
  }

  /// Sets the tag of the granule containing \p Addr.
  void setTagAt(uint64_t Addr, TagValue Tag) {
    std::atomic_ref<uint8_t>(Tags[granuleIndex(Addr, Begin)])
        .store(Tag & 0xF, std::memory_order_relaxed);
  }

  /// Sets all granules overlapping [From, To) to \p Tag; returns the number
  /// of granules written. Clamps to the region. Bulk path: a plain
  /// vectorised fill — on hardware STG retires at store speed, so the
  /// simulator must not pay more than a byte store per granule either.
  uint64_t setTagRange(uint64_t From, uint64_t To, TagValue Tag);

  /// Scans granules [FirstIdx, LastIdx] for any tag != \p Expected;
  /// returns the index of the first mismatch, or UINT64_MAX when all
  /// match. Bulk analog of per-access checks for memcpy-style transfers.
  uint64_t findMismatch(uint64_t FirstIdx, uint64_t LastIdx,
                        TagValue Expected) const;

  /// Number of granules overlapping [From, To) whose tag is nonzero,
  /// clamped to the region. Diagnostic for the deferred tag-clear path:
  /// with TagAllocator's lingering slots, shadow bytes stay nonzero after
  /// release until a reclaim trigger fires, and tests use this to assert a
  /// whole payload (not just its first granule) was reclaimed.
  uint64_t countTagged(uint64_t From, uint64_t To) const;

  uint64_t granuleCount() const { return NumGranules; }

  /// Raw shadow bytes (one per granule); for diagnostics/tests.
  const uint8_t *tagArray() const { return Tags.get(); }

private:
  uint64_t Begin;
  uint64_t End;
  uint64_t NumGranules;
  // Plain bytes: single-granule accesses go through std::atomic_ref, bulk
  // fill/scan through vectorisable loops. Concurrent tag store vs. tag
  // check is racy on hardware too (either the old or new tag wins).
  std::unique_ptr<uint8_t[]> Tags;
};

/// An immutable snapshot of the registered regions. Lookups are a short
/// linear scan — a process has very few PROT_MTE regions (typically the
/// Java heap and one native scratch arena).
class RegionList {
public:
  explicit RegionList(std::vector<std::shared_ptr<TaggedRegion>> Regions)
      : Regions(std::move(Regions)) {}

  /// Region containing \p Addr, or nullptr.
  M4J_ALWAYS_INLINE const TaggedRegion *find(uint64_t Addr) const {
    for (const auto &Region : Regions)
      if (Region->contains(Addr))
        return Region.get();
    return nullptr;
  }

  /// Shared-ownership lookup: the per-thread region cache keeps the
  /// returned shared_ptr so a cached region outlives unregisterRegion.
  std::shared_ptr<const TaggedRegion> findShared(uint64_t Addr) const {
    for (const auto &Region : Regions)
      if (Region->contains(Addr))
        return Region;
    return nullptr;
  }

  TaggedRegion *findMutable(uint64_t Addr) const {
    for (const auto &Region : Regions)
      if (Region->contains(Addr))
        return Region.get();
    return nullptr;
  }

  size_t size() const { return Regions.size(); }
  const std::vector<std::shared_ptr<TaggedRegion>> &regions() const {
    return Regions;
  }

private:
  std::vector<std::shared_ptr<TaggedRegion>> Regions;
};

} // namespace mte4jni::mte

#endif // MTE4JNI_MTE_TAGSTORAGE_H

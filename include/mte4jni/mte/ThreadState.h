//===- ThreadState.h - Per-thread MTE control state ----------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Per-thread MTE state:
///
///   * TCO ("Tag Check Override") system register — when set, tag checks
///     are suppressed for this thread. This is the register the paper's
///     trampolines flip (§3.3): cleared when a Java thread enters native
///     code, set again on return, and left set on support threads such as
///     the GC so their untagged pointers never fault.
///   * TCF check mode (sync/async/none), initialised from the process
///     default and adjustable per thread, mirroring Linux's per-thread
///     prctl(PR_SET_TAGGED_ADDR_CTRL).
///   * TFSR — the async-fault latch drained at simulated syscalls.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_MTE_THREADSTATE_H
#define MTE4JNI_MTE_THREADSTATE_H

#include "mte4jni/mte/Tag.h"
#include "mte4jni/support/Compiler.h"
#include "mte4jni/support/Rng.h"

#include <atomic>
#include <cstdint>
#include <memory>

namespace mte4jni::mte {

class MteSystem;
class TaggedRegion;

class ThreadState {
public:
  /// The calling thread's state; lazily created and registered with the
  /// MteSystem on first use.
  static ThreadState &current();

  // -- TCO ------------------------------------------------------------
  /// TCO=1 suppresses tag checks (the hardware meaning).
  void setTco(bool Suppress) {
    Tco = Suppress;
    refreshChecksOn();
  }
  bool tco() const { return Tco; }

  // -- TCF ------------------------------------------------------------
  void setCheckMode(CheckMode NewMode) {
    Mode = NewMode;
    refreshChecksOn();
  }
  CheckMode checkMode() const { return Mode; }

  /// True when an access by this thread must be tag-checked.
  M4J_ALWAYS_INLINE bool checksOn() const {
    return ChecksOn.load(std::memory_order_relaxed);
  }

  // -- TFSR (async latch) ----------------------------------------------
  /// Latches an async mismatch; only the first pending one keeps details.
  void latchAsyncFault(uint64_t DebugAddress, TagValue PointerTag,
                       TagValue MemoryTag, bool IsWrite, uint32_t Size);

  bool asyncPending() const { return AsyncPending; }

  /// Delivers a pending async fault (invoked from the syscall barrier on
  /// this thread). No-op when nothing is latched.
  void drainAsync(const char *SyscallName);

  // -- statistics (thread-local, unsynchronised) -------------------------
  uint64_t checksPerformed() const { return NumChecks; }
  uint64_t mismatches() const { return NumMismatches; }
  void resetCounters() {
    NumChecks = 0;
    NumMismatches = 0;
  }

  /// Per-thread RNG used by the IRG instruction.
  support::Xoshiro256 &irgRng() { return IrgRng; }

  uint64_t threadId() const { return Id; }

  // Internal: used by the checked-access slow path.
  void noteCheck() { ++NumChecks; }
  void noteChecks(uint64_t N) { NumChecks += N; }
  void noteMismatch() { ++NumMismatches; }

  /// Re-reads the process default check mode (called when the process mode
  /// changes while the thread already exists).
  void syncModeFromProcess();

  // -- region cache (same-thread only; the checked-access fast path) ------
  /// Last region this thread's checked accesses hit, or nullptr. Valid only
  /// while cachedRegionEpoch() still equals detail::RegionPublishEpoch —
  /// any registerRegion/unregisterRegion invalidates every thread's cache
  /// by bumping the epoch. The backing shared_ptr keeps the TaggedRegion
  /// alive across unregistration, so a stale raw pointer can never dangle;
  /// the epoch check merely keeps it from validating accesses.
  const TaggedRegion *cachedRegion() const { return CachedRegion; }
  uint64_t cachedRegionEpoch() const { return CachedRegionEpoch; }

  /// Installs \p Region (observed under publish epoch \p Epoch) as the
  /// thread's last-hit region. Null clears the cache.
  void cacheRegion(std::shared_ptr<const TaggedRegion> Region,
                   uint64_t Epoch);

  /// This thread's read-side epoch slot for the snapshot retire protocol:
  /// 0 when quiescent, otherwise the publish epoch observed on entering a
  /// region walk (see MteSystem::RegionPin).
  std::atomic<uint64_t> &regionEpochSlot() { return ActiveRegionEpoch; }

  // -- tag-slot memo (same-thread only; TagAllocator's acquire/release
  //    fast paths) -------------------------------------------------------
  /// A small direct-mapped cache of (owner, begin) -> slot pointer that
  /// extends the JNI pin cache to *un-nested* re-pins across distinct
  /// Get/Release pairs: the pin record dies with each Release, but the
  /// memo survives, so the next Get of the same range skips the table
  /// probe and goes straight to the slot CAS. Entries are hints, never
  /// trusted: the caller revalidates via the slot's (epoch, resident,
  /// refcount) CAS, and \p Owner is the allocator's never-reused identity
  /// so a destroyed allocator's entries can never validate. Stored as
  /// void* to keep this layer ignorant of core::TagTable.
  static constexpr unsigned kTagSlotMemoSize = 16;
  M4J_ALWAYS_INLINE void *tagSlotMemoLookup(uint64_t Owner,
                                            uint64_t Key) const {
    const TagSlotMemoEntry &E = TagSlotMemo[tagSlotMemoIndex(Key)];
    return (E.Owner == Owner && E.Key == Key) ? E.Slot : nullptr;
  }
  M4J_ALWAYS_INLINE void tagSlotMemoStore(uint64_t Owner, uint64_t Key,
                                          void *Slot) {
    TagSlotMemo[tagSlotMemoIndex(Key)] = {Owner, Key, Slot};
  }

private:
  ThreadState();
  ~ThreadState();
  friend class MteSystem;

  void refreshChecksOn() {
    ChecksOn.store(Mode != CheckMode::None && !Tco,
                   std::memory_order_relaxed);
  }

  bool Tco = false;
  CheckMode Mode = CheckMode::None;
  // Atomic because MteSystem::setProcessCheckMode may refresh it from
  // another thread at a quiescent point.
  std::atomic<bool> ChecksOn{false};

  bool AsyncPending = false;
  uint64_t PendingDebugAddress = 0;
  TagValue PendingPointerTag = 0;
  TagValue PendingMemoryTag = 0;
  bool PendingIsWrite = false;
  uint32_t PendingSize = 0;

  uint64_t NumChecks = 0;
  uint64_t NumMismatches = 0;

  const TaggedRegion *CachedRegion = nullptr;
  std::shared_ptr<const TaggedRegion> CachedRegionRef;
  uint64_t CachedRegionEpoch = 0;
  std::atomic<uint64_t> ActiveRegionEpoch{0};

  struct TagSlotMemoEntry {
    uint64_t Owner = 0; ///< allocator identity; 0 = empty
    uint64_t Key = 0;
    void *Slot = nullptr;
  };
  static unsigned tagSlotMemoIndex(uint64_t Key) {
    // Fibonacci-mix the granule index; the top bits select the entry.
    return static_cast<unsigned>(
               ((Key >> kGranuleShift) * 0x9E3779B97F4A7C15ull) >> 60) &
           (kTagSlotMemoSize - 1);
  }
  TagSlotMemoEntry TagSlotMemo[kTagSlotMemoSize];

  support::Xoshiro256 IrgRng;
  uint64_t Id;
};

/// RAII: suppress (or enable) tag checks for the current scope, restoring
/// the previous TCO value on exit — the building block trampolines use.
class ScopedTco {
public:
  explicit ScopedTco(bool Suppress)
      : Saved(ThreadState::current().tco()) {
    ThreadState::current().setTco(Suppress);
  }
  ~ScopedTco() { ThreadState::current().setTco(Saved); }

  ScopedTco(const ScopedTco &) = delete;
  ScopedTco &operator=(const ScopedTco &) = delete;

private:
  bool Saved;
};

} // namespace mte4jni::mte

#endif // MTE4JNI_MTE_THREADSTATE_H

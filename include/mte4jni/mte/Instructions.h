//===- Instructions.h - Simulated MTE instruction set ---------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Function-level analogs of the ARMv8.5-A MTE instructions the paper's
/// Algorithm 1 names: IRG (insert random tag), LDG (load allocation tag),
/// STG/ST2G (store allocation tag for one/two granules), plus the bulk
/// helpers a runtime builds on top of them.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_MTE_INSTRUCTIONS_H
#define MTE4JNI_MTE_INSTRUCTIONS_H

#include "mte4jni/mte/TaggedPtr.h"

#include <cstdint>

namespace mte4jni::mte {

/// IRG: returns \p Ptr re-tagged with a random tag not present in
/// \p ExtraExclude or the system GCR exclude mask. With all 16 tags
/// excluded the result is tag 0 (hardware behaviour).
TaggedPtr<void> irg(TaggedPtr<void> Ptr, uint16_t ExtraExclude = 0);

/// Convenience: a random tag subject to the exclusion masks.
TagValue irgTag(uint16_t ExtraExclude = 0);

/// LDG: reads the allocation tag of the granule addressed by \p Ptr and
/// returns \p Ptr carrying that tag. Addresses outside any registered
/// region read tag 0.
TaggedPtr<void> ldg(TaggedPtr<void> Ptr);

/// Allocation tag of the granule containing \p Addr (0 outside regions).
TagValue ldgTag(uint64_t Addr);

/// STG: stores \p Ptr's logical tag as the allocation tag of its granule.
/// Ignored (like a tag store to non-PROT_MTE memory faulting — here we
/// assert) outside registered regions.
void stg(TaggedPtr<void> Ptr);

/// ST2G: tags two consecutive granules starting at \p Ptr.
void st2g(TaggedPtr<void> Ptr);

/// Tags every granule overlapping [Ptr, Ptr+Bytes) with Ptr's logical tag,
/// using ST2G pairs and a trailing STG exactly as Algorithm 1 describes.
void setTagRange(TaggedPtr<void> Ptr, uint64_t Bytes);

/// Clears (sets to zero) the allocation tags of every granule overlapping
/// [Addr, Addr+Bytes) — the release step of Algorithm 2.
void clearTagRange(uint64_t Addr, uint64_t Bytes);

/// Number of granules overlapping [Addr, Addr+Bytes) whose allocation tag
/// is nonzero; 0 outside registered regions. Diagnostic counterpart of
/// clearTagRange for the deferred tag-clear path: after a deferred release
/// the whole range stays tagged, and after any reclaim trigger it must
/// read 0.
uint64_t taggedGranulesIn(uint64_t Addr, uint64_t Bytes);

} // namespace mte4jni::mte

#endif // MTE4JNI_MTE_INSTRUCTIONS_H

//===- MteSystem.h - Process-level MTE simulator state --------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The process-wide face of the MTE simulator: registered PROT_MTE regions,
/// the prctl-style default check mode, the GCR exclude mask used by IRG,
/// the fault log/handler, and global instruction statistics.
///
/// Mirrors of real interfaces:
///   * registerRegion            <-> mmap/mprotect with PROT_MTE (§4.1)
///   * setProcessCheckMode       <-> prctl(PR_SET_TAGGED_ADDR_CTRL, TCF)
///   * setIrgExcludeMask         <-> GCR_EL1.Exclude
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_MTE_MTESYSTEM_H
#define MTE4JNI_MTE_MTESYSTEM_H

#include "mte4jni/mte/Fault.h"
#include "mte4jni/mte/TagStorage.h"
#include "mte4jni/support/SpinLock.h"

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

namespace mte4jni::mte {

class ThreadState;
class MteSystem;

/// Counters over simulated MTE instructions; cold-path only (tagging and
/// mismatch events), so they do not distort benchmark fast paths.
struct MteStats {
  std::atomic<uint64_t> IrgCount{0};
  std::atomic<uint64_t> StgGranules{0};
  std::atomic<uint64_t> LdgCount{0};
  std::atomic<uint64_t> SyncFaults{0};
  std::atomic<uint64_t> AsyncFaultsLatched{0};
  std::atomic<uint64_t> AsyncFaultsDelivered{0};

  void reset() {
    IrgCount = 0;
    StgGranules = 0;
    LdgCount = 0;
    SyncFaults = 0;
    AsyncFaultsLatched = 0;
    AsyncFaultsDelivered = 0;
  }
};

/// RAII read-side critical section over the region snapshot. Construction
/// publishes the observed publish epoch into the calling thread's epoch
/// slot (so publishRegions defers freeing any RegionList this thread may
/// still be walking), then loads the snapshot; destruction restores the
/// slot. Nesting is safe (inner pins restore the outer epoch). This is the
/// ONLY way to walk regions concurrently with register/unregister churn —
/// MteSystem::regions() is for quiescent callers (tests, diagnostics).
class RegionPin {
public:
  explicit RegionPin(const MteSystem &System);
  ~RegionPin();

  RegionPin(const RegionPin &) = delete;
  RegionPin &operator=(const RegionPin &) = delete;

  const RegionList *operator->() const { return List; }
  const RegionList &list() const { return *List; }
  /// The publish epoch under which this snapshot was observed; the value
  /// per-thread region caches must stamp.
  uint64_t epoch() const { return Epoch; }

private:
  std::atomic<uint64_t> *Slot;
  uint64_t Saved;
  const RegionList *List;
  uint64_t Epoch;
};

class MteSystem {
public:
  /// The process singleton.
  static MteSystem &instance();

  MteSystem(const MteSystem &) = delete;
  MteSystem &operator=(const MteSystem &) = delete;

  /// Restores pristine state: no regions, mode None, empty fault log,
  /// default exclude mask. Thread TCO/TCF values of live threads are reset
  /// too. Intended for tests and for switching schemes between benchmark
  /// phases.
  void reset();

  // -- prctl analogs ----------------------------------------------------
  /// Sets the process-default TCF mode and pushes it to every live thread.
  void setProcessCheckMode(CheckMode Mode);
  CheckMode processCheckMode() const {
    return ProcessMode.load(std::memory_order_relaxed);
  }

  /// GCR exclude mask: bit N set => IRG never produces tag N. The default
  /// excludes tag 0 so freed/untagged memory is distinguishable.
  void setIrgExcludeMask(uint16_t Mask);
  uint16_t irgExcludeMask() const {
    return IrgExclude.load(std::memory_order_relaxed);
  }

  // -- PROT_MTE regions ---------------------------------------------------
  /// Registers [Begin, Begin+Size) as tag-checked memory. Begin and Size
  /// must be granule-aligned.
  void registerRegion(void *Begin, uint64_t Size);

  /// Unregisters a region previously registered at \p Begin.
  void unregisterRegion(void *Begin);

  /// Current immutable region snapshot (never null). Safe only for
  /// quiescent callers: a snapshot returned here may be freed once a later
  /// publish retires it. Concurrent walkers use RegionPin.
  M4J_ALWAYS_INLINE const RegionList *regions() const {
    return RegionsSnapshot.load(std::memory_order_acquire);
  }

  bool isTaggedAddress(uint64_t Addr) const;

  /// Retired-but-not-yet-freed snapshots (diagnostics/tests: the deferred
  /// retire list must stay bounded under churn).
  size_t retiredSnapshotCount() const;

  /// Memory tag of \p Addr, or 0 when the address is not in any region.
  TagValue memoryTagAt(uint64_t Addr) const;

  // -- fault plumbing ----------------------------------------------------
  FaultLog &faultLog() { return Log; }
  const FaultLog &faultLog() const { return Log; }

  /// Installs a fault handler (nullptr to remove). The handler runs on the
  /// faulting thread.
  void setFaultHandler(FaultHandler Handler, void *Context);

  /// Records \p Record, invokes the handler, honours FaultAction::Abort.
  void deliverFault(FaultRecord Record);

  // -- statistics ----------------------------------------------------------
  MteStats &stats() { return Stats; }

  // -- thread registry (used by ThreadState) -------------------------------
  void registerThread(ThreadState *State);
  void unregisterThread(ThreadState *State);

  /// Deterministic seed base for per-thread IRG RNGs.
  void setRngSeed(uint64_t Seed) {
    RngSeed.store(Seed, std::memory_order_relaxed);
  }
  uint64_t nextThreadSeed();

private:
  MteSystem();
  friend class RegionPin;

  void publishRegions(std::vector<std::shared_ptr<TaggedRegion>> NewRegions);

  /// Frees retired snapshots no pinned reader can still hold. Caller holds
  /// RegionLock; takes ThreadLock (that nesting order is load-bearing).
  void reclaimRetiredLocked();

  std::atomic<CheckMode> ProcessMode{CheckMode::None};
  std::atomic<uint16_t> IrgExclude{0x0001}; // exclude tag 0 by default

  // Region snapshots: published via atomic pointer. A superseded snapshot
  // is parked on RetiredSnapshots stamped with the epoch at which it was
  // swapped out, and freed once every thread's RegionPin epoch slot shows
  // it can no longer be referencing it (see reclaimRetiredLocked).
  struct RetiredSnapshot {
    uint64_t Epoch;
    std::unique_ptr<const RegionList> List;
  };
  std::atomic<const RegionList *> RegionsSnapshot;
  std::vector<RetiredSnapshot> RetiredSnapshots;
  std::vector<std::shared_ptr<TaggedRegion>> LiveRegions;
  mutable support::SpinLock RegionLock;

  FaultLog Log;
  std::atomic<FaultHandler> Handler{nullptr};
  std::atomic<void *> HandlerContext{nullptr};

  MteStats Stats;

  std::vector<ThreadState *> Threads;
  support::SpinLock ThreadLock;

  std::atomic<uint64_t> RngSeed{0x4d54453434a4e49ULL}; // "MTE4JNI"-ish
  std::atomic<uint64_t> ThreadSeedCounter{0};
};

} // namespace mte4jni::mte

#endif // MTE4JNI_MTE_MTESYSTEM_H

//===- TaggedArena.h - PROT_MTE native scratch allocator ------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small allocator whose backing memory is registered as a PROT_MTE
/// region. The MTE4JNI policy uses it for the native UTF-8 buffers that
/// GetStringUTFChars must copy out of the heap (those copies still need
/// tagging so OOB access to them is caught), and tests use it as a
/// convenient source of taggable memory.
///
/// Allocation is 16-byte aligned (granule-aligned) segregated free lists
/// over a bump arena; thread-safe.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_MTE_TAGGEDARENA_H
#define MTE4JNI_MTE_TAGGEDARENA_H

#include "mte4jni/mte/Tag.h"
#include "mte4jni/support/SpinLock.h"

#include <cstdint>
#include <memory>
#include <vector>

namespace mte4jni::mte {

class TaggedArena {
public:
  /// Creates an arena of \p Bytes (rounded up to a granule multiple) and
  /// registers it with the MteSystem.
  explicit TaggedArena(uint64_t Bytes);
  ~TaggedArena();

  TaggedArena(const TaggedArena &) = delete;
  TaggedArena &operator=(const TaggedArena &) = delete;

  /// Allocates \p Bytes (16-byte aligned); returns nullptr when exhausted.
  void *allocate(uint64_t Bytes);

  /// Returns a previously allocated block to the arena.
  void deallocate(void *Ptr);

  uint64_t capacity() const { return Capacity; }
  uint64_t bytesInUse() const;

  uint64_t begin() const { return reinterpret_cast<uint64_t>(BasePtr); }
  uint64_t end() const { return begin() + Capacity; }
  bool contains(const void *Ptr) const {
    uint64_t A = reinterpret_cast<uint64_t>(Ptr);
    return A >= begin() && A < end();
  }

private:
  static constexpr unsigned kNumSizeClasses = 24; // 16 B .. 128 MiB

  static unsigned sizeClassOf(uint64_t Bytes);
  static uint64_t sizeOfClass(unsigned Class);

  std::unique_ptr<uint8_t[]> Storage; // over-allocated for alignment
  uint8_t *BasePtr = nullptr;         // granule-aligned view into Storage
  uint64_t Capacity = 0;
  uint64_t BumpOffset = 0;
  uint64_t InUse = 0;

  std::vector<void *> FreeLists[kNumSizeClasses];
  // Size class of each outstanding block, keyed by offset/16.
  std::vector<uint8_t> BlockClass;

  mutable support::SpinLock Lock;
};

} // namespace mte4jni::mte

#endif // MTE4JNI_MTE_TAGGEDARENA_H

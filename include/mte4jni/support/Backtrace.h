//===- Backtrace.h - Simulated per-thread call frame stacks -------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// On Android, crash reports come from debuggerd unwinding the faulting
/// thread (Figure 4 of the paper). This simulator cannot rely on native
/// unwinding to describe *simulated* Java/JNI frames, so instead every
/// interesting entry point — trampolines, JNI interfaces, native methods,
/// simulated syscalls — pushes an explicit frame with ScopedFrame. A fault
/// captures the current thread's frame stack, giving the same qualitative
/// signal as the paper's logcat traces: how close the top frame is to the
/// code that actually misbehaved.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_BACKTRACE_H
#define MTE4JNI_SUPPORT_BACKTRACE_H

#include <cstdint>
#include <string>
#include <vector>

namespace mte4jni::support {

/// One simulated stack frame.
struct FrameInfo {
  /// Function name, e.g. "test_ofb" or "art::Runtime::Abort".
  const char *Function = "";
  /// Module the frame belongs to, e.g. "libmtetest.so" or "libart.so".
  const char *Module = "";

  std::string str() const;
};

/// The current thread's simulated frame stack. Cheap: push/pop of a POD.
class FrameStack {
public:
  /// Accessor for the calling thread's stack.
  static FrameStack &current();

  void push(const FrameInfo &Frame) { Frames.push_back(Frame); }
  void pop() {
    if (!Frames.empty())
      Frames.pop_back();
  }

  /// Snapshot, innermost frame first (like a crash dump).
  std::vector<FrameInfo> capture() const;

  size_t depth() const { return Frames.size(); }
  bool empty() const { return Frames.empty(); }

private:
  std::vector<FrameInfo> Frames;
};

/// RAII frame push/pop.
class ScopedFrame {
public:
  ScopedFrame(const char *Function, const char *Module) {
    FrameStack::current().push(FrameInfo{Function, Module});
  }
  ~ScopedFrame() { FrameStack::current().pop(); }

  ScopedFrame(const ScopedFrame &) = delete;
  ScopedFrame &operator=(const ScopedFrame &) = delete;
};

/// Renders a captured stack in the logcat "backtrace:" style used by
/// Figure 4 of the paper.
std::string renderBacktrace(const std::vector<FrameInfo> &Frames);

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_BACKTRACE_H

//===- StringUtils.h - snprintf-style formatting helpers ----------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// printf-style std::string formatting plus a few parsing helpers. We avoid
/// <iostream> in library code per the LLVM coding standards; tools print
/// through these helpers and std::fputs/printf.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_STRINGUTILS_H
#define MTE4JNI_SUPPORT_STRINGUTILS_H

#include <cstdarg>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mte4jni::support {

/// printf into a std::string.
#if defined(__GNUC__) || defined(__clang__)
__attribute__((format(printf, 1, 2)))
#endif
std::string
format(const char *Fmt, ...);

/// vprintf into a std::string.
std::string formatV(const char *Fmt, va_list Args);

/// Splits \p Text on \p Sep; empty pieces are kept.
std::vector<std::string_view> split(std::string_view Text, char Sep);

/// True if \p Text starts with \p Prefix.
bool startsWith(std::string_view Text, std::string_view Prefix);

/// Parses a decimal unsigned integer; returns false on malformed input.
bool parseUnsigned(std::string_view Text, uint64_t &Out);

/// Renders a byte count with a binary-unit suffix, e.g. "4.0 KiB".
std::string humanBytes(uint64_t Bytes);

/// Renders \p Nanos with an adaptive unit, e.g. "1.25 ms".
std::string humanNanos(double Nanos);

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_STRINGUTILS_H

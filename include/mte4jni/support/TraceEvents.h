//===- TraceEvents.h - systrace-style event recording --------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An ATrace/systrace-style event recorder. Android engineers profile the
/// exact code paths this repository models (JNI transitions, GC pauses)
/// with systrace; this recorder captures the same begin/end slices and
/// counters, and exports the standard Chrome trace-event JSON that
/// chrome://tracing and Perfetto load directly.
///
/// Disabled by default: the fast path of every hook is one relaxed atomic
/// load, so instrumented hot paths (JNI Get/Release, GC phases) cost
/// nothing in benchmarks unless tracing is switched on.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_TRACEEVENTS_H
#define MTE4JNI_SUPPORT_TRACEEVENTS_H

#include <atomic>
#include <cstdint>
#include <string>
#include <vector>

namespace mte4jni::support {

/// One recorded event (complete slice or counter sample).
struct TraceEvent {
  enum class Kind : uint8_t { Slice, Counter };
  Kind EventKind = Kind::Slice;
  const char *Name = "";
  const char *Category = "";
  uint64_t ThreadId = 0;
  uint64_t StartMicros = 0;
  uint64_t DurationMicros = 0; ///< slices only
  int64_t Value = 0;           ///< counters only
};

/// Process-wide recorder (static facade; bounded buffer).
class TraceRecorder {
public:
  /// Enables/disables recording. Disabling keeps recorded events.
  static void setEnabled(bool Enabled);
  static bool enabled() {
    return EnabledFlag.load(std::memory_order_relaxed);
  }

  /// Drops all recorded events.
  static void clear();

  static std::vector<TraceEvent> snapshot();
  static size_t size();

  /// Events discarded because the bounded buffer was full. Reset by
  /// clear(). Also mirrored to the "support/trace/dropped_events" metric
  /// so exports surface silent truncation.
  static uint64_t dropped();

  /// Records a completed slice (used by ScopedTrace).
  static void recordSlice(const char *Name, const char *Category,
                          uint64_t StartMicros, uint64_t DurationMicros);

  /// Records a counter sample, e.g. live tag-table entries.
  static void recordCounter(const char *Name, int64_t Value);

  /// Exports everything in Chrome trace-event JSON ("traceEvents" array
  /// format) — loadable by chrome://tracing and ui.perfetto.dev.
  static std::string exportChromeJson();

private:
  static std::atomic<bool> EnabledFlag;
};

/// RAII slice: records [ctor, dtor) when tracing is enabled. Name and
/// category must be string literals (stored by pointer).
///
/// The enabled check is captured ONCE at construction — an explicit bool,
/// not "StartMicros != 0". Using the timestamp as the sentinel means an
/// enable/disable race mid-scope (or a clock that legitimately reads 0)
/// can record a slice whose StartMicros is 0, which exports as a slice
/// starting at the epoch with an absurd duration.
class ScopedTrace {
public:
  ScopedTrace(const char *Name, const char *Category)
      : Name(Name), Category(Category), Enabled(TraceRecorder::enabled()),
        StartMicros(Enabled ? nowMicros() : 0) {}

  ~ScopedTrace() {
    if (Enabled)
      TraceRecorder::recordSlice(Name, Category, StartMicros,
                                 nowMicros() - StartMicros);
  }

  ScopedTrace(const ScopedTrace &) = delete;
  ScopedTrace &operator=(const ScopedTrace &) = delete;

  static uint64_t nowMicros();

private:
  const char *Name;
  const char *Category;
  bool Enabled;
  uint64_t StartMicros;
};

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_TRACEEVENTS_H

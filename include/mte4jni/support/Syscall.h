//===- Syscall.h - Simulated system-call boundary ------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Asynchronous MTE faults on Linux are delivered when the kernel next
/// inspects the thread's TFSR — in practice at the next system call or
/// context switch (Figure 4c of the paper shows the fault surfacing inside
/// getuid()). The simulator models this with an explicit syscall boundary:
/// components that stand in for syscalls (logging, thread attach/detach, GC
/// safepoints, the example programs' getuid()) call syscallBarrier(), which
/// notifies registered observers. The MTE system registers an observer that
/// drains pending async faults at that point.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_SYSCALL_H
#define MTE4JNI_SUPPORT_SYSCALL_H

#include <cstdint>

namespace mte4jni::support {

/// Observer invoked on the *calling* thread at each simulated syscall.
using SyscallObserver = void (*)(void *Context, const char *SyscallName);

/// Registers an observer; returns a token for unregistering. A small fixed
/// number of slots is available (the MTE system uses one).
int addSyscallObserver(SyscallObserver Fn, void *Context);

/// Unregisters a previously added observer.
void removeSyscallObserver(int Token);

/// Announces that the calling thread performs the simulated syscall
/// \p Name ("getuid", "write", ...). Invokes all observers.
void syscallBarrier(const char *Name);

/// Number of barriers crossed process-wide; handy for tests.
uint64_t syscallBarrierCount();

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_SYSCALL_H

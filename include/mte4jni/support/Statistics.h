//===- Statistics.h - Running statistics and percentiles ----------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small statistics helpers used by the benchmark harness: running mean /
/// variance (Welford), percentile extraction and geometric means.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_STATISTICS_H
#define MTE4JNI_SUPPORT_STATISTICS_H

#include <cstddef>
#include <cstdint>
#include <vector>

namespace mte4jni::support {

/// Welford online mean/variance accumulator.
class RunningStat {
public:
  void add(double X);

  size_t count() const { return N; }
  double mean() const { return N ? Mean : 0.0; }
  double variance() const;
  double stddev() const;
  double min() const { return N ? Min : 0.0; }
  double max() const { return N ? Max : 0.0; }

private:
  size_t N = 0;
  double Mean = 0.0;
  double M2 = 0.0;
  double Min = 0.0;
  double Max = 0.0;
};

/// A sample set that supports percentiles; keeps all samples.
class SampleSet {
public:
  void add(double X) { Samples.push_back(X); }
  void clear() { Samples.clear(); }

  size_t count() const { return Samples.size(); }
  double mean() const;
  /// Linear-interpolated percentile, \p P in [0, 100].
  double percentile(double P) const;
  double median() const { return percentile(50.0); }
  double min() const;
  double max() const;

  const std::vector<double> &samples() const { return Samples; }

private:
  std::vector<double> Samples;
};

/// Geometric mean of \p Values; returns 0 for an empty input. All values
/// must be positive.
double geometricMean(const std::vector<double> &Values);

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_STATISTICS_H

//===- Compiler.h - Portability and diagnostic macros ------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Small portability layer: branch hints, assertion helpers and attribute
/// macros used across every MTE4JNI library. Kept dependency-free so it can
/// be included from anywhere.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_COMPILER_H
#define MTE4JNI_SUPPORT_COMPILER_H

#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstdlib>

#if defined(__GNUC__) || defined(__clang__)
#define M4J_LIKELY(X) __builtin_expect(!!(X), 1)
#define M4J_UNLIKELY(X) __builtin_expect(!!(X), 0)
#define M4J_ALWAYS_INLINE inline __attribute__((always_inline))
#define M4J_NOINLINE __attribute__((noinline))
#else
#define M4J_LIKELY(X) (X)
#define M4J_UNLIKELY(X) (X)
#define M4J_ALWAYS_INLINE inline
#define M4J_NOINLINE
#endif

/// Assertion macro. Unlike plain assert(), it survives NDEBUG builds for the
/// checks that guard simulator invariants; benchmarks compile with
/// M4J_NO_CHECKS to drop it.
#ifndef M4J_NO_CHECKS
#define M4J_ASSERT(Cond, Msg)                                                  \
  do {                                                                         \
    if (M4J_UNLIKELY(!(Cond))) {                                               \
      ::mte4jni::support::assertFail(#Cond, Msg, __FILE__, __LINE__);          \
    }                                                                          \
  } while (false)
#else
#define M4J_ASSERT(Cond, Msg)                                                  \
  do {                                                                         \
  } while (false)
#endif

#define M4J_UNREACHABLE(Msg)                                                   \
  ::mte4jni::support::unreachableHit(Msg, __FILE__, __LINE__)

namespace mte4jni::support {

/// Prints an assertion failure and aborts. Out-of-line so the assert macro
/// stays small at call sites.
[[noreturn]] void assertFail(const char *Cond, const char *Msg,
                             const char *File, int Line);

/// Reports reaching a spot the programmer believed unreachable, then aborts.
[[noreturn]] void unreachableHit(const char *Msg, const char *File, int Line);

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_COMPILER_H

//===- TraceRing.h - Per-thread flight recorder --------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A per-thread flight recorder: each thread owns a lock-free ring of
/// fixed-size (24-byte) trace events — JNI crossings, TagTable
/// acquire/release with outcome code, tag-check scans with kernel choice,
/// GC phases, TLAB refills, faults. Unlike TraceEvents.h (a global
/// spinlocked buffer that is off by default), the flight recorder is
/// always on at a ~1/64 sampling rate so the last few thousand events per
/// thread are available after the fact — from a tombstone, a bench run,
/// or a hung process — without having asked in advance.
///
/// Three observability levels, runtime-selectable and capped by the
/// compile-time M4J_OBS_LEVEL:
///
///   0 (Off)      hot paths pay one relaxed load + predicted branch
///   1 (Sampled)  default; hot events and latency samples at ~1/64
///   2 (Full)     every event; for tests and trace captures
///
/// Sampling uses a per-thread LCG, not a shared modular counter: in an
/// acquire/release loop a shared counter strides by 2 per operation, so a
/// "(counter & 63) == 0" gate would only ever sample one of the two call
/// sites. Randomness decorrelates sites from loop periodicity.
///
/// Ring slots are triples of relaxed std::atomic<uint64_t> so a concurrent
/// exporter reads them without data races (slices torn across words at
/// wraparound are decoded defensively and dropped). One decision per
/// operation arms both the latency histogram and the flight slice
/// (SampledLatency), so an instrumented hot path costs a TLS load, one
/// 32-bit multiply-add, and a compare when the sample is not taken.
///
/// exportChromeJson() merges the per-thread rings into one Chrome
/// trace-event JSON timeline (loadable in chrome://tracing and Perfetto)
/// with a named lane per thread: Java threads, GC workers, pool workers.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_TRACERING_H
#define MTE4JNI_SUPPORT_TRACERING_H

#include "mte4jni/support/Compiler.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/Timer.h"

#include <atomic>
#include <cstdint>
#include <string>
#include <string_view>

/// Compile-time observability ceiling: 0 compiles every hook out, 1 allows
/// sampling, 2 allows full capture. Runtime requests above the ceiling are
/// clamped down in obs::setLevel.
#ifndef M4J_OBS_LEVEL
#define M4J_OBS_LEVEL 2
#endif

namespace mte4jni::support {

/// What a flight event describes. Kept to one byte in the ring slot.
enum class FlightKind : uint8_t {
  None = 0,     ///< sentinel: slot empty / latency-only SampledLatency
  JniCrossing,  ///< Trampoline::callNative; Arg = NativeKind
  JniAcquire,   ///< JNI Get*ArrayElements / GetPrimitiveArrayCritical
  JniRelease,   ///< JNI Release*ArrayElements / ReleasePrimitiveArrayCritical
  TagAcquire,   ///< TagAllocator::acquire; Arg = outcome (0 fast, 1+reason)
  TagRelease,   ///< TagAllocator::release; Arg = outcome (0 fast, 1+reason)
  CheckScan,    ///< mte tag-check range scan; Arg = kernel, Arg2 = granules
  GcPhase,      ///< Arg = GcFlightPhase
  TlabRefill,   ///< Arg2 = bytes taken from the shared frontier
  Fault,        ///< Arg = 0 sync, 1 async
  kNumKinds
};

/// Why a TagTable acquire/release took the slow path. Exported both as
/// `core/tagtable/slow_reason/<name>` counters and as the outcome byte of
/// TagAcquire/TagRelease flight events (offset by 1; outcome 0 = fast).
/// This is the taxonomy that attributes the ROADMAP's acquire_fast = 0.
enum class TagSlowReason : uint8_t {
  SlotCold = 0,   ///< key not in the slot array: first acquire, or tombstoned
  FirstHolder,    ///< refcount 0 -> 1: tagging memory must serialize on the shard
  LastHolder,     ///< refcount 1 -> 0: clearing tags must serialize on the shard
  SlotRecycled,   ///< probe hit a slot reused for a different range
  ShardLockWait,  ///< the slow path had to wait for the shard mutex (two
                  ///< try-lock probes failed before blocking) — not merely
                  ///< "held at probe time"
  OverflowSpill,  ///< probe window exhausted; entry lives in the locked map
  PinCacheMiss,   ///< release arrived without a cached slot hint
  Orphan,         ///< release of an entry already at refcount 0
  DeferredReclaim, ///< lingering budget exhausted: the release must clear
                   ///< tags exactly instead of deferring
  kNumReasons
};

/// Stable lowercase-underscore name for metrics ("slot_cold", ...).
const char *tagSlowReasonName(TagSlowReason Reason);

/// GC phase ids for GcPhase flight events.
enum class GcFlightPhase : uint8_t {
  Collect = 0,
  Mark,
  Sweep,
  Compact,
  Verify,
  /// The stop-the-world window itself (beginPause..endPause), a superset
  /// of Mark/Sweep/Compact/Verify. Exported so pause slices line up with
  /// the rt/gc/pause_nanos histogram tails.
  Pause,
  /// Time-to-safepoint: from the pause request until the last critical
  /// section drained (the front of the Pause slice). Lines up with the
  /// rt/gc/ttsp_nanos histogram.
  Ttsp,
  kNumPhases
};

/// Runtime flight-recorder mode (mirrors obs levels 1/2/0; the odd
/// ordering keeps Sampled the zero-initialised default).
enum class FlightMode : uint8_t { Sampled = 0, Full = 1, Off = 2 };

namespace obs {

/// Runtime observability level: 0 off, 1 sampled, 2 full. Relaxed loads
/// only on hot paths.
extern std::atomic<uint8_t> LevelFlag;

/// Per-thread LCG state for sampleTick(). constinit zero: plain TLS load,
/// no dynamic-init guard; the LCG walks the full 2^32 period from any seed.
extern thread_local uint32_t SampleLcg;

/// Sets the runtime level, clamped to the compile-time M4J_OBS_LEVEL.
void setLevel(unsigned Level);
unsigned level();

/// FlightMode (api surface) -> level mapping.
void setMode(FlightMode Mode);

/// Advances the per-thread LCG; true on ~1/64 of calls.
M4J_ALWAYS_INLINE bool sampleTick() {
  uint32_t S = SampleLcg * 1664525u + 1013904223u;
  SampleLcg = S;
  return (S >> 26) == 0;
}

/// Gate for hot-path events: false at level 0, ~1/64 at level 1, always
/// at level 2.
M4J_ALWAYS_INLINE bool armSampled() {
#if M4J_OBS_LEVEL == 0
  return false;
#else
  unsigned L = LevelFlag.load(std::memory_order_relaxed);
  if (M4J_LIKELY(L == 1))
    return sampleTick();
  return L != 0;
#endif
}

/// Gate for cold events (GC phases, TLAB refills, faults): recorded at
/// every level except Off.
M4J_ALWAYS_INLINE bool coldArmed() {
#if M4J_OBS_LEVEL == 0
  return false;
#else
  return LevelFlag.load(std::memory_order_relaxed) != 0;
#endif
}

/// True only in Full mode — for fast-path events too cheap to sample.
M4J_ALWAYS_INLINE bool fullOn() {
#if M4J_OBS_LEVEL < 2
  return false;
#else
  return LevelFlag.load(std::memory_order_relaxed) == 2;
#endif
}

} // namespace obs

/// Static facade over the per-thread rings.
class FlightRecorder {
public:
  /// Events retained per thread. 2048 * 24 bytes = 48 KiB per ring; rings
  /// of dead threads are recycled by new threads, so memory is bounded by
  /// the peak live thread count.
  static constexpr size_t kRingEvents = 2048;

  /// Appends one event to the calling thread's ring (claiming a ring on
  /// first use). Callers gate on obs::armSampled()/coldArmed(); record()
  /// itself never samples. DurNanos saturates at ~4.29 s (32 bits).
  static void record(FlightKind Kind, uint8_t Arg, uint32_t Arg2,
                     uint64_t StartNanos, uint64_t DurNanos);

  /// Names the calling thread's lane in exported traces ("main",
  /// "gc-worker-3", ...). Last writer wins.
  static void setThreadLabel(std::string_view Label);

  /// Merges every thread's ring into Chrome trace-event JSON: "X" slices
  /// with microsecond (fractional) timestamps, one tid lane per ring,
  /// process/thread metadata records, and a top-level droppedEvents count
  /// for events that wrapped out of a ring.
  static std::string exportChromeJson();

  /// Events currently retained across all rings (post-wrap).
  static uint64_t eventCount();

  /// Events ever recorded (including wrapped-out ones).
  static uint64_t totalRecorded();

  /// Empties every ring (retained for reuse). For tests and bench phases.
  static void clear();
};

/// RAII flight slice for paths without a latency histogram. Arms at
/// construction via obs::armSampled(); Arg/Arg2 may be filled in mid-scope
/// once the outcome is known.
class FlightScope {
public:
  explicit FlightScope(FlightKind Kind, uint8_t Arg = 0, uint32_t Arg2 = 0)
      : Kind(Kind), Arg(Arg), Arg2(Arg2),
        StartNanos(obs::armSampled() ? monotonicNanos() : 0) {}

  ~FlightScope() {
    if (StartNanos != 0)
      FlightRecorder::record(Kind, Arg, Arg2, StartNanos,
                             monotonicNanos() - StartNanos);
  }

  FlightScope(const FlightScope &) = delete;
  FlightScope &operator=(const FlightScope &) = delete;

  bool armed() const { return StartNanos != 0; }
  void setArg(uint8_t A) { Arg = A; }
  void setArg2(uint32_t A) { Arg2 = A; }

private:
  FlightKind Kind;
  uint8_t Arg;
  uint32_t Arg2;
  uint64_t StartNanos;
};

/// RAII: one sampling decision arms BOTH a latency-histogram record and
/// (when Kind != None) a flight slice — the cost of instrumenting a hot
/// path is paid once, and the 2x clock_gettime is only taken on sampled
/// iterations. This is what keeps the <3% overhead budget: an unconditional
/// ScopedLatency costs ~40 ns of clock reads, ~28% of a ~140 ns acquire.
class SampledLatency {
public:
  explicit SampledLatency(Histogram &H, FlightKind Kind = FlightKind::None,
                          uint8_t Arg = 0, uint32_t Arg2 = 0)
      : H(H), Kind(Kind), Arg(Arg), Arg2(Arg2),
        StartNanos(obs::armSampled() ? monotonicNanos() : 0) {}

  ~SampledLatency() {
    if (StartNanos == 0)
      return;
    uint64_t Dur = monotonicNanos() - StartNanos;
    H.record(Dur);
    if (Kind != FlightKind::None)
      FlightRecorder::record(Kind, Arg, Arg2, StartNanos, Dur);
  }

  SampledLatency(const SampledLatency &) = delete;
  SampledLatency &operator=(const SampledLatency &) = delete;

  bool armed() const { return StartNanos != 0; }
  void setArg(uint8_t A) { Arg = A; }
  void setArg2(uint32_t A) { Arg2 = A; }

private:
  Histogram &H;
  FlightKind Kind;
  uint8_t Arg;
  uint32_t Arg2;
  uint64_t StartNanos;
};

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_TRACERING_H

//===- Metrics.h - Process-wide metrics registry --------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// An always-compiled-in, near-zero-overhead observability subsystem: a
/// named registry of counters, gauges and log-scale histograms, plus a
/// bounded ring of recent MTE fault telemetry.
///
/// The paper evaluates MTE4JNI almost entirely through counters it had to
/// collect ad hoc (tag-check overheads, detection rates, per-interface JNI
/// costs); this registry makes those counters first-class so every bench
/// and every Session run can export them.
///
/// Cost model (why instrumented hot paths stay hot):
///
///   * Counter::add on a thread that owns a shard is a plain load+store
///     (one ordinary `add` instruction) on a cache-line-aligned cell no
///     other thread writes — no atomic RMW, which alone costs tens of
///     nanoseconds on the virtualised hosts the benches run on. Shards
///     are EXCLUSIVE: a thread claims one from a free-list bitmask on
///     first use and returns it at thread exit, so single-writer cells
///     stay exact. When more than kMetricShards threads are live at
///     once, the extras share one designated overflow cell via relaxed
///     fetch_add — still exact, just slower.
///   * Gauges are single atomics — used only on paths that already hold a
///     lock (heap occupancy) or are cold (high-water marks).
///   * Histogram::record is a log2 bucket pick plus three relaxed adds on
///     the thread's shard — used for GC phase durations, not per-access.
///   * Registration (name lookup) takes a mutex, but instrumented call
///     sites do it once via a function-local static reference:
///
///       static support::Counter &Hits =
///           support::Metrics::counter("core/tagtable/lockfree/acquire_fast");
///       Hits.add();
///
/// snapshot() aggregates everything; exporters render JSON and
/// Prometheus-style text exposition. The registry is a leaked singleton:
/// metric references never dangle, even from thread_local destructors.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_METRICS_H
#define MTE4JNI_SUPPORT_METRICS_H

#include "mte4jni/support/Compiler.h"
#include "mte4jni/support/SpinLock.h"
#include "mte4jni/support/Timer.h"

#include <array>
#include <atomic>
#include <bit>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace mte4jni::support {

/// Number of exclusively-owned per-thread shards per metric. 16 covers
/// the benchmark fleet's concurrent thread counts; threads beyond that
/// share the overflow cell (atomic, exact, slower).
inline constexpr unsigned kMetricShards = 16;

/// Index of the shared overflow cell; metric arrays have this many + 1
/// cells in total.
inline constexpr unsigned kMetricOverflowShard = kMetricShards;
inline constexpr unsigned kMetricCells = kMetricShards + 1;

namespace detail {
/// Claims an exclusive shard (or the overflow shard when none is free),
/// stores it into MetricShardCache, and registers a thread-exit hook that
/// returns the claim. Returns the shard index.
unsigned assignMetricShardSlow();

/// Cached shard + 1 (0 = unassigned). constinit so every access is a plain
/// TLS load — no per-access dynamic-initialization guard.
extern thread_local unsigned MetricShardCache;

M4J_ALWAYS_INLINE unsigned metricShard() {
  unsigned S = MetricShardCache;
  if (M4J_LIKELY(S != 0))
    return S - 1;
  return assignMetricShardSlow();
}
} // namespace detail

/// Monotonically increasing event count, sharded per thread.
class Counter {
public:
  M4J_ALWAYS_INLINE void add(uint64_t N = 1) {
    unsigned S = detail::metricShard();
    std::atomic<uint64_t> &V = Cells[S].V;
    if (M4J_LIKELY(S != kMetricOverflowShard))
      // Exclusive owner: plain add, no RMW. Relaxed atomic accesses keep
      // concurrent aggregation (value()) race-free.
      V.store(V.load(std::memory_order_relaxed) + N,
              std::memory_order_relaxed);
    else
      V.fetch_add(N, std::memory_order_relaxed);
  }

  /// Sum over all shards (relaxed; exact once writers are quiescent).
  uint64_t value() const;
  void reset();

private:
  struct alignas(64) Cell {
    std::atomic<uint64_t> V{0};
  };
  Cell Cells[kMetricCells];
};

/// A settable signed level (heap occupancy, live entries, high-water
/// marks). Not sharded: set/max semantics don't distribute.
class Gauge {
public:
  void set(int64_t X) { V.store(X, std::memory_order_relaxed); }
  void add(int64_t N) { V.fetch_add(N, std::memory_order_relaxed); }
  /// Raises the gauge to \p X if it is below (high-water-mark semantics).
  void updateMax(int64_t X) {
    int64_t Cur = V.load(std::memory_order_relaxed);
    while (Cur < X &&
           !V.compare_exchange_weak(Cur, X, std::memory_order_relaxed))
      ;
  }
  int64_t value() const { return V.load(std::memory_order_relaxed); }
  void reset() { V.store(0, std::memory_order_relaxed); }

private:
  std::atomic<int64_t> V{0};
};

/// Log-scale (power-of-two bucket) histogram of a non-negative quantity;
/// instrumented sites record nanoseconds. Bucket B counts values whose
/// bit width is B, i.e. value in [2^(B-1), 2^B) for B >= 1 and {0} for
/// B == 0 — ~2x resolution over the full uint64 range, fixed memory.
class Histogram {
public:
  static constexpr unsigned kBuckets = 64;

  static constexpr unsigned bucketOf(uint64_t Value) {
    // Clamp: bit-width-64 values (>= 2^63) share the top bucket.
    unsigned Width =
        Value == 0 ? 0u
                   : 64u - static_cast<unsigned>(std::countl_zero(Value));
    return Width < kBuckets ? Width : kBuckets - 1;
  }
  /// Exclusive upper bound of bucket \p B (saturates at UINT64_MAX).
  static constexpr uint64_t bucketUpperBound(unsigned B) {
    return B >= 63 ? UINT64_MAX : (uint64_t(1) << B);
  }

  M4J_ALWAYS_INLINE void record(uint64_t Value) {
    unsigned Idx = detail::metricShard();
    Shard &S = Shards[Idx];
    std::atomic<uint64_t> &B = S.Buckets[bucketOf(Value)];
    if (M4J_LIKELY(Idx != kMetricOverflowShard)) {
      // Exclusive owner: plain adds (see Counter::add).
      B.store(B.load(std::memory_order_relaxed) + 1,
              std::memory_order_relaxed);
      S.Count.store(S.Count.load(std::memory_order_relaxed) + 1,
                    std::memory_order_relaxed);
      S.Sum.store(S.Sum.load(std::memory_order_relaxed) + Value,
                  std::memory_order_relaxed);
      if (Value < S.Min.load(std::memory_order_relaxed))
        S.Min.store(Value, std::memory_order_relaxed);
      if (Value > S.Max.load(std::memory_order_relaxed))
        S.Max.store(Value, std::memory_order_relaxed);
    } else {
      B.fetch_add(1, std::memory_order_relaxed);
      S.Count.fetch_add(1, std::memory_order_relaxed);
      S.Sum.fetch_add(Value, std::memory_order_relaxed);
      // Shared overflow cell: CAS loops keep min/max exact under races.
      uint64_t Cur = S.Min.load(std::memory_order_relaxed);
      while (Value < Cur &&
             !S.Min.compare_exchange_weak(Cur, Value,
                                          std::memory_order_relaxed))
        ;
      Cur = S.Max.load(std::memory_order_relaxed);
      while (Value > Cur &&
             !S.Max.compare_exchange_weak(Cur, Value,
                                          std::memory_order_relaxed))
        ;
    }
  }

  uint64_t count() const;
  uint64_t sum() const;
  /// Smallest / largest value ever recorded; both 0 when empty.
  uint64_t minValue() const;
  uint64_t maxValue() const;
  void reset();

  /// Aggregated buckets (index = bit width, see bucketOf).
  std::array<uint64_t, kBuckets> bucketCounts() const;

private:
  struct alignas(64) Shard {
    std::atomic<uint64_t> Buckets[kBuckets] = {};
    std::atomic<uint64_t> Count{0};
    std::atomic<uint64_t> Sum{0};
    std::atomic<uint64_t> Min{UINT64_MAX};
    std::atomic<uint64_t> Max{0};
  };
  Shard Shards[kMetricCells];
};

/// RAII: records the scope's duration (nanoseconds) into a histogram.
class ScopedLatency {
public:
  explicit ScopedLatency(Histogram &H) : H(H), StartNanos(monotonicNanos()) {}
  ~ScopedLatency() { H.record(monotonicNanos() - StartNanos); }

  ScopedLatency(const ScopedLatency &) = delete;
  ScopedLatency &operator=(const ScopedLatency &) = delete;

private:
  Histogram &H;
  uint64_t StartNanos;
};

// ==== fault telemetry =====================================================

/// One MTE fault, flattened for the telemetry ring. The library layering
/// is support <- mte, so this mirrors (rather than includes) the fields of
/// mte::FaultRecord that matter for triage.
struct FaultEvent {
  uint64_t Sequence = 0; ///< assigned by the ring, starts at 0
  uint64_t TimestampNanos = 0;
  std::string Kind;  ///< e.g. "SEGV_MTESERR (sync tag-check fault)"
  bool HasAddress = false;
  uint64_t Address = 0;
  uint8_t PointerTag = 0;
  uint8_t MemoryTag = 0;
  bool IsWrite = false;
  uint32_t AccessSize = 0;
  uint64_t ThreadId = 0;
  /// Innermost-first frame summary, " <- " separated (bounded).
  std::string Backtrace;
};

/// Bounded last-N ring of fault telemetry. Faults are cold (each one is a
/// detected memory-safety violation), so a spinlock is fine here.
class FaultRing {
public:
  static constexpr size_t kCapacity = 64;

  /// Records \p Event, stamping Sequence and TimestampNanos (if zero).
  void record(FaultEvent Event);

  /// Oldest-first snapshot of the retained window.
  std::vector<FaultEvent> snapshot() const;

  /// Faults ever recorded (including ones that wrapped out of the ring).
  uint64_t totalRecorded() const;

  void clear();

private:
  mutable SpinLock Lock;
  FaultEvent Ring[kCapacity];
  uint64_t Next = 0; ///< == totalRecorded; Ring[Next % kCapacity] is oldest
};

// ==== snapshots and export ================================================

struct CounterSample {
  std::string Name;
  uint64_t Value = 0;
};

struct GaugeSample {
  std::string Name;
  int64_t Value = 0;
};

struct HistogramSample {
  std::string Name;
  uint64_t Count = 0;
  uint64_t Sum = 0;
  uint64_t Min = 0; ///< exact smallest recorded value (0 when empty)
  uint64_t Max = 0; ///< exact largest recorded value (0 when empty)
  std::array<uint64_t, Histogram::kBuckets> Buckets = {};

  double mean() const { return Count ? double(Sum) / double(Count) : 0.0; }
  /// Upper bound of the bucket containing the \p P-th percentile
  /// (P in [0, 100]); 0 when empty.
  uint64_t percentileUpperBound(double P) const;
};

/// A consistent-enough point-in-time aggregation of every registered
/// metric (relaxed reads; exact when writers are quiescent), sorted by
/// name for deterministic export.
struct MetricsSnapshot {
  std::vector<CounterSample> Counters;
  std::vector<GaugeSample> Gauges;
  std::vector<HistogramSample> Histograms;
  std::vector<FaultEvent> Faults;
  uint64_t FaultsTotal = 0;

  /// Counter value by exact name; \p Default when absent.
  uint64_t counterValue(std::string_view Name, uint64_t Default = 0) const;
  int64_t gaugeValue(std::string_view Name, int64_t Default = 0) const;
  const HistogramSample *histogram(std::string_view Name) const;

  /// Machine-readable JSON document (counters/gauges/histograms/faults).
  std::string toJson() const;

  /// toJson() flattened onto a single line (no raw newlines) so a snapshot
  /// can be one record of a JSONL stream. String values are \n-escaped by
  /// jsonEscape, so every newline in the pretty document is inter-token
  /// whitespace and can be dropped wholesale.
  std::string toJsonLine() const;

  /// Prometheus-style text exposition (metric names sanitised to
  /// [a-zA-Z0-9_:] and prefixed "m4j_"; histograms emit cumulative
  /// _bucket{le=...} series plus _sum/_count).
  std::string toPrometheusText() const;
};

/// A derived counter's read callback (capture-free: evaluated at snapshot
/// time, typically summing other counters or mirroring existing stats).
using DerivedCounterFn = uint64_t (*)();

/// The process-wide registry façade.
class Metrics {
public:
  /// Finds or creates the named metric. References stay valid for the
  /// life of the process — cache them in a function-local static at the
  /// instrumented call site. Re-registering a name with a different
  /// metric type is a programming error (asserts).
  static Counter &counter(const char *Name);
  static Gauge &gauge(const char *Name);
  static Histogram &histogram(const char *Name);

  /// Registers a zero-hot-path-cost counter whose value is computed by
  /// \p Fn at snapshot time — for aggregates over per-path counters
  /// ("acquires" = fast + slow + ...) and mirrors of stats the code
  /// already maintains (the MTE instruction counts). Re-registering a
  /// name replaces the callback (idempotent registration).
  static void registerDerived(const char *Name, DerivedCounterFn Fn);

  static FaultRing &faultRing();

  static MetricsSnapshot snapshot();

  /// Zeroes every registered metric and clears the fault ring. For tests
  /// and benchmark phase boundaries; registration is never undone.
  static void resetAll();
};

/// Escapes \p Text for embedding in a JSON string literal.
std::string jsonEscape(std::string_view Text);

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_METRICS_H

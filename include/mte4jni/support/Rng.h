//===- Rng.h - Deterministic random number generation -------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic pseudo-random generators. All randomness in the simulator —
/// IRG tag selection, workload inputs, fuzz tests — flows from these so runs
/// are reproducible given a seed.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_RNG_H
#define MTE4JNI_SUPPORT_RNG_H

#include "mte4jni/support/Compiler.h"

#include <cstdint>

namespace mte4jni::support {

/// SplitMix64: used for seeding and cheap one-off draws.
class SplitMix64 {
public:
  explicit SplitMix64(uint64_t Seed) : State(Seed) {}

  uint64_t next() {
    uint64_t Z = (State += 0x9e3779b97f4a7c15ULL);
    Z = (Z ^ (Z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    Z = (Z ^ (Z >> 27)) * 0x94d049bb133111ebULL;
    return Z ^ (Z >> 31);
  }

private:
  uint64_t State;
};

/// xoshiro256** 1.0 — the workhorse generator.
class Xoshiro256 {
public:
  explicit Xoshiro256(uint64_t Seed) {
    SplitMix64 SM(Seed);
    for (uint64_t &Word : State)
      Word = SM.next();
  }

  uint64_t next() {
    const uint64_t Result = rotl(State[1] * 5, 7) * 9;
    const uint64_t T = State[1] << 17;
    State[2] ^= State[0];
    State[3] ^= State[1];
    State[1] ^= State[2];
    State[0] ^= State[3];
    State[2] ^= T;
    State[3] = rotl(State[3], 45);
    return Result;
  }

  /// Uniform draw in [0, Bound). Bound must be nonzero.
  uint64_t nextBelow(uint64_t Bound) {
    M4J_ASSERT(Bound != 0, "nextBelow requires a nonzero bound");
    // Lemire's multiply-shift rejection method.
    uint64_t X = next();
    __uint128_t M = static_cast<__uint128_t>(X) * Bound;
    uint64_t Low = static_cast<uint64_t>(M);
    if (Low < Bound) {
      uint64_t Threshold = -Bound % Bound;
      while (Low < Threshold) {
        X = next();
        M = static_cast<__uint128_t>(X) * Bound;
        Low = static_cast<uint64_t>(M);
      }
    }
    return static_cast<uint64_t>(M >> 64);
  }

  /// Uniform draw in [Lo, Hi] inclusive.
  int64_t nextInRange(int64_t Lo, int64_t Hi) {
    M4J_ASSERT(Lo <= Hi, "empty range");
    return Lo + static_cast<int64_t>(
                    nextBelow(static_cast<uint64_t>(Hi - Lo) + 1));
  }

  /// Uniform double in [0, 1).
  double nextDouble() {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli draw with probability \p P.
  bool nextBool(double P = 0.5) { return nextDouble() < P; }

private:
  static uint64_t rotl(uint64_t X, int K) {
    return (X << K) | (X >> (64 - K));
  }

  uint64_t State[4];
};

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_RNG_H

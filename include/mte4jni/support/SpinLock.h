//===- SpinLock.h - Tiny test-and-test-and-set spin lock ----------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A small spin lock for very short critical sections (tag-table shards,
/// fault-log appends). Satisfies the Lockable named requirement so it can be
/// used with std::lock_guard.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_SPINLOCK_H
#define MTE4JNI_SUPPORT_SPINLOCK_H

#include <atomic>

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#endif

namespace mte4jni::support {

/// Pause hint for spin-wait loops.
inline void cpuRelax() {
#if defined(__x86_64__) || defined(__i386__)
  _mm_pause();
#elif defined(__aarch64__)
  asm volatile("yield");
#endif
}

class SpinLock {
public:
  SpinLock() = default;
  SpinLock(const SpinLock &) = delete;
  SpinLock &operator=(const SpinLock &) = delete;

  void lock() {
    for (;;) {
      if (!Flag.exchange(true, std::memory_order_acquire))
        return;
      while (Flag.load(std::memory_order_relaxed))
        cpuRelax();
    }
  }

  bool try_lock() {
    return !Flag.load(std::memory_order_relaxed) &&
           !Flag.exchange(true, std::memory_order_acquire);
  }

  void unlock() { Flag.store(false, std::memory_order_release); }

private:
  std::atomic<bool> Flag{false};
};

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_SPINLOCK_H

//===- Timer.h - Wall-clock timing helpers ------------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Monotonic wall-clock timers used by the benchmark harness and tests.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_TIMER_H
#define MTE4JNI_SUPPORT_TIMER_H

#include <chrono>
#include <cstdint>

namespace mte4jni::support {

/// Nanoseconds on the monotonic clock.
inline uint64_t monotonicNanos() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Simple start/stop stopwatch; restartable.
class Stopwatch {
public:
  Stopwatch() : StartNs(monotonicNanos()) {}

  void restart() { StartNs = monotonicNanos(); }

  /// Elapsed time since construction or the last restart().
  uint64_t elapsedNanos() const { return monotonicNanos() - StartNs; }
  double elapsedMicros() const { return elapsedNanos() * 1e-3; }
  double elapsedMillis() const { return elapsedNanos() * 1e-6; }
  double elapsedSeconds() const { return elapsedNanos() * 1e-9; }

private:
  uint64_t StartNs;
};

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_TIMER_H

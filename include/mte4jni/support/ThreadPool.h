//===- ThreadPool.h - Minimal fixed-size thread pool ---------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A fixed-size thread pool used by the multi-core benchmark harness
/// (Figures 6 and 8). Deliberately simple: a work queue, a parallel-for
/// helper, and a barrier-style wait.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_THREADPOOL_H
#define MTE4JNI_SUPPORT_THREADPOOL_H

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace mte4jni::support {

class ThreadPool {
public:
  /// Creates \p NumThreads workers (at least 1). When \p LabelPrefix is
  /// non-null each worker names its flight-recorder lane
  /// "<prefix>-<index>" so exported traces show e.g. gc-worker-0..N
  /// instead of anonymous tids.
  explicit ThreadPool(size_t NumThreads, const char *LabelPrefix = nullptr);
  ~ThreadPool();

  ThreadPool(const ThreadPool &) = delete;
  ThreadPool &operator=(const ThreadPool &) = delete;

  size_t size() const { return Workers.size(); }

  /// Enqueues a task for asynchronous execution.
  void submit(std::function<void()> Task);

  /// Blocks until every submitted task has completed — including tasks
  /// other threads submit while this call is waiting. For a wait scoped to
  /// your own work, use parallelFor (per-batch completion).
  void waitIdle();

  /// Runs Body(I) for I in [0, Count) across the pool and waits for THIS
  /// batch only: concurrent unrelated submit()s do not extend the wait.
  /// Asserts when called from one of this pool's own workers (the caller
  /// would block a worker slot its own batch needs — a deadlock).
  void parallelFor(size_t Count, const std::function<void(size_t)> &Body);

private:
  void workerLoop(size_t Index, const char *LabelPrefix);

  std::vector<std::thread> Workers;
  std::queue<std::function<void()>> Queue;
  std::mutex Lock;
  std::condition_variable WorkAvailable;
  std::condition_variable AllDone;
  size_t InFlight = 0;
  bool ShuttingDown = false;
};

/// Hardware concurrency, never zero.
size_t hardwareThreads();

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_THREADPOOL_H

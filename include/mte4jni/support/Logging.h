//===- Logging.h - logcat-style in-process logger ------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// A logcat-like logger. Messages are kept in a bounded in-process ring
/// buffer (so tests can assert on them) and optionally echoed to stderr.
/// Writing a log line counts as a simulated syscall (liblog's writev), which
/// is exactly where the paper's Figure 4c shows asynchronous MTE faults
/// surfacing.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_LOGGING_H
#define MTE4JNI_SUPPORT_LOGGING_H

#include <cstdint>
#include <string>
#include <vector>

namespace mte4jni::support {

enum class LogSeverity : uint8_t { Debug, Info, Warn, Error, Fatal };

/// One captured log record.
struct LogRecord {
  LogSeverity Severity;
  std::string Tag;
  std::string Message;
  uint64_t ThreadId;
};

/// Process-wide bounded log buffer (static facade; state lives in the
/// implementation file).
class LogBuffer {
public:
  /// Appends a record; crosses a simulated syscall barrier.
  static void write(LogSeverity Severity, const char *Tag,
                    std::string Message);

  /// Snapshot of the retained records (oldest first).
  static std::vector<LogRecord> snapshot();

  /// Drops all retained records.
  static void clear();

  /// When true, records are echoed to stderr as they arrive.
  static void setEchoToStderr(bool Echo);

  static size_t size();
};

/// logcat-style helpers.
#if defined(__GNUC__) || defined(__clang__)
#define M4J_PRINTF_23 __attribute__((format(printf, 2, 3)))
#else
#define M4J_PRINTF_23
#endif
M4J_PRINTF_23 void logDebug(const char *Tag, const char *Fmt, ...);
M4J_PRINTF_23 void logInfo(const char *Tag, const char *Fmt, ...);
M4J_PRINTF_23 void logWarn(const char *Tag, const char *Fmt, ...);
M4J_PRINTF_23 void logError(const char *Tag, const char *Fmt, ...);
#undef M4J_PRINTF_23

const char *severityName(LogSeverity Severity);

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_LOGGING_H

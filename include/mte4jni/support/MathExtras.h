//===- MathExtras.h - Bit and alignment helpers -------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Alignment and power-of-two arithmetic used by the heap allocator and the
/// MTE granule machinery.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_SUPPORT_MATHEXTRAS_H
#define MTE4JNI_SUPPORT_MATHEXTRAS_H

#include "mte4jni/support/Compiler.h"

#include <bit>
#include <cstddef>
#include <cstdint>

namespace mte4jni::support {

/// Returns true if \p Value is a power of two (zero is not).
constexpr bool isPowerOf2(uint64_t Value) {
  return Value != 0 && (Value & (Value - 1)) == 0;
}

/// Rounds \p Value up to the next multiple of \p Align (a power of two).
constexpr uint64_t alignTo(uint64_t Value, uint64_t Align) {
  return (Value + Align - 1) & ~(Align - 1);
}

/// Rounds \p Value down to the previous multiple of \p Align (a power of two).
constexpr uint64_t alignDown(uint64_t Value, uint64_t Align) {
  return Value & ~(Align - 1);
}

/// Returns true if \p Value is a multiple of \p Align (a power of two).
constexpr bool isAligned(uint64_t Value, uint64_t Align) {
  return (Value & (Align - 1)) == 0;
}

/// Base-2 logarithm of a power of two.
constexpr unsigned log2Of(uint64_t Value) {
  return 63u - static_cast<unsigned>(std::countl_zero(Value));
}

/// Next power of two >= \p Value (Value must be nonzero and representable).
constexpr uint64_t nextPowerOf2(uint64_t Value) {
  return std::bit_ceil(Value);
}

/// Divide, rounding up.
constexpr uint64_t divideCeil(uint64_t Num, uint64_t Den) {
  return (Num + Den - 1) / Den;
}

} // namespace mte4jni::support

#endif // MTE4JNI_SUPPORT_MATHEXTRAS_H

//===- gc_interplay.cpp - Why TCO must be controlled per thread -----------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Demonstrates the §3.3 challenge. While a native thread holds a tagged
// pointer to a Java array, the garbage collector concurrently walks the
// heap with *untagged* pointers (its pointers never pass through JNI).
//
//   Correct configuration: the GC thread keeps TCO set (checks
//   suppressed) -> heap verification passes while native code is still
//   fully checked.
//
//   Broken configuration: the GC thread's checks are left enabled ->
//   every verification read of a currently-tagged array is a (spurious)
//   tag-check fault, exactly the failure mode the paper engineers around
//   with the trampoline TCO toggling.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"

#include <atomic>
#include <cstdio>
#include <thread>

using namespace mte4jni;

namespace {

uint64_t runScenario(bool GcSuppressesChecks) {
  api::SessionConfig Config;
  Config.Protection = api::Scheme::Mte4JniSync;
  Config.GcVerifiesBodies = true;
  Config.GcSuppressTagChecks = GcSuppressesChecks;
  api::Session S(Config);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  jni::jintArray Array = Main.env().NewIntArray(Scope, 4096);

  // Native code holds the array tagged across a GC cycle.
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "holder", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(Array, &IsCopy);

    // Run a GC with heap verification on a support thread. The support
    // thread's TCO setting is the whole story.
    std::atomic<bool> GcDone{false};
    std::thread GcThread([&] {
      S.runtime().attachCurrentThread("HeapTaskDaemon",
                                      rt::ThreadKind::GcSupport);
      S.runtime().gc().collect(); // includes the body-verification pass
      GcDone.store(true);
      S.runtime().detachCurrentThread();
    });
    // This body holds the callNative safepoint bracket, so the collector's
    // stop-the-world pause can only run while we are parked at a
    // checkpoint. The array stays pinned and tagged throughout — exactly
    // the §3.3 scenario.
    while (!GcDone.load()) {
      S.runtime().safepointPoll();
      std::this_thread::yield();
    }
    GcThread.join();

    Main.env().ReleaseIntArrayElements(Array, P, 0);
    return 0;
  });

  return S.faults().totalCount();
}

} // namespace

int main() {
  std::printf("§3.3 demo: GC heap verification runs while native code "
              "holds a tagged array\n\n");

  uint64_t CleanFaults = runScenario(/*GcSuppressesChecks=*/true);
  std::printf("correct config (GC thread TCO=1, checks suppressed): "
              "%llu faults  (expected 0)\n",
              static_cast<unsigned long long>(CleanFaults));

  uint64_t BrokenFaults = runScenario(/*GcSuppressesChecks=*/false);
  std::printf("broken config  (GC thread checks enabled):           "
              "%llu faults  (spurious! untagged GC pointers vs tagged "
              "memory)\n",
              static_cast<unsigned long long>(BrokenFaults));

  std::printf("\nthis is why MTE4JNI enables checking per *thread* via the "
              "TCO register in the\nnative-method trampolines instead of "
              "process-wide via prctl (§3.3, §4.3).\n");
  return (CleanFaults == 0 && BrokenFaults > 0) ? 0 : 1;
}

//===- strings_tour.cpp - The Table-1 string interfaces -------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Walks the string half of the paper's Table 1: GetStringChars,
// GetStringUTFChars and GetStringCritical, with their releases. Under
// MTE4JNI the direct UTF-16 payload is tagged in place, and the UTF-8
// conversion buffer — a genuine native copy — is allocated from a
// PROT_MTE scratch arena and tagged too, so an overflow while walking the
// C string is caught just like an array overflow.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"

#include <cstdio>

using namespace mte4jni;

int main() {
  api::SessionConfig Config;
  Config.Protection = api::Scheme::Mte4JniSync;
  api::Session S(Config);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  // A string with a non-ASCII scalar so the UTF-8 copy differs in length
  // from the UTF-16 payload.
  jni::jstring Str =
      Main.env().NewStringUTF(Scope, "tagged strings: \xC3\xBC ok");
  std::printf("string length: %d UTF-16 units, %d UTF-8 bytes\n",
              Main.env().GetStringLength(Str),
              Main.env().GetStringUTFLength(Str));

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "use_strings", [&] {
    // 1. Direct UTF-16 payload, tagged in place.
    jni::jboolean IsCopy;
    auto Chars = Main.env().GetStringChars(Str, &IsCopy);
    std::printf("GetStringChars:    tag %u, isCopy=%d, first unit '%c'\n",
                Chars.tag(), int(IsCopy),
                static_cast<char>(mte::load(Chars)));
    Main.env().ReleaseStringChars(Str, Chars);

    // 2. UTF-8 conversion buffer: always a copy, tagged in the scratch
    // arena under MTE4JNI.
    auto Utf = Main.env().GetStringUTFChars(Str, &IsCopy);
    std::printf("GetStringUTFChars: tag %u, isCopy=%d, text \"",
                Utf.tag(), int(IsCopy));
    for (ptrdiff_t I = 0;; ++I) {
      char C = mte::load(Utf + I);
      if (!C)
        break;
      std::putchar(C);
    }
    std::printf("\"\n");

    // Overflow while scanning the C string: one byte past the NUL's
    // granule run.
    std::printf("reading far past the UTF-8 buffer...\n");
    int Len = Main.env().GetStringUTFLength(Str);
    volatile char Oob = mte::load(Utf + (Len + 64));
    (void)Oob;
    Main.env().ReleaseStringUTFChars(Str, Utf);

    // 3. Critical access (GC is held off while held).
    auto Crit = Main.env().GetStringCritical(Str, &IsCopy);
    std::printf("GetStringCritical: tag %u; runtime critical depth %u\n",
                Crit.tag(), S.runtime().criticalDepth());
    Main.env().ReleaseStringCritical(Str, Crit);
    return 0;
  });

  std::printf("\nfaults recorded: %llu (expected 1, from the UTF-8 "
              "overread)\n",
              static_cast<unsigned long long>(S.faults().totalCount()));
  auto Faults = S.faults().snapshot();
  if (!Faults.empty())
    std::printf("\n%s\n", Faults[0].str().c_str());
  return S.faults().totalCount() == 1 ? 0 : 1;
}

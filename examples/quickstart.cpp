//===- quickstart.cpp - Five-minute tour of the library -------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The smallest end-to-end use of the public API:
//   1. start a Session under the MTE4JNI+Sync scheme,
//   2. create a Java int array,
//   3. call a "native method" that works on it through JNI,
//   4. watch an out-of-bounds write get caught with a precise report.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"

#include <cstdio>

using namespace mte4jni;

int main() {
  // 1. A session wires the runtime + JNI check policy for one of the
  // paper's four schemes. Mte4JniSync = tags + synchronous checking.
  api::SessionConfig Config;
  Config.Protection = api::Scheme::Mte4JniSync;
  api::Session S(Config);

  // Attach this thread as a Java thread and get its JNI environment.
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  // 2. A Java int[18], like Figure 3 of the paper.
  jni::jintArray Array = Main.env().NewIntArray(Scope, 18);

  // 3. Call a native method. The trampoline flips the thread's TCO
  // register so tag checks are live exactly while native code runs.
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "sum_array", [&] {
    jni::jboolean IsCopy;
    auto Elems = Main.env().GetIntArrayElements(Array, &IsCopy);
    std::printf("GetIntArrayElements returned %p (pointer tag %u, "
                "isCopy=%d)\n",
                reinterpret_cast<void *>(Elems.address()), Elems.tag(),
                int(IsCopy));

    // In-bounds work is unaffected.
    for (int I = 0; I < 18; ++I)
      mte::store<jni::jint>(Elems + I, I * I);
    long Sum = 0;
    for (int I = 0; I < 18; ++I)
      Sum += mte::load<jni::jint>(Elems + I);
    std::printf("sum of squares 0..17 = %ld\n", Sum);

    // 4. The bug: index 21 of an 18-element array. The granule behind
    // the array carries a different tag, so the store faults instantly.
    std::printf("\nnow writing out of bounds at index 21...\n");
    mte::store<jni::jint>(Elems + 21, 0xDEAD);

    Main.env().ReleaseIntArrayElements(Array, Elems, 0);
    return 0;
  });

  // Inspect what the MTE system caught.
  auto Faults = S.faults().snapshot();
  std::printf("\n%zu fault(s) recorded:\n", Faults.size());
  for (const auto &F : Faults)
    std::printf("%s\n", F.str().c_str());

  std::printf("quickstart done — see examples/detect_overflow.cpp for the "
              "full §5.2 comparison.\n");
  return Faults.size() == 1 ? 0 : 1;
}

//===- trace_capture.cpp - Capture a Perfetto-loadable trace ------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Runs a short MTE4JNI workload with the systrace-style recorder enabled
// and writes mte4jni_trace.json — open it in chrome://tracing or
// https://ui.perfetto.dev to see the JNI Get/Release slices, tag
// allocator activity and GC pauses on a timeline, the way an Android
// engineer would profile the real thing.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/support/TraceEvents.h"
#include "mte4jni/workloads/Workload.h"

#include <cstdio>

using namespace mte4jni;

int main() {
  support::TraceRecorder::clear();
  support::TraceRecorder::setEnabled(true);

  {
    api::SessionConfig Config;
    Config.Protection = api::Scheme::Mte4JniSync;
    Config.BackgroundGc = true;
    Config.GcIntervalMillis = 2;
    api::Session S(Config);
    api::ScopedAttach Main(S, "main");
    rt::HandleScope Scope(S.runtime());

    // A few JNI-heavy rounds plus a workload, so the trace has texture.
    jni::jarray A = Main.env().NewIntArray(Scope, 4096);
    for (int Round = 0; Round < 20; ++Round) {
      rt::callNative(Main.thread(), rt::NativeKind::Regular, "round", [&] {
        jni::jboolean IsCopy;
        auto P = Main.env().GetIntArrayElements(A, &IsCopy);
        for (int I = 0; I < 4096; I += 8)
          mte::store<jni::jint>(P + I, I);
        Main.env().ReleaseIntArrayElements(A, P, 0);
        return 0;
      });
    }

    auto W = workloads::makeWorkload("Photo Filter");
    workloads::WorkloadContext Ctx{S, Main.env(), Main.thread(), Scope, 1};
    W->prepare(Ctx);
    for (int I = 0; I < 3; ++I)
      W->run(Ctx);
  }

  support::TraceRecorder::setEnabled(false);
  std::string Json = support::TraceRecorder::exportChromeJson();

  const char *Path = "mte4jni_trace.json";
  FILE *F = std::fopen(Path, "w");
  if (!F) {
    std::perror("fopen");
    return 1;
  }
  std::fwrite(Json.data(), 1, Json.size(), F);
  std::fclose(F);

  std::printf("captured %zu events -> %s (%zu bytes)\n",
              support::TraceRecorder::size(), Path, Json.size());
  std::printf("open in chrome://tracing or https://ui.perfetto.dev\n");
  support::TraceRecorder::clear();
  return 0;
}

//===- workload_demo.cpp - Run a Geekbench-style workload under two schemes -----------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Shows the workload suite as a library consumer would use it: pick one
// sub-workload (default "Ray Tracer", or argv[1]), run it under the
// no-protection baseline and under MTE4JNI+Sync, verify the results are
// identical, and print each session's statistics report — the per-run
// telemetry a real deployment would watch (tags generated vs shared,
// bytes copied, faults).
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/support/Timer.h"
#include "mte4jni/workloads/Workload.h"

#include <cstdio>
#include <cstring>

using namespace mte4jni;

namespace {

struct RunOutcome {
  uint64_t Checksum = 0;
  double Millis = 0;
  std::string Stats;
};

RunOutcome runUnder(api::Scheme Scheme, const char *Name, int Iters) {
  api::SessionConfig Config;
  Config.Protection = Scheme;
  Config.HeapBytes = 64ull << 20;
  Config.Seed = 7;
  api::Session S(Config);
  api::ScopedAttach Main(S, "workload-demo");
  rt::HandleScope Scope(S.runtime());

  auto W = workloads::makeWorkload(Name);
  if (!W) {
    std::fprintf(stderr, "unknown workload '%s'; available:\n", Name);
    for (auto &Each : workloads::makeAllWorkloads())
      std::fprintf(stderr, "  %s\n", Each->name());
    std::exit(2);
  }

  workloads::WorkloadContext Ctx{S, Main.env(), Main.thread(), Scope, 7};
  W->prepare(Ctx);

  RunOutcome Out;
  support::Stopwatch Timer;
  for (int I = 0; I < Iters; ++I)
    Out.Checksum = W->run(Ctx);
  Out.Millis = Timer.elapsedMillis();
  Out.Stats = S.statsReport();
  return Out;
}

} // namespace

int main(int Argc, char **Argv) {
  const char *Name = Argc > 1 ? Argv[1] : "Ray Tracer";
  const int Iters = 5;

  std::printf("running \"%s\" x%d under two schemes...\n\n", Name, Iters);
  RunOutcome Baseline = runUnder(api::Scheme::NoProtection, Name, Iters);
  RunOutcome Protected_ = runUnder(api::Scheme::Mte4JniSync, Name, Iters);

  std::printf("no-protection : %8.2f ms, checksum %016llx\n",
              Baseline.Millis,
              static_cast<unsigned long long>(Baseline.Checksum));
  std::printf("mte4jni+sync  : %8.2f ms, checksum %016llx  (%.2fx)\n\n",
              Protected_.Millis,
              static_cast<unsigned long long>(Protected_.Checksum),
              Protected_.Millis / Baseline.Millis);

  if (Baseline.Checksum != Protected_.Checksum) {
    std::fprintf(stderr, "checksum mismatch: protection must be "
                         "transparent!\n");
    return 1;
  }
  std::printf("checksums identical: the protection changed nothing but "
              "the safety.\n\n%s",
              Protected_.Stats.c_str());
  return 0;
}

//===- concurrent_readers.cpp - Tag sharing across native threads ---------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Demonstrates §3.1: many native threads concurrently Get/Release the
// SAME Java array. The reference-counting scheme hands every holder the
// same tag (watch TagsGenerated vs TagsShared), the tag survives until
// the last holder releases, and the two-tier locking keeps the whole
// thing correct under load. A straggler thread that keeps using its
// pointer after releasing gets caught.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/support/StringUtils.h"
#include "mte4jni/mte/Access.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace mte4jni;

int main() {
  api::SessionConfig Config;
  Config.Protection = api::Scheme::Mte4JniSync;
  // This demo shows the paper's exact Algorithm 2: the last holder's
  // release zeroes the granule tags, so the straggler below faults on
  // its first stale use. Under the default deferred tag-clear the tags
  // would legitimately linger past the release (reclaimed at GC/free
  // time), which is precisely the detection window that option trades
  // for pure-CAS release — opt out to keep the clear synchronous.
  Config.DeferredTagClear = false;
  api::Session S(Config);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  constexpr unsigned kThreads = 8;
  constexpr unsigned kIters = 500;
  jni::jintArray Shared = Main.env().NewIntArray(Scope, 1024);
  auto *Data = rt::arrayData<jni::jint>(Shared);
  for (int I = 0; I < 1024; ++I)
    Data[I] = I;

  std::printf("%u threads Get/read/Release the same 1024-int array, %u "
              "times each...\n",
              kThreads, kIters);

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&S, Shared, T] {
      api::ScopedAttach Me(S, support::format("reader-%u", T));
      uint64_t Sink = 0;
      for (unsigned I = 0; I < kIters; ++I) {
        rt::callNative(Me.thread(), rt::NativeKind::Regular, "reader", [&] {
          jni::jboolean IsCopy;
          auto P = Me.env().GetIntArrayElements(Shared, &IsCopy);
          uint64_t Sum = 0;
          for (int K = 0; K < 1024; ++K)
            Sum += static_cast<uint32_t>(mte::load<jni::jint>(P + K));
          Me.env().ReleaseIntArrayElements(Shared, P, jni::JNI_ABORT);
          Sink += Sum;
          return 0;
        });
      }
      // Keep the loop's reads observable.
      asm volatile("" : : "r"(Sink));
    });
  }
  for (auto &T : Threads)
    T.join();

  const auto &Stats = S.mtePolicy()->allocator().stats();
  std::printf("\nacquires:       %llu\n",
              static_cast<unsigned long long>(Stats.Acquires.value()));
  std::printf("tags generated: %llu  (IRG — first holder of a quiet "
              "object)\n",
              static_cast<unsigned long long>(Stats.TagsGenerated.value()));
  std::printf("tags shared:    %llu  (LDG — joined concurrent holders, "
              "§3.1's whole point)\n",
              static_cast<unsigned long long>(Stats.TagsShared.value()));
  std::printf("tags cleared:   %llu  (last holder released)\n",
              static_cast<unsigned long long>(Stats.TagsCleared.value()));
  std::printf("faults:         %llu  (expected 0 — concurrent in-bounds "
              "reads are clean)\n",
              static_cast<unsigned long long>(S.faults().totalCount()));

  // Now the misbehaving thread: it releases, keeps the stale tagged
  // pointer, and uses it again. Algorithm 2 zeroed the granule tags, so
  // the stale pointer faults on first use.
  std::printf("\none thread now uses its pointer AFTER releasing...\n");
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "use_after_release",
                 [&] {
                   jni::jboolean IsCopy;
                   auto P = Main.env().GetIntArrayElements(Shared, &IsCopy);
                   Main.env().ReleaseIntArrayElements(Shared, P, 0);
                   // Dangling tagged pointer:
                   mte::store<jni::jint>(P, 0xBAD);
                   return 0;
                 });
  std::printf("faults after use-after-release: %llu (expected 1)\n",
              static_cast<unsigned long long>(S.faults().totalCount()));
  return S.faults().totalCount() == 1 ? 0 : 1;
}

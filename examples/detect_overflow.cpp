//===- detect_overflow.cpp - The paper's Figure 3 program, all four schemes -----------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Reproduces §5.2 interactively: the test_ofb native method (an 18-int
// array, a write at index 21 through GetPrimitiveArrayCritical) runs under
// each protection scheme, and the resulting report — or silence — is
// printed in logcat style, mirroring Figure 4a/4b/4c.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"

#include <cstdio>

using namespace mte4jni;

namespace {

/// Figure 3's native method, verbatim in spirit: obtain the array, write
/// one element past where it is allowed to, release, return JNI_TRUE.
jni::jboolean testOfb(jni::JniEnv &Env, jni::jintArray Array1) {
  jni::jboolean IsCopy1;
  auto Elems1 =
      Env.GetPrimitiveArrayCritical(Array1, &IsCopy1).cast<jni::jint>();

  // The original Java object is an array of 18 integers, but the native
  // code writes into the array with the index of 21: an OOB write.
  mte::store<jni::jint>(Elems1 + 21, 0x41414141);

  // Async mode surfaces the latched fault at the next syscall (the paper
  // sees it inside getuid()).
  mte::simulatedSyscall("getuid");

  Env.ReleasePrimitiveArrayCritical(Array1, Elems1.cast<void>(), 0);
  return jni::JNI_TRUE;
}

void runUnder(api::Scheme Scheme) {
  std::printf("=================================================="
              "==============\n");
  std::printf("scheme: %s\n", api::schemeName(Scheme));
  std::printf("--------------------------------------------------"
              "--------------\n");

  api::SessionConfig Config;
  Config.Protection = Scheme;
  api::Session S(Config);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  jni::jintArray Array = Main.env().NewIntArray(Scope, 18);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "test_ofb",
                 [&] { return testOfb(Main.env(), Array); });

  auto Faults = S.faults().snapshot();
  if (Faults.empty()) {
    std::printf("program terminated normally — the out-of-bounds write "
                "went UNDETECTED.\n\n");
    return;
  }
  for (const auto &F : Faults) {
    std::printf("%s", F.str().c_str());
    std::printf("\n(a real device would abort the process here)\n\n");
  }
}

} // namespace

int main() {
  std::printf("§5.2 effectiveness demo: native write at index 21 of an "
              "18-int Java array\n\n");
  runUnder(api::Scheme::NoProtection);
  runUnder(api::Scheme::GuardedCopy);  // cf. Figure 4a
  runUnder(api::Scheme::Mte4JniSync);  // cf. Figure 4b
  runUnder(api::Scheme::Mte4JniAsync); // cf. Figure 4c
  return 0;
}

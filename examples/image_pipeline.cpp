//===- image_pipeline.cpp - A camera-app style JNI pipeline ---------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// A realistic Android scenario: a "camera app" keeps frames in Java int
// arrays and hands them to native image-processing stages over JNI —
// exactly the pattern the paper's §5.4 workloads model. The pipeline runs
// under MTE4JNI+Sync to show that a real multi-stage native workload is
// unaffected by the protection, and then a buggy filter stage (classic
// off-by-one on the last row) is caught immediately.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"

#include <algorithm>
#include <cstdio>
#include <vector>

using namespace mte4jni;

namespace {

constexpr int kW = 128;
constexpr int kH = 96;

/// Native stage 1: exposure adjustment, in place via the JNI pointer.
void nativeExposure(jni::JniEnv &Env, jni::jintArray Frame, double Gain) {
  jni::jboolean IsCopy;
  auto Px = Env.GetIntArrayElements(Frame, &IsCopy);
  for (int I = 0; I < kW * kH; ++I) {
    uint32_t P = static_cast<uint32_t>(mte::load<jni::jint>(Px + I));
    auto Scale = [Gain](uint32_t C) {
      return static_cast<uint32_t>(std::min(255.0, C * Gain));
    };
    uint32_t R = Scale((P >> 16) & 0xFF), G = Scale((P >> 8) & 0xFF),
             B = Scale(P & 0xFF);
    mte::store<jni::jint>(
        Px + I, static_cast<jni::jint>(0xFF000000u | (R << 16) | (G << 8) |
                                       B));
  }
  Env.ReleaseIntArrayElements(Frame, Px, 0);
}

/// Native stage 2: 3x3 box blur, bulk in/out (the boundary-traffic style).
void nativeBlur(jni::JniEnv &Env, jni::jintArray Frame) {
  jni::jboolean IsCopy;
  auto Px = Env.GetIntArrayElements(Frame, &IsCopy);
  std::vector<uint32_t> In(kW * kH);
  mte::readBytes(In.data(), Px.cast<const void>(), In.size() * 4);

  std::vector<uint32_t> Out = In;
  for (int Y = 1; Y < kH - 1; ++Y) {
    for (int X = 1; X < kW - 1; ++X) {
      uint32_t R = 0, G = 0, B = 0;
      for (int DY = -1; DY <= 1; ++DY)
        for (int DX = -1; DX <= 1; ++DX) {
          uint32_t P = In[(Y + DY) * kW + X + DX];
          R += (P >> 16) & 0xFF;
          G += (P >> 8) & 0xFF;
          B += P & 0xFF;
        }
      Out[Y * kW + X] =
          0xFF000000u | ((R / 9) << 16) | ((G / 9) << 8) | (B / 9);
    }
  }
  mte::writeBytes(Px.cast<void>(), Out.data(), Out.size() * 4);
  Env.ReleaseIntArrayElements(Frame, Px, 0);
}

/// Native stage 3 — the buggy one: a vignette pass whose loop bound reads
/// `<= kW*kH` instead of `<`. One element past the end.
void nativeVignetteBuggy(jni::JniEnv &Env, jni::jintArray Frame) {
  jni::jboolean IsCopy;
  auto Px = Env.GetIntArrayElements(Frame, &IsCopy);
  for (int I = 0; I <= kW * kH; ++I) { // BUG: <= walks one past the end
    uint32_t P = static_cast<uint32_t>(mte::load<jni::jint>(Px + I));
    mte::store<jni::jint>(Px + I,
                          static_cast<jni::jint>(P & 0xFFEFEFEF));
  }
  Env.ReleaseIntArrayElements(Frame, Px, 0);
}

} // namespace

int main() {
  api::SessionConfig Config;
  Config.Protection = api::Scheme::Mte4JniSync;
  api::Session S(Config);
  api::ScopedAttach Main(S, "camera-app");
  rt::HandleScope Scope(S.runtime());

  // A synthetic frame.
  jni::jintArray Frame = Main.env().NewIntArray(Scope, kW * kH);
  auto *Px = rt::arrayData<jni::jint>(Frame);
  for (int Y = 0; Y < kH; ++Y)
    for (int X = 0; X < kW; ++X)
      Px[Y * kW + X] = static_cast<jni::jint>(
          0xFF000000u | ((X * 2) << 16) | ((Y * 2) << 8) | 0x80);

  std::printf("running the 2-stage native pipeline under %s...\n",
              api::schemeName(S.scheme()));
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "stage_exposure",
                 [&] { nativeExposure(Main.env(), Frame, 1.15); return 0; });
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "stage_blur",
                 [&] { nativeBlur(Main.env(), Frame); return 0; });
  std::printf("pipeline ok, %llu faults (expected 0)\n\n",
              static_cast<unsigned long long>(S.faults().totalCount()));

  std::printf("now running the buggy vignette stage (off-by-one on the "
              "frame)...\n");
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "stage_vignette",
                 [&] { nativeVignetteBuggy(Main.env(), Frame); return 0; });

  auto Faults = S.faults().snapshot();
  std::printf("%zu fault(s) — first report:\n\n", Faults.size());
  if (!Faults.empty())
    std::printf("%s\n", Faults[0].str().c_str());
  return Faults.empty() ? 1 : 0;
}

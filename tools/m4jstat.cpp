//===- m4jstat.cpp - Metrics snapshot pretty-printer / differ -----------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Pretty-prints one metrics JSON document — a Session::writeMetricsJson
// snapshot or a bench --json report (whose snapshot lives under "metrics")
// — or diffs two of them taken from the same process/bench at different
// times or commits:
//
//   m4jstat METRICS.json                  # one snapshot, non-zero metrics
//   m4jstat --all METRICS.json            # include zero counters
//   m4jstat --prefix=core/ METRICS.json   # filter by name prefix
//   m4jstat A.json B.json                 # diff: B - A per counter/histogram
//
// It also understands the JSONL streams a running server appends (one
// {"seq","elapsed_ms","label","metrics"} record per line, see
// server::SnapshotStreamer):
//
//   m4jstat watch STREAM.jsonl            # tail the stream, render deltas
//   m4jstat watch --once STREAM.jsonl     # render what is there, then exit
//   m4jstat diff --last STREAM.jsonl      # diff the two newest records
//
// Self-contained: a minimal recursive-descent JSON reader, no third-party
// dependencies, so it builds anywhere the simulator does.
//
//===----------------------------------------------------------------------===//

#include <cctype>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

namespace {

// ==== minimal JSON value tree ==============================================

struct JsonValue;
using JsonPtr = std::unique_ptr<JsonValue>;

struct JsonValue {
  enum class Kind { Null, Bool, Number, String, Array, Object } K = Kind::Null;
  bool Boolean = false;
  double Number = 0;
  std::string Str;
  std::vector<JsonPtr> Items;
  // Insertion-ordered: metrics documents are emitted sorted already.
  std::vector<std::pair<std::string, JsonPtr>> Members;

  const JsonValue *get(std::string_view Name) const {
    for (const auto &M : Members)
      if (M.first == Name)
        return M.second.get();
    return nullptr;
  }
  double num(std::string_view Name, double Default = 0) const {
    const JsonValue *V = get(Name);
    return V && V->K == Kind::Number ? V->Number : Default;
  }
};

class JsonParser {
public:
  explicit JsonParser(std::string_view Text) : Text(Text) {}

  /// Returns the parsed document or null on malformed input (Error says
  /// where).
  JsonPtr parse() {
    JsonPtr V = parseValue();
    skipSpace();
    if (V && Pos != Text.size())
      fail("trailing characters");
    return Failed ? nullptr : std::move(V);
  }

  std::string error() const { return Error; }

private:
  void fail(const char *Why) {
    if (!Failed) {
      Failed = true;
      Error = std::string(Why) + " at offset " + std::to_string(Pos);
    }
  }

  void skipSpace() {
    while (Pos < Text.size() && std::isspace(static_cast<unsigned char>(Text[Pos])))
      ++Pos;
  }

  bool consume(char C) {
    skipSpace();
    if (Pos < Text.size() && Text[Pos] == C) {
      ++Pos;
      return true;
    }
    return false;
  }

  JsonPtr parseValue() {
    skipSpace();
    if (Pos >= Text.size()) {
      fail("unexpected end of input");
      return nullptr;
    }
    char C = Text[Pos];
    if (C == '{')
      return parseObject();
    if (C == '[')
      return parseArray();
    if (C == '"')
      return parseString();
    if (C == '-' || std::isdigit(static_cast<unsigned char>(C)))
      return parseNumber();
    if (Text.compare(Pos, 4, "true") == 0) {
      Pos += 4;
      auto V = std::make_unique<JsonValue>();
      V->K = JsonValue::Kind::Bool;
      V->Boolean = true;
      return V;
    }
    if (Text.compare(Pos, 5, "false") == 0) {
      Pos += 5;
      auto V = std::make_unique<JsonValue>();
      V->K = JsonValue::Kind::Bool;
      return V;
    }
    if (Text.compare(Pos, 4, "null") == 0) {
      Pos += 4;
      return std::make_unique<JsonValue>();
    }
    fail("unexpected character");
    return nullptr;
  }

  JsonPtr parseObject() {
    ++Pos; // '{'
    auto V = std::make_unique<JsonValue>();
    V->K = JsonValue::Kind::Object;
    if (consume('}'))
      return V;
    for (;;) {
      skipSpace();
      JsonPtr Key = parseString();
      if (!Key || !consume(':')) {
        fail("expected \"key\":");
        return nullptr;
      }
      JsonPtr Val = parseValue();
      if (!Val)
        return nullptr;
      V->Members.emplace_back(std::move(Key->Str), std::move(Val));
      if (consume(','))
        continue;
      if (consume('}'))
        return V;
      fail("expected ',' or '}'");
      return nullptr;
    }
  }

  JsonPtr parseArray() {
    ++Pos; // '['
    auto V = std::make_unique<JsonValue>();
    V->K = JsonValue::Kind::Array;
    if (consume(']'))
      return V;
    for (;;) {
      JsonPtr Item = parseValue();
      if (!Item)
        return nullptr;
      V->Items.push_back(std::move(Item));
      if (consume(','))
        continue;
      if (consume(']'))
        return V;
      fail("expected ',' or ']'");
      return nullptr;
    }
  }

  JsonPtr parseString() {
    skipSpace();
    if (Pos >= Text.size() || Text[Pos] != '"') {
      fail("expected string");
      return nullptr;
    }
    ++Pos;
    auto V = std::make_unique<JsonValue>();
    V->K = JsonValue::Kind::String;
    while (Pos < Text.size() && Text[Pos] != '"') {
      char C = Text[Pos++];
      if (C == '\\' && Pos < Text.size()) {
        char E = Text[Pos++];
        switch (E) {
        case 'n': V->Str += '\n'; break;
        case 't': V->Str += '\t'; break;
        case 'r': V->Str += '\r'; break;
        case 'b': V->Str += '\b'; break;
        case 'f': V->Str += '\f'; break;
        case 'u':
          // Metrics names are ASCII; keep escapes opaque rather than
          // decoding surrogate pairs.
          V->Str += "\\u";
          break;
        default: V->Str += E; break;
        }
      } else {
        V->Str += C;
      }
    }
    if (Pos >= Text.size()) {
      fail("unterminated string");
      return nullptr;
    }
    ++Pos; // closing quote
    return V;
  }

  JsonPtr parseNumber() {
    size_t Start = Pos;
    while (Pos < Text.size() &&
           (std::isdigit(static_cast<unsigned char>(Text[Pos])) ||
            std::strchr("+-.eE", Text[Pos]) != nullptr))
      ++Pos;
    auto V = std::make_unique<JsonValue>();
    V->K = JsonValue::Kind::Number;
    V->Number = std::strtod(std::string(Text.substr(Start, Pos - Start)).c_str(),
                            nullptr);
    return V;
  }

  std::string_view Text;
  size_t Pos = 0;
  bool Failed = false;
  std::string Error;
};

// ==== document loading =====================================================

std::string readFile(const char *Path, bool &Ok) {
  std::FILE *F = std::fopen(Path, "rb");
  if (!F) {
    Ok = false;
    return {};
  }
  std::string Out;
  char Buf[1 << 16];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    Out.append(Buf, N);
  std::fclose(F);
  Ok = true;
  return Out;
}

struct Document {
  JsonPtr Root;
  const JsonValue *Metrics = nullptr; ///< the snapshot object within Root
  const JsonValue *Results = nullptr; ///< bench rows, when a bench report
};

/// Parses one JSON document (raw snapshot, bench report, or one stream
/// record) into \p Doc. \p Origin labels error messages.
bool parseDocument(const std::string &Text, const char *Origin,
                   Document &Doc) {
  JsonParser Parser(Text);
  Doc.Root = Parser.parse();
  if (!Doc.Root || Doc.Root->K != JsonValue::Kind::Object) {
    std::fprintf(stderr, "m4jstat: %s: %s\n", Origin,
                 Doc.Root ? "top level is not an object"
                          : Parser.error().c_str());
    return false;
  }
  // A bench report or stream record nests the snapshot under "metrics"; a
  // raw snapshot IS the object with "counters"/"gauges"/"histograms".
  const JsonValue *M = Doc.Root->get("metrics");
  Doc.Metrics = M && M->K == JsonValue::Kind::Object ? M : Doc.Root.get();
  Doc.Results = Doc.Root->get("results");
  if (Doc.Metrics->get("counters") == nullptr) {
    std::fprintf(stderr,
                 "m4jstat: %s has no \"counters\" section (not a metrics "
                 "snapshot or bench report)\n",
                 Origin);
    return false;
  }
  return true;
}

bool loadDocument(const char *Path, Document &Doc) {
  bool Ok = false;
  std::string Text = readFile(Path, Ok);
  if (!Ok) {
    std::fprintf(stderr, "m4jstat: cannot read %s\n", Path);
    return false;
  }
  return parseDocument(Text, Path, Doc);
}

// ==== printing =============================================================

struct Options {
  bool All = false;
  std::string Prefix;
  std::vector<const char *> Paths;
};

bool nameSelected(const std::string &Name, const Options &Opt) {
  return Opt.Prefix.empty() || Name.compare(0, Opt.Prefix.size(), Opt.Prefix) == 0;
}

void printProvenance(const Document &Doc) {
  const JsonValue *Bench = Doc.Root->get("bench");
  const JsonValue *Sha = Doc.Root->get("git_sha");
  const JsonValue *Stamp = Doc.Root->get("timestamp_utc");
  if (Bench && Bench->K == JsonValue::Kind::String)
    std::printf("bench: %s\n", Bench->Str.c_str());
  if (Sha && Sha->K == JsonValue::Kind::String)
    std::printf("git_sha: %s%s%s\n", Sha->Str.c_str(),
                Stamp && Stamp->K == JsonValue::Kind::String ? "  at " : "",
                Stamp && Stamp->K == JsonValue::Kind::String
                    ? Stamp->Str.c_str()
                    : "");
}

void printOne(const Document &Doc, const Options &Opt) {
  printProvenance(Doc);
  if (Doc.Results != nullptr && !Doc.Results->Items.empty()) {
    std::printf("-- results --\n");
    for (const JsonPtr &Row : Doc.Results->Items) {
      const JsonValue *Name = Row->get("name");
      const JsonValue *Unit = Row->get("unit");
      std::printf("  %-52s %12.4g %s\n",
                  Name ? Name->Str.c_str() : "?", Row->num("value"),
                  Unit ? Unit->Str.c_str() : "");
    }
  }

  const JsonValue *Counters = Doc.Metrics->get("counters");
  std::printf("-- counters --\n");
  for (const auto &M : Counters->Members) {
    if (!nameSelected(M.first, Opt))
      continue;
    if (!Opt.All && M.second->Number == 0)
      continue;
    std::printf("  %-52s %14.0f\n", M.first.c_str(), M.second->Number);
  }

  const JsonValue *Gauges = Doc.Metrics->get("gauges");
  if (Gauges != nullptr && !Gauges->Members.empty()) {
    std::printf("-- gauges --\n");
    for (const auto &M : Gauges->Members) {
      if (!nameSelected(M.first, Opt) || (!Opt.All && M.second->Number == 0))
        continue;
      std::printf("  %-52s %14.0f\n", M.first.c_str(), M.second->Number);
    }
  }

  const JsonValue *Histograms = Doc.Metrics->get("histograms");
  if (Histograms != nullptr && !Histograms->Members.empty()) {
    std::printf("-- histograms --\n");
    std::printf("  %-38s %10s %10s %8s %8s %8s %8s %8s\n", "name", "count",
                "mean", "min", "p50<=", "p99<=", "p999<=", "max");
    for (const auto &M : Histograms->Members) {
      if (!nameSelected(M.first, Opt))
        continue;
      const JsonValue &H = *M.second;
      if (!Opt.All && H.num("count") == 0)
        continue;
      std::printf("  %-38s %10.0f %10.1f %8.0f %8.0f %8.0f %8.0f %8.0f\n",
                  M.first.c_str(), H.num("count"), H.num("mean"), H.num("min"),
                  H.num("p50_le"), H.num("p99_le"), H.num("p999_le"),
                  H.num("max"));
    }
  }

  const JsonValue *Faults = Doc.Metrics->get("faults");
  if (Faults != nullptr)
    std::printf("-- faults: %.0f total --\n", Faults->num("total"));
}

// ==== diffing ==============================================================

void printDiff(const Document &A, const Document &B, const Options &Opt) {
  std::printf("-- counter deltas (B - A, changed only) --\n");
  const JsonValue *CA = A.Metrics->get("counters");
  const JsonValue *CB = B.Metrics->get("counters");
  std::map<std::string, double> Before;
  for (const auto &M : CA->Members)
    Before[M.first] = M.second->Number;
  for (const auto &M : CB->Members) {
    if (!nameSelected(M.first, Opt))
      continue;
    auto It = Before.find(M.first);
    double Prev = It == Before.end() ? 0 : It->second;
    double Delta = M.second->Number - Prev;
    if (Delta != 0)
      std::printf("  %-52s %+14.0f  (%.0f -> %.0f)\n", M.first.c_str(), Delta,
                  Prev, M.second->Number);
    if (It != Before.end())
      Before.erase(It);
  }
  for (const auto &Gone : Before)
    if (nameSelected(Gone.first, Opt) && Gone.second != 0)
      std::printf("  %-52s (removed; was %.0f)\n", Gone.first.c_str(),
                  Gone.second);

  const JsonValue *HA = A.Metrics->get("histograms");
  const JsonValue *HB = B.Metrics->get("histograms");
  if (HA != nullptr && HB != nullptr) {
    std::printf("-- histogram deltas (count; p99<= A -> B) --\n");
    for (const auto &M : HB->Members) {
      if (!nameSelected(M.first, Opt))
        continue;
      const JsonValue *Prev = HA->get(M.first);
      double PrevCount = Prev ? Prev->num("count") : 0;
      double Delta = M.second->num("count") - PrevCount;
      if (Delta == 0)
        continue;
      std::printf("  %-44s %+12.0f  p99<= %.0f -> %.0f\n", M.first.c_str(),
                  Delta, Prev ? Prev->num("p99_le") : 0,
                  M.second->num("p99_le"));
    }
  }
}

// ==== JSONL streams (watch / diff --last) ==================================

/// One parsed SnapshotStreamer record: the wrapper fields plus a Document
/// view onto the embedded snapshot.
struct StreamRecord {
  Document Doc;
  double Seq = 0;
  double ElapsedMs = 0;
  std::string Label;
};

bool parseStreamLine(const std::string &Line, StreamRecord &Rec) {
  if (!parseDocument(Line, "stream record", Rec.Doc))
    return false;
  Rec.Seq = Rec.Doc.Root->num("seq");
  Rec.ElapsedMs = Rec.Doc.Root->num("elapsed_ms");
  const JsonValue *L = Rec.Doc.Root->get("label");
  Rec.Label = L && L->K == JsonValue::Kind::String ? L->Str : "";
  return true;
}

void printStreamHeader(const StreamRecord &Rec, const char *What) {
  std::printf("== seq %.0f  %+.0f ms%s%s  %s ==\n", Rec.Seq, Rec.ElapsedMs,
              Rec.Label.empty() ? "" : "  label=",
              Rec.Label.c_str(), What);
}

/// Renders one new record against the previous one. A label change marks a
/// new phase (the producer typically reset the registry between phases),
/// so the record becomes the new baseline instead of producing a diff full
/// of negative deltas.
void renderStreamRecord(std::unique_ptr<StreamRecord> &Prev,
                        std::unique_ptr<StreamRecord> Cur,
                        const Options &Opt) {
  if (Prev == nullptr || Prev->Label != Cur->Label) {
    printStreamHeader(*Cur, Prev == nullptr ? "(baseline)" : "(new phase)");
  } else {
    printStreamHeader(*Cur, "(delta vs previous)");
    printDiff(Prev->Doc, Cur->Doc, Opt);
  }
  std::fflush(stdout);
  Prev = std::move(Cur);
}

/// Splits newly appended bytes of a JSONL file into complete lines,
/// carrying any trailing partial line to the next poll.
struct LineTail {
  std::string Partial;

  template <typename Fn> void feed(const char *Data, size_t N, Fn OnLine) {
    Partial.append(Data, N);
    size_t Start = 0;
    for (;;) {
      size_t Nl = Partial.find('\n', Start);
      if (Nl == std::string::npos)
        break;
      if (Nl > Start)
        OnLine(Partial.substr(Start, Nl - Start));
      Start = Nl + 1;
    }
    Partial.erase(0, Start);
  }
};

/// `m4jstat watch [--once] [--interval-ms=N] STREAM.jsonl`: follow the
/// stream and re-render deltas as records arrive. --once renders the
/// records already present and exits (CI-friendly).
int watchMain(const char *Path, bool Once, unsigned IntervalMs,
              const Options &Opt) {
  std::FILE *F = std::fopen(Path, "rb");
  if (F == nullptr) {
    std::fprintf(stderr, "m4jstat: cannot read %s\n", Path);
    return 1;
  }
  std::unique_ptr<StreamRecord> Prev;
  LineTail Tail;
  uint64_t Records = 0, Malformed = 0;
  char Buf[1 << 16];
  for (;;) {
    size_t N;
    while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0) {
      Tail.feed(Buf, N, [&](std::string Line) {
        auto Rec = std::make_unique<StreamRecord>();
        if (!parseStreamLine(Line, *Rec)) {
          ++Malformed;
          return;
        }
        ++Records;
        renderStreamRecord(Prev, std::move(Rec), Opt);
      });
    }
    if (Once)
      break;
    // At EOF: the producer may still be appending. clearerr so the next
    // fread retries instead of latching EOF.
    std::clearerr(F);
    std::this_thread::sleep_for(std::chrono::milliseconds(IntervalMs));
  }
  std::fclose(F);
  if (Once)
    std::printf("-- %llu records (%llu malformed) --\n",
                static_cast<unsigned long long>(Records),
                static_cast<unsigned long long>(Malformed));
  return Records > 0 ? 0 : 1;
}

/// `m4jstat diff --last STREAM.jsonl`: diff the two newest records.
int diffLastMain(const char *Path, const Options &Opt) {
  bool Ok = false;
  std::string Text = readFile(Path, Ok);
  if (!Ok) {
    std::fprintf(stderr, "m4jstat: cannot read %s\n", Path);
    return 1;
  }
  std::unique_ptr<StreamRecord> A, B;
  LineTail Tail;
  Tail.feed(Text.data(), Text.size(), [&](std::string Line) {
    auto Rec = std::make_unique<StreamRecord>();
    if (parseStreamLine(Line, *Rec)) {
      A = std::move(B);
      B = std::move(Rec);
    }
  });
  if (B == nullptr) {
    std::fprintf(stderr, "m4jstat: %s has no stream records\n", Path);
    return 1;
  }
  if (A == nullptr) {
    std::fprintf(stderr,
                 "m4jstat: %s has only one record; printing it\n", Path);
    printStreamHeader(*B, "(only record)");
    printOne(B->Doc, Opt);
    return 0;
  }
  printStreamHeader(*A, "(A)");
  printStreamHeader(*B, "(B)");
  printDiff(A->Doc, B->Doc, Opt);
  return 0;
}

void usage(const char *Argv0) {
  std::printf(
      "usage: %s [--all] [--prefix=NAME/] SNAPSHOT.json [SNAPSHOT_B.json]\n"
      "       %s watch [--once] [--interval-ms=N] STREAM.jsonl\n"
      "       %s diff [--last] STREAM.jsonl | diff A.json B.json\n"
      "  One file:  pretty-print a Session metrics snapshot or a bench\n"
      "             --json report (reads its embedded \"metrics\").\n"
      "  Two files: print per-counter and per-histogram deltas (B - A).\n"
      "  watch:     follow a server JSONL metrics stream (one snapshot per\n"
      "             line) and re-render deltas live; --once renders what is\n"
      "             present and exits; --interval-ms=N poll cadence (500).\n"
      "  diff --last: diff the two newest records of a JSONL stream.\n"
      "  --all          include zero-valued counters/gauges/histograms\n"
      "  --prefix=P     only metrics whose name starts with P\n",
      Argv0, Argv0, Argv0);
}

} // namespace

int main(int argc, char **argv) {
  Options Opt;
  bool Watch = false, Diff = false, Last = false, Once = false;
  unsigned IntervalMs = 500;
  int First = 1;
  if (argc > 1 && std::strcmp(argv[1], "watch") == 0) {
    Watch = true;
    First = 2;
  } else if (argc > 1 && std::strcmp(argv[1], "diff") == 0) {
    Diff = true;
    First = 2;
  }
  for (int I = First; I < argc; ++I) {
    std::string_view Arg = argv[I];
    if (Arg == "--all") {
      Opt.All = true;
    } else if (Arg.rfind("--prefix=", 0) == 0) {
      Opt.Prefix = Arg.substr(9);
    } else if (Arg == "--last" && Diff) {
      Last = true;
    } else if (Arg == "--once" && Watch) {
      Once = true;
    } else if (Arg.rfind("--interval-ms=", 0) == 0 && Watch) {
      IntervalMs = static_cast<unsigned>(
          std::strtoul(argv[I] + std::strlen("--interval-ms="), nullptr, 10));
      if (IntervalMs == 0)
        IntervalMs = 500;
    } else if (Arg == "--help" || Arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (Arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "m4jstat: unknown flag %s (try --help)\n", argv[I]);
      return 2;
    } else {
      Opt.Paths.push_back(argv[I]);
    }
  }

  if (Watch) {
    if (Opt.Paths.size() != 1) {
      usage(argv[0]);
      return 2;
    }
    return watchMain(Opt.Paths[0], Once, IntervalMs, Opt);
  }
  if (Diff && Last) {
    if (Opt.Paths.size() != 1) {
      usage(argv[0]);
      return 2;
    }
    return diffLastMain(Opt.Paths[0], Opt);
  }
  // `diff A.json B.json` is the same as the two-file default mode.
  if (Opt.Paths.empty() || Opt.Paths.size() > 2 ||
      (Diff && Opt.Paths.size() != 2)) {
    usage(argv[0]);
    return 2;
  }

  Document A;
  if (!loadDocument(Opt.Paths[0], A))
    return 1;
  if (Opt.Paths.size() == 1) {
    printOne(A, Opt);
    return 0;
  }
  Document B;
  if (!loadDocument(Opt.Paths[1], B))
    return 1;
  printDiff(A, B, Opt);
  return 0;
}

//===- bench_table1_interfaces.cpp - Per-interface overhead ---------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's Table 1 lists which JNI interfaces hand raw heap pointers to
// native code; all of them gained tag allocation/release. This bench
// measures each Get+Release pair's round-trip cost under every scheme —
// an extension of Figure 5 broken down by interface (including the string
// interfaces, which Figure 5 does not cover).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/mte/Access.h"
#include "mte4jni/rt/Trampoline.h"

#include <cstdio>
#include <functional>

using namespace mte4jni;
using namespace mte4jni::bench;

namespace {

struct Fixture {
  api::Session &S;
  api::ScopedAttach &Main;
  jni::jarray IntArray;
  jni::jstring Str;
};

using InterfaceOp = std::function<uint64_t(Fixture &)>;

struct InterfaceCase {
  const char *Name;
  InterfaceOp Op;
};

std::vector<InterfaceCase> buildCases() {
  std::vector<InterfaceCase> Cases;
  Cases.push_back(
      {"Get/ReleaseIntArrayElements", [](Fixture &F) -> uint64_t {
         jni::jboolean IsCopy;
         auto P = F.Main.env().GetIntArrayElements(F.IntArray, &IsCopy);
         uint64_t V = static_cast<uint32_t>(mte::load<jni::jint>(P));
         F.Main.env().ReleaseIntArrayElements(F.IntArray, P,
                                              jni::JNI_ABORT);
         return V;
       }});
  Cases.push_back(
      {"Get/ReleasePrimArrayCritical", [](Fixture &F) -> uint64_t {
         jni::jboolean IsCopy;
         auto P = F.Main.env().GetPrimitiveArrayCritical(F.IntArray,
                                                         &IsCopy);
         uint64_t V = static_cast<uint32_t>(
             mte::load<jni::jint>(P.cast<jni::jint>()));
         F.Main.env().ReleasePrimitiveArrayCritical(F.IntArray, P,
                                                    jni::JNI_ABORT);
         return V;
       }});
  Cases.push_back({"Get/ReleaseStringChars", [](Fixture &F) -> uint64_t {
                     jni::jboolean IsCopy;
                     auto P = F.Main.env().GetStringChars(F.Str, &IsCopy);
                     uint64_t V = mte::load(P);
                     F.Main.env().ReleaseStringChars(F.Str, P);
                     return V;
                   }});
  Cases.push_back(
      {"Get/ReleaseStringUTFChars", [](Fixture &F) -> uint64_t {
         jni::jboolean IsCopy;
         auto P = F.Main.env().GetStringUTFChars(F.Str, &IsCopy);
         uint64_t V = static_cast<uint8_t>(mte::load(P));
         F.Main.env().ReleaseStringUTFChars(F.Str, P);
         return V;
       }});
  Cases.push_back(
      {"Get/ReleaseStringCritical", [](Fixture &F) -> uint64_t {
         jni::jboolean IsCopy;
         auto P = F.Main.env().GetStringCritical(F.Str, &IsCopy);
         uint64_t V = mte::load(P);
         F.Main.env().ReleaseStringCritical(F.Str, P);
         return V;
       }});
  Cases.push_back({"Get/SetIntArrayRegion", [](Fixture &F) -> uint64_t {
                     jni::jint Buf[64];
                     F.Main.env().GetIntArrayRegion(F.IntArray, 0, 64,
                                                    Buf);
                     F.Main.env().SetIntArrayRegion(F.IntArray, 0, 64,
                                                    Buf);
                     return static_cast<uint32_t>(Buf[0]);
                   }});
  return Cases;
}

double timeCase(api::Scheme Scheme, const InterfaceCase &Case,
                uint64_t MinNanos, uint64_t Seed) {
  api::SessionConfig C;
  C.Protection = Scheme;
  C.HeapBytes = 8 << 20;
  C.Seed = Seed;
  api::Session S(C);
  api::ScopedAttach Main(S, "bench");
  rt::HandleScope Scope(S.runtime());

  Fixture F{S, Main, Main.env().NewIntArray(Scope, 1024),
            Main.env().NewStringUTF(
                Scope, "a 44-byte-long benchmark string payload!!")};

  return measureNanosPerRep(
      [&] {
        return rt::callNative(Main.thread(), rt::NativeKind::Regular,
                              "iface_bench", [&] { return Case.Op(F); });
      },
      MinNanos);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = BenchOptions::parse(Argc, Argv);
  printBanner("bench_table1_interfaces — per-interface Get/Release cost",
              "Table 1 (the modified interfaces), per-interface extension "
              "of Figure 5; 1024-int array / 44-char string",
              Options);

  const uint64_t MinNanos = Options.Quick ? 2'000'000
                            : Options.PaperScale ? 100'000'000
                                                 : 15'000'000;

  TablePrinter Table({"interface", "none(ns)", "guarded", "mte+sync",
                      "mte+async"},
                     {31, 11, 10, 11, 11});
  Table.printHeader();
  for (const InterfaceCase &Case : buildCases()) {
    double None =
        timeCase(api::Scheme::NoProtection, Case, MinNanos, Options.Seed);
    double Guarded =
        timeCase(api::Scheme::GuardedCopy, Case, MinNanos, Options.Seed);
    double Sync =
        timeCase(api::Scheme::Mte4JniSync, Case, MinNanos, Options.Seed);
    double Async =
        timeCase(api::Scheme::Mte4JniAsync, Case, MinNanos, Options.Seed);
    Table.printRow({Case.Name, support::format("%.0f", None),
                    ratioCell(Guarded / None), ratioCell(Sync / None),
                    ratioCell(Async / None)});
  }
  Table.printSeparator();
  std::printf("\nexpected shape: guarded copy pays O(n) copy+checksum on "
              "every pointer-returning\ninterface; MTE4JNI pays O(n/16) "
              "tagging; the region interfaces return no raw\npointer and "
              "cost the same under every scheme (no policy involvement).\n");
  return 0;
}

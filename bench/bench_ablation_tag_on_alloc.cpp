//===- bench_ablation_tag_on_alloc.cpp - Tag placement in the object lifecycle --------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Quantifies the design choice the paper makes implicitly: WHERE in the
// object lifecycle to pay for tagging.
//
//   MTE4JNI       — tag at the JNI boundary (Algorithm 1/2): allocation
//                   is free; each Get pays IRG + STG range + table/lock;
//                   Release pays tag clearing. Use-after-release caught.
//   tag-on-alloc  — tag at allocation (HWASan-style): every allocation
//                   pays tagging (even objects never passed to native);
//                   each Get is a single LDG; Release free; stale JNI
//                   pointers NOT caught.
//
// Two workload shapes separate them:
//   (a) JNI-hot: one array, many Get/Release cycles -> tag-on-alloc wins;
//   (b) alloc-hot: many short-lived arrays never passed to JNI ->
//       MTE4JNI wins (it never tags them at all).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/mte/Access.h"
#include "mte4jni/rt/Trampoline.h"

#include <cstdio>

using namespace mte4jni;
using namespace mte4jni::bench;

namespace {

/// (a) Many Get/Release cycles on one array.
double jniHot(api::Scheme Scheme, unsigned Cycles, uint64_t MinNanos) {
  api::SessionConfig C;
  C.Protection = Scheme;
  C.HeapBytes = 16ull << 20;
  api::Session S(C);
  api::ScopedAttach Main(S, "bench");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 1024);

  return measureNanosPerRep(
      [&]() -> uint64_t {
        return rt::callNative(
            Main.thread(), rt::NativeKind::Regular, "jni_hot", [&] {
              uint64_t Sum = 0;
              for (unsigned I = 0; I < Cycles; ++I) {
                jni::jboolean IsCopy;
                auto P = Main.env().GetIntArrayElements(A, &IsCopy);
                Sum += static_cast<uint32_t>(mte::load<jni::jint>(P));
                Main.env().ReleaseIntArrayElements(A, P, jni::JNI_ABORT);
              }
              return Sum;
            });
      },
      MinNanos);
}

/// (b) Many short-lived allocations that never cross JNI.
double allocHot(api::Scheme Scheme, unsigned Allocs, uint64_t MinNanos) {
  api::SessionConfig C;
  C.Protection = Scheme;
  C.HeapBytes = 64ull << 20;
  api::Session S(C);
  api::ScopedAttach Main(S, "bench");

  return measureNanosPerRep(
      [&]() -> uint64_t {
        uint64_t Sum = 0;
        {
          rt::HandleScope Scope(S.runtime());
          for (unsigned I = 0; I < Allocs; ++I) {
            jni::jarray A = Main.env().NewIntArray(Scope, 256);
            Sum += reinterpret_cast<uint64_t>(A) & 0xFF;
          }
        } // scope dies: everything just allocated becomes garbage
        S.runtime().gc().collect();
        return Sum;
      },
      MinNanos);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = BenchOptions::parse(Argc, Argv);
  printBanner("bench_ablation_tag_on_alloc — where to pay for tagging",
              "design ablation (not in the paper): Algorithm 1/2 vs "
              "HWASan-style tag-on-allocation",
              Options);

  const uint64_t MinNanos = Options.Quick ? 3'000'000
                            : Options.PaperScale ? 100'000'000
                                                 : 20'000'000;
  const unsigned Cycles = 64, Allocs = 256;

  std::printf("(a) JNI-hot: %u Get/Release cycles on one 1024-int array "
              "per rep\n",
              Cycles);
  double N1 = jniHot(api::Scheme::NoProtection, Cycles, MinNanos);
  double M1 = jniHot(api::Scheme::Mte4JniSync, Cycles, MinNanos);
  double T1 = jniHot(api::Scheme::TagOnAllocSync, Cycles, MinNanos);
  std::printf("  no protection  %10.0f ns\n", N1);
  std::printf("  mte4jni+sync   %10.0f ns  (%s)\n", M1,
              ratioCell(M1 / N1).c_str());
  std::printf("  tag-on-alloc   %10.0f ns  (%s)   <- one LDG per Get\n\n",
              T1, ratioCell(T1 / N1).c_str());

  std::printf("(b) alloc-hot: %u short-lived 256-int arrays per rep, "
              "never passed to JNI\n",
              Allocs);
  double N2 = allocHot(api::Scheme::NoProtection, Allocs, MinNanos);
  double M2 = allocHot(api::Scheme::Mte4JniSync, Allocs, MinNanos);
  double T2 = allocHot(api::Scheme::TagOnAllocSync, Allocs, MinNanos);
  std::printf("  no protection  %10.0f ns\n", N2);
  std::printf("  mte4jni+sync   %10.0f ns  (%s)   <- never tags them\n",
              M2, ratioCell(M2 / N2).c_str());
  std::printf("  tag-on-alloc   %10.0f ns  (%s)\n\n", T2,
              ratioCell(T2 / N2).c_str());

  std::printf("shape checks: tag-on-alloc cheaper when JNI-hot: %s; "
              "MTE4JNI cheaper when alloc-hot: %s\n",
              T1 < M1 ? "yes" : "NO", M2 < T2 ? "yes" : "NO");
  std::printf("(and tag-on-alloc cannot catch use-after-release — see "
              "tests/alloc_tag_policy_test.cpp)\n");
  return 0;
}

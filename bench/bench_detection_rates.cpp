//===- bench_detection_rates.cpp - Monte-Carlo detection rates ------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// A quantitative extension of §5.2's qualitative matrix: random buggy
// native accesses (read/write, random byte offsets around the array) are
// executed under each scheme, and the measured detection rate is printed
// per bug class. Expected shape:
//
//   no protection  — 0% everywhere.
//   guarded copy   — near-100% for writes within the red zone; 0% for
//                    reads and for writes past the red zone.
//   MTE4JNI        — 100% for anything outside the array's granule
//                    extent; 0% inside the final granule's slack (the
//                    16-byte-granularity blind spot); use-after-release
//                    100% (tags cleared by Algorithm 2).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/mte/Access.h"
#include "mte4jni/rt/Trampoline.h"
#include "mte4jni/support/Rng.h"

#include <cstdio>

using namespace mte4jni;
using namespace mte4jni::bench;

namespace {

enum class BugClass {
  NearOverflowWrite, ///< write 1..N bytes past the end (red-zone range)
  NearOverflowRead,  ///< read 1..N bytes past the end
  FarWrite,          ///< write far past any red zone
  Underflow,         ///< access before the array
  SubGranuleSlack,   ///< access in the last granule's unused slack
  UseAfterRelease,   ///< access through the stale pointer after Release
};

const char *bugClassName(BugClass B) {
  switch (B) {
  case BugClass::NearOverflowWrite:
    return "near OOB write";
  case BugClass::NearOverflowRead:
    return "near OOB read";
  case BugClass::FarWrite:
    return "far OOB write";
  case BugClass::Underflow:
    return "underflow";
  case BugClass::SubGranuleSlack:
    return "sub-granule slack";
  case BugClass::UseAfterRelease:
    return "use-after-release";
  }
  return "?";
}

/// Runs one randomized buggy access; returns true when any fault was
/// recorded.
bool runTrial(api::Scheme Scheme, BugClass Bug, uint64_t Seed) {
  api::SessionConfig C;
  C.Protection = Scheme;
  C.HeapBytes = 8 << 20;
  C.Seed = Seed;
  C.GuardedRedZoneBytes = 512;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  support::Xoshiro256 Rng(Seed * 77 + unsigned(Bug));

  // Pad allocations so under/overflows stay inside the PROT_MTE heap.
  (void)Main.env().NewIntArray(Scope, 256);
  // 18 ints = 72 payload bytes, granule extent 80.
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);
  (void)Main.env().NewIntArray(Scope, 256);
  const int64_t Payload = static_cast<int64_t>(Array->dataBytes());
  const int64_t Extent =
      static_cast<int64_t>(support::alignTo(uint64_t(Payload),
                                            mte::kGranuleSize));

  int64_t Offset = 0;
  bool IsWrite = true;
  switch (Bug) {
  case BugClass::NearOverflowWrite:
    Offset = Extent + Rng.nextInRange(0, 255);
    break;
  case BugClass::NearOverflowRead:
    Offset = Extent + Rng.nextInRange(0, 255);
    IsWrite = false;
    break;
  case BugClass::FarWrite:
    Offset = Extent + 2048 + Rng.nextInRange(0, 8191);
    break;
  case BugClass::Underflow:
    Offset = -Rng.nextInRange(1, 128);
    break;
  case BugClass::SubGranuleSlack:
    Offset = Rng.nextInRange(Payload, Extent - 1);
    IsWrite = Rng.nextBool();
    break;
  case BugClass::UseAfterRelease:
    Offset = Rng.nextInRange(0, Payload - 1);
    break;
  }

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "buggy", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env()
                 .GetPrimitiveArrayCritical(Array, &IsCopy)
                 .cast<jni::jbyte>();
    if (Bug == BugClass::UseAfterRelease) {
      Main.env().ReleasePrimitiveArrayCritical(Array, P.cast<void>(), 0);
      // Under guarded copy the release free()s the C-heap copy, so a
      // physical stale write would corrupt the host allocator (a genuine
      // use-after-free the scheme cannot detect). Only perform the access
      // where the buffer is the still-mapped heap payload; the
      // copy-based scheme scores a miss either way.
      if (S.policy().exposesDirectPointers())
        mte::store<jni::jbyte>(P + Offset, 0x41); // stale tagged pointer
      return 0;
    }
    // Under the copy-based scheme the buffer is a malloc block with
    // 512-byte red zones: an access beyond them is a genuine host-heap
    // corruption (exactly the §2.3 "skips the red zones" blind spot), so
    // the simulation must not physically perform it — it is a guaranteed
    // miss for that scheme either way.
    bool Physical =
        S.policy().exposesDirectPointers() ||
        (Offset >= -int64_t(C.GuardedRedZoneBytes) &&
         Offset < Payload + int64_t(C.GuardedRedZoneBytes));
    if (Physical) {
      if (IsWrite) {
        mte::store<jni::jbyte>(P + Offset, 0x41);
      } else {
        volatile jni::jbyte V = mte::load<jni::jbyte>(P + Offset);
        (void)V;
      }
    }
    Main.env().ReleasePrimitiveArrayCritical(Array, P.cast<void>(), 0);
    return 0;
  });
  mte::simulatedSyscall("getuid"); // flush async latches

  // Only count real detections, not JNI bookkeeping errors.
  return S.faults().countOf(mte::FaultKind::TagMismatchSync) +
             S.faults().countOf(mte::FaultKind::TagMismatchAsync) +
             S.faults().countOf(mte::FaultKind::GuardedCopyCorruption) >
         0;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = BenchOptions::parse(Argc, Argv);
  printBanner("bench_detection_rates — Monte-Carlo detection rates",
              "quantitative extension of §5.2 (random buggy native "
              "accesses; guarded copy uses 512 B red zones here)",
              Options);

  unsigned Trials = Options.Iterations ? Options.Iterations
                    : Options.Quick    ? 20u
                    : Options.PaperScale ? 500u
                                         : 100u;
  std::printf("parameters: %u random trials per cell; array of 18 ints "
              "(72 B payload, 80 B granule extent)\n\n",
              Trials);

  const api::Scheme Schemes[] = {
      api::Scheme::NoProtection, api::Scheme::GuardedCopy,
      api::Scheme::Mte4JniSync, api::Scheme::Mte4JniAsync};
  const BugClass Bugs[] = {
      BugClass::NearOverflowWrite, BugClass::NearOverflowRead,
      BugClass::FarWrite,          BugClass::Underflow,
      BugClass::SubGranuleSlack,   BugClass::UseAfterRelease};

  TablePrinter Table({"bug class", "none", "guarded", "mte+sync",
                      "mte+async"},
                     {20, 9, 10, 11, 11});
  Table.printHeader();
  for (BugClass Bug : Bugs) {
    std::vector<std::string> Row{bugClassName(Bug)};
    for (api::Scheme Scheme : Schemes) {
      unsigned Detected = 0;
      for (unsigned T = 0; T < Trials; ++T)
        Detected += runTrial(Scheme, Bug, Options.Seed + T) ? 1 : 0;
      Row.push_back(percentCell(100.0 * Detected / Trials));
    }
    Table.printRow(Row);
  }
  Table.printSeparator();
  std::printf("\nexpected: none 0%% everywhere; guarded detects only "
              "writes within its red zone;\nMTE4JNI detects everything "
              "except the sub-granule slack (MTE's 16-byte granularity\n"
              "limit) — including reads, far writes, underflows and "
              "use-after-release.\nnote the complementary blind spots: "
              "sub-granule WRITES are the one class guarded copy\ncatches "
              "(byte-granular red zone) and MTE4JNI cannot (granule-"
              "granular tags).\n");
  return 0;
}

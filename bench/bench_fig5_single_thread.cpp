//===- bench_fig5_single_thread.cpp - Figure 5 reproduction ---------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 5 of the paper: single-thread JNI interface overhead. A native
// method obtains pointers to two Java int arrays via
// GetPrimitiveArrayCritical, copies one into the other element by element,
// and releases both. Array lengths sweep 2^1 .. 2^12 ints. Each scheme's
// time is normalised to the no-protection scheme.
//
// Paper result (shape to reproduce): guarded copy is worst at every size
// (26.58x mean), MTE4JNI sync/async cost 2.36x/2.24x, and every scheme's
// relative overhead shrinks as arrays grow.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/mte/Access.h"
#include "mte4jni/rt/Trampoline.h"

#include <cstdio>

using namespace mte4jni;
using namespace mte4jni::bench;

namespace {

/// One benchmark repetition: the paper's native copy method. The copy is
/// a bulk memcpy through the JNI pointers (what real native code does;
/// the hardware checks it at zero marginal cost and the simulator at one
/// check per granule). With PerElement the loop reads/writes through the
/// pointer one int at a time — an ablation exposing the simulator's
/// per-access check cost.
uint64_t copyOnce(api::ScopedAttach &Main, jni::jarray Src, jni::jarray Dst,
                  unsigned Length, bool PerElement) {
  return rt::callNative(
      Main.thread(), rt::NativeKind::Regular, "native_array_copy", [&] {
        jni::jboolean IsCopyS, IsCopyD;
        auto S = Main.env()
                     .GetPrimitiveArrayCritical(Src, &IsCopyS)
                     .cast<jni::jint>();
        auto D = Main.env()
                     .GetPrimitiveArrayCritical(Dst, &IsCopyD)
                     .cast<jni::jint>();
        uint64_t Sum = 0;
        if (PerElement) {
          for (unsigned I = 0; I < Length; ++I) {
            jni::jint V = mte::load<jni::jint>(S + I);
            mte::store<jni::jint>(D + I, V);
            Sum += static_cast<uint32_t>(V);
          }
        } else {
          mte::copyBytes(D.cast<void>(), S.cast<const void>(),
                         uint64_t(Length) * sizeof(jni::jint));
          Sum = static_cast<uint32_t>(mte::load<jni::jint>(D));
        }
        Main.env().ReleasePrimitiveArrayCritical(Dst, D.cast<void>(), 0);
        Main.env().ReleasePrimitiveArrayCritical(Src, S.cast<void>(),
                                                 jni::JNI_ABORT);
        return Sum;
      });
}

double timeScheme(api::Scheme Scheme, unsigned Length, uint64_t MinNanos,
                  uint64_t Seed, bool PerElement) {
  api::SessionConfig C;
  C.Protection = Scheme;
  C.HeapBytes = 16ull << 20;
  C.Seed = Seed;
  api::Session S(C);
  api::ScopedAttach Main(S, "bench");
  rt::HandleScope Scope(S.runtime());

  jni::jarray Src = Main.env().NewIntArray(Scope,
                                           static_cast<jni::jsize>(Length));
  jni::jarray Dst = Main.env().NewIntArray(Scope,
                                           static_cast<jni::jsize>(Length));
  auto *Data = rt::arrayData<jni::jint>(Src);
  for (unsigned I = 0; I < Length; ++I)
    Data[I] = static_cast<jni::jint>(I * 2654435761u);

  return measureNanosPerRep(
      [&] { return copyOnce(Main, Src, Dst, Length, PerElement); },
      MinNanos);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = BenchOptions::parse(Argc, Argv);
  printBanner("bench_fig5_single_thread — JNI overhead, single thread",
              "Figure 5 (execution time of a native array copy, normalised "
              "to no protection)",
              Options);

  const unsigned MaxPow = 12; // 2^1 .. 2^12 ints, as in the paper
  const uint64_t MinNanos = Options.Quick ? 2'000'000
                            : Options.PaperScale ? 100'000'000
                                                 : 20'000'000;
  const bool PerElement = Options.hasFlag("--per-element");
  if (PerElement)
    std::printf("ablation: per-element copy loop (exposes the simulator's "
                "per-access check cost)\n");

  TablePrinter Table({"len(ints)", "none(ns)", "guarded", "mte+sync",
                      "mte+async"},
                     {11, 12, 11, 11, 11});
  Table.printHeader();

  double SumGuarded = 0, SumSync = 0, SumAsync = 0;
  unsigned Rows = 0;
  for (unsigned Pow = 1; Pow <= MaxPow; ++Pow) {
    unsigned Length = 1u << Pow;
    double None =
        timeScheme(api::Scheme::NoProtection, Length, MinNanos, Options.Seed, PerElement);
    double Guarded =
        timeScheme(api::Scheme::GuardedCopy, Length, MinNanos, Options.Seed, PerElement);
    double Sync =
        timeScheme(api::Scheme::Mte4JniSync, Length, MinNanos, Options.Seed, PerElement);
    double Async =
        timeScheme(api::Scheme::Mte4JniAsync, Length, MinNanos, Options.Seed, PerElement);

    double RG = Guarded / None, RS = Sync / None, RA = Async / None;
    SumGuarded += RG;
    SumSync += RS;
    SumAsync += RA;
    ++Rows;

    Table.printRow({support::format("2^%-2u %5u", Pow, Length),
                    support::format("%.0f", None), ratioCell(RG),
                    ratioCell(RS), ratioCell(RA)});
  }
  Table.printSeparator();

  double MeanG = SumGuarded / Rows;
  double MeanS = SumSync / Rows;
  double MeanA = SumAsync / Rows;
  Table.printRow({"mean", "", ratioCell(MeanG), ratioCell(MeanS),
                  ratioCell(MeanA)});

  std::printf("\npaper means: guarded 26.58x, mte+sync 2.36x, mte+async "
              "2.24x\n");
  std::printf("headline (paper: ~11x single-thread reduction vs guarded "
              "copy): sync %.1fx, async %.1fx\n",
              MeanG / MeanS, MeanG / MeanA);
  std::printf("shape checks: guarded worst at every size: %s; async <= "
              "sync: %s\n",
              MeanG > MeanS && MeanG > MeanA ? "yes" : "NO",
              MeanA <= MeanS * 1.05 ? "yes" : "NO");
  return 0;
}

//===- bench_alloc_throughput.cpp - Contended allocation --------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Contended allocation throughput on the raw JavaHeap: N threads each run
// a steady-state churn loop (ring of 512 slots, mixed payload sizes,
// alloc-newest / free-oldest) over a standing population of 200k live
// objects — the shape of a real app heap, where most objects survive and
// a hot minority churns. Both allocation pipelines:
//
//   "tlab"   — per-thread TLAB bumps + sharded free lists + O(1) liveness
//              bitmap (the default): per-op cost independent of the live
//              population.
//   "global" — every alloc/free behind one mutex around a std::set
//              liveness index and an ordered free-list map (the seed
//              allocator's behaviour, AllocPipeline::GlobalLock): every
//              op pays O(log live) cache-cold tree walks.
//
// Rows: alloc_churn/t{T}/{tlab,global} in Mops/s, plus speedup/t{T}
// ratio rows (tlab over global). Acceptance targets: >= 4x at 8 threads,
// and the single-thread tlab path no more than 5% slower than global.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/rt/Heap.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace mte4jni;
using namespace mte4jni::bench;

namespace {

// 512 churned slots per thread on top of a standing population that stays
// live for the whole measurement. The population sets the depth (and cache
// footprint) of the baseline's liveness tree; the ring is the hot set.
constexpr unsigned kRingSlots = 512;
constexpr unsigned kStandingObjects = 200000;
/// Mixed int-array lengths: payloads of 32..480 bytes, cycling so free
/// lists see several size classes.
constexpr uint32_t kLengths[] = {8, 24, 56, 120};

/// One thread's churn loop: fill the ring, then alloc-newest/free-oldest
/// until Iters allocations have been made. Every slot is freed before the
/// thread exits, so the heap returns to empty.
void churn(rt::JavaHeap &Heap, unsigned Iters, unsigned ThreadIndex) {
  rt::ObjectHeader *Ring[kRingSlots] = {};
  unsigned Head = 0;
  for (unsigned I = 0; I < Iters; ++I) {
    if (Ring[Head])
      Heap.free(Ring[Head]);
    uint32_t Len = kLengths[(I + ThreadIndex) % 4];
    Ring[Head] = Heap.allocPrimArray(rt::PrimType::Int, Len);
    if (!Ring[Head]) {
      std::fprintf(stderr, "heap exhausted at iter %u\n", I);
      std::abort();
    }
    Head = (Head + 1) % kRingSlots;
  }
  for (auto *&Slot : Ring)
    if (Slot)
      Heap.free(Slot);
}

/// Wall-clock Mops/s (allocations per microsecond) for Threads workers.
double runPipeline(rt::AllocPipeline Pipeline, unsigned Threads,
                   unsigned Iters) {
  rt::HeapConfig C;
  C.CapacityBytes = 256ull << 20;
  C.Pipeline = Pipeline;
  rt::JavaHeap Heap(C);

  // The standing live population (stays allocated until the clock stops).
  std::vector<rt::ObjectHeader *> Standing;
  Standing.reserve(kStandingObjects);
  for (unsigned I = 0; I < kStandingObjects; ++I)
    Standing.push_back(Heap.allocPrimArray(rt::PrimType::Int, 4));

  // Warmup outside the clock: reach free-list steady state so the row
  // measures churn, not first-touch frontier bumps.
  {
    std::vector<std::thread> Warm;
    for (unsigned T = 0; T < Threads; ++T)
      Warm.emplace_back([&, T] { churn(Heap, kRingSlots * 4, T); });
    for (auto &W : Warm)
      W.join();
  }

  support::Stopwatch Timer;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T)
    Workers.emplace_back([&, T] { churn(Heap, Iters, T); });
  for (auto &W : Workers)
    W.join();
  double Seconds = Timer.elapsedSeconds();

  for (rt::ObjectHeader *Obj : Standing)
    Heap.free(Obj);
  rt::HeapStats Stats = Heap.stats();
  if (Stats.ObjectsLive != 0) {
    std::fprintf(stderr, "stats leak: %llu live after churn\n",
                 static_cast<unsigned long long>(Stats.ObjectsLive));
    std::abort();
  }
  return static_cast<double>(Threads) * Iters / 1e6 / Seconds;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = BenchOptions::parse(Argc, Argv);
  printBanner("bench_alloc_throughput — contended allocation churn",
              "Allocator scalability: per-thread TLABs + sharded free "
              "lists vs the global-lock baseline",
              Options);

  std::vector<unsigned> ThreadCounts;
  if (Options.Threads)
    ThreadCounts = {1, Options.Threads};
  else if (Options.PaperScale)
    ThreadCounts = {1, 2, 4, 8, 16};
  else if (Options.Quick)
    ThreadCounts = {1, 4};
  else
    ThreadCounts = {1, 8};
  unsigned Iters = Options.Iterations
                       ? Options.Iterations
                       : (Options.PaperScale ? 400000u
                          : Options.Quick    ? 30000u
                                             : 150000u);
  std::printf("parameters: %u iterations/thread, ring of %u slots, "
              "payloads 32..480B, %u standing live\n\n",
              Iters, kRingSlots, kStandingObjects);

  BenchReport Report("alloc_throughput");
  TablePrinter Table({"threads", "tlab Mops/s", "global Mops/s", "speedup"},
                     {8, 12, 14, 9});
  Table.printHeader();
  for (unsigned T : ThreadCounts) {
    double Tlab = runPipeline(rt::AllocPipeline::Tlab, T, Iters);
    double Global = runPipeline(rt::AllocPipeline::GlobalLock, T, Iters);
    double Speedup = Tlab / Global;
    Table.printRow({support::format("%u", T), support::format("%.2f", Tlab),
                    support::format("%.2f", Global),
                    support::format("%.2fx", Speedup)});
    Report.addRow(support::format("alloc_churn/t%u/tlab", T), Tlab, "Mops/s",
                  Iters);
    Report.addRow(support::format("alloc_churn/t%u/global", T), Global,
                  "Mops/s", Iters);
    Report.addRow(support::format("speedup/t%u", T), Speedup, "x", Iters);
  }

  std::printf("\ntargets: speedup >= 4x at 8 threads; single-thread tlab "
              ">= 0.95x global\n");
  Report.writeIfRequested(Options);
  return 0;
}

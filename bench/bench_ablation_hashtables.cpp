//===- bench_ablation_hashtables.cpp - k and hardening ablations ----------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// DESIGN.md's A1/A2 ablations beyond the paper's figures:
//
//   * k sweep — the number of tag hash tables (the paper fixes k = 16
//     without exploring it): acquire/release throughput with T threads on
//     T distinct objects, for k in {1, 2, 4, 16, 64}. k = 1 approximates
//     the global-lock scheme's contention on the table lock; larger k
//     spreads it (§3.1.2).
//   * adjacent-tag-exclusion hardening — the extra cost of the
//     deterministic-adjacent-detection IRG draw (two LDGs + a wider
//     exclusion mask per first-holder acquire).
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/core/TagAllocator.h"
#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/TaggedArena.h"
#include "mte4jni/support/ThreadPool.h"

#include <cstdio>
#include <thread>

using namespace mte4jni;
using namespace mte4jni::bench;

namespace {

/// Acquire/release round trips per second with \p Threads threads on
/// distinct 1 KiB objects.
double throughput(const core::TagAllocatorOptions &Options,
                  unsigned Threads, unsigned Iters,
                  mte::TaggedArena &Arena) {
  core::TagAllocator Alloc(Options);
  std::vector<uint64_t> Begins;
  for (unsigned T = 0; T < Threads; ++T)
    Begins.push_back(reinterpret_cast<uint64_t>(Arena.allocate(1024)));

  support::Stopwatch Timer;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      uint64_t Begin = Begins[T];
      for (unsigned I = 0; I < Iters; ++I) {
        uint64_t Bits = Alloc.acquire(Begin, Begin + 1024);
        asm volatile("" : : "r"(Bits));
        Alloc.release(Begin, Begin + 1024);
      }
    });
  }
  for (auto &W : Workers)
    W.join();
  double Seconds = Timer.elapsedSeconds();

  for (uint64_t Begin : Begins)
    Arena.deallocate(reinterpret_cast<void *>(Begin));
  return double(Threads) * Iters / Seconds;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = BenchOptions::parse(Argc, Argv);
  printBanner("bench_ablation_hashtables — k sweep and hardening cost",
              "DESIGN.md ablations A1/A2 (beyond the paper's fixed k=16)",
              Options);

  unsigned Threads = Options.Threads
                         ? Options.Threads
                         : std::max<unsigned>(
                               4, static_cast<unsigned>(
                                      support::hardwareThreads()));
  unsigned Iters = Options.Iterations ? Options.Iterations
                   : Options.Quick    ? 5000u
                   : Options.PaperScale ? 200000u
                                        : 50000u;
  std::printf("parameters: %u threads x %u acquire/release pairs on "
              "distinct objects\n\n",
              Threads, Iters);

  mte::TaggedArena Arena(16 << 20);

  std::printf("== table kind (k=16; ops/sec, higher is better) ==\n");
  double KSixteen = 0;
  for (core::TagTableKind Kind :
       {core::TagTableKind::LockFree, core::TagTableKind::TwoTierMutex,
        core::TagTableKind::GlobalLock}) {
    core::TagAllocatorOptions AO;
    AO.Locks = Kind;
    double Ops = throughput(AO, Threads, Iters, Arena);
    if (Kind == core::TagTableKind::TwoTierMutex)
      KSixteen = Ops;
    std::printf("  %-10s %12.0f ops/s\n", core::tagTableKindName(Kind),
                Ops);
  }

  std::printf("\n== k sweep (two-tier locking; ops/sec, higher is better) "
              "==\n");
  for (unsigned K : {1u, 2u, 4u, 16u, 64u}) {
    core::TagAllocatorOptions AO;
    AO.Locks = core::TagTableKind::TwoTierMutex;
    AO.NumTables = K;
    double Ops = throughput(AO, Threads, Iters, Arena);
    std::printf("  k = %-3u   %12.0f ops/s%s\n", K, Ops,
                K == 16 ? "   (the paper's choice)" : "");
  }

  std::printf("\n== global lock, for reference ==\n");
  {
    core::TagAllocatorOptions AO;
    AO.Locks = core::LockScheme::GlobalLock;
    double Ops = throughput(AO, Threads, Iters, Arena);
    std::printf("  global    %12.0f ops/s   (%.2fx of two-tier k=16)\n",
                Ops, Ops / KSixteen);
  }

  std::printf("\n== adjacent-tag-exclusion hardening cost (k=16) ==\n");
  {
    core::TagAllocatorOptions AO;
    double Base = throughput(AO, Threads, Iters, Arena);
    AO.ExcludeAdjacentTags = true;
    double Hardened = throughput(AO, Threads, Iters, Arena);
    std::printf("  baseline  %12.0f ops/s\n", Base);
    std::printf("  hardened  %12.0f ops/s   (%.1f%% overhead for "
                "deterministic adjacent-overflow detection)\n",
                Hardened, (Base / Hardened - 1.0) * 100.0);
  }

  std::printf("\nnote: contention effects need >1 hardware thread; this "
              "host has %zu.\n",
              support::hardwareThreads());
  return 0;
}

//===- Harness.h - Shared benchmark harness -----------------------------*- C++ -*-===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Utilities shared by the per-figure benchmark binaries: CLI flags
/// (--paper for full paper-scale parameters, --quick for smoke runs),
/// the Table-2-style environment banner, fixed-width table printing and
/// repetition-controlled timing.
///
//===----------------------------------------------------------------------===//

#ifndef MTE4JNI_BENCH_HARNESS_H
#define MTE4JNI_BENCH_HARNESS_H

#include "mte4jni/api/Session.h"
#include "mte4jni/support/Statistics.h"
#include "mte4jni/support/StringUtils.h"
#include "mte4jni/support/Timer.h"

#include <functional>
#include <string>
#include <vector>

namespace mte4jni::bench {

struct BenchOptions {
  /// Full paper-scale parameters (64 threads x 10000 iterations etc.).
  bool PaperScale = false;
  /// Smoke-test sizes for CI.
  bool Quick = false;
  /// Overrides (0 = use the scale default).
  unsigned Threads = 0;
  unsigned Iterations = 0;
  uint64_t Seed = 1;
  /// When non-empty: write a machine-readable BENCH_<name>.json report
  /// (timing rows + embedded metrics snapshot) to this path.
  std::string JsonPath;
  /// When non-empty: write the flight-recorder timeline (Chrome
  /// trace-event JSON, chrome://tracing / Perfetto loadable) to this path
  /// at the end of the run.
  std::string TracePath;

  /// Bench-specific "--name" flags that the common parser did not consume.
  std::vector<std::string> ExtraFlags;

  bool hasFlag(std::string_view Name) const {
    for (const std::string &F : ExtraFlags)
      if (F == Name)
        return true;
    return false;
  }

  /// Value of a bench-specific "--name=value" flag (last wins), or
  /// \p Default when absent. \p Name includes the dashes ("--stream").
  std::string flagValue(std::string_view Name,
                        std::string_view Default = "") const;

  /// flagValue() parsed as an unsigned integer; \p Default when the flag
  /// is absent or not a number.
  uint64_t flagUnsigned(std::string_view Name, uint64_t Default) const;

  /// Parses argv; prints usage and exits on --help. Unknown --flags are
  /// collected into ExtraFlags for the individual bench to interpret.
  static BenchOptions parse(int Argc, char **Argv);
};

/// Prints the experiment banner: what the paper used (Table 2) vs. this
/// host, plus the benchmark's parameters.
void printBanner(const char *Title, const char *PaperArtifact,
                 const BenchOptions &Options);

/// Runs \p Fn repeatedly until at least \p MinNanos of wall time has been
/// observed (minimum \p MinReps repetitions) and returns nanoseconds per
/// repetition. A volatile sink defeats dead-code elimination.
double measureNanosPerRep(const std::function<uint64_t()> &Fn,
                          uint64_t MinNanos = 20'000'000, int MinReps = 3);

/// Simple fixed-width table printer.
class TablePrinter {
public:
  explicit TablePrinter(std::vector<std::string> Headers,
                        std::vector<int> Widths);
  void printHeader() const;
  void printRow(const std::vector<std::string> &Cells) const;
  void printSeparator() const;

private:
  std::vector<std::string> Headers;
  std::vector<int> Widths;
};

/// "12.34x" / "98.7%" cell helpers.
std::string ratioCell(double Ratio);
std::string percentCell(double Percent);

/// Collects named timing rows and writes the machine-readable
/// BENCH_<name>.json document: per-row timings plus an embedded snapshot
/// of the process-wide metrics registry, so every benchmark run leaves
/// the counters that explain its numbers next to the numbers themselves.
class BenchReport {
public:
  explicit BenchReport(std::string BenchName)
      : BenchName(std::move(BenchName)) {}

  /// One result row. \p Unit describes Value ("ns", "ns/op", "MB/s"...);
  /// \p Iterations is 0 when not applicable.
  void addRow(std::string Name, double Value, std::string Unit,
              uint64_t Iterations = 0);

  bool empty() const { return Rows.empty(); }

  /// The report document (rows + metrics snapshot + fault ring).
  std::string toJson() const;

  /// Writes toJson() to \p Path; returns false on I/O failure.
  bool write(const std::string &Path) const;

  /// Convenience: write when Options.JsonPath is set, logging the path.
  void writeIfRequested(const BenchOptions &Options) const;

private:
  struct Row {
    std::string Name;
    double Value = 0;
    std::string Unit;
    uint64_t Iterations = 0;
  };
  std::string BenchName;
  std::vector<Row> Rows;
};

} // namespace mte4jni::bench

#endif // MTE4JNI_BENCH_HARNESS_H

//===- bench_micro_tagops.cpp - Microbenchmarks / ablations ---------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// google-benchmark microbenchmarks of the primitive costs behind the
// figures — the A1/A2 ablations of DESIGN.md:
//
//   * simulated MTE instructions (IRG, STG range, LDG)
//   * checked vs unchecked load (the per-access cost MTE+Sync pays)
//   * Algorithm 1+2 acquire/release round trips: two-tier vs global lock,
//     single- and multi-threaded, same vs distinct objects
//   * guarded-copy acquire/release vs MTE4JNI acquire/release per size
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/core/TagAllocator.h"
#include "mte4jni/guarded/GuardedCopy.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/TaggedArena.h"
#include "mte4jni/support/TraceRing.h"

#include <benchmark/benchmark.h>

#include <cstring>
#include <string>

namespace {

using namespace mte4jni;

/// Shared PROT_MTE arena for all microbenchmarks.
mte::TaggedArena &arena() {
  static mte::TaggedArena Arena(64ull << 20);
  return Arena;
}

void BM_IrgTag(benchmark::State &State) {
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::None);
  for (auto _ : State)
    benchmark::DoNotOptimize(mte::irgTag());
}
BENCHMARK(BM_IrgTag);

void BM_SetTagRange(benchmark::State &State) {
  uint64_t Bytes = static_cast<uint64_t>(State.range(0));
  void *Buf = arena().allocate(Bytes);
  auto P = mte::TaggedPtr<void>::fromRaw(Buf, 5);
  for (auto _ : State)
    mte::setTagRange(P, Bytes);
  arena().deallocate(Buf);
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(Bytes));
  // Granules/s: the raw ns column is not comparable across the size sweep
  // (fixed per-call overhead dominates the small rows); throughput is.
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(Bytes / mte::kGranuleSize));
}
BENCHMARK(BM_SetTagRange)->Range(16, 16 << 10);

void BM_LdgTag(benchmark::State &State) {
  void *Buf = arena().allocate(64);
  mte::setTagRange(mte::TaggedPtr<void>::fromRaw(Buf, 7), 64);
  uint64_t Addr = reinterpret_cast<uint64_t>(Buf);
  for (auto _ : State)
    benchmark::DoNotOptimize(mte::ldgTag(Addr));
  arena().deallocate(Buf);
}
BENCHMARK(BM_LdgTag);

/// The per-access cost comparison behind Figure 5: unchecked fast path
/// (checks disabled) vs fully checked load.
void BM_LoadUnchecked(benchmark::State &State) {
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::None);
  auto *Buf = static_cast<int32_t *>(arena().allocate(4096));
  auto P = mte::TaggedPtr<int32_t>::fromRaw(Buf, 0);
  int I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(mte::load<int32_t>(P + (I & 1023)));
    ++I;
  }
  arena().deallocate(Buf);
}
BENCHMARK(BM_LoadUnchecked);

void BM_LoadCheckedSync(benchmark::State &State) {
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::Sync);
  mte::ThreadState::current().setTco(false);
  auto *Buf = static_cast<int32_t *>(arena().allocate(4096));
  auto P = mte::TaggedPtr<int32_t>::fromRaw(Buf, 9);
  mte::setTagRange(P.cast<void>(), 4096);
  int I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(mte::load<int32_t>(P + (I & 1023)));
    ++I;
  }
  mte::clearTagRange(reinterpret_cast<uint64_t>(Buf), 4096);
  arena().deallocate(Buf);
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::None);
}
BENCHMARK(BM_LoadCheckedSync);

/// Check-path ablation rows (DESIGN.md §7 cost model). BM_LoadCheckedSync
/// above is the cache-HIT scalar row: every access lands in the thread's
/// cached region, so the header-inlined fast path serves it without
/// touching the region list. This row forces a MISS on every access by
/// alternating between two PROT_MTE regions: each check pins a snapshot,
/// walks the list, and refills the cache the other region then invalidates.
void BM_LoadCheckedCacheMiss(benchmark::State &State) {
  static mte::TaggedArena SecondArena(1ull << 20);
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::Sync);
  mte::ThreadState::current().setTco(false);
  auto *BufA = static_cast<int32_t *>(arena().allocate(4096));
  auto *BufB = static_cast<int32_t *>(SecondArena.allocate(4096));
  auto PA = mte::TaggedPtr<int32_t>::fromRaw(BufA, 9);
  auto PB = mte::TaggedPtr<int32_t>::fromRaw(BufB, 9);
  mte::setTagRange(PA.cast<void>(), 4096);
  mte::setTagRange(PB.cast<void>(), 4096);
  int I = 0;
  for (auto _ : State) {
    benchmark::DoNotOptimize(mte::load<int32_t>((I & 1 ? PB : PA) + (I & 1023)));
    ++I;
  }
  mte::clearTagRange(reinterpret_cast<uint64_t>(BufA), 4096);
  mte::clearTagRange(reinterpret_cast<uint64_t>(BufB), 4096);
  arena().deallocate(BufA);
  SecondArena.deallocate(BufB);
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::None);
}
BENCHMARK(BM_LoadCheckedCacheMiss);

/// Range-scan row: one checkReadRange over N bytes resolves to a single
/// SWAR/SIMD sweep of N/16 shadow bytes in the cached region. This is the
/// path bulk copies (GetByteArrayRegion, memcpy shims) ride.
void BM_CheckRangeScan(benchmark::State &State) {
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::Sync);
  mte::ThreadState::current().setTco(false);
  uint64_t Bytes = static_cast<uint64_t>(State.range(0));
  void *Buf = arena().allocate(Bytes);
  auto P = mte::TaggedPtr<void>::fromRaw(Buf, 11);
  mte::setTagRange(P, Bytes);
  for (auto _ : State)
    mte::checkReadRange(P.cast<const void>(), Bytes);
  mte::clearTagRange(reinterpret_cast<uint64_t>(Buf), Bytes);
  arena().deallocate(Buf);
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::None);
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(Bytes));
}
BENCHMARK(BM_CheckRangeScan)->Range(256, 256 << 10);

/// Two-level fast path: a checked range over a uniformly-tagged buffer is
/// resolved almost entirely from line summaries — one byte compare per 64
/// granules, SIMD-swept. Arg is GRANULES (4096 = 64 KiB ... 262144 =
/// 4 MiB); compare against BM_TagScanDispatch at the same granule count
/// for the summary-vs-granule-sweep win (the >=10x acceptance gate).
void BM_CheckRangeUniform(benchmark::State &State) {
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::Sync);
  mte::ThreadState::current().setTco(false);
  uint64_t Granules = static_cast<uint64_t>(State.range(0));
  uint64_t Bytes = Granules * mte::kGranuleSize;
  void *Buf = arena().allocate(Bytes);
  auto P = mte::TaggedPtr<void>::fromRaw(Buf, 11);
  mte::setTagRange(P, Bytes); // publishes Uniform(11) line summaries
  for (auto _ : State)
    mte::checkReadRange(P.cast<const void>(), Bytes);
  mte::clearTagRange(reinterpret_cast<uint64_t>(Buf), Bytes);
  arena().deallocate(Buf);
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::None);
  State.SetItemsProcessed(int64_t(State.iterations()) * int64_t(Granules));
}
BENCHMARK(BM_CheckRangeUniform)->Arg(4096)->Arg(65536)->Arg(262144);

/// Two-level WORST case: every line is Mixed (a foreign tag planted in
/// its last granule), so each check drops to the packed-nibble kernels.
/// Each iteration checks the first 63 granules of one line — never the
/// whole line, so lines are never re-promoted and the fallback path stays
/// hot. Guards the <=10% regression budget vs the old byte-shadow scan.
void BM_CheckRangeMixed(benchmark::State &State) {
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::Sync);
  mte::ThreadState::current().setTco(false);
  constexpr uint64_t kLines = 1024; // 64 Ki granules, 1 MiB
  uint64_t Bytes = kLines * mte::kLineBytes;
  void *Buf = arena().allocate(Bytes);
  auto P = mte::TaggedPtr<void>::fromRaw(Buf, 11);
  mte::setTagRange(P, Bytes);
  for (uint64_t L = 0; L < kLines; ++L) // demote every line
    mte::stg(mte::TaggedPtr<void>::fromRaw(
        static_cast<uint8_t *>(Buf) + (L + 1) * mte::kLineBytes -
            mte::kGranuleSize,
        3));
  uint64_t I = 0;
  for (auto _ : State) {
    auto Line = P.plusBytes(
        static_cast<ptrdiff_t>((I++ & (kLines - 1)) * mte::kLineBytes));
    mte::checkReadRange(Line.cast<const void>(),
                        (mte::kLineGranules - 1) * mte::kGranuleSize);
  }
  mte::clearTagRange(reinterpret_cast<uint64_t>(Buf), Bytes);
  arena().deallocate(Buf);
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::None);
  State.SetItemsProcessed(int64_t(State.iterations()) *
                          int64_t(mte::kLineGranules - 1));
}
BENCHMARK(BM_CheckRangeMixed);

/// Raw shadow-scan kernels over N granule tags: the byte loop the seed
/// shipped vs the SWAR word scan vs the runtime-dispatched best kernel
/// (AVX2/SSE2 when available). The dispatch row over the scalar row is the
/// >=2x large-scan acceptance gate for this change.
template <uint64_t (*Scan)(const uint8_t *, uint64_t, mte::TagValue)>
void BM_TagScan(benchmark::State &State) {
  uint64_t Granules = static_cast<uint64_t>(State.range(0));
  std::vector<uint8_t> Tags(Granules, 5);
  for (auto _ : State)
    benchmark::DoNotOptimize(Scan(Tags.data(), Granules, 5));
  // One shadow byte checked per 16-byte granule covered.
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(Granules));
}
BENCHMARK_TEMPLATE(BM_TagScan, mte::detail::scanMismatchScalar)
    ->Name("BM_TagScanScalar")
    ->Range(64, 64 << 10);
BENCHMARK_TEMPLATE(BM_TagScan, mte::detail::scanMismatchSwar)
    ->Name("BM_TagScanSwar")
    ->Range(64, 64 << 10);
BENCHMARK_TEMPLATE(BM_TagScan, mte::detail::scanMismatch)
    ->Name("BM_TagScanDispatch")
    ->Range(64, 64 << 10);

/// Algorithm 1+2 round trip, single thread.
template <core::LockScheme Scheme>
void BM_AcquireRelease(benchmark::State &State) {
  core::TagAllocator Alloc(Scheme);
  uint64_t Bytes = static_cast<uint64_t>(State.range(0));
  void *Buf = arena().allocate(Bytes);
  uint64_t Begin = reinterpret_cast<uint64_t>(Buf);
  for (auto _ : State) {
    benchmark::DoNotOptimize(Alloc.acquire(Begin, Begin + Bytes));
    Alloc.release(Begin, Begin + Bytes);
  }
  arena().deallocate(Buf);
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(Bytes));
}
BENCHMARK_TEMPLATE(BM_AcquireRelease, core::TagTableKind::LockFree)
    ->Range(64, 16 << 10);
BENCHMARK_TEMPLATE(BM_AcquireRelease, core::LockScheme::TwoTier)
    ->Range(64, 16 << 10);
BENCHMARK_TEMPLATE(BM_AcquireRelease, core::LockScheme::GlobalLock)
    ->Range(64, 16 << 10);

/// The same lock-free round trip with deferred tag-clear disabled — the
/// paper's exact Algorithm 2 (last release clears granule tags under the
/// shard mutex). The delta against BM_AcquireRelease<LockFree> is what
/// the lingering-tag optimisation buys on a single-holder loop.
void BM_AcquireReleaseExact(benchmark::State &State) {
  core::TagAllocatorOptions Options;
  Options.Locks = core::TagTableKind::LockFree;
  Options.DeferredTagClear = false;
  core::TagAllocator Alloc(Options);
  uint64_t Bytes = static_cast<uint64_t>(State.range(0));
  void *Buf = arena().allocate(Bytes);
  uint64_t Begin = reinterpret_cast<uint64_t>(Buf);
  for (auto _ : State) {
    benchmark::DoNotOptimize(Alloc.acquire(Begin, Begin + Bytes));
    Alloc.release(Begin, Begin + Bytes);
  }
  arena().deallocate(Buf);
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(Bytes));
}
BENCHMARK(BM_AcquireReleaseExact)->Range(64, 16 << 10);

/// Observability-overhead acceptance rows: the identical lock-free round
/// trip with the flight recorder off vs the default ~1/64 sampling. The
/// delta between the two is the full instrumentation cost on the hottest
/// attributed path (slow-reason classification + SampledLatency + flight
/// ring); the budget is <3%.
template <unsigned Level>
void BM_AcquireReleaseObsLevel(benchmark::State &State) {
  unsigned Saved = support::obs::level();
  support::obs::setLevel(Level);
  core::TagAllocator Alloc(core::TagTableKind::LockFree);
  void *Buf = arena().allocate(4096);
  uint64_t Begin = reinterpret_cast<uint64_t>(Buf);
  for (auto _ : State) {
    benchmark::DoNotOptimize(Alloc.acquire(Begin, Begin + 4096));
    Alloc.release(Begin, Begin + 4096);
  }
  arena().deallocate(Buf);
  support::obs::setLevel(Saved);
}
BENCHMARK_TEMPLATE(BM_AcquireReleaseObsLevel, 0)
    ->Name("BM_AcquireReleaseObsOff");
BENCHMARK_TEMPLATE(BM_AcquireReleaseObsLevel, 1)
    ->Name("BM_AcquireReleaseObsSampled");

/// Lock-free round trip with the slot hint the JNI pin record caches: the
/// acquire hands back the resolved Slot*, the release consumes it — the
/// Get/Release pair probes the table once instead of twice.
void BM_AcquireReleaseCachedSlot(benchmark::State &State) {
  core::TagAllocator Alloc(core::TagTableKind::LockFree);
  uint64_t Bytes = static_cast<uint64_t>(State.range(0));
  void *Buf = arena().allocate(Bytes);
  uint64_t Begin = reinterpret_cast<uint64_t>(Buf);
  for (auto _ : State) {
    core::TagTable::Slot *Hint = nullptr;
    benchmark::DoNotOptimize(Alloc.acquire(Begin, Begin + Bytes, &Hint));
    Alloc.release(Begin, Begin + Bytes, Hint);
  }
  arena().deallocate(Buf);
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(Bytes));
}
BENCHMARK(BM_AcquireReleaseCachedSlot)->Range(64, 16 << 10);

/// Multi-threaded contention ablation: every benchmark thread hammers its
/// OWN object — the Figure 6 "different array" scenario where the global
/// lock hurts and the two-tier scheme spreads load over shards. Setup is
/// a magic static (google-benchmark has no pre-loop barrier, so thread 0
/// doing it would race the other threads' reads of Blocks).
template <core::LockScheme Scheme>
void BM_AcquireReleaseMT(benchmark::State &State) {
  struct Shared {
    core::TagAllocator Alloc{Scheme};
    void *Blocks[64];
    Shared() {
      for (int T = 0; T < 64; ++T)
        Blocks[T] = arena().allocate(4096);
    }
  };
  static Shared S; // intentionally leaked until process exit
  uint64_t Begin =
      reinterpret_cast<uint64_t>(S.Blocks[State.thread_index() & 63]);
  for (auto _ : State) {
    benchmark::DoNotOptimize(S.Alloc.acquire(Begin, Begin + 4096));
    S.Alloc.release(Begin, Begin + 4096);
  }
}
BENCHMARK_TEMPLATE(BM_AcquireReleaseMT, core::TagTableKind::LockFree)
    ->Threads(8)
    ->Threads(64)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_AcquireReleaseMT, core::LockScheme::TwoTier)
    ->Threads(8)
    ->Threads(64)
    ->UseRealTime();
BENCHMARK_TEMPLATE(BM_AcquireReleaseMT, core::LockScheme::GlobalLock)
    ->Threads(8)
    ->Threads(64)
    ->UseRealTime();

/// Guarded copy get/release vs MTE4JNI get/release — the core asymmetry
/// behind Figure 5 (copy + red zones vs tag-per-granule).
void BM_GuardedCopyRoundTrip(benchmark::State &State) {
  guarded::GuardedCopyPolicy Policy;
  uint64_t Bytes = static_cast<uint64_t>(State.range(0));
  std::vector<uint8_t> Payload(Bytes, 0x5A);
  jni::JniBufferInfo Info;
  Info.DataBegin = reinterpret_cast<uint64_t>(Payload.data());
  Info.Bytes = Bytes;
  Info.Interface = "bench";
  for (auto _ : State) {
    bool IsCopy;
    uint64_t Bits = Policy.acquire(Info, IsCopy);
    Policy.release(Info, Bits, 0);
  }
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(Bytes));
}
BENCHMARK(BM_GuardedCopyRoundTrip)->Range(64, 16 << 10);

void BM_Mte4JniRoundTrip(benchmark::State &State) {
  core::TagAllocator Alloc(core::LockScheme::TwoTier);
  uint64_t Bytes = static_cast<uint64_t>(State.range(0));
  void *Buf = arena().allocate(Bytes);
  uint64_t Begin = reinterpret_cast<uint64_t>(Buf);
  for (auto _ : State) {
    benchmark::DoNotOptimize(Alloc.acquire(Begin, Begin + Bytes));
    Alloc.release(Begin, Begin + Bytes);
  }
  arena().deallocate(Buf);
  State.SetBytesProcessed(int64_t(State.iterations()) * int64_t(Bytes));
}
BENCHMARK(BM_Mte4JniRoundTrip)->Range(64, 16 << 10);

/// Console output as usual, but every per-iteration run also lands in a
/// BenchReport so --json leaves a machine-readable BENCH_micro.json.
class ReportingConsoleReporter : public benchmark::ConsoleReporter {
public:
  explicit ReportingConsoleReporter(bench::BenchReport &Report)
      : Report(Report) {}

  void ReportRuns(const std::vector<Run> &Runs) override {
    for (const Run &R : Runs) {
      if (R.run_type == Run::RT_Aggregate || R.error_occurred)
        continue;
      Report.addRow(R.benchmark_name(), R.GetAdjustedRealTime(), "ns",
                    static_cast<uint64_t>(R.iterations));
      // Rows that SetItemsProcessed (granule counts) also get an explicit
      // throughput row: ns columns are not comparable across a size sweep
      // but granules/s are. Defensive lookup — the counter only exists
      // when the benchmark reported items.
      auto It = R.counters.find("items_per_second");
      if (It != R.counters.end() && It->second.value > 0)
        Report.addRow(R.benchmark_name() + "/granules_per_s",
                      It->second.value, "items/s",
                      static_cast<uint64_t>(R.iterations));
    }
    ConsoleReporter::ReportRuns(Runs);
  }

private:
  bench::BenchReport &Report;
};

} // namespace

int main(int argc, char **argv) {
  // Peel off --json before google-benchmark sees (and rejects) it.
  std::string JsonPath;
  int Kept = 1;
  for (int I = 1; I < argc; ++I) {
    std::string_view Arg = argv[I];
    if (Arg.rfind("--json=", 0) == 0) {
      JsonPath = Arg.substr(7);
    } else if (Arg == "--json" && I + 1 < argc) {
      JsonPath = argv[++I];
    } else {
      argv[Kept++] = argv[I];
    }
  }
  argc = Kept;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv))
    return 1;
  bench::BenchReport Report("micro_tagops");
  ReportingConsoleReporter Reporter(Report);
  benchmark::RunSpecifiedBenchmarks(&Reporter);
  if (!JsonPath.empty()) {
    if (Report.write(JsonPath))
      std::printf("wrote %s\n", JsonPath.c_str());
    else {
      std::fprintf(stderr, "failed to write %s\n", JsonPath.c_str());
      return 1;
    }
  }
  return 0;
}

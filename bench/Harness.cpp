//===- Harness.cpp - Shared benchmark harness -----------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/support/ThreadPool.h"
#include "mte4jni/support/TraceRing.h"

#include <cstdio>
#include <cstring>
#include <ctime>

/// Injected by the build (git rev-parse --short HEAD); "unknown" outside a
/// git checkout so report consumers can always rely on the field existing.
#ifndef M4J_GIT_SHA
#define M4J_GIT_SHA "unknown"
#endif

namespace mte4jni::bench {

BenchOptions BenchOptions::parse(int Argc, char **Argv) {
  BenchOptions Options;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg == "--paper") {
      Options.PaperScale = true;
    } else if (Arg == "--quick") {
      Options.Quick = true;
    } else if (support::startsWith(Arg, "--threads=")) {
      uint64_t V;
      if (support::parseUnsigned(Arg.substr(10), V))
        Options.Threads = static_cast<unsigned>(V);
    } else if (support::startsWith(Arg, "--iters=")) {
      uint64_t V;
      if (support::parseUnsigned(Arg.substr(8), V))
        Options.Iterations = static_cast<unsigned>(V);
    } else if (support::startsWith(Arg, "--seed=")) {
      uint64_t V;
      if (support::parseUnsigned(Arg.substr(7), V))
        Options.Seed = V;
    } else if (support::startsWith(Arg, "--json=")) {
      Options.JsonPath = std::string(Arg.substr(7));
    } else if (Arg == "--json") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--json requires a path (try --help)\n");
        std::exit(2);
      }
      Options.JsonPath = Argv[++I];
    } else if (support::startsWith(Arg, "--trace=")) {
      Options.TracePath = std::string(Arg.substr(8));
    } else if (Arg == "--trace") {
      if (I + 1 >= Argc) {
        std::fprintf(stderr, "--trace requires a path (try --help)\n");
        std::exit(2);
      }
      Options.TracePath = Argv[++I];
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf(
          "usage: %s [--paper] [--quick] [--threads=N] [--iters=N] "
          "[--seed=N] [--json <path>] [--trace <path>]\n"
          "  --paper        full paper-scale parameters (slow)\n"
          "  --quick        smoke-test sizes\n"
          "  --json <path>  write a machine-readable report (timings +\n"
          "                 metrics snapshot) to <path>\n"
          "  --trace <path> write the flight-recorder timeline as Chrome\n"
          "                 trace-event JSON (chrome://tracing, Perfetto)\n",
          Argv[0]);
      std::exit(0);
    } else if (support::startsWith(Arg, "--")) {
      Options.ExtraFlags.emplace_back(Arg);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", Argv[I]);
      std::exit(2);
    }
  }
  return Options;
}

std::string BenchOptions::flagValue(std::string_view Name,
                                    std::string_view Default) const {
  std::string Value(Default);
  std::string Prefix(Name);
  Prefix += '=';
  for (const std::string &F : ExtraFlags)
    if (support::startsWith(F, Prefix))
      Value = F.substr(Prefix.size());
  return Value;
}

uint64_t BenchOptions::flagUnsigned(std::string_view Name,
                                    uint64_t Default) const {
  std::string Text = flagValue(Name);
  uint64_t V;
  if (!Text.empty() && support::parseUnsigned(Text, V))
    return V;
  return Default;
}

void printBanner(const char *Title, const char *PaperArtifact,
                 const BenchOptions &Options) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", Title);
  std::printf("reproduces: %s\n", PaperArtifact);
  std::printf("paper setup (Table 2): OPPO Find N2 Flip, Dimensity 9000+, "
              "12GB, Android 14\n");
  std::printf("this host:             x86-64 simulator, %zu hardware "
              "threads, %s scale\n",
              support::hardwareThreads(),
              Options.PaperScale ? "PAPER" : (Options.Quick ? "QUICK"
                                                            : "default"));
  std::printf("note: absolute times are simulator times; compare SHAPES "
              "(ordering, factors)\n");
  std::printf("==============================================================="
              "=================\n");
}

double measureNanosPerRep(const std::function<uint64_t()> &Fn,
                          uint64_t MinNanos, int MinReps) {
  // Warm-up.
  uint64_t Sink = Fn();

  int Reps = 0;
  support::Stopwatch Timer;
  do {
    Sink += Fn();
    ++Reps;
  } while (Timer.elapsedNanos() < MinNanos || Reps < MinReps);
  // Keep the work observable to the optimiser.
  asm volatile("" : : "r"(Sink));
  return static_cast<double>(Timer.elapsedNanos()) / Reps;
}

TablePrinter::TablePrinter(std::vector<std::string> Headers,
                           std::vector<int> Widths)
    : Headers(std::move(Headers)), Widths(std::move(Widths)) {}

void TablePrinter::printHeader() const {
  for (size_t I = 0; I < Headers.size(); ++I)
    std::printf("%-*s", Widths[I], Headers[I].c_str());
  std::printf("\n");
  printSeparator();
}

void TablePrinter::printRow(const std::vector<std::string> &Cells) const {
  for (size_t I = 0; I < Cells.size() && I < Widths.size(); ++I)
    std::printf("%-*s", Widths[I], Cells[I].c_str());
  std::printf("\n");
}

void TablePrinter::printSeparator() const {
  int Total = 0;
  for (int W : Widths)
    Total += W;
  for (int I = 0; I < Total; ++I)
    std::putchar('-');
  std::putchar('\n');
}

std::string ratioCell(double Ratio) {
  return support::format("%.2fx", Ratio);
}

std::string percentCell(double Percent) {
  return support::format("%.1f%%", Percent);
}

void BenchReport::addRow(std::string Name, double Value, std::string Unit,
                         uint64_t Iterations) {
  Rows.push_back(
      Row{std::move(Name), Value, std::move(Unit), Iterations});
}

std::string BenchReport::toJson() const {
  // Report provenance: schema_version gates downstream parsers (m4jstat,
  // CI trend scripts), git_sha + UTC timestamp pin the run to a commit.
  char Stamp[32] = "unknown";
  std::time_t Now = std::time(nullptr);
  struct std::tm Utc;
  if (gmtime_r(&Now, &Utc) != nullptr)
    std::strftime(Stamp, sizeof(Stamp), "%Y-%m-%dT%H:%M:%SZ", &Utc);
  std::string Out = support::format(
      "{\n\"schema_version\": 1,\n\"git_sha\": \"%s\",\n"
      "\"timestamp_utc\": \"%s\",\n\"bench\": \"%s\",\n\"results\": [",
      support::jsonEscape(M4J_GIT_SHA).c_str(), Stamp,
      support::jsonEscape(BenchName).c_str());
  bool First = true;
  for (const Row &R : Rows) {
    Out += support::format(
        "%s\n  {\"name\": \"%s\", \"value\": %.6g, \"unit\": \"%s\", "
        "\"iterations\": %llu}",
        First ? "" : ",", support::jsonEscape(R.Name).c_str(), R.Value,
        support::jsonEscape(R.Unit).c_str(),
        static_cast<unsigned long long>(R.Iterations));
    First = false;
  }
  Out += "\n],\n\"metrics\": ";
  Out += support::Metrics::snapshot().toJson();
  Out += "}\n";
  return Out;
}

bool BenchReport::write(const std::string &Path) const {
  std::string Json = toJson();
  std::FILE *F = std::fopen(Path.c_str(), "w");
  if (!F)
    return false;
  size_t Written = std::fwrite(Json.data(), 1, Json.size(), F);
  return std::fclose(F) == 0 && Written == Json.size();
}

void BenchReport::writeIfRequested(const BenchOptions &Options) const {
  if (!Options.JsonPath.empty()) {
    if (write(Options.JsonPath))
      std::printf("wrote %s (%zu result rows + metrics snapshot)\n",
                  Options.JsonPath.c_str(), Rows.size());
    else
      std::fprintf(stderr, "failed to write %s\n", Options.JsonPath.c_str());
  }
  if (!Options.TracePath.empty()) {
    std::string Trace = support::FlightRecorder::exportChromeJson();
    std::FILE *F = std::fopen(Options.TracePath.c_str(), "w");
    bool Ok = F != nullptr;
    if (F) {
      Ok = std::fwrite(Trace.data(), 1, Trace.size(), F) == Trace.size();
      Ok = (std::fclose(F) == 0) && Ok;
    }
    if (Ok)
      std::printf("wrote %s (%llu flight events)\n", Options.TracePath.c_str(),
                  static_cast<unsigned long long>(
                      support::FlightRecorder::eventCount()));
    else
      std::fprintf(stderr, "failed to write %s\n", Options.TracePath.c_str());
  }
}

} // namespace mte4jni::bench

//===- Harness.cpp - Shared benchmark harness -----------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/support/ThreadPool.h"

#include <cstdio>
#include <cstring>

namespace mte4jni::bench {

BenchOptions BenchOptions::parse(int Argc, char **Argv) {
  BenchOptions Options;
  for (int I = 1; I < Argc; ++I) {
    std::string_view Arg = Argv[I];
    if (Arg == "--paper") {
      Options.PaperScale = true;
    } else if (Arg == "--quick") {
      Options.Quick = true;
    } else if (support::startsWith(Arg, "--threads=")) {
      uint64_t V;
      if (support::parseUnsigned(Arg.substr(10), V))
        Options.Threads = static_cast<unsigned>(V);
    } else if (support::startsWith(Arg, "--iters=")) {
      uint64_t V;
      if (support::parseUnsigned(Arg.substr(8), V))
        Options.Iterations = static_cast<unsigned>(V);
    } else if (support::startsWith(Arg, "--seed=")) {
      uint64_t V;
      if (support::parseUnsigned(Arg.substr(7), V))
        Options.Seed = V;
    } else if (Arg == "--help" || Arg == "-h") {
      std::printf(
          "usage: %s [--paper] [--quick] [--threads=N] [--iters=N] "
          "[--seed=N]\n"
          "  --paper   full paper-scale parameters (slow)\n"
          "  --quick   smoke-test sizes\n",
          Argv[0]);
      std::exit(0);
    } else if (support::startsWith(Arg, "--")) {
      Options.ExtraFlags.emplace_back(Arg);
    } else {
      std::fprintf(stderr, "unknown argument: %s (try --help)\n", Argv[I]);
      std::exit(2);
    }
  }
  return Options;
}

void printBanner(const char *Title, const char *PaperArtifact,
                 const BenchOptions &Options) {
  std::printf("==============================================================="
              "=================\n");
  std::printf("%s\n", Title);
  std::printf("reproduces: %s\n", PaperArtifact);
  std::printf("paper setup (Table 2): OPPO Find N2 Flip, Dimensity 9000+, "
              "12GB, Android 14\n");
  std::printf("this host:             x86-64 simulator, %zu hardware "
              "threads, %s scale\n",
              support::hardwareThreads(),
              Options.PaperScale ? "PAPER" : (Options.Quick ? "QUICK"
                                                            : "default"));
  std::printf("note: absolute times are simulator times; compare SHAPES "
              "(ordering, factors)\n");
  std::printf("==============================================================="
              "=================\n");
}

double measureNanosPerRep(const std::function<uint64_t()> &Fn,
                          uint64_t MinNanos, int MinReps) {
  // Warm-up.
  uint64_t Sink = Fn();

  int Reps = 0;
  support::Stopwatch Timer;
  do {
    Sink += Fn();
    ++Reps;
  } while (Timer.elapsedNanos() < MinNanos || Reps < MinReps);
  // Keep the work observable to the optimiser.
  asm volatile("" : : "r"(Sink));
  return static_cast<double>(Timer.elapsedNanos()) / Reps;
}

TablePrinter::TablePrinter(std::vector<std::string> Headers,
                           std::vector<int> Widths)
    : Headers(std::move(Headers)), Widths(std::move(Widths)) {}

void TablePrinter::printHeader() const {
  for (size_t I = 0; I < Headers.size(); ++I)
    std::printf("%-*s", Widths[I], Headers[I].c_str());
  std::printf("\n");
  printSeparator();
}

void TablePrinter::printRow(const std::vector<std::string> &Cells) const {
  for (size_t I = 0; I < Cells.size() && I < Widths.size(); ++I)
    std::printf("%-*s", Widths[I], Cells[I].c_str());
  std::printf("\n");
}

void TablePrinter::printSeparator() const {
  int Total = 0;
  for (int W : Widths)
    Total += W;
  for (int I = 0; I < Total; ++I)
    std::putchar('-');
  std::putchar('\n');
}

std::string ratioCell(double Ratio) {
  return support::format("%.2fx", Ratio);
}

std::string percentCell(double Percent) {
  return support::format("%.1f%%", Percent);
}

} // namespace mte4jni::bench

//===- bench_fig7_single_core.cpp - Figure 7 reproduction -----------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 7 of the paper: single-core scores of the Geekbench-style
// workload suite under each scheme, relative to no protection (100%).
//
// Paper result (shape): mean degradations guarded 5.90%, mte+sync 5.33%,
// mte+async 1.13%; the JNI-intensive workloads (Clang, Text Processing,
// PDF Renderer) do WORSE under mte+sync than under guarded copy.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/workloads/Workload.h"

#include <cstdio>

using namespace mte4jni;
using namespace mte4jni::bench;

namespace {

/// ns/iteration of one workload under one scheme.
double timeWorkload(const std::string &Name, api::Scheme Scheme,
                    uint64_t MinNanos, uint64_t Seed) {
  api::SessionConfig C;
  C.Protection = Scheme;
  C.HeapBytes = 64ull << 20;
  C.Seed = Seed;
  api::Session S(C);
  api::ScopedAttach Main(S, "bench");
  rt::HandleScope Scope(S.runtime());

  auto W = workloads::makeWorkload(Name.c_str());
  workloads::WorkloadContext Ctx{S, Main.env(), Main.thread(), Scope, Seed};
  W->prepare(Ctx);
  return measureNanosPerRep([&] { return W->run(Ctx); }, MinNanos, 2);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = BenchOptions::parse(Argc, Argv);
  printBanner("bench_fig7_single_core — workload suite, one core",
              "Figure 7 (relative single-core performance of sub-items; "
              "Geekbench 6.3.0 stand-in suite)",
              Options);

  const uint64_t MinNanos = Options.Quick ? 3'000'000
                            : Options.PaperScale ? 200'000'000
                                                 : 30'000'000;

  TablePrinter Table({"workload", "guarded", "mte+sync", "mte+async", ""},
                     {24, 10, 10, 11, 16});
  Table.printHeader();

  std::vector<double> GuardedScores, SyncScores, AsyncScores;
  bool CrossoverSeen = false;
  for (auto &W : workloads::makeAllWorkloads()) {
    std::string Name = W->name();
    double None = timeWorkload(Name, api::Scheme::NoProtection, MinNanos,
                               Options.Seed);
    double Guarded = timeWorkload(Name, api::Scheme::GuardedCopy, MinNanos,
                                  Options.Seed);
    double Sync = timeWorkload(Name, api::Scheme::Mte4JniSync, MinNanos,
                               Options.Seed);
    double Async = timeWorkload(Name, api::Scheme::Mte4JniAsync, MinNanos,
                                Options.Seed);

    // Score = throughput relative to no protection, in percent.
    double SG = 100.0 * None / Guarded;
    double SS = 100.0 * None / Sync;
    double SA = 100.0 * None / Async;
    GuardedScores.push_back(SG);
    SyncScores.push_back(SS);
    AsyncScores.push_back(SA);
    if (W->isJniIntensive() && SS < SG)
      CrossoverSeen = true;

    Table.printRow({Name, percentCell(SG), percentCell(SS), percentCell(SA),
                    W->isJniIntensive() ? "  [JNI-intensive]" : ""});
  }
  Table.printSeparator();

  double MG = support::geometricMean(GuardedScores);
  double MS = support::geometricMean(SyncScores);
  double MA = support::geometricMean(AsyncScores);
  Table.printRow({"geomean", percentCell(MG), percentCell(MS),
                  percentCell(MA), ""});

  std::printf("\npaper single-core degradations: guarded 5.90%%, mte+sync "
              "5.33%%, mte+async 1.13%%\n");
  std::printf("(software tag checks cost more than hardware ones; compare "
              "ordering, not magnitudes)\n");
  std::printf("shape checks: async best of the three: %s; JNI-intensive "
              "crossover (sync < guarded on Clang/Text/PDF): %s\n",
              MA >= MS * 0.97 && MA >= MG ? "yes" : "NO (noise?)",
              CrossoverSeen ? "yes" : "NO");
  return 0;
}

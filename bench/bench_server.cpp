//===- bench_server.cpp - Tenant-scale server harness benchmark -----------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Runs the multi-tenant request server (src/server) under each protection
// scheme and reports sustained throughput plus coordinated-omission-free
// latency percentiles, per tenant and global. This is the serving-side
// complement of the paper's batch Geekbench runs (§5.4): instead of asking
// "how much slower is one clone", it asks "what do MY tenants' p99/p999
// look like under sustained mixed JNI traffic, and who pays for the GC
// pauses and tag-check faults".
//
// The request mix is Table-1-shaped (array pins, string criticals, region
// copies) plus a string-critical-heavy HTML parse profile, with an
// optional trickle of rogue near-OOB reads (--rogue-permille) modelling a
// buggy native library sharing the process.
//
// With --stream=out.jsonl one metrics snapshot per interval is appended
// while the server runs (all schemes into one file, labelled); inspect
// live with `m4jstat watch out.jsonl` or after the fact with
// `m4jstat diff --last out.jsonl`.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/server/Server.h"

#include <cstdio>

using namespace mte4jni;
using namespace mte4jni::bench;

namespace {

struct SchemeRun {
  api::Scheme Scheme;
  const char *Name; // row prefix; matches api::schemeName spelling
};

void addSchemeRows(BenchReport &Report, const char *Scheme,
                   const server::ServerResult &R) {
  std::string P = std::string(Scheme) + "/";
  Report.addRow(P + "requests_per_sec", R.RequestsPerSec, "req/s",
                R.Requests);
  Report.addRow(P + "crossings_per_sec", R.CrossingsPerSec, "crossings/s",
                R.JniCrossings);
  Report.addRow(P + "faults_per_sec", R.FaultsPerSec, "faults/s", R.Faults);
  Report.addRow(P + "late_arrivals", double(R.LateArrivals), "count",
                R.LateArrivals);
  Report.addRow(P + "mean_ns", R.MeanNanos, "ns");
  Report.addRow(P + "p50_ns", double(R.P50Nanos), "ns");
  Report.addRow(P + "p99_ns", double(R.P99Nanos), "ns");
  Report.addRow(P + "p999_ns", double(R.P999Nanos), "ns");
  for (const server::TenantSummary &T : R.Tenants) {
    std::string TP = P + support::format("tenant%u/", T.Tenant);
    Report.addRow(TP + "requests", double(T.Requests), "count", T.Requests);
    Report.addRow(TP + "faults", double(T.Faults), "count", T.Faults);
    Report.addRow(TP + "p50_ns", double(T.P50Nanos), "ns");
    Report.addRow(TP + "p99_ns", double(T.P99Nanos), "ns");
    Report.addRow(TP + "p999_ns", double(T.P999Nanos), "ns");
  }
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = BenchOptions::parse(Argc, Argv);
  printBanner("tenant-scale JNI server: throughput + latency attribution",
              "serving-side extension of §5.4 (not a paper figure)",
              Options);

  server::ServerConfig Config;
  // Default: a modest smoke shape; --paper runs the tenant-scale shape the
  // checked-in BENCH_server.json uses.
  Config.NumTenants = Options.PaperScale ? 8 : 4;
  Config.NumWorkers = Options.PaperScale ? 64 : 8;
  Config.DurationMillis = Options.PaperScale ? 3000 : (Options.Quick ? 400 : 1000);
  if (Options.Threads)
    Config.NumWorkers = Options.Threads;
  Config.NumTenants = static_cast<unsigned>(
      Options.flagUnsigned("--tenants", Config.NumTenants));
  Config.DurationMillis =
      Options.flagUnsigned("--duration-ms", Config.DurationMillis);
  Config.TargetRatePerSec =
      double(Options.flagUnsigned("--rate", 0)); // 0 = closed loop
  Config.Seed = Options.Seed;

  // --rogue-permille=P: P in 1000 requests are rogue near-OOB reads.
  // Weights are scaled so the non-rogue mix keeps its internal ratios.
  uint64_t RoguePermille = Options.flagUnsigned("--rogue-permille", 0);
  if (RoguePermille > 1000)
    RoguePermille = 1000;
  unsigned Scale = static_cast<unsigned>(1000 - RoguePermille);
  Config.Mix.ArrayPin = 40 * Scale;
  Config.Mix.StringCritical = 25 * Scale;
  Config.Mix.RegionCopy = 20 * Scale;
  Config.Mix.HtmlParse = 15 * Scale;
  Config.Mix.Rogue = static_cast<unsigned>(100 * RoguePermille);

  std::string StreamPath = Options.flagValue("--stream");
  uint32_t StreamIntervalMillis = static_cast<uint32_t>(
      Options.flagUnsigned("--stream-interval-ms", 250));

  const SchemeRun Schemes[] = {
      {api::Scheme::NoProtection, "unprotected"},
      {api::Scheme::GuardedCopy, "guarded_copy"},
      {api::Scheme::Mte4JniSync, "mte4jni_sync"},
  };

  std::printf("\ntenants=%u workers=%u duration=%llums rate=%s "
              "rogue=%llu/1000%s%s\n\n",
              Config.NumTenants, Config.NumWorkers,
              static_cast<unsigned long long>(Config.DurationMillis),
              Config.TargetRatePerSec > 0
                  ? support::format("%.0f req/s", Config.TargetRatePerSec)
                        .c_str()
                  : "closed-loop",
              static_cast<unsigned long long>(RoguePermille),
              StreamPath.empty() ? "" : " stream=",
              StreamPath.c_str());

  TablePrinter Table({"scheme", "req/s", "xing/s", "faults/s", "p50 ns",
                      "p99 ns", "p999 ns", "late"},
                     {14, 12, 12, 10, 10, 10, 10, 8});
  Table.printHeader();

  BenchReport Report("server");
  bool FirstScheme = true;
  for (const SchemeRun &SR : Schemes) {
    // Per-scheme counters from zero: the report's embedded metrics
    // snapshot (taken at write time) then describes the LAST scheme's run
    // — the MTE4JNI one — including its rt/gc/pause_nanos histogram.
    support::Metrics::resetAll();

    api::SessionConfig SC;
    SC.Protection = SR.Scheme;
    SC.BackgroundGc = true;
    SC.Seed = Options.Seed;
    api::Session S(SC);

    server::ServerConfig Run = Config;
    if (!StreamPath.empty()) {
      Run.StreamPath = StreamPath;
      Run.StreamIntervalMillis = StreamIntervalMillis;
      Run.StreamLabel = SR.Name;
      Run.StreamAppend = !FirstScheme; // all schemes share one stream file
    }
    FirstScheme = false;

    server::ServerResult R = server::runServer(S, Run);
    Table.printRow({SR.Name, support::format("%.0f", R.RequestsPerSec),
                    support::format("%.0f", R.CrossingsPerSec),
                    support::format("%.1f", R.FaultsPerSec),
                    support::format("%llu",
                                    (unsigned long long)R.P50Nanos),
                    support::format("%llu",
                                    (unsigned long long)R.P99Nanos),
                    support::format("%llu",
                                    (unsigned long long)R.P999Nanos),
                    support::format("%llu",
                                    (unsigned long long)R.LateArrivals)});
    for (const server::TenantSummary &T : R.Tenants)
      std::printf("  tenant%-2u req=%-9llu faults=%-6llu p99=%llu ns\n",
                  T.Tenant, (unsigned long long)T.Requests,
                  (unsigned long long)T.Faults,
                  (unsigned long long)T.P99Nanos);
    addSchemeRows(Report, SR.Name, R);
  }

  std::printf("\nnote: faults/s > 0 only under MTE with --rogue-permille "
              "(rogue requests are near-OOB READS —\n"
              "guarded copy cannot see reads, unprotected executes them "
              "silently).\n");
  if (!StreamPath.empty())
    std::printf("stream: %s (m4jstat watch %s)\n", StreamPath.c_str(),
                StreamPath.c_str());

  Report.writeIfRequested(Options);
  return 0;
}

//===- bench_fig6_multi_thread.cpp - Figure 6 reproduction ----------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 6 of the paper: multi-thread JNI overhead. 64 threads (paper
// scale) each run a native method that Get/Release-s a 1024-int array and
// reads it, 10000 times. Two tests:
//
//   "same array"      — all threads share one array: contention on the
//                       MTE4JNI *object lock* (and the tag refcount).
//   "different array" — each thread has its own array: contention only on
//                       the *table locks*, which the two-tier scheme
//                       spreads across k=16 tables.
//
// Schemes: MTE4JNI two-tier sync/async, MTE4JNI global-lock sync/async
// (the §3.1 strawman), guarded copy — all normalised to no protection.
//
// Paper result (shape): two-tier 1.21x in both tests; global lock 1.39x
// (same) / 2.20x (different); guarded copy 32.9x / 34.0x.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/mte/Access.h"
#include "mte4jni/rt/Trampoline.h"

#include <cstdio>
#include <thread>
#include <vector>

using namespace mte4jni;
using namespace mte4jni::bench;

namespace {

constexpr unsigned kArrayInts = 1024;

struct SchemeUnderTest {
  const char *Label;
  api::Scheme Protection;
  core::LockScheme Locks;
};

/// Reads the whole array once through the JNI pointer.
uint64_t readOnce(jni::JniEnv &Env, rt::JavaThread &Thread,
                  jni::jarray Array) {
  return rt::callNative(
      Thread, rt::NativeKind::Regular, "native_array_read", [&] {
        jni::jboolean IsCopy;
        auto P = Env.GetPrimitiveArrayCritical(Array, &IsCopy)
                     .cast<jni::jint>();
        // Check the whole range once (hardware checks every load at no
        // marginal cost), then stream over it raw.
        mte::checkReadRange(P.cast<const void>(),
                            kArrayInts * sizeof(jni::jint));
        const jni::jint *Raw = P.raw();
        uint64_t Sum = 0;
        for (unsigned I = 0; I < kArrayInts; ++I)
          Sum += static_cast<uint32_t>(Raw[I]);
        Env.ReleasePrimitiveArrayCritical(Array, P.cast<void>(),
                                          jni::JNI_ABORT);
        return Sum;
      });
}

/// Wall time for all threads to finish their iterations.
double runTest(const SchemeUnderTest &SUT, unsigned Threads, unsigned Iters,
               bool SameArray, uint64_t Seed) {
  api::SessionConfig C;
  C.Protection = SUT.Protection;
  C.Locks = SUT.Locks;
  C.HeapBytes = 64ull << 20;
  C.Seed = Seed;
  api::Session S(C);

  // Arrays are created on the main thread before the clock starts.
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  std::vector<jni::jarray> Arrays;
  unsigned NumArrays = SameArray ? 1 : Threads;
  for (unsigned A = 0; A < NumArrays; ++A) {
    jni::jarray Arr = Main.env().NewIntArray(Scope, kArrayInts);
    auto *Data = rt::arrayData<jni::jint>(Arr);
    for (unsigned I = 0; I < kArrayInts; ++I)
      Data[I] = static_cast<jni::jint>(I);
    Arrays.push_back(Arr);
  }

  support::Stopwatch Timer;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      api::ScopedAttach Me(S, support::format("worker-%u", T));
      jni::jarray Array = Arrays[SameArray ? 0 : T];
      uint64_t Sink = 0;
      for (unsigned I = 0; I < Iters; ++I)
        Sink += readOnce(Me.env(), Me.thread(), Array);
      asm volatile("" : : "r"(Sink));
    });
  }
  for (auto &W : Workers)
    W.join();
  return Timer.elapsedSeconds();
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = BenchOptions::parse(Argc, Argv);
  printBanner("bench_fig6_multi_thread — JNI overhead, 64 threads",
              "Figure 6 (concurrent array reads, normalised to no "
              "protection; object-lock vs table-lock contention)",
              Options);

  unsigned Threads = Options.Threads
                         ? Options.Threads
                         : (Options.PaperScale ? 64u
                            : Options.Quick    ? 8u
                                               : 32u);
  unsigned Iters = Options.Iterations
                       ? Options.Iterations
                       : (Options.PaperScale ? 10000u
                          : Options.Quick    ? 200u
                                             : 1500u);
  std::printf("parameters: %u threads x %u iterations, array of %u ints\n\n",
              Threads, Iters, kArrayInts);

  const SchemeUnderTest Schemes[] = {
      {"mte4jni+sync  (lock-free)", api::Scheme::Mte4JniSync,
       core::TagTableKind::LockFree},
      {"mte4jni+async (lock-free)", api::Scheme::Mte4JniAsync,
       core::TagTableKind::LockFree},
      {"mte4jni+sync  (two-tier)", api::Scheme::Mte4JniSync,
       core::LockScheme::TwoTier},
      {"mte4jni+async (two-tier)", api::Scheme::Mte4JniAsync,
       core::LockScheme::TwoTier},
      {"mte4jni+sync  (global lock)", api::Scheme::Mte4JniSync,
       core::LockScheme::GlobalLock},
      {"mte4jni+async (global lock)", api::Scheme::Mte4JniAsync,
       core::LockScheme::GlobalLock},
      {"guarded copy", api::Scheme::GuardedCopy, core::LockScheme::TwoTier},
  };

  BenchReport Report("fig6_multi_thread");
  for (bool SameArray : {true, false}) {
    const char *Test = SameArray ? "same_array" : "different_array";
    std::printf("== test: every thread reads %s ==\n",
                SameArray ? "the SAME array (object-lock contention)"
                          : "its OWN array (table-lock contention)");
    SchemeUnderTest None{"no protection", api::Scheme::NoProtection,
                         core::LockScheme::TwoTier};
    double Baseline = runTest(None, Threads, Iters, SameArray, Options.Seed);
    std::printf("  %-30s %8.3fs   1.00x (baseline)\n", None.Label, Baseline);
    Report.addRow(support::format("%s/no_protection", Test), Baseline, "s",
                  Iters);

    double LockFree = 0, TwoTier = 0, Global = 0, Guarded = 0;
    for (const SchemeUnderTest &SUT : Schemes) {
      double T = runTest(SUT, Threads, Iters, SameArray, Options.Seed);
      double Ratio = T / Baseline;
      std::printf("  %-30s %8.3fs   %s\n", SUT.Label, T,
                  ratioCell(Ratio).c_str());
      Report.addRow(support::format("%s/%s", Test, SUT.Label), Ratio, "x",
                    Iters);
      if (SUT.Protection == api::Scheme::GuardedCopy)
        Guarded = Ratio;
      else if (SUT.Locks == core::TagTableKind::LockFree)
        LockFree += Ratio / 2;
      else if (SUT.Locks == core::LockScheme::TwoTier)
        TwoTier += Ratio / 2;
      else
        Global += Ratio / 2;
    }
    std::printf("  paper: two-tier 1.21x, global %sx, guarded %sx\n",
                SameArray ? "1.39" : "2.20", SameArray ? "32.9" : "34.0");
    std::printf("  shape checks: lock-free <= two-tier: %s; two-tier <= "
                "global: %s; guarded worst: %s\n\n",
                LockFree <= TwoTier * 1.05 ? "yes" : "NO",
                TwoTier <= Global * 1.05 ? "yes" : "NO",
                Guarded > Global ? "yes" : "NO");
  }

  std::printf("headline (paper: ~27x multi-thread reduction vs guarded "
              "copy for the two-tier schemes)\n");
  Report.writeIfRequested(Options);
  return 0;
}

//===- bench_fig8_multi_core.cpp - Figure 8 reproduction ------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Figure 8 of the paper: multi-core scores of the workload suite under
// each scheme, relative to no protection. Every hardware thread runs its
// own instance of the same workload (Geekbench's multi-core methodology);
// the score is aggregate throughput.
//
// Paper result (shape): mean degradations guarded 13.50% (worse than its
// single-core 5.90% — copy-induced contention), mte+sync 5.12%, mte+async
// 1.55%; same Clang/Text/PDF crossover as Figure 7.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/support/ThreadPool.h"
#include "mte4jni/workloads/Workload.h"

#include <algorithm>
#include <cstdio>
#include <thread>

using namespace mte4jni;
using namespace mte4jni::bench;

namespace {

/// Aggregate iterations/second with one workload instance per thread.
double multicoreThroughput(const std::string &Name, api::Scheme Scheme,
                           unsigned Threads, unsigned Iters,
                           uint64_t Seed) {
  api::SessionConfig C;
  C.Protection = Scheme;
  C.HeapBytes = 256ull << 20;
  C.Seed = Seed;
  api::Session S(C);

  // Prepare per-thread instances up front (allocation is not the thing
  // being measured).
  api::ScopedAttach Main(S, "main");

  support::Stopwatch Timer;
  std::vector<std::thread> Workers;
  for (unsigned T = 0; T < Threads; ++T) {
    Workers.emplace_back([&, T] {
      api::ScopedAttach Me(S, support::format("core-%u", T));
      rt::HandleScope Scope(S.runtime());
      auto W = workloads::makeWorkload(Name.c_str());
      workloads::WorkloadContext Ctx{S, Me.env(), Me.thread(), Scope,
                                     Seed + T};
      W->prepare(Ctx);
      uint64_t Sink = 0;
      for (unsigned I = 0; I < Iters; ++I)
        Sink += W->run(Ctx);
      asm volatile("" : : "r"(Sink));
    });
  }
  for (auto &W : Workers)
    W.join();
  double Seconds = Timer.elapsedSeconds();
  return double(Threads) * Iters / Seconds;
}

/// Best of two runs: multicore timings on oversubscribed hosts are noisy
/// and the figure compares schemes, not runs.
double multicoreThroughputBest(const std::string &Name, api::Scheme Scheme,
                               unsigned Threads, unsigned Iters,
                               uint64_t Seed) {
  double A = multicoreThroughput(Name, Scheme, Threads, Iters, Seed);
  double B = multicoreThroughput(Name, Scheme, Threads, Iters, Seed);
  return std::max(A, B);
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = BenchOptions::parse(Argc, Argv);
  printBanner("bench_fig8_multi_core — workload suite, all cores",
              "Figure 8 (relative multi-core performance of sub-items; "
              "Geekbench 6.3.0 stand-in suite)",
              Options);

  unsigned Threads =
      Options.Threads ? Options.Threads
                      : static_cast<unsigned>(support::hardwareThreads());
  unsigned Iters = Options.Iterations ? Options.Iterations
                   : Options.Quick    ? 2u
                   : Options.PaperScale ? 40u
                                        : 8u;
  std::printf("parameters: %u threads x %u iterations per workload\n\n",
              Threads, Iters);

  TablePrinter Table({"workload", "guarded", "mte+sync", "mte+async", ""},
                     {24, 10, 10, 11, 16});
  Table.printHeader();

  std::vector<double> GuardedScores, SyncScores, AsyncScores;
  bool CrossoverSeen = false;
  for (auto &W : workloads::makeAllWorkloads()) {
    std::string Name = W->name();
    double None = multicoreThroughputBest(Name, api::Scheme::NoProtection,
                                          Threads, Iters, Options.Seed);
    double Guarded = multicoreThroughputBest(
        Name, api::Scheme::GuardedCopy, Threads, Iters, Options.Seed);
    double Sync = multicoreThroughputBest(Name, api::Scheme::Mte4JniSync,
                                          Threads, Iters, Options.Seed);
    double Async = multicoreThroughputBest(
        Name, api::Scheme::Mte4JniAsync, Threads, Iters, Options.Seed);

    double SG = 100.0 * Guarded / None;
    double SS = 100.0 * Sync / None;
    double SA = 100.0 * Async / None;
    GuardedScores.push_back(SG);
    SyncScores.push_back(SS);
    AsyncScores.push_back(SA);
    if (W->isJniIntensive() && SS < SG)
      CrossoverSeen = true;

    Table.printRow({Name, percentCell(SG), percentCell(SS), percentCell(SA),
                    W->isJniIntensive() ? "  [JNI-intensive]" : ""});
  }
  Table.printSeparator();

  double MG = support::geometricMean(GuardedScores);
  double MS = support::geometricMean(SyncScores);
  double MA = support::geometricMean(AsyncScores);
  Table.printRow({"geomean", percentCell(MG), percentCell(MS),
                  percentCell(MA), ""});

  std::printf("\npaper multi-core degradations: guarded 13.50%%, mte+sync "
              "5.12%%, mte+async 1.55%% (async ~14%% better than guarded)\n");
  std::printf("shape checks: async best: %s; guarded degrades more here "
              "than single-core: compare with bench_fig7; JNI-intensive "
              "crossover: %s\n",
              MA >= MS * 0.97 && MA >= MG ? "yes" : "NO (noise?)",
              CrossoverSeen ? "yes" : "NO");
  return 0;
}

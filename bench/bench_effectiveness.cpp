//===- bench_effectiveness.cpp - §5.2 effectiveness table -----------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// §5.2 of the paper (Figures 3 and 4): a native method obtains an 18-int
// Java array through GetPrimitiveArrayCritical and writes at index 21.
// This harness runs that program — plus an out-of-bounds *read* and a far
// write that skips any red zone — under all four schemes and prints the
// detection matrix together with the Figure-4-style backtraces.
//
//===----------------------------------------------------------------------===//

#include "Harness.h"

#include "mte4jni/mte/Access.h"
#include "mte4jni/rt/Trampoline.h"

#include <cstdio>
#include <string>

using namespace mte4jni;
using namespace mte4jni::bench;

namespace {

enum class Attack { OobWrite21, OobRead21, FarWrite4096 };

const char *attackName(Attack A) {
  switch (A) {
  case Attack::OobWrite21:
    return "OOB write (idx 21 of 18)";
  case Attack::OobRead21:
    return "OOB read  (idx 21 of 18)";
  case Attack::FarWrite4096:
    return "far write (idx 4096)";
  }
  return "?";
}

struct Outcome {
  bool Detected = false;
  std::string DetectionPoint;
  std::string TopFrame;
  bool PreciseAddress = false;
};

/// Runs Figure 3's test_ofb (or a variant) under one scheme.
Outcome runAttack(api::Scheme Scheme, Attack A, bool ShowTrace) {
  api::SessionConfig C;
  C.Protection = Scheme;
  C.HeapBytes = 16ull << 20;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "test_ofb", [&] {
    jni::jboolean IsCopy;
    auto Elems = Main.env()
                     .GetPrimitiveArrayCritical(Array, &IsCopy)
                     .cast<jni::jint>();
    switch (A) {
    case Attack::OobWrite21:
      mte::store<jni::jint>(Elems + 21, 0x41414141);
      break;
    case Attack::OobRead21: {
      volatile jni::jint V = mte::load<jni::jint>(Elems + 21);
      (void)V;
      break;
    }
    case Attack::FarWrite4096:
      mte::store<jni::jint>(Elems + 4096, 0x41414141);
      break;
    }
    // The first syscall after the corruption (Figure 4c's getuid()).
    mte::simulatedSyscall("getuid");
    Main.env().ReleasePrimitiveArrayCritical(Array, Elems.cast<void>(), 0);
    return 0;
  });

  Outcome Result;
  auto Faults = S.faults().snapshot();
  if (Faults.empty())
    return Result;

  const auto &F = Faults[0];
  Result.Detected = true;
  Result.PreciseAddress = F.HasAddress &&
                          F.Kind != mte::FaultKind::GuardedCopyCorruption;
  switch (F.Kind) {
  case mte::FaultKind::TagMismatchSync:
    Result.DetectionPoint = "at faulting access";
    break;
  case mte::FaultKind::TagMismatchAsync:
    Result.DetectionPoint =
        support::format("next syscall (%s)", F.DeliveredAtSyscall.c_str());
    break;
  case mte::FaultKind::GuardedCopyCorruption:
    Result.DetectionPoint = "at JNI release";
    break;
  case mte::FaultKind::JniCheckError:
    Result.DetectionPoint = "JNI check";
    break;
  }
  Result.TopFrame = !F.Backtrace.empty() ? F.Backtrace[0].Function : "?";

  if (ShowTrace) {
    std::printf("\n--- %s under %s: logcat-style report (cf. Figure 4) "
                "---\n%s",
                attackName(A), api::schemeName(Scheme), F.str().c_str());
  }
  return Result;
}

} // namespace

int main(int Argc, char **Argv) {
  BenchOptions Options = BenchOptions::parse(Argc, Argv);
  printBanner("bench_effectiveness — out-of-bounds checking effectiveness",
              "§5.2, Figure 3 (the buggy native method) and Figure 4 "
              "(detection reports per scheme)",
              Options);

  const api::Scheme Schemes[] = {
      api::Scheme::NoProtection, api::Scheme::GuardedCopy,
      api::Scheme::Mte4JniSync, api::Scheme::Mte4JniAsync};
  const Attack Attacks[] = {Attack::OobWrite21, Attack::OobRead21,
                            Attack::FarWrite4096};

  TablePrinter Table({"attack", "scheme", "detected", "where",
                      "top frame"},
                     {26, 15, 10, 24, 30});
  Table.printHeader();
  for (Attack A : Attacks) {
    for (api::Scheme Sch : Schemes) {
      Outcome O = runAttack(Sch, A, /*ShowTrace=*/false);
      Table.printRow({attackName(A), api::schemeName(Sch),
                      O.Detected ? "YES" : "no",
                      O.Detected ? O.DetectionPoint : "-",
                      O.Detected ? O.TopFrame : "-"});
    }
    Table.printSeparator();
  }

  std::printf("\nexpected (paper):\n"
              "  no-protection  detects nothing\n"
              "  guarded-copy   detects the write at Release only; misses "
              "reads and red-zone-skipping writes;\n"
              "                 trace points at art::Runtime::Abort "
              "(Figure 4a)\n"
              "  mte4jni+sync   detects everything at the faulting "
              "instruction (Figure 4b)\n"
              "  mte4jni+async  detects everything at the next syscall, "
              "without an address (Figure 4c)\n");

  // Full Figure-4-style traces for the headline attack.
  runAttack(api::Scheme::GuardedCopy, Attack::OobWrite21, true);
  runAttack(api::Scheme::Mte4JniSync, Attack::OobWrite21, true);
  runAttack(api::Scheme::Mte4JniAsync, Attack::OobWrite21, true);
  return 0;
}

//===- jni_policy_matrix_test.cpp - Every interface under every scheme --------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// A scheme x interface matrix over the paper's Table 1: for each of the
// four protection schemes, every pointer-returning interface must (a)
// deliver correct data, (b) honour its isCopy contract, (c) carry a tag
// exactly when the scheme is MTE4JNI, and (d) round-trip writes.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using namespace mte4jni::jni;

class PolicyMatrixTest : public ::testing::TestWithParam<api::Scheme> {
protected:
  bool isMte() const {
    return GetParam() == api::Scheme::Mte4JniSync ||
           GetParam() == api::Scheme::Mte4JniAsync;
  }
  bool isGuarded() const { return GetParam() == api::Scheme::GuardedCopy; }

  void SetUp() override {
    api::SessionConfig C;
    C.Protection = GetParam();
    C.HeapBytes = 8 << 20;
    S = std::make_unique<api::Session>(C);
    Main = std::make_unique<api::ScopedAttach>(*S, "main");
    Scope = std::make_unique<rt::HandleScope>(S->runtime());
  }
  void TearDown() override {
    mte::simulatedSyscall("getuid");
    EXPECT_EQ(S->faults().totalCount(), 0u)
        << "matrix operations are all in-bounds";
    Scope.reset();
    Main.reset();
    S.reset();
  }

  std::unique_ptr<api::Session> S;
  std::unique_ptr<api::ScopedAttach> Main;
  std::unique_ptr<rt::HandleScope> Scope;
};

TEST_P(PolicyMatrixTest, GetArrayElementsContract) {
  jintArray A = Main->env().NewIntArray(*Scope, 32);
  auto *Data = rt::arrayData<jint>(A);
  for (int I = 0; I < 32; ++I)
    Data[I] = I * 11;

  rt::callNative(Main->thread(), rt::NativeKind::Regular, "use", [&] {
    jboolean IsCopy;
    auto P = Main->env().GetIntArrayElements(A, &IsCopy);

    // isCopy contract per scheme.
    EXPECT_EQ(IsCopy == JNI_TRUE, isGuarded());
    // Pointer-tag contract.
    if (isMte())
      EXPECT_NE(P.tag(), 0);
    else
      EXPECT_EQ(P.tag(), 0);
    // Direct-vs-copy address contract.
    if (S->policy().exposesDirectPointers())
      EXPECT_EQ(P.address(), A->dataAddress());
    else
      EXPECT_NE(P.address(), A->dataAddress());

    // Data correct; writes round-trip.
    for (int I = 0; I < 32; ++I)
      EXPECT_EQ(mte::load<jint>(P + I), I * 11);
    mte::store<jint>(P + 5, -99);
    Main->env().ReleaseIntArrayElements(A, P, 0);
    return 0;
  });
  EXPECT_EQ(rt::arrayData<jint>(A)[5], -99);
}

TEST_P(PolicyMatrixTest, GetPrimitiveArrayCriticalContract) {
  jbyteArray A = Main->env().NewByteArray(*Scope, 48);
  auto *Data = rt::arrayData<jbyte>(A);
  for (int I = 0; I < 48; ++I)
    Data[I] = static_cast<jbyte>(I);

  rt::callNative(Main->thread(), rt::NativeKind::Regular, "use", [&] {
    jboolean IsCopy;
    auto P = Main->env()
                 .GetPrimitiveArrayCritical(A, &IsCopy)
                 .cast<jbyte>();
    // callNative itself holds one critical claim (its body is the
    // safepoint bracket), so the JNI critical nests to depth 2.
    EXPECT_EQ(S->runtime().criticalDepth(), 2u);
    for (int I = 0; I < 48; ++I)
      EXPECT_EQ(mte::load<jbyte>(P + I), static_cast<jbyte>(I));
    mte::store<jbyte>(P + 7, 77);
    Main->env().ReleasePrimitiveArrayCritical(A, P.cast<void>(), 0);
    EXPECT_EQ(S->runtime().criticalDepth(), 1u);
    return 0;
  });
  EXPECT_EQ(rt::arrayData<jbyte>(A)[7], 77);
}

TEST_P(PolicyMatrixTest, GetStringCharsContract) {
  jstring Str = Main->env().NewStringUTF(*Scope, "matrix");
  rt::callNative(Main->thread(), rt::NativeKind::Regular, "use", [&] {
    jboolean IsCopy;
    auto P = Main->env().GetStringChars(Str, &IsCopy);
    EXPECT_EQ(IsCopy == JNI_TRUE, isGuarded());
    if (isMte()) {
      EXPECT_NE(P.tag(), 0);
    }
    EXPECT_EQ(mte::load(P), 'm');
    EXPECT_EQ(mte::load(P + 5), 'x');
    Main->env().ReleaseStringChars(Str, P);
    return 0;
  });
}

TEST_P(PolicyMatrixTest, GetStringUTFCharsContract) {
  jstring Str = Main->env().NewStringUTF(*Scope, "utf-\xC3\xA9");
  rt::callNative(Main->thread(), rt::NativeKind::Regular, "use", [&] {
    jboolean IsCopy;
    auto P = Main->env().GetStringUTFChars(Str, &IsCopy);
    EXPECT_EQ(IsCopy, JNI_TRUE) << "UTF chars are always a copy";
    if (isMte()) {
      EXPECT_NE(P.tag(), 0) << "the UTF copy must be tagged too";
    }
    // NUL-terminated, correct content.
    const char Expected[] = "utf-\xC3\xA9";
    for (size_t I = 0; I < sizeof(Expected); ++I)
      EXPECT_EQ(mte::load(P + static_cast<ptrdiff_t>(I)), Expected[I]);
    Main->env().ReleaseStringUTFChars(Str, P);
    return 0;
  });
}

TEST_P(PolicyMatrixTest, GetStringCriticalContract) {
  jstring Str = Main->env().NewStringUTF(*Scope, "crit");
  rt::callNative(Main->thread(), rt::NativeKind::Regular, "use", [&] {
    jboolean IsCopy;
    auto P = Main->env().GetStringCritical(Str, &IsCopy);
    // Depth 2: callNative's safepoint bracket + the JNI critical.
    EXPECT_EQ(S->runtime().criticalDepth(), 2u);
    EXPECT_EQ(mte::load(P), 'c');
    Main->env().ReleaseStringCritical(Str, P);
    EXPECT_EQ(S->runtime().criticalDepth(), 1u);
    return 0;
  });
}

TEST_P(PolicyMatrixTest, RegionsWorkIdenticallyEverywhere) {
  // Get/Set<Prim>ArrayRegion never expose raw pointers; every scheme must
  // behave identically (runtime-side bounds-checked copies).
  jintArray A = Main->env().NewIntArray(*Scope, 16);
  jint Src[8] = {1, 2, 3, 4, 5, 6, 7, 8};
  Main->env().SetIntArrayRegion(A, 4, 8, Src);
  jint Dst[8] = {};
  Main->env().GetIntArrayRegion(A, 4, 8, Dst);
  for (int I = 0; I < 8; ++I)
    EXPECT_EQ(Dst[I], Src[I]);
  EXPECT_EQ(rt::arrayData<jint>(A)[0], 0);
  EXPECT_EQ(rt::arrayData<jint>(A)[4], 1);
}

TEST_P(PolicyMatrixTest, TwoArraysHeldAtOnce) {
  jintArray A = Main->env().NewIntArray(*Scope, 8);
  jintArray B = Main->env().NewIntArray(*Scope, 8);
  rt::callNative(Main->thread(), rt::NativeKind::Regular, "use", [&] {
    jboolean IsCopy;
    auto PA = Main->env().GetIntArrayElements(A, &IsCopy);
    auto PB = Main->env().GetIntArrayElements(B, &IsCopy);
    for (int I = 0; I < 8; ++I) {
      mte::store<jint>(PA + I, I);
      mte::store<jint>(PB + I, 100 + I);
    }
    Main->env().ReleaseIntArrayElements(B, PB, 0);
    // A still valid after B's release.
    for (int I = 0; I < 8; ++I)
      EXPECT_EQ(mte::load<jint>(PA + I), I);
    Main->env().ReleaseIntArrayElements(A, PA, 0);
    return 0;
  });
  EXPECT_EQ(rt::arrayData<jint>(A)[3], 3);
  EXPECT_EQ(rt::arrayData<jint>(B)[3], 103);
}

INSTANTIATE_TEST_SUITE_P(
    AllSchemes, PolicyMatrixTest,
    ::testing::Values(api::Scheme::NoProtection, api::Scheme::GuardedCopy,
                      api::Scheme::Mte4JniSync, api::Scheme::Mte4JniAsync),
    [](const auto &Info) {
      std::string Name = api::schemeName(Info.param);
      for (char &C : Name)
        if (!isalnum(static_cast<unsigned char>(C)))
          C = '_';
      return Name;
    });

} // namespace

//===- alignment_test.cpp - The §4.1 alignment hazard ---------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// §4.1 of the paper: ART's default 8-byte allocation alignment lets two
// objects share one 16-byte tag granule, which confuses MTE — an
// out-of-bounds access within the shared granule looks safe. MTE4JNI
// therefore raises the heap alignment to 16. These tests demonstrate both
// the hazard (with alignment 8) and the fix (with alignment 16).
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/Instructions.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;

/// Allocates small byte arrays until a neighbour's storage begins inside
/// the granule that covers the previous array's payload — possible only
/// at 8-byte alignment, where a 16-byte granule can span two objects.
/// Returns {owner, victim} or {null, null}.
std::pair<jni::jarray, jni::jarray>
findGranuleSharingPair(api::Session &S, jni::JniEnv &Env,
                       rt::HandleScope &Scope) {
  jni::jarray Prev = nullptr;
  for (int I = 0; I < 64; ++I) {
    jni::jarray Cur = Env.NewByteArray(Scope, 2);
    if (Prev) {
      uint64_t PrevPayloadGranule =
          support::alignDown(Prev->dataAddress(), mte::kGranuleSize);
      uint64_t CurStart = reinterpret_cast<uint64_t>(Cur);
      if (support::alignDown(CurStart, mte::kGranuleSize) ==
          PrevPayloadGranule)
        return {Prev, Cur};
    }
    Prev = Cur;
  }
  return {nullptr, nullptr};
}

TEST(Alignment, EightByteAlignmentSharesGranules) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  C.HeapAlignment = 8; // force the stock-ART hazard
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  auto [A, B] = findGranuleSharingPair(S, Main.env(), Scope);
  ASSERT_NE(A, nullptr) << "8-byte alignment must produce granule sharing";

  // The hazard: tagging A's 2-byte payload colours the whole granule,
  // which also covers the START OF B's storage. An out-of-bounds access
  // from A's pointer into B's bytes inside that shared granule carries
  // the right tag and is NOT caught — §4.1's "the MTE error-checking
  // mechanism is confused to view the out-of-bounds access within the
  // same block as a safe one".
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "hazard", [&] {
    jni::jboolean IsCopy;
    auto Elems = Main.env().GetByteArrayElements(A, &IsCopy);
    // Offset from A's payload into B's storage (still within the shared
    // granule).
    ptrdiff_t Delta =
        static_cast<ptrdiff_t>(reinterpret_cast<uint64_t>(B) -
                               A->dataAddress());
    volatile jni::jbyte V = mte::load<jni::jbyte>(Elems + Delta);
    (void)V;
    Main.env().ReleaseByteArrayElements(A, Elems, jni::JNI_ABORT);
    return 0;
  });
  EXPECT_EQ(S.faults().totalCount(), 0u)
      << "§4.1: within a shared granule the OOB access is invisible";
}

TEST(Alignment, SixteenByteAlignmentIsolatesObjects) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync; // default alignment: 16
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  EXPECT_EQ(S.runtime().heap().config().Alignment, 16u);

  // No neighbour's storage can start inside another payload's granule
  // now: every object starts on its own granule boundary.
  jni::jarray Prev = nullptr;
  for (int I = 0; I < 64; ++I) {
    jni::jarray Cur = Main.env().NewByteArray(Scope, 2);
    EXPECT_EQ(Cur->dataAddress() % 16, 0u);
    if (Prev) {
      uint64_t PrevPayloadGranule =
          support::alignDown(Prev->dataAddress(), mte::kGranuleSize);
      EXPECT_NE(support::alignDown(reinterpret_cast<uint64_t>(Cur),
                                   mte::kGranuleSize),
                PrevPayloadGranule);
    }
    Prev = Cur;
  }

  // And the equivalent cross-object access IS caught.
  jni::jarray A = Main.env().NewByteArray(Scope, 2);
  jni::jarray B = Main.env().NewByteArray(Scope, 2);
  rt::callNative(Main.thread(), rt::NativeKind::Regular, "cross", [&] {
    jni::jboolean IsCopy;
    auto Elems = Main.env().GetByteArrayElements(A, &IsCopy);
    ptrdiff_t Delta =
        static_cast<ptrdiff_t>(reinterpret_cast<uint64_t>(B) -
                               A->dataAddress());
    volatile jni::jbyte V = mte::load<jni::jbyte>(Elems + Delta);
    (void)V;
    Main.env().ReleaseByteArrayElements(A, Elems, jni::JNI_ABORT);
    return 0;
  });
  EXPECT_EQ(S.faults().countOf(mte::FaultKind::TagMismatchSync), 1u)
      << "with 16-byte alignment the cross-object access faults";
}

TEST(Alignment, SixteenByteFragmentationIsModest) {
  // §4.1 claims the internal fragmentation from 16-byte alignment is
  // negligible for typical object sizes. Quantify it for this heap.
  for (unsigned Alignment : {8u, 16u}) {
    api::SessionConfig C;
    C.Protection = api::Scheme::NoProtection;
    C.HeapAlignment = Alignment;
    api::Session S(C);
    api::ScopedAttach Main(S, "main");
    rt::HandleScope Scope(S.runtime());
    uint64_t Payload = 0;
    for (int I = 0; I < 100; ++I) {
      jni::jarray A =
          Main.env().NewIntArray(Scope, 64 + (I % 7)); // ~256 B objects
      Payload += A->dataBytes();
    }
    uint64_t Heap = S.runtime().heap().stats().BytesLive;
    double Overhead = double(Heap) / double(Payload);
    EXPECT_LT(Overhead, 1.15)
        << "alignment " << Alignment << " wastes too much";
  }
}

} // namespace

//===- mte_access_boundary_test.cpp - Region-boundary check behaviour -----------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Regression tests for the region-boundary bugs the fast-path rework
// exposed: accesses that begin BELOW a PROT_MTE region and extend into it,
// tails that run past a region's end, spans across adjacent regions, and
// the per-thread region cache + snapshot-reclamation machinery under
// register/unregister churn. Also pins SWAR/SIMD scan kernels to the
// scalar reference on randomised shadow contents.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/TaggedArena.h"

#include <gtest/gtest.h>

#include <atomic>
#include <random>
#include <thread>
#include <vector>

namespace {

using namespace mte4jni;
using mte::CheckMode;
using mte::kGranuleSize;
using mte::MteSystem;
using mte::TaggedPtr;
using mte::ThreadState;

class MteAccessBoundaryTest : public ::testing::Test {
protected:
  void SetUp() override {
    MteSystem::instance().reset();
    MteSystem::instance().setProcessCheckMode(CheckMode::Sync);
    ThreadState::current().setTco(false);
  }
  void TearDown() override { MteSystem::instance().reset(); }

  uint64_t faults() { return MteSystem::instance().faultLog().totalCount(); }
};

// An access that STARTS below the region and extends into it must still
// check the in-region granules. The seed's single find(Address) lookup
// resolved the (unregistered) first granule and skipped the check.
TEST_F(MteAccessBoundaryTest, ScalarAccessStartingBelowRegionFaults) {
  alignas(16) uint8_t Buf[64] = {};
  // Register only the upper half: [Buf+32, Buf+64).
  MteSystem::instance().registerRegion(Buf + 32, 32);
  auto R = TaggedPtr<uint8_t>::fromRaw(Buf + 32, 7);
  mte::setTagRange(R.cast<void>(), 32);

  // 8-byte store at Buf+28 covers [28, 36): granule 1 (unregistered,
  // unchecked) and granule 2 (in-region, tag 7). Pointer tag 3 != 7.
  auto P = TaggedPtr<uint64_t>::fromRaw(
      reinterpret_cast<uint64_t *>(Buf + 28), 3);
  mte::store<uint64_t>(P, 1);
  auto Faults = MteSystem::instance().faultLog().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  EXPECT_EQ(Faults[0].PointerTag, 3);
  EXPECT_EQ(Faults[0].MemoryTag, 7);

  // Same shape with the matching tag: clean, and exactly the one in-region
  // granule is counted as checked.
  uint64_t Before = ThreadState::current().checksPerformed();
  mte::store<uint64_t>(P.withTag(7), 2);
  EXPECT_EQ(ThreadState::current().checksPerformed() - Before, 1u);
  EXPECT_EQ(faults(), 1u);
  MteSystem::instance().unregisterRegion(Buf + 32);
}

TEST_F(MteAccessBoundaryTest, RangeStartingBelowRegionFaults) {
  alignas(16) uint8_t Buf[96] = {};
  MteSystem::instance().registerRegion(Buf + 48, 48);
  auto R = TaggedPtr<uint8_t>::fromRaw(Buf + 48, 9);
  mte::setTagRange(R.cast<void>(), 48);

  // Range [Buf+8, Buf+72): three granules below the region, granules 3..4
  // inside it. A mismatching pointer tag must fault on the first in-region
  // granule.
  auto P = TaggedPtr<void>::fromRaw(Buf + 8, 4);
  mte::fillBytes(P, 0xCD, 64);
  auto Faults = MteSystem::instance().faultLog().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  EXPECT_EQ(Faults[0].MemoryTag, 9);
  // The reported address is inside the access AND inside the region.
  EXPECT_GE(Faults[0].Address, reinterpret_cast<uint64_t>(Buf + 48));
  EXPECT_LT(Faults[0].Address, reinterpret_cast<uint64_t>(Buf + 72));

  // Matching tag: clean; only the two in-region granules are checked.
  uint64_t Before = ThreadState::current().checksPerformed();
  mte::fillBytes(P.withTag(9), 0xCD, 64);
  EXPECT_EQ(ThreadState::current().checksPerformed() - Before, 2u);
  EXPECT_EQ(faults(), 1u);
  MteSystem::instance().unregisterRegion(Buf + 48);
}

// A tail running PAST the region's end is unchecked, like any other
// non-PROT_MTE memory — hardware checks per granule against the page it
// lives in, and pages past the mapping are not PROT_MTE.
TEST_F(MteAccessBoundaryTest, TailPastRegionEndIsUnchecked) {
  alignas(16) uint8_t Buf[64] = {};
  MteSystem::instance().registerRegion(Buf, 32);
  auto R = TaggedPtr<uint8_t>::fromRaw(Buf, 5);
  mte::setTagRange(R.cast<void>(), 32);

  // Range [Buf+16, Buf+56): granule 1 in-region (tag 5, matches), granules
  // 2..3 past the end. No fault.
  mte::fillBytes(TaggedPtr<void>::fromRaw(Buf + 16, 5), 0xEE, 40);
  EXPECT_EQ(faults(), 0u);

  // Scalar flavour: 8-byte store at Buf+28 covers [28, 36) — granule 1
  // matches, granule 2 is out of region. Still clean.
  mte::store<uint64_t>(
      TaggedPtr<uint64_t>::fromRaw(reinterpret_cast<uint64_t *>(Buf + 28), 5),
      3);
  EXPECT_EQ(faults(), 0u);
  MteSystem::instance().unregisterRegion(Buf);
}

TEST_F(MteAccessBoundaryTest, SubGranuleSizesAtBoundaries) {
  alignas(16) uint8_t Buf[64] = {};
  MteSystem::instance().registerRegion(Buf + 16, 32);
  auto R = TaggedPtr<uint8_t>::fromRaw(Buf + 16, 6);
  mte::setTagRange(R.cast<void>(), 32);

  // 1-byte accesses hugging the region boundaries.
  mte::store<uint8_t>(TaggedPtr<uint8_t>::fromRaw(Buf + 15, 13), 1);
  EXPECT_EQ(faults(), 0u); // last byte below the region: unchecked
  mte::store<uint8_t>(TaggedPtr<uint8_t>::fromRaw(Buf + 16, 6), 1);
  EXPECT_EQ(faults(), 0u); // first in-region byte, matching tag
  mte::store<uint8_t>(TaggedPtr<uint8_t>::fromRaw(Buf + 47, 6), 1);
  EXPECT_EQ(faults(), 0u); // last in-region byte, matching tag
  mte::store<uint8_t>(TaggedPtr<uint8_t>::fromRaw(Buf + 48, 6), 1);
  EXPECT_EQ(faults(), 0u); // first byte past the end: unchecked

  mte::store<uint8_t>(TaggedPtr<uint8_t>::fromRaw(Buf + 47, 2), 1);
  EXPECT_EQ(faults(), 1u); // in-region, mismatching tag

  // A 2-byte access at Buf+47 straddles the region end: byte 47 checked
  // (matches), byte 48 unchecked.
  mte::store<uint16_t>(
      TaggedPtr<uint16_t>::fromRaw(reinterpret_cast<uint16_t *>(Buf + 47), 6),
      1);
  EXPECT_EQ(faults(), 1u);
  MteSystem::instance().unregisterRegion(Buf + 16);
}

TEST_F(MteAccessBoundaryTest, SpanAcrossAdjacentRegions) {
  alignas(16) uint8_t Buf[64] = {};
  MteSystem::instance().registerRegion(Buf, 32);
  MteSystem::instance().registerRegion(Buf + 32, 32);
  mte::setTagRange(TaggedPtr<void>::fromRaw(Buf, 8), 32);
  mte::setTagRange(TaggedPtr<void>::fromRaw(Buf + 32, 8), 32);

  // Both regions tagged 8: a range spanning the seam is clean and every
  // granule on both sides is checked.
  uint64_t Before = ThreadState::current().checksPerformed();
  mte::fillBytes(TaggedPtr<void>::fromRaw(Buf, 8), 0x11, 64);
  EXPECT_EQ(ThreadState::current().checksPerformed() - Before, 4u);
  EXPECT_EQ(faults(), 0u);

  // Scalar store straddling the seam.
  mte::store<uint64_t>(
      TaggedPtr<uint64_t>::fromRaw(reinterpret_cast<uint64_t *>(Buf + 28), 8),
      1);
  EXPECT_EQ(faults(), 0u);

  // Retag the second region: the same span must now fault on its side of
  // the seam.
  mte::setTagRange(TaggedPtr<void>::fromRaw(Buf + 32, 3), 32);
  mte::fillBytes(TaggedPtr<void>::fromRaw(Buf, 8), 0x22, 64);
  auto Faults = MteSystem::instance().faultLog().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  EXPECT_EQ(Faults[0].MemoryTag, 3);
  EXPECT_GE(Faults[0].Address, reinterpret_cast<uint64_t>(Buf + 32));
  MteSystem::instance().unregisterRegion(Buf);
  MteSystem::instance().unregisterRegion(Buf + 32);
}

// The per-thread region cache must be invalidated by unregister (stale
// epoch), and a re-registered region starts untagged.
TEST_F(MteAccessBoundaryTest, RegionCacheInvalidatedByUnregister) {
  mte::TaggedArena Arena(1 << 16);
  auto *Buf = static_cast<uint8_t *>(Arena.allocate(64));
  auto P = TaggedPtr<uint8_t>::fromRaw(Buf, 5);
  mte::setTagRange(P.cast<void>(), 64);

  // Populate the cache with a clean checked access.
  mte::store<uint8_t>(P, 1);
  EXPECT_EQ(faults(), 0u);

  // Drop the arena's region: the same (now dangling-tag) access must go
  // unchecked — a stale cache hit would wrongly keep checking tag 5.
  MteSystem::instance().unregisterRegion(reinterpret_cast<void *>(
      Arena.begin()));
  mte::store<uint8_t>(P.withTag(12), 2);
  EXPECT_EQ(faults(), 0u);

  // Re-register: shadow memory is fresh (all granule tags 0), so the old
  // tag-5 pointer now mismatches.
  MteSystem::instance().registerRegion(
      reinterpret_cast<void *>(Arena.begin()), Arena.capacity());
  mte::store<uint8_t>(P, 3);
  auto Faults = MteSystem::instance().faultLog().snapshot();
  ASSERT_EQ(Faults.size(), 1u);
  EXPECT_EQ(Faults[0].PointerTag, 5);
  EXPECT_EQ(Faults[0].MemoryTag, 0);
}

// Register/unregister churn with no pinned readers must not accumulate
// retired snapshots.
TEST_F(MteAccessBoundaryTest, RetiredSnapshotsStayBounded) {
  alignas(16) uint8_t Buf[256] = {};
  for (int I = 0; I < 200; ++I) {
    MteSystem::instance().registerRegion(Buf, 64);
    MteSystem::instance().registerRegion(Buf + 128, 64);
    MteSystem::instance().unregisterRegion(Buf + 128);
    MteSystem::instance().unregisterRegion(Buf);
  }
  // The quiescent main thread holds no pin, so at most the snapshots
  // retired since the last reclaim sweep linger.
  EXPECT_LE(MteSystem::instance().retiredSnapshotCount(), 2u);
}

// Checked loads racing register/unregister churn: the TSan job runs this
// to validate the epoch-based snapshot reclamation (a reader's pinned
// RegionList must never be freed under it). Matching tags throughout, so
// no faults regardless of interleaving.
TEST_F(MteAccessBoundaryTest, CheckedLoadsVsRegionChurn) {
  mte::TaggedArena Stable(1 << 16);
  auto *Buf = static_cast<uint8_t *>(Stable.allocate(256));
  auto P = TaggedPtr<uint8_t>::fromRaw(Buf, 7);
  mte::setTagRange(P.cast<void>(), 256);

  std::atomic<bool> Stop{false};
  std::vector<std::thread> Readers;
  for (int T = 0; T < 3; ++T) {
    Readers.emplace_back([&] {
      ThreadState::current().setTco(false);
      while (!Stop.load(std::memory_order_relaxed)) {
        for (int I = 0; I < 256; I += 16)
          (void)mte::load<uint8_t>(P + I);
        mte::checkReadRange(P.cast<const void>(), 256);
      }
    });
  }

  alignas(16) static uint8_t Churn[4096];
  for (int I = 0; I < 500; ++I) {
    MteSystem::instance().registerRegion(Churn, sizeof(Churn));
    MteSystem::instance().unregisterRegion(Churn);
  }
  Stop.store(true, std::memory_order_relaxed);
  for (auto &R : Readers)
    R.join();
  EXPECT_EQ(faults(), 0u);
}

// SWAR, SIMD and dispatch scan kernels agree with the scalar reference on
// randomised shadow contents, lengths and mismatch positions.
TEST_F(MteAccessBoundaryTest, ScanKernelsMatchScalarReference) {
  std::mt19937_64 Rng(0xB0A5u);
  for (int Trial = 0; Trial < 2000; ++Trial) {
    uint64_t Count = 1 + Rng() % 200;
    mte::TagValue Expected = static_cast<mte::TagValue>(Rng() & 0xF);
    std::vector<uint8_t> Tags(Count, Expected);
    // Sprinkle mismatches with ~25% probability per trial.
    if ((Rng() & 3u) == 0) {
      uint64_t Flips = 1 + Rng() % 3;
      for (uint64_t F = 0; F < Flips; ++F)
        Tags[Rng() % Count] = static_cast<uint8_t>((Expected + 1) & 0xF);
    }
    uint64_t Ref = mte::detail::scanMismatchScalar(Tags.data(), Count, Expected);
    EXPECT_EQ(mte::detail::scanMismatchSwar(Tags.data(), Count, Expected), Ref);
    EXPECT_EQ(mte::detail::scanMismatch(Tags.data(), Count, Expected), Ref);
  }
}

// Unaligned scan starts: kernels must honour arbitrary base offsets (the
// region fast path hands them Tags + FirstIdx).
TEST_F(MteAccessBoundaryTest, ScanKernelsHandleUnalignedStarts) {
  std::vector<uint8_t> Tags(128, 11);
  Tags[97] = 4;
  for (uint64_t Off = 0; Off < 64; ++Off) {
    uint64_t Ref =
        mte::detail::scanMismatchScalar(Tags.data() + Off, 128 - Off, 11);
    EXPECT_EQ(mte::detail::scanMismatchSwar(Tags.data() + Off, 128 - Off, 11),
              Ref);
    EXPECT_EQ(mte::detail::scanMismatch(Tags.data() + Off, 128 - Off, 11),
              Ref);
  }
}

} // namespace

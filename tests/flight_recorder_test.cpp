//===- flight_recorder_test.cpp - Per-thread flight recorder -------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/core/TagAllocator.h"
#include "mte4jni/mte/TaggedArena.h"
#include "mte4jni/support/TraceRing.h"

#include <gtest/gtest.h>

#include <string>
#include <thread>

namespace {

using namespace mte4jni;
using support::FlightKind;
using support::FlightRecorder;
using support::FlightScope;

class FlightTest : public ::testing::Test {
protected:
  void SetUp() override {
    support::Metrics::resetAll();
    FlightRecorder::clear();
    support::obs::setLevel(2);
  }
  void TearDown() override {
    support::obs::setLevel(1); // restore the process default
    FlightRecorder::clear();
    support::Metrics::resetAll();
  }
};

/// Structural well-formedness: balanced braces/brackets outside strings.
bool jsonStructurallyValid(const std::string &Text) {
  std::vector<char> Stack;
  bool InString = false, Escaped = false;
  for (char C : Text) {
    if (InString) {
      if (Escaped)
        Escaped = false;
      else if (C == '\\')
        Escaped = true;
      else if (C == '"')
        InString = false;
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      Stack.push_back(C);
      break;
    case '}':
      if (Stack.empty() || Stack.back() != '{')
        return false;
      Stack.pop_back();
      break;
    case ']':
      if (Stack.empty() || Stack.back() != '[')
        return false;
      Stack.pop_back();
      break;
    default:
      break;
    }
  }
  return !InString && Stack.empty();
}

TEST_F(FlightTest, RecordedEventsExportAsChromeSlices) {
  FlightRecorder::setThreadLabel("flight-test-main");
  FlightRecorder::record(FlightKind::CheckScan, /*Arg=*/3, /*Arg2=*/128,
                         /*StartNanos=*/1000, /*DurNanos=*/250);
  FlightRecorder::record(FlightKind::GcPhase,
                         static_cast<uint8_t>(support::GcFlightPhase::Mark), 0,
                         2000, 500);

  std::string Json = FlightRecorder::exportChromeJson();
  EXPECT_TRUE(jsonStructurallyValid(Json)) << Json;
  EXPECT_NE(Json.find("\"traceEvents\":["), std::string::npos);
  EXPECT_NE(Json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(Json.find("Access.checkRange:avx2"), std::string::npos);
  EXPECT_NE(Json.find("\"arg2\":128"), std::string::npos);
  EXPECT_NE(Json.find("GC.mark"), std::string::npos);
  EXPECT_NE(Json.find("flight-test-main"), std::string::npos);
  EXPECT_NE(Json.find("\"droppedEvents\":0"), std::string::npos);
  EXPECT_GE(FlightRecorder::eventCount(), 2u);
}

TEST_F(FlightTest, RingWrapKeepsNewestAndCountsDropped) {
  const uint64_t Overfill = FlightRecorder::kRingEvents + 500;
  uint64_t Base = FlightRecorder::totalRecorded();
  for (uint64_t I = 0; I < Overfill; ++I)
    FlightRecorder::record(FlightKind::TlabRefill, 0,
                           static_cast<uint32_t>(I), 1000 + I, 10);
  EXPECT_GE(FlightRecorder::totalRecorded(), Base + Overfill);
  // This thread's ring retains at most kRingEvents of them.
  std::string Json = FlightRecorder::exportChromeJson();
  EXPECT_EQ(Json.find("\"droppedEvents\":0"), std::string::npos) << Json;
  EXPECT_TRUE(jsonStructurallyValid(Json));
}

TEST_F(FlightTest, OffLevelArmsNothing) {
  support::obs::setLevel(0);
  uint64_t Before = FlightRecorder::totalRecorded();
  for (int I = 0; I < 1000; ++I) {
    FlightScope Scope(FlightKind::TagAcquire);
    EXPECT_FALSE(Scope.armed());
  }
  EXPECT_FALSE(support::obs::coldArmed());
  EXPECT_FALSE(support::obs::armSampled());
  EXPECT_EQ(FlightRecorder::totalRecorded(), Before);
}

TEST_F(FlightTest, SampledLevelRecordsASubset) {
  support::obs::setLevel(1);
  uint64_t Before = FlightRecorder::totalRecorded();
  constexpr int kScopes = 6400; // ~100 expected at 1/64
  for (int I = 0; I < kScopes; ++I)
    FlightScope Scope(FlightKind::TagAcquire);
  uint64_t Recorded = FlightRecorder::totalRecorded() - Before;
  EXPECT_GT(Recorded, 0u);
  EXPECT_LT(Recorded, uint64_t(kScopes) / 4);
}

TEST_F(FlightTest, SessionWorkloadCoversThreeSubsystems) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  C.TraceMode = support::FlightMode::Full;
  api::Session S(C);
  api::ScopedAttach Main(S, "flight-main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray A = Main.env().NewIntArray(Scope, 256);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "flight_native",
                 [&] {
                   jni::jboolean IsCopy;
                   auto P = Main.env().GetIntArrayElements(A, &IsCopy);
                   Main.env().ReleaseIntArrayElements(A, P, 0);
                   return 0;
                 });
  S.runtime().gc().collect();

  std::string Json = FlightRecorder::exportChromeJson();
  EXPECT_TRUE(jsonStructurallyValid(Json)) << Json;
  // Slices from three subsystems on one timeline: the JNI crossing, the
  // tag-table acquire/release, and the GC phases.
  EXPECT_NE(Json.find("\"cat\":\"jni\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\":\"core/tagtable\""), std::string::npos);
  EXPECT_NE(Json.find("\"cat\":\"rt/gc\""), std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"JNI.call\""), std::string::npos);
  EXPECT_NE(Json.find("GC.collect"), std::string::npos);
  EXPECT_NE(Json.find("flight-main"), std::string::npos);

  // writeTraceJson writes exactly that document.
  std::string Path = ::testing::TempDir() + "/flight_trace.json";
  ASSERT_TRUE(S.writeTraceJson(Path));
  std::FILE *F = std::fopen(Path.c_str(), "rb");
  ASSERT_NE(F, nullptr);
  std::string FromDisk;
  char Buf[4096];
  size_t N;
  while ((N = std::fread(Buf, 1, sizeof(Buf), F)) > 0)
    FromDisk.append(Buf, N);
  std::fclose(F);
  std::remove(Path.c_str());
  EXPECT_TRUE(jsonStructurallyValid(FromDisk));
  EXPECT_NE(FromDisk.find("\"ph\":\"X\""), std::string::npos);

  // The latency histograms behind the trace are populated and summarized.
  support::MetricsSnapshot Snap = S.metricsSnapshot();
  const support::HistogramSample *Acq = Snap.histogram("jni/acquire_nanos");
  ASSERT_NE(Acq, nullptr);
  EXPECT_GT(Acq->Count, 0u);
  EXPECT_GT(Acq->percentileUpperBound(99.9), 0u);
  const support::HistogramSample *Rel = Snap.histogram("jni/release_nanos");
  ASSERT_NE(Rel, nullptr);
  EXPECT_GT(Rel->Count, 0u);
}

TEST_F(FlightTest, SlowReasonCountersExplainLockFreeSlowPath) {
  static mte::TaggedArena Arena(1ull << 20);

  // Exact mode (DeferredTagClear off) — the paper's Algorithm 2 verbatim:
  // a single-holder round trip is a 0->1 acquire (must tag under the
  // shard mutex) and a 1->0 release (must clear tags under it), so the
  // fast path never fires and the reason counters say why. The very first
  // acquire probes a not-yet-existing slot (slot_cold); the remaining 99
  // see the slot at refcount 0 (first_holder).
  {
    core::TagAllocatorOptions Options;
    Options.Locks = core::TagTableKind::LockFree;
    Options.DeferredTagClear = false;
    core::TagAllocator Alloc(Options);
    void *Buf = Arena.allocate(4096);
    uint64_t Begin = reinterpret_cast<uint64_t>(Buf);
    support::MetricsSnapshot Before = support::Metrics::snapshot();
    for (int I = 0; I < 100; ++I) {
      Alloc.acquire(Begin, Begin + 4096);
      Alloc.release(Begin, Begin + 4096);
    }
    Arena.deallocate(Buf);
    support::MetricsSnapshot Snap = support::Metrics::snapshot();
    auto Delta = [&](const char *Name) {
      return Snap.counterValue(Name) - Before.counterValue(Name);
    };
    EXPECT_EQ(Delta("core/tagtable/lockfree/acquire_fast"), 0u);
    EXPECT_GE(Delta("core/tagtable/slow_reason/slot_cold"), 1u);
    EXPECT_GE(Delta("core/tagtable/slow_reason/first_holder"), 99u);
    EXPECT_GE(Delta("core/tagtable/slow_reason/last_holder"), 100u);
    // Direct release calls carry no pin-cache hint, so the secondary
    // pin_cache_miss signal fires alongside each primary reason.
    EXPECT_GE(Delta("core/tagtable/slow_reason/pin_cache_miss"), 100u);
    EXPECT_EQ(Delta("core/tagtable/slow_reason/orphan"), 0u);
  }

  // Deferred mode (the default): the same single-holder loop is a pure
  // CAS round trip after the cold first acquire — the lingering state
  // turns what used to be first_holder/last_holder mutex trips into warm
  // fast-path hits, and the attribution subsets record that.
  {
    core::TagAllocator Alloc(core::TagTableKind::LockFree);
    void *Buf = Arena.allocate(4096);
    uint64_t Begin = reinterpret_cast<uint64_t>(Buf);
    support::MetricsSnapshot Before = support::Metrics::snapshot();
    for (int I = 0; I < 100; ++I) {
      Alloc.acquire(Begin, Begin + 4096);
      Alloc.release(Begin, Begin + 4096);
    }
    support::MetricsSnapshot Snap = support::Metrics::snapshot();
    auto Delta = [&](const char *Name) {
      return Snap.counterValue(Name) - Before.counterValue(Name);
    };
    EXPECT_EQ(Delta("core/tagtable/lockfree/acquire_slow"), 1u);
    EXPECT_GE(Delta("core/tagtable/lockfree/acquire_fast"), 99u);
    EXPECT_GE(Delta("core/tagtable/lockfree/acquire_warm"), 99u);
    EXPECT_GE(Delta("core/tagtable/lockfree/release_fast"), 100u);
    EXPECT_GE(Delta("core/tagtable/lockfree/release_deferred"), 100u);
    EXPECT_EQ(Delta("core/tagtable/slow_reason/last_holder"), 0u);
    Alloc.reclaimAll(); // drain the lingering tags before the arena frees
    Arena.deallocate(Buf);
  }
}

TEST_F(FlightTest, ThreadLanesGetDistinctTids) {
  FlightRecorder::setThreadLabel("lane-a");
  FlightRecorder::record(FlightKind::TlabRefill, 0, 1, 100, 1);
  std::thread Other([] {
    FlightRecorder::setThreadLabel("lane-b");
    FlightRecorder::record(FlightKind::TlabRefill, 0, 2, 200, 1);
  });
  Other.join();
  std::string Json = FlightRecorder::exportChromeJson();
  EXPECT_NE(Json.find("lane-a"), std::string::npos);
  EXPECT_NE(Json.find("lane-b"), std::string::npos);
  // Both lanes' metadata exists; the two thread_name records carry
  // different tids by construction (registration order).
  size_t First = Json.find("\"name\":\"thread_name\"");
  ASSERT_NE(First, std::string::npos);
  EXPECT_NE(Json.find("\"name\":\"thread_name\"", First + 1),
            std::string::npos);
}

} // namespace

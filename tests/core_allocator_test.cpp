//===- core_allocator_test.cpp - Algorithm 1/2 semantics --------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the paper's tag allocation (Algorithm 1) and release
// (Algorithm 2): reference counting, tag sharing between concurrent
// holders, tag clearing when the last holder releases, and both lock
// schemes under contention.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/core/TagAllocator.h"
#include "mte4jni/core/TagTable.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/TaggedArena.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace {

using namespace mte4jni;
using core::LockScheme;
using core::TagAllocator;
using core::TagTable;
using mte::MteSystem;

class TagAllocatorTest : public ::testing::TestWithParam<LockScheme> {
protected:
  void SetUp() override {
    MteSystem::instance().reset();
    Arena = std::make_unique<mte::TaggedArena>(4 << 20);
  }
  void TearDown() override {
    Arena.reset();
    MteSystem::instance().reset();
  }

  uint64_t allocRange(uint64_t Bytes) {
    void *P = Arena->allocate(Bytes);
    EXPECT_NE(P, nullptr);
    return reinterpret_cast<uint64_t>(P);
  }

  std::unique_ptr<mte::TaggedArena> Arena;
};

/// Options for the paper's exact Algorithm 2 semantics: the last release
/// clears granule tags immediately. The tests that assert clear-on-release
/// behaviour use this; deferred-clear semantics get their own tests below.
core::TagAllocatorOptions exactOptions(LockScheme Scheme,
                                       unsigned NumTables = 16,
                                       bool EraseDeadEntries = false) {
  core::TagAllocatorOptions Options;
  Options.Locks = Scheme;
  Options.NumTables = NumTables;
  Options.EraseDeadEntries = EraseDeadEntries;
  Options.DeferredTagClear = false;
  return Options;
}

TEST_P(TagAllocatorTest, FirstAcquireGeneratesAndAppliesTag) {
  TagAllocator Alloc(GetParam());
  uint64_t Begin = allocRange(64);

  uint64_t Bits = Alloc.acquire(Begin, Begin + 64);
  mte::TagValue Tag = mte::pointerTagOf(Bits);
  EXPECT_NE(Tag, 0); // GCR excludes 0
  EXPECT_EQ(mte::addressOf(Bits), Begin);
  // Every granule got the tag.
  for (int G = 0; G < 4; ++G)
    EXPECT_EQ(mte::ldgTag(Begin + G * 16), Tag);

  EXPECT_EQ(Alloc.stats().TagsGenerated.value(), 1u);
  EXPECT_EQ(Alloc.stats().TagsShared.value(), 0u);
}

TEST_P(TagAllocatorTest, SecondAcquireSharesTheTag) {
  TagAllocator Alloc(exactOptions(GetParam()));
  uint64_t Begin = allocRange(128);

  uint64_t Bits1 = Alloc.acquire(Begin, Begin + 128);
  uint64_t Bits2 = Alloc.acquire(Begin, Begin + 128);
  EXPECT_EQ(Bits1, Bits2); // same tag, same address
  EXPECT_EQ(Alloc.stats().TagsGenerated.value(), 1u);
  EXPECT_EQ(Alloc.stats().TagsShared.value(), 1u);

  // Releasing once keeps the tag (refcount 2 -> 1).
  Alloc.release(Begin, Begin + 128);
  EXPECT_EQ(mte::ldgTag(Begin), mte::pointerTagOf(Bits1));
  EXPECT_EQ(Alloc.stats().TagsCleared.value(), 0u);

  // Last release clears it.
  Alloc.release(Begin, Begin + 128);
  EXPECT_EQ(mte::ldgTag(Begin), 0);
  EXPECT_EQ(Alloc.stats().TagsCleared.value(), 1u);
}

TEST_P(TagAllocatorTest, ReleaseWithoutAcquireIsANoOp) {
  TagAllocator Alloc(GetParam());
  uint64_t Begin = allocRange(32);
  Alloc.release(Begin, Begin + 32);
  EXPECT_EQ(Alloc.stats().OrphanReleases.value(), 1u);
  EXPECT_EQ(Alloc.stats().TagsCleared.value(), 0u);
}

TEST_P(TagAllocatorTest, DoubleReleaseIsTolerated) {
  TagAllocator Alloc(exactOptions(GetParam()));
  uint64_t Begin = allocRange(32);
  Alloc.acquire(Begin, Begin + 32);
  Alloc.release(Begin, Begin + 32);
  Alloc.release(Begin, Begin + 32); // entry gone or count already 0
  EXPECT_EQ(Alloc.stats().TagsCleared.value(), 1u);
}

TEST_P(TagAllocatorTest, EntryKeptByDefaultErasedOnRequest) {
  // Algorithm 2 as published leaves the tuple in place for reuse...
  TagAllocator Keep(GetParam());
  uint64_t Begin = allocRange(32);
  Keep.acquire(Begin, Begin + 32);
  EXPECT_EQ(Keep.table().occupiedEntries(), 1u);
  Keep.release(Begin, Begin + 32);
  EXPECT_EQ(Keep.table().occupiedEntries(), 1u);
  // ...but the allocator can be asked to trim dead entries (exact mode:
  // a deferred release never reaches the erase path by design).
  TagAllocator Erase(exactOptions(GetParam(), 16, /*EraseDeadEntries=*/true));
  Erase.acquire(Begin, Begin + 32);
  Erase.release(Begin, Begin + 32);
  EXPECT_EQ(Erase.table().occupiedEntries(), 0u);
}

TEST_P(TagAllocatorTest, UseAfterReleaseFaults) {
  // Algorithm 2's motivation: clearing tags makes dangling tagged
  // pointers detectable.
  MteSystem::instance().setProcessCheckMode(mte::CheckMode::Sync);
  mte::ThreadState::current().setTco(false);

  TagAllocator Alloc(exactOptions(GetParam()));
  uint64_t Begin = allocRange(64);
  uint64_t Bits = Alloc.acquire(Begin, Begin + 64);
  auto P = mte::TaggedPtr<int32_t>::fromBits(Bits);

  mte::store<int32_t>(P, 42);
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 0u);

  Alloc.release(Begin, Begin + 64);
  mte::store<int32_t>(P, 43); // dangling tagged pointer
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 1u);
}

TEST_P(TagAllocatorTest, DistinctObjectsGetIndependentTags) {
  TagAllocator Alloc(exactOptions(GetParam()));
  // With 4-bit tags collisions are expected; just verify independence of
  // refcounts and ranges.
  uint64_t A = allocRange(64);
  uint64_t B = allocRange(64);
  uint64_t BitsA = Alloc.acquire(A, A + 64);
  uint64_t BitsB = Alloc.acquire(B, B + 64);
  Alloc.release(A, A + 64);
  // A's tags cleared, B's intact.
  EXPECT_EQ(mte::ldgTag(A), 0);
  EXPECT_EQ(mte::ldgTag(B), mte::pointerTagOf(BitsB));
  Alloc.release(B, B + 64);
  EXPECT_EQ(mte::ldgTag(B), 0);
  (void)BitsA;
}

TEST_P(TagAllocatorTest, ConcurrentAcquireReleaseOnSameObject) {
  TagAllocator Alloc(GetParam(), 16, /*EraseDeadEntries=*/true);
  uint64_t Begin = allocRange(4096);

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&] {
      for (int I = 0; I < kIters; ++I) {
        uint64_t Bits = Alloc.acquire(Begin, Begin + 4096);
        // While held, the granule tag must equal our pointer tag.
        ASSERT_EQ(mte::ldgTag(Begin), mte::pointerTagOf(Bits));
        Alloc.release(Begin, Begin + 4096);
      }
    });
  }
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Alloc.stats().Acquires.value(), uint64_t(kThreads) * kIters);
  EXPECT_EQ(Alloc.stats().Releases.value(), uint64_t(kThreads) * kIters);
  // Deferred clear (on by default for the lock-free kind) may leave the
  // last release's tags lingering; drain before the exactness asserts.
  Alloc.reclaimAll();
  EXPECT_EQ(Alloc.table().liveEntries(), 0u);
  EXPECT_EQ(mte::ldgTag(Begin), 0);
  // Shared + generated must cover all acquires.
  EXPECT_EQ(Alloc.stats().TagsGenerated.value() +
                Alloc.stats().TagsShared.value(),
            uint64_t(kThreads) * kIters);
  // Every generated tag is eventually cleared once resident tags drain.
  EXPECT_EQ(Alloc.stats().TagsGenerated.value(),
            Alloc.stats().TagsCleared.value());
}

TEST_P(TagAllocatorTest, ConcurrentDisjointObjects) {
  TagAllocator Alloc(GetParam(), 16, /*EraseDeadEntries=*/true);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;

  std::vector<uint64_t> Ranges;
  for (int T = 0; T < kThreads; ++T)
    Ranges.push_back(allocRange(1024));

  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&, T] {
      uint64_t Begin = Ranges[static_cast<size_t>(T)];
      for (int I = 0; I < kIters; ++I) {
        uint64_t Bits = Alloc.acquire(Begin, Begin + 1024);
        ASSERT_EQ(mte::ldgTag(Begin + 512), mte::pointerTagOf(Bits));
        Alloc.release(Begin, Begin + 1024);
      }
    });
  }
  for (auto &T : Threads)
    T.join();
  Alloc.reclaimAll();
  EXPECT_EQ(Alloc.table().liveEntries(), 0u);
}

INSTANTIATE_TEST_SUITE_P(LockSchemes, TagAllocatorTest,
                         ::testing::Values(core::TagTableKind::LockFree,
                                           LockScheme::TwoTier,
                                           LockScheme::GlobalLock),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case core::TagTableKind::LockFree:
                             return "LockFree";
                           case core::TagTableKind::TwoTierMutex:
                             return "TwoTier";
                           default:
                             return "GlobalLock";
                           }
                         });

// ---- TagTable-specific behaviour -------------------------------------------

TEST(TagTableTest, ShardIndexMatchesAlgorithm1) {
  TagTable Table(16);
  // (begin / 16) mod 16
  EXPECT_EQ(Table.shardIndexOf(0x0), 0u);
  EXPECT_EQ(Table.shardIndexOf(0x10), 1u);
  EXPECT_EQ(Table.shardIndexOf(0xF0), 15u);
  EXPECT_EQ(Table.shardIndexOf(0x100), 0u);
  EXPECT_EQ(Table.shardIndexOf(0x130), 3u);
}

TEST(TagTableTest, LookupOrCreateIsIdempotent) {
  TagTable Table(16);
  auto A = Table.lookupOrCreate(0x1000);
  auto B = Table.lookupOrCreate(0x1000);
  EXPECT_EQ(A.get(), B.get());
  // Structural occupancy: the entry exists even though nobody holds it
  // yet (liveEntries would be 0 here — it counts holders, not storage).
  EXPECT_EQ(Table.occupiedEntries(), 1u);
  EXPECT_EQ(Table.liveEntries(), 0u);
  EXPECT_EQ(Table.stats().Creates, 1u);
}

TEST(TagTableTest, EraseIfDeadRespectsRefCount) {
  TagTable Table(16);
  auto E = Table.lookupOrCreate(0x2000);
  E->RefCount = 1;
  Table.eraseIfDead(0x2000);
  EXPECT_EQ(Table.liveEntries(), 1u); // still referenced
  E->RefCount = 0;
  Table.eraseIfDead(0x2000);
  EXPECT_EQ(Table.liveEntries(), 0u);
}

TEST(TagTableTest, StatsAccountingIsExactTwoTier) {
  // The documented rules: every keyed operation that consults a shard
  // under its table lock counts exactly one Lookup (including eraseIfDead,
  // which historically counted none); Creates/Erases one per entry.
  TagTable Table(4);
  Table.lookupOrCreate(0x1000); // Lookups 1, Creates 1
  Table.lookupOrCreate(0x1000); // Lookups 2
  Table.lookup(0x1000);         // Lookups 3
  Table.lookup(0x2000);         // Lookups 4 — a miss is still one lookup
  Table.eraseIfDead(0x1000);    // Lookups 5, Erases 1 (refcount is 0)
  Table.eraseIfDead(0x1000);    // Lookups 6 — absent, nothing to erase
  core::TagTableStats S = Table.stats();
  EXPECT_EQ(S.Lookups, 6u);
  EXPECT_EQ(S.Creates, 1u);
  EXPECT_EQ(S.Erases, 1u);
}

TEST(TagTableTest, StatsAccountingIsExactLockFree) {
  TagTable Table(1, core::TagTableKind::LockFree, 64);
  {
    auto Lock = Table.lockShard(0x1000);
    ASSERT_NE(Table.slotLocked(0x1000, /*Create=*/true, Lock),
              nullptr);                              // Lookups 1, Creates 1
    Table.slotLocked(0x1000, /*Create=*/true, Lock); // Lookups 2
  }
  Table.eraseIfDead(0x1000); // Lookups 3, Erases 1 (tombstone)
  Table.eraseIfDead(0x1000); // Lookups 4 — already tombstoned
  core::TagTableStats S = Table.stats();
  EXPECT_EQ(S.Lookups, 4u);
  EXPECT_EQ(S.Creates, 1u);
  EXPECT_EQ(S.Erases, 1u);
}

TEST(TagTableTest, WorksWithNonDefaultTableCounts) {
  for (unsigned K : {1u, 2u, 7u, 64u}) {
    TagTable Table(K);
    for (uint64_t Addr = 0; Addr < 64 * 16; Addr += 16)
      Table.lookupOrCreate(Addr);
    EXPECT_EQ(Table.occupiedEntries(), 64u);
  }
}

// ---- Deferred tag-clear (lingering) semantics ------------------------------

class DeferredTagClearTest : public ::testing::Test {
protected:
  void SetUp() override {
    MteSystem::instance().reset();
    Arena = std::make_unique<mte::TaggedArena>(4 << 20);
  }
  void TearDown() override {
    Arena.reset();
    MteSystem::instance().reset();
  }

  uint64_t allocRange(uint64_t Bytes) {
    void *P = Arena->allocate(Bytes);
    EXPECT_NE(P, nullptr);
    return reinterpret_cast<uint64_t>(P);
  }

  std::unique_ptr<mte::TaggedArena> Arena;
};

TEST_F(DeferredTagClearTest, ReleaseLeavesTagsResidentUntilReclaim) {
  // Deferral is the lock-free default.
  TagAllocator Alloc(core::TagTableKind::LockFree);
  ASSERT_TRUE(Alloc.deferredTagClear());
  uint64_t Begin = allocRange(64);

  uint64_t Bits = Alloc.acquire(Begin, Begin + 64);
  // The first holder's publish charges the budget for the tags' whole
  // residency, so the charge is visible from the acquire onward.
  EXPECT_EQ(Alloc.table().residentBytes(), 64u);
  Alloc.release(Begin, Begin + 64);
  // Lingering: tags in place, bytes still charged, nothing cleared yet.
  EXPECT_EQ(mte::ldgTag(Begin), mte::pointerTagOf(Bits));
  EXPECT_EQ(Alloc.table().residentBytes(), 64u);
  EXPECT_EQ(Alloc.stats().TagsCleared.value(), 0u);

  // Warm re-acquire: same tag, shared (not regenerated). The charge stays
  // in place — only clearing the tags refunds it — which is what keeps
  // the warm cycle down to one CAS per direction.
  uint64_t Bits2 = Alloc.acquire(Begin, Begin + 64);
  EXPECT_EQ(Bits2, Bits);
  EXPECT_EQ(Alloc.stats().TagsGenerated.value(), 1u);
  EXPECT_EQ(Alloc.stats().TagsShared.value(), 1u);
  EXPECT_EQ(Alloc.table().residentBytes(), 64u);
  Alloc.release(Begin, Begin + 64);

  // Reclaim drains the lingering state and settles the clear accounting.
  EXPECT_EQ(Alloc.reclaimAll(), 1u);
  EXPECT_EQ(mte::ldgTag(Begin), 0);
  EXPECT_EQ(Alloc.table().residentBytes(), 0u);
  EXPECT_EQ(Alloc.stats().TagsCleared.value(), 1u);
  EXPECT_EQ(Alloc.table().liveEntries(), 0u);
}

TEST_F(DeferredTagClearTest, ReclaimRangeTargetsOneKey) {
  TagAllocator Alloc(core::TagTableKind::LockFree);
  uint64_t A = allocRange(64);
  uint64_t B = allocRange(64);
  uint64_t BitsA = Alloc.acquire(A, A + 64);
  uint64_t BitsB = Alloc.acquire(B, B + 64);
  Alloc.release(A, A + 64);
  Alloc.release(B, B + 64);

  EXPECT_TRUE(Alloc.reclaimRange(A, A + 64));
  EXPECT_EQ(mte::ldgTag(A), 0);
  EXPECT_EQ(mte::ldgTag(B), mte::pointerTagOf(BitsB)); // B still lingers
  EXPECT_FALSE(Alloc.reclaimRange(A, A + 64)); // nothing left to reclaim
  EXPECT_TRUE(Alloc.reclaimRange(B, B + 64));
  EXPECT_EQ(mte::ldgTag(B), 0);
  (void)BitsA;
}

TEST_F(DeferredTagClearTest, ReclaimLeavesHeldRangesAlone) {
  TagAllocator Alloc(core::TagTableKind::LockFree);
  uint64_t Begin = allocRange(64);
  uint64_t Bits = Alloc.acquire(Begin, Begin + 64);
  EXPECT_FALSE(Alloc.reclaimRange(Begin, Begin + 64)); // held, not lingering
  EXPECT_EQ(mte::ldgTag(Begin), mte::pointerTagOf(Bits));
  Alloc.release(Begin, Begin + 64);
}

TEST_F(DeferredTagClearTest, DisabledReproducesExactAlgorithm2) {
  core::TagAllocatorOptions Options;
  Options.Locks = core::TagTableKind::LockFree;
  Options.DeferredTagClear = false;
  TagAllocator Alloc(Options);
  ASSERT_FALSE(Alloc.deferredTagClear());
  uint64_t Begin = allocRange(64);

  Alloc.acquire(Begin, Begin + 64);
  Alloc.release(Begin, Begin + 64);
  // Exact semantics: the last release cleared the tags synchronously.
  EXPECT_EQ(mte::ldgTag(Begin), 0);
  EXPECT_EQ(Alloc.table().residentBytes(), 0u);
  EXPECT_EQ(Alloc.stats().TagsCleared.value(), 1u);
  EXPECT_EQ(Alloc.reclaimAll(), 0u); // nothing ever lingers
}

TEST_F(DeferredTagClearTest, BudgetOverflowFallsBackToExactClear) {
  core::TagAllocatorOptions Options;
  Options.Locks = core::TagTableKind::LockFree;
  Options.NumTables = 1; // one shard, so the budget is not split
  Options.MaxResidentBytes = 100; // fits one 64-byte range, not two
  TagAllocator Alloc(Options);

  uint64_t A = allocRange(64);
  uint64_t B = allocRange(64);
  uint64_t BitsA = Alloc.acquire(A, A + 64);
  Alloc.release(A, A + 64); // defers: resident 64 <= 100
  EXPECT_EQ(mte::ldgTag(A), mte::pointerTagOf(BitsA));
  EXPECT_EQ(Alloc.table().residentBytes(), 64u);

  // B's publish pushes the shard to 128 resident bytes, over budget: its
  // release falls back to the exact clear (and refunds B's charge).
  Alloc.acquire(B, B + 64);
  EXPECT_EQ(Alloc.table().residentBytes(), 128u);
  Alloc.release(B, B + 64);
  EXPECT_EQ(mte::ldgTag(B), 0);
  EXPECT_EQ(Alloc.table().residentBytes(), 64u);
  EXPECT_EQ(Alloc.stats().TagsCleared.value(), 1u);
}

TEST_F(DeferredTagClearTest, UseAfterReleaseDetectedOnceReclaimed) {
  MteSystem::instance().setProcessCheckMode(mte::CheckMode::Sync);
  mte::ThreadState::current().setTco(false);

  TagAllocator Alloc(core::TagTableKind::LockFree);
  uint64_t Begin = allocRange(64);
  uint64_t Bits = Alloc.acquire(Begin, Begin + 64);
  auto P = mte::TaggedPtr<int32_t>::fromBits(Bits);

  Alloc.release(Begin, Begin + 64);
  // The documented detection gap: inside the lingering window a dangling
  // tagged pointer still matches. This is the tradeoff DeferredTagClear
  // buys speed with (and why the heap's free/sweep hook is mandatory).
  mte::store<int32_t>(P, 42);
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 0u);

  // Once reclaimed — the freed-object hook path — the access faults.
  ASSERT_TRUE(Alloc.reclaimRange(Begin, Begin + 64));
  mte::store<int32_t>(P, 43);
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 1u);
}

} // namespace

//===- core_allocator_test.cpp - Algorithm 1/2 semantics --------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Unit tests for the paper's tag allocation (Algorithm 1) and release
// (Algorithm 2): reference counting, tag sharing between concurrent
// holders, tag clearing when the last holder releases, and both lock
// schemes under contention.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/core/TagAllocator.h"
#include "mte4jni/core/TagTable.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/TaggedArena.h"

#include <gtest/gtest.h>

#include <thread>
#include <vector>

namespace {

using namespace mte4jni;
using core::LockScheme;
using core::TagAllocator;
using core::TagTable;
using mte::MteSystem;

class TagAllocatorTest : public ::testing::TestWithParam<LockScheme> {
protected:
  void SetUp() override {
    MteSystem::instance().reset();
    Arena = std::make_unique<mte::TaggedArena>(4 << 20);
  }
  void TearDown() override {
    Arena.reset();
    MteSystem::instance().reset();
  }

  uint64_t allocRange(uint64_t Bytes) {
    void *P = Arena->allocate(Bytes);
    EXPECT_NE(P, nullptr);
    return reinterpret_cast<uint64_t>(P);
  }

  std::unique_ptr<mte::TaggedArena> Arena;
};

TEST_P(TagAllocatorTest, FirstAcquireGeneratesAndAppliesTag) {
  TagAllocator Alloc(GetParam());
  uint64_t Begin = allocRange(64);

  uint64_t Bits = Alloc.acquire(Begin, Begin + 64);
  mte::TagValue Tag = mte::pointerTagOf(Bits);
  EXPECT_NE(Tag, 0); // GCR excludes 0
  EXPECT_EQ(mte::addressOf(Bits), Begin);
  // Every granule got the tag.
  for (int G = 0; G < 4; ++G)
    EXPECT_EQ(mte::ldgTag(Begin + G * 16), Tag);

  EXPECT_EQ(Alloc.stats().TagsGenerated.load(), 1u);
  EXPECT_EQ(Alloc.stats().TagsShared.load(), 0u);
}

TEST_P(TagAllocatorTest, SecondAcquireSharesTheTag) {
  TagAllocator Alloc(GetParam());
  uint64_t Begin = allocRange(128);

  uint64_t Bits1 = Alloc.acquire(Begin, Begin + 128);
  uint64_t Bits2 = Alloc.acquire(Begin, Begin + 128);
  EXPECT_EQ(Bits1, Bits2); // same tag, same address
  EXPECT_EQ(Alloc.stats().TagsGenerated.load(), 1u);
  EXPECT_EQ(Alloc.stats().TagsShared.load(), 1u);

  // Releasing once keeps the tag (refcount 2 -> 1).
  Alloc.release(Begin, Begin + 128);
  EXPECT_EQ(mte::ldgTag(Begin), mte::pointerTagOf(Bits1));
  EXPECT_EQ(Alloc.stats().TagsCleared.load(), 0u);

  // Last release clears it.
  Alloc.release(Begin, Begin + 128);
  EXPECT_EQ(mte::ldgTag(Begin), 0);
  EXPECT_EQ(Alloc.stats().TagsCleared.load(), 1u);
}

TEST_P(TagAllocatorTest, ReleaseWithoutAcquireIsANoOp) {
  TagAllocator Alloc(GetParam());
  uint64_t Begin = allocRange(32);
  Alloc.release(Begin, Begin + 32);
  EXPECT_EQ(Alloc.stats().OrphanReleases.load(), 1u);
  EXPECT_EQ(Alloc.stats().TagsCleared.load(), 0u);
}

TEST_P(TagAllocatorTest, DoubleReleaseIsTolerated) {
  TagAllocator Alloc(GetParam());
  uint64_t Begin = allocRange(32);
  Alloc.acquire(Begin, Begin + 32);
  Alloc.release(Begin, Begin + 32);
  Alloc.release(Begin, Begin + 32); // entry gone or count already 0
  EXPECT_EQ(Alloc.stats().TagsCleared.load(), 1u);
}

TEST_P(TagAllocatorTest, EntryKeptByDefaultErasedOnRequest) {
  // Algorithm 2 as published leaves the tuple in place for reuse...
  TagAllocator Keep(GetParam());
  uint64_t Begin = allocRange(32);
  Keep.acquire(Begin, Begin + 32);
  EXPECT_EQ(Keep.table().liveEntries(), 1u);
  Keep.release(Begin, Begin + 32);
  EXPECT_EQ(Keep.table().liveEntries(), 1u);
  // ...but the allocator can be asked to trim dead entries.
  TagAllocator Erase(GetParam(), 16, /*EraseDeadEntries=*/true);
  Erase.acquire(Begin, Begin + 32);
  Erase.release(Begin, Begin + 32);
  EXPECT_EQ(Erase.table().liveEntries(), 0u);
}

TEST_P(TagAllocatorTest, UseAfterReleaseFaults) {
  // Algorithm 2's motivation: clearing tags makes dangling tagged
  // pointers detectable.
  MteSystem::instance().setProcessCheckMode(mte::CheckMode::Sync);
  mte::ThreadState::current().setTco(false);

  TagAllocator Alloc(GetParam());
  uint64_t Begin = allocRange(64);
  uint64_t Bits = Alloc.acquire(Begin, Begin + 64);
  auto P = mte::TaggedPtr<int32_t>::fromBits(Bits);

  mte::store<int32_t>(P, 42);
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 0u);

  Alloc.release(Begin, Begin + 64);
  mte::store<int32_t>(P, 43); // dangling tagged pointer
  EXPECT_EQ(MteSystem::instance().faultLog().totalCount(), 1u);
}

TEST_P(TagAllocatorTest, DistinctObjectsGetIndependentTags) {
  TagAllocator Alloc(GetParam());
  // With 4-bit tags collisions are expected; just verify independence of
  // refcounts and ranges.
  uint64_t A = allocRange(64);
  uint64_t B = allocRange(64);
  uint64_t BitsA = Alloc.acquire(A, A + 64);
  uint64_t BitsB = Alloc.acquire(B, B + 64);
  Alloc.release(A, A + 64);
  // A's tags cleared, B's intact.
  EXPECT_EQ(mte::ldgTag(A), 0);
  EXPECT_EQ(mte::ldgTag(B), mte::pointerTagOf(BitsB));
  Alloc.release(B, B + 64);
  EXPECT_EQ(mte::ldgTag(B), 0);
  (void)BitsA;
}

TEST_P(TagAllocatorTest, ConcurrentAcquireReleaseOnSameObject) {
  TagAllocator Alloc(GetParam(), 16, /*EraseDeadEntries=*/true);
  uint64_t Begin = allocRange(4096);

  constexpr int kThreads = 8;
  constexpr int kIters = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&] {
      for (int I = 0; I < kIters; ++I) {
        uint64_t Bits = Alloc.acquire(Begin, Begin + 4096);
        // While held, the granule tag must equal our pointer tag.
        ASSERT_EQ(mte::ldgTag(Begin), mte::pointerTagOf(Bits));
        Alloc.release(Begin, Begin + 4096);
      }
    });
  }
  for (auto &T : Threads)
    T.join();

  EXPECT_EQ(Alloc.stats().Acquires.load(), uint64_t(kThreads) * kIters);
  EXPECT_EQ(Alloc.stats().Releases.load(), uint64_t(kThreads) * kIters);
  EXPECT_EQ(Alloc.table().liveEntries(), 0u);
  EXPECT_EQ(mte::ldgTag(Begin), 0);
  // Shared + generated must cover all acquires.
  EXPECT_EQ(Alloc.stats().TagsGenerated.load() +
                Alloc.stats().TagsShared.load(),
            uint64_t(kThreads) * kIters);
}

TEST_P(TagAllocatorTest, ConcurrentDisjointObjects) {
  TagAllocator Alloc(GetParam(), 16, /*EraseDeadEntries=*/true);
  constexpr int kThreads = 8;
  constexpr int kIters = 2000;

  std::vector<uint64_t> Ranges;
  for (int T = 0; T < kThreads; ++T)
    Ranges.push_back(allocRange(1024));

  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&, T] {
      uint64_t Begin = Ranges[static_cast<size_t>(T)];
      for (int I = 0; I < kIters; ++I) {
        uint64_t Bits = Alloc.acquire(Begin, Begin + 1024);
        ASSERT_EQ(mte::ldgTag(Begin + 512), mte::pointerTagOf(Bits));
        Alloc.release(Begin, Begin + 1024);
      }
    });
  }
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Alloc.table().liveEntries(), 0u);
}

INSTANTIATE_TEST_SUITE_P(LockSchemes, TagAllocatorTest,
                         ::testing::Values(core::TagTableKind::LockFree,
                                           LockScheme::TwoTier,
                                           LockScheme::GlobalLock),
                         [](const auto &Info) {
                           switch (Info.param) {
                           case core::TagTableKind::LockFree:
                             return "LockFree";
                           case core::TagTableKind::TwoTierMutex:
                             return "TwoTier";
                           default:
                             return "GlobalLock";
                           }
                         });

// ---- TagTable-specific behaviour -------------------------------------------

TEST(TagTableTest, ShardIndexMatchesAlgorithm1) {
  TagTable Table(16);
  // (begin / 16) mod 16
  EXPECT_EQ(Table.shardIndexOf(0x0), 0u);
  EXPECT_EQ(Table.shardIndexOf(0x10), 1u);
  EXPECT_EQ(Table.shardIndexOf(0xF0), 15u);
  EXPECT_EQ(Table.shardIndexOf(0x100), 0u);
  EXPECT_EQ(Table.shardIndexOf(0x130), 3u);
}

TEST(TagTableTest, LookupOrCreateIsIdempotent) {
  TagTable Table(16);
  auto A = Table.lookupOrCreate(0x1000);
  auto B = Table.lookupOrCreate(0x1000);
  EXPECT_EQ(A.get(), B.get());
  EXPECT_EQ(Table.liveEntries(), 1u);
  EXPECT_EQ(Table.stats().Creates, 1u);
}

TEST(TagTableTest, EraseIfDeadRespectsRefCount) {
  TagTable Table(16);
  auto E = Table.lookupOrCreate(0x2000);
  E->RefCount = 1;
  Table.eraseIfDead(0x2000);
  EXPECT_EQ(Table.liveEntries(), 1u); // still referenced
  E->RefCount = 0;
  Table.eraseIfDead(0x2000);
  EXPECT_EQ(Table.liveEntries(), 0u);
}

TEST(TagTableTest, WorksWithNonDefaultTableCounts) {
  for (unsigned K : {1u, 2u, 7u, 64u}) {
    TagTable Table(K);
    for (uint64_t Addr = 0; Addr < 64 * 16; Addr += 16)
      Table.lookupOrCreate(Addr);
    EXPECT_EQ(Table.liveEntries(), 64u);
  }
}

} // namespace

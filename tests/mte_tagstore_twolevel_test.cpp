//===- mte_tagstore_twolevel_test.cpp - Two-level tag store properties ----------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// Coverage the two-level store's correctness rests on:
//
//   * a randomized equivalence test driving setTagAt / setTagRange /
//     findMismatch / countTagged against a plain byte-per-granule
//     reference model — the seed's storage layout — over a region whose
//     granule count is deliberately NOT a line multiple, with range
//     endpoints biased toward line boundaries and a demote-then-restore
//     op so the summary-sweep fall-through path is actually sampled;
//   * a targeted regression test for the sweep fall-through computing
//     LineLast from a stale LineFirst (out-of-bounds packed scan);
//   * packed-nibble kernel equivalence (SWAR and dispatch vs the scalar
//     reference) across every dispatch-size bucket, both start parities,
//     and planted mismatches at edge/body nibbles;
//   * summary maintenance: whole-line fills publish Uniform, narrower
//     writes demote, scans lazily re-promote;
//   * ThreadSanitizer-facing tests: concurrent writers hammering
//     ADJACENT granules sharing one packed shadow byte (the nibble-CAS
//     path) while readers load tags, and a checked-range scan racing a
//     setTagAt to a granule outside the range but sharing its trailing
//     edge byte — the two legal-race shapes of the ownership model.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/TagStorage.h"
#include "mte4jni/support/Metrics.h"
#include "mte4jni/support/Rng.h"

#include <gtest/gtest.h>

#include <cstring>
#include <thread>
#include <vector>

namespace {

using namespace mte4jni::mte;
namespace support = mte4jni::support;

// 300 granules = 4 full lines + a 44-granule tail line, odd packed-byte
// count — exercises every geometry edge at once.
constexpr uint64_t kGranules = 300;
constexpr uint64_t kBytes = kGranules * kGranuleSize;

struct RegionFixture {
  alignas(16) uint8_t Buf[kBytes];
};

//===----------------------------------------------------------------------===//
// Randomized equivalence against the byte-per-granule reference model
//===----------------------------------------------------------------------===//

TEST(TagStoreTwoLevel, RandomizedEquivalenceVsReferenceModel) {
  static RegionFixture F;
  TaggedRegion Region(reinterpret_cast<uint64_t>(F.Buf), kBytes);
  std::vector<uint8_t> Ref(kGranules, 0); // one tag byte per granule

  auto refFindMismatch = [&](uint64_t First, uint64_t Last,
                             TagValue Expected) -> uint64_t {
    for (uint64_t G = First; G <= Last; ++G)
      if (Ref[G] != Expected)
        return G;
    return UINT64_MAX;
  };
  auto refCountTagged = [&](uint64_t FirstG, uint64_t LastG) -> uint64_t {
    uint64_t N = 0;
    for (uint64_t G = FirstG; G <= LastG; ++G)
      N += Ref[G] != 0;
    return N;
  };

  support::Xoshiro256 R(0x2d14e8a1u);
  const uint64_t Base = Region.begin();
  // Range endpoints are biased toward line boundaries: the summary sweep
  // in findMismatch only engages on line-aligned starts, and its
  // fall-through into a Mixed line (the path that once read out of
  // bounds, REVIEW item 1) needs a line-aligned range spanning several
  // uniform lines before the Mixed one. Pure-uniform draws under-sample
  // that shape.
  auto drawGranule = [&]() -> uint64_t {
    uint64_t G = R.nextBelow(kGranules);
    switch (R.nextBelow(4)) {
    case 0:
      return G & ~(kLineGranules - 1); // line-aligned start
    case 1:
      return std::min(kGranules - 1,
                      (G | (kLineGranules - 1))); // line-end / tail edge
    default:
      return G;
    }
  };
  for (int Iter = 0; Iter < 20000; ++Iter) {
    switch (R.nextBelow(5)) {
    case 0: { // single-granule write (demotes its line)
      uint64_t G = R.nextBelow(kGranules);
      TagValue T = static_cast<TagValue>(R.nextBelow(kNumTags));
      Region.setTagAt(Base + G * kGranuleSize + R.nextBelow(kGranuleSize), T);
      Ref[G] = T;
      break;
    }
    case 1: { // range write (publishes uniform lines / demotes edges)
      uint64_t A = drawGranule();
      // A quarter of range writes run to the end of the region — the
      // TLAB-scrub / reclaim shape that leaves a uniform suffix, which
      // is what lets a later check's summary sweep fall through into a
      // demoted-but-matching line with nothing mismatching behind it.
      uint64_t B = R.nextBelow(4) == 0 ? kGranules - 1 : drawGranule();
      if (A > B)
        std::swap(A, B);
      TagValue T = static_cast<TagValue>(R.nextBelow(kNumTags));
      uint64_t Written = Region.setTagRange(Base + A * kGranuleSize,
                                            Base + (B + 1) * kGranuleSize, T);
      ASSERT_EQ(Written, B - A + 1);
      for (uint64_t G = A; G <= B; ++G)
        Ref[G] = T;
      break;
    }
    case 2: { // bulk check (summary walk + packed fallback + promotion)
      uint64_t A = drawGranule();
      uint64_t B = drawGranule();
      if (A > B)
        std::swap(A, B);
      // Half the checks expect the tag actually present at the range
      // start: a fully random tag almost never survives past the first
      // line, so it would leave the deep-walk paths (multi-line summary
      // sweeps, fall-through into a contents-matching Mixed line)
      // unexercised.
      TagValue T = R.nextBelow(2) == 0
                       ? static_cast<TagValue>(Ref[A])
                       : static_cast<TagValue>(R.nextBelow(kNumTags));
      ASSERT_EQ(Region.findMismatch(A, B, T), refFindMismatch(A, B, T))
          << "iter " << Iter << " range [" << A << "," << B << "] tag "
          << unsigned(T);
      break;
    }
    case 3: { // demote-then-restore: leaves the line Mixed with contents
              // still uniform — the exact summary/content split the sweep
              // fall-through has to cross correctly
      uint64_t G = R.nextBelow(kGranules);
      TagValue Old = Ref[G];
      Region.setTagAt(Base + G * kGranuleSize,
                      static_cast<TagValue>((Old + 1) & 0xF));
      Region.setTagAt(Base + G * kGranuleSize, Old);
      break;
    }
    default: { // diagnostic count
      uint64_t A = R.nextBelow(kGranules);
      uint64_t B = R.nextBelow(kGranules);
      if (A > B)
        std::swap(A, B);
      ASSERT_EQ(Region.countTagged(Base + A * kGranuleSize,
                                   Base + (B + 1) * kGranuleSize),
                refCountTagged(A, B))
          << "iter " << Iter << " range [" << A << "," << B << "]";
      break;
    }
    }
    // Every granule stays individually readable through the packed level.
    if (Iter % 997 == 0) {
      for (uint64_t G = 0; G < kGranules; ++G)
        ASSERT_EQ(Region.tagAt(Base + G * kGranuleSize), Ref[G]);
    }
  }
}

//===----------------------------------------------------------------------===//
// Packed-nibble kernels vs the scalar reference
//===----------------------------------------------------------------------===//

TEST(TagStoreTwoLevel, PackedKernelEquivalence) {
  // Sizes straddle every dispatch threshold of the underlying byte
  // kernels (SWAR < 16 packed bytes <= SSE2 < 32 <= AVX2), in granules.
  const uint64_t Sizes[] = {0,  1,  2,  3,  7,  8,  15, 16,  17,  31,  32,
                            33, 63, 64, 65, 96, 127, 128, 129, 255, 1024};
  support::Xoshiro256 R(0x51ce9bb3u);
  std::vector<uint8_t> Packed(1024); // 2048 granules

  for (int Round = 0; Round < 200; ++Round) {
    for (uint8_t &B : Packed)
      B = static_cast<uint8_t>(R.next());
    TagValue Expected = static_cast<TagValue>(R.nextBelow(kNumTags));
    for (uint64_t Count : Sizes) {
      for (uint64_t Parity = 0; Parity < 2; ++Parity) {
        uint64_t First = R.nextBelow(64) * 2 + Parity;
        uint64_t Want = detail::scanMismatchPackedScalar(Packed.data(), First,
                                                         Count, Expected);
        EXPECT_EQ(detail::scanMismatchPackedSwar(Packed.data(), First, Count,
                                                 Expected),
                  Want)
            << "swar first=" << First << " count=" << Count;
        EXPECT_EQ(
            detail::scanMismatchPacked(Packed.data(), First, Count, Expected),
            Want)
            << "dispatch first=" << First << " count=" << Count;
      }
    }
  }
}

TEST(TagStoreTwoLevel, PackedKernelPlantedMismatches) {
  std::vector<uint8_t> Packed(512, 0x77); // all granules tag 7
  const uint64_t Total = 1024;
  // Plant a single foreign nibble at each interesting position and expect
  // every kernel to locate exactly it.
  for (uint64_t Bad : {uint64_t(0), uint64_t(1), uint64_t(2), uint64_t(31),
                       uint64_t(32), uint64_t(63), uint64_t(64), uint64_t(509),
                       uint64_t(1022), uint64_t(1023)}) {
    uint8_t Saved = Packed[Bad >> 1];
    Packed[Bad >> 1] = (Bad & 1) ? static_cast<uint8_t>((Saved & 0x0F) | 0x30)
                                 : static_cast<uint8_t>((Saved & 0xF0) | 0x03);
    for (uint64_t First : {uint64_t(0), uint64_t(1)}) {
      uint64_t Want = Bad >= First ? Bad - First : UINT64_MAX;
      EXPECT_EQ(detail::scanMismatchPackedScalar(Packed.data(), First,
                                                 Total - First, 7),
                Want);
      EXPECT_EQ(detail::scanMismatchPackedSwar(Packed.data(), First,
                                               Total - First, 7),
                Want);
      EXPECT_EQ(
          detail::scanMismatchPacked(Packed.data(), First, Total - First, 7),
          Want);
    }
    Packed[Bad >> 1] = Saved;
  }
}

//===----------------------------------------------------------------------===//
// Summary maintenance: publish / demote / lazy promote
//===----------------------------------------------------------------------===//

TEST(TagStoreTwoLevel, SummaryPublishDemotePromote) {
  static RegionFixture F;
  TaggedRegion Region(reinterpret_cast<uint64_t>(F.Buf), kBytes);
  EXPECT_EQ(Region.lineCount(), 5u);            // 4 full + 44-granule tail
  EXPECT_EQ(Region.shadowBytes(), kGranules / 2);
  EXPECT_EQ(Region.summaryBytes(), 5u);

  // Fresh region: every line Uniform(0).
  for (uint64_t L = 0; L < Region.lineCount(); ++L)
    EXPECT_EQ(Region.lineSummaries()[L], 0);

  // Whole-region fill publishes Uniform(9) everywhere, tail included.
  Region.setTagRange(Region.begin(), Region.end(), 9);
  for (uint64_t L = 0; L < Region.lineCount(); ++L)
    EXPECT_EQ(Region.lineSummaries()[L], 9);

  // A single-granule write demotes exactly its line.
  uint64_t Demotes = support::Metrics::counter("mte/tagstore/line_demote")
                         .value();
  Region.setTagAt(Region.begin() + 70 * kGranuleSize, 9); // line 1, same tag
  EXPECT_EQ(Region.lineSummaries()[1], kSummaryMixed);
  EXPECT_EQ(Region.lineSummaries()[0], 9);
  EXPECT_EQ(Region.lineSummaries()[2], 9);
  EXPECT_GT(support::Metrics::counter("mte/tagstore/line_demote").value(),
            Demotes);

  // A full scan finds the line still uniformly 9 and re-promotes it.
  uint64_t Promotes = support::Metrics::counter("mte/tagstore/line_promote")
                          .value();
  EXPECT_EQ(Region.findMismatch(0, kGranules - 1, 9), UINT64_MAX);
  EXPECT_EQ(Region.lineSummaries()[1], 9);
  EXPECT_GT(support::Metrics::counter("mte/tagstore/line_promote").value(),
            Promotes);

  // A genuinely mixed line stays Mixed across scans (no false promote)...
  Region.setTagAt(Region.begin() + 130 * kGranuleSize, 4); // line 2
  EXPECT_EQ(Region.findMismatch(0, kGranules - 1, 9), 130u);
  EXPECT_EQ(Region.lineSummaries()[2], kSummaryMixed);
  // ...and scanning around the foreign granule succeeds via packed scans.
  EXPECT_EQ(Region.findMismatch(128, 129, 9), UINT64_MAX);
  EXPECT_EQ(Region.findMismatch(131, 191, 9), UINT64_MAX);
  EXPECT_EQ(Region.findMismatch(130, 130, 4), UINT64_MAX);

  // Partial-line range writes demote their edge lines.
  Region.setTagRange(Region.begin() + 200 * kGranuleSize,
                     Region.begin() + 220 * kGranuleSize, 2); // inside line 3
  EXPECT_EQ(Region.lineSummaries()[3], kSummaryMixed);
}

// Regression (REVIEW item 1): when the summary sweep stops on a Mixed
// line and falls through to the per-line path, LineLast must be derived
// from the ADVANCED line's first granule. With the stale pre-sweep
// LineFirst, LineLast landed below G and the packed-scan count
// `LineLast - G + 1` underflowed to ~2^64 — an out-of-bounds read past
// the packed shadow (caught by ASan) that could surface as a false tag
// fault. The trigger shape: a line-aligned check spanning >= 2 leading
// Uniform(Expected) lines, then a line demoted to Mixed whose contents
// all still match Expected (so the in-bounds scan finds nothing and
// keeps reading).
TEST(TagStoreTwoLevel, FindMismatchSweepFallThroughMatchingMixedLine) {
  static RegionFixture F;
  TaggedRegion Region(reinterpret_cast<uint64_t>(F.Buf), kBytes);
  const uint64_t Base = Region.begin();

  // Uniform-fill the whole region (4 full lines + the 44-granule tail)
  // with tag 5.
  Region.setTagRange(Base, Region.end(), 5);
  // Demote line 2, then restore its contents: summary Mixed, nibbles all 5.
  Region.setTagAt(Base + 130 * kGranuleSize, 7);
  Region.setTagAt(Base + 130 * kGranuleSize, 5);
  ASSERT_EQ(Region.lineSummaries()[2], kSummaryMixed);

  // Line-aligned check across lines 0..2: the sweep passes lines 0 and 1,
  // stops on Mixed line 2, and the fall-through scan must cover exactly
  // granules [128, 191].
  EXPECT_EQ(Region.findMismatch(0, 191, 5), UINT64_MAX);

  // Same shape with the check ending mid-way through the Mixed line.
  EXPECT_EQ(Region.findMismatch(0, 150, 5), UINT64_MAX);

  // And with a genuine mismatch after the matching Mixed line: the scan
  // must resume past line 2 and report the real offender, not a bogus
  // index from over-scanning.
  Region.setTagAt(Base + 200 * kGranuleSize, 9); // line 3
  EXPECT_EQ(Region.findMismatch(0, 255, 5), 200u);

  // Line 2 was lazily re-promoted by the full-line scans above; demote it
  // again and re-check over the whole region so the walk resumes past the
  // fall-through line and still crosses the short 44-granule tail line.
  Region.setTagAt(Base + 130 * kGranuleSize, 7);
  Region.setTagAt(Base + 130 * kGranuleSize, 5);
  Region.setTagAt(Base + 200 * kGranuleSize, 5); // heal line 3
  EXPECT_EQ(Region.findMismatch(0, kGranules - 1, 5), UINT64_MAX);
}

TEST(TagStoreTwoLevel, UniformAndMixedCountersMove) {
  static RegionFixture F;
  TaggedRegion Region(reinterpret_cast<uint64_t>(F.Buf), kBytes);
  Region.setTagRange(Region.begin(), Region.end(), 5);

  uint64_t Uniform =
      support::Metrics::counter("mte/tagstore/uniform_hit").value();
  EXPECT_EQ(Region.findMismatch(0, kGranules - 1, 5), UINT64_MAX);
  EXPECT_GE(support::Metrics::counter("mte/tagstore/uniform_hit").value(),
            Uniform + 5); // all 5 lines passed on summaries alone

  Region.setTagAt(Region.begin(), 5); // demote line 0 (tag unchanged)
  uint64_t Mixed =
      support::Metrics::counter("mte/tagstore/mixed_fallback").value();
  EXPECT_EQ(Region.findMismatch(0, 63, 5), UINT64_MAX);
  EXPECT_GE(support::Metrics::counter("mte/tagstore/mixed_fallback").value(),
            Mixed + 1);
}

//===----------------------------------------------------------------------===//
// Adjacent-granule nibble CAS under concurrency (TSan target)
//===----------------------------------------------------------------------===//

TEST(TagStoreTwoLevel, AdjacentGranuleWritersShareAByte) {
  alignas(16) static uint8_t Buf[kLineBytes];
  TaggedRegion Region(reinterpret_cast<uint64_t>(Buf), kLineBytes);
  const uint64_t Base = Region.begin();
  constexpr int kIters = 20000;

  // Granules 6 and 7 share packed byte 3: two writers CAS opposite
  // nibbles of one byte while readers load both tags. A lost update (the
  // bug the CAS loop prevents) would surface as a stale/zero tag below;
  // TSan would flag any non-atomic access to the shared byte.
  std::thread Even([&] {
    for (int I = 0; I < kIters; ++I)
      Region.setTagAt(Base + 6 * kGranuleSize,
                      static_cast<TagValue>(1 + (I % 15)));
  });
  std::thread Odd([&] {
    for (int I = 0; I < kIters; ++I)
      Region.setTagAt(Base + 7 * kGranuleSize,
                      static_cast<TagValue>(15 - (I % 15)));
  });
  std::thread Reader([&] {
    for (int I = 0; I < kIters; ++I) {
      TagValue A = Region.tagAt(Base + 6 * kGranuleSize);
      TagValue B = Region.tagAt(Base + 7 * kGranuleSize);
      // Any already-written value is a valid snapshot; zero is only legal
      // before the first store lands.
      ASSERT_LE(A, 15);
      ASSERT_LE(B, 15);
    }
  });
  Even.join();
  Odd.join();
  Reader.join();

  // Both threads' final writes survived: neither nibble clobbered the
  // other despite sharing a byte.
  EXPECT_EQ(Region.tagAt(Base + 6 * kGranuleSize),
            static_cast<TagValue>(1 + ((kIters - 1) % 15)));
  EXPECT_EQ(Region.tagAt(Base + 7 * kGranuleSize),
            static_cast<TagValue>(15 - ((kIters - 1) % 15)));
  EXPECT_EQ(Region.tagAt(Base + 5 * kGranuleSize), 0);
  EXPECT_EQ(Region.tagAt(Base + 8 * kGranuleSize), 0);
}

TEST(TagStoreTwoLevel, CheckedRangeVsWriterSharingAnEdgeByte) {
  // Race-model boundary (REVIEW item 2, DESIGN.md §13): a checked range
  // may legally race with setTagAt on a granule OUTSIDE the range but in
  // the same line — even one sharing the range's trailing packed byte.
  // Only the EDGE nibbles of a scan touch shared bytes, and those loads
  // are atomic; the plain-load body bytes lie wholly inside the checked
  // range, which granule ownership guarantees nobody retags mid-check.
  // Here the checker scans granules [0,30] (byte 15's low nibble is the
  // atomic trailing edge) while a writer CASes granule 31 (byte 15's high
  // nibble): TSan must stay quiet and the check must never fault.
  alignas(16) static uint8_t Buf[kLineBytes];
  TaggedRegion Region(reinterpret_cast<uint64_t>(Buf), kLineBytes);
  const uint64_t Base = Region.begin();
  constexpr int kIters = 20000;

  Region.setTagRange(Base, Base + 31 * kGranuleSize, 7);

  std::thread Writer([&] {
    for (int I = 0; I < kIters; ++I)
      Region.setTagAt(Base + 31 * kGranuleSize,
                      static_cast<TagValue>(1 + (I % 15)));
  });
  std::thread Checker([&] {
    for (int I = 0; I < kIters; ++I)
      ASSERT_EQ(Region.findMismatch(0, 30, 7), UINT64_MAX) << "iter " << I;
  });
  Writer.join();
  Checker.join();

  for (uint64_t G = 0; G <= 30; ++G)
    EXPECT_EQ(Region.tagAt(Base + G * kGranuleSize), 7) << G;
  EXPECT_EQ(Region.tagAt(Base + 31 * kGranuleSize),
            static_cast<TagValue>(1 + ((kIters - 1) % 15)));
}

TEST(TagStoreTwoLevel, ConcurrentRangeWritersOwnDisjointRanges) {
  // Two writers repeatedly retag ADJACENT ranges that split a packed byte
  // (ranges [0,5) and [5,10) share byte 2): the boundary nibbles go
  // through the CAS path, so neither owner's edge tag is lost.
  alignas(16) static uint8_t Buf[kLineBytes];
  TaggedRegion Region(reinterpret_cast<uint64_t>(Buf), kLineBytes);
  const uint64_t Base = Region.begin();
  constexpr int kIters = 5000;

  std::thread A([&] {
    for (int I = 0; I < kIters; ++I)
      Region.setTagRange(Base, Base + 5 * kGranuleSize,
                         static_cast<TagValue>(1 + (I % 7)));
  });
  std::thread B([&] {
    for (int I = 0; I < kIters; ++I)
      Region.setTagRange(Base + 5 * kGranuleSize, Base + 10 * kGranuleSize,
                         static_cast<TagValue>(8 + (I % 7)));
  });
  A.join();
  B.join();

  TagValue TagA = static_cast<TagValue>(1 + ((kIters - 1) % 7));
  TagValue TagB = static_cast<TagValue>(8 + ((kIters - 1) % 7));
  for (uint64_t G = 0; G < 5; ++G)
    EXPECT_EQ(Region.tagAt(Base + G * kGranuleSize), TagA) << G;
  for (uint64_t G = 5; G < 10; ++G)
    EXPECT_EQ(Region.tagAt(Base + G * kGranuleSize), TagB) << G;
}

} // namespace

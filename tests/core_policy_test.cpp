//===- core_policy_test.cpp - The Mte4JniPolicy ---------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/core/Mte4JniPolicy.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/TaggedArena.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using core::Mte4JniOptions;
using core::Mte4JniPolicy;

class CorePolicyTest : public ::testing::Test {
protected:
  void SetUp() override {
    mte::MteSystem::instance().reset();
    Arena = std::make_unique<mte::TaggedArena>(1 << 20);
  }
  void TearDown() override {
    Arena.reset();
    mte::MteSystem::instance().reset();
  }

  jni::JniBufferInfo infoFor(void *Data, uint64_t Bytes) {
    jni::JniBufferInfo Info;
    Info.DataBegin = reinterpret_cast<uint64_t>(Data);
    Info.Bytes = Bytes;
    Info.Interface = "Test";
    return Info;
  }

  std::unique_ptr<mte::TaggedArena> Arena;
};

/// Options pinning the paper's exact Algorithm 2 semantics (last release
/// clears tags immediately); the deferred-clear default gets its own
/// coverage in core_allocator_test and integration_gc_test.
static Mte4JniOptions exactClearOptions() {
  Mte4JniOptions Options;
  Options.DeferredTagClear = false;
  return Options;
}

TEST_F(CorePolicyTest, AcquireReturnsDirectTaggedPointer) {
  Mte4JniPolicy Policy(exactClearOptions());
  void *Data = Arena->allocate(64);
  bool IsCopy = true;
  uint64_t Bits = Policy.acquire(infoFor(Data, 64), IsCopy);
  EXPECT_FALSE(IsCopy) << "MTE4JNI hands out the original payload";
  EXPECT_EQ(mte::addressOf(Bits), reinterpret_cast<uint64_t>(Data));
  EXPECT_NE(mte::pointerTagOf(Bits), 0);
  EXPECT_EQ(mte::ldgTag(reinterpret_cast<uint64_t>(Data)),
            mte::pointerTagOf(Bits));
  Policy.release(infoFor(Data, 64), Bits, 0);
  EXPECT_EQ(mte::ldgTag(reinterpret_cast<uint64_t>(Data)), 0);
}

TEST_F(CorePolicyTest, JniCommitKeepsTagAlive) {
  Mte4JniPolicy Policy(exactClearOptions());
  void *Data = Arena->allocate(64);
  bool IsCopy;
  uint64_t Bits = Policy.acquire(infoFor(Data, 64), IsCopy);
  Policy.release(infoFor(Data, 64), Bits, jni::JNI_COMMIT);
  EXPECT_EQ(mte::ldgTag(reinterpret_cast<uint64_t>(Data)),
            mte::pointerTagOf(Bits))
      << "JNI_COMMIT: caller keeps using the pointer";
  Policy.release(infoFor(Data, 64), Bits, 0);
  EXPECT_EQ(mte::ldgTag(reinterpret_cast<uint64_t>(Data)), 0);
}

TEST_F(CorePolicyTest, ScratchBuffersAreTagged) {
  Mte4JniPolicy Policy;
  uint64_t Bits = Policy.acquireScratch(40, "GetStringUTFChars");
  ASSERT_NE(mte::addressOf(Bits), 0u);
  EXPECT_NE(mte::pointerTagOf(Bits), 0);
  EXPECT_EQ(mte::ldgTag(mte::addressOf(Bits)), mte::pointerTagOf(Bits));

  // OOB on the scratch buffer is detectable.
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::Sync);
  mte::ThreadState::current().setTco(false);
  auto P = mte::TaggedPtr<char>::fromBits(Bits);
  volatile char C = mte::load<char>(P + 100); // past the 40 bytes
  (void)C;
  EXPECT_GE(mte::MteSystem::instance().faultLog().totalCount(), 1u);
  mte::MteSystem::instance().setProcessCheckMode(mte::CheckMode::None);

  Policy.releaseScratch(Bits, 40, "ReleaseStringUTFChars");
  EXPECT_EQ(mte::ldgTag(mte::addressOf(Bits)), 0);
}

TEST_F(CorePolicyTest, ScratchExhaustionReturnsZero) {
  Mte4JniOptions Options;
  Options.ScratchArenaBytes = 64;
  Mte4JniPolicy Policy(Options);
  EXPECT_EQ(Policy.acquireScratch(1 << 20, "GetStringUTFChars"), 0u);
}

TEST_F(CorePolicyTest, ConcurrentHoldersShareTag) {
  Mte4JniPolicy Policy(exactClearOptions());
  void *Data = Arena->allocate(256);
  bool IsCopy;
  uint64_t Bits1 = Policy.acquire(infoFor(Data, 256), IsCopy);
  uint64_t Bits2 = Policy.acquire(infoFor(Data, 256), IsCopy);
  EXPECT_EQ(Bits1, Bits2);
  Policy.release(infoFor(Data, 256), Bits1, 0);
  // Still tagged for the second holder.
  EXPECT_EQ(mte::ldgTag(reinterpret_cast<uint64_t>(Data)),
            mte::pointerTagOf(Bits2));
  Policy.release(infoFor(Data, 256), Bits2, 0);
  EXPECT_EQ(mte::ldgTag(reinterpret_cast<uint64_t>(Data)), 0);
}

TEST_F(CorePolicyTest, OptionsArePlumbedThrough) {
  Mte4JniOptions Options;
  Options.Locks = core::LockScheme::GlobalLock;
  Options.NumHashTables = 4;
  Mte4JniPolicy Policy(Options);
  EXPECT_EQ(Policy.allocator().lockScheme(), core::LockScheme::GlobalLock);
  EXPECT_EQ(Policy.allocator().table().numTables(), 4u);
  EXPECT_TRUE(Policy.exposesDirectPointers());
  EXPECT_STREQ(Policy.name(), "mte4jni");
}

TEST_F(CorePolicyTest, ZeroLengthAcquireIsSafe) {
  Mte4JniPolicy Policy;
  void *Data = Arena->allocate(16);
  bool IsCopy;
  uint64_t Bits = Policy.acquire(infoFor(Data, 0), IsCopy);
  EXPECT_EQ(mte::addressOf(Bits), reinterpret_cast<uint64_t>(Data));
  // No granules tagged for an empty range.
  EXPECT_EQ(mte::ldgTag(reinterpret_cast<uint64_t>(Data)), 0);
  Policy.release(infoFor(Data, 0), Bits, 0);
}

} // namespace

//===- integration_gc_test.cpp - GC vs tagged memory (§3.3) --------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// End-to-end checks of the paper's §3.3 concern: runtime support threads
// access the heap with untagged pointers while native code holds objects
// tagged. Correct TCO management keeps them fault-free; broken management
// reproduces the spurious-fault failure mode.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/ThreadState.h"

#include <gtest/gtest.h>

#include <thread>

namespace {

using namespace mte4jni;

TEST(GcIntegration, GcVerifyIsCleanWhileNativeHoldsTaggedArray) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  C.GcVerifiesBodies = true;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 1024);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "holder", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(Array, &IsCopy);

    std::atomic<bool> GcDone{false};
    std::thread Gc([&] {
      S.runtime().attachCurrentThread("HeapTaskDaemon",
                                      rt::ThreadKind::GcSupport);
      // Correct §3.3 behaviour: support threads run with TCO set.
      mte::ThreadState::current().setTco(true);
      S.runtime().gc().collect();
      GcDone.store(true);
      S.runtime().detachCurrentThread();
    });
    // The body holds the callNative safepoint bracket, so the collector's
    // pause can only run while this thread is parked at a checkpoint.
    // The array stays pinned and tagged throughout — the §3.3 scenario.
    while (!GcDone.load()) {
      S.runtime().safepointPoll();
      std::this_thread::yield();
    }
    Gc.join();

    Main.env().ReleaseIntArrayElements(Array, P, 0);
    return 0;
  });

  EXPECT_EQ(S.faults().totalCount(), 0u);
}

TEST(GcIntegration, GcWithChecksEnabledFaultsSpuriously) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  C.GcVerifiesBodies = true;
  // The failure mode the paper warns about: the collector's tag checks
  // left enabled.
  C.GcSuppressTagChecks = false;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 1024);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "holder", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env().GetIntArrayElements(Array, &IsCopy);

    std::atomic<bool> GcDone{false};
    std::thread Gc([&] {
      S.runtime().attachCurrentThread("BrokenDaemon",
                                      rt::ThreadKind::GcSupport);
      S.runtime().gc().collect();
      GcDone.store(true);
      S.runtime().detachCurrentThread();
    });
    // Park at the checkpoint so the (misconfigured) collector can pause
    // the world while the array is still pinned and tagged.
    while (!GcDone.load()) {
      S.runtime().safepointPoll();
      std::this_thread::yield();
    }
    Gc.join();

    Main.env().ReleaseIntArrayElements(Array, P, 0);
    return 0;
  });

  EXPECT_GT(S.faults().countOf(mte::FaultKind::TagMismatchSync), 0u)
      << "untagged GC pointers against tagged memory must fault";
}

TEST(GcIntegration, BackgroundGcRunsCleanUnderMte4Jni) {
  // The Session default wiring (support thread TCO suppressed) must keep
  // a busy background GC quiet while native threads hammer arrays.
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  C.BackgroundGc = true;
  C.GcIntervalMillis = 1;
  C.GcVerifiesBodies = true;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  jni::jarray Array = Main.env().NewIntArray(Scope, 2048);
  for (int Round = 0; Round < 50; ++Round) {
    rt::callNative(Main.thread(), rt::NativeKind::Regular, "worker", [&] {
      jni::jboolean IsCopy;
      auto P = Main.env().GetIntArrayElements(Array, &IsCopy);
      for (int I = 0; I < 2048; I += 16)
        mte::store<jni::jint>(P + I, I);
      Main.env().ReleaseIntArrayElements(Array, P, 0);
      return 0;
    });
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(S.faults().totalCount(), 0u);
  EXPECT_GT(S.runtime().gc().completedCycles(), 0u)
      << "the background collector must actually have run";
}

// Regression test: allocation and rooting must be atomic wrt the
// collector. A background GC cycle landing between JavaHeap::alloc* and
// HandleScope::root() used to sweep the fresh (unmarked, unpinned, not yet
// reachable) object and poison its header — every later JNI call through
// the returned pointer then saw a garbage ClassWord. The scope churn +
// 1 ms GC interval below hammer exactly that window.
TEST(GcIntegration, AllocationRacingBackgroundGcStaysRooted) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  C.BackgroundGc = true;
  C.GcIntervalMillis = 1;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");

  for (int I = 0; I < 400; ++I) {
    rt::HandleScope Scope(S.runtime());
    jni::jarray A = Main.env().NewIntArray(Scope, 64);
    ASSERT_NE(A, nullptr);
    ASSERT_EQ(A->kind(), rt::ObjectKind::PrimArray)
        << "freshly rooted array swept by the background collector";
    if ((I & 15) == 0)
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  EXPECT_EQ(S.faults().totalCount(), 0u);
}

TEST(GcIntegration, CriticalSectionHoldsOffGc) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 64);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "critical_user",
                 [&] {
                   jni::jboolean IsCopy;
                   auto P =
                       Main.env().GetPrimitiveArrayCritical(Array, &IsCopy);

                   uint64_t CyclesBefore =
                       S.runtime().gc().completedCycles();
                   std::atomic<bool> GcFinished{false};
                   std::thread Gc([&] {
                     S.runtime().attachCurrentThread(
                         "gc", rt::ThreadKind::GcSupport);
                     S.runtime().gc().collect();
                     GcFinished.store(true);
                     S.runtime().detachCurrentThread();
                   });
                   std::this_thread::sleep_for(
                       std::chrono::milliseconds(50));
                   EXPECT_FALSE(GcFinished.load())
                       << "GC must wait for the critical section";
                   EXPECT_EQ(S.runtime().gc().completedCycles(),
                             CyclesBefore);

                   Main.env().ReleasePrimitiveArrayCritical(Array, P, 0);
                   // The callNative bracket still holds the world: park at
                   // the checkpoint until the collector gets its pause.
                   while (!GcFinished.load()) {
                     S.runtime().safepointPoll();
                     std::this_thread::yield();
                   }
                   Gc.join();
                   EXPECT_TRUE(GcFinished.load());
                   return 0;
                 });
  EXPECT_EQ(S.faults().totalCount(), 0u);
}

TEST(GcIntegration, UnrootedButPinnedArraySurvivesNativeUse) {
  // An object that loses its root while native code holds it must not be
  // reclaimed (the JNI pin protects it).
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");

  jni::jarray Array;
  {
    rt::HandleScope Scope(S.runtime());
    Array = Main.env().NewIntArray(Scope, 128);

    rt::callNative(Main.thread(), rt::NativeKind::Regular, "pin_user", [&] {
      jni::jboolean IsCopy;
      auto P = Main.env().GetIntArrayElements(Array, &IsCopy);
      // Root scope dies here... the pin must keep the object alive.
      return std::pair(P, 0);
    });
  }
  // Out of scope: unrooted. Collect.
  // (The elements pointer is still outstanding: pinned.)
  // Note: we intentionally leaked the Get to model native code holding on.
  S.runtime().gc().collect();
  EXPECT_TRUE(S.runtime().heap().isLiveObject(Array))
      << "pinned object reclaimed while native code held it";
}

// Regression test for the deferred tag-clear security invariant: a
// released pin leaves its granule tags lingering (that is the point of the
// optimisation), but the moment the object is swept, the heap's
// freed-range hook must reclaim them — a dead object must never keep a
// valid tag, or a dangling native pointer into it would still pass checks.
TEST(GcIntegration, SweepReclaimsLingeringDeferredTags) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  ASSERT_TRUE(C.DeferredTagClear) << "deferral must be the default";
  api::Session S(C);
  api::ScopedAttach Main(S, "main");

  uint64_t Payload = 0;
  {
    rt::HandleScope Scope(S.runtime());
    jni::jarray Array = Main.env().NewIntArray(Scope, 256);

    rt::callNative(Main.thread(), rt::NativeKind::Regular, "pinner", [&] {
      jni::jboolean IsCopy;
      auto P = Main.env().GetIntArrayElements(Array, &IsCopy);
      Payload = P.address();
      Main.env().ReleaseIntArrayElements(Array, P, 0);
      return 0;
    });

    // Released, not swept: the tags linger (deferred clear) — the whole
    // payload, not just the first granule.
    EXPECT_NE(mte::ldgTag(Payload), 0)
        << "deferred release should leave tags resident";
    EXPECT_EQ(mte::taggedGranulesIn(Payload, 256 * sizeof(jni::jint)),
              (256 * sizeof(jni::jint)) / mte::kGranuleSize);
    // Scope dies here: the array loses its root.
  }

  std::thread Gc([&] {
    S.runtime().attachCurrentThread("HeapTaskDaemon",
                                    rt::ThreadKind::GcSupport);
    mte::ThreadState::current().setTco(true);
    S.runtime().gc().collect();
    S.runtime().detachCurrentThread();
  });
  Gc.join();

  EXPECT_EQ(mte::ldgTag(Payload), 0)
      << "swept object kept lingering tags — the freed-range hook failed";
  EXPECT_EQ(mte::taggedGranulesIn(Payload, 256 * sizeof(jni::jint)), 0u)
      << "every granule of the swept payload must be reclaimed";
  EXPECT_EQ(S.faults().totalCount(), 0u);
}

} // namespace

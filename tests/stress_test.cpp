//===- stress_test.cpp - Randomised multi-thread stress -------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// A randomised workload mixing everything at once: several mutator
// threads performing random JNI operations (elements / critical / string
// / regions, nested holds, JNI_COMMIT) on a shared object pool while the
// background GC collects and verifies with correct TCO handling. The
// invariants: zero faults (all accesses in-bounds), data coherence on a
// guarded subset, and clean teardown (no leaked tags, pins or criticals).
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/Instructions.h"

#include <gtest/gtest.h>

#include <thread>

namespace {

using namespace mte4jni;
using namespace mte4jni::jni;

struct StressParams {
  api::Scheme Protection;
  bool BackgroundGc;
};

class StressTest : public ::testing::TestWithParam<StressParams> {};

TEST_P(StressTest, RandomisedMixedOperations) {
  api::SessionConfig C;
  C.Protection = GetParam().Protection;
  C.BackgroundGc = GetParam().BackgroundGc;
  C.GcIntervalMillis = 2;
  C.HeapBytes = 64ull << 20;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());

  constexpr int kArrays = 12;
  constexpr int kThreads = 4;
  constexpr int kOpsPerThread = 600;

  std::vector<jarray> Arrays;
  for (int I = 0; I < kArrays; ++I)
    Arrays.push_back(Main.env().NewIntArray(Scope, 64 + 32 * (I % 4)));
  jstring Str = Main.env().NewStringUTF(Scope, "stress test string");

  std::atomic<uint64_t> OpsDone{0};
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T) {
    Threads.emplace_back([&, T] {
      api::ScopedAttach Me(S, "stress");
      support::Xoshiro256 Rng(1000 + static_cast<uint64_t>(T));
      for (int Op = 0; Op < kOpsPerThread; ++Op) {
        jarray A = Arrays[Rng.nextBelow(kArrays)];
        uint64_t Kind = Rng.nextBelow(6);
        rt::callNative(Me.thread(), rt::NativeKind::Regular, "stress_op",
                       [&] {
          jboolean IsCopy;
          switch (Kind) {
          case 0: { // elements read
            auto P = Me.env().GetIntArrayElements(A, &IsCopy);
            uint64_t Sum = 0;
            for (uint32_t I = 0; I < A->Length; ++I)
              Sum += static_cast<uint32_t>(mte::load<jint>(P + I));
            Me.env().ReleaseIntArrayElements(A, P, JNI_ABORT);
            asm volatile("" : : "r"(Sum));
            break;
          }
          case 1: { // elements write (values keyed by index: coherent
                    // under concurrent identical writers)
            auto P = Me.env().GetIntArrayElements(A, &IsCopy);
            for (uint32_t I = 0; I < A->Length; ++I)
              mte::store<jint>(P + I, static_cast<jint>(I * 13));
            Me.env().ReleaseIntArrayElements(A, P, 0);
            break;
          }
          case 2: { // critical bulk read
            auto P = Me.env().GetPrimitiveArrayCritical(A, &IsCopy);
            std::vector<jint> Host(A->Length);
            mte::readBytes(Host.data(), P.cast<const void>(),
                           A->Length * sizeof(jint));
            Me.env().ReleasePrimitiveArrayCritical(A, P, JNI_ABORT);
            break;
          }
          case 3: { // nested holds on two arrays
            jarray B = Arrays[Rng.nextBelow(kArrays)];
            auto PA = Me.env().GetIntArrayElements(A, &IsCopy);
            auto PB = Me.env().GetIntArrayElements(B, &IsCopy);
            mte::store<jint>(PA, mte::load<jint>(PB));
            Me.env().ReleaseIntArrayElements(B, PB, JNI_ABORT);
            Me.env().ReleaseIntArrayElements(A, PA, 0);
            break;
          }
          case 4: { // string traffic
            auto P = Me.env().GetStringUTFChars(Str, &IsCopy);
            uint64_t Sum = 0;
            for (ptrdiff_t I = 0;; ++I) {
              char Ch = mte::load(P + I);
              if (!Ch)
                break;
              Sum += static_cast<uint8_t>(Ch);
            }
            Me.env().ReleaseStringUTFChars(Str, P);
            asm volatile("" : : "r"(Sum));
            break;
          }
          case 5: { // region copies (no raw pointers)
            jint Buf[16];
            jsize Start = static_cast<jsize>(
                Rng.nextBelow(A->Length - 16));
            Me.env().GetIntArrayRegion(A, Start, 16, Buf);
            Me.env().SetIntArrayRegion(A, Start, 16, Buf);
            break;
          }
          }
          return 0;
        });
        OpsDone.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (auto &T : Threads)
    T.join();
  mte::simulatedSyscall("getuid");

  EXPECT_EQ(OpsDone.load(), uint64_t(kThreads) * kOpsPerThread);
  EXPECT_EQ(S.faults().totalCount(), 0u)
      << "in-bounds stress must be fault-free under "
      << api::schemeName(GetParam().Protection);

  // Teardown invariants.
  EXPECT_EQ(S.runtime().criticalDepth(), 0u);
  for (jarray A : Arrays)
    EXPECT_EQ(A->pinCount(), 0u) << "leaked JNI pin";
  if (S.mtePolicy()) {
    const auto &Stats = S.mtePolicy()->allocator().stats();
    EXPECT_EQ(Stats.Acquires.value(), Stats.Releases.value());
    // All tags must be accounted for once everything is released: under
    // the deferred-clear default, released ranges may legitimately linger,
    // so drain the lingering set first — anything still tagged after that
    // is a genuine leak.
    S.mtePolicy()->allocator().reclaimAll();
    for (jarray A : Arrays)
      EXPECT_EQ(mte::ldgTag(A->dataAddress()), 0) << "leaked tag";
  }
}

std::string stressName(const ::testing::TestParamInfo<StressParams> &Info) {
  std::string Name = api::schemeName(Info.param.Protection);
  Name += Info.param.BackgroundGc ? "_gc" : "_nogc";
  for (char &C : Name)
    if (!isalnum(static_cast<unsigned char>(C)))
      C = '_';
  return Name;
}

INSTANTIATE_TEST_SUITE_P(
    Mix, StressTest,
    ::testing::Values(
        StressParams{api::Scheme::NoProtection, false},
        StressParams{api::Scheme::GuardedCopy, false},
        StressParams{api::Scheme::Mte4JniSync, false},
        StressParams{api::Scheme::Mte4JniSync, true},
        StressParams{api::Scheme::Mte4JniAsync, true}),
    stressName);

} // namespace

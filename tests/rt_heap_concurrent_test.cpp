//===- rt_heap_concurrent_test.cpp - TLAB allocator under contention ------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The scalable-allocation contract: N threads alloc/free through their
// TLABs and sharded free lists while the (optionally parallel) GC runs,
// and the sharded stats still reconcile exactly; isLiveObject stays a
// lock-free bit test under churn; forEachObject no longer self-deadlocks
// when the callback touches the heap; and compaction migrates TagOnAlloc
// colours with moved objects. Runs under TSan in CI.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/rt/Runtime.h"
#include "mte4jni/rt/Trampoline.h"
#include "mte4jni/support/Metrics.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

namespace {

using namespace mte4jni;
using namespace mte4jni::rt;

// Sized for TSan's ~10x slowdown on the CI runners.
constexpr unsigned kThreads = 4;
constexpr unsigned kItersPerThread = 3000;

HeapConfig plainHeapConfig() {
  HeapConfig C;
  C.CapacityBytes = 64 << 20;
  return C;
}

/// Ground truth from a bitmap walk (no allocator metadata involved).
std::pair<uint64_t, uint64_t> countLive(JavaHeap &Heap) {
  uint64_t Objects = 0, Bytes = 0;
  Heap.forEachObject([&](ObjectHeader *Obj) {
    ++Objects;
    Bytes += Obj->SizeBytes;
  });
  return {Objects, Bytes};
}

TEST(RtHeapConcurrent, StatsReconcileAfterParallelChurn) {
  JavaHeap Heap(plainHeapConfig());
  std::atomic<uint64_t> Freed{0};

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kThreads; ++T)
    Threads.emplace_back([&, T] {
      // Ring of live objects: steady-state alloc/free churn with mixed
      // size classes, everything allocated by this thread freed by it.
      constexpr unsigned kRing = 64;
      ObjectHeader *Ring[kRing] = {};
      uint64_t LocalFreed = 0;
      for (unsigned I = 0; I < kItersPerThread; ++I) {
        uint32_t Len = 8u << ((I + T) % 4); // 8..64 ints
        ObjectHeader *Obj = Heap.allocPrimArray(PrimType::Int, Len);
        ASSERT_NE(Obj, nullptr);
        ASSERT_TRUE(Heap.isLiveObject(Obj));
        unsigned Slot = I % kRing;
        if (Ring[Slot]) {
          Heap.free(Ring[Slot]);
          ++LocalFreed;
        }
        Ring[Slot] = Obj;
      }
      for (ObjectHeader *Obj : Ring)
        if (Obj) {
          Heap.free(Obj);
          ++LocalFreed;
        }
      Freed.fetch_add(LocalFreed);
    });
  for (auto &Th : Threads)
    Th.join();

  HeapStats Stats = Heap.stats();
  EXPECT_EQ(Stats.ObjectsAllocated, uint64_t(kThreads) * kItersPerThread);
  EXPECT_EQ(Stats.ObjectsFreed, Freed.load());
  EXPECT_EQ(Stats.ObjectsFreed, Stats.ObjectsAllocated)
      << "every ring slot was drained";
  EXPECT_EQ(Stats.ObjectsLive, 0u);
  EXPECT_EQ(Stats.BytesLive, 0u);
  auto [LiveObjects, LiveBytes] = countLive(Heap);
  EXPECT_EQ(LiveObjects, 0u);
  EXPECT_EQ(LiveBytes, 0u);
}

TEST(RtHeapConcurrent, IsLiveObjectLockFreeUnderChurn) {
  JavaHeap Heap(plainHeapConfig());

  // A stable set the reader polls while writers churn around it.
  std::vector<ObjectHeader *> Stable;
  for (int I = 0; I < 32; ++I)
    Stable.push_back(Heap.allocPrimArray(PrimType::Long, 16));

  std::atomic<bool> Stop{false};
  std::thread Reader([&] {
    while (!Stop.load(std::memory_order_acquire))
      for (ObjectHeader *Obj : Stable)
        ASSERT_TRUE(Heap.isLiveObject(Obj));
  });

  std::vector<std::thread> Writers;
  for (unsigned T = 0; T < 2; ++T)
    Writers.emplace_back([&] {
      for (unsigned I = 0; I < kItersPerThread; ++I) {
        ObjectHeader *Obj = Heap.allocPrimArray(PrimType::Int, 32);
        ASSERT_NE(Obj, nullptr);
        Heap.free(Obj);
      }
    });
  for (auto &Th : Writers)
    Th.join();
  Stop.store(true, std::memory_order_release);
  Reader.join();

  EXPECT_EQ(Heap.stats().ObjectsLive, Stable.size());
}

TEST(RtHeapConcurrent, ForEachObjectCallbackMayTouchHeap) {
  // Regression: the seed held the heap lock across the callback, so a
  // callback that allocated or freed self-deadlocked.
  JavaHeap Heap(plainHeapConfig());
  for (int I = 0; I < 8; ++I)
    Heap.allocPrimArray(PrimType::Int, 16);

  // Allocating from the callback must not deadlock. The walk may or may
  // not visit the new objects (they land inside the snapshotted frontier),
  // so cap the callback's allocations and only bound Visited from below.
  uint64_t Visited = 0;
  std::vector<ObjectHeader *> Extra;
  Heap.forEachObject([&](ObjectHeader *Obj) {
    ++Visited;
    (void)Obj;
    if (Extra.size() < 8)
      Extra.push_back(Heap.allocPrimArray(PrimType::Byte, 8));
  });
  EXPECT_GE(Visited, 8u);

  // Freeing the visited object itself from the callback must work too
  // (exactly what the parallel sweep does).
  uint64_t Swept = 0;
  Heap.forEachObject([&](ObjectHeader *Obj) {
    Heap.free(Obj);
    ++Swept;
  });
  EXPECT_EQ(Swept, 8u + Extra.size());
  EXPECT_EQ(Heap.stats().ObjectsLive, 0u);
}

TEST(RtHeapConcurrent, MoreThreadsThanShardsReconcile) {
  // Threads beyond the exclusive shard count share the overflow shard,
  // which never owns a TLAB (always the locked slow path) but must stay
  // exact on stats.
  JavaHeap Heap(plainHeapConfig());
  constexpr unsigned kManyThreads = 20;
  constexpr unsigned kIters = 300;

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kManyThreads; ++T)
    Threads.emplace_back([&] {
      std::vector<ObjectHeader *> Mine;
      for (unsigned I = 0; I < kIters; ++I) {
        ObjectHeader *Obj = Heap.allocPrimArray(PrimType::Int, 64);
        ASSERT_NE(Obj, nullptr);
        Mine.push_back(Obj);
      }
      for (ObjectHeader *Obj : Mine)
        Heap.free(Obj);
    });
  for (auto &Th : Threads)
    Th.join();

  HeapStats Stats = Heap.stats();
  EXPECT_EQ(Stats.ObjectsAllocated, uint64_t(kManyThreads) * kIters);
  EXPECT_EQ(Stats.ObjectsFreed, Stats.ObjectsAllocated);
  EXPECT_EQ(Stats.ObjectsLive, 0u);
  EXPECT_EQ(Stats.BytesLive, 0u);
}

TEST(RtHeapConcurrent, GlobalLockPipelineStillExact) {
  // The ablation baseline must keep the same external contract.
  HeapConfig C = plainHeapConfig();
  C.Pipeline = AllocPipeline::GlobalLock;
  JavaHeap Heap(C);

  ObjectHeader *A = Heap.allocPrimArray(PrimType::Int, 64);
  uint64_t Addr = reinterpret_cast<uint64_t>(A);
  Heap.free(A);
  ObjectHeader *B = Heap.allocPrimArray(PrimType::Int, 64);
  EXPECT_EQ(reinterpret_cast<uint64_t>(B), Addr)
      << "free-then-realloc reuses the block";
  EXPECT_EQ(Heap.stats().FreeListHits, 1u);

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kThreads; ++T)
    Threads.emplace_back([&] {
      for (unsigned I = 0; I < 500; ++I) {
        ObjectHeader *Obj = Heap.allocPrimArray(PrimType::Int, 32);
        ASSERT_NE(Obj, nullptr);
        Heap.free(Obj);
      }
    });
  for (auto &Th : Threads)
    Th.join();
  EXPECT_EQ(Heap.stats().ObjectsLive, 1u); // just B
}

TEST(RtHeapConcurrent, AllocWhileBackgroundGcRuns) {
  RuntimeConfig C;
  C.Heap.CapacityBytes = 16 << 20;
  C.Gc.BackgroundThread = true;
  C.Gc.IntervalMillis = 1;
  C.Gc.Parallelism = 2;
  // Body verification against live mutators: the safepoint handshake
  // makes the stop-the-world window real, so the verify pass no longer
  // races mutator payload writes (this was forced off before the
  // handshake existed).
  C.Gc.VerifyObjectBodies = true;
  Runtime RT(C);

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kThreads; ++T)
    Threads.emplace_back([&] {
      RT.attachCurrentThread("mutator");
      for (unsigned Batch = 0; Batch < 15; ++Batch) {
        HandleScope Scope(RT);
        for (unsigned I = 0; I < 100; ++I) {
          // Rooted allocation through the runtime factory...
          ObjectHeader *Obj = RT.newPrimArray(Scope, PrimType::Int, 16);
          ASSERT_NE(Obj, nullptr);
          // ...plus unrooted garbage straight off the heap for the
          // concurrent sweep to reclaim (may fail near a GC cycle).
          // Raw heap allocation bypasses the factory's critical bracket,
          // so take one here: the zero-init write must not overlap the
          // pause's verify reads.
          ScopedCritical Bracket(RT);
          RT.heap().allocPrimArray(PrimType::Int, 8);
        }
        // Scope exit unroots the batch: it becomes sweep fodder.
      }
      RT.detachCurrentThread();
    });
  for (auto &Th : Threads)
    Th.join();

  RT.gc().stop();
  RT.gc().collect();
  HeapStats Stats = RT.heap().stats();
  EXPECT_EQ(Stats.ObjectsLive, 0u)
      << "nothing rooted remains after the final collection";
  EXPECT_EQ(Stats.BytesLive, 0u);
  EXPECT_GT(RT.gc().completedCycles(), 0u);
}

TEST(RtHeapConcurrent, VerifyRacesCallNativePayloadWriters) {
  // The safepoint-correctness test TSan actually exercises: a background
  // collector with VerifyObjectBodies=true reads every live payload during
  // its pause while mutator threads write payloads from inside
  // rt::callNative bodies. The callNative bracket is the only thing
  // ordering those writes against the verify reads — if the handshake has
  // a hole (lost wakeup, store-buffering miss, backout race), TSan flags
  // the payload bytes.
  RuntimeConfig C;
  C.Heap.CapacityBytes = 16 << 20;
  C.Gc.BackgroundThread = true;
  C.Gc.IntervalMillis = 1;
  C.Gc.VerifyObjectBodies = true;
  Runtime RT(C);

  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < kThreads; ++T)
    Threads.emplace_back([&, T] {
      JavaThread &Self = RT.attachCurrentThread("writer");
      HandleScope Scope(RT);
      ObjectHeader *Mine = RT.newPrimArray(Scope, PrimType::Int, 256);
      ASSERT_NE(Mine, nullptr);
      for (unsigned Round = 0; Round < 600; ++Round) {
        callNative(Self, NativeKind::Regular, "payload_writer", [&] {
          int32_t *Data = arrayData<int32_t>(Mine);
          for (unsigned I = 0; I < 256; ++I)
            Data[I] = static_cast<int32_t>(Round * kThreads + T);
          return 0;
        });
        // Garbage between writes keeps the sweep busy so pauses keep
        // landing in the middle of the write traffic.
        RT.newPrimArray(Scope, PrimType::Int, 16);
        if ((Round & 63) == 0) {
          HandleScope Churn(RT);
          RT.newPrimArray(Churn, PrimType::Byte, 64);
        }
      }
      RT.detachCurrentThread();
    });
  for (auto &Th : Threads)
    Th.join();

  RT.gc().stop();
  EXPECT_GT(RT.gc().completedCycles(), 0u)
      << "the collector must actually have verified against the writers";
}

TEST(RtHeapConcurrent, ParallelCollectMatchesSequentialSemantics) {
  for (unsigned Parallelism : {1u, 4u}) {
    RuntimeConfig C;
    C.Heap.CapacityBytes = 16 << 20;
    C.Gc.Parallelism = Parallelism;
    Runtime RT(C);
    RT.attachCurrentThread("main");
    {
      HandleScope Scope(RT);
      // A reference graph the mark phase must trace transitively: a
      // rooted spine of ref-arrays, each holding prim-array leaves.
      ObjectHeader *Spine = RT.newRefArray(Scope, 8);
      ObjectHeader *Node = Spine;
      uint64_t Reachable = 1;
      for (int Depth = 0; Depth < 40; ++Depth) {
        ObjectHeader *Next = RT.heap().allocRefArray(8);
        refArraySlots(Node)[0] = Next;
        ++Reachable;
        for (int Leaf = 1; Leaf < 8; ++Leaf) {
          refArraySlots(Node)[Leaf] =
              RT.heap().allocPrimArray(PrimType::Int, 16);
          ++Reachable;
        }
        Node = Next;
      }
      constexpr uint64_t kGarbage = 500;
      for (uint64_t I = 0; I < kGarbage; ++I)
        RT.heap().allocPrimArray(PrimType::Int, 24);

      GcResult Result = RT.gc().collect();
      EXPECT_EQ(RT.gc().workers(), Parallelism);
      EXPECT_EQ(Result.ObjectsScanned, Reachable + kGarbage);
      EXPECT_EQ(Result.ObjectsFreed, kGarbage);
      // Every graph node survived.
      uint64_t Live = 0;
      RT.heap().forEachObject([&](ObjectHeader *) { ++Live; });
      EXPECT_EQ(Live, Reachable);
      EXPECT_EQ(RT.heap().stats().ObjectsLive, Reachable);

      // A second cycle frees nothing: the graph is still fully rooted.
      GcResult Again = RT.gc().collect();
      EXPECT_EQ(Again.ObjectsFreed, 0u);
      EXPECT_EQ(Again.ObjectsScanned, Reachable);
    }
    RT.detachCurrentThread();
  }
}

TEST(RtHeapConcurrent, CompactionMigratesTagOnAllocColours) {
  // Regression for the stale-tag bug: compact() memmoved the object but
  // left its MTE colours behind, so a re-derived pointer after compaction
  // hit the old granules' tags.
  RuntimeConfig C;
  C.Heap.CapacityBytes = 4 << 20;
  C.Heap.Alignment = 16;
  C.Heap.ProtMte = true;
  C.Heap.TagOnAlloc = true;
  C.Gc.Mode = GcMode::Compacting;
  Runtime RT(C);
  RT.attachCurrentThread("main");
  {
    HandleScope Scope(RT);
    ObjectHeader *A = RT.newPrimArray(Scope, PrimType::Int, 64);
    ObjectHeader *Garbage = RT.heap().allocPrimArray(PrimType::Int, 64);
    ObjectHeader *B = RT.newPrimArray(Scope, PrimType::Int, 64);
    arrayData<int32_t>(B)[0] = 4321;
    mte::TagValue TagB = mte::ldgTag(B->dataAddress());
    EXPECT_NE(TagB, 0);
    uint64_t OldBData = B->dataAddress();
    uint64_t OldBBytes = B->dataBytes();
    (void)A;
    (void)Garbage;

    GcResult Result = RT.gc().collect();
    ASSERT_EQ(Result.ObjectsMoved, 1u);
    ObjectHeader *NewB = Scope.roots()[1];
    ASSERT_NE(NewB, B);
    EXPECT_EQ(arrayData<int32_t>(NewB)[0], 4321);

    // The allocation colour travelled with the payload...
    for (uint64_t Off = 0; Off < NewB->dataBytes();
         Off += mte::kGranuleSize)
      EXPECT_EQ(mte::ldgTag(NewB->dataAddress() + Off), TagB)
          << "granule at +" << Off << " lost its colour";
    // ...and the vacated granules were scrubbed (no stale tags for the
    // next allocation landing there).
    uint64_t NewEnd = NewB->dataAddress() + NewB->dataBytes();
    for (uint64_t Addr = std::max(OldBData, NewEnd);
         Addr < OldBData + OldBBytes; Addr += mte::kGranuleSize)
      EXPECT_EQ(mte::ldgTag(Addr), 0)
          << "stale colour left at " << std::hex << Addr;
  }
  RT.detachCurrentThread();
}

TEST(RtHeapConcurrent, TlabMetricsAndBitmapGauge) {
  support::MetricsSnapshot Before = support::Metrics::snapshot();
  JavaHeap Heap(plainHeapConfig());
  for (int I = 0; I < 1000; ++I)
    Heap.allocPrimArray(PrimType::Int, 16);

  support::MetricsSnapshot After = support::Metrics::snapshot();
  uint64_t Hits = After.counterValue("rt/heap/tlab_hit") -
                  Before.counterValue("rt/heap/tlab_hit");
  uint64_t Refills = After.counterValue("rt/heap/tlab_refill") -
                     Before.counterValue("rt/heap/tlab_refill");
  EXPECT_GE(Refills, 1u) << "first allocation must refill";
  EXPECT_GE(Hits, 900u) << "small allocs are TLAB bumps";
  EXPECT_EQ(Hits + Refills, 1000u);
  EXPECT_EQ(After.gaugeValue("rt/heap/bitmap_bytes"),
            static_cast<int64_t>(Heap.liveBitmapBytes()));
  EXPECT_EQ(Heap.liveBitmapBytes(),
            Heap.capacity() / (Heap.config().Alignment * 8))
      << "one bit per alignment granule";
}

} // namespace

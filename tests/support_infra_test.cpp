//===- support_infra_test.cpp - Backtrace / syscalls / logging / pool ---------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/Backtrace.h"
#include "mte4jni/support/Logging.h"
#include "mte4jni/support/Syscall.h"
#include "mte4jni/support/ThreadPool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

namespace {

using namespace mte4jni::support;

TEST(Backtrace, ScopedFramesNest) {
  size_t Base = FrameStack::current().depth();
  {
    ScopedFrame A("outer", "libapp.so");
    EXPECT_EQ(FrameStack::current().depth(), Base + 1);
    {
      ScopedFrame B("inner", "libapp.so");
      auto Frames = FrameStack::current().capture();
      ASSERT_GE(Frames.size(), 2u);
      // Innermost first, like a crash dump.
      EXPECT_STREQ(Frames[0].Function, "inner");
      EXPECT_STREQ(Frames[1].Function, "outer");
    }
    EXPECT_EQ(FrameStack::current().depth(), Base + 1);
  }
  EXPECT_EQ(FrameStack::current().depth(), Base);
}

TEST(Backtrace, PerThreadStacks) {
  ScopedFrame Mine("main_frame", "libapp.so");
  std::thread Other([] {
    EXPECT_TRUE(FrameStack::current().empty());
    ScopedFrame Theirs("worker_frame", "libapp.so");
    auto Frames = FrameStack::current().capture();
    ASSERT_EQ(Frames.size(), 1u);
    EXPECT_STREQ(Frames[0].Function, "worker_frame");
  });
  Other.join();
}

TEST(Backtrace, RenderLooksLikeLogcat) {
  std::vector<FrameInfo> Frames = {{"test_ofb", "libapp.so"},
                                   {"trampoline", "libart.so"}};
  std::string Out = renderBacktrace(Frames);
  EXPECT_NE(Out.find("backtrace:"), std::string::npos);
  EXPECT_NE(Out.find("#00"), std::string::npos);
  EXPECT_NE(Out.find("test_ofb"), std::string::npos);
  EXPECT_NE(Out.find("#01"), std::string::npos);
}

TEST(Syscall, ObserversFireOnBarrier) {
  static std::atomic<int> Calls{0};
  static std::string LastName;
  int Token = addSyscallObserver(
      [](void *, const char *Name) {
        ++Calls;
        LastName = Name;
      },
      nullptr);
  uint64_t Before = syscallBarrierCount();
  syscallBarrier("getuid");
  EXPECT_EQ(Calls.load(), 1);
  EXPECT_EQ(LastName, "getuid");
  EXPECT_EQ(syscallBarrierCount(), Before + 1);

  removeSyscallObserver(Token);
  syscallBarrier("write");
  EXPECT_EQ(Calls.load(), 1); // removed: no further calls
}

TEST(Syscall, ObserverSeesSyscallFrame) {
  // The barrier pushes a frame for the kernel entry so async fault
  // backtraces show e.g. getuid() on top.
  static std::vector<FrameInfo> Captured;
  Captured.clear();
  int Token = addSyscallObserver(
      [](void *, const char *) {
        Captured = FrameStack::current().capture();
      },
      nullptr);
  syscallBarrier("getuid");
  removeSyscallObserver(Token);
  ASSERT_FALSE(Captured.empty());
  EXPECT_STREQ(Captured[0].Function, "getuid");
  EXPECT_STREQ(Captured[0].Module, "libc.so");
}

TEST(Logging, BufferRetainsRecords) {
  LogBuffer::clear();
  logInfo("TestTag", "value=%d", 42);
  logError("TestTag", "boom");
  auto Records = LogBuffer::snapshot();
  ASSERT_EQ(Records.size(), 2u);
  EXPECT_EQ(Records[0].Severity, LogSeverity::Info);
  EXPECT_EQ(Records[0].Tag, "TestTag");
  EXPECT_EQ(Records[0].Message, "value=42");
  EXPECT_EQ(Records[1].Severity, LogSeverity::Error);
  LogBuffer::clear();
  EXPECT_EQ(LogBuffer::size(), 0u);
}

TEST(Logging, WritingIsASyscallBoundary) {
  uint64_t Before = syscallBarrierCount();
  logDebug("T", "x");
  EXPECT_EQ(syscallBarrierCount(), Before + 1);
  LogBuffer::clear();
}

TEST(ThreadPool, ParallelForCoversAllIndices) {
  ThreadPool Pool(4);
  std::vector<std::atomic<int>> Hits(1000);
  Pool.parallelFor(1000, [&](size_t I) { ++Hits[I]; });
  for (auto &H : Hits)
    EXPECT_EQ(H.load(), 1);
}

TEST(ThreadPool, SubmitAndWaitIdle) {
  ThreadPool Pool(3);
  std::atomic<int> Done{0};
  for (int I = 0; I < 50; ++I)
    Pool.submit([&Done] { ++Done; });
  Pool.waitIdle();
  EXPECT_EQ(Done.load(), 50);
}

TEST(ThreadPool, ZeroThreadsClampsToOne) {
  ThreadPool Pool(0);
  EXPECT_EQ(Pool.size(), 1u);
  std::atomic<int> Done{0};
  Pool.parallelFor(10, [&](size_t) { ++Done; });
  EXPECT_EQ(Done.load(), 10);
}

TEST(ThreadPool, HardwareThreadsNonZero) {
  EXPECT_GE(hardwareThreads(), 1u);
}

// parallelFor waits on ITS batch only: a long-running unrelated submit()
// must not extend the wait. The seed implementation funnelled through
// waitIdle() and deadlocked here (the blocked task never finishes until
// parallelFor returns).
TEST(ThreadPool, ParallelForIgnoresUnrelatedTasks) {
  ThreadPool Pool(4);
  std::mutex Gate;
  Gate.lock();
  Pool.submit([&Gate] {
    Gate.lock(); // held by the main thread until after parallelFor returns
    Gate.unlock();
  });
  std::atomic<int> Done{0};
  Pool.parallelFor(100, [&](size_t) { ++Done; });
  EXPECT_EQ(Done.load(), 100);
  Gate.unlock(); // only now may the blocked task finish
  Pool.waitIdle();
}

// Calling parallelFor from one of the pool's own workers would block a
// worker slot its own batch needs; the pool asserts instead of hanging.
TEST(ThreadPoolDeathTest, WorkerReentrantParallelForAsserts) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        ThreadPool Pool(2);
        Pool.parallelFor(2, [&Pool](size_t) {
          Pool.parallelFor(2, [](size_t) {});
        });
      },
      "parallelFor re-entered");
}

} // namespace

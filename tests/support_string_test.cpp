//===- support_string_test.cpp - StringUtils -----------------------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/StringUtils.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni::support;

TEST(StringUtils, FormatBasics) {
  EXPECT_EQ(format("hello"), "hello");
  EXPECT_EQ(format("%d + %d = %d", 1, 2, 3), "1 + 2 = 3");
  EXPECT_EQ(format("%s/%s", "a", "b"), "a/b");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(StringUtils, FormatLongOutput) {
  std::string Long(5000, 'x');
  EXPECT_EQ(format("%s", Long.c_str()).size(), 5000u);
}

TEST(StringUtils, Split) {
  auto Parts = split("a,b,c", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "a");
  EXPECT_EQ(Parts[2], "c");

  // Empty pieces preserved.
  Parts = split(",x,", ',');
  ASSERT_EQ(Parts.size(), 3u);
  EXPECT_EQ(Parts[0], "");
  EXPECT_EQ(Parts[1], "x");
  EXPECT_EQ(Parts[2], "");

  Parts = split("", ',');
  ASSERT_EQ(Parts.size(), 1u);
  EXPECT_EQ(Parts[0], "");
}

TEST(StringUtils, StartsWith) {
  EXPECT_TRUE(startsWith("--paper", "--"));
  EXPECT_FALSE(startsWith("-p", "--"));
  EXPECT_TRUE(startsWith("abc", ""));
  EXPECT_FALSE(startsWith("", "a"));
}

TEST(StringUtils, ParseUnsigned) {
  uint64_t V = 0;
  EXPECT_TRUE(parseUnsigned("0", V));
  EXPECT_EQ(V, 0u);
  EXPECT_TRUE(parseUnsigned("18446744073709551615", V));
  EXPECT_EQ(V, UINT64_MAX);
  EXPECT_FALSE(parseUnsigned("18446744073709551616", V)); // overflow
  EXPECT_FALSE(parseUnsigned("", V));
  EXPECT_FALSE(parseUnsigned("12a", V));
  EXPECT_FALSE(parseUnsigned("-1", V));
}

TEST(StringUtils, HumanBytes) {
  EXPECT_EQ(humanBytes(0), "0 B");
  EXPECT_EQ(humanBytes(512), "512 B");
  EXPECT_EQ(humanBytes(2048), "2.0 KiB");
  EXPECT_EQ(humanBytes(3ull << 20), "3.0 MiB");
  EXPECT_EQ(humanBytes(5ull << 30), "5.0 GiB");
}

TEST(StringUtils, HumanNanos) {
  EXPECT_EQ(humanNanos(500), "500 ns");
  EXPECT_EQ(humanNanos(1500), "1.50 us");
  EXPECT_EQ(humanNanos(2.5e6), "2.50 ms");
  EXPECT_EQ(humanNanos(3.25e9), "3.250 s");
}

} // namespace

//===- rt_string_test.cpp - UTF-16 strings and UTF-8 conversion ----------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/rt/Heap.h"
#include "mte4jni/rt/JavaString.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;
using namespace mte4jni::rt;

class RtStringTest : public ::testing::Test {
protected:
  void SetUp() override { mte::MteSystem::instance().reset(); }
  void TearDown() override { mte::MteSystem::instance().reset(); }
  JavaHeap Heap{HeapConfig{}};
};

TEST_F(RtStringTest, AsciiRoundTrip) {
  ObjectHeader *Str = newStringUtf8(Heap, "hello world");
  ASSERT_NE(Str, nullptr);
  EXPECT_EQ(Str->Length, 11u);
  std::string Out;
  toUtf8(Str, Out);
  EXPECT_EQ(Out, "hello world");
  EXPECT_EQ(utf8Length(Str), 11u);
}

TEST_F(RtStringTest, TwoByteSequences) {
  // U+00FC LATIN SMALL LETTER U WITH DIAERESIS = C3 BC
  ObjectHeader *Str = newStringUtf8(Heap, "\xC3\xBC");
  ASSERT_NE(Str, nullptr);
  EXPECT_EQ(Str->Length, 1u);
  EXPECT_EQ(stringChars(Str)[0], 0x00FC);
  EXPECT_EQ(utf8Length(Str), 2u);
}

TEST_F(RtStringTest, ThreeByteSequences) {
  // U+20AC EURO SIGN = E2 82 AC
  std::u16string Units = u"€";
  ObjectHeader *Str = newString(Heap, Units);
  std::string Out;
  toUtf8(Str, Out);
  EXPECT_EQ(Out, "\xE2\x82\xAC");
}

TEST_F(RtStringTest, SurrogatePairsRoundTrip) {
  // U+1F600 GRINNING FACE: surrogate pair D83D DE00, UTF-8 F0 9F 98 80.
  std::u16string Units;
  Units.push_back(0xD83D);
  Units.push_back(0xDE00);
  ObjectHeader *Str = newString(Heap, Units);
  EXPECT_EQ(Str->Length, 2u);
  EXPECT_EQ(utf8Length(Str), 4u);
  std::string Out;
  toUtf8(Str, Out);
  EXPECT_EQ(Out, "\xF0\x9F\x98\x80");

  // And back.
  std::u16string Back = utf8ToUtf16(Out);
  ASSERT_EQ(Back.size(), 2u);
  EXPECT_EQ(Back[0], 0xD83D);
  EXPECT_EQ(Back[1], 0xDE00);
}

TEST_F(RtStringTest, UnpairedSurrogatesBecomeReplacement) {
  std::u16string Units;
  Units.push_back(0xD800); // lone high surrogate
  Units.push_back(u'x');
  Units.push_back(0xDC00); // lone low surrogate
  std::string Out = utf16ToUtf8(Units);
  // U+FFFD = EF BF BD
  EXPECT_EQ(Out, "\xEF\xBF\xBD"
                 "x"
                 "\xEF\xBF\xBD");
}

TEST_F(RtStringTest, InvalidUtf8BecomesReplacement) {
  // Truncated 2-byte sequence, stray continuation, overlong encoding.
  std::u16string A = utf8ToUtf16("\xC3");
  ASSERT_EQ(A.size(), 1u);
  EXPECT_EQ(A[0], 0xFFFD);

  std::u16string B = utf8ToUtf16("\x80");
  ASSERT_EQ(B.size(), 1u);
  EXPECT_EQ(B[0], 0xFFFD);

  // Overlong "A" (C1 81).
  std::u16string C = utf8ToUtf16("\xC1\x81");
  ASSERT_GE(C.size(), 1u);
  EXPECT_EQ(C[0], 0xFFFD);
}

TEST_F(RtStringTest, Utf8SurrogateEncodingRejected) {
  // CESU-style direct surrogate encoding ED A0 80 must not produce a
  // surrogate unit.
  std::u16string Units = utf8ToUtf16("\xED\xA0\x80");
  for (char16_t U : Units)
    EXPECT_TRUE(U < 0xD800 || U > 0xDFFF);
}

TEST_F(RtStringTest, EmptyString) {
  ObjectHeader *Str = newStringUtf8(Heap, "");
  ASSERT_NE(Str, nullptr);
  EXPECT_EQ(Str->Length, 0u);
  EXPECT_EQ(utf8Length(Str), 0u);
  std::string Out;
  toUtf8(Str, Out);
  EXPECT_TRUE(Out.empty());
}

TEST_F(RtStringTest, MixedContent) {
  std::string Src = "a\xC3\xBC\xE2\x82\xAC\xF0\x9F\x98\x80z";
  ObjectHeader *Str = newStringUtf8(Heap, Src);
  // 1 + 1 + 1 + 2 + 1 UTF-16 units.
  EXPECT_EQ(Str->Length, 6u);
  std::string Out;
  toUtf8(Str, Out);
  EXPECT_EQ(Out, Src);
  EXPECT_EQ(utf8Length(Str), Src.size());
}

TEST_F(RtStringTest, FourByteBoundaries) {
  // U+10000 (lowest supplementary) and U+10FFFF (highest scalar).
  std::u16string Lo;
  Lo.push_back(0xD800);
  Lo.push_back(0xDC00);
  EXPECT_EQ(utf16ToUtf8(Lo), "\xF0\x90\x80\x80");

  std::u16string Hi;
  Hi.push_back(0xDBFF);
  Hi.push_back(0xDFFF);
  EXPECT_EQ(utf16ToUtf8(Hi), "\xF4\x8F\xBF\xBF");

  // Out-of-range F4 90 80 80 (U+110000) is invalid.
  std::u16string Bad = utf8ToUtf16("\xF4\x90\x80\x80");
  ASSERT_GE(Bad.size(), 1u);
  EXPECT_EQ(Bad[0], 0xFFFD);
}

} // namespace

//===- support_metrics_test.cpp - Metrics registry tests ------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/Metrics.h"

#include <gtest/gtest.h>

#include <cctype>
#include <thread>
#include <vector>

namespace {

using namespace mte4jni;
using support::FaultEvent;
using support::FaultRing;
using support::Histogram;
using support::Metrics;
using support::MetricsSnapshot;

class MetricsTest : public ::testing::Test {
protected:
  void SetUp() override { Metrics::resetAll(); }
  void TearDown() override { Metrics::resetAll(); }
};

// ==== a tiny JSON validator (no parser dependency in this repo) ===========
//
// Checks structural well-formedness: balanced braces/brackets outside
// strings, properly terminated strings, and no trailing garbage. Enough to
// catch the classic exporter bugs (unescaped quote, missing comma brace).

bool jsonStructurallyValid(const std::string &Text) {
  std::vector<char> Stack;
  bool InString = false;
  bool Escaped = false;
  for (char C : Text) {
    if (InString) {
      if (Escaped)
        Escaped = false;
      else if (C == '\\')
        Escaped = true;
      else if (C == '"')
        InString = false;
      else if (static_cast<unsigned char>(C) < 0x20)
        return false; // control characters must be escaped
      continue;
    }
    switch (C) {
    case '"':
      InString = true;
      break;
    case '{':
    case '[':
      Stack.push_back(C);
      break;
    case '}':
      if (Stack.empty() || Stack.back() != '{')
        return false;
      Stack.pop_back();
      break;
    case ']':
      if (Stack.empty() || Stack.back() != '[')
        return false;
      Stack.pop_back();
      break;
    default:
      break;
    }
  }
  return !InString && Stack.empty();
}

// ==== counters ============================================================

TEST_F(MetricsTest, CounterConcurrentIncrementsSumExactly) {
  support::Counter &C = Metrics::counter("test/concurrent_counter");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&C] {
      for (uint64_t I = 0; I < kPerThread; ++I)
        C.add();
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(C.value(), kThreads * kPerThread);

  MetricsSnapshot S = Metrics::snapshot();
  EXPECT_EQ(S.counterValue("test/concurrent_counter"),
            kThreads * kPerThread);
}

TEST_F(MetricsTest, CounterSameNameSameInstance) {
  support::Counter &A = Metrics::counter("test/same_name");
  support::Counter &B = Metrics::counter("test/same_name");
  EXPECT_EQ(&A, &B);
  A.add(3);
  EXPECT_EQ(B.value(), 3u);
}

TEST_F(MetricsTest, GaugeUpdateMaxKeepsHighWaterMark) {
  support::Gauge &G = Metrics::gauge("test/hwm");
  G.updateMax(5);
  G.updateMax(2);
  EXPECT_EQ(G.value(), 5);
  G.updateMax(9);
  EXPECT_EQ(G.value(), 9);
  G.set(-4);
  EXPECT_EQ(G.value(), -4);
}

// ==== histograms ==========================================================

TEST_F(MetricsTest, HistogramBucketsAreLogScale) {
  EXPECT_EQ(Histogram::bucketOf(0), 0u);
  EXPECT_EQ(Histogram::bucketOf(1), 1u);
  EXPECT_EQ(Histogram::bucketOf(2), 2u);
  EXPECT_EQ(Histogram::bucketOf(3), 2u);
  EXPECT_EQ(Histogram::bucketOf(1023), 10u);
  EXPECT_EQ(Histogram::bucketOf(1024), 11u);
  EXPECT_EQ(Histogram::bucketOf(uint64_t(1) << 63), 63u); // clamped
  EXPECT_EQ(Histogram::bucketOf(UINT64_MAX), 63u);        // clamped
  EXPECT_EQ(Histogram::bucketUpperBound(0), 1u);
  EXPECT_EQ(Histogram::bucketUpperBound(10), 1024u);
  EXPECT_EQ(Histogram::bucketUpperBound(63), UINT64_MAX);
}

TEST_F(MetricsTest, HistogramConcurrentRecordsConsistentSnapshot) {
  support::Histogram &H = Metrics::histogram("test/concurrent_hist");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 5000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&H, T] {
      for (uint64_t I = 0; I < kPerThread; ++I)
        H.record((I % 1000) + static_cast<uint64_t>(T));
    });
  for (std::thread &T : Threads)
    T.join();

  EXPECT_EQ(H.count(), kThreads * kPerThread);
  MetricsSnapshot S = Metrics::snapshot();
  const support::HistogramSample *Sample =
      S.histogram("test/concurrent_hist");
  ASSERT_NE(Sample, nullptr);
  EXPECT_EQ(Sample->Count, kThreads * kPerThread);
  // Bucket totals must agree with the count once writers are quiescent.
  uint64_t BucketTotal = 0;
  for (uint64_t B : Sample->Buckets)
    BucketTotal += B;
  EXPECT_EQ(BucketTotal, Sample->Count);
  EXPECT_GT(Sample->Sum, 0u);
  EXPECT_GT(Sample->mean(), 0.0);
}

// Cross-shard merge: more writer threads than exclusive shards, so some
// land on the shared overflow cell, with exactly computable totals. Every
// sample must be accounted exactly once across Count, Sum, the bucket
// array, and the per-shard Min/Max reduction.
TEST_F(MetricsTest, HistogramCrossShardMergeAccountsEverySampleOnce) {
  support::Histogram &H = Metrics::histogram("test/cross_shard_hist");
  // More threads than the registry has exclusive shards (16): the surplus
  // contends on the overflow cell's CAS min/max path.
  constexpr int kThreads = 24;
  constexpr uint64_t kPerThread = 2000;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&H, T] {
      // Thread T records T+1, 2(T+1), ..., kPerThread*(T+1).
      for (uint64_t I = 1; I <= kPerThread; ++I)
        H.record(I * static_cast<uint64_t>(T + 1));
    });
  for (std::thread &T : Threads)
    T.join();

  constexpr uint64_t kCount = uint64_t(kThreads) * kPerThread;
  // sum over T of (T+1) * kPerThread*(kPerThread+1)/2
  constexpr uint64_t kSum = (uint64_t(kThreads) * (kThreads + 1) / 2) *
                            (kPerThread * (kPerThread + 1) / 2);
  EXPECT_EQ(H.count(), kCount);
  EXPECT_EQ(H.minValue(), 1u);
  EXPECT_EQ(H.maxValue(), kPerThread * kThreads);

  MetricsSnapshot S = Metrics::snapshot();
  const support::HistogramSample *Sample = S.histogram("test/cross_shard_hist");
  ASSERT_NE(Sample, nullptr);
  EXPECT_EQ(Sample->Count, kCount);
  EXPECT_EQ(Sample->Sum, kSum);
  EXPECT_EQ(Sample->Min, 1u);
  EXPECT_EQ(Sample->Max, kPerThread * kThreads);
  uint64_t BucketTotal = 0;
  for (uint64_t B : Sample->Buckets)
    BucketTotal += B;
  EXPECT_EQ(BucketTotal, kCount);

  // Empty histograms export min/max 0, not the UINT64_MAX init sentinel.
  support::Histogram &Empty = Metrics::histogram("test/empty_hist");
  EXPECT_EQ(Empty.minValue(), 0u);
  EXPECT_EQ(Empty.maxValue(), 0u);
}

TEST_F(MetricsTest, HistogramPercentileUpperBound) {
  support::Histogram &H = Metrics::histogram("test/percentile_hist");
  for (int I = 0; I < 99; ++I)
    H.record(100); // bucket 7, upper bound 128
  H.record(1 << 20); // one outlier in bucket 21

  MetricsSnapshot S = Metrics::snapshot();
  const support::HistogramSample *Sample =
      S.histogram("test/percentile_hist");
  ASSERT_NE(Sample, nullptr);
  EXPECT_EQ(Sample->percentileUpperBound(50), 128u);
  EXPECT_EQ(Sample->percentileUpperBound(99), 128u);
  EXPECT_EQ(Sample->percentileUpperBound(100), uint64_t(1) << 21);
}

// ==== exporters ===========================================================

TEST_F(MetricsTest, JsonExportIsStructurallyValid) {
  Metrics::counter("test/json \"quoted\"/counter").add(7);
  Metrics::gauge("test/json/gauge").set(-42);
  Metrics::histogram("test/json/hist").record(300);
  FaultEvent E;
  E.Kind = "test \"fault\"\nwith newline";
  E.HasAddress = true;
  E.Address = 0xdead;
  E.Backtrace = "a <- b";
  Metrics::faultRing().record(E);

  std::string Json = Metrics::snapshot().toJson();
  EXPECT_TRUE(jsonStructurallyValid(Json)) << Json;
  EXPECT_NE(Json.find("\"counters\""), std::string::npos);
  EXPECT_NE(Json.find("\"gauges\""), std::string::npos);
  EXPECT_NE(Json.find("\"histograms\""), std::string::npos);
  EXPECT_NE(Json.find("\"faults\""), std::string::npos);
  EXPECT_NE(Json.find("-42"), std::string::npos);
  // Each histogram carries the latency summary consumers read: min/max and
  // the p50/p99/p999 bucket upper bounds.
  EXPECT_NE(Json.find("\"min\""), std::string::npos);
  EXPECT_NE(Json.find("\"max\""), std::string::npos);
  EXPECT_NE(Json.find("\"p50_le\""), std::string::npos);
  EXPECT_NE(Json.find("\"p99_le\""), std::string::npos);
  EXPECT_NE(Json.find("\"p999_le\""), std::string::npos);
}

TEST_F(MetricsTest, PrometheusTextExpositionWellFormed) {
  Metrics::counter("test/prom/counter").add(3);
  Metrics::gauge("test/prom/gauge").set(11);
  support::Histogram &H = Metrics::histogram("test/prom/hist");
  H.record(5);
  H.record(500);

  std::string Text = Metrics::snapshot().toPrometheusText();
  // Sanitised, prefixed names; no '/' may survive into a metric name.
  EXPECT_NE(Text.find("# TYPE m4j_test_prom_counter counter"),
            std::string::npos);
  EXPECT_NE(Text.find("m4j_test_prom_counter 3"), std::string::npos);
  EXPECT_NE(Text.find("# TYPE m4j_test_prom_gauge gauge"),
            std::string::npos);
  EXPECT_NE(Text.find("# TYPE m4j_test_prom_hist histogram"),
            std::string::npos);
  EXPECT_NE(Text.find("m4j_test_prom_hist_bucket{le=\"+Inf\"} 2"),
            std::string::npos);
  EXPECT_NE(Text.find("m4j_test_prom_hist_count 2"), std::string::npos);

  // Every non-comment line is "name[{labels}] value"; names match
  // [a-zA-Z_:][a-zA-Z0-9_:]*.
  size_t Pos = 0;
  while (Pos < Text.size()) {
    size_t End = Text.find('\n', Pos);
    if (End == std::string::npos)
      End = Text.size();
    std::string Line = Text.substr(Pos, End - Pos);
    Pos = End + 1;
    if (Line.empty() || Line[0] == '#')
      continue;
    size_t Space = Line.rfind(' ');
    ASSERT_NE(Space, std::string::npos) << Line;
    std::string Name = Line.substr(0, Space);
    size_t Brace = Name.find('{');
    if (Brace != std::string::npos)
      Name = Name.substr(0, Brace);
    for (char C : Name)
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(C)) || C == '_' ||
                  C == ':')
          << Line;
  }
}

// ==== fault ring ==========================================================

TEST_F(MetricsTest, FaultRingWraparoundKeepsNewestOldestFirst) {
  FaultRing &Ring = Metrics::faultRing();
  constexpr uint64_t kTotal = FaultRing::kCapacity + 17;
  for (uint64_t I = 0; I < kTotal; ++I) {
    FaultEvent E;
    E.Kind = "wrap";
    E.Address = I;
    E.HasAddress = true;
    Ring.record(E);
  }
  EXPECT_EQ(Ring.totalRecorded(), kTotal);

  std::vector<FaultEvent> Events = Ring.snapshot();
  ASSERT_EQ(Events.size(), FaultRing::kCapacity);
  // Oldest retained is kTotal - kCapacity; sequence stamps are dense.
  for (size_t I = 0; I < Events.size(); ++I) {
    EXPECT_EQ(Events[I].Sequence, kTotal - FaultRing::kCapacity + I);
    EXPECT_EQ(Events[I].Address, Events[I].Sequence);
    EXPECT_GT(Events[I].TimestampNanos, 0u);
  }
}

TEST_F(MetricsTest, FaultRingConcurrentRecordsKeepDenseSequences) {
  FaultRing &Ring = Metrics::faultRing();
  constexpr int kThreads = 4;
  constexpr uint64_t kPerThread = 500;
  std::vector<std::thread> Threads;
  for (int T = 0; T < kThreads; ++T)
    Threads.emplace_back([&Ring] {
      for (uint64_t I = 0; I < kPerThread; ++I) {
        FaultEvent E;
        E.Kind = "mt";
        Ring.record(E);
      }
    });
  for (std::thread &T : Threads)
    T.join();
  EXPECT_EQ(Ring.totalRecorded(), kThreads * kPerThread);
  std::vector<FaultEvent> Events = Ring.snapshot();
  ASSERT_EQ(Events.size(), FaultRing::kCapacity);
  for (size_t I = 1; I < Events.size(); ++I)
    EXPECT_EQ(Events[I].Sequence, Events[I - 1].Sequence + 1);
}

TEST_F(MetricsTest, ResetAllZeroesEverything) {
  Metrics::counter("test/reset/counter").add(5);
  Metrics::gauge("test/reset/gauge").set(5);
  Metrics::histogram("test/reset/hist").record(5);
  FaultEvent E;
  Metrics::faultRing().record(E);

  Metrics::resetAll();
  MetricsSnapshot S = Metrics::snapshot();
  EXPECT_EQ(S.counterValue("test/reset/counter"), 0u);
  EXPECT_EQ(S.gaugeValue("test/reset/gauge"), 0);
  const support::HistogramSample *Sample = S.histogram("test/reset/hist");
  ASSERT_NE(Sample, nullptr);
  EXPECT_EQ(Sample->Count, 0u);
  EXPECT_EQ(S.FaultsTotal, 0u);
  EXPECT_TRUE(S.Faults.empty());
}

} // namespace

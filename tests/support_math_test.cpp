//===- support_math_test.cpp - MathExtras / Rng / Statistics -----------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/support/MathExtras.h"
#include "mte4jni/support/Rng.h"
#include "mte4jni/support/Statistics.h"

#include <gtest/gtest.h>

#include <array>
#include <cmath>

namespace {

using namespace mte4jni::support;

TEST(MathExtras, PowerOf2) {
  EXPECT_FALSE(isPowerOf2(0));
  EXPECT_TRUE(isPowerOf2(1));
  EXPECT_TRUE(isPowerOf2(2));
  EXPECT_FALSE(isPowerOf2(3));
  EXPECT_TRUE(isPowerOf2(1ull << 40));
  EXPECT_FALSE(isPowerOf2((1ull << 40) + 1));
}

TEST(MathExtras, AlignToAndDown) {
  EXPECT_EQ(alignTo(0, 16), 0u);
  EXPECT_EQ(alignTo(1, 16), 16u);
  EXPECT_EQ(alignTo(16, 16), 16u);
  EXPECT_EQ(alignTo(17, 16), 32u);
  EXPECT_EQ(alignDown(17, 16), 16u);
  EXPECT_EQ(alignDown(15, 16), 0u);
  EXPECT_TRUE(isAligned(32, 16));
  EXPECT_FALSE(isAligned(24, 16));
}

TEST(MathExtras, Log2AndNextPow2) {
  EXPECT_EQ(log2Of(1), 0u);
  EXPECT_EQ(log2Of(16), 4u);
  EXPECT_EQ(log2Of(1ull << 33), 33u);
  EXPECT_EQ(nextPowerOf2(1), 1u);
  EXPECT_EQ(nextPowerOf2(3), 4u);
  EXPECT_EQ(nextPowerOf2(16), 16u);
  EXPECT_EQ(nextPowerOf2(17), 32u);
}

TEST(MathExtras, DivideCeil) {
  EXPECT_EQ(divideCeil(0, 16), 0u);
  EXPECT_EQ(divideCeil(1, 16), 1u);
  EXPECT_EQ(divideCeil(16, 16), 1u);
  EXPECT_EQ(divideCeil(17, 16), 2u);
}

TEST(Rng, DeterministicGivenSeed) {
  Xoshiro256 A(42), B(42), C(43);
  for (int I = 0; I < 100; ++I) {
    uint64_t VA = A.next();
    EXPECT_EQ(VA, B.next());
    (void)C.next();
  }
  Xoshiro256 A2(42), C2(43);
  EXPECT_NE(A2.next(), C2.next());
}

TEST(Rng, NextBelowRespectsBound) {
  Xoshiro256 Rng(7);
  for (uint64_t Bound : {1ull, 2ull, 3ull, 10ull, 1000ull}) {
    for (int I = 0; I < 200; ++I)
      EXPECT_LT(Rng.nextBelow(Bound), Bound);
  }
}

TEST(Rng, NextBelowIsRoughlyUniform) {
  Xoshiro256 Rng(1234);
  std::array<int, 8> Buckets{};
  constexpr int kDraws = 80000;
  for (int I = 0; I < kDraws; ++I)
    ++Buckets[Rng.nextBelow(8)];
  for (int Count : Buckets) {
    EXPECT_GT(Count, kDraws / 8 * 0.9);
    EXPECT_LT(Count, kDraws / 8 * 1.1);
  }
}

TEST(Rng, NextInRangeInclusive) {
  Xoshiro256 Rng(5);
  bool SawLo = false, SawHi = false;
  for (int I = 0; I < 1000; ++I) {
    int64_t V = Rng.nextInRange(-2, 2);
    EXPECT_GE(V, -2);
    EXPECT_LE(V, 2);
    SawLo |= V == -2;
    SawHi |= V == 2;
  }
  EXPECT_TRUE(SawLo);
  EXPECT_TRUE(SawHi);
}

TEST(Rng, NextDoubleInUnitInterval) {
  Xoshiro256 Rng(99);
  for (int I = 0; I < 1000; ++I) {
    double D = Rng.nextDouble();
    EXPECT_GE(D, 0.0);
    EXPECT_LT(D, 1.0);
  }
}

TEST(Statistics, RunningStatBasics) {
  RunningStat S;
  EXPECT_EQ(S.count(), 0u);
  EXPECT_EQ(S.mean(), 0.0);
  for (double X : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
    S.add(X);
  EXPECT_EQ(S.count(), 8u);
  EXPECT_DOUBLE_EQ(S.mean(), 5.0);
  EXPECT_NEAR(S.stddev(), 2.138, 0.001); // sample stddev
  EXPECT_EQ(S.min(), 2.0);
  EXPECT_EQ(S.max(), 9.0);
}

TEST(Statistics, SampleSetPercentiles) {
  SampleSet S;
  for (int I = 1; I <= 100; ++I)
    S.add(I);
  EXPECT_DOUBLE_EQ(S.percentile(0), 1.0);
  EXPECT_DOUBLE_EQ(S.percentile(100), 100.0);
  EXPECT_NEAR(S.median(), 50.5, 1e-9);
  EXPECT_NEAR(S.percentile(90), 90.1, 1e-9);
  EXPECT_DOUBLE_EQ(S.mean(), 50.5);
}

TEST(Statistics, SampleSetEdgeCases) {
  SampleSet Empty;
  EXPECT_EQ(Empty.percentile(50), 0.0);
  EXPECT_EQ(Empty.mean(), 0.0);
  SampleSet One;
  One.add(3.5);
  EXPECT_EQ(One.percentile(0), 3.5);
  EXPECT_EQ(One.percentile(100), 3.5);
}

TEST(Statistics, GeometricMean) {
  EXPECT_EQ(geometricMean({}), 0.0);
  EXPECT_NEAR(geometricMean({4.0}), 4.0, 1e-12);
  EXPECT_NEAR(geometricMean({1.0, 100.0}), 10.0, 1e-9);
  EXPECT_NEAR(geometricMean({2.0, 2.0, 2.0}), 2.0, 1e-12);
}

} // namespace

//===- hardening_test.cpp - Adjacent-tag-exclusion hardening --------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//
//
// The paper's Algorithm 1 draws the tag with IRG excluding only tag 0, so
// an overflow from object A into an adjacent, concurrently-tagged object
// B escapes detection whenever B happened to draw A's tag (p = 1/15 per
// pair). The ExcludeAdjacentTags hardening additionally excludes the
// neighbouring granules' current tags at generation time, making the
// adjacent-overflow case deterministic. These tests pin down both the
// baseline's probabilistic gap and the hardening's guarantee.
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/core/TagAllocator.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/Instructions.h"
#include "mte4jni/mte/TaggedArena.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;

class HardeningTest : public ::testing::Test {
protected:
  void SetUp() override {
    mte::MteSystem::instance().reset();
    Arena = std::make_unique<mte::TaggedArena>(1 << 20);
  }
  void TearDown() override {
    Arena.reset();
    mte::MteSystem::instance().reset();
  }
  std::unique_ptr<mte::TaggedArena> Arena;
};

TEST_F(HardeningTest, AdjacentObjectsNeverShareTags) {
  core::TagAllocatorOptions Options;
  Options.ExcludeAdjacentTags = true;
  core::TagAllocator Alloc(Options);

  // 64 adjacent 32-byte blocks tagged one after another: with the
  // hardening, no two neighbours may ever carry the same tag. (Without
  // it, over 63 adjacent pairs a collision is near-certain:
  // 1 - (14/15)^63 ≈ 98.7%.)
  uint8_t *Base = static_cast<uint8_t *>(Arena->allocate(64 * 32));
  std::vector<uint64_t> Bits;
  for (int I = 0; I < 64; ++I) {
    uint64_t Begin = reinterpret_cast<uint64_t>(Base) + I * 32u;
    Bits.push_back(Alloc.acquire(Begin, Begin + 32));
  }
  for (int I = 1; I < 64; ++I)
    EXPECT_NE(mte::pointerTagOf(Bits[I]), mte::pointerTagOf(Bits[I - 1]))
        << "adjacent blocks " << I - 1 << "/" << I;
  for (int I = 0; I < 64; ++I) {
    uint64_t Begin = reinterpret_cast<uint64_t>(Base) + I * 32u;
    Alloc.release(Begin, Begin + 32);
  }
}

TEST_F(HardeningTest, BaselineCanCollide) {
  // Sanity check of the probabilistic gap this hardening closes: with
  // plain Algorithm 1, adjacent tags DO collide eventually.
  core::TagAllocator Alloc(core::LockScheme::TwoTier);
  uint8_t *Base = static_cast<uint8_t *>(Arena->allocate(512 * 32));
  bool Collision = false;
  mte::TagValue Prev = 0;
  for (int I = 0; I < 512 && !Collision; ++I) {
    uint64_t Begin = reinterpret_cast<uint64_t>(Base) + I * 32u;
    mte::TagValue Tag = mte::pointerTagOf(Alloc.acquire(Begin, Begin + 32));
    if (I > 0 && Tag == Prev)
      Collision = true;
    Prev = Tag;
  }
  EXPECT_TRUE(Collision)
      << "512 draws from 15 tags without an adjacent repeat is ~1e-16";
}

// Standalone (not TEST_F): constructing a Session resets the process-wide
// MteSystem, which must not happen while the fixture's arena is alive.
TEST(HardeningEndToEnd, AdjacentOverflowAlwaysCaughtEndToEnd) {
  // End-to-end through the Session: A and B tagged simultaneously, native
  // code overflows linearly from A into B. Must fault on EVERY run.
  for (uint64_t Seed = 1; Seed <= 20; ++Seed) {
    api::SessionConfig C;
    C.Protection = api::Scheme::Mte4JniSync;
    C.ExcludeAdjacentTags = true;
    C.Seed = Seed;
    api::Session S(C);
    api::ScopedAttach Main(S, "main");
    rt::HandleScope Scope(S.runtime());

    jni::jarray A = Main.env().NewIntArray(Scope, 4); // 16B payload
    jni::jarray B = Main.env().NewIntArray(Scope, 4);

    rt::callNative(Main.thread(), rt::NativeKind::Regular, "overflow", [&] {
      jni::jboolean IsCopy;
      auto PA = Main.env().GetIntArrayElements(A, &IsCopy);
      auto PB = Main.env().GetIntArrayElements(B, &IsCopy);
      // Linear overflow from A's payload into B's payload.
      ptrdiff_t DeltaInts = static_cast<ptrdiff_t>(
          (B->dataAddress() - A->dataAddress()) / sizeof(jni::jint));
      volatile jni::jint V = mte::load<jni::jint>(PA + DeltaInts);
      (void)V;
      Main.env().ReleaseIntArrayElements(B, PB, jni::JNI_ABORT);
      Main.env().ReleaseIntArrayElements(A, PA, jni::JNI_ABORT);
      return 0;
    });

    EXPECT_EQ(S.faults().countOf(mte::FaultKind::TagMismatchSync), 1u)
        << "seed " << Seed;
  }
}

TEST_F(HardeningTest, SharedTagStillSharedBetweenHolders) {
  // The hardening must not break §3.1 tag sharing for the SAME object.
  core::TagAllocatorOptions Options;
  Options.ExcludeAdjacentTags = true;
  core::TagAllocator Alloc(Options);
  uint64_t Begin =
      reinterpret_cast<uint64_t>(Arena->allocate(128));
  uint64_t B1 = Alloc.acquire(Begin, Begin + 128);
  uint64_t B2 = Alloc.acquire(Begin, Begin + 128);
  EXPECT_EQ(B1, B2);
  Alloc.release(Begin, Begin + 128);
  Alloc.release(Begin, Begin + 128);
}

} // namespace

//===- tombstone_test.cpp - Tombstone rendering + env hygiene -------------------------===//
//
// Part of the MTE4JNI reproduction project.
// SPDX-License-Identifier: MIT
//
//===----------------------------------------------------------------------===//

#include "mte4jni/api/Session.h"
#include "mte4jni/mte/Access.h"
#include "mte4jni/mte/MteSystem.h"
#include "mte4jni/mte/Tombstone.h"
#include "mte4jni/support/Logging.h"

#include <gtest/gtest.h>

namespace {

using namespace mte4jni;

TEST(Tombstone, SyncFaultHasTagDumpAndAddress) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniSync;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "test_ofb", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env()
                 .GetPrimitiveArrayCritical(Array, &IsCopy)
                 .cast<jni::jint>();
    mte::store<jni::jint>(P + 21, 1);
    Main.env().ReleasePrimitiveArrayCritical(Array, P.cast<void>(), 0);
    return 0;
  });

  std::string Out;
  ASSERT_TRUE(mte::renderLatestTombstone(Out));
  EXPECT_NE(Out.find("SEGV_MTESERR"), std::string::npos);
  EXPECT_NE(Out.find("Build fingerprint"), std::string::npos);
  EXPECT_NE(Out.find("memory tags near fault address"), std::string::npos);
  EXPECT_NE(Out.find("fault here"), std::string::npos);
  EXPECT_NE(Out.find("test_ofb"), std::string::npos);
  // Bounded metrics excerpt: slow-path attribution + fault-ring depth. The
  // single GetPrimitiveArrayCritical round trip drove the lock-free tag
  // table once: the acquire probed a cold slot (slot_cold); the release
  // is a deferred fast path under the default config, so no release
  // reason is guaranteed to appear.
  EXPECT_NE(Out.find("metrics excerpt:"), std::string::npos);
  EXPECT_NE(Out.find("tagtable slow-path reasons:"), std::string::npos);
  EXPECT_NE(Out.find("slot_cold"), std::string::npos);
  EXPECT_NE(Out.find("fault ring:"), std::string::npos);
}

TEST(Tombstone, AsyncFaultExplainsMissingAddress) {
  api::SessionConfig C;
  C.Protection = api::Scheme::Mte4JniAsync;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 18);

  rt::callNative(Main.thread(), rt::NativeKind::Regular, "test_ofb", [&] {
    jni::jboolean IsCopy;
    auto P = Main.env()
                 .GetPrimitiveArrayCritical(Array, &IsCopy)
                 .cast<jni::jint>();
    mte::store<jni::jint>(P + 21, 1);
    mte::simulatedSyscall("getuid");
    Main.env().ReleasePrimitiveArrayCritical(Array, P.cast<void>(), 0);
    return 0;
  });

  std::string Out;
  ASSERT_TRUE(mte::renderLatestTombstone(Out));
  EXPECT_NE(Out.find("SEGV_MTEAERR"), std::string::npos);
  EXPECT_NE(Out.find("fault addr --------"), std::string::npos);
  EXPECT_NE(Out.find("delivered at syscall getuid"), std::string::npos);
  EXPECT_NE(Out.find("asynchronous MTE reports carry no fault address"),
            std::string::npos);
}

TEST(Tombstone, EmptyLogYieldsNothing) {
  mte::MteSystem::instance().reset();
  std::string Out;
  EXPECT_FALSE(mte::renderLatestTombstone(Out));
}

// ---- CheckJNI extras ---------------------------------------------------------

TEST(CheckJniExtras, ReleaseCriticalWithoutGetIsAnError) {
  api::SessionConfig C;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  rt::HandleScope Scope(S.runtime());
  jni::jarray Array = Main.env().NewIntArray(Scope, 8);

  Main.env().ReleasePrimitiveArrayCritical(
      Array, mte::TaggedPtr<void>::fromRaw(Array->data(), 0), 0);
  EXPECT_TRUE(Main.env().ExceptionCheck());
  EXPECT_NE(Main.env().exceptionMessage().find("critical"),
            std::string::npos);
  Main.env().ExceptionClear();
  EXPECT_EQ(S.runtime().criticalDepth(), 0u) << "accounting untouched";
}

TEST(CheckJniExtras, LeakedUtfBufferWarnsAtEnvDestruction) {
  support::LogBuffer::clear();
  api::SessionConfig C;
  api::Session S(C);
  {
    api::ScopedAttach Main(S, "main");
    rt::HandleScope Scope(S.runtime());
    jni::jstring Str = Main.env().NewStringUTF(Scope, "leak me");
    jni::jboolean IsCopy;
    (void)Main.env().GetStringUTFChars(Str, &IsCopy);
    // Never released: the env destructor must complain.
  }
  bool SawWarning = false;
  for (const auto &R : support::LogBuffer::snapshot())
    if (R.Message.find("unreleased") != std::string::npos)
      SawWarning = true;
  EXPECT_TRUE(SawWarning);
  support::LogBuffer::clear();
}

TEST(CheckJniExtras, LocalFramesRootAndRelease) {
  api::SessionConfig C;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");

  EXPECT_EQ(Main.env().PushLocalFrame(16), 0);
  jni::jarray A = Main.env().NewIntArrayLocal(32);
  ASSERT_NE(A, nullptr);

  // Rooted by the frame: survives collection.
  S.runtime().gc().collect();
  EXPECT_TRUE(S.runtime().heap().isLiveObject(A));

  // Nested frame.
  Main.env().PushLocalFrame(16);
  jni::jstring Inner = Main.env().NewStringUTFLocal("inner");
  EXPECT_EQ(Main.env().localFrameDepth(), 2u);
  // Pop promotes the result to the outer frame.
  Main.env().PopLocalFrame(Inner);
  EXPECT_EQ(Main.env().localFrameDepth(), 1u);
  S.runtime().gc().collect();
  EXPECT_TRUE(S.runtime().heap().isLiveObject(Inner)) << "promoted";

  // Popping the outer frame unroots everything.
  Main.env().PopLocalFrame(nullptr);
  EXPECT_EQ(Main.env().localFrameDepth(), 0u);
  S.runtime().gc().collect();
  EXPECT_FALSE(S.runtime().heap().isLiveObject(A));
  EXPECT_FALSE(S.runtime().heap().isLiveObject(Inner));
}

TEST(CheckJniExtras, LocalCreationWithoutFrameIsAnError) {
  api::SessionConfig C;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  EXPECT_EQ(Main.env().NewIntArrayLocal(8), nullptr);
  EXPECT_TRUE(Main.env().ExceptionCheck());
  Main.env().ExceptionClear();
}

TEST(CheckJniExtras, PopWithoutPushIsAnError) {
  api::SessionConfig C;
  api::Session S(C);
  api::ScopedAttach Main(S, "main");
  Main.env().PopLocalFrame(nullptr);
  EXPECT_TRUE(Main.env().ExceptionCheck());
  Main.env().ExceptionClear();
}

} // namespace
